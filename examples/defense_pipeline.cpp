// Defense pipeline walkthrough: trains a fresh (not zoo-cached) ResGCN,
// attacks it, and measures the §V-F defenses three ways:
//
//   1. the classic static evaluation — attack the undefended model,
//      then run the adversarial cloud through a DefensePipeline
//      (SRS -> revised SOR) and score the survivors;
//   2. a chained pipeline with color quantization + kNN label voting;
//   3. the *adaptive* attacker — the same AttackEngine run unchanged
//      against a DefendedModel, so the optimization differentiates
//      through the defense (gradients gathered over surviving points,
//      quantization handled straight-through, SRS resampled per step
//      with deterministic input-keyed streams).
//
// Demonstrates the training API alongside the attack/defense APIs.
#include <cstdio>

#include "pcss/core/attack_engine.h"
#include "pcss/core/defended_model.h"
#include "pcss/core/defense.h"
#include "pcss/core/metrics.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/train/trainer.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

namespace {

void report(const char* label, const DefenseReport& r) {
  std::printf("%-34s %5.1f%%  (aIoU %5.1f%%, %lld pts kept)\n", label,
              100.0 * r.metrics.accuracy, 100.0 * r.metrics.aiou,
              static_cast<long long>(r.outcome.cloud.size()));
}

}  // namespace

int main() {
  // Train a small ResGCN from scratch (a minute-scale CPU job).
  IndoorSceneGenerator gen({.num_points = 384});
  Rng init(7);
  pcss::models::ResGCNConfig mc;
  mc.num_classes = pcss::data::kIndoorNumClasses;
  mc.channels = 24;
  mc.blocks = 3;
  pcss::models::ResGCNSeg model(mc, init);

  pcss::train::TrainConfig tc;
  tc.iterations = 250;
  tc.scene_pool = 12;
  tc.verbose = true;
  const auto stats = pcss::train::train_model(
      model, [&gen](Rng& rng) { return gen.generate(rng); }, tc);
  std::printf("trained: final loss %.3f, train accuracy %.1f%%\n\n", stats.final_loss,
              100.0 * stats.final_train_accuracy);

  Rng eval_rng(99);
  const auto cloud = gen.generate(eval_rng);
  const double clean_acc =
      evaluate_segmentation(model.predict(cloud), cloud.labels, 13).accuracy;

  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.field = AttackField::kColor;
  config.cw_steps = 100;
  const AttackResult adv = AttackEngine(model, config).run(cloud);
  const double adv_acc =
      evaluate_segmentation(adv.predictions, cloud.labels, 13).accuracy;

  // 1. Static evaluation through a chained pipeline. The pipeline owns
  // the surviving-index map, so metrics always score against correctly
  // permuted ground truth, stage after stage.
  DefensePipeline anomaly;
  anomaly.add(make_srs_fraction_stage(0.01f)).add(make_sor_stage(/*k=*/2, 1.0f, 1.0f));
  Rng def_rng(11);
  const DefenseReport static_eval = run_defended(model, anomaly, adv.perturbed, 13, def_rng);

  // 2. A smoothing pipeline: 8-level color quantization plus kNN label
  // voting on the predictions.
  DefensePipeline smoothing;
  smoothing.add(make_color_quantize_stage(8)).add(make_knn_label_vote_stage(5));
  Rng def_rng2(12);
  const DefenseReport smooth_eval =
      run_defended(model, smoothing, adv.perturbed, 13, def_rng2);

  // 3. The adaptive attacker: the engine runs *through* the defense.
  DefendedModel defended(model, anomaly, {.seed = 2024});
  const AttackResult adaptive = AttackEngine(defended, config).run(cloud);
  Rng def_rng3 = defended.stream(adaptive.perturbed, 0);
  const DefenseReport adaptive_eval =
      run_defended(model, anomaly, adaptive.perturbed, 13, def_rng3);

  std::printf("pipeline [%s]\n\n", anomaly.describe().c_str());
  std::printf("%-34s %5.1f%%\n", "clean accuracy:", 100.0 * clean_acc);
  std::printf("%-34s %5.1f%%  (L2=%.2f)\n", "attacked (no defense):", 100.0 * adv_acc,
              adv.l2_color);
  report("static attack + srs|sor:", static_eval);
  report("static attack + quantize|vote:", smooth_eval);
  report("ADAPTIVE attack + srs|sor:", adaptive_eval);
  std::printf("\nPaper Finding 7: neither defense restores clean accuracy — and the\n"
              "adaptive attacker, optimizing through the defense, degrades the\n"
              "defended model further than the static attack the defense was\n"
              "evaluated against.\n");
  return 0;
}
