// Defense evaluation pipeline: trains a fresh (not zoo-cached) ResGCN
// with the library's trainer, attacks it, and measures how the paper's
// two anomaly-detection defenses (SRS, SOR) change the outcome — the
// §V-F experiment as a standalone program. Demonstrates the training API
// alongside the attack/defense APIs.
#include <cstdio>

#include "pcss/core/attack_engine.h"
#include "pcss/core/defense.h"
#include "pcss/core/metrics.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/train/trainer.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

int main() {
  // Train a small ResGCN from scratch (a minute-scale CPU job).
  IndoorSceneGenerator gen({.num_points = 384});
  Rng init(7);
  pcss::models::ResGCNConfig mc;
  mc.num_classes = pcss::data::kIndoorNumClasses;
  mc.channels = 24;
  mc.blocks = 3;
  pcss::models::ResGCNSeg model(mc, init);

  pcss::train::TrainConfig tc;
  tc.iterations = 250;
  tc.scene_pool = 12;
  tc.verbose = true;
  const auto stats = pcss::train::train_model(
      model, [&gen](Rng& rng) { return gen.generate(rng); }, tc);
  std::printf("trained: final loss %.3f, train accuracy %.1f%%\n\n", stats.final_loss,
              100.0 * stats.final_train_accuracy);

  Rng eval_rng(99);
  const auto cloud = gen.generate(eval_rng);
  const double clean_acc =
      evaluate_segmentation(model.predict(cloud), cloud.labels, 13).accuracy;

  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.field = AttackField::kColor;
  config.cw_steps = 100;
  const AttackResult adv = AttackEngine(model, config).run(cloud);
  const double adv_acc =
      evaluate_segmentation(adv.predictions, cloud.labels, 13).accuracy;

  Rng def_rng(11);
  const auto srs_cloud = srs_defense(adv.perturbed, cloud.size() / 100, def_rng);
  const DefendedEval srs = evaluate_defended(model, srs_cloud, 13);
  const auto sor_cloud = sor_defense(adv.perturbed, /*k=*/2, 1.0f, 1.0f);
  const DefendedEval sor = evaluate_defended(model, sor_cloud, 13);

  std::printf("clean accuracy:              %5.1f%%\n", 100.0 * clean_acc);
  std::printf("attacked (no defense):       %5.1f%%  (L2=%.2f)\n", 100.0 * adv_acc,
              adv.l2_color);
  std::printf("attacked + SRS (1%% removed): %5.1f%%  (%lld pts kept)\n",
              100.0 * srs.accuracy, static_cast<long long>(srs.points_kept));
  std::printf("attacked + SOR (k=2):        %5.1f%%  (%lld pts kept)\n",
              100.0 * sor.accuracy, static_cast<long long>(sor.points_kept));
  std::printf("\nPaper Finding 7: neither defense restores clean accuracy.\n");
  return 0;
}
