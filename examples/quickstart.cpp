// Quickstart: the smallest end-to-end tour of the public API.
//
//   1. Generate a synthetic indoor scene (the S3DIS substitute).
//   2. Get a "pre-trained" ResGCN from the model zoo (trains once and
//      caches under artifacts/ on first use).
//   3. Run the paper's two performance-degradation attacks on the color
//      field and compare against a random-noise baseline.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "pcss/core/attack.h"
#include "pcss/core/metrics.h"
#include "pcss/train/model_zoo.h"

using namespace pcss::core;

int main() {
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(/*count=*/1, /*seed=*/12345);
  const auto& cloud = clouds.front();

  // Clean prediction.
  const auto clean_pred = model->predict(cloud);
  const SegMetrics clean = evaluate_segmentation(clean_pred, cloud.labels, 13);
  std::printf("clean:          Acc=%5.1f%%  aIoU=%5.1f%%\n", 100.0 * clean.accuracy,
              100.0 * clean.aiou);

  // Norm-bounded attack (PGD-style, Algorithm 1 of the paper).
  AttackConfig bounded;
  bounded.norm = AttackNorm::kBounded;
  bounded.field = AttackField::kColor;
  bounded.steps = 50;
  bounded.epsilon = 0.15f;
  const AttackResult pgd = run_attack(*model, cloud, bounded);
  const SegMetrics m_pgd = evaluate_segmentation(pgd.predictions, cloud.labels, 13);
  std::printf("norm-bounded:   Acc=%5.1f%%  aIoU=%5.1f%%  (L2=%.2f, %d steps)\n",
              100.0 * m_pgd.accuracy, 100.0 * m_pgd.aiou, pgd.l2_color, pgd.steps_used);

  // Norm-unbounded attack (CW-style, Eq. 5 of the paper).
  AttackConfig unbounded;
  unbounded.norm = AttackNorm::kUnbounded;
  unbounded.field = AttackField::kColor;
  unbounded.cw_steps = 120;
  unbounded.success_accuracy = 1.0f / 13.0f;  // stop at random-guess level
  const AttackResult cw = run_attack(*model, cloud, unbounded);
  const SegMetrics m_cw = evaluate_segmentation(cw.predictions, cloud.labels, 13);
  std::printf("norm-unbounded: Acc=%5.1f%%  aIoU=%5.1f%%  (L2=%.2f, %d steps)\n",
              100.0 * m_cw.accuracy, 100.0 * m_cw.aiou, cw.l2_color, cw.steps_used);

  // Random noise at the same L2 barely hurts (paper Finding: attacks are
  // non-trivial, not an artifact of any perturbation).
  const AttackResult noise = random_noise_baseline(*model, cloud, cw.l2_color, 1);
  const SegMetrics m_noise = evaluate_segmentation(noise.predictions, cloud.labels, 13);
  std::printf("random noise:   Acc=%5.1f%%  aIoU=%5.1f%%  (same L2)\n",
              100.0 * m_noise.accuracy, 100.0 * m_noise.aiou);
  return 0;
}
