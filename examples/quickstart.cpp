// Quickstart: the smallest end-to-end tour of the public API.
//
//   1. Generate synthetic indoor scenes (the S3DIS substitute).
//   2. Get a "pre-trained" ResGCN from the model zoo (trains once and
//      caches under artifacts/ on first use).
//   3. Build an AttackEngine and run the paper's two performance-
//      degradation attacks on the color field, compare against a
//      random-noise baseline, then attack a whole batch at once.
//
// Build & run:  cmake --build build && ./build/examples/quickstart
#include <cstdio>

#include "pcss/core/attack_engine.h"
#include "pcss/core/metrics.h"
#include "pcss/train/model_zoo.h"

using namespace pcss::core;

int main() {
  pcss::train::ModelZoo zoo;
  auto model = zoo.resgcn_indoor();
  const auto clouds = zoo.indoor_eval_scenes(/*count=*/3, /*seed=*/12345);
  const auto& cloud = clouds.front();

  // Clean prediction.
  const auto clean_pred = model->predict(cloud);
  const SegMetrics clean = evaluate_segmentation(clean_pred, cloud.labels, 13);
  std::printf("clean:          Acc=%5.1f%%  aIoU=%5.1f%%\n", 100.0 * clean.accuracy,
              100.0 * clean.aiou);

  // Norm-bounded attack (PGD-style, Algorithm 1 of the paper). The
  // engine validates the config at construction and assembles the
  // strategy pipeline: degradation objective + epsilon-clip projection +
  // sign step + budget stop.
  AttackConfig bounded;
  bounded.norm = AttackNorm::kBounded;
  bounded.field = AttackField::kColor;
  bounded.steps = 50;
  bounded.epsilon = 0.15f;
  const AttackResult pgd = AttackEngine(*model, bounded).run(cloud);
  const SegMetrics m_pgd = evaluate_segmentation(pgd.predictions, cloud.labels, 13);
  std::printf("norm-bounded:   Acc=%5.1f%%  aIoU=%5.1f%%  (L2=%.2f, %d steps)\n",
              100.0 * m_pgd.accuracy, 100.0 * m_pgd.aiou, pgd.l2_color, pgd.steps_used);

  // Norm-unbounded attack (CW-style, Eq. 5 of the paper): tanh
  // projection + Adam + stall-restart stop.
  AttackConfig unbounded;
  unbounded.norm = AttackNorm::kUnbounded;
  unbounded.field = AttackField::kColor;
  unbounded.cw_steps = 120;
  unbounded.success_accuracy = 1.0f / 13.0f;  // stop at random-guess level
  const AttackEngine cw_engine(*model, unbounded);
  const AttackResult cw = cw_engine.run(cloud);
  const SegMetrics m_cw = evaluate_segmentation(cw.predictions, cloud.labels, 13);
  std::printf("norm-unbounded: Acc=%5.1f%%  aIoU=%5.1f%%  (L2=%.2f, %d steps)\n",
              100.0 * m_cw.accuracy, 100.0 * m_cw.aiou, cw.l2_color, cw.steps_used);

  // Random noise at the same L2 barely hurts (paper Finding: attacks are
  // non-trivial, not an artifact of any perturbation).
  const AttackResult noise = random_noise_baseline(*model, cloud, cw.l2_color, 1);
  const SegMetrics m_noise = evaluate_segmentation(noise.predictions, cloud.labels, 13);
  std::printf("random noise:   Acc=%5.1f%%  aIoU=%5.1f%%  (same L2)\n",
              100.0 * m_noise.accuracy, 100.0 * m_noise.aiou);

  // Batched execution: every cloud is attacked on the engine's worker
  // pool with an independent RNG stream (config.seed + index), so the
  // results do not depend on thread count or scheduling.
  const std::vector<AttackResult> batch = cw_engine.run_batch(clouds);
  double batch_acc = 0.0;
  for (size_t i = 0; i < clouds.size(); ++i) {
    batch_acc +=
        evaluate_segmentation(batch[i].predictions, clouds[i].labels, 13).accuracy;
  }
  std::printf("run_batch(%zu):   mean Acc=%5.1f%% after attack\n", clouds.size(),
              100.0 * batch_acc / static_cast<double>(clouds.size()));
  return 0;
}
