// Object-hiding walkthrough (the paper's integrity attack): recolor a
// board so PointNet++ labels it as wall — the board "disappears" from
// the model's view (paper Figs. 1 & 4). Exports before/after clouds as
// PLY (open in MeshLab/CloudCompare) and a 4-panel PPM.
#include <cstdio>

#include "pcss/core/attack_engine.h"
#include "pcss/core/metrics.h"
#include "pcss/data/indoor.h"
#include "pcss/pointcloud/io.h"
#include "pcss/train/model_zoo.h"
#include "pcss/viz/render.h"

using namespace pcss::core;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

int main() {
  pcss::train::ModelZoo zoo;
  auto model = zoo.pointnet2_indoor();

  // Pick a scene with a usable board, like the paper's Office 33 scenes.
  IndoorSceneGenerator gen(pcss::train::zoo_indoor_config());
  Rng rng(2024);
  const int source = static_cast<int>(IndoorClass::kBoard);
  const int target = static_cast<int>(IndoorClass::kWall);
  const auto cloud = gen.generate_with_class(rng, source, 12);
  std::printf("scene: %lld points, %lld on the board\n",
              static_cast<long long>(cloud.size()),
              static_cast<long long>(pcss::data::count_label(cloud, source)));

  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.norm = AttackNorm::kUnbounded;
  config.field = AttackField::kColor;
  config.cw_steps = 150;
  config.target_class = target;
  config.target_mask = mask_for_class(cloud.labels, source);
  config.success_psr = 0.95f;

  // The engine validates the config against the model (target class in
  // range, mask present) and reports optimization progress through the
  // observer callback.
  AttackEngine engine(*model, config);
  engine.set_observer([](const AttackProgress& p) {
    if (p.step % 25 == 0) {
      std::printf("  step %3d: PSR=%5.1f%%\n", p.step, 100.0 * p.gain);
    }
  });
  const AttackResult result = engine.run(cloud);
  const double psr = point_success_rate(result.predictions, config.target_mask, target);
  const SegMetrics oob = evaluate_oob(result.predictions, cloud.labels, 13,
                                      config.target_mask);
  std::printf("PSR=%.1f%% (board points now labeled wall), OOB accuracy=%.1f%%, "
              "L2=%.2f, %d steps\n",
              100.0 * psr, 100.0 * oob.accuracy, result.l2_color, result.steps_used);

  pcss::pointcloud::save_ply(cloud, "hiding_before.ply");
  pcss::pointcloud::save_ply(result.perturbed, "hiding_after.ply");
  const auto clean_pred = model->predict(cloud);
  const auto panel = pcss::viz::Image::hstack({
      pcss::viz::render_cloud_colors(cloud, 240, 240, pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_labels(cloud, clean_pred, 240, 240,
                                     pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_colors(result.perturbed, 240, 240,
                                     pcss::viz::ViewAxis::kSide),
      pcss::viz::render_cloud_labels(result.perturbed, result.predictions, 240, 240,
                                     pcss::viz::ViewAxis::kSide),
  });
  panel.save_ppm("hiding_panels.ppm");
  std::printf("wrote hiding_before.ply, hiding_after.ply, hiding_panels.ppm\n");
  return 0;
}
