// Outdoor availability attack (the paper's Semantic3D experiment): run
// the norm-unbounded color attack against RandLA-Net on a street scene
// and report per-class IoU before and after — the obstacle-relevant
// classes (car, building) collapse along with the rest.
#include <cstdio>

#include "pcss/core/attack_engine.h"
#include "pcss/core/metrics.h"
#include "pcss/data/outdoor.h"
#include "pcss/train/model_zoo.h"

using namespace pcss::core;
using pcss::data::kOutdoorNumClasses;
using pcss::data::outdoor_class_name;

int main() {
  pcss::train::ModelZoo zoo;
  auto model = zoo.randla_outdoor();
  const auto clouds = zoo.outdoor_eval_scenes(1, /*seed=*/777);
  const auto& cloud = clouds.front();

  const auto clean_pred = model->predict(cloud);
  const SegMetrics clean =
      evaluate_segmentation(clean_pred, cloud.labels, kOutdoorNumClasses);

  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.field = AttackField::kColor;
  config.cw_steps = 150;
  config.success_accuracy = 1.0f / 8.0f;
  const AttackResult adv = AttackEngine(*model, config).run(cloud);
  const SegMetrics attacked =
      evaluate_segmentation(adv.predictions, cloud.labels, kOutdoorNumClasses);

  std::printf("overall: Acc %.1f%% -> %.1f%%, aIoU %.1f%% -> %.1f%% (L2=%.2f)\n\n",
              100.0 * clean.accuracy, 100.0 * attacked.accuracy, 100.0 * clean.aiou,
              100.0 * attacked.aiou, adv.l2_color);
  std::printf("%-18s %10s %10s\n", "class", "IoU clean", "IoU attacked");
  for (int c = 0; c < kOutdoorNumClasses; ++c) {
    const double before = clean.per_class_iou[static_cast<size_t>(c)];
    const double after = attacked.per_class_iou[static_cast<size_t>(c)];
    if (before < 0.0 && after < 0.0) continue;  // class absent in this scene
    std::printf("%-18s %9.1f%% %9.1f%%\n", outdoor_class_name(c),
                100.0 * std::max(before, 0.0), 100.0 * std::max(after, 0.0));
  }
  return 0;
}
