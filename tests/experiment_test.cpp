// Edge cases of the experiment-glue aggregation used by every
// best/avg/worst table (and now by the runner's result documents).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "pcss/core/experiment.h"

using pcss::core::aggregate_cases;
using pcss::core::BestAvgWorst;
using pcss::core::CaseRecord;

namespace {

void expect_record_eq(const CaseRecord& a, const CaseRecord& b) {
  EXPECT_DOUBLE_EQ(a.distance, b.distance);
  EXPECT_DOUBLE_EQ(a.accuracy, b.accuracy);
  EXPECT_DOUBLE_EQ(a.aiou, b.aiou);
}

TEST(AggregateCases, EmptyInputThrows) {
  EXPECT_THROW(aggregate_cases({}), std::invalid_argument);
}

TEST(AggregateCases, SingleRecordIsItsOwnBestAvgWorst) {
  const CaseRecord only{3.5, 0.42, 0.31};
  const BestAvgWorst agg = aggregate_cases({only});
  expect_record_eq(agg.best, only);
  expect_record_eq(agg.avg, only);
  expect_record_eq(agg.worst, only);
}

TEST(AggregateCases, BestIsLowestAndWorstIsHighestAccuracy) {
  // "Best" for the attacker = most vulnerable cloud = lowest post-attack
  // accuracy; "worst" = most robust.
  const CaseRecord vulnerable{1.0, 0.10, 0.05};
  const CaseRecord middling{2.0, 0.50, 0.40};
  const CaseRecord robust{3.0, 0.90, 0.80};
  const BestAvgWorst agg = aggregate_cases({middling, robust, vulnerable});
  expect_record_eq(agg.best, vulnerable);
  expect_record_eq(agg.worst, robust);
  expect_record_eq(agg.avg, {2.0, 0.5, (0.05 + 0.40 + 0.80) / 3.0});
}

TEST(AggregateCases, AccuracyTieKeepsTheFirstRecordWhole) {
  // Ties on post-attack accuracy must not mix fields from different
  // records: the earliest record wins both slots wholesale (strict
  // comparisons), so distance/aIoU stay consistent with the accuracy
  // they were measured with.
  const CaseRecord first{1.0, 0.25, 0.10};
  const CaseRecord second{9.0, 0.25, 0.90};
  const BestAvgWorst agg = aggregate_cases({first, second});
  expect_record_eq(agg.best, first);
  expect_record_eq(agg.worst, first);
  expect_record_eq(agg.avg, {5.0, 0.25, 0.5});
}

TEST(AggregateCases, AverageIsElementWise) {
  const BestAvgWorst agg = aggregate_cases({{2.0, 0.2, 0.1}, {4.0, 0.6, 0.5}});
  expect_record_eq(agg.avg, {3.0, 0.4, 0.3});
}

}  // namespace
