// pcss::runner contract tests: JSON determinism and round-trips, the
// content-addressed ResultStore, the spec registry's shape, and the
// executor's caching guarantees — a second run of an unchanged spec
// executes zero attack steps, interrupted runs resume from shard
// caches, and the stored document is byte-identical across executor
// thread counts and shard sizes.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/runner/executor.h"
#include "pcss/runner/hash.h"
#include "pcss/runner/json.h"
#include "pcss/runner/result_store.h"
#include "tiny_provider.h"

namespace {

namespace fs = std::filesystem;
using namespace pcss::runner;
using pcss_tests::TinyProvider;
using pcss_tests::mini_grid_spec;
using pcss_tests::mini_shared_spec;
using pcss_tests::mini_spec;
using pcss_tests::tiny_options;
using pcss_tests::tiny_scale;

/// Fresh store root per test, removed on teardown.
class RunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("pcss_runner_test_" +
              std::string(::testing::UnitTest::GetInstance()->current_test_info()->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  std::string root_;
};

TEST(RunnerJson, RoundTripsNestedValues) {
  Json doc = Json::object();
  doc.set("name", "mini");
  doc.set("ok", true);
  doc.set("none", Json());
  Json numbers = Json::array();
  numbers.push(0.1);
  numbers.push(-3.0);
  numbers.push(1e-9);
  numbers.push(12345678901234.0);
  doc.set("numbers", std::move(numbers));
  doc.set("escaped", std::string("line\nbreak \"quoted\" \\slash"));
  const std::string text = doc.dump();
  EXPECT_EQ(Json::parse(text), doc);
  // Determinism: dumping the parse reproduces the bytes exactly.
  EXPECT_EQ(Json::parse(text).dump(), text);
}

TEST(RunnerJson, ShortestRoundTripNumberFormat) {
  EXPECT_EQ(Json(0.1).dump(), "0.1");
  EXPECT_EQ(Json(3).dump(), "3");
  EXPECT_EQ(Json(1.0 / 3.0).dump(), "0.3333333333333333");
  EXPECT_DOUBLE_EQ(Json::parse(Json(1.0 / 3.0).dump()).number(), 1.0 / 3.0);
}

TEST(RunnerJson, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse("{"), std::runtime_error);
  EXPECT_THROW(Json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(Json::parse("{} trailing"), std::runtime_error);
  EXPECT_THROW(Json::parse("{\"a\":1,\"a\":2}"), std::runtime_error);
  EXPECT_THROW(Json::parse("nope"), std::runtime_error);
}

TEST_F(RunnerTest, StorePutGetEraseAndCounters) {
  ResultStore store(root_);
  EXPECT_FALSE(store.get("missing.json").has_value());
  EXPECT_EQ(store.misses(), 1);
  store.put("a/b/doc.json", "{\"x\": 1}\n");
  const auto loaded = store.get("a/b/doc.json");
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, "{\"x\": 1}\n");
  EXPECT_EQ(store.hits(), 1);
  // The atomic write leaves no temporary siblings behind.
  int files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(root_)) {
    if (entry.is_regular_file()) ++files;
  }
  EXPECT_EQ(files, 1);
  EXPECT_TRUE(store.erase("a/b/doc.json"));
  EXPECT_FALSE(store.erase("a/b/doc.json"));
  EXPECT_FALSE(store.get("a/b/doc.json").has_value());
}

TEST_F(RunnerTest, StoreListFiltersByPrefix) {
  ResultStore store(root_);
  store.put("mini-00aa.json", "{}");
  store.put("mini-00aa.perf.json", "{}");
  store.put("shards/mini-00aa-m0-v0-o0-n2.json", "{}");
  store.put("other-11bb.json", "{}");
  // A stale temporary from an interrupted put() must not be listed as
  // a stored result.
  std::ofstream(root_ + "/mini-00aa.json.tmp.12345") << "{ torn";
  const auto keys = store.list("mini-");
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "mini-00aa.json");
  EXPECT_EQ(keys[1], "mini-00aa.perf.json");
  EXPECT_EQ(keys[2], "shards/mini-00aa-m0-v0-o0-n2.json");
}

TEST(RunnerHash, StableAndSensitive) {
  EXPECT_EQ(Fnv64().update("").hex(), "cbf29ce484222325");
  EXPECT_EQ(Fnv64().update("abc").hex(), Fnv64().update("abc").hex());
  EXPECT_NE(Fnv64().update("abc").hex(), Fnv64().update("abd").hex());
  EXPECT_EQ(Fnv64().update("abc").hex().size(), 16u);
}

TEST(RunnerRegistry, SpecsAreWellFormed) {
  const auto& registry = spec_registry();
  ASSERT_GE(registry.size(), 4u);
  std::set<std::string> names;
  for (const ExperimentSpec& spec : registry) {
    EXPECT_TRUE(names.insert(spec.name).second) << "duplicate spec " << spec.name;
    EXPECT_FALSE(spec.models.empty()) << spec.name;
    EXPECT_FALSE(spec.variants.empty()) << spec.name;
    // Noise baselines must calibrate against an *earlier* variant.
    std::set<std::string> seen;
    for (const AttackVariant& variant : spec.variants) {
      if (variant.kind == VariantKind::kNoiseBaseline) {
        EXPECT_TRUE(seen.count(variant.calibrate_from))
            << spec.name << "/" << variant.label << " calibrates from '"
            << variant.calibrate_from << "'";
      }
      seen.insert(variant.label);
    }
  }
  ASSERT_NE(find_spec("table3"), nullptr);
  EXPECT_EQ(find_spec("table3")->models.size(), 3u);
  EXPECT_EQ(find_spec("nope"), nullptr);
}

TEST(RunnerKey, SensitiveToScaleAndWeights) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();
  const Scale scale = tiny_scale();
  const std::string base = run_key(spec, scale, provider);
  EXPECT_EQ(base, run_key(spec, scale, provider)) << "key must be deterministic";
  EXPECT_EQ(base.rfind("mini-", 0), 0u);

  Scale bigger = scale;
  bigger.pgd_steps = 5;
  EXPECT_NE(base, run_key(spec, bigger, provider));

  TinyProvider retrained("tiny-weights-v2");
  EXPECT_NE(base, run_key(spec, scale, retrained));
}

TEST_F(RunnerTest, SecondRunIsAPureCacheHit) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.attack_steps, 0);
  EXPECT_EQ(first.shards_from_cache, 0);
  EXPECT_EQ(first.shards_total, 4);  // 2 variants x ceil(3 clouds / shard_size 2)
  EXPECT_TRUE(fs::exists(first.path));
  ASSERT_EQ(first.document.models.size(), 1u);
  ASSERT_EQ(first.document.models[0].variants.size(), 2u);
  const VariantResult& bounded = first.document.models[0].variants[0];
  ASSERT_EQ(bounded.cases.size(), 3u);
  for (const CaseRow& row : bounded.cases) {
    EXPECT_GE(row.record.accuracy, 0.0);
    EXPECT_LE(row.record.accuracy, 1.0);
    EXPECT_GT(row.steps, 0);
  }
  // The noise baseline is calibrated to the bounded attack's per-cloud
  // L2 and costs no optimization steps.
  const VariantResult& noise = first.document.models[0].variants[1];
  ASSERT_EQ(noise.cases.size(), 3u);
  for (std::size_t i = 0; i < noise.cases.size(); ++i) {
    EXPECT_EQ(noise.cases[i].steps, 0);
    EXPECT_NEAR(noise.cases[i].l2_color, bounded.cases[i].l2_color,
                0.05 * (1.0 + bounded.cases[i].l2_color));
  }

  store.reset_counters();
  const RunOutcome second = run_spec(spec, provider, store, options);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.attack_steps, 0) << "a cache hit must execute no attack steps";
  EXPECT_EQ(second.shards_total, 0);
  EXPECT_EQ(store.hits(), 1);
  EXPECT_EQ(store.misses(), 0);
  EXPECT_EQ(second.json, first.json) << "replayed bytes must match the stored document";
}

TEST_F(RunnerTest, ForceIsByteIdenticalAcrossThreadCounts) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_spec();

  RunOptions one_thread = tiny_options();
  one_thread.num_threads = 1;
  const RunOutcome first = run_spec(spec, provider, store, one_thread);

  RunOptions two_threads = tiny_options();
  two_threads.num_threads = 2;
  two_threads.force = true;
  const RunOutcome second = run_spec(spec, provider, store, two_threads);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.shards_from_cache, 0) << "--force must ignore shard caches";
  EXPECT_GT(second.attack_steps, 0);
  EXPECT_EQ(second.json, first.json)
      << "document bytes must not depend on the worker thread count";
}

TEST_F(RunnerTest, CorruptCachedDocumentIsTreatedAsAMiss) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  store.put(first.document.key + ".json", "{ not json");
  const RunOutcome recovered = run_spec(spec, provider, store, options);
  EXPECT_FALSE(recovered.cache_hit);
  EXPECT_EQ(recovered.json, first.json) << "recompute must repair the corrupt document";
  EXPECT_EQ(recovered.attack_steps, 0) << "shard cache still valid, so no live steps";

  // Parseable JSON with a malformed field (stoull would throw a
  // logic_error, not a runtime_error) must also degrade to a miss.
  std::string mangled = first.json;
  const auto pos = mangled.find("\"scene_seed\": \"4242\"");
  ASSERT_NE(pos, std::string::npos);
  mangled.replace(pos, 20, "\"scene_seed\": \"abcd\"");
  store.put(first.document.key + ".json", mangled);
  const RunOutcome repaired = run_spec(spec, provider, store, options);
  EXPECT_FALSE(repaired.cache_hit);
  EXPECT_EQ(repaired.json, first.json);
}

TEST_F(RunnerTest, InterruptedRunResumesFromShardCache) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  // Simulate a crash after the shards landed but before the document:
  // the resumed run recomputes nothing.
  ASSERT_TRUE(store.erase(first.document.key + ".json"));
  const RunOutcome resumed = run_spec(spec, provider, store, options);
  EXPECT_FALSE(resumed.cache_hit);
  EXPECT_EQ(resumed.attack_steps, 0);
  EXPECT_EQ(resumed.shards_from_cache, resumed.shards_total);
  EXPECT_EQ(resumed.json, first.json);
}

TEST_F(RunnerTest, ShardSizeDoesNotChangeTheBytes) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();

  ResultStore store_a(root_ + "-a");
  RunOptions whole = tiny_options();
  whole.shard_size = 8;  // everything in one shard
  const RunOutcome coarse = run_spec(spec, provider, store_a, whole);

  ResultStore store_b(root_ + "-b");
  RunOptions single = tiny_options();
  single.shard_size = 1;  // one cloud per shard
  const RunOutcome fine = run_spec(spec, provider, store_b, single);
  EXPECT_EQ(coarse.json, fine.json)
      << "per-cloud RNG must stay seed + global index under any sharding";
  EXPECT_EQ(fine.shards_total, 6);  // 2 variants x 3 clouds

  fs::remove_all(root_ + "-a");
  fs::remove_all(root_ + "-b");
}

TEST_F(RunnerTest, SharedDeltaSpecRunsAndCaches) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_shared_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  ASSERT_EQ(first.document.models.size(), 1u);
  const VariantResult& universal = first.document.models[0].variants[0];
  EXPECT_EQ(universal.kind, VariantKind::kSharedDelta);
  ASSERT_EQ(universal.accuracy_before.size(), 3u);
  ASSERT_EQ(universal.accuracy_after.size(), 3u);
  EXPECT_GT(universal.shared_steps, 0);
  EXPECT_GT(universal.shared_delta_l2, 0.0);
  EXPECT_EQ(first.shards_total, 1) << "joint optimization is one indivisible shard";

  const RunOutcome second = run_spec(spec, provider, store, options);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.json, first.json);
}

TEST(RunnerRegistry, DefenseGridSpecsAreRegistered) {
  for (const char* name : {"table8", "defense_grid"}) {
    const ExperimentSpec* spec = find_spec(name);
    ASSERT_NE(spec, nullptr) << name;
    EXPECT_EQ(spec->kind, SpecKind::kDefenseGrid) << name;
    EXPECT_EQ(spec->models.size(), 1u) << name;
    EXPECT_FALSE(spec->victims.empty()) << name;
    EXPECT_FALSE(spec->defenses.empty()) << name;
    for (const AttackVariant& variant : spec->variants) {
      EXPECT_EQ(variant.kind, VariantKind::kPerCloud) << name << "/" << variant.label;
    }
    // Every declarative defense must materialize (bad params throw here,
    // not mid-run) and produce a distinct describe string.
    std::set<std::string> describes;
    for (const DefensePipelineSpec& defense : spec->defenses) {
      EXPECT_TRUE(describes.insert(build_pipeline(defense).describe()).second)
          << name << "/" << defense.label;
    }
  }
}

TEST(RunnerKey, GridKeySensitiveToDefensesAndVictims) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_grid_spec();
  const Scale scale = tiny_scale();
  const std::string base = run_key(spec, scale, provider);
  EXPECT_EQ(base, run_key(spec, scale, provider));

  ExperimentSpec tweaked = mini_grid_spec();
  tweaked.defenses[1].stages[0].srs_fraction = 0.2f;
  EXPECT_NE(base, run_key(tweaked, scale, provider)) << "stage params must re-key";

  ExperimentSpec fewer_victims = mini_grid_spec();
  fewer_victims.victims.pop_back();
  EXPECT_NE(base, run_key(fewer_victims, scale, provider));

  ExperimentSpec other_seed = mini_grid_spec();
  other_seed.defense_seed = 1;
  EXPECT_NE(base, run_key(other_seed, scale, provider));
}

TEST_F(RunnerTest, GridSecondRunIsAPureCacheHit) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_grid_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.attack_steps, 0);
  EXPECT_EQ(first.shards_total, 2);  // ceil(3 clouds / shard_size 2)
  EXPECT_EQ(first.document.kind, "defense_grid");
  EXPECT_EQ(first.document.source_model, "resgcn_indoor");
  // (clean + bounded) x 3 defenses x 2 victims.
  ASSERT_EQ(first.document.grid.size(), 2u * 3u * 2u);
  ASSERT_EQ(first.document.grid_attacks.size(), 2u);
  EXPECT_EQ(first.document.grid_attacks[0].label, "clean");
  EXPECT_EQ(first.document.grid_attacks[0].total_steps, 0);
  EXPECT_GT(first.document.grid_attacks[1].total_steps, 0);
  for (const GridCellResult& cell : first.document.grid) {
    ASSERT_EQ(cell.cases.size(), 3u) << cell.attack << "/" << cell.defense;
    for (const GridCaseRow& row : cell.cases) {
      EXPECT_GE(row.accuracy, 0.0);
      EXPECT_LE(row.accuracy, 1.0);
      EXPECT_GT(row.points_kept, 0);
    }
    if (cell.defense == "none") {
      EXPECT_EQ(cell.cases[0].points_kept, 96);
    } else {
      EXPECT_LT(cell.cases[0].points_kept, 96);
    }
  }
  // The no-defense cell on the source must equal what find_cell returns.
  const GridCellResult& cell = find_cell(first.document, "bounded", "none", "resgcn_indoor");
  EXPECT_EQ(cell.victim, "resgcn_indoor");
  EXPECT_THROW(find_cell(first.document, "bounded", "nope", "resgcn_indoor"),
               std::out_of_range);

  const RunOutcome second = run_spec(spec, provider, store, options);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.attack_steps, 0);
  EXPECT_EQ(second.json, first.json);
}

TEST_F(RunnerTest, GridBytesInvariantAcrossThreadsAndShardSizes) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_grid_spec();

  ResultStore store_a(root_ + "-a");
  RunOptions one = tiny_options();
  const RunOutcome base = run_spec(spec, provider, store_a, one);

  RunOptions two = tiny_options();
  two.num_threads = 2;
  two.force = true;
  const RunOutcome threaded = run_spec(spec, provider, store_a, two);
  EXPECT_FALSE(threaded.cache_hit);
  EXPECT_EQ(threaded.json, base.json)
      << "grid documents must not depend on the worker thread count";

  ResultStore store_b(root_ + "-b");
  RunOptions fine = tiny_options();
  fine.shard_size = 1;
  const RunOutcome sharded = run_spec(spec, provider, store_b, fine);
  EXPECT_EQ(sharded.shards_total, 3);
  EXPECT_EQ(sharded.json, base.json)
      << "defense streams must stay keyed to the global cloud index";

  fs::remove_all(root_ + "-a");
  fs::remove_all(root_ + "-b");
}

TEST_F(RunnerTest, SidecarReportsPoolAndMetricsForThreadedRuns) {
  // PR 3 regression: the .perf.json sidecar used to omit the tensor_pool
  // block whenever worker threads did the allocating. It must now always
  // be present (aggregated across the per-thread pool slots), alongside
  // the folded-in metrics registry snapshot.
  TinyProvider provider;
  ResultStore store(root_);
  RunOptions two = tiny_options();
  two.num_threads = 2;
  const RunOutcome out = run_spec(mini_spec(), provider, store, two);

  const auto sidecar = store.get(out.document.key + ".perf.json");
  ASSERT_TRUE(sidecar.has_value());
  const Json perf = Json::parse(*sidecar);
  const Json* pool = perf.find("tensor_pool");
  ASSERT_NE(pool, nullptr) << "tensor_pool block must exist for threaded runs";
  EXPECT_GT(pool->at("acquires").number(), 0.0);
  EXPECT_GE(pool->at("threads").number(), 1.0);
  EXPECT_GE(pool->at("hit_rate").number(), pool->at("hit_rate_min").number());
  EXPECT_LE(pool->at("hit_rate").number(), 1.0);

  const Json* metrics = perf.find("metrics");
  ASSERT_NE(metrics, nullptr) << "registry snapshot must be folded into the sidecar";
  const Json* counters = metrics->find("counters");
  ASSERT_NE(counters, nullptr);
  const Json* steps = counters->find("attack.steps");
  ASSERT_NE(steps, nullptr);
  EXPECT_GT(steps->number(), 0.0);
}

TEST_F(RunnerTest, GridResumesFromShardCache) {
  TinyProvider provider;
  ResultStore store(root_);
  const ExperimentSpec spec = mini_grid_spec();
  const RunOptions options = tiny_options();

  const RunOutcome first = run_spec(spec, provider, store, options);
  ASSERT_TRUE(store.erase(first.document.key + ".json"));
  const RunOutcome resumed = run_spec(spec, provider, store, options);
  EXPECT_FALSE(resumed.cache_hit);
  EXPECT_EQ(resumed.attack_steps, 0) << "all grid shards must replay from the cache";
  EXPECT_EQ(resumed.shards_from_cache, resumed.shards_total);
  EXPECT_EQ(resumed.json, first.json);
}

TEST_F(RunnerTest, GridDocumentSurvivesJsonRoundTrip) {
  TinyProvider provider;
  ResultStore store(root_);
  const RunOutcome out = run_spec(mini_grid_spec(), provider, store, tiny_options());
  const RunDocument reparsed = document_from_json(Json::parse(out.json));
  EXPECT_EQ(document_to_json(reparsed).dump() + "\n", out.json);
  EXPECT_EQ(reparsed.defense_seed, 2024u);
}

TEST_F(RunnerTest, DocumentSurvivesJsonRoundTrip) {
  TinyProvider provider;
  ResultStore store(root_);
  const RunOutcome out = run_spec(mini_spec(), provider, store, tiny_options());
  const RunDocument reparsed = document_from_json(Json::parse(out.json));
  EXPECT_EQ(document_to_json(reparsed).dump() + "\n", out.json);
}

}  // namespace
