#include <gtest/gtest.h>

#include <algorithm>

#include "pcss/core/attack.h"
#include "pcss/core/defense.h"
#include "pcss/core/experiment.h"
#include "pcss/core/metrics.h"
#include "pcss/core/transfer.h"
#include "pcss/data/indoor.h"
#include "pcss/models/pointnet2.h"
#include "pcss/train/trainer.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::models::PointNet2Config;
using pcss::models::PointNet2Seg;
using pcss::tensor::Rng;

namespace {

/// End-to-end pipeline on PointNet++: train -> attack -> defend ->
/// transfer. One fixture so the (CPU-expensive) training happens once.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new IndoorSceneGenerator({.num_points = 144});
    PointNet2Config config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.c1 = 12;
    config.c2 = 16;
    config.head = 16;
    Rng init_a(31);
    model_a_ = new PointNet2Seg(config, init_a);
    Rng init_b(32);
    model_b_ = new PointNet2Seg(config, init_b);

    pcss::train::TrainConfig tc;
    tc.iterations = 120;
    tc.scene_pool = 5;
    tc.seed = 55;
    pcss::train::train_model(
        *model_a_, [](Rng& rng) { return gen_->generate(rng); }, tc);
    tc.seed = 66;  // independently trained twin for transfer
    pcss::train::train_model(
        *model_b_, [](Rng& rng) { return gen_->generate(rng); }, tc);

    Rng eval_rng(91);
    cloud_ = new pcss::data::PointCloud(gen_->generate(eval_rng));
  }

  static void TearDownTestSuite() {
    delete model_a_;
    delete model_b_;
    delete gen_;
    delete cloud_;
  }

  static IndoorSceneGenerator* gen_;
  static PointNet2Seg* model_a_;
  static PointNet2Seg* model_b_;
  static pcss::data::PointCloud* cloud_;
};

IndoorSceneGenerator* PipelineTest::gen_ = nullptr;
PointNet2Seg* PipelineTest::model_a_ = nullptr;
PointNet2Seg* PipelineTest::model_b_ = nullptr;
pcss::data::PointCloud* PipelineTest::cloud_ = nullptr;

TEST_F(PipelineTest, TrainedModelsBeatChance) {
  const auto pa = model_a_->predict(*cloud_);
  const auto pb = model_b_->predict(*cloud_);
  const double acc_a = evaluate_segmentation(pa, cloud_->labels, 13).accuracy;
  const double acc_b = evaluate_segmentation(pb, cloud_->labels, 13).accuracy;
  EXPECT_GT(acc_a, 0.45);
  EXPECT_GT(acc_b, 0.45);
}

TEST_F(PipelineTest, AttackThenDefendPipeline) {
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 25;
  const AttackResult adv = run_attack(*model_a_, *cloud_, config);
  const double adv_acc =
      evaluate_segmentation(adv.predictions, cloud_->labels, 13).accuracy;

  const auto clean_pred = model_a_->predict(*cloud_);
  const double clean_acc =
      evaluate_segmentation(clean_pred, cloud_->labels, 13).accuracy;
  ASSERT_LT(adv_acc, clean_acc);

  // SOR removes some perturbed points; accuracy on the defended cloud
  // should not be lower than the undefended adversarial accuracy by much
  // (defense never makes things dramatically worse).
  const auto defended = sor_defense(adv.perturbed, 2, 1.0f, 1.0f);
  const DefendedEval eval = evaluate_defended(*model_a_, defended, 13);
  EXPECT_LE(defended.size(), adv.perturbed.size());
  EXPECT_GE(eval.accuracy, 0.0);
}

TEST_F(PipelineTest, AdversarialSampleTransfersAcrossSeeds) {
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 25;
  const AttackResult adv = run_attack(*model_a_, *cloud_, config);
  const auto self = evaluate_segmentation(adv.predictions, cloud_->labels, 13);
  const auto transferred = evaluate_transfer(*model_b_, adv.perturbed, 13);
  const auto clean_b = evaluate_transfer(*model_b_, *cloud_, 13);
  // Transfer is weaker than the white-box attack but should still hurt.
  EXPECT_LT(transferred.accuracy, clean_b.accuracy + 1e-9);
  EXPECT_GE(transferred.accuracy, self.accuracy - 1e-9);
}

TEST_F(PipelineTest, AttackCasesAggregation) {
  std::vector<pcss::data::PointCloud> clouds;
  Rng rng(101);
  for (int i = 0; i < 2; ++i) clouds.push_back(gen_->generate(rng));
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 6;
  const auto records = attack_cases(*model_a_, clouds, config, /*use_l0_distance=*/false);
  ASSERT_EQ(records.size(), 2u);
  const auto agg = aggregate_cases(records);
  EXPECT_LE(agg.best.accuracy, agg.worst.accuracy);
  EXPECT_GE(agg.avg.distance, 0.0);
  const auto clean = clean_metrics(*model_a_, clouds);
  EXPECT_GT(clean.accuracy, agg.avg.accuracy - 1.0);  // sanity: finite values
}

}  // namespace
