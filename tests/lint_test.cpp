// pcss_lint contract tests: every rule detects its seeded corpus
// violation with the exact rule ID and line number, good twins and
// scope exemptions stay clean, suppression comments behave, and the
// real tree (src/ tools/ tests/) is lint-clean — so a new violation
// anywhere fails this suite before it ever reaches the CI lint job.
//
// The corpus lives in tests/lint_corpus/<RULE>/; "bad" files carry the
// violations, "good" twins the closest legal idiom, and path-scoped
// rules get files under mirrored src/core-style subtrees. The binary
// under test and the corpus root come in via compile definitions
// (PCSS_LINT_BIN, PCSS_LINT_CORPUS, PCSS_SOURCE_ROOT).
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <string>
#include <vector>

namespace {

struct LintRun {
  std::string output;
  int exit_code = -1;
};

/// Runs the pcss_lint binary with `args`, capturing stdout+stderr.
LintRun run_lint(const std::string& args) {
  const std::string cmd = std::string(PCSS_LINT_BIN) + " " + args + " 2>&1";
  LintRun run;
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) {
    ADD_FAILURE() << "popen failed for: " << cmd;
    return run;
  }
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) != nullptr) {
    run.output += buffer.data();
  }
  const int status = pclose(pipe);
  run.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return run;
}

std::string corpus(const std::string& rel) {
  return std::string(PCSS_LINT_CORPUS) + "/" + rel;
}

/// Splits output into lines for exact-match assertions.
std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(current);
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back(current);
  return lines;
}

/// Asserts the run flagged exactly `expected` as "file:line: error: RULE"
/// prefixes, in order, and exited 1.
void expect_errors(const std::string& rel,
                   const std::vector<std::pair<int, std::string>>& expected) {
  const LintRun run = run_lint("--errors-only " + corpus(rel));
  EXPECT_EQ(run.exit_code, 1) << run.output;
  const std::vector<std::string> lines = lines_of(run.output);
  ASSERT_EQ(lines.size(), expected.size()) << run.output;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const std::string prefix = corpus(rel) + ":" + std::to_string(expected[i].first) +
                               ": error: " + expected[i].second + ":";
    EXPECT_EQ(lines[i].rfind(prefix, 0), 0u)
        << "line " << i << " is \"" << lines[i] << "\", want prefix \"" << prefix << "\"";
  }
}

void expect_clean(const std::string& rel) {
  const LintRun run = run_lint("--errors-only " + corpus(rel));
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_TRUE(run.output.empty()) << run.output;
}

TEST(PcssLint, HelpExitsZero) {
  const LintRun run = run_lint("--help");
  EXPECT_EQ(run.exit_code, 0);
  EXPECT_NE(run.output.find("usage: pcss_lint"), std::string::npos) << run.output;
}

TEST(PcssLint, ListRulesNamesEveryRule) {
  const LintRun run = run_lint("--list-rules");
  EXPECT_EQ(run.exit_code, 0);
  for (const char* rule : {"D001", "D002", "D003", "D004", "D005", "D006", "D007",
                           "D008", "C001", "C002"}) {
    EXPECT_NE(run.output.find(rule), std::string::npos) << "missing " << rule;
  }
}

TEST(PcssLint, NoArgumentsIsAUsageError) {
  EXPECT_EQ(run_lint("").exit_code, 2);
  EXPECT_EQ(run_lint("--no-such-flag").exit_code, 2);
  EXPECT_EQ(run_lint("no/such/file.cpp").exit_code, 2);
}

TEST(PcssLint, D001UnorderedIteration) {
  expect_errors("D001/bad.cpp", {{11, "D001"}, {12, "D001"}});
  expect_clean("D001/good.cpp");
}

TEST(PcssLint, D002NondeterministicSources) {
  expect_errors("D002/src/core/bad.cpp", {{8, "D002"}, {9, "D002"}, {10, "D002"}});
  expect_clean("D002/src/core/good.cpp");
  // Scope: the same constructs are legal outside src/{core,tensor,runner}.
  expect_clean("D002/bench/ok_out_of_scope.cpp");
}

TEST(PcssLint, D003RawFloatBuffers) {
  expect_errors("D003/bad.cpp", {{6, "D003"}, {7, "D003"}});
  expect_clean("D003/good.cpp");
  // Scope: pool.cpp owns raw storage by design.
  expect_clean("D003/src/tensor/pool.cpp");
}

TEST(PcssLint, D004FpContraction) {
  expect_errors("D004/src/tensor/bad.cpp", {{4, "D004"}, {7, "D004"}});
  expect_clean("D004/src/tensor/good.cpp");
}

TEST(PcssLint, D005UnorderedFloatReductions) {
  expect_errors("D005/bad.cpp", {{7, "D005"}, {8, "D005"}});
  expect_clean("D005/good.cpp");
  // Scope: the kernel source spells its reductions out by hand.
  expect_clean("D005/src/tensor/simd_kernels.inc");
}

TEST(PcssLint, D006TelemetryInSerializationTUs) {
  // The include (6) and both obs:: uses (9, 11) flag; the namespace
  // alias on 10 spells "pcss::obs" without a trailing "::" and stays
  // quiet — its uses are what leak, and those are caught.
  expect_errors("D006/src/runner/result_store.cpp",
                {{6, "D006"}, {9, "D006"}, {11, "D006"}});
  expect_clean("D006/src/runner/json.cpp");
  // Scope: the executor is the intended home of telemetry.
  expect_clean("D006/src/runner/executor.cpp");
}

TEST(PcssLint, D007ServeSymbolsInEngineLayers) {
  // The include (6) and both serve:: uses (9, 11) flag; the namespace
  // alias on 10 spells "pcss::serve" without a trailing "::" and stays
  // quiet — its uses are what reverse the arrow, and those are caught.
  expect_errors("D007/src/runner/bad.cpp", {{6, "D007"}, {9, "D007"}, {11, "D007"}});
  expect_clean("D007/src/runner/good.cpp");
  // Scope: client-side code above the engine may name the server.
  expect_clean("D007/tools/ok_out_of_scope.cpp");
}

TEST(PcssLint, D008PoolTrafficInPlanTUs) {
  // Both acquire spellings flag (9, 10); pool::release on 11-12 is not
  // an allocation and stays quiet.
  expect_errors("D008/src/tensor/plan.cpp", {{9, "D008"}, {10, "D008"}});
  expect_clean("D008/include/pcss/tensor/plan.h");
  // Scope: the rest of the tensor layer acquires from the pool by design.
  expect_clean("D008/src/tensor/ops.cpp");
}

TEST(PcssLint, C001AdHocThreads) {
  expect_errors("C001/bad.cpp", {{7, "C001"}, {8, "C001"}});
  expect_clean("C001/good.cpp");
}

TEST(PcssLint, C002UnannotatedMutex) {
  expect_errors("C002/bad.cpp", {{14, "C002"}});
  expect_clean("C002/good.cpp");
}

TEST(PcssLint, SuppressionsSilenceOnlyTheNamedRule) {
  // Same-line (7), previous-line (9) and multi-rule (11) allows
  // suppress; the allow naming the wrong rule (10) does not.
  expect_errors("suppress/bad_allowed.cpp", {{10, "D005"}});

  // Without --errors-only the suppressed findings surface as notes.
  const LintRun run = run_lint(corpus("suppress/bad_allowed.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  for (int line : {7, 9, 11}) {
    const std::string note = corpus("suppress/bad_allowed.cpp") + ":" +
                             std::to_string(line) + ": note: suppressed D005:";
    EXPECT_NE(run.output.find(note), std::string::npos) << run.output;
  }
  EXPECT_NE(run.output.find("1 error(s), 3 suppressed"), std::string::npos) << run.output;
}

TEST(PcssLint, ErrorsOnlyOmitsNotesAndSummary) {
  const LintRun run = run_lint("--errors-only " + corpus("suppress/bad_allowed.cpp"));
  EXPECT_EQ(run.exit_code, 1);
  EXPECT_EQ(run.output.find("note:"), std::string::npos) << run.output;
  EXPECT_EQ(run.output.find("pcss_lint:"), std::string::npos) << run.output;
}

TEST(PcssLint, CorpusIsSkippedWhenRecursingDirectories) {
  // Passing the tests/ directory must not descend into lint_corpus/ —
  // otherwise the seeded violations would fail the CI tree scan.
  const LintRun run = run_lint(std::string(PCSS_SOURCE_ROOT) + "/tests");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("lint_corpus"), std::string::npos) << run.output;
}

TEST(PcssLint, RealTreeIsLintClean) {
  const std::string root(PCSS_SOURCE_ROOT);
  const LintRun run =
      run_lint(root + "/src " + root + "/tools " + root + "/tests");
  EXPECT_EQ(run.exit_code, 0) << run.output;
  EXPECT_EQ(run.output.find("error:"), std::string::npos) << run.output;
}

}  // namespace
