#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "pcss/core/attack.h"
#include "pcss/core/metrics.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

using namespace pcss::core;
namespace ops = pcss::tensor::ops;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::models::ModelInput;
using pcss::models::ResGCNConfig;
using pcss::models::ResGCNSeg;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;

namespace {

/// Small trained ResGCN shared by the attack tests (trained once; these
/// tests need a model whose clean accuracy is well above chance).
class AttackFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new IndoorSceneGenerator({.num_points = 160});
    Rng init(21);
    ResGCNConfig config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.channels = 16;
    config.blocks = 2;
    model_ = new ResGCNSeg(config, init);

    Rng scenes(91);
    std::vector<pcss::data::PointCloud> pool;
    for (int i = 0; i < 6; ++i) pool.push_back(gen_->generate(scenes));
    pcss::tensor::optim::Adam opt(model_->parameters(), 0.02f);
    for (int it = 0; it < 150; ++it) {
      const auto& cloud = pool[static_cast<size_t>(it) % pool.size()];
      ModelInput input = ModelInput::plain(cloud);
      Tensor logits = model_->forward(input, true);
      Tensor loss = ops::nll_loss_masked(ops::log_softmax_rows(logits), cloud.labels, {});
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
    Rng eval_rng(777);
    // Like the paper's scene selection, require enough window points so
    // the object-hiding tests have a workable X_T.
    eval_cloud_ = new pcss::data::PointCloud(gen_->generate_with_class(
        eval_rng, static_cast<int>(IndoorClass::kWindow), 8));
  }

  static void TearDownTestSuite() {
    delete model_;
    delete gen_;
    delete eval_cloud_;
    model_ = nullptr;
    gen_ = nullptr;
    eval_cloud_ = nullptr;
  }

  static double clean_accuracy(const pcss::data::PointCloud& cloud) {
    const auto pred = model_->predict(cloud);
    return evaluate_segmentation(pred, cloud.labels, 13).accuracy;
  }

  static IndoorSceneGenerator* gen_;
  static ResGCNSeg* model_;
  static pcss::data::PointCloud* eval_cloud_;
};

IndoorSceneGenerator* AttackFixture::gen_ = nullptr;
ResGCNSeg* AttackFixture::model_ = nullptr;
pcss::data::PointCloud* AttackFixture::eval_cloud_ = nullptr;

TEST_F(AttackFixture, ModelLearnedSomething) {
  EXPECT_GT(clean_accuracy(*eval_cloud_), 0.5);
}

TEST_F(AttackFixture, BoundedColorAttackRespectsEpsilonEverywhere) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.field = AttackField::kColor;
  config.steps = 8;
  config.epsilon = 0.05f;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  for (std::int64_t i = 0; i < eval_cloud_->size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      const float d = result.perturbed.colors[static_cast<size_t>(i)][a] -
                      eval_cloud_->colors[static_cast<size_t>(i)][a];
      EXPECT_LE(std::abs(d), config.epsilon + 1e-5f);
      EXPECT_GE(result.perturbed.colors[static_cast<size_t>(i)][a], 0.0f);
      EXPECT_LE(result.perturbed.colors[static_cast<size_t>(i)][a], 1.0f);
    }
  }
  // Coordinates untouched under a color attack.
  EXPECT_EQ(result.l0_coord, 0);
}

// Property sweep: the epsilon invariant holds for every epsilon.
class EpsilonSweep : public AttackFixture,
                     public ::testing::WithParamInterface<float> {};

TEST_P(EpsilonSweep, PerturbationNeverExceedsBound) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 5;
  config.epsilon = GetParam();
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  float max_abs = 0.0f;
  for (std::int64_t i = 0; i < eval_cloud_->size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      max_abs = std::max(max_abs,
                         std::abs(result.perturbed.colors[static_cast<size_t>(i)][a] -
                                  eval_cloud_->colors[static_cast<size_t>(i)][a]));
    }
  }
  EXPECT_LE(max_abs, GetParam() + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Bounds, EpsilonSweep, ::testing::Values(0.01f, 0.05f, 0.15f));

TEST_F(AttackFixture, DegradationAttackDropsAccuracy) {
  const double clean = clean_accuracy(*eval_cloud_);
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 20;
  config.epsilon = 0.25f;
  config.step_size = 0.02f;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  const double attacked =
      evaluate_segmentation(result.predictions, eval_cloud_->labels, 13).accuracy;
  EXPECT_LT(attacked, clean - 0.15) << "clean=" << clean << " attacked=" << attacked;
}

TEST_F(AttackFixture, UnboundedAttackDropsAccuracyAndKeepsColorsValid) {
  const double clean = clean_accuracy(*eval_cloud_);
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 30;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  const double attacked =
      evaluate_segmentation(result.predictions, eval_cloud_->labels, 13).accuracy;
  EXPECT_LT(attacked, clean - 0.15);
  for (const auto& c : result.perturbed.colors) {
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(c[a], 0.0f);
      EXPECT_LE(c[a], 1.0f);
    }
  }
}

TEST_F(AttackFixture, ObjectHidingRaisesPsr) {
  // The paper's canonical pair: hide windows as wall (both lie on the
  // wall plane, so color is the deciding feature).
  const int source = static_cast<int>(IndoorClass::kWindow);
  const int target = static_cast<int>(IndoorClass::kWall);
  const auto mask = mask_for_class(eval_cloud_->labels, source);
  ASSERT_GE(std::count(mask.begin(), mask.end(), std::uint8_t{1}), 8);

  const double base_psr = point_success_rate(model_->predict(*eval_cloud_), mask, target);

  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 60;
  config.target_class = target;
  config.target_mask = mask;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  const double psr = point_success_rate(result.predictions, mask, target);
  EXPECT_GT(psr, base_psr + 0.2) << "base=" << base_psr << " attacked=" << psr;
}

TEST_F(AttackFixture, HidingOnlyPerturbsTargetedPoints) {
  const int source = static_cast<int>(IndoorClass::kWall);
  const auto mask = mask_for_class(eval_cloud_->labels, source);
  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.norm = AttackNorm::kBounded;
  config.steps = 5;
  config.target_class = static_cast<int>(IndoorClass::kCeiling);
  config.target_mask = mask;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  for (std::int64_t i = 0; i < eval_cloud_->size(); ++i) {
    if (mask[static_cast<size_t>(i)]) continue;
    for (int a = 0; a < 3; ++a) {
      EXPECT_FLOAT_EQ(result.perturbed.colors[static_cast<size_t>(i)][a],
                      eval_cloud_->colors[static_cast<size_t>(i)][a])
          << "non-targeted point " << i << " was perturbed";
    }
  }
}

TEST_F(AttackFixture, CoordinateAttackLeavesColorsAlone) {
  AttackConfig config;
  config.field = AttackField::kCoordinate;
  config.norm = AttackNorm::kBounded;
  config.steps = 6;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  EXPECT_EQ(result.l0_color, 0);
  for (std::int64_t i = 0; i < eval_cloud_->size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      const float d = result.perturbed.positions[static_cast<size_t>(i)][a] -
                      eval_cloud_->positions[static_cast<size_t>(i)][a];
      EXPECT_LE(std::abs(d), config.coord_epsilon + 1e-5f);
    }
  }
}

TEST_F(AttackFixture, MinImpactScheduleShrinksL0) {
  // With restoration active, many targeted points should end unperturbed.
  AttackConfig config;
  config.field = AttackField::kCoordinate;
  config.norm = AttackNorm::kBounded;
  config.steps = 12;
  config.min_impact_fraction = 0.1f;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  EXPECT_LT(result.l0_coord, eval_cloud_->size());
  EXPECT_GT(result.l0_coord, 0);
}

TEST_F(AttackFixture, BothFieldsPerturbsBoth) {
  AttackConfig config;
  config.field = AttackField::kBoth;
  config.norm = AttackNorm::kBounded;
  config.steps = 6;
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  EXPECT_GT(result.l0_color, 0);
  EXPECT_GT(result.l0_coord, 0);
}

TEST_F(AttackFixture, ConvergenceStopsEarly) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 40;
  config.epsilon = 0.3f;
  config.step_size = 0.03f;
  config.success_accuracy = 0.5f;  // generous: reached quickly
  const AttackResult result = run_attack(*model_, *eval_cloud_, config);
  EXPECT_LT(result.steps_used, 40);
}

TEST_F(AttackFixture, RandomNoiseBaselineMatchesTargetL2) {
  const AttackResult result = random_noise_baseline(*model_, *eval_cloud_, 2.5, 42);
  EXPECT_NEAR(result.l2_color, 2.5, 0.6);  // clamping can shave a little
  EXPECT_EQ(result.l0_coord, 0);
}

TEST_F(AttackFixture, RandomNoiseWeakerThanOptimizedAttack) {
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 25;
  const AttackResult adv = run_attack(*model_, *eval_cloud_, config);
  const AttackResult noise =
      random_noise_baseline(*model_, *eval_cloud_, adv.l2_color, 43);
  const double adv_acc =
      evaluate_segmentation(adv.predictions, eval_cloud_->labels, 13).accuracy;
  const double noise_acc =
      evaluate_segmentation(noise.predictions, eval_cloud_->labels, 13).accuracy;
  EXPECT_LT(adv_acc, noise_acc) << "optimized attack must beat random noise at equal L2";
}

TEST_F(AttackFixture, ConfigValidation) {
  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  EXPECT_THROW(run_attack(*model_, *eval_cloud_, config), std::invalid_argument)
      << "hiding without target class/mask must be rejected";
  config.target_class = 2;
  EXPECT_THROW(run_attack(*model_, *eval_cloud_, config), std::invalid_argument);
  config.target_mask.assign(3, 1);  // wrong size
  EXPECT_THROW(run_attack(*model_, *eval_cloud_, config), std::invalid_argument);
}

TEST(AttackEnums, ToStringCoverage) {
  EXPECT_STREQ(to_string(AttackObjective::kObjectHiding), "object-hiding");
  EXPECT_STREQ(to_string(AttackObjective::kPerformanceDegradation),
               "performance-degradation");
  EXPECT_STREQ(to_string(AttackNorm::kBounded), "norm-bounded");
  EXPECT_STREQ(to_string(AttackNorm::kUnbounded), "norm-unbounded");
  EXPECT_STREQ(to_string(AttackField::kColor), "color");
  EXPECT_STREQ(to_string(AttackField::kCoordinate), "coordinate");
  EXPECT_STREQ(to_string(AttackField::kBoth), "both");
}

TEST(MeasurePerturbation, CountsAndNorms) {
  pcss::data::PointCloud a;
  a.push_back({0, 0, 0}, {0.5f, 0.5f, 0.5f}, 0);
  a.push_back({1, 0, 0}, {0.5f, 0.5f, 0.5f}, 0);
  pcss::data::PointCloud b = a;
  b.colors[0][0] = 0.8f;
  b.positions[1][2] = 0.4f;
  AttackResult r;
  measure_perturbation(a, b, r);
  EXPECT_EQ(r.l0_color, 1);
  EXPECT_EQ(r.l0_coord, 1);
  EXPECT_NEAR(r.l2_color, 0.3, 1e-5);
  EXPECT_NEAR(r.l2_coord, 0.4, 1e-5);
}

}  // namespace
