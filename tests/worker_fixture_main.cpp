// Child binary for the multi-process worker tests. The gtest process
// runs attack threads, so it must never fork-and-continue; instead the
// tests fork+execve this dedicated fixture, which plays one of two
// roles against a shared store:
//
//   worker_fixture <store> <worker_id> [--spec S] [--ttl-ms N]
//       run_spec_worker over the tiny test spec (PCSS_CHAOS honoured,
//       so chaos tests inject SIGKILLs here, not in the test runner);
//
//   worker_fixture <store> <worker_id> --hold <lease-name>
//       acquire a lease and exit WITHOUT releasing it — the moment this
//       process dies its pid goes stale, which is exactly the crashed
//       holder the steal tests need.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "pcss/runner/executor.h"
#include "pcss/runner/lease.h"
#include "pcss/runner/result_store.h"
#include "tiny_provider.h"

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: worker_fixture <store_root> <worker_id> "
                 "[--spec mini|mini_shared|mini_grid] [--ttl-ms N] [--hold NAME]\n");
    return 2;
  }
  const std::string store_root = argv[1];
  const std::string worker_id = argv[2];
  std::string spec_name = "mini";
  long long ttl_ms = 60000;
  std::string hold;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spec" && i + 1 < argc) {
      spec_name = argv[++i];
    } else if (arg == "--ttl-ms" && i + 1 < argc) {
      ttl_ms = std::atoll(argv[++i]);
    } else if (arg == "--hold" && i + 1 < argc) {
      hold = argv[++i];
    } else {
      std::fprintf(stderr, "worker_fixture: bad argument '%s'\n", arg.c_str());
      return 2;
    }
  }

  using namespace pcss::runner;
  try {
    if (!hold.empty()) {
      LeaseManager leases(store_root + "/leases", worker_id, ttl_ms * 1000000LL);
      return leases.try_acquire(hold) == LeaseManager::Acquire::kBusy ? 3 : 0;
    }

    pcss_tests::TinyProvider provider;
    ResultStore store(store_root);
    WorkerConfig config;
    config.run = pcss_tests::tiny_options();
    config.worker_id = worker_id;
    config.lease_ttl_ns = ttl_ms * 1000000LL;
    ExperimentSpec spec;
    if (spec_name == "mini") {
      spec = pcss_tests::mini_spec();
    } else if (spec_name == "mini_shared") {
      spec = pcss_tests::mini_shared_spec();
    } else if (spec_name == "mini_grid") {
      spec = pcss_tests::mini_grid_spec();
    } else {
      std::fprintf(stderr, "worker_fixture: unknown spec '%s'\n", spec_name.c_str());
      return 2;
    }
    const WorkerOutcome out = run_spec_worker(spec, provider, store, config);
    std::printf("computed=%d stolen=%d passes=%d cancelled=%d doc_cached=%d\n",
                out.shards_computed, out.shards_stolen, out.passes, out.cancelled ? 1 : 0,
                out.doc_cached ? 1 : 0);
    return out.cancelled ? 130 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "worker_fixture: %s\n", e.what());
    return 1;
  }
}
