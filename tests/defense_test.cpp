#include <gtest/gtest.h>

#include <algorithm>

#include "pcss/core/defense.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::models::ResGCNConfig;
using pcss::models::ResGCNSeg;
using pcss::tensor::Rng;

namespace {

pcss::data::PointCloud scene(int points = 200, std::uint64_t seed = 1) {
  IndoorSceneGenerator gen({.num_points = points});
  Rng rng(seed);
  return gen.generate(rng);
}

TEST(SrsDefense, RemovesExactCount) {
  const auto cloud = scene(200);
  Rng rng(5);
  const auto defended = srs_defense(cloud, 50, rng);
  EXPECT_EQ(defended.size(), 150);
  EXPECT_NO_THROW(defended.validate());
}

TEST(SrsDefense, KeptPointsComeFromOriginal) {
  const auto cloud = scene(100);
  Rng rng(6);
  const auto defended = srs_defense(cloud, 30, rng);
  // Every kept position must exist in the original (order preserved means
  // we can check by scanning forward).
  size_t cursor = 0;
  for (std::int64_t i = 0; i < defended.size(); ++i) {
    bool found = false;
    for (; cursor < cloud.positions.size(); ++cursor) {
      if (cloud.positions[cursor] == defended.positions[static_cast<size_t>(i)]) {
        found = true;
        ++cursor;
        break;
      }
    }
    ASSERT_TRUE(found) << "defended point " << i << " not in original order";
  }
}

TEST(SrsDefense, RejectsBadCounts) {
  const auto cloud = scene(50);
  Rng rng(7);
  EXPECT_THROW(srs_defense(cloud, -1, rng), std::invalid_argument);
  EXPECT_THROW(srs_defense(cloud, 50, rng), std::invalid_argument);
}

TEST(SorDefense, RemovesPlantedSpatialOutliers) {
  auto cloud = scene(300);
  const auto n_before = cloud.size();
  // Plant spatial outliers far from the room.
  for (int i = 0; i < 5; ++i) {
    cloud.push_back({100.0f + i, 100.0f, 100.0f}, {0.5f, 0.5f, 0.5f}, 0);
  }
  const auto defended = sor_defense(cloud, 2, 1.0f, 1.0f);
  EXPECT_LE(defended.size(), n_before + 1);
  for (const auto& p : defended.positions) {
    EXPECT_LT(p[0], 50.0f) << "planted outlier survived SOR";
  }
}

TEST(SorDefense, ColorAwareDistanceCatchesColorOutliers) {
  // All points co-located spatially; a few have wildly different color.
  pcss::data::PointCloud cloud;
  Rng rng(8);
  for (int i = 0; i < 200; ++i) {
    cloud.push_back({rng.uniform(0, 1), rng.uniform(0, 1), 0.0f},
                    {0.5f + rng.uniform(-0.02f, 0.02f), 0.5f, 0.5f}, 0);
  }
  for (int i = 0; i < 4; ++i) {
    cloud.push_back({rng.uniform(0, 1), rng.uniform(0, 1), 0.0f}, {1.0f, 0.0f, 1.0f}, 0);
  }
  // Strong color weighting: the color outliers dominate the metric.
  const auto defended = sor_defense(cloud, 2, 1.5f, 50.0f);
  int magenta = 0;
  for (const auto& c : defended.colors) {
    if (c[0] > 0.9f && c[1] < 0.1f) ++magenta;
  }
  EXPECT_EQ(magenta, 0) << "color outliers survived color-aware SOR";
  // Without color weighting they survive (spatially they are inliers).
  const auto spatial_only = sor_defense(cloud, 2, 1.5f, 0.0f);
  int magenta2 = 0;
  for (const auto& c : spatial_only.colors) {
    if (c[0] > 0.9f && c[1] < 0.1f) ++magenta2;
  }
  EXPECT_GT(magenta2, 0);
}

TEST(SorDefense, SmallCloudPassthrough) {
  const auto cloud = scene(3);
  const auto defended = sor_defense(cloud, 5);
  EXPECT_EQ(defended.size(), cloud.size());
}

TEST(DefendedEvalTest, ScoresDefendedCloud) {
  Rng init(9);
  ResGCNConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  config.channels = 8;
  config.blocks = 1;
  ResGCNSeg model(config, init);
  const auto cloud = scene(150);
  Rng rng(10);
  const auto defended = srs_defense(cloud, 30, rng);
  const DefendedEval eval = evaluate_defended(model, defended, config.num_classes);
  EXPECT_EQ(eval.points_kept, 120);
  EXPECT_GE(eval.accuracy, 0.0);
  EXPECT_LE(eval.accuracy, 1.0);
  EXPECT_GE(eval.aiou, 0.0);
  EXPECT_LE(eval.aiou, 1.0);
}

}  // namespace
