// Shared executor-test fixtures: a tiny untrained ModelProvider and the
// mini specs/scales the runner, worker, and chaos tests (plus the
// pcss_worker_fixture child binary) all execute. One definition keeps
// every test computing under identical cache keys, so "byte-identical
// across processes" assertions compare like with like.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/experiment_spec.h"

namespace pcss_tests {

/// Tiny untrained stand-in for the zoo: gradients flow regardless of
/// training, which is all the executor's caching/determinism contracts
/// need, and it keeps the tests in the seconds range.
class TinyProvider : public pcss::runner::ModelProvider {
 public:
  explicit TinyProvider(std::string fingerprint = "tiny-weights-v1")
      : fingerprint_(std::move(fingerprint)) {
    pcss::models::ResGCNConfig config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.channels = 8;
    config.blocks = 1;
    pcss::tensor::Rng init(31);
    model_ = std::make_shared<pcss::models::ResGCNSeg>(config, init);
  }

  std::shared_ptr<pcss::runner::SegmentationModel> model(pcss::runner::ModelId) override {
    return model_;
  }
  std::string model_fingerprint(pcss::runner::ModelId) override { return fingerprint_; }

  std::vector<pcss::runner::PointCloud> scenes(pcss::runner::Dataset, int count,
                                               std::uint64_t seed) override {
    pcss::data::IndoorSceneGenerator gen({.num_points = 96});
    pcss::tensor::Rng rng(seed);
    std::vector<pcss::runner::PointCloud> out;
    for (int i = 0; i < count; ++i) out.push_back(gen.generate(rng));
    return out;
  }

 private:
  std::string fingerprint_;
  std::shared_ptr<pcss::runner::SegmentationModel> model_;
};

inline pcss::runner::Scale tiny_scale() {
  pcss::runner::Scale s;
  s.scenes = 3;
  s.pgd_steps = 3;
  s.cw_steps = 4;
  return s;
}

inline pcss::runner::ExperimentSpec mini_spec() {
  pcss::runner::ExperimentSpec spec;
  spec.name = "mini";
  spec.title = "executor contract fixture";
  spec.models = {pcss::runner::ModelId::kResGCNIndoor};
  spec.scene_seed = 4242;
  pcss::runner::AttackVariant bounded;
  bounded.label = "bounded";
  bounded.config.norm = pcss::core::AttackNorm::kBounded;
  bounded.config.field = pcss::core::AttackField::kColor;
  spec.variants.push_back(bounded);
  pcss::runner::AttackVariant noise;
  noise.label = "noise";
  noise.kind = pcss::runner::VariantKind::kNoiseBaseline;
  noise.calibrate_from = "bounded";
  spec.variants.push_back(noise);
  return spec;
}

inline pcss::runner::ExperimentSpec mini_shared_spec() {
  pcss::runner::ExperimentSpec spec;
  spec.name = "mini_shared";
  spec.title = "shared-delta fixture";
  spec.models = {pcss::runner::ModelId::kResGCNIndoor};
  spec.scene_seed = 4242;
  pcss::runner::AttackVariant universal;
  universal.label = "universal";
  universal.kind = pcss::runner::VariantKind::kSharedDelta;
  universal.config.norm = pcss::core::AttackNorm::kBounded;
  universal.config.field = pcss::core::AttackField::kColor;
  spec.variants.push_back(universal);
  return spec;
}

inline pcss::runner::ExperimentSpec mini_grid_spec() {
  using pcss::runner::DefenseStageKind;
  pcss::runner::ExperimentSpec spec;
  spec.name = "mini_grid";
  spec.title = "defense-grid executor fixture";
  spec.kind = pcss::runner::SpecKind::kDefenseGrid;
  spec.models = {pcss::runner::ModelId::kResGCNIndoor};
  spec.victims = {pcss::runner::ModelId::kResGCNIndoor,
                  pcss::runner::ModelId::kPointNet2Indoor};
  spec.scene_seed = 4242;
  spec.defense_seed = 2024;
  pcss::runner::AttackVariant bounded;
  bounded.label = "bounded";
  bounded.config.norm = pcss::core::AttackNorm::kBounded;
  bounded.config.field = pcss::core::AttackField::kColor;
  spec.variants.push_back(bounded);
  spec.defenses.push_back({"none", {}});
  spec.defenses.push_back(
      {"srs", {{.kind = DefenseStageKind::kSrs, .srs_fraction = 0.1f}}});
  spec.defenses.push_back(
      {"srs+sor", {{.kind = DefenseStageKind::kSrs, .srs_fraction = 0.1f},
                   {.kind = DefenseStageKind::kSor, .k = 2}}});
  return spec;
}

inline pcss::runner::RunOptions tiny_options() {
  return pcss::runner::RunOptionsBuilder()
      .fast(true)
      .scale(tiny_scale())
      .threads(1)
      .shard_size(2)
      .build();
}

}  // namespace pcss_tests
