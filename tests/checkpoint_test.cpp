// Checkpoint robustness: truncated, corrupt, and oversized files must
// fail with a clear exception naming the path and the malformed element,
// and a failed load must leave the target model untouched (no partial
// loading).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/models/resgcn.h"
#include "pcss/train/checkpoint.h"

namespace {

namespace fs = std::filesystem;
using pcss::tensor::Rng;

std::unique_ptr<pcss::models::ResGCNSeg> tiny_model(std::uint64_t init_seed) {
  pcss::models::ResGCNConfig config;
  config.num_classes = 13;
  config.channels = 8;
  config.blocks = 1;
  Rng init(init_seed);
  return std::make_unique<pcss::models::ResGCNSeg>(config, init);
}

std::vector<float> flatten_params(pcss::models::SegmentationModel& model) {
  std::vector<float> out;
  for (auto& p : model.named_params()) {
    const float* data = p.tensor.data();
    out.insert(out.end(), data, data + p.tensor.numel());
  }
  return out;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Saves a reference checkpoint once and hands each test a scratch copy.
class CheckpointFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() / "pcss_checkpoint_test").string();
    fs::create_directories(dir_);
    source_ = tiny_model(41);
    path_ = dir_ + "/reference.ckpt";
    pcss::train::save_checkpoint(*source_, path_);
    bytes_ = read_file(path_);
    ASSERT_GT(bytes_.size(), 64u);
  }

  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  /// Expects load of `bytes` to throw mentioning `expected_fragment`,
  /// and verifies the target model's parameters were not touched.
  void expect_rejected(const std::string& bytes, const std::string& expected_fragment) {
    const std::string bad_path = dir_ + "/bad.ckpt";
    write_file(bad_path, bytes);
    auto target = tiny_model(52);
    const std::vector<float> before = flatten_params(*target);
    try {
      pcss::train::load_checkpoint(*target, bad_path);
      FAIL() << "load_checkpoint accepted a malformed file";
    } catch (const std::runtime_error& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find(bad_path), std::string::npos)
          << "message does not name the path: " << message;
      EXPECT_NE(message.find(expected_fragment), std::string::npos)
          << "message '" << message << "' lacks '" << expected_fragment << "'";
    }
    EXPECT_EQ(flatten_params(*target), before)
        << "failed load must not partially mutate the model";
  }

  std::string dir_;
  std::string path_;
  std::string bytes_;
  std::unique_ptr<pcss::models::ResGCNSeg> source_;
};

TEST_F(CheckpointFixture, RoundTripRestoresParameters) {
  auto restored = tiny_model(52);
  ASSERT_NE(flatten_params(*source_), flatten_params(*restored));
  pcss::train::load_checkpoint(*restored, path_);
  EXPECT_EQ(flatten_params(*source_), flatten_params(*restored));
}

TEST_F(CheckpointFixture, TruncatedFileRejectedWithoutPartialLoad) {
  expect_rejected(bytes_.substr(0, bytes_.size() / 2), "truncated");
  // Cut inside the header too: magic survives, the version does not.
  expect_rejected(bytes_.substr(0, 10), "truncated");
}

TEST_F(CheckpointFixture, BadMagicRejected) {
  std::string bad = bytes_;
  bad[0] = 'X';
  expect_rejected(bad, "bad magic");
}

TEST_F(CheckpointFixture, UnsupportedVersionRejected) {
  std::string bad = bytes_;
  bad[8] = 99;  // version field follows the 8-byte magic
  expect_rejected(bad, "unsupported checkpoint version 99");
}

TEST_F(CheckpointFixture, GarbageNameLengthRejected) {
  std::string bad = bytes_;
  // First tensor-name length lives right after magic(8) + version(4) +
  // parameter count(8). 0xFFFFFFFF would ask for a 4 GiB name.
  for (int i = 0; i < 4; ++i) bad[20 + i] = static_cast<char>(0xFF);
  expect_rejected(bad, "implausible tensor-name length");
}

TEST_F(CheckpointFixture, TrailingGarbageRejected) {
  expect_rejected(bytes_ + std::string(4, '\0'), "trailing bytes");
}

TEST_F(CheckpointFixture, MissingFileNamesPath) {
  auto target = tiny_model(52);
  try {
    pcss::train::load_checkpoint(*target, dir_ + "/does_not_exist.ckpt");
    FAIL() << "expected missing-file error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("cannot open"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("does_not_exist.ckpt"), std::string::npos);
  }
}

}  // namespace
