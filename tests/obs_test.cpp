// pcss::obs contract tests: the disabled tracer records nothing (and
// allocates nothing), drained traces are valid Chrome trace-event JSON
// that round-trips through pcss::runner::Json, the metrics registry
// snapshots deterministically and pins names to kinds, result documents
// stay byte-identical with tracing on or off across thread counts, the
// one "[perf]" line format holds its columns under long labels, and the
// pcss_trace summarizer digests a real trace file.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/json.h"
#include "pcss/runner/perf.h"
#include "pcss/runner/result_store.h"

namespace {

namespace fs = std::filesystem;
namespace trace = pcss::obs::trace;
namespace metrics = pcss::obs::metrics;
using pcss::runner::Json;

/// Restores the tracer to disabled+empty no matter how a test exits, so
/// the obs tests cannot leak spans into each other or into other suites.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    trace::set_enabled(false);
    trace::clear();
  }
};

TEST_F(TraceTest, DisabledPathRecordsNothing) {
  trace::set_enabled(false);
  const trace::Stats before = trace::stats();
  static const trace::Label kLabel = trace::intern("obs_test.disabled");
  for (int i = 0; i < 100; ++i) {
    trace::ScopedSpan span(kLabel);
    span.arg(kLabel, i);
  }
  const trace::Stats after = trace::stats();
  EXPECT_EQ(after.recorded, before.recorded) << "disabled spans must not record";
  EXPECT_EQ(after.buffered, before.buffered);
}

TEST_F(TraceTest, InternedLabelsAreStable) {
  const trace::Label a = trace::intern("obs_test.label");
  const trace::Label b = trace::intern("obs_test.label");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0u);
  EXPECT_EQ(trace::label_name(a), "obs_test.label");
  EXPECT_EQ(trace::label_name(0), "");
}

TEST_F(TraceTest, DrainedTraceIsChromeJsonAndRoundTrips) {
  trace::clear();
  trace::set_enabled(true);
  static const trace::Label kOuter = trace::intern("obs_test.outer");
  static const trace::Label kInner = trace::intern("obs_test.inner");
  static const trace::Label kArg = trace::intern("step");
  {
    trace::ScopedSpan outer(kOuter);
    trace::ScopedSpan inner(kInner);
    inner.arg(kArg, 7);
  }
  trace::set_enabled(false);
  EXPECT_EQ(trace::stats().buffered, 2u);

  const std::string drained = trace::drain_chrome_json();
  const Json doc = Json::parse(drained);
  EXPECT_EQ(doc.at("displayTimeUnit").str(), "ms");
  const Json& events = doc.at("traceEvents");
  ASSERT_EQ(events.items().size(), 2u);
  bool saw_inner = false;
  for (const Json& e : events.items()) {
    EXPECT_EQ(e.at("ph").str(), "X");
    EXPECT_GE(e.at("ts").number(), 0.0);
    EXPECT_GE(e.at("dur").number(), 0.0);
    if (e.at("name").str() == "obs_test.inner") {
      saw_inner = true;
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_EQ(args->at("step").number(), 7.0);
    }
  }
  EXPECT_TRUE(saw_inner);

  // parse -> dump -> parse is a fixed point under the runner's Json.
  const std::string dumped = doc.dump();
  EXPECT_EQ(Json::parse(dumped).dump(), dumped);
}

TEST_F(TraceTest, ClearForgetsBufferedEvents) {
  trace::set_enabled(true);
  static const trace::Label kLabel = trace::intern("obs_test.cleared");
  { trace::ScopedSpan span(kLabel); }
  EXPECT_GE(trace::stats().buffered, 1u);
  trace::clear();
  EXPECT_EQ(trace::stats().buffered, 0u);
  EXPECT_EQ(trace::stats().recorded, 0u);
}

TEST(ObsMetrics, CountersGaugesHistograms) {
  metrics::Counter& c = metrics::counter("obs_test.counter");
  const std::uint64_t base = c.value();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), base + 5);

  metrics::Gauge& g = metrics::gauge("obs_test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);

  metrics::Histogram& h = metrics::histogram("obs_test.hist", {1.0, 10.0});
  h.reset();
  h.observe(0.5);
  h.observe(5.0);
  h.observe(50.0);
  const metrics::Histogram::Snapshot snap = h.snapshot();
  ASSERT_EQ(snap.bounds.size(), 2u);
  ASSERT_EQ(snap.counts.size(), 3u) << "bounds + 1 overflow bucket";
  EXPECT_EQ(snap.counts[0], 1u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.count, 3u);
  EXPECT_DOUBLE_EQ(snap.sum, 55.5);
}

TEST(ObsMetrics, NamesArePermanentlyBoundToTheirKind) {
  metrics::counter("obs_test.kind_pin");
  EXPECT_THROW(metrics::gauge("obs_test.kind_pin"), std::logic_error);
  EXPECT_THROW(metrics::histogram("obs_test.kind_pin"), std::logic_error);
  EXPECT_THROW(metrics::Histogram({10.0, 1.0}), std::logic_error)
      << "bucket edges must be ascending";
}

TEST(ObsMetrics, SnapshotJsonIsSortedAndParses) {
  metrics::counter("obs_test.snap.b").add(2);
  metrics::counter("obs_test.snap.a").add(1);
  metrics::gauge("obs_test.snap.g").set(1.5);
  metrics::histogram("obs_test.snap.h", {1.0}).observe(0.5);

  const metrics::RegistrySnapshot snap = metrics::snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first)
        << "snapshot order must be name-sorted, not registration-ordered";
  }

  const std::string json = metrics::snapshot_json();
  const Json doc = Json::parse(json);
  EXPECT_GE(doc.at("counters").at("obs_test.snap.a").number(), 1.0);
  EXPECT_GE(doc.at("counters").at("obs_test.snap.b").number(), 2.0);
  EXPECT_DOUBLE_EQ(doc.at("gauges").at("obs_test.snap.g").number(), 1.5);
  const Json& hist = doc.at("histograms").at("obs_test.snap.h");
  EXPECT_GE(hist.at("count").number(), 1.0);
  ASSERT_EQ(hist.at("bounds").items().size(), 1u);
  ASSERT_EQ(hist.at("counts").items().size(), 2u);
}

TEST(ObsPerfLine, ColumnsHoldUnderLongLabels) {
  using pcss::runner::perf_line;
  const std::string short_line = perf_line("mini run_spec", 2.0, 100);
  const std::string long_line = perf_line(
      "resgcn+defended[sor(k=8)|srs(p=0.9)] run_spec", 2.0, 100);
  EXPECT_EQ(short_line.size(), long_line.size())
      << "label truncation must keep every column at a fixed offset";
  EXPECT_EQ(short_line.rfind("  [perf] mini run_spec", 0), 0u);
  EXPECT_EQ(long_line.rfind("  [perf] resgcn+defended[sor(k=8)|srs(...", 0), 0u);
  EXPECT_NE(short_line.find("    2.00s wall      100 steps      50.0 steps/s\n"),
            std::string::npos)
      << short_line;
  // A label of exactly 32 chars is NOT truncated.
  const std::string exact(32, 'x');
  EXPECT_NE(perf_line(exact.c_str(), 1.0, 1).find(exact), std::string::npos);
}

/// Tiny untrained model provider (mirrors the runner tests' fixture):
/// gradients flow regardless of training, which is all the byte-identity
/// contract needs.
class ObsTinyProvider : public pcss::runner::ModelProvider {
 public:
  ObsTinyProvider() {
    pcss::models::ResGCNConfig config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.channels = 8;
    config.blocks = 1;
    pcss::tensor::Rng init(31);
    model_ = std::make_shared<pcss::models::ResGCNSeg>(config, init);
  }
  std::shared_ptr<pcss::runner::SegmentationModel> model(pcss::runner::ModelId) override {
    return model_;
  }
  std::string model_fingerprint(pcss::runner::ModelId) override {
    return "obs-tiny-weights-v1";
  }
  std::vector<pcss::runner::PointCloud> scenes(pcss::runner::Dataset, int count,
                                               std::uint64_t seed) override {
    pcss::data::IndoorSceneGenerator gen({.num_points = 96});
    pcss::tensor::Rng rng(seed);
    std::vector<pcss::runner::PointCloud> out;
    for (int i = 0; i < count; ++i) out.push_back(gen.generate(rng));
    return out;
  }

 private:
  std::shared_ptr<pcss::runner::SegmentationModel> model_;
};

pcss::runner::ExperimentSpec obs_mini_spec() {
  pcss::runner::ExperimentSpec spec;
  spec.name = "obs_mini";
  spec.title = "tracing byte-identity fixture";
  spec.models = {pcss::runner::ModelId::kResGCNIndoor};
  spec.scene_seed = 4242;
  pcss::runner::AttackVariant bounded;
  bounded.label = "bounded";
  bounded.config.norm = pcss::core::AttackNorm::kBounded;
  bounded.config.field = pcss::core::AttackField::kColor;
  spec.variants.push_back(bounded);
  return spec;
}

pcss::runner::RunOptions obs_tiny_options(int threads) {
  pcss::runner::RunOptions options;
  options.scale.scenes = 3;
  options.scale.pgd_steps = 3;
  options.scale.cw_steps = 4;
  options.fast = true;
  options.num_threads = threads;
  options.shard_size = 2;
  return options;
}

TEST_F(TraceTest, DocumentsAreByteIdenticalWithTracingOnOrOff) {
  ObsTinyProvider provider;
  const pcss::runner::ExperimentSpec spec = obs_mini_spec();
  const std::string root =
      (fs::temp_directory_path() / "pcss_obs_test_identity").string();
  fs::remove_all(root);

  trace::set_enabled(false);
  pcss::runner::ResultStore store_off(root + "-off");
  const pcss::runner::RunOutcome base =
      run_spec(spec, provider, store_off, obs_tiny_options(1));

  trace::set_enabled(true);
  pcss::runner::ResultStore store_on(root + "-on");
  const pcss::runner::RunOutcome traced =
      run_spec(spec, provider, store_on, obs_tiny_options(1));
  EXPECT_EQ(traced.json, base.json)
      << "tracing must never change result document bytes";

  pcss::runner::ResultStore store_mt(root + "-mt");
  const pcss::runner::RunOutcome threaded =
      run_spec(spec, provider, store_mt, obs_tiny_options(2));
  EXPECT_EQ(threaded.json, base.json)
      << "tracing + worker threads must never change result document bytes";
  EXPECT_GT(trace::stats().recorded, 0u) << "the traced runs must actually record";

  fs::remove_all(root + "-off");
  fs::remove_all(root + "-on");
  fs::remove_all(root + "-mt");
}

TEST_F(TraceTest, PcssTraceSummarizesARealTrace) {
  trace::clear();
  trace::set_enabled(true);
  static const trace::Label kShard = trace::intern("runner.shard");
  static const trace::Label kWork = trace::intern("obs_test.work");
  static const trace::Label kCache = trace::intern("cache_hit");
  for (int i = 0; i < 3; ++i) {
    trace::ScopedSpan shard(kShard);
    shard.arg(kCache, i == 0 ? 1 : 0);
    trace::ScopedSpan work(kWork);
  }
  trace::set_enabled(false);

  const std::string path =
      (fs::temp_directory_path() / "pcss_obs_test_trace.json").string();
  ASSERT_TRUE(trace::write_chrome_json(path));

  const std::string cmd = std::string(PCSS_TRACE_BIN) + " " + path + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  ASSERT_NE(pipe, nullptr);
  std::string output;
  std::array<char, 4096> buffer;
  while (std::fgets(buffer.data(), static_cast<int>(buffer.size()), pipe) != nullptr) {
    output += buffer.data();
  }
  const int status = pclose(pipe);
  EXPECT_EQ(WIFEXITED(status) ? WEXITSTATUS(status) : -1, 0) << output;
  EXPECT_NE(output.find("top spans by self-time"), std::string::npos) << output;
  EXPECT_NE(output.find("shard timeline (3 shards)"), std::string::npos) << output;
  EXPECT_NE(output.find("cache"), std::string::npos) << output;
  EXPECT_NE(output.find("worker utilization"), std::string::npos) << output;
  fs::remove(path);
}

}  // namespace
