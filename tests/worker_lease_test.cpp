// Failure-matrix tests for coordinator-less multi-process execution:
// lease claim/renew/expiry/steal, deterministic chaos injection, the
// worker claim/compute loop (in-process and as real killed-and-stolen
// child processes), crash-resume, store GC, put() diagnostics, and
// graceful cancel. Child processes run tests/worker_fixture_main.cpp —
// the gtest process itself never forks-and-continues (it runs attack
// threads), it only fork+execve's with pre-built argv/envp.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pcss/runner/executor.h"
#include "pcss/runner/lease.h"
#include "pcss/runner/result_store.h"
#include "tiny_provider.h"

extern "C" char** environ;

namespace {

namespace fs = std::filesystem;
using namespace pcss::runner;
using pcss_tests::TinyProvider;
using pcss_tests::mini_grid_spec;
using pcss_tests::mini_spec;
using pcss_tests::tiny_options;
using pcss_tests::tiny_scale;

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  while (::nanosleep(&ts, &ts) == -1 && errno == EINTR) {
  }
}

/// fork+execve of the worker fixture binary. argv and envp are fully
/// built before fork, so the child touches no allocator between fork
/// and execve. `chaos` (possibly empty) replaces any inherited
/// PCSS_CHAOS so the fixture — and only the fixture — sees it.
pid_t spawn_fixture(const std::vector<std::string>& args, const std::string& chaos = "") {
  std::vector<std::string> full;
  full.push_back(PCSS_WORKER_FIXTURE_BIN);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (const std::string& a : full) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  std::vector<std::string> env;
  for (char** e = environ; *e != nullptr; ++e) {
    if (std::strncmp(*e, "PCSS_CHAOS=", 11) == 0) continue;
    env.push_back(*e);
  }
  if (!chaos.empty()) env.push_back("PCSS_CHAOS=" + chaos);
  std::vector<char*> envp;
  envp.reserve(env.size() + 1);
  for (const std::string& e : env) envp.push_back(const_cast<char*>(e.c_str()));
  envp.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve(argv[0], argv.data(), envp.data());
    _exit(127);
  }
  return pid;
}

/// Raw waitpid status (use WIFEXITED/WIFSIGNALED on it); -1 on error.
int wait_status(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) == -1) {
    if (errno != EINTR) return -1;
  }
  return status;
}

int run_fixture(const std::vector<std::string>& args, const std::string& chaos = "") {
  const pid_t pid = spawn_fixture(args, chaos);
  if (pid < 0) return -1;
  return wait_status(pid);
}

bool exited_zero(int status) { return WIFEXITED(status) && WEXITSTATUS(status) == 0; }

/// Fresh directory per test, removed on teardown.
class TempStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("pcss_worker_") + info->test_suite_name() + "_" + info->name()))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }
  std::string root_;
};

class WorkerLeaseTest : public TempStoreTest {};
class WorkerLoopTest : public TempStoreTest {};
class WorkerChaosTest : public TempStoreTest {};
class WorkerResumeTest : public TempStoreTest {};
class ShardGcTest : public TempStoreTest {};
class ShardStoreTest : public TempStoreTest {};
class ShardCancelTest : public TempStoreTest {};

constexpr std::int64_t kLongTtl = 600LL * 1000 * 1000 * 1000;  // 10 min: never expires here

TEST_F(WorkerLeaseTest, FreshAcquireIsExclusiveUntilReleased) {
  LeaseManager a(root_, "worker-a", kLongTtl);
  LeaseManager b(root_, "worker-b", kLongTtl);
  EXPECT_EQ(a.try_acquire("s0.lease"), LeaseManager::Acquire::kAcquired);
  EXPECT_EQ(b.try_acquire("s0.lease"), LeaseManager::Acquire::kBusy);
  // Distinct leases don't contend.
  EXPECT_EQ(b.try_acquire("s1.lease"), LeaseManager::Acquire::kAcquired);

  const auto held = a.peek("s0.lease");
  ASSERT_TRUE(held.has_value());
  EXPECT_EQ(held->owner, "worker-a");
  EXPECT_EQ(held->pid, static_cast<long long>(::getpid()));

  EXPECT_TRUE(a.release("s0.lease"));
  EXPECT_FALSE(a.peek("s0.lease").has_value());
  EXPECT_EQ(b.try_acquire("s0.lease"), LeaseManager::Acquire::kAcquired);
  // release() only removes a lease we still hold.
  EXPECT_FALSE(a.release("s0.lease"));
  EXPECT_TRUE(b.peek("s0.lease").has_value());
}

TEST_F(WorkerLeaseTest, RenewRefreshesHeartbeatAndBumpsGeneration) {
  LeaseManager a(root_, "worker-a", kLongTtl);
  ASSERT_EQ(a.try_acquire("s0.lease"), LeaseManager::Acquire::kAcquired);
  const auto before = a.peek("s0.lease");
  ASSERT_TRUE(before.has_value());
  sleep_ms(5);
  EXPECT_TRUE(a.renew("s0.lease"));
  const auto after = a.peek("s0.lease");
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(after->owner, "worker-a");
  EXPECT_GT(after->generation, before->generation);
  EXPECT_GT(after->heartbeat_ns, before->heartbeat_ns);
  // Renewing a lease we don't hold fails without inventing one.
  EXPECT_FALSE(a.renew("never-acquired.lease"));
}

TEST_F(WorkerLeaseTest, ExpiredLeaseIsStolenAndOldHolderCannotRenew) {
  // 50 ms TTL: the holder's pid is alive (it's us), so staleness must
  // come from the heartbeat-age backstop alone.
  LeaseManager straggler(root_, "straggler", 50LL * 1000 * 1000);
  LeaseManager thief(root_, "thief", 50LL * 1000 * 1000);
  ASSERT_EQ(straggler.try_acquire("s0.lease"), LeaseManager::Acquire::kAcquired);
  EXPECT_EQ(thief.try_acquire("s0.lease"), LeaseManager::Acquire::kBusy) << "still fresh";
  sleep_ms(150);
  EXPECT_EQ(thief.try_acquire("s0.lease"), LeaseManager::Acquire::kStolen);
  const auto now_held = thief.peek("s0.lease");
  ASSERT_TRUE(now_held.has_value());
  EXPECT_EQ(now_held->owner, "thief");
  // The straggler notices the theft instead of resurrecting its claim.
  EXPECT_FALSE(straggler.renew("s0.lease"));
  EXPECT_FALSE(straggler.release("s0.lease"));
  EXPECT_EQ(now_held->owner, thief.peek("s0.lease")->owner);
}

TEST_F(WorkerLeaseTest, DeadHolderIsStolenImmediatelyDespiteLongTtl) {
  // The fixture acquires and exits without releasing: a crashed worker.
  ASSERT_TRUE(exited_zero(run_fixture({root_, "crashed", "--hold", "s0.lease",
                                       "--ttl-ms", "600000"})));
  LeaseManager thief(root_ + "/leases", "thief", kLongTtl);
  const auto held = thief.peek("s0.lease");
  ASSERT_TRUE(held.has_value()) << "the crashed holder's lease must survive it";
  EXPECT_EQ(held->owner, "crashed");
  // Long TTL, fresh heartbeat — but the pid is gone, so no waiting.
  EXPECT_EQ(thief.try_acquire("s0.lease"), LeaseManager::Acquire::kStolen);
  EXPECT_EQ(thief.peek("s0.lease")->owner, "thief");
}

TEST(WorkerChaos, KillSequenceIsDeterministicPerSeedAndSalt) {
  const auto draws = [](double prob, std::uint64_t seed, const std::string& salt) {
    ChaosMonkey monkey(prob, seed, salt);
    std::vector<bool> out;
    for (int i = 0; i < 64; ++i) out.push_back(monkey.would_kill());
    return out;
  };
  EXPECT_EQ(draws(0.5, 7, "w0|mini"), draws(0.5, 7, "w0|mini"));
  EXPECT_NE(draws(0.5, 7, "w0|mini"), draws(0.5, 7, "w1|mini"))
      << "distinct workers must draw distinct streams";
  EXPECT_NE(draws(0.5, 7, "w0|mini"), draws(0.5, 8, "w0|mini"));

  const auto always = draws(1.0, 3, "x");
  const auto never = draws(0.0, 3, "x");
  for (int i = 0; i < 64; ++i) {
    EXPECT_TRUE(always[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(never[static_cast<std::size_t>(i)]);
  }
  EXPECT_FALSE(ChaosMonkey().enabled());
  EXPECT_TRUE(ChaosMonkey(0.5, 7, "x").enabled());
}

TEST(WorkerChaos, FromEnvParsesStrictlyAndDisablesOnGarbage) {
  const auto with_env = [](const char* value) {
    if (value == nullptr) {
      ::unsetenv("PCSS_CHAOS");
    } else {
      ::setenv("PCSS_CHAOS", value, 1);
    }
    ChaosMonkey monkey = ChaosMonkey::from_env("salt");
    ::unsetenv("PCSS_CHAOS");
    return monkey.enabled();
  };
  EXPECT_FALSE(with_env(nullptr));
  EXPECT_TRUE(with_env("0.5:1234"));
  EXPECT_TRUE(with_env("1:0"));
  EXPECT_FALSE(with_env("0:99")) << "probability zero is a no-op";
  EXPECT_FALSE(with_env("banana"));
  EXPECT_FALSE(with_env("0.5"));
  EXPECT_FALSE(with_env("0.5:"));
  EXPECT_FALSE(with_env("1.5:3")) << "probability must be in [0, 1]";
  EXPECT_FALSE(with_env("-0.1:3"));
  EXPECT_FALSE(with_env("0.5:12junk"));
}

TEST_F(WorkerLoopTest, WorkerComputesEveryShardThenMergeIsPureReplay) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();

  // Reference document from an ordinary single-process run.
  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  ResultStore store(root_);
  WorkerConfig config;
  config.run = tiny_options();
  config.worker_id = "w0";
  config.lease_ttl_ns = kLongTtl;
  const WorkerOutcome out = run_spec_worker(spec, provider, store, config);
  // The plan has 4 shards (2 variants x ceil(3 clouds / shard_size 2)),
  // but a noise shard computed first stores its calibration source (a
  // bounded shard) inline, which that shard's own claim then sees as a
  // cache hit — so the claimed-and-computed count is scan-order
  // dependent. Completeness is asserted through the merge below.
  EXPECT_GE(out.shards_computed, 2);
  EXPECT_LE(out.shards_computed, 4);
  EXPECT_EQ(out.shards_stolen, 0);
  EXPECT_GE(out.passes, 1);
  EXPECT_FALSE(out.cancelled);
  EXPECT_FALSE(out.doc_cached);
  EXPECT_GT(out.attack_steps, 0);

  // All leases were released on the way out.
  EXPECT_EQ(LeaseManager(store.root() + "/leases", "audit", kLongTtl).sweep(), 0);

  const RunOutcome merged = run_spec(spec, provider, store, tiny_options());
  EXPECT_FALSE(merged.cache_hit);
  EXPECT_EQ(merged.attack_steps, 0) << "the merge must only replay worker shards";
  EXPECT_EQ(merged.shards_from_cache, merged.shards_total);
  EXPECT_EQ(merged.json, ref.json) << "worker-computed bytes must match a direct run";

  // With the document assembled, another worker has nothing to do.
  const WorkerOutcome again = run_spec_worker(spec, provider, store, config);
  EXPECT_TRUE(again.doc_cached);
  EXPECT_EQ(again.shards_computed, 0);

  fs::remove_all(root_ + "-ref");
}

TEST_F(WorkerLoopTest, GridSpecWorkerMatchesDirectRunBytes) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_grid_spec();

  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  ResultStore store(root_);
  WorkerConfig config;
  config.run = tiny_options();
  config.worker_id = "w0";
  config.lease_ttl_ns = kLongTtl;
  const WorkerOutcome out = run_spec_worker(spec, provider, store, config);
  EXPECT_EQ(out.shards_computed, 2);  // ceil(3 clouds / shard_size 2)

  const RunOutcome merged = run_spec(spec, provider, store, tiny_options());
  EXPECT_EQ(merged.attack_steps, 0);
  EXPECT_EQ(merged.json, ref.json);

  fs::remove_all(root_ + "-ref");
}

TEST_F(WorkerLoopTest, TwoConcurrentWorkerProcessesProduceIdenticalBytes) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();
  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  const pid_t a = spawn_fixture({root_, "wA"});
  const pid_t b = spawn_fixture({root_, "wB"});
  ASSERT_GT(a, 0);
  ASSERT_GT(b, 0);
  EXPECT_TRUE(exited_zero(wait_status(a)));
  EXPECT_TRUE(exited_zero(wait_status(b)));

  ResultStore store(root_);
  const RunOutcome merged = run_spec(spec, provider, store, tiny_options());
  EXPECT_EQ(merged.attack_steps, 0)
      << "between them, the two workers must have computed every shard";
  EXPECT_EQ(merged.json, ref.json);

  fs::remove_all(root_ + "-ref");
}

TEST_F(WorkerChaosTest, KilledWorkerMidRunIsStolenFromAndBytesStayIdentical) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();
  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  // Probability 1: the fixture worker SIGKILLs itself at its first
  // post-acquire chaos point, i.e. it dies *holding a shard lease*.
  const int status = run_fixture({root_, "wA"}, "1:99");
  ASSERT_TRUE(WIFSIGNALED(status)) << "chaos must kill the worker, status " << status;
  EXPECT_EQ(WTERMSIG(status), SIGKILL);

  // The dead worker left an orphaned lease file behind (its exact name
  // is an executor detail, so count rather than name it).
  int orphaned = 0;
  for (const auto& entry : fs::directory_iterator(root_ + "/leases")) {
    if (entry.is_regular_file()) ++orphaned;
  }
  ASSERT_GE(orphaned, 1) << "the SIGKILLed worker must die holding a lease";

  ResultStore store(root_);
  // A second worker (long TTL, so only the dead-pid fast path can help
  // it) steals the orphaned lease and completes the plan.
  WorkerConfig config;
  config.run = tiny_options();
  config.worker_id = "wB";
  config.lease_ttl_ns = kLongTtl;
  const WorkerOutcome out = run_spec_worker(spec, provider, store, config);
  EXPECT_FALSE(out.cancelled);
  EXPECT_EQ(out.shards_computed, 4) << "the survivor must finish the whole plan";
  EXPECT_GE(out.shards_stolen, 1) << "the dead worker's lease must be stolen, not waited on";

  const RunOutcome merged = run_spec(spec, provider, store, tiny_options());
  EXPECT_EQ(merged.attack_steps, 0);
  EXPECT_EQ(merged.json, ref.json)
      << "a kill-and-steal run must still produce byte-identical documents";

  fs::remove_all(root_ + "-ref");
}

TEST_F(WorkerResumeTest, RepeatedlyKilledWorkersEventuallyCompleteByteIdentically) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();
  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  // Crash-resume: keep launching a worker against the same store until
  // one run survives. Every earlier incarnation dies by SIGKILL at some
  // deterministic shard boundary; finished shards persist, orphaned
  // leases go stale by dead pid, and each successor resumes (TTL 2 s
  // bounds the pathological case of a recycled pid).
  int kills = 0;
  bool completed = false;
  for (int attempt = 0; attempt < 40 && !completed; ++attempt) {
    const std::string worker = "w-r" + std::to_string(attempt);
    // Attempt 0 is a guaranteed kill so the test always exercises the
    // crash path; later attempts flip deterministic 50/50 coins.
    const std::string chaos =
        attempt == 0 ? "1:7" : "0.5:" + std::to_string(1000 + attempt);
    const int status = run_fixture({root_, worker, "--ttl-ms", "2000"}, chaos);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      ++kills;
      continue;
    }
    ASSERT_TRUE(exited_zero(status)) << "status " << status;
    completed = true;
  }
  ASSERT_TRUE(completed) << "a worker should survive within 40 deterministic attempts";
  EXPECT_GE(kills, 1) << "the resume path must actually have been exercised";

  ResultStore store(root_);
  const RunOutcome merged = run_spec(spec, provider, store, tiny_options());
  EXPECT_EQ(merged.attack_steps, 0);
  EXPECT_EQ(merged.json, ref.json);

  // And the run is now fully cached: a rerun is a pure document hit.
  const RunOutcome rerun = run_spec(spec, provider, store, tiny_options());
  EXPECT_TRUE(rerun.cache_hit);

  fs::remove_all(root_ + "-ref");
}

TEST_F(ShardGcTest, SweepRemovesOnlyStaleTmpSiblings) {
  ResultStore store(root_);
  store.put("mini-00aa.json", "{}");
  store.put("shards/mini-00aa-m0-v0-o0-n2.json", "{}");
  std::ofstream(root_ + "/mini-00aa.json.tmp.999") << "{ torn";
  std::ofstream(root_ + "/shards/mini-00aa-m0-v1-o0-n2.json.tmp.999") << "{ torn";
  // Age one temporary beyond the cutoff; keep the other fresh (a
  // concurrent put() in flight must never lose its temporary).
  fs::last_write_time(root_ + "/mini-00aa.json.tmp.999",
                      fs::last_write_time(root_ + "/mini-00aa.json.tmp.999") -
                          std::chrono::hours(2));
  const auto removed = store.sweep_stale_tmps(3600);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], "mini-00aa.json.tmp.999");
  EXPECT_TRUE(fs::exists(root_ + "/shards/mini-00aa-m0-v1-o0-n2.json.tmp.999"));
  EXPECT_TRUE(store.contains("mini-00aa.json")) << "stored results are never GC candidates";
  EXPECT_TRUE(store.contains("shards/mini-00aa-m0-v0-o0-n2.json"));
  // min_age 0 collects the remaining temporary on request.
  EXPECT_EQ(store.sweep_stale_tmps(0).size(), 1u);
}

TEST_F(ShardGcTest, LeaseSweepRemovesDeadHoldersKeepsLive) {
  ASSERT_TRUE(exited_zero(run_fixture({root_, "crashed", "--hold", "dead.lease",
                                       "--ttl-ms", "600000"})));
  LeaseManager live(root_ + "/leases", "live-worker", kLongTtl);
  ASSERT_EQ(live.try_acquire("live.lease"), LeaseManager::Acquire::kAcquired);
  std::ofstream(root_ + "/leases/torn.lease") << "{ not a lease";

  EXPECT_EQ(live.sweep(), 2) << "the dead holder's and the torn lease must go";
  EXPECT_FALSE(live.peek("dead.lease").has_value());
  EXPECT_FALSE(live.peek("torn.lease").has_value());
  ASSERT_TRUE(live.peek("live.lease").has_value());
  EXPECT_EQ(live.peek("live.lease")->owner, "live-worker");
}

TEST_F(ShardStoreTest, PutFailureNamesThePathAndTheReason) {
  // Root occupied by a regular file: create_directories cannot succeed,
  // and the error must say which path and why instead of a generic
  // filesystem_error from deep inside.
  std::ofstream(root_) << "not a directory";
  ResultStore store(root_);
  try {
    store.put("sub/key.json", "{}");
    FAIL() << "put into a file-as-root must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ResultStore::put"), std::string::npos) << what;
    EXPECT_NE(what.find("sub"), std::string::npos) << what;
  }
  fs::remove(root_);

  // A directory squatting on the exact temporary name: open(O_CREAT)
  // fails persistently, and the diagnostic carries path + errno.
  ResultStore good(root_);
  const std::string tmp_name =
      root_ + "/key.json.tmp." + std::to_string(::getpid());
  fs::create_directories(tmp_name);
  try {
    good.put("key.json", "{}");
    FAIL() << "put over a directory-shaped tmp must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("key.json.tmp."), std::string::npos) << what;
    EXPECT_NE(what.find("errno"), std::string::npos) << what;
  }
}

TEST_F(ShardCancelTest, RunSpecCancelsAtShardBoundaryWithResumableMessage) {
  TinyProvider provider;
  ResultStore store(root_);
  RunOptions options = tiny_options();
  options.cancel = [] { return true; };
  try {
    run_spec(mini_spec(), provider, store, options);
    FAIL() << "an always-true cancel must throw RunCancelled";
  } catch (const RunCancelled& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mini"), std::string::npos) << what;
    EXPECT_NE(what.find("resumable: rerun to continue"), std::string::npos) << what;
  }
}

TEST_F(ShardCancelTest, CancelledRunResumesFromItsFinishedShards) {
  TinyProvider provider;
  const ExperimentSpec spec = mini_spec();
  ResultStore ref_store(root_ + "-ref");
  const RunOutcome ref = run_spec(spec, provider, ref_store, tiny_options());

  ResultStore store(root_);
  RunOptions cancelling = tiny_options();
  int polls = 0;
  // False for the first shard, true from the second boundary on: one
  // shard lands in the cache, then the run unwinds.
  cancelling.cancel = [&polls] { return ++polls > 1; };
  EXPECT_THROW(run_spec(spec, provider, store, cancelling), RunCancelled);

  const RunOutcome resumed = run_spec(spec, provider, store, tiny_options());
  EXPECT_FALSE(resumed.cache_hit);
  EXPECT_EQ(resumed.shards_from_cache, 1) << "the pre-cancel shard must be reused";
  EXPECT_EQ(resumed.json, ref.json);

  fs::remove_all(root_ + "-ref");
}

TEST_F(ShardCancelTest, WorkerStopsClaimingWhenCancelled) {
  TinyProvider provider;
  ResultStore store(root_);
  WorkerConfig config;
  config.run = tiny_options();
  config.run.cancel = [] { return true; };
  config.worker_id = "w0";
  config.lease_ttl_ns = kLongTtl;
  const WorkerOutcome out = run_spec_worker(mini_spec(), provider, store, config);
  EXPECT_TRUE(out.cancelled);
  EXPECT_EQ(out.shards_computed, 0);
  // Nothing left held: a cancelled worker releases before unwinding.
  EXPECT_EQ(LeaseManager(store.root() + "/leases", "audit", kLongTtl).sweep(), 0);
}

}  // namespace
