#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/optim.h"

namespace ops = pcss::tensor::ops;
namespace nn = pcss::tensor::nn;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;
using pcss::testing::random_values;

namespace {

TEST(Linear, ShapesAndParams) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  EXPECT_EQ(lin.in_features(), 4);
  EXPECT_EQ(lin.out_features(), 3);
  Tensor x = Tensor::from_data({2, 4}, random_values(8, rng));
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (pcss::tensor::Shape{2, 3}));
  std::vector<nn::NamedParam> params;
  lin.collect_params("p.", params);
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].name, "p.weight");
  EXPECT_EQ(params[1].name, "p.bias");
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  nn::Linear lin(3, 2, rng, /*bias=*/false);
  std::vector<nn::NamedParam> params;
  lin.collect_params("", params);
  EXPECT_EQ(params.size(), 1u);
}

TEST(Linear, GradientFlowsToWeights) {
  Rng rng(3);
  nn::Linear lin(3, 2, rng);
  Tensor x = Tensor::from_data({4, 3}, random_values(12, rng));
  Tensor loss = ops::sum(ops::square(lin.forward(x)));
  loss.backward();
  for (auto& p : lin.parameters()) {
    ASSERT_FALSE(p.grad().empty());
    float norm = 0.0f;
    for (float g : p.grad()) norm += g * g;
    EXPECT_GT(norm, 0.0f);
  }
}

TEST(BatchNorm, TrainingNormalizesBatch) {
  Rng rng(5);
  nn::BatchNorm1d bn(3);
  Tensor x = Tensor::from_data({64, 3}, random_values(64 * 3, rng, -5.0f, 3.0f));
  Tensor y = bn.forward(x, /*training=*/true);
  // Output columns should be ~zero-mean unit-variance (gamma=1, beta=0).
  for (int j = 0; j < 3; ++j) {
    double m = 0.0, v = 0.0;
    for (int i = 0; i < 64; ++i) m += y.at(i * 3 + j);
    m /= 64.0;
    for (int i = 0; i < 64; ++i) {
      const double d = y.at(i * 3 + j) - m;
      v += d * d;
    }
    v /= 64.0;
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(v, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  Rng rng(7);
  nn::BatchNorm1d bn(2);
  // Feed several training batches so running stats converge toward the
  // batch distribution.
  for (int it = 0; it < 200; ++it) {
    Tensor x = Tensor::from_data({32, 2}, random_values(64, rng, 2.0f, 4.0f));
    bn.forward(x, true);
  }
  // In eval mode an input at the population mean (~3) maps near zero.
  Tensor probe = Tensor::full({1, 2}, 3.0f);
  Tensor y = bn.forward(probe, false);
  EXPECT_NEAR(y.at(0), 0.0f, 0.3f);
  EXPECT_NEAR(y.at(1), 0.0f, 0.3f);
}

TEST(BatchNorm, BuffersExposed) {
  nn::BatchNorm1d bn(4);
  std::vector<nn::NamedBuffer> buffers;
  bn.collect_buffers("bn.", buffers);
  ASSERT_EQ(buffers.size(), 2u);
  EXPECT_EQ(buffers[0].name, "bn.running_mean");
  EXPECT_EQ(buffers[1].name, "bn.running_var");
  EXPECT_EQ(buffers[0].values->size(), 4u);
}

TEST(Mlp, StackShapesAndFinalActivation) {
  Rng rng(9);
  nn::Mlp with_act({5, 8, 6}, rng, /*final_activation=*/true);
  nn::Mlp no_act({5, 8, 6}, rng, /*final_activation=*/false);
  Tensor x = Tensor::from_data({3, 5}, random_values(15, rng));
  Tensor y1 = with_act.forward(x, true);
  Tensor y2 = no_act.forward(x, true);
  EXPECT_EQ(y1.dim(1), 6);
  EXPECT_EQ(y2.dim(1), 6);
  EXPECT_EQ(with_act.out_features(), 6);
  // ReLU output is non-negative; the raw head can go negative.
  for (int i = 0; i < 18; ++i) EXPECT_GE(y1.at(i), 0.0f);
  bool has_negative = false;
  for (int i = 0; i < 18; ++i) has_negative |= y2.at(i) < 0.0f;
  EXPECT_TRUE(has_negative);
}

TEST(Mlp, ParameterNamesAreHierarchical) {
  Rng rng(11);
  nn::Mlp mlp({4, 4, 4}, rng);
  std::vector<nn::NamedParam> params;
  mlp.collect_params("enc.", params);
  bool found = false;
  for (auto& p : params) found |= p.name == "enc.lin0.weight";
  EXPECT_TRUE(found);
}

TEST(Optim, SgdConvergesOnQuadratic) {
  // minimize ||x - t||^2.
  Tensor x = Tensor::from_data({3}, {5.0f, -4.0f, 2.0f});
  x.set_requires_grad(true);
  Tensor target = Tensor::from_data({3}, {1.0f, 2.0f, 3.0f});
  pcss::tensor::optim::Sgd opt({x}, 0.1f, 0.5f);
  for (int it = 0; it < 100; ++it) {
    Tensor loss = ops::sum(ops::square(ops::sub(x, target)));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.at(0), 1.0f, 1e-3f);
  EXPECT_NEAR(x.at(1), 2.0f, 1e-3f);
  EXPECT_NEAR(x.at(2), 3.0f, 1e-3f);
}

TEST(Optim, AdamConvergesOnIllConditionedQuadratic) {
  Tensor x = Tensor::from_data({2}, {10.0f, -10.0f});
  x.set_requires_grad(true);
  const Tensor scalev = Tensor::from_data({2}, {100.0f, 0.01f});
  pcss::tensor::optim::Adam opt({x}, 0.5f);
  for (int it = 0; it < 800; ++it) {
    Tensor loss = ops::sum(ops::mul(scalev, ops::square(x)));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  EXPECT_NEAR(x.at(0), 0.0f, 1e-2f);
  EXPECT_NEAR(x.at(1), 0.0f, 2e-1f);
}

TEST(Optim, ZeroGradClears) {
  Tensor x = Tensor::from_data({2}, {1.0f, 2.0f});
  x.set_requires_grad(true);
  pcss::tensor::optim::Sgd opt({x}, 0.1f);
  ops::sum(ops::square(x)).backward();
  EXPECT_FALSE(x.grad().empty());
  opt.zero_grad();
  for (float g : x.grad()) EXPECT_FLOAT_EQ(g, 0.0f);
}

// A single Linear layer trained with Adam should fit a linear map.
TEST(Optim, LinearRegressionEndToEnd) {
  Rng rng(21);
  nn::Linear lin(2, 1, rng);
  pcss::tensor::optim::Adam opt(lin.parameters(), 0.05f);
  // y = 3a - 2b + 0.5
  for (int it = 0; it < 400; ++it) {
    std::vector<float> xs = random_values(16, rng);
    std::vector<float> ys(8);
    for (int i = 0; i < 8; ++i) ys[i] = 3.0f * xs[i * 2] - 2.0f * xs[i * 2 + 1] + 0.5f;
    Tensor x = Tensor::from_data({8, 2}, xs);
    Tensor t = Tensor::from_data({8, 1}, ys);
    Tensor loss = ops::mean(ops::square(ops::sub(lin.forward(x), t)));
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  std::vector<float> xs{1.0f, 1.0f};
  Tensor probe = Tensor::from_data({1, 2}, xs);
  EXPECT_NEAR(lin.forward(probe).at(0), 1.5f, 0.05f);
}

}  // namespace
