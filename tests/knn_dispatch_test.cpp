// Grid-vs-brute kNN equivalence: knn_self dispatches to the grid search
// at kKnnGridCutover, so both implementations must agree exactly on
// random clouds (ties at the k-th distance have measure zero there).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "pcss/pointcloud/knn.h"
#include "pcss/tensor/rng.h"

using pcss::pointcloud::kKnnGridCutover;
using pcss::pointcloud::knn_self;
using pcss::pointcloud::knn_self_brute;
using pcss::pointcloud::knn_self_combined;
using pcss::pointcloud::knn_self_combined_brute;
using pcss::pointcloud::knn_self_combined_grid;
using pcss::pointcloud::knn_self_grid;
using pcss::pointcloud::mean_knn_distance;
using pcss::pointcloud::Vec3;
using pcss::tensor::Rng;

namespace {

std::vector<Vec3> random_cloud(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> out(static_cast<size_t>(n));
  for (auto& p : out) {
    p = {rng.uniform(0.0f, 8.0f), rng.uniform(0.0f, 8.0f), rng.uniform(0.0f, 3.0f)};
  }
  return out;
}

std::vector<Vec3> random_colors(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Vec3> out(static_cast<size_t>(n));
  for (auto& c : out) {
    c = {rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f), rng.uniform(0.0f, 1.0f)};
  }
  return out;
}

TEST(KnnDispatch, GridMatchesBruteOnRandomClouds) {
  for (std::int64_t n : {64, 300, 1500}) {
    for (int k : {1, 4, 12}) {
      for (bool include_self : {true, false}) {
        const auto cloud = random_cloud(n, 1000u + static_cast<std::uint64_t>(n) + k);
        const auto brute = knn_self_brute(cloud, k, include_self);
        const auto grid = knn_self_grid(cloud, k, include_self);
        ASSERT_EQ(brute, grid) << "n=" << n << " k=" << k
                               << " include_self=" << include_self;
      }
    }
  }
}

TEST(KnnDispatch, KnnSelfRoutesLargeCloudsThroughGrid) {
  // Below the cutover knn_self is the brute path; at/above it, the grid.
  // Both must agree with the brute reference either way.
  const auto small = random_cloud(kKnnGridCutover - 1, 5);
  EXPECT_EQ(knn_self(small, 8), knn_self_brute(small, 8));
  const auto large = random_cloud(kKnnGridCutover + 64, 6);
  EXPECT_EQ(knn_self(large, 8), knn_self_brute(large, 8));
  EXPECT_EQ(knn_self(large, 8), knn_self_grid(large, 8));
}

TEST(KnnCombined, GridMatchesBruteUnderTheCombinedMetric) {
  // The grid's shell-termination bound is positional; the combined
  // metric only adds a non-negative color term, so the search stays
  // exact. Verified across color weights spanning "position dominates"
  // to "color dominates".
  for (std::int64_t n : {96, 1500}) {
    const auto pos = random_cloud(n, 2000u + static_cast<std::uint64_t>(n));
    const auto col = random_colors(n, 3000u + static_cast<std::uint64_t>(n));
    for (float cw : {0.0f, 1.0f, 50.0f}) {
      for (int k : {2, 8}) {
        const auto brute = knn_self_combined_brute(pos, col, cw, k);
        const auto grid = knn_self_combined_grid(pos, col, cw, k);
        ASSERT_EQ(brute, grid) << "n=" << n << " cw=" << cw << " k=" << k;
      }
    }
  }
}

TEST(KnnCombined, DispatchesToGridAtTheCutover) {
  const auto small_pos = random_cloud(kKnnGridCutover - 1, 21);
  const auto small_col = random_colors(kKnnGridCutover - 1, 22);
  EXPECT_EQ(knn_self_combined(small_pos, small_col, 2.0f, 6),
            knn_self_combined_brute(small_pos, small_col, 2.0f, 6));
  const auto pos = random_cloud(kKnnGridCutover + 32, 23);
  const auto col = random_colors(kKnnGridCutover + 32, 24);
  EXPECT_EQ(knn_self_combined(pos, col, 2.0f, 6),
            knn_self_combined_grid(pos, col, 2.0f, 6));
}

TEST(KnnCombined, ZeroColorWeightReducesToPositionalKnn) {
  const auto pos = random_cloud(200, 31);
  const auto col = random_colors(200, 32);
  EXPECT_EQ(knn_self_combined(pos, col, 0.0f, 5),
            knn_self_brute(pos, 5, /*include_self=*/false));
}

TEST(KnnCombined, RejectsBadArguments) {
  const auto pos = random_cloud(10, 41);
  const auto col = random_colors(9, 42);
  EXPECT_THROW(knn_self_combined(pos, col, 1.0f, 2), std::invalid_argument);
  const auto col_ok = random_colors(10, 43);
  EXPECT_THROW(knn_self_combined(pos, col_ok, -1.0f, 2), std::invalid_argument);
  EXPECT_THROW(knn_self_combined(pos, col_ok, 1.0f, 0), std::invalid_argument);
}

TEST(KnnDispatch, MeanKnnDistanceIdenticalAcrossPaths) {
  const auto cloud = random_cloud(kKnnGridCutover + 32, 7);
  // mean_knn_distance routes through knn_self (grid at this size); the
  // distances must match a brute-force recomputation exactly.
  const auto dist = mean_knn_distance(cloud, 6);
  const auto idx = knn_self_brute(cloud, 6, /*include_self=*/false);
  ASSERT_EQ(dist.size(), cloud.size());
  for (size_t i = 0; i < cloud.size(); ++i) {
    float acc = 0.0f;
    for (int j = 0; j < 6; ++j) {
      const Vec3& a = cloud[i];
      const Vec3& b = cloud[static_cast<size_t>(idx[i * 6 + static_cast<size_t>(j)])];
      const float dx = a[0] - b[0], dy = a[1] - b[1], dz = a[2] - b[2];
      acc += std::sqrt(dx * dx + dy * dy + dz * dz);
    }
    EXPECT_EQ(dist[i], acc / 6.0f);
  }
}

}  // namespace
