// DefensePipeline contract tests: the legacy free functions are
// bit-exact wrappers over the stages, chained stages carry a correct
// surviving-index map (metrics score against permuted original ground
// truth even when a stage clobbers carried labels), SOR's combined kNN
// is grid/brute-equivalent on the defended output, and DefendedModel
// attacks are deterministic across engine thread counts (stochastic SRS
// included) while reproducing the undefended engine exactly for the
// empty pipeline.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "pcss/core/attack_engine.h"
#include "pcss/core/defended_model.h"
#include "pcss/core/defense.h"
#include "pcss/core/defense_grid.h"
#include "pcss/core/transfer.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::models::ResGCNConfig;
using pcss::models::ResGCNSeg;
using pcss::tensor::Rng;

namespace {

pcss::data::PointCloud scene(int points = 160, std::uint64_t seed = 1) {
  IndoorSceneGenerator gen({.num_points = points});
  Rng rng(seed);
  return gen.generate(rng);
}

std::shared_ptr<ResGCNSeg> tiny_model(std::uint64_t seed = 9) {
  Rng init(seed);
  ResGCNConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  config.channels = 8;
  config.blocks = 1;
  return std::make_shared<ResGCNSeg>(config, init);
}

bool same_cloud(const pcss::data::PointCloud& a, const pcss::data::PointCloud& b) {
  return a.positions == b.positions && a.colors == b.colors && a.labels == b.labels;
}

// ---------------------------------------------------------------------------
// Wrapper equivalence (the free functions are thin pipeline wrappers)
// ---------------------------------------------------------------------------

TEST(DefenseWrappers, SrsDefenseEqualsSrsStageBitExactly) {
  const auto cloud = scene(200, 3);
  Rng rng_a(17), rng_b(17);
  const auto via_wrapper = srs_defense(cloud, 40, rng_a);
  const auto via_stage = make_srs_stage(40)->apply(cloud, rng_b);
  EXPECT_TRUE(same_cloud(via_wrapper, via_stage.cloud));
  ASSERT_EQ(via_stage.kept.size(), 160u);
  for (size_t i = 0; i < via_stage.kept.size(); ++i) {
    EXPECT_EQ(via_stage.cloud.positions[i],
              cloud.positions[static_cast<size_t>(via_stage.kept[i])]);
  }
}

TEST(DefenseWrappers, SorDefenseEqualsSorStageBitExactly) {
  const auto cloud = scene(220, 4);
  Rng unused(0);
  const auto via_wrapper = sor_defense(cloud, 2, 1.0f, 1.0f);
  const auto via_stage = make_sor_stage(2, 1.0f, 1.0f)->apply(cloud, unused);
  EXPECT_TRUE(same_cloud(via_wrapper, via_stage.cloud));
}

TEST(DefenseWrappers, EvaluateDefendedEqualsRunDefendedOnTheWrapperPath) {
  auto model = tiny_model();
  const auto cloud = scene(150, 5);
  Rng rng_a(23), rng_b(23);
  const auto defended = srs_defense(cloud, 30, rng_a);
  const DefendedEval legacy = evaluate_defended(*model, defended, 13);

  DefensePipeline pipeline;
  pipeline.add(make_srs_stage(30));
  const DefenseReport report = run_defended(*model, pipeline, cloud, 13, rng_b);
  EXPECT_EQ(legacy.accuracy, report.metrics.accuracy);
  EXPECT_EQ(legacy.aiou, report.metrics.aiou);
  EXPECT_EQ(legacy.points_kept, report.outcome.cloud.size());
}

TEST(DefenseWrappers, EvaluateTransferEqualsIdentityPipelineMetrics) {
  auto model = tiny_model();
  const auto cloud = scene(140, 6);
  const SegMetrics legacy = evaluate_transfer(*model, cloud, 13);
  Rng unused(0);
  const DefenseReport report = run_defended(*model, DefensePipeline{}, cloud, 13, unused);
  EXPECT_EQ(legacy.accuracy, report.metrics.accuracy);
  EXPECT_EQ(legacy.aiou, report.metrics.aiou);
  EXPECT_EQ(legacy.per_class_iou, report.metrics.per_class_iou);
}

// ---------------------------------------------------------------------------
// Stages
// ---------------------------------------------------------------------------

TEST(DefenseStages, DescribeStringsAreStableAndParamSensitive) {
  EXPECT_EQ(make_srs_stage(40)->describe(), "srs(remove=40)");
  EXPECT_EQ(make_srs_fraction_stage(0.01f)->describe(), "srs(fraction=0.00999999978)");
  EXPECT_EQ(make_sor_stage(2, 1.0f, 1.0f)->describe(), "sor(k=2,mult=1,cw=1)");
  EXPECT_NE(make_sor_stage(2, 1.5f, 1.0f)->describe(),
            make_sor_stage(2, 1.0f, 1.0f)->describe());
  EXPECT_EQ(make_color_quantize_stage(8)->describe(), "quantize(levels=8)");
  EXPECT_EQ(make_knn_label_vote_stage(5)->describe(), "knn_vote(k=5)");
  DefensePipeline chain;
  chain.add(make_srs_stage(10)).add(make_sor_stage(2));
  EXPECT_EQ(chain.describe(), "srs(remove=10)|sor(k=2,mult=1,cw=1)");
  EXPECT_EQ(DefensePipeline{}.describe(), "none");
}

TEST(DefenseStages, QuantizeSnapsColorsAndKeepsEveryPoint) {
  const auto cloud = scene(100, 7);
  Rng unused(0);
  const auto outcome = make_color_quantize_stage(5)->apply(cloud, unused);
  ASSERT_EQ(outcome.cloud.size(), cloud.size());
  for (std::int64_t i = 0; i < outcome.cloud.size(); ++i) {
    EXPECT_EQ(outcome.kept[static_cast<size_t>(i)], i);
    for (int a = 0; a < 3; ++a) {
      const float v = outcome.cloud.colors[static_cast<size_t>(i)][a] * 4.0f;
      EXPECT_NEAR(v, std::round(v), 1e-4f) << "channel not on the 5-level grid";
    }
  }
}

TEST(DefenseStages, VoxelStageCollapsesCoLocatedPoints) {
  pcss::data::PointCloud cloud;
  for (int i = 0; i < 12; ++i) {
    // Three tight clusters far apart: one survivor per cluster.
    const float base = static_cast<float>(i % 3) * 10.0f;
    cloud.push_back({base + 0.001f * static_cast<float>(i), 0.0f, 0.0f},
                    {0.5f, 0.5f, 0.5f}, i % 3);
  }
  Rng unused(0);
  const auto outcome = make_voxel_stage(1.0f)->apply(cloud, unused);
  EXPECT_EQ(outcome.cloud.size(), 3);
  for (size_t i = 0; i < outcome.kept.size(); ++i) {
    EXPECT_EQ(outcome.cloud.labels[i],
              cloud.labels[static_cast<size_t>(outcome.kept[i])]);
  }
}

TEST(DefenseStages, KnnVoteSmoothsAnIsolatedPrediction) {
  // A tight cluster: majority voting flips the one disagreeing label.
  pcss::data::PointCloud cloud;
  for (int i = 0; i < 6; ++i) {
    cloud.push_back({0.01f * static_cast<float>(i), 0.0f, 0.0f}, {0.5f, 0.5f, 0.5f}, 0);
  }
  std::vector<int> pred = {2, 2, 7, 2, 2, 2};
  const auto stage = make_knn_label_vote_stage(3);
  stage->smooth_predictions(cloud, pred);
  EXPECT_EQ(pred, (std::vector<int>{2, 2, 2, 2, 2, 2}));
}

TEST(DefenseStages, SorBruteAndGridBackendsProduceIdenticalDefendedOutput) {
  // Satellite: the combined position+color kNN goes through the grid at
  // >= 1024 points; the defended cloud must not depend on the backend.
  const auto cloud = scene(1400, 8);
  ASSERT_GE(cloud.size(), 1024);
  Rng unused(0);
  const auto brute =
      make_sor_stage(3, 1.0f, 25.0f, KnnBackend::kBrute)->apply(cloud, unused);
  const auto grid = make_sor_stage(3, 1.0f, 25.0f, KnnBackend::kGrid)->apply(cloud, unused);
  const auto dispatched = make_sor_stage(3, 1.0f, 25.0f)->apply(cloud, unused);
  EXPECT_TRUE(same_cloud(brute.cloud, grid.cloud));
  EXPECT_EQ(brute.kept, grid.kept);
  EXPECT_TRUE(same_cloud(dispatched.cloud, grid.cloud));
}

// ---------------------------------------------------------------------------
// Index-map composition and label alignment
// ---------------------------------------------------------------------------

/// Adversarial fixture stage: reverses point order and clobbers the
/// carried labels. A correct pipeline consumer must score through the
/// surviving-index map, never through the labels a stage emits.
class ReverseAndClobberLabels final : public DefenseStage {
 public:
  const char* name() const override { return "reverse_clobber"; }
  std::string describe() const override { return "reverse_clobber()"; }
  DefenseOutcome apply(const PointCloud& cloud, Rng&) const override {
    std::vector<std::int64_t> kept(static_cast<size_t>(cloud.size()));
    std::iota(kept.begin(), kept.end(), std::int64_t{0});
    std::reverse(kept.begin(), kept.end());
    DefenseOutcome out{cloud.subset(kept), std::move(kept)};
    std::fill(out.cloud.labels.begin(), out.cloud.labels.end(), 0);
    return out;
  }
};

TEST(DefensePipelineTest, ChainedKeptMapsComposeToOriginalIndices) {
  const auto cloud = scene(300, 11);
  DefensePipeline pipeline;
  pipeline.add(make_srs_stage(60)).add(make_sor_stage(2, 1.0f, 1.0f));
  Rng rng(41);
  const DefenseOutcome outcome = pipeline.apply(cloud, rng);
  ASSERT_EQ(outcome.kept.size(), static_cast<size_t>(outcome.cloud.size()));
  for (size_t i = 0; i < outcome.kept.size(); ++i) {
    const auto j = static_cast<size_t>(outcome.kept[i]);
    EXPECT_EQ(outcome.cloud.positions[i], cloud.positions[j]);
    EXPECT_EQ(outcome.cloud.colors[i], cloud.colors[j]);
    EXPECT_EQ(outcome.cloud.labels[i], cloud.labels[j]);
  }
  // Strictly increasing: both stages preserve original point order, so
  // the composition must too.
  EXPECT_TRUE(std::is_sorted(outcome.kept.begin(), outcome.kept.end()));
}

TEST(DefensePipelineTest, MetricsScoreAgainstPermutedOriginalLabels) {
  auto model = tiny_model();
  const auto cloud = scene(120, 12);
  DefensePipeline pipeline;
  pipeline.add(make_srs_stage(20)).add(std::make_shared<ReverseAndClobberLabels>());
  Rng rng(43);
  const DefenseReport report = run_defended(*model, pipeline, cloud, 13, rng);

  // Recompute the expected metrics by hand from the surviving map.
  std::vector<int> truth(report.outcome.kept.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = cloud.labels[static_cast<size_t>(report.outcome.kept[i])];
  }
  const SegMetrics expected = evaluate_segmentation(report.predictions, truth, 13);
  EXPECT_EQ(report.metrics.accuracy, expected.accuracy);
  EXPECT_EQ(report.metrics.aiou, expected.aiou);
  // The clobbered carried labels would have produced a different score
  // (all-zero ground truth); guard that the fixture actually bites.
  const SegMetrics clobbered =
      evaluate_segmentation(report.predictions, report.outcome.cloud.labels, 13);
  EXPECT_NE(expected.accuracy, clobbered.accuracy);
}

TEST(DefensePipelineTest, RejectsMalformedStageOutcomes) {
  class BadMap final : public DefenseStage {
   public:
    const char* name() const override { return "bad_map"; }
    std::string describe() const override { return "bad_map()"; }
    DefenseOutcome apply(const PointCloud& cloud, Rng&) const override {
      return {cloud, std::vector<std::int64_t>{}};  // wrong size
    }
  };
  class OutOfRange final : public DefenseStage {
   public:
    const char* name() const override { return "oob"; }
    std::string describe() const override { return "oob()"; }
    DefenseOutcome apply(const PointCloud& cloud, Rng&) const override {
      std::vector<std::int64_t> kept(static_cast<size_t>(cloud.size()), cloud.size());
      return {cloud, std::move(kept)};
    }
  };
  class Duplicates final : public DefenseStage {
   public:
    const char* name() const override { return "dup"; }
    std::string describe() const override { return "dup()"; }
    DefenseOutcome apply(const PointCloud& cloud, Rng&) const override {
      // Two defended points claiming the same source index would
      // double-count ground truth and break scatter_rows' contract.
      std::vector<std::int64_t> kept(static_cast<size_t>(cloud.size()), 0);
      return {cloud, std::move(kept)};
    }
  };
  const auto cloud = scene(40, 13);
  Rng rng(1);
  DefensePipeline bad;
  bad.add(std::make_shared<BadMap>());
  EXPECT_THROW(bad.apply(cloud, rng), std::runtime_error);
  DefensePipeline oob;
  oob.add(std::make_shared<OutOfRange>());
  EXPECT_THROW(oob.apply(cloud, rng), std::runtime_error);
  DefensePipeline dup;
  dup.add(std::make_shared<Duplicates>());
  EXPECT_THROW(dup.apply(cloud, rng), std::runtime_error);
}

// ---------------------------------------------------------------------------
// DefendedModel: determinism, adaptive gradients, dropped-point scoring
// ---------------------------------------------------------------------------

AttackConfig small_bounded_config() {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.field = AttackField::kColor;
  config.steps = 3;
  config.epsilon = 0.1f;
  config.step_size = 0.02f;
  return config;
}

TEST(DefendedModelTest, EmptyPipelineReproducesTheUndefendedEngineBitExactly) {
  auto model = tiny_model();
  const auto cloud = scene(96, 14);
  const AttackConfig config = small_bounded_config();
  const AttackResult plain = AttackEngine(*model, config).run(cloud);
  DefendedModel defended(*model, DefensePipeline{});
  const AttackResult through = AttackEngine(defended, config).run(cloud);
  EXPECT_TRUE(same_cloud(plain.perturbed, through.perturbed));
  EXPECT_EQ(plain.predictions, through.predictions);
  EXPECT_EQ(plain.steps_used, through.steps_used);
}

TEST(DefendedModelTest, StochasticSrsBatchIsByteIdenticalAcrossThreadCounts) {
  // Satellite: SRS with a fixed seed inside run_batch must not depend on
  // the worker count. The defense stream is a pure function of the
  // perturbed input bytes, so scheduling cannot reorder draws.
  auto model = tiny_model();
  DefensePipeline pipeline;
  pipeline.add(make_srs_fraction_stage(0.05f));
  DefendedModel defended(*model, pipeline, {.seed = 77});
  std::vector<pcss::data::PointCloud> clouds;
  for (int i = 0; i < 3; ++i) clouds.push_back(scene(96, 20 + static_cast<unsigned>(i)));

  const AttackConfig config = small_bounded_config();
  AttackEngine engine(defended, config);
  engine.set_num_threads(1);
  const auto one = engine.run_batch(clouds);
  engine.set_num_threads(2);
  const auto two = engine.run_batch(clouds);
  ASSERT_EQ(one.size(), two.size());
  for (size_t i = 0; i < one.size(); ++i) {
    EXPECT_TRUE(same_cloud(one[i].perturbed, two[i].perturbed)) << "cloud " << i;
    EXPECT_EQ(one[i].predictions, two[i].predictions) << "cloud " << i;
    EXPECT_EQ(one[i].steps_used, two[i].steps_used) << "cloud " << i;
  }
  // And equal to the engine's per-cloud contract on a defended model.
  const AttackResult solo = engine.run(clouds[1], config.seed + 1);
  EXPECT_TRUE(same_cloud(solo.perturbed, one[1].perturbed));
}

TEST(DefendedModelTest, DroppedPointsScoreAsTheirGroundTruth) {
  auto model = tiny_model();
  DefensePipeline pipeline;
  pipeline.add(make_srs_fraction_stage(0.5f));  // drop half the cloud
  DefendedModel defended(*model, pipeline, {.seed = 5});
  const auto cloud = scene(100, 15);
  const std::vector<int> pred = defended.predict(cloud);
  ASSERT_EQ(pred.size(), static_cast<size_t>(cloud.size()));

  Rng rng = defended.stream(cloud, 0);
  const DefenseOutcome outcome = defended.pipeline().apply(cloud, rng);
  std::vector<bool> kept(static_cast<size_t>(cloud.size()), false);
  for (std::int64_t j : outcome.kept) kept[static_cast<size_t>(j)] = true;
  int dropped = 0;
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    if (kept[static_cast<size_t>(i)]) continue;
    ++dropped;
    EXPECT_EQ(pred[static_cast<size_t>(i)], cloud.labels[static_cast<size_t>(i)])
        << "dropped point " << i << " must score as still-correct";
  }
  EXPECT_EQ(dropped, 50);
}

TEST(DefendedModelTest, AdaptiveAttackFlowsGradientsThroughQuantization) {
  // Straight-through estimate: the engine must be able to optimize a
  // perturbation through a value-modifying (piecewise-constant) stage.
  auto model = tiny_model();
  DefensePipeline pipeline;
  pipeline.add(make_color_quantize_stage(16));
  DefendedModel defended(*model, pipeline);
  const auto cloud = scene(96, 16);
  AttackConfig config = small_bounded_config();
  const AttackResult result = AttackEngine(defended, config).run(cloud);
  EXPECT_EQ(result.steps_used, config.steps);
  EXPECT_GT(result.l2_color, 0.0) << "no perturbation reached the cloud";
  // Deterministic: the same run reproduces byte-identically.
  const AttackResult again = AttackEngine(defended, config).run(cloud);
  EXPECT_TRUE(same_cloud(result.perturbed, again.perturbed));
}

TEST(DefendedModelTest, EotAveragesResamplesAndStaysDeterministic) {
  auto model = tiny_model();
  DefensePipeline pipeline;
  pipeline.add(make_srs_fraction_stage(0.1f));
  DefendedModel eot(*model, pipeline, {.seed = 9, .eot_samples = 3});
  const auto cloud = scene(80, 17);
  const std::vector<int> a = eot.predict(cloud);
  const std::vector<int> b = eot.predict(cloud);
  EXPECT_EQ(a, b);
  const DefendedModelOptions zero_samples{.seed = 9, .eot_samples = 0};
  EXPECT_THROW(DefendedModel(*model, pipeline, zero_samples), std::invalid_argument);
  const DefendedModelOptions eot_on_deterministic{.seed = 9, .eot_samples = 2};
  EXPECT_THROW(DefendedModel(*model, DefensePipeline{}, eot_on_deterministic),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Defense grid driver
// ---------------------------------------------------------------------------

TEST(DefenseGridTest, SubsumesEvaluateDefendedAndEvaluateTransfer) {
  auto source = tiny_model(9);
  auto other = tiny_model(10);
  const std::vector<pcss::data::PointCloud> clouds = {scene(96, 18), scene(96, 19)};

  const std::vector<GridVictim> victims = {{"source", source.get()}, {"other", other.get()}};
  const std::vector<GridAttack> attacks = {{"clean", true, {}},
                                           {"bounded", false, small_bounded_config()}};
  std::vector<GridDefense> defenses;
  defenses.push_back({"none", {}});
  DefensePipeline srs;
  srs.add(make_srs_fraction_stage(0.05f));
  defenses.push_back({"srs", srs});

  DefenseGridOptions options;
  options.defense_seed = 1234;
  options.num_threads = 1;
  const DefenseGridResult grid = evaluate_defense_grid(
      *source, victims, clouds, attacks, defenses, options);
  ASSERT_EQ(grid.cells.size(), 2u * 2u * 2u);
  ASSERT_EQ(grid.attacks.size(), 2u);
  EXPECT_EQ(grid.attacks[0].steps, (std::vector<long long>{0, 0}));

  // The (clean, none, other) cell is exactly evaluate_transfer on the
  // clean clouds; (bounded, none, source) matches the engine + transfer
  // composition under the seed + index convention.
  const auto& clean_transfer = grid.cells[1];
  EXPECT_EQ(clean_transfer.attack, "clean");
  EXPECT_EQ(clean_transfer.defense, "none");
  EXPECT_EQ(clean_transfer.victim, "other");
  for (size_t g = 0; g < clouds.size(); ++g) {
    const SegMetrics direct = evaluate_transfer(*other, clouds[g], 13);
    EXPECT_EQ(clean_transfer.cases[g].accuracy, direct.accuracy);
    EXPECT_EQ(clean_transfer.cases[g].aiou, direct.aiou);
  }

  AttackConfig config = small_bounded_config();
  AttackEngine engine(*source, config);
  for (size_t g = 0; g < clouds.size(); ++g) {
    const AttackResult adv = engine.run(clouds[g], config.seed + g);
    const SegMetrics self = evaluate_transfer(*source, adv.perturbed, 13);
    const GridCell& cell = grid.cells[4];  // bounded x none x source
    EXPECT_EQ(cell.attack, "bounded");
    EXPECT_EQ(cell.victim, "source");
    EXPECT_EQ(cell.cases[g].accuracy, self.accuracy);
    // And the SRS-defended cell reproduces run_defended with the grid's
    // published per-cell stream.
    Rng rng(defense_cell_seed(options.defense_seed, "bounded", srs.describe(), g));
    const DefenseReport report = run_defended(*source, srs, adv.perturbed, 13, rng);
    const GridCell& defended_cell = grid.cells[6];  // bounded x srs x source
    EXPECT_EQ(defended_cell.defense, "srs");
    EXPECT_EQ(defended_cell.cases[g].accuracy, report.metrics.accuracy);
    EXPECT_EQ(defended_cell.cases[g].points_kept, report.outcome.cloud.size());
  }
}

TEST(DefenseGridTest, CloudIndexBaseMakesShardingInvisible) {
  auto source = tiny_model(11);
  std::vector<pcss::data::PointCloud> clouds;
  for (int i = 0; i < 4; ++i) clouds.push_back(scene(96, 30 + static_cast<unsigned>(i)));

  const std::vector<GridVictim> victims = {{"source", source.get()}};
  const std::vector<GridAttack> attacks = {{"bounded", false, small_bounded_config()}};
  std::vector<GridDefense> defenses;
  DefensePipeline srs;
  srs.add(make_srs_fraction_stage(0.1f));
  defenses.push_back({"srs", srs});

  DefenseGridOptions whole;
  whole.num_threads = 1;
  const DefenseGridResult all =
      evaluate_defense_grid(*source, victims, clouds, attacks, defenses, whole);

  DefenseGridOptions tail = whole;
  tail.cloud_index_base = 2;
  const DefenseGridResult back = evaluate_defense_grid(
      *source, victims, std::span<const PointCloud>(clouds).subspan(2), attacks, defenses,
      tail);
  for (size_t g = 0; g < 2; ++g) {
    EXPECT_EQ(all.cells[0].cases[2 + g].accuracy, back.cells[0].cases[g].accuracy);
    EXPECT_EQ(all.cells[0].cases[2 + g].points_kept, back.cells[0].cases[g].points_kept);
    EXPECT_EQ(all.attacks[0].l2_color[2 + g], back.attacks[0].l2_color[g]);
  }
}

}  // namespace
