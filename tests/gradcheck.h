#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pcss/tensor/ops.h"
#include "pcss/tensor/tensor.h"

namespace pcss::testing {

using pcss::tensor::Shape;
using pcss::tensor::Tensor;

/// Builds a scalar loss from an input tensor. The function must rebuild
/// the whole graph from the given input (define-by-run).
using LossFn = std::function<Tensor(const Tensor&)>;

/// Finite-difference gradient check: compares reverse-mode gradients of
/// `loss_fn` at `x0` against central differences.
inline void expect_gradcheck(const LossFn& loss_fn, const Shape& shape,
                             std::vector<float> x0, float h = 1e-3f, float tol = 2e-2f) {
  Tensor x = Tensor::from_data(shape, x0);
  x.set_requires_grad(true);
  Tensor loss = loss_fn(x);
  ASSERT_EQ(loss.numel(), 1) << "loss_fn must return a scalar";
  loss.backward();
  const std::vector<float> analytic(x.grad().begin(), x.grad().end());
  ASSERT_EQ(analytic.size(), x0.size());

  for (size_t i = 0; i < x0.size(); ++i) {
    std::vector<float> plus = x0, minus = x0;
    plus[i] += h;
    minus[i] -= h;
    const float fp = loss_fn(Tensor::from_data(shape, plus)).item();
    const float fm = loss_fn(Tensor::from_data(shape, minus)).item();
    const float numeric = (fp - fm) / (2.0f * h);
    const float scale = std::max({1.0f, std::abs(numeric), std::abs(analytic[i])});
    EXPECT_NEAR(analytic[i], numeric, tol * scale)
        << "gradient mismatch at flat index " << i;
  }
}

/// Convenience: random input in [lo, hi).
inline std::vector<float> random_values(std::int64_t count, pcss::tensor::Rng& rng,
                                        float lo = -1.0f, float hi = 1.0f) {
  std::vector<float> out(static_cast<size_t>(count));
  for (auto& v : out) v = rng.uniform(lo, hi);
  return out;
}

}  // namespace pcss::testing
