// Tests for the §VI extension features: the PCT model, the universal
// multi-cloud attack, adversarial training, and the optional L0
// sparsification of the color field.
#include <gtest/gtest.h>

#include <cmath>

#include "pcss/core/adv_train.h"
#include "pcss/core/attack.h"
#include "pcss/core/metrics.h"
#include "pcss/core/universal.h"
#include "pcss/data/indoor.h"
#include "pcss/models/pct.h"
#include "pcss/models/resgcn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

using namespace pcss::core;
namespace ops = pcss::tensor::ops;
using pcss::data::IndoorSceneGenerator;
using pcss::models::ModelInput;
using pcss::models::PctConfig;
using pcss::models::PctSeg;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;

namespace {

PctSeg make_tiny_pct(Rng& rng) {
  PctConfig config;
  config.num_classes = 13;
  config.dim = 12;
  config.layers = 1;
  return PctSeg(config, rng);
}

TEST(Pct, ForwardShapeAndDeterminism) {
  Rng rng(1);
  PctSeg model = make_tiny_pct(rng);
  IndoorSceneGenerator gen({.num_points = 96});
  Rng srng(2);
  const auto cloud = gen.generate(srng);
  ModelInput input = ModelInput::plain(cloud);
  Tensor logits = model.forward(input, false);
  EXPECT_EQ(logits.dim(0), cloud.size());
  EXPECT_EQ(logits.dim(1), 13);
  EXPECT_EQ(model.predict(cloud), model.predict(cloud));
}

TEST(Pct, AttentionGradientsReachColorAndCoords) {
  Rng rng(3);
  PctSeg model = make_tiny_pct(rng);
  IndoorSceneGenerator gen({.num_points = 80});
  Rng srng(4);
  const auto cloud = gen.generate(srng);
  Tensor cdelta = Tensor::zeros({cloud.size(), 3});
  cdelta.set_requires_grad(true);
  Tensor pdelta = Tensor::zeros({cloud.size(), 3});
  pdelta.set_requires_grad(true);
  ModelInput input{&cloud, cdelta, pdelta};
  ops::sum(ops::square(model.forward(input, false))).backward();
  float cn = 0.0f, pn = 0.0f;
  for (float g : cdelta.grad()) cn += g * g;
  for (float g : pdelta.grad()) pn += g * g;
  EXPECT_GT(cn, 0.0f);
  EXPECT_GT(pn, 0.0f) << "positional encoding must carry coordinate gradients";
}

TEST(Pct, OverfitsTinyScene) {
  Rng rng(5);
  PctSeg model = make_tiny_pct(rng);
  IndoorSceneGenerator gen({.num_points = 96});
  Rng srng(6);
  const auto cloud = gen.generate(srng);
  pcss::tensor::optim::Adam opt(model.parameters(), 0.02f);
  for (int it = 0; it < 60; ++it) {
    ModelInput input = ModelInput::plain(cloud);
    Tensor loss = ops::nll_loss_masked(
        ops::log_softmax_rows(model.forward(input, true)), cloud.labels, {});
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  const auto pred = model.predict(cloud);
  std::int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += pred[i] == cloud.labels[i];
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(pred.size()), 0.4);
}

TEST(Pct, AttackFrameworkApplies) {
  // The §VI claim: gradient-based attacks transfer to transformer
  // architectures unchanged.
  Rng rng(7);
  PctSeg model = make_tiny_pct(rng);
  IndoorSceneGenerator gen({.num_points = 96});
  Rng srng(8);
  const auto cloud = gen.generate(srng);
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 3;
  const auto result = run_attack(model, cloud, config);
  EXPECT_EQ(static_cast<std::int64_t>(result.predictions.size()), cloud.size());
  EXPECT_GT(result.l0_color, 0);
}

// --- universal multi-cloud attack ---------------------------------------------

class UniversalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new IndoorSceneGenerator({.num_points = 128});
    Rng init(9);
    pcss::models::ResGCNConfig mc;
    mc.num_classes = 13;
    mc.channels = 16;
    mc.blocks = 2;
    model_ = new pcss::models::ResGCNSeg(mc, init);
    Rng scenes(10);
    clouds_ = new std::vector<PointCloud>();
    for (int i = 0; i < 3; ++i) clouds_->push_back(gen_->generate(scenes));
    pcss::tensor::optim::Adam opt(model_->parameters(), 0.02f);
    for (int it = 0; it < 120; ++it) {
      const auto& c = (*clouds_)[static_cast<size_t>(it) % clouds_->size()];
      ModelInput input = ModelInput::plain(c);
      Tensor loss = ops::nll_loss_masked(
          ops::log_softmax_rows(model_->forward(input, true)), c.labels, {});
      opt.zero_grad();
      loss.backward();
      opt.step();
    }
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete model_;
    delete clouds_;
  }
  static IndoorSceneGenerator* gen_;
  static pcss::models::ResGCNSeg* model_;
  static std::vector<PointCloud>* clouds_;
};

IndoorSceneGenerator* UniversalFixture::gen_ = nullptr;
pcss::models::ResGCNSeg* UniversalFixture::model_ = nullptr;
std::vector<PointCloud>* UniversalFixture::clouds_ = nullptr;

TEST_F(UniversalFixture, SharedDeltaDropsAccuracyOnAllClouds) {
  AttackConfig config;
  config.steps = 15;
  config.epsilon = 0.25f;
  config.step_size = 0.02f;
  const auto result = universal_color_attack(*model_, *clouds_, config);
  ASSERT_EQ(result.accuracy_before.size(), clouds_->size());
  double before = 0.0, after = 0.0;
  for (size_t i = 0; i < clouds_->size(); ++i) {
    before += result.accuracy_before[i];
    after += result.accuracy_after[i];
  }
  EXPECT_LT(after, before - 0.1 * static_cast<double>(clouds_->size()))
      << "one shared delta must hurt the average cloud";
}

TEST_F(UniversalFixture, DeltaRespectsEpsilon) {
  AttackConfig config;
  config.steps = 5;
  config.epsilon = 0.1f;
  const auto result = universal_color_attack(*model_, *clouds_, config);
  for (float d : result.color_delta) EXPECT_LE(std::abs(d), config.epsilon + 1e-5f);
}

TEST_F(UniversalFixture, ApplyClampsColors) {
  std::vector<float> delta(static_cast<size_t>((*clouds_)[0].size() * 3), 0.9f);
  const auto adv = apply_universal_delta((*clouds_)[0], delta);
  EXPECT_NO_THROW(adv.validate());
}

TEST_F(UniversalFixture, RejectsMisalignedClouds) {
  auto clouds = *clouds_;
  IndoorSceneGenerator small({.num_points = 64});
  Rng rng(11);
  clouds.push_back(small.generate(rng));
  AttackConfig config;
  EXPECT_THROW(universal_color_attack(*model_, clouds, config), std::invalid_argument);
  EXPECT_THROW(universal_color_attack(*model_, {}, config), std::invalid_argument);
  EXPECT_THROW(apply_universal_delta((*clouds_)[0], {1.0f}), std::invalid_argument);
}

// --- adversarial training ------------------------------------------------------

TEST(AdversarialTraining, RunsAndCountsAdvSteps) {
  IndoorSceneGenerator gen({.num_points = 96});
  Rng init(12);
  pcss::models::ResGCNConfig mc;
  mc.num_classes = 13;
  mc.channels = 8;
  mc.blocks = 1;
  pcss::models::ResGCNSeg model(mc, init);
  AdvTrainConfig config;
  config.iterations = 20;
  config.scene_pool = 3;
  config.attack_steps = 2;
  config.adv_fraction = 0.5f;
  const auto stats = adversarial_train(
      model, [&gen](Rng& rng) { return gen.generate(rng); }, config);
  EXPECT_GT(stats.adversarial_steps, 0);
  EXPECT_LT(stats.adversarial_steps, config.iterations);
  EXPECT_TRUE(std::isfinite(stats.final_loss));
}

// --- l0_on_color option ---------------------------------------------------------

TEST_F(UniversalFixture, L0OnColorSparsifiesBoundedAttack) {
  const auto& cloud = (*clouds_)[0];
  AttackConfig dense;
  dense.norm = AttackNorm::kBounded;
  dense.steps = 8;
  const auto r_dense = run_attack(*model_, cloud, dense);

  AttackConfig sparse = dense;
  sparse.l0_on_color = true;
  sparse.min_impact_fraction = 0.05f;
  const auto r_sparse = run_attack(*model_, cloud, sparse);
  EXPECT_LT(r_sparse.l0_color, r_dense.l0_color)
      << "Eq. 12 schedule on color must reduce the L0 count";
  EXPECT_GT(r_sparse.l0_color, 0);
}

}  // namespace
