#include <gtest/gtest.h>

#include <set>

#include "pcss/data/indoor.h"
#include "pcss/data/outdoor.h"
#include "pcss/data/primitives.h"

using namespace pcss::data;
using pcss::pointcloud::Vec3;
using pcss::pointcloud::compute_bbox;
using pcss::tensor::Rng;

namespace {

TEST(Primitives, RectSamplesStayInside) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p = sample_rect({1, 1, 0}, {2, 0, 0}, {0, 3, 0}, rng);
    EXPECT_GE(p[0], 1.0f);
    EXPECT_LE(p[0], 3.0f);
    EXPECT_GE(p[1], 1.0f);
    EXPECT_LE(p[1], 4.0f);
    EXPECT_FLOAT_EQ(p[2], 0.0f);
  }
}

TEST(Primitives, BoxSurfaceOnFaces) {
  Rng rng(2);
  const Vec3 c{0, 0, 0}, h{1, 2, 3};
  for (int i = 0; i < 200; ++i) {
    const Vec3 p = sample_box_surface(c, h, rng);
    const bool on_face = std::abs(std::abs(p[0]) - 1.0f) < 1e-5f ||
                         std::abs(std::abs(p[1]) - 2.0f) < 1e-5f ||
                         std::abs(std::abs(p[2]) - 3.0f) < 1e-5f;
    EXPECT_TRUE(on_face);
    EXPECT_LE(std::abs(p[0]), 1.0f + 1e-5f);
    EXPECT_LE(std::abs(p[1]), 2.0f + 1e-5f);
    EXPECT_LE(std::abs(p[2]), 3.0f + 1e-5f);
  }
}

TEST(Primitives, SphereRadiusExact) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p = sample_sphere({1, 2, 3}, 2.0f, rng);
    const float r = std::sqrt(pcss::pointcloud::squared_distance(p, Vec3{1, 2, 3}));
    EXPECT_NEAR(r, 2.0f, 1e-4f);
  }
}

TEST(Primitives, CylinderAndConeBounds) {
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const Vec3 p = sample_cylinder_side({0, 0, 1}, 0.5f, 2.0f, rng);
    EXPECT_NEAR(std::hypot(p[0], p[1]), 0.5f, 1e-4f);
    EXPECT_GE(p[2], 1.0f);
    EXPECT_LE(p[2], 3.0f);
    const Vec3 q = sample_cone_side({0, 0, 0}, 1.0f, 2.0f, rng);
    EXPECT_GE(q[2], 0.0f);
    EXPECT_LE(q[2], 2.0f);
    // Radius shrinks with height.
    EXPECT_LE(std::hypot(q[0], q[1]), 1.0f * (1.0f - q[2] / 2.0f) + 1e-4f);
  }
}

TEST(Primitives, ColorHelpersClamped) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const Vec3 c = vary_color({0.95f, 0.05f, 0.5f}, 0.3f, rng);
    for (int a = 0; a < 3; ++a) {
      EXPECT_GE(c[a], 0.0f);
      EXPECT_LE(c[a], 1.0f);
    }
  }
  const Vec3 s = shade({0.8f, 0.8f, 0.8f}, 2.0f);
  EXPECT_FLOAT_EQ(s[0], 1.0f);
}

TEST(IndoorGenerator, BasicInvariants) {
  IndoorSceneGenerator gen({.num_points = 1024});
  Rng rng(100);
  const auto cloud = gen.generate(rng);
  EXPECT_EQ(cloud.size(), 1024);
  EXPECT_NO_THROW(cloud.validate());
  for (int label : cloud.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, kIndoorNumClasses);
  }
  // The room should be of plausible size.
  const auto box = compute_bbox(cloud.positions);
  EXPECT_GT(box.extent()[0], 3.0f);
  EXPECT_LT(box.extent()[2], 4.0f);
}

TEST(IndoorGenerator, DeterministicPerSeed) {
  IndoorSceneGenerator gen({.num_points = 256});
  Rng a(7), b(7);
  const auto ca = gen.generate(a);
  const auto cb = gen.generate(b);
  ASSERT_EQ(ca.size(), cb.size());
  for (std::int64_t i = 0; i < ca.size(); ++i) {
    EXPECT_EQ(ca.labels[static_cast<size_t>(i)], cb.labels[static_cast<size_t>(i)]);
    EXPECT_FLOAT_EQ(ca.positions[static_cast<size_t>(i)][0],
                    cb.positions[static_cast<size_t>(i)][0]);
  }
}

TEST(IndoorGenerator, StructuralClassesAlwaysPresent) {
  IndoorSceneGenerator gen({.num_points = 2048});
  Rng rng(200);
  const auto cloud = gen.generate(rng);
  for (int c : {static_cast<int>(IndoorClass::kCeiling), static_cast<int>(IndoorClass::kFloor),
                static_cast<int>(IndoorClass::kWall)}) {
    EXPECT_GT(count_label(cloud, c), 50) << indoor_class_name(c);
  }
}

// Every class used by the paper's object-hiding study must be obtainable.
class HidingClasses : public ::testing::TestWithParam<IndoorClass> {};

TEST_P(HidingClasses, GeneratorProvidesEnoughPoints) {
  IndoorSceneGenerator gen({.num_points = 2048});
  Rng rng(300 + static_cast<std::uint64_t>(GetParam()));
  const auto cloud = gen.generate_with_class(rng, static_cast<int>(GetParam()), 20);
  EXPECT_GE(count_label(cloud, static_cast<int>(GetParam())), 20);
}

INSTANTIATE_TEST_SUITE_P(PaperSourceClasses, HidingClasses,
                         ::testing::Values(IndoorClass::kWindow, IndoorClass::kDoor,
                                           IndoorClass::kTable, IndoorClass::kChair,
                                           IndoorClass::kBookcase, IndoorClass::kBoard));

TEST(IndoorGenerator, ClassNamesMatchPaperIndices) {
  EXPECT_STREQ(indoor_class_name(2), "wall");
  EXPECT_STREQ(indoor_class_name(5), "window");
  EXPECT_STREQ(indoor_class_name(6), "door");
  EXPECT_STREQ(indoor_class_name(7), "table");
  EXPECT_STREQ(indoor_class_name(8), "chair");
  EXPECT_STREQ(indoor_class_name(10), "bookcase");
  EXPECT_STREQ(indoor_class_name(11), "board");
  EXPECT_STREQ(indoor_class_name(99), "unknown");
}

TEST(OutdoorGenerator, BasicInvariants) {
  OutdoorSceneGenerator gen({.num_points = 2048});
  Rng rng(400);
  const auto cloud = gen.generate(rng);
  EXPECT_EQ(cloud.size(), 2048);
  EXPECT_NO_THROW(cloud.validate());
  for (int label : cloud.labels) {
    EXPECT_GE(label, 0);
    EXPECT_LT(label, kOutdoorNumClasses);
  }
  // Outdoor scenes are an order of magnitude larger than rooms.
  const auto box = compute_bbox(cloud.positions);
  EXPECT_GT(box.extent()[0], 20.0f);
}

TEST(OutdoorGenerator, CarsPresentForHidingStudy) {
  OutdoorSceneGenerator gen({.num_points = 2048});
  Rng rng(500);
  const auto cloud =
      gen.generate_with_class(rng, static_cast<int>(OutdoorClass::kCar), 50);
  EXPECT_GE(count_label(cloud, static_cast<int>(OutdoorClass::kCar)), 50);
}

TEST(OutdoorGenerator, Semantic3dLabelMapping) {
  EXPECT_EQ(to_semantic3d_label(static_cast<int>(OutdoorClass::kCar)), 8);
  EXPECT_EQ(to_semantic3d_label(static_cast<int>(OutdoorClass::kManMadeTerrain)), 1);
  EXPECT_EQ(from_semantic3d_label(3), static_cast<int>(OutdoorClass::kHighVegetation));
  EXPECT_STREQ(outdoor_class_name(7), "car");
}

TEST(OutdoorGenerator, TerrainClassesDominateAsInSemantic3d) {
  OutdoorSceneGenerator gen({.num_points = 4096});
  Rng rng(600);
  const auto cloud = gen.generate(rng);
  const auto terrain = count_label(cloud, 0) + count_label(cloud, 1);
  EXPECT_GT(terrain, cloud.size() / 4);
}

TEST(Generators, RejectBadConfig) {
  EXPECT_THROW(IndoorSceneGenerator({.num_points = 0}), std::invalid_argument);
  EXPECT_THROW(OutdoorSceneGenerator({.num_points = -5}), std::invalid_argument);
}

}  // namespace
