#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <set>

#include "pcss/data/indoor.h"
#include "pcss/models/assembler.h"
#include "pcss/models/common.h"
#include "pcss/models/pointnet2.h"
#include "pcss/models/randlanet.h"
#include "pcss/models/resgcn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"
#include "pcss/train/checkpoint.h"

using namespace pcss::models;
namespace ops = pcss::tensor::ops;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;

namespace {

PointCloud tiny_scene(int points = 128, std::uint64_t seed = 42) {
  IndoorSceneGenerator gen({.num_points = points});
  Rng rng(seed);
  return gen.generate(rng);
}

// --- Feature assembler ---------------------------------------------------

TEST(Assembler, ZeroToThreeConventionRanges) {
  const PointCloud cloud = tiny_scene();
  ModelInput input = ModelInput::plain(cloud);
  const AssembledInput a = assemble_input(input, CoordConvention::kZeroToThree, true);
  EXPECT_EQ(a.feature_count, 9);
  EXPECT_EQ(a.features.dim(1), 9);
  for (std::int64_t i = 0; i < a.features.dim(0); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_GE(a.features.at(i * 9 + j), -1e-4f);
      EXPECT_LE(a.features.at(i * 9 + j), 3.0f + 1e-4f);
      EXPECT_GE(a.features.at(i * 9 + 6 + j), -1e-4f);   // normalized extra
      EXPECT_LE(a.features.at(i * 9 + 6 + j), 1.0f + 1e-4f);
    }
  }
}

TEST(Assembler, MinusOneToOneConventionRanges) {
  const PointCloud cloud = tiny_scene();
  ModelInput input = ModelInput::plain(cloud);
  const AssembledInput a = assemble_input(input, CoordConvention::kMinusOneToOne, false);
  EXPECT_EQ(a.feature_count, 6);
  for (std::int64_t i = 0; i < a.features.dim(0); ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_GE(a.features.at(i * 6 + j), -1.0f - 1e-4f);
      EXPECT_LE(a.features.at(i * 6 + j), 1.0f + 1e-4f);
    }
  }
}

TEST(Assembler, CenteredConventionIsZeroMeanBox) {
  const PointCloud cloud = tiny_scene();
  ModelInput input = ModelInput::plain(cloud);
  const AssembledInput a = assemble_input(input, CoordConvention::kCentered, false);
  // bbox center maps to origin: min+max symmetric around 0 per axis.
  float mn[3] = {1e9f, 1e9f, 1e9f}, mx[3] = {-1e9f, -1e9f, -1e9f};
  for (std::int64_t i = 0; i < a.features.dim(0); ++i) {
    for (int j = 0; j < 3; ++j) {
      mn[j] = std::min(mn[j], a.features.at(i * 6 + j));
      mx[j] = std::max(mx[j], a.features.at(i * 6 + j));
    }
  }
  for (int j = 0; j < 3; ++j) EXPECT_NEAR(mn[j] + mx[j], 0.0f, 1e-3f);
}

TEST(Assembler, ColorDeltaInjectedOneToOne) {
  const PointCloud cloud = tiny_scene();
  const std::int64_t n = cloud.size();
  Tensor delta = Tensor::zeros({n, 3});
  delta.data()[5 * 3 + 1] = 0.25f;
  ModelInput input{&cloud, delta, {}};
  const AssembledInput a = assemble_input(input, CoordConvention::kMinusOneToOne, false);
  ModelInput plain = ModelInput::plain(cloud);
  const AssembledInput b = assemble_input(plain, CoordConvention::kMinusOneToOne, false);
  EXPECT_NEAR(a.features.at(5 * 6 + 4) - b.features.at(5 * 6 + 4), 0.25f, 1e-5f);
  EXPECT_NEAR(a.features.at(5 * 6 + 3), b.features.at(5 * 6 + 3), 1e-6f);
}

TEST(Assembler, CoordDeltaScaledByNormalization) {
  const PointCloud cloud = tiny_scene();
  const std::int64_t n = cloud.size();
  Tensor delta = Tensor::zeros({n, 3});
  delta.data()[0] = 0.5f;  // +0.5m in x on point 0
  ModelInput input{&cloud, {}, delta};
  const AssembledInput a = assemble_input(input, CoordConvention::kZeroToThree, true);
  ModelInput plain = ModelInput::plain(cloud);
  const AssembledInput b = assemble_input(plain, CoordConvention::kZeroToThree, true);
  const auto box = pcss::pointcloud::compute_bbox(cloud.positions);
  const float expected_main = 0.5f * 3.0f / box.max_extent();
  EXPECT_NEAR(a.features.at(0) - b.features.at(0), expected_main, 1e-4f);
  const float expected_extra = 0.5f / box.extent()[0];
  EXPECT_NEAR(a.features.at(6) - b.features.at(6), expected_extra, 1e-4f);
  // Graph positions follow the perturbation.
  EXPECT_NEAR(a.graph_positions[0][0] - b.graph_positions[0][0], expected_main, 1e-4f);
}

TEST(Assembler, GradientFlowsToDeltas) {
  const PointCloud cloud = tiny_scene();
  const std::int64_t n = cloud.size();
  Tensor cdelta = Tensor::zeros({n, 3});
  cdelta.set_requires_grad(true);
  Tensor pdelta = Tensor::zeros({n, 3});
  pdelta.set_requires_grad(true);
  ModelInput input{&cloud, cdelta, pdelta};
  const AssembledInput a = assemble_input(input, CoordConvention::kZeroToThree, true);
  ops::sum(ops::square(a.features)).backward();
  ASSERT_FALSE(cdelta.grad().empty());
  ASSERT_FALSE(pdelta.grad().empty());
  float cnorm = 0.0f, pnorm = 0.0f;
  for (float g : cdelta.grad()) cnorm += g * g;
  for (float g : pdelta.grad()) pnorm += g * g;
  EXPECT_GT(cnorm, 0.0f);
  EXPECT_GT(pnorm, 0.0f);
}

// --- interpolation helper ---------------------------------------------------

TEST(Interpolation, NearestAndInverseDistance) {
  std::vector<Vec3> ref{{0, 0, 0}, {1, 0, 0}};
  std::vector<Vec3> q{{0.1f, 0, 0}, {0.9f, 0, 0}};
  std::vector<std::int64_t> idx;
  std::vector<float> w;
  interpolation_weights(ref, q, 1, idx, w);
  EXPECT_EQ(idx[0], 0);
  EXPECT_EQ(idx[1], 1);
  EXPECT_FLOAT_EQ(w[0], 1.0f);

  interpolation_weights(ref, q, 2, idx, w);
  // Weights normalized and biased toward the closer reference.
  EXPECT_NEAR(w[0] + w[1], 1.0f, 1e-5f);
  EXPECT_GT(w[0], w[1]);
}

TEST(Interpolation, DilateNeighbors) {
  // 2 points, wide table of 4 neighbors each.
  std::vector<std::int64_t> wide{0, 1, 2, 3, 4, 5, 6, 7};
  const auto d2 = dilate_neighbors(wide, 2, 2, 2);
  ASSERT_EQ(d2.size(), 4u);
  EXPECT_EQ(d2[0], 0);
  EXPECT_EQ(d2[1], 2);
  EXPECT_EQ(d2[2], 4);
  EXPECT_EQ(d2[3], 6);
  EXPECT_THROW(dilate_neighbors(wide, 2, 3, 2), std::invalid_argument);
}

// --- Model behaviours (parameterized over the three families) -------------

enum class Family { kPointNet2, kResGCN, kRandLA };

std::unique_ptr<SegmentationModel> make_model(Family f, int num_classes, Rng& rng) {
  switch (f) {
    case Family::kPointNet2: {
      PointNet2Config c;
      c.num_classes = num_classes;
      c.c1 = 12;
      c.c2 = 16;
      c.head = 16;
      return std::make_unique<PointNet2Seg>(c, rng);
    }
    case Family::kResGCN: {
      ResGCNConfig c;
      c.num_classes = num_classes;
      c.channels = 12;
      c.blocks = 2;
      return std::make_unique<ResGCNSeg>(c, rng);
    }
    case Family::kRandLA: {
      RandLANetConfig c;
      c.num_classes = num_classes;
      c.c1 = 8;
      c.c2 = 12;
      c.c3 = 16;
      return std::make_unique<RandLANetSeg>(c, rng);
    }
  }
  return nullptr;
}

class ModelFamilies : public ::testing::TestWithParam<Family> {};

TEST_P(ModelFamilies, ForwardShapeAndFiniteness) {
  Rng rng(3);
  auto model = make_model(GetParam(), 13, rng);
  const PointCloud cloud = tiny_scene(96);
  ModelInput input = ModelInput::plain(cloud);
  Tensor logits = model->forward(input, false);
  EXPECT_EQ(logits.dim(0), cloud.size());
  EXPECT_EQ(logits.dim(1), 13);
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(logits.at(i)));
  }
}

TEST_P(ModelFamilies, EvalForwardIsDeterministic) {
  Rng rng(4);
  auto model = make_model(GetParam(), 13, rng);
  const PointCloud cloud = tiny_scene(96);
  const auto p1 = model->predict(cloud);
  const auto p2 = model->predict(cloud);
  EXPECT_EQ(p1, p2);
}

TEST_P(ModelFamilies, GradientReachesColorDelta) {
  Rng rng(5);
  auto model = make_model(GetParam(), 13, rng);
  const PointCloud cloud = tiny_scene(96);
  Tensor delta = Tensor::zeros({cloud.size(), 3});
  delta.set_requires_grad(true);
  ModelInput input{&cloud, delta, {}};
  Tensor logits = model->forward(input, false);
  ops::sum(ops::square(logits)).backward();
  ASSERT_FALSE(delta.grad().empty());
  float norm = 0.0f;
  for (float g : delta.grad()) norm += g * g;
  EXPECT_GT(norm, 0.0f) << "color attack needs nonzero input gradients";
}

TEST_P(ModelFamilies, NamedParamsUniqueAndNonEmpty) {
  Rng rng(6);
  auto model = make_model(GetParam(), 13, rng);
  auto params = model->named_params();
  ASSERT_FALSE(params.empty());
  std::set<std::string> names;
  for (auto& p : params) {
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate param name " << p.name;
    EXPECT_GT(p.tensor.numel(), 0);
    EXPECT_TRUE(p.tensor.requires_grad());
  }
}

TEST_P(ModelFamilies, CheckpointRoundTripPreservesPredictions) {
  Rng rng(7);
  auto model = make_model(GetParam(), 13, rng);
  const PointCloud cloud = tiny_scene(96);
  const auto before = model->predict(cloud);

  const std::string path = (std::filesystem::temp_directory_path() /
                            ("pcss_ckpt_" + model->name() + ".bin"))
                               .string();
  pcss::train::save_checkpoint(*model, path);

  Rng rng2(999);  // different init
  auto restored = make_model(GetParam(), 13, rng2);
  pcss::train::load_checkpoint(*restored, path);
  EXPECT_EQ(restored->predict(cloud), before);
  std::filesystem::remove(path);
}

TEST_P(ModelFamilies, OverfitsTinyScene) {
  // A few Adam steps on one tiny cloud should clearly beat chance --
  // the basic "can this architecture learn" sanity check.
  Rng rng(8);
  auto model = make_model(GetParam(), 13, rng);
  const PointCloud cloud = tiny_scene(96);
  pcss::tensor::optim::Adam opt(model->parameters(), 0.02f);
  for (int it = 0; it < 60; ++it) {
    ModelInput input = ModelInput::plain(cloud);
    Tensor logits = model->forward(input, true);
    Tensor loss = ops::nll_loss_masked(ops::log_softmax_rows(logits), cloud.labels, {});
    opt.zero_grad();
    loss.backward();
    opt.step();
  }
  const auto pred = model->predict(cloud);
  std::int64_t correct = 0;
  for (size_t i = 0; i < pred.size(); ++i) correct += pred[i] == cloud.labels[i];
  const double acc = static_cast<double>(correct) / static_cast<double>(pred.size());
  EXPECT_GT(acc, 0.4) << "model failed to overfit a single tiny scene";
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ModelFamilies,
                         ::testing::Values(Family::kPointNet2, Family::kResGCN,
                                           Family::kRandLA),
                         [](const ::testing::TestParamInfo<Family>& param_info) {
                           switch (param_info.param) {
                             case Family::kPointNet2: return "PointNet2";
                             case Family::kResGCN: return "ResGCN";
                             case Family::kRandLA: return "RandLA";
                           }
                           return "Unknown";
                         });

TEST(ResGCN, CoordinatePerturbationChangesGraph) {
  // The dynamic-graph property the paper's Finding 1 rests on: moving
  // points changes the kNN structure, hence the logits, even with color
  // fixed.
  Rng rng(9);
  ResGCNConfig c;
  c.num_classes = 13;
  c.channels = 12;
  c.blocks = 2;
  ResGCNSeg model(c, rng);
  const PointCloud cloud = tiny_scene(96);
  ModelInput plain = ModelInput::plain(cloud);
  Tensor base = model.forward(plain, false);

  Rng noise(10);
  Tensor delta = Tensor::zeros({cloud.size(), 3});
  for (std::int64_t i = 0; i < delta.numel(); ++i) {
    delta.data()[i] = noise.uniform(-0.3f, 0.3f);
  }
  ModelInput moved{&cloud, {}, delta};
  Tensor shifted = model.forward(moved, false);
  double diff = 0.0;
  for (std::int64_t i = 0; i < base.numel(); ++i) {
    diff += std::abs(base.at(i) - shifted.at(i));
  }
  EXPECT_GT(diff, 1.0);
}

TEST(PointNet2, ConfigDefaultsMatchPaperConvention) {
  PointNet2Config c;
  EXPECT_EQ(c.num_classes, 13);
  EXPECT_EQ(c.k, 16);  // paper's ResGCN uses k=16; PN++ grouping matches scale
}

TEST(RandLA, PermutationInvariantOutputOrder) {
  // The regeneration shuffle must be undone: logits row i must describe
  // input point i. Probe by checking prediction stability when we ask
  // for the same cloud twice (fixed sample seed).
  Rng rng(11);
  RandLANetConfig c;
  c.num_classes = 13;
  c.c1 = 8;
  c.c2 = 12;
  c.c3 = 16;
  RandLANetSeg model(c, rng);
  const PointCloud cloud = tiny_scene(128);
  const auto p1 = model.predict(cloud);
  const auto p2 = model.predict(cloud);
  EXPECT_EQ(p1, p2);
  EXPECT_EQ(static_cast<std::int64_t>(p1.size()), cloud.size());
}

}  // namespace
