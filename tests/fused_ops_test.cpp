// Fused-vs-unfused bit-exactness: every fused op must produce exactly the
// same forward values AND the same input gradients as the op composition
// it replaces (the engine's determinism guarantees depend on it). Each op
// also gets an independent finite-difference gradcheck.
#include <gtest/gtest.h>

#include <vector>

#include "gradcheck.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/ops.h"

namespace ops = pcss::tensor::ops;
using pcss::tensor::Rng;
using pcss::tensor::Shape;
using pcss::tensor::Tensor;
using pcss::testing::expect_gradcheck;
using pcss::testing::random_values;

namespace {

Tensor leaf(const Shape& shape, const std::vector<float>& values) {
  Tensor t = Tensor::from_data(shape, values);
  t.set_requires_grad(true);
  return t;
}

void expect_same_tensor(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.shape(), b.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a.at(i), b.at(i)) << "forward mismatch at flat index " << i;
  }
}

void expect_same_grad(const Tensor& a, const Tensor& b) {
  ASSERT_EQ(a.grad().size(), b.grad().size());
  for (size_t i = 0; i < a.grad().size(); ++i) {
    ASSERT_EQ(a.grad()[i], b.grad()[i]) << "grad mismatch at flat index " << i;
  }
}

/// Backward both graphs from the same loss shape (sum of squares) and
/// compare a list of (fused, unfused) leaf pairs bitwise.
void backward_and_compare(const Tensor& fused, const Tensor& unfused,
                          std::vector<std::pair<Tensor, Tensor>> leaves) {
  expect_same_tensor(fused, unfused);
  ops::sum(ops::square(fused)).backward();
  ops::sum(ops::square(unfused)).backward();
  for (auto& [f, u] : leaves) expect_same_grad(f, u);
}

TEST(FusedOps, LinearMatchesMatmulAddRowvec) {
  Rng rng(101);
  const auto xv = random_values(12, rng), wv = random_values(8, rng),
             bv = random_values(2, rng);
  Tensor x1 = leaf({3, 4}, xv), w1 = leaf({4, 2}, wv), b1 = leaf({2}, bv);
  Tensor x2 = leaf({3, 4}, xv), w2 = leaf({4, 2}, wv), b2 = leaf({2}, bv);
  Tensor fused = ops::linear(x1, w1, b1);
  Tensor unfused = ops::add_rowvec(ops::matmul(x2, w2), b2);
  backward_and_compare(fused, unfused, {{x1, x2}, {w1, w2}, {b1, b2}});

  // Bias-less variant degrades to a plain matmul.
  Tensor x3 = leaf({3, 4}, xv), w3 = leaf({4, 2}, wv);
  Tensor x4 = leaf({3, 4}, xv), w4 = leaf({4, 2}, wv);
  backward_and_compare(ops::linear(x3, w3, Tensor()), ops::matmul(x4, w4),
                       {{x3, x4}, {w3, w4}});

  Tensor wg = Tensor::from_data({4, 2}, wv);
  Tensor bg = Tensor::from_data({2}, bv);
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::square(ops::linear(x, wg, bg))); },
                   {3, 4}, xv);
}

TEST(FusedOps, BnReluEvalMatchesComposition) {
  Rng rng(103);
  const std::int64_t n = 5, c = 3;
  const auto xv = random_values(n * c, rng);
  const std::vector<float> gv{1.2f, 0.8f, -0.5f}, betav{0.1f, -0.2f, 0.3f};
  std::vector<float> rm{0.1f, -0.3f, 0.2f}, rv{1.5f, 0.7f, 1.1f};
  Tensor x1 = leaf({n, c}, xv), g1 = leaf({c}, gv), b1 = leaf({c}, betav);
  Tensor x2 = leaf({n, c}, xv), g2 = leaf({c}, gv), b2 = leaf({c}, betav);
  Tensor fused = ops::bn_relu_eval(x1, g1, b1, rm, rv);
  std::vector<float> rm2 = rm, rv2 = rv;
  Tensor unfused = ops::relu(ops::batch_norm(x2, g2, b2, rm2, rv2, /*training=*/false));
  backward_and_compare(fused, unfused, {{x1, x2}, {g1, g2}, {b1, b2}});

  Tensor gg = Tensor::from_data({c}, gv);
  Tensor bg = Tensor::from_data({c}, betav);
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::sum(ops::square(ops::bn_relu_eval(x, gg, bg, rm, rv)));
      },
      {n, c}, random_values(n * c, rng, 0.3f, 1.5f));
}

TEST(FusedOps, EdgeFeaturesMatchesGatherRepeatSubConcat) {
  Rng rng(107);
  const std::int64_t n = 6, c = 4, k = 3;
  const std::vector<std::int64_t> idx{1, 2, 3, 0, 4, 5, 5, 1, 0,
                                      2, 3, 4, 0, 5, 2, 3, 1, 4};
  const auto hv = random_values(n * c, rng);
  Tensor h1 = leaf({n, c}, hv);
  Tensor h2 = leaf({n, c}, hv);
  Tensor fused = ops::edge_features(h1, idx, k);
  Tensor x_j = ops::gather_rows(h2, idx);
  Tensor x_i = ops::repeat_rows(h2, k);
  Tensor unfused = ops::concat_cols(x_i, ops::sub(x_j, x_i));
  backward_and_compare(fused, unfused, {{h1, h2}});

  expect_gradcheck(
      [&](const Tensor& h) { return ops::sum(ops::square(ops::edge_features(h, idx, k))); },
      {n, c}, random_values(n * c, rng));
}

TEST(FusedOps, GatherSubRowsMatchesGatherRepeatSub) {
  Rng rng(109);
  const std::int64_t n = 7, c = 3, k = 2;
  const std::vector<std::int64_t> idx_a{3, 1, 0, 6, 2, 2, 5, 4};
  const std::vector<std::int64_t> idx_b{2, 5, 0, 3};
  const auto xv = random_values(n * c, rng);
  Tensor x1 = leaf({n, c}, xv);
  Tensor x2 = leaf({n, c}, xv);
  Tensor fused = ops::gather_sub_rows(x1, idx_a, idx_b, k);
  Tensor unfused =
      ops::sub(ops::gather_rows(x2, idx_a), ops::repeat_rows(ops::gather_rows(x2, idx_b), k));
  backward_and_compare(fused, unfused, {{x1, x2}});

  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::sum(ops::square(ops::gather_sub_rows(x, idx_a, idx_b, k)));
      },
      {n, c}, random_values(n * c, rng));
}

TEST(FusedOps, ConcatCols4MatchesNestedConcat) {
  Rng rng(113);
  const std::int64_t n = 5;
  const auto av = random_values(n * 3, rng), bv = random_values(n * 3, rng),
             cv = random_values(n * 3, rng), dv = random_values(n * 1, rng);
  Tensor a1 = leaf({n, 3}, av), b1 = leaf({n, 3}, bv), c1 = leaf({n, 3}, cv),
         d1 = leaf({n, 1}, dv);
  Tensor a2 = leaf({n, 3}, av), b2 = leaf({n, 3}, bv), c2 = leaf({n, 3}, cv),
         d2 = leaf({n, 1}, dv);
  Tensor fused = ops::concat_cols4(a1, b1, c1, d1);
  Tensor unfused = ops::concat_cols(ops::concat_cols(a2, b2), ops::concat_cols(c2, d2));
  backward_and_compare(fused, unfused, {{a1, a2}, {b1, b2}, {c1, c2}, {d1, d2}});

  Tensor bg = Tensor::from_data({n, 3}, bv), cg = Tensor::from_data({n, 3}, cv),
         dg = Tensor::from_data({n, 1}, dv);
  expect_gradcheck(
      [&](const Tensor& a) {
        return ops::sum(ops::square(ops::concat_cols4(a, bg, cg, dg)));
      },
      {n, 3}, random_values(n * 3, rng));
}

TEST(FusedOps, MulRowsMatchesBroadcastMatmul) {
  Rng rng(127);
  const std::int64_t n = 6, c = 4;
  const auto xv = random_values(n * c, rng), colv = random_values(n, rng);
  Tensor x1 = leaf({n, c}, xv), col1 = leaf({n, 1}, colv);
  Tensor x2 = leaf({n, c}, xv), col2 = leaf({n, 1}, colv);
  Tensor fused = ops::mul_rows(x1, col1);
  const Tensor ones_row = Tensor::full({1, c}, 1.0f);
  Tensor unfused = ops::mul(x2, ops::matmul(col2, ones_row));
  backward_and_compare(fused, unfused, {{x1, x2}, {col1, col2}});

  Tensor colg = Tensor::from_data({n, 1}, colv);
  expect_gradcheck(
      [&](const Tensor& x) { return ops::sum(ops::square(ops::mul_rows(x, colg))); },
      {n, c}, random_values(n * c, rng));
}

TEST(FusedOps, AddInplaceReusesBufferAndMatchesAdd) {
  Rng rng(131);
  const auto av = random_values(12, rng), bv = random_values(12, rng);
  Tensor base1 = leaf({3, 4}, av);
  Tensor base2 = leaf({3, 4}, av);
  Tensor other = Tensor::from_data({3, 4}, bv);

  // Uniquely-owned op output: the buffer must be reused in place.
  Tensor fresh = ops::scale(base1, 1.5f);
  const float* buffer = fresh.data();
  Tensor fused = ops::add_inplace(std::move(fresh), other);
  EXPECT_EQ(fused.data(), buffer) << "uniquely-owned buffer must be stolen";
  Tensor unfused = ops::add(ops::scale(base2, 1.5f), other);
  backward_and_compare(fused, unfused, {{base1, base2}});

  // Shared handle: falls back to the allocating add and leaves the
  // original values untouched.
  Tensor a = leaf({2, 2}, {1, 2, 3, 4});
  Tensor kept = ops::scale(a, 2.0f);
  Tensor copy = kept;  // second handle -> not uniquely owned
  Tensor out = ops::add_inplace(std::move(copy), Tensor::full({2, 2}, 1.0f));
  EXPECT_NE(out.data(), kept.data());
  EXPECT_FLOAT_EQ(kept.at(0), 2.0f) << "fallback must not mutate the shared buffer";
  EXPECT_FLOAT_EQ(out.at(0), 3.0f);
}

TEST(FusedOps, ReluInplaceReusesBufferAndMatchesRelu) {
  Rng rng(137);
  const auto av = random_values(10, rng);
  Tensor base1 = leaf({2, 5}, av);
  Tensor base2 = leaf({2, 5}, av);
  Tensor fresh = ops::scale(base1, 2.0f);
  const float* buffer = fresh.data();
  Tensor fused = ops::relu_inplace(std::move(fresh));
  EXPECT_EQ(fused.data(), buffer);
  Tensor unfused = ops::relu(ops::scale(base2, 2.0f));
  backward_and_compare(fused, unfused, {{base1, base2}});

  // A node whose backward reads its own output (tanh) must not be stolen.
  Tensor c1 = leaf({2, 5}, av);
  Tensor t = ops::tanh_op(c1);
  const float* tbuf = t.data();
  Tensor safe = ops::relu_inplace(std::move(t));
  EXPECT_NE(safe.data(), tbuf) << "tanh output must survive for its backward";
  ops::sum(safe).backward();
  ASSERT_FALSE(c1.grad().empty());
}

}  // namespace
