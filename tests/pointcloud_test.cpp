#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include "pcss/pointcloud/io.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/point_cloud.h"
#include "pcss/pointcloud/sampling.h"

using namespace pcss::pointcloud;
using pcss::tensor::Rng;

namespace {

PointCloud make_grid_cloud(int side) {
  PointCloud cloud;
  for (int x = 0; x < side; ++x) {
    for (int y = 0; y < side; ++y) {
      cloud.push_back({static_cast<float>(x), static_cast<float>(y), 0.0f},
                      {0.5f, 0.5f, 0.5f}, (x + y) % 3);
    }
  }
  return cloud;
}

TEST(Vec3Math, BasicOperations) {
  Vec3 a{1, 2, 3}, b{4, 5, 6};
  EXPECT_FLOAT_EQ(dot(a, b), 32.0f);
  EXPECT_FLOAT_EQ(norm({3, 4, 0}), 5.0f);
  EXPECT_FLOAT_EQ(squared_distance(a, b), 27.0f);
  const Vec3 s = (a + b) * 0.5f;
  EXPECT_FLOAT_EQ(s[1], 3.5f);
}

TEST(BBoxTest, ComputeAndExtent) {
  std::vector<Vec3> pts{{0, 0, 0}, {2, 1, 5}, {-1, 3, 2}};
  const BBox box = compute_bbox(pts);
  EXPECT_FLOAT_EQ(box.min[0], -1.0f);
  EXPECT_FLOAT_EQ(box.max[2], 5.0f);
  EXPECT_FLOAT_EQ(box.max_extent(), 5.0f);
  EXPECT_FLOAT_EQ(box.center()[1], 1.5f);
}

TEST(PointCloudTest, SubsetPreservesFields) {
  PointCloud cloud = make_grid_cloud(3);
  PointCloud sub = cloud.subset({0, 4, 8});
  EXPECT_EQ(sub.size(), 3);
  EXPECT_FLOAT_EQ(sub.positions[1][0], 1.0f);
  EXPECT_EQ(sub.labels[2], (2 + 2) % 3);
  EXPECT_THROW(cloud.subset({100}), std::out_of_range);
}

TEST(PointCloudTest, ValidateAndClamp) {
  PointCloud cloud;
  cloud.push_back({0, 0, 0}, {0.5f, 0.5f, 0.5f}, 0);
  EXPECT_NO_THROW(cloud.validate());
  cloud.colors[0][1] = 1.5f;
  EXPECT_THROW(cloud.validate(), std::runtime_error);
  cloud.clamp_colors();
  EXPECT_NO_THROW(cloud.validate());
  EXPECT_FLOAT_EQ(cloud.colors[0][1], 1.0f);
  cloud.labels.pop_back();
  EXPECT_THROW(cloud.validate(), std::runtime_error);
}

TEST(PointCloudIo, XyzRgblRoundTrip) {
  PointCloud cloud = make_grid_cloud(4);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcss_io_test.txt").string();
  save_xyzrgbl(cloud, path);
  PointCloud loaded = load_xyzrgbl(path);
  ASSERT_EQ(loaded.size(), cloud.size());
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    EXPECT_FLOAT_EQ(loaded.positions[static_cast<size_t>(i)][0],
                    cloud.positions[static_cast<size_t>(i)][0]);
    EXPECT_EQ(loaded.labels[static_cast<size_t>(i)], cloud.labels[static_cast<size_t>(i)]);
  }
  std::remove(path.c_str());
}

TEST(PointCloudIo, PlyHeaderWritten) {
  PointCloud cloud = make_grid_cloud(2);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcss_io_test.ply").string();
  save_ply(cloud, path);
  std::ifstream in(path);
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, "ply");
  std::remove(path.c_str());
}

TEST(PointCloudIo, MissingFileThrows) {
  EXPECT_THROW(load_xyzrgbl("/nonexistent/nope.txt"), std::runtime_error);
}

// --- kNN -------------------------------------------------------------------

TEST(Knn, SelfNeighborsOnLine) {
  std::vector<Vec3> pts;
  for (int i = 0; i < 10; ++i) pts.push_back({static_cast<float>(i), 0, 0});
  const auto idx = knn_self(pts, 3, /*include_self=*/true);
  // Nearest neighbor of each point including self is itself.
  for (int i = 0; i < 10; ++i) EXPECT_EQ(idx[static_cast<size_t>(i * 3)], i);
  const auto idx_ns = knn_self(pts, 2, /*include_self=*/false);
  EXPECT_NE(idx_ns[0], 0);
  EXPECT_EQ(idx_ns[0], 1);  // nearest to 0 excluding itself
}

TEST(Knn, QueryMatchesManualCheck) {
  std::vector<Vec3> ref{{0, 0, 0}, {10, 0, 0}, {0, 10, 0}};
  std::vector<Vec3> q{{9, 1, 0}, {1, 9, 0}};
  const auto idx = knn_query(ref, q, 1);
  EXPECT_EQ(idx[0], 1);
  EXPECT_EQ(idx[1], 2);
}

TEST(Knn, GridMatchesBruteForce) {
  Rng rng(55);
  std::vector<Vec3> pts;
  for (int i = 0; i < 300; ++i) {
    pts.push_back({rng.uniform(-5, 5), rng.uniform(-3, 3), rng.uniform(0, 2)});
  }
  const int k = 5;
  const auto brute = knn_self(pts, k, true);
  const auto grid = knn_self_grid(pts, k, true);
  ASSERT_EQ(brute.size(), grid.size());
  // Same neighbor sets (order may tie-break differently).
  EXPECT_DOUBLE_EQ(neighborhood_change_fraction(brute, grid, k), 0.0);
}

TEST(Knn, PaddingWhenFewerCandidates) {
  std::vector<Vec3> pts{{0, 0, 0}, {1, 0, 0}};
  const auto idx = knn_self(pts, 4, true);
  ASSERT_EQ(idx.size(), 8u);
  // Last entries repeat rather than leaving garbage.
  EXPECT_EQ(idx[2], idx[3]);
}

TEST(Knn, ChangeFractionDetectsPerturbation) {
  Rng rng(77);
  std::vector<Vec3> pts;
  for (int i = 0; i < 200; ++i) {
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)});
  }
  const auto before = knn_self(pts, 4, true);
  EXPECT_DOUBLE_EQ(neighborhood_change_fraction(before, before, 4), 0.0);
  auto moved = pts;
  for (auto& p : moved) {
    p[0] += rng.uniform(-0.2f, 0.2f);
    p[1] += rng.uniform(-0.2f, 0.2f);
  }
  const auto after = knn_self(moved, 4, true);
  EXPECT_GT(neighborhood_change_fraction(before, after, 4), 0.5);
}

TEST(Knn, MeanDistanceFlagsOutlier) {
  std::vector<Vec3> pts;
  for (int i = 0; i < 50; ++i) {
    pts.push_back({static_cast<float>(i % 10) * 0.1f,
                   static_cast<float>(i / 10) * 0.1f, 0.0f});
  }
  pts.push_back({50.0f, 50.0f, 0.0f});  // planted outlier
  const auto d = mean_knn_distance(pts, 3);
  const size_t outlier = pts.size() - 1;
  for (size_t i = 0; i + 1 < pts.size(); ++i) EXPECT_LT(d[i], d[outlier]);
}

// --- Sampling ----------------------------------------------------------------

TEST(Sampling, FpsSpreadsPoints) {
  // Two distant clusters: FPS with m=2 must pick one from each.
  std::vector<Vec3> pts;
  for (int i = 0; i < 20; ++i) pts.push_back({static_cast<float>(i % 5) * 0.01f, 0, 0});
  for (int i = 0; i < 20; ++i) {
    pts.push_back({100.0f + static_cast<float>(i % 5) * 0.01f, 0, 0});
  }
  const auto sel = farthest_point_sample(pts, 2, 0);
  ASSERT_EQ(sel.size(), 2u);
  const bool one_far = (sel[0] < 20) != (sel[1] < 20);
  EXPECT_TRUE(one_far);
}

TEST(Sampling, FpsDistinctAndInRange) {
  Rng rng(123);
  std::vector<Vec3> pts;
  for (int i = 0; i < 64; ++i) {
    pts.push_back({rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)});
  }
  const auto sel = farthest_point_sample(pts, 16);
  std::set<std::int64_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 16u);
  for (auto i : sel) EXPECT_LT(i, 64);
  EXPECT_THROW(farthest_point_sample(pts, 0), std::invalid_argument);
  EXPECT_THROW(farthest_point_sample(pts, 100), std::invalid_argument);
}

TEST(Sampling, RandomSampleWithoutReplacement) {
  Rng rng(9);
  const auto sel = random_sample(100, 40, rng);
  std::set<std::int64_t> uniq(sel.begin(), sel.end());
  EXPECT_EQ(uniq.size(), 40u);
  for (auto i : sel) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 100);
  }
}

TEST(Sampling, RandomSampleDeterministicPerSeed) {
  Rng a(4), b(4), c(5);
  const auto sa = random_sample(50, 10, a);
  const auto sb = random_sample(50, 10, b);
  const auto sc = random_sample(50, 10, c);
  EXPECT_EQ(sa, sb);
  EXPECT_NE(sa, sc);
}

TEST(Sampling, DuplicateOrSelectCoversAllWhenGrowing) {
  Rng rng(31);
  const auto idx = duplicate_or_select(10, 25, rng);
  EXPECT_EQ(idx.size(), 25u);
  std::set<std::int64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 10u) << "every original point must appear at least once";
}

TEST(Sampling, DuplicateOrSelectShrinks) {
  Rng rng(32);
  const auto idx = duplicate_or_select(30, 12, rng);
  EXPECT_EQ(idx.size(), 12u);
  std::set<std::int64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 12u) << "selection must not duplicate";
}

TEST(Sampling, VoxelDownsampleReducesDensity) {
  std::vector<Vec3> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({static_cast<float>(i % 10) * 0.01f,
                   static_cast<float>((i / 10) % 10) * 0.01f, 0.0f});
  }
  const auto keep = voxel_downsample(pts, 0.05f);
  EXPECT_LT(keep.size(), 100u);
  EXPECT_GE(keep.size(), 4u);
}

}  // namespace
