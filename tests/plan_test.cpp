// Compiled step-plan contracts (pcss/tensor/plan.h + engine integration):
// replayed steps must be BYTE-identical to eager execution for every model
// family and both projections, capture invalidation must fall back to
// eager re-capture without changing bytes, thread count must stay
// irrelevant with plans on, and the engine's gating must keep
// plan-incompatible configurations eager. Counter deltas (plan.captures /
// plan.replays / plan.fallbacks) prove plans actually engaged — a test
// that silently fell back to eager would otherwise pass vacuously.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "pcss/core/attack_engine.h"
#include "pcss/data/indoor.h"
#include "pcss/models/pointnet2.h"
#include "pcss/models/randlanet.h"
#include "pcss/models/resgcn.h"
#include "pcss/obs/metrics.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/plan.h"

using namespace pcss::core;
using pcss::data::IndoorSceneGenerator;
using pcss::models::SegmentationModel;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;
namespace ops = pcss::tensor::ops;
namespace plan = pcss::tensor::plan;

namespace {

/// Process-global counter deltas around one scope.
struct PlanCounters {
  std::uint64_t captures0, replays0, fallbacks0;
  PlanCounters()
      : captures0(pcss::obs::metrics::counter("plan.captures").value()),
        replays0(pcss::obs::metrics::counter("plan.replays").value()),
        fallbacks0(pcss::obs::metrics::counter("plan.fallbacks").value()) {}
  std::uint64_t captures() const {
    return pcss::obs::metrics::counter("plan.captures").value() - captures0;
  }
  std::uint64_t replays() const {
    return pcss::obs::metrics::counter("plan.replays").value() - replays0;
  }
  std::uint64_t fallbacks() const {
    return pcss::obs::metrics::counter("plan.fallbacks").value() - fallbacks0;
  }
};

PointCloud tiny_scene(int points = 96, std::uint64_t seed = 42) {
  IndoorSceneGenerator gen({.num_points = points});
  Rng rng(seed);
  return gen.generate(rng);
}

enum class Family { kPointNet2, kResGCN, kRandLA };

const char* family_name(Family f) {
  switch (f) {
    case Family::kPointNet2: return "PointNet2";
    case Family::kResGCN: return "ResGCN";
    case Family::kRandLA: return "RandLA";
  }
  return "?";
}

std::unique_ptr<SegmentationModel> make_model(Family f, Rng& rng) {
  switch (f) {
    case Family::kPointNet2: {
      pcss::models::PointNet2Config c;
      c.num_classes = 13;
      c.c1 = 12;
      c.c2 = 16;
      c.head = 16;
      return std::make_unique<pcss::models::PointNet2Seg>(c, rng);
    }
    case Family::kResGCN: {
      pcss::models::ResGCNConfig c;
      c.num_classes = 13;
      c.channels = 12;
      c.blocks = 2;
      return std::make_unique<pcss::models::ResGCNSeg>(c, rng);
    }
    case Family::kRandLA: {
      pcss::models::RandLANetConfig c;
      c.num_classes = 13;
      c.c1 = 8;
      c.c2 = 12;
      c.c3 = 16;
      return std::make_unique<pcss::models::RandLANetSeg>(c, rng);
    }
  }
  return nullptr;
}

/// Exact float equality everywhere a result can differ: the replay must
/// execute the same arithmetic on the same bytes in the same order.
void expect_byte_identical(const AttackResult& a, const AttackResult& b) {
  ASSERT_EQ(a.perturbed.size(), b.perturbed.size());
  EXPECT_EQ(a.steps_used, b.steps_used);
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.l2_color, b.l2_color);
  EXPECT_EQ(a.l2_coord, b.l2_coord);
  EXPECT_EQ(a.l0_color, b.l0_color);
  EXPECT_EQ(a.l0_coord, b.l0_coord);
  for (std::int64_t i = 0; i < a.perturbed.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      EXPECT_EQ(a.perturbed.colors[static_cast<size_t>(i)][axis],
                b.perturbed.colors[static_cast<size_t>(i)][axis])
          << "color mismatch at point " << i;
      EXPECT_EQ(a.perturbed.positions[static_cast<size_t>(i)][axis],
                b.perturbed.positions[static_cast<size_t>(i)][axis])
          << "position mismatch at point " << i;
    }
  }
}

ExecPolicy plan_on() { return {1, true, {}}; }
ExecPolicy plan_off() { return {1, false, {}}; }

// --- Plan layer unit contracts -------------------------------------------

TEST(PlanBuilder, CapturedGraphReplaysByteIdentical) {
  // A leaf -> square -> sum graph: capture one forward+backward, mutate
  // the leaf values in place, replay, and compare against a from-scratch
  // eager pass over the same values.
  Tensor x = Tensor::from_data({4, 3}, std::vector<float>(12, 0.5f));
  x.set_requires_grad(true);

  plan::PlanBuilder builder;
  Tensor y = ops::sum(ops::square(ops::scale(x, 2.0f)));
  y.backward();
  plan::CompiledPlan compiled;
  ASSERT_TRUE(builder.finish(compiled));
  ASSERT_TRUE(compiled.valid());
  const plan::PlanStats stats = compiled.stats();
  EXPECT_EQ(stats.forward_ops, 3u);
  EXPECT_GT(stats.backward_ops, 0u);
  EXPECT_GT(stats.nodes, 0u);
  EXPECT_GT(stats.arena_floats, 0u);

  for (int trial = 0; trial < 3; ++trial) {
    for (std::int64_t i = 0; i < x.numel(); ++i) {
      x.data()[i] = 0.1f * static_cast<float>(trial + 1) + 0.01f * static_cast<float>(i);
    }
    compiled.replay_forward();
    compiled.replay_backward();

    Tensor x2 = Tensor::from_data({4, 3},
                                  std::vector<float>(x.data(), x.data() + x.numel()));
    x2.set_requires_grad(true);
    Tensor y2 = ops::sum(ops::square(ops::scale(x2, 2.0f)));
    y2.backward();
    EXPECT_EQ(y.item(), y2.item()) << "trial " << trial;
    ASSERT_EQ(x.grad().size(), x2.grad().size());
    for (size_t i = 0; i < x.grad().size(); ++i) {
      EXPECT_EQ(x.grad()[i], x2.grad()[i]) << "grad " << i << " trial " << trial;
    }
  }
}

TEST(PlanBuilder, TrainingModeGraphIsNotCapturable) {
  // Dropout in training mode consumes fresh RNG state per step, so the
  // recorded node has no ForwardFn and finish() must refuse.
  Rng rng(11);
  auto model = make_model(Family::kPointNet2, rng);
  const PointCloud cloud = tiny_scene();

  plan::PlanBuilder builder;
  Tensor logits = model->forward(pcss::models::ModelInput::plain(cloud),
                                 /*training=*/true);
  Tensor loss = ops::sum(logits);
  loss.backward();
  plan::CompiledPlan compiled;
  EXPECT_FALSE(builder.finish(compiled));
  EXPECT_FALSE(compiled.valid());
}

// --- Engine byte-identity per model family --------------------------------

class PlanModels : public ::testing::TestWithParam<Family> {};

TEST_P(PlanModels, BoundedReplayMatchesEager) {
  Rng rng(21);
  auto model = make_model(GetParam(), rng);
  const PointCloud cloud = tiny_scene();
  AttackConfig config;
  config.field = AttackField::kColor;
  config.norm = AttackNorm::kBounded;
  config.steps = 5;
  AttackEngine engine(*model, config);

  PlanCounters counters;
  const AttackResult planned = engine.run(cloud, plan_on());
  EXPECT_EQ(counters.captures(), 1u) << family_name(GetParam());
  EXPECT_GE(counters.replays(), 3u) << family_name(GetParam());
  const AttackResult eager = engine.run(cloud, plan_off());
  expect_byte_identical(planned, eager);
}

TEST_P(PlanModels, UnboundedReplayMatchesEager) {
  Rng rng(22);
  auto model = make_model(GetParam(), rng);
  const PointCloud cloud = tiny_scene();
  AttackConfig config;
  config.field = AttackField::kColor;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 5;
  AttackEngine engine(*model, config);

  PlanCounters counters;
  const AttackResult planned = engine.run(cloud, plan_on());
  EXPECT_EQ(counters.captures(), 1u) << family_name(GetParam());
  EXPECT_GE(counters.replays(), 3u) << family_name(GetParam());
  const AttackResult eager = engine.run(cloud, plan_off());
  expect_byte_identical(planned, eager);
}

INSTANTIATE_TEST_SUITE_P(Zoo, PlanModels,
                         ::testing::Values(Family::kPointNet2, Family::kResGCN,
                                           Family::kRandLA),
                         [](const auto& info) { return family_name(info.param); });

// --- Invalidation, gating, threading --------------------------------------

TEST(PlanEngine, InvalidationFallsBackAndRecaptures) {
  // l0_on_color restorations bump the projection's plan epoch, so the
  // engine must drop the plan, replay the step eagerly (bit-identically),
  // and capture a fresh plan — visible as fallbacks > 0 with > 1 capture.
  Rng rng(23);
  auto model = make_model(Family::kResGCN, rng);
  const PointCloud cloud = tiny_scene();
  AttackConfig config;
  config.field = AttackField::kColor;
  config.norm = AttackNorm::kBounded;
  config.steps = 8;
  config.l0_on_color = true;
  config.min_impact_fraction = 0.25f;  // restore aggressively: invalidate often
  AttackEngine engine(*model, config);

  PlanCounters counters;
  const AttackResult planned = engine.run(cloud, plan_on());
  EXPECT_GE(counters.fallbacks(), 1u);
  EXPECT_GE(counters.captures(), 2u);
  const AttackResult eager = engine.run(cloud, plan_off());
  expect_byte_identical(planned, eager);
}

TEST(PlanEngine, CoordinateFieldStaysEager) {
  // Coordinate deltas rebuild host-side neighbor graphs every step; the
  // gate must keep such runs eager rather than replaying a stale graph.
  Rng rng(24);
  auto model = make_model(Family::kResGCN, rng);
  const PointCloud cloud = tiny_scene();
  AttackConfig config;
  config.field = AttackField::kCoordinate;
  config.norm = AttackNorm::kBounded;
  config.steps = 3;
  AttackEngine engine(*model, config);

  PlanCounters counters;
  (void)engine.run(cloud, plan_on());
  EXPECT_EQ(counters.captures(), 0u);
  EXPECT_EQ(counters.replays(), 0u);
}

TEST(PlanEngine, ThreadCountIrrelevantWithPlans) {
  Rng rng(25);
  auto model = make_model(Family::kResGCN, rng);
  std::vector<PointCloud> clouds;
  Rng scenes(26);
  IndoorSceneGenerator gen({.num_points = 96});
  for (int i = 0; i < 3; ++i) clouds.push_back(gen.generate(scenes));
  AttackConfig config;
  config.field = AttackField::kColor;
  config.steps = 4;
  AttackEngine engine(*model, config);

  const auto one = engine.run_batch(clouds, {1, true, {}});
  const auto two = engine.run_batch(clouds, {2, true, {}});
  const auto eager = engine.run_batch(clouds, {2, false, {}});
  ASSERT_EQ(one.size(), clouds.size());
  for (size_t i = 0; i < clouds.size(); ++i) {
    expect_byte_identical(one[i], two[i]);
    expect_byte_identical(one[i], eager[i]);
  }
}

TEST(PlanEngine, SharedDeltaReplayMatchesEager) {
  Rng rng(27);
  auto model = make_model(Family::kResGCN, rng);
  std::vector<PointCloud> clouds;
  Rng scenes(28);
  IndoorSceneGenerator gen({.num_points = 96});
  for (int i = 0; i < 2; ++i) clouds.push_back(gen.generate(scenes));
  AttackConfig config;
  config.field = AttackField::kColor;
  config.steps = 4;
  AttackEngine engine(*model, config);

  PlanCounters counters;
  const SharedDeltaResult planned = engine.run_shared(clouds, {2, true, {}});
  EXPECT_EQ(counters.captures(), clouds.size());
  EXPECT_GE(counters.replays(), clouds.size());
  const SharedDeltaResult eager = engine.run_shared(clouds, {1, false, {}});
  EXPECT_EQ(planned.steps_used, eager.steps_used);
  ASSERT_EQ(planned.color_delta.size(), eager.color_delta.size());
  for (size_t i = 0; i < planned.color_delta.size(); ++i) {
    EXPECT_EQ(planned.color_delta[i], eager.color_delta[i]) << "delta " << i;
  }
  EXPECT_EQ(planned.accuracy_before, eager.accuracy_before);
  EXPECT_EQ(planned.accuracy_after, eager.accuracy_after);
}

}  // namespace
