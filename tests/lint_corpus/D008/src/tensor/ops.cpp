// D008 corpus scope witness: the rest of the tensor layer acquires
// from the pool by design (that is the D003 contract) — acquire here
// must NOT flag; the rule fences only the plan TUs.
#include "pcss/tensor/pool.h"

namespace pool = pcss::tensor::pool;

void ok_pooled_op_scratch() {
  auto buffer = pool::acquire_zeroed(512);
  pool::release(std::move(buffer));
}
