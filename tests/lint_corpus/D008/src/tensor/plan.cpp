// D008 corpus: pool traffic inside a compiled-plan TU. Capture pins
// every buffer a step touches, so a replay that acquires has broken the
// allocation-free contract — both spellings must flag.
#include "pcss/tensor/pool.h"

namespace pool = pcss::tensor::pool;

void bad_replay_scratch() {
  auto scratch = pool::acquire(256);
  auto accum = pool::acquire_zeroed(256);
  pool::release(std::move(accum));
  pool::release(std::move(scratch));
}
