// D008 corpus good twin: the legal idiom walks buffers that capture
// already pinned — mentioning pool::acquire in a comment is fine, and
// reusing pinned storage never names the pool at all.
#pragma once

#include <vector>

struct PinnedStep {
  float* data = nullptr;  // pinned at capture, never re-acquired
  int size = 0;
};

inline void good_replay(std::vector<PinnedStep>& steps) {
  for (PinnedStep& step : steps) {
    for (int i = 0; i < step.size; ++i) step.data[i] = 0.0f;
  }
}
