// D007 corpus scope witness: tools, tests and the serve module itself
// may use pcss::serve freely — the rule fences only
// src/{core,tensor,runner}, the layers beneath the transport.
#include "pcss/serve/server.h"

int ok_client_side(pcss::serve::Server& server) { return server.tcp_port(); }
