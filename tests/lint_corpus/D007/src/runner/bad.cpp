// D007 corpus: serving symbols inside an engine layer (this path
// mirrors src/runner/, so both the include and every serve:: use must
// flag — the dependency arrow is engine -> serve, never back).
#include <string>

#include "pcss/serve/server.h"

int bad_notify(const std::string& key) {
  pcss::serve::Server* server = nullptr;
  namespace serve = pcss::serve;
  return serve::notify_result(server, key);
}
