// D007 corpus good twin: the engine stays serving-agnostic by exposing
// callbacks (the RunOptions::on_progress idiom); the server subscribes
// from the outside and the runner never names it.
#include <functional>
#include <string>

void good_run(const std::function<void(const std::string&)>& on_progress) {
  on_progress("shard 1/4 done");
}
