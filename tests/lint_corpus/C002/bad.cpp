// C002 corpus: a mutex with no GUARDS: annotation is lockable state
// nobody can reason about.
#include <mutex>

class BadStore {
 public:
  void set(int v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }

 private:
  int value_ = 0;
  std::mutex mutex_;
};
