// C002 corpus: annotated declarations pass, lock_guard template
// arguments and reference parameters are not declarations, and the
// annotation may sit anywhere in the comment block above the member.
#include <mutex>

class GoodStore {
 public:
  void set(int v) {
    const std::lock_guard<std::mutex> lock(mutex_);
    value_ = v;
  }

 private:
  int value_ = 0;
  // Serializes writers from every request thread.
  // GUARDS: value_
  std::mutex mutex_;
  std::mutex inline_annotated_;  // GUARDS: nothing yet (reserved for stats)
};

void lock_external(std::mutex& shared);
