// D003 corpus: non-float allocations are out of the rule's reach, and
// prose about malloc (like this sentence) must never trigger it.
#include <string>
#include <vector>

int* good_alloc(int n) {
  std::vector<float> pooled_elsewhere(16);  // stand-in for pool::acquire
  int* indices = new int[static_cast<unsigned>(n)];
  const std::string prose = "rebuilt from malloc every step";
  indices[0] = static_cast<int>(prose.size() + pooled_elsewhere.size());
  return indices;
}
