// D003 corpus: pool.cpp is the one file allowed to own raw float
// storage — the rule must stay silent here.
#include <cstdlib>

float* pool_backing(unsigned n) {
  return static_cast<float*>(malloc(n * sizeof(float)));
}
