// D003 corpus: raw float storage outside the pool breaks the 32-byte
// alignment and steady-state reuse contracts.
#include <cstdlib>

float* bad_alloc(int n) {
  float* a = new float[static_cast<unsigned>(n)];
  void* b = malloc(sizeof(float) * 16);
  static_cast<float*>(b)[0] = a[0];
  free(b);
  return a;
}
