// D005 corpus: integer accumulation is exact in any order, so it stays
// legal outside the kernels.
#include <numeric>
#include <vector>

long long good_sum(const std::vector<int>& v) {
  return std::accumulate(v.begin(), v.end(), 0LL);
}
