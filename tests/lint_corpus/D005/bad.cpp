// D005 corpus: float reductions outside the fixed 8-lane kernels have
// unpinned (accumulate) or unspecified (reduce) summation order.
#include <numeric>
#include <vector>

float bad_sum(const std::vector<float>& v) {
  const float a = std::accumulate(v.begin(), v.end(), 0.0f);
  const float b = std::reduce(v.begin(), v.end(), 0.0f);
  return a + b;
}
