// D006 corpus: telemetry symbols inside a document-serialization /
// cache-key TU (this path mirrors src/runner/result_store.cpp, so the
// rule applies to both the include and every obs:: use).
#include <string>

#include "pcss/obs/metrics.h"

std::string bad_put(const std::string& key, const std::string& document) {
  pcss::obs::metrics::counter("store.puts").add(1);
  namespace obs = pcss::obs;
  obs::metrics::gauge("store.bytes").set(static_cast<double>(document.size()));
  return key + document;
}
