// D006 corpus good twin: serialization code that wants visibility keeps
// plain counters and lets callers export them — no pcss::obs anywhere
// near the bytes that become documents or cache keys.
#include <cstdint>
#include <string>

namespace {
std::uint64_t g_dumps = 0;  // exported by the caller, never serialized
}

std::string good_dump(const std::string& body) {
  ++g_dumps;
  return "{" + body + "}";
}
