// D006 corpus scope witness: the executor orchestrates runs and is the
// intended home of telemetry — obs:: here must NOT flag (the rule is
// limited to json/hash/result_store, the TUs that define stored bytes).
#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"

void ok_instrumented_shard() {
  pcss::obs::metrics::counter("runner.shards.computed").add(1);
  pcss::obs::trace::ScopedSpan span(pcss::obs::trace::intern("runner.shard"));
}
