// D004 corpus: explicit contraction in a tensor TU breaks scalar==AVX2
// and fused==unfused bit-identity.
#include <cmath>
#pragma STDC FP_CONTRACT ON

float bad_fma(float a, float b, float c) {
  return std::fma(a, b, c);
}
