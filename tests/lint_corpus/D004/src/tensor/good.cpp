// D004 corpus: one explicit multiply and one explicit add round twice,
// identically on every path — mentioning fma in a comment is fine.
float good_mul_add(float a, float b, float c) {
  const float product = a * b;
  return product + c;
}
