// Suppression corpus: same-line and previous-line allow() comments
// silence a rule; an allow() naming a different rule does not.
#include <numeric>
#include <vector>

float cases(const std::vector<float>& v) {
  float a = std::accumulate(v.begin(), v.end(), 0.0f);  // pcss-lint: allow(D005)
  // pcss-lint: allow(D005)
  float b = std::accumulate(v.begin(), v.end(), 0.0f);
  float c = std::accumulate(v.begin(), v.end(), 0.0f);  // pcss-lint: allow(D001)
  float d = std::accumulate(v.begin(), v.end(), 0.0f);  // pcss-lint: allow(D001, D005)
  return a + b + c + d;
}
