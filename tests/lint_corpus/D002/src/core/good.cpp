// D002 corpus: seeded, stream-addressed randomness is the sanctioned
// source on document paths.
#include <cstdint>
#include <random>

float good_noise(std::uint64_t seed, std::uint64_t cloud_index) {
  std::mt19937_64 engine(seed + cloud_index);  // per-cloud stream
  std::normal_distribution<float> dist(0.0f, 1.0f);
  return dist(engine);
}
