// D002 corpus: nondeterministic value sources inside a document path
// (this file lives under a src/core/ path, so the rule applies).
#include <chrono>
#include <cstdlib>
#include <random>

double bad_seed() {
  std::random_device rd;
  const int r = rand();
  const auto t = std::chrono::steady_clock::now();
  return static_cast<double>(rd()) + r + static_cast<double>(t.time_since_epoch().count());
}
