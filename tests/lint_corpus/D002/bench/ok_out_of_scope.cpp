// D002 corpus: outside src/core, src/tensor and src/runner the clock and
// rand() are legal (benches time things; nothing here feeds a document).
#include <chrono>
#include <cstdlib>

double wall_and_jitter() {
  const auto t0 = std::chrono::steady_clock::now();
  const int jitter = rand();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t1 - t0).count() + jitter;
}
