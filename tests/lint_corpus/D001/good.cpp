// D001 corpus: order-insensitive unordered-container use is legal, and
// neither comments nor string literals may trigger the rule:
// for (const auto& kv : counts) would be a violation in code.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

int good() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> seen;
  std::map<std::string, int> ordered;  // ordered iteration is fine
  counts["a"] = 1;
  if (seen.count(3) != 0) return counts.find("a")->second;
  for (const auto& kv : ordered) {
    if (kv.second > 0) return kv.second;
  }
  const std::string prose = "for (const auto& kv : counts)";
  return static_cast<int>(prose.size());
}
