// D001 corpus: iteration over unordered containers leaks
// implementation-defined order into whatever consumes the loop.
#include <string>
#include <unordered_map>
#include <unordered_set>

int bad() {
  std::unordered_map<std::string, int> counts;
  std::unordered_set<int> seen;
  int total = 0;
  for (const auto& kv : counts) total += kv.second;
  for (auto it = seen.begin(); it != seen.end(); ++it) ++total;
  return total;
}
