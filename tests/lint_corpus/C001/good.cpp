// C001 corpus: querying the hardware width is not constructing a
// thread, and the include alone is harmless.
#include <thread>

unsigned good_width() {
  return std::thread::hardware_concurrency();
}
