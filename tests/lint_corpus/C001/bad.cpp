// C001 corpus: ad-hoc threads bypass the WorkerPool's reuse, error
// propagation and shutdown discipline.
#include <thread>
#include <vector>

void bad_threads() {
  std::thread worker([] {});
  std::vector<std::thread> pool;
  worker.join();
  pool.clear();
}
