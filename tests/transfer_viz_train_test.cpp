#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "pcss/core/transfer.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/train/checkpoint.h"
#include "pcss/train/trainer.h"
#include "pcss/viz/render.h"

using pcss::data::IndoorSceneGenerator;
using pcss::models::ResGCNConfig;
using pcss::models::ResGCNSeg;
using pcss::tensor::Rng;

namespace {

// --- transfer utilities ------------------------------------------------------

TEST(Transfer, RemapRangeLinearAndInvertible) {
  using pcss::core::remap_range;
  // ResGCN [-1,1] -> PointNet++ [0,3], the paper's exact case.
  EXPECT_FLOAT_EQ(remap_range(-1.0f, -1, 1, 0, 3), 0.0f);
  EXPECT_FLOAT_EQ(remap_range(1.0f, -1, 1, 0, 3), 3.0f);
  EXPECT_FLOAT_EQ(remap_range(0.0f, -1, 1, 0, 3), 1.5f);
  const float x = 0.37f;
  const float there = remap_range(x, -1, 1, 0, 3);
  EXPECT_NEAR(remap_range(there, 0, 3, -1, 1), x, 1e-6f);
  EXPECT_THROW(remap_range(0.0f, 1, 1, 0, 3), std::invalid_argument);
}

TEST(Transfer, RemapCloudCoordinates) {
  pcss::data::PointCloud cloud;
  cloud.push_back({-1, 0, 1}, {0.5f, 0.5f, 0.5f}, 0);
  const auto remapped = pcss::core::remap_cloud_coordinates(cloud, -1, 1, 0, 3);
  EXPECT_FLOAT_EQ(remapped.positions[0][0], 0.0f);
  EXPECT_FLOAT_EQ(remapped.positions[0][1], 1.5f);
  EXPECT_FLOAT_EQ(remapped.positions[0][2], 3.0f);
  // Labels and colors untouched.
  EXPECT_EQ(remapped.labels[0], 0);
}

TEST(Transfer, EvaluateTransferRuns) {
  Rng init(3);
  ResGCNConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  config.channels = 8;
  config.blocks = 1;
  ResGCNSeg model(config, init);
  IndoorSceneGenerator gen({.num_points = 120});
  Rng rng(4);
  const auto cloud = gen.generate(rng);
  const auto m = pcss::core::evaluate_transfer(model, cloud, config.num_classes);
  EXPECT_GE(m.accuracy, 0.0);
  EXPECT_LE(m.accuracy, 1.0);
}

// --- viz ---------------------------------------------------------------------

TEST(Viz, ImagePixelRoundTrip) {
  pcss::viz::Image img(10, 6);
  img.set_pixel(3, 2, {1, 0, 0});
  EXPECT_FLOAT_EQ(img.pixel(3, 2)[0], 1.0f);
  // Out-of-bounds writes are ignored, not UB.
  EXPECT_NO_THROW(img.set_pixel(-1, 100, {0, 0, 0}));
  EXPECT_THROW(pcss::viz::Image(0, 5), std::invalid_argument);
}

TEST(Viz, SavePpmWritesHeaderAndPayload) {
  pcss::viz::Image img(4, 3);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcss_viz_test.ppm").string();
  img.save_ppm(path);
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  in.seekg(0, std::ios::end);
  EXPECT_GE(in.tellg(), static_cast<std::streamoff>(4 * 3 * 3));
  std::filesystem::remove(path);
}

TEST(Viz, HstackDimensions) {
  pcss::viz::Image a(4, 3), b(6, 5);
  const auto stacked = pcss::viz::Image::hstack({a, b}, 2);
  EXPECT_EQ(stacked.width(), 4 + 2 + 6);
  EXPECT_EQ(stacked.height(), 5);
}

TEST(Viz, RenderProducesNonEmptyImage) {
  IndoorSceneGenerator gen({.num_points = 200});
  Rng rng(5);
  const auto cloud = gen.generate(rng);
  const auto img = pcss::viz::render_cloud_colors(cloud, 64, 64);
  // Some pixels must differ from the background.
  int lit = 0;
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) {
      if (img.pixel(x, y)[0] > 0.2f) ++lit;
    }
  }
  EXPECT_GT(lit, 50);
  const auto seg = pcss::viz::render_cloud_labels(cloud, cloud.labels, 64, 64);
  EXPECT_EQ(seg.width(), 64);
  EXPECT_THROW(pcss::viz::render_cloud_labels(cloud, {1, 2}, 64, 64),
               std::invalid_argument);
}

TEST(Viz, LabelPaletteDistinctForPaperClasses) {
  for (int a = 0; a < 13; ++a) {
    for (int b = a + 1; b < 13; ++b) {
      const auto ca = pcss::viz::label_color(a);
      const auto cb = pcss::viz::label_color(b);
      EXPECT_TRUE(ca != cb) << "labels " << a << " and " << b << " share a color";
    }
  }
}

// --- trainer -------------------------------------------------------------------

TEST(Trainer, ImprovesOverInitialModel) {
  Rng init(6);
  ResGCNConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  config.channels = 12;
  config.blocks = 2;
  ResGCNSeg model(config, init);

  IndoorSceneGenerator gen({.num_points = 128});
  pcss::train::TrainConfig tc;
  tc.iterations = 80;
  tc.scene_pool = 4;
  tc.seed = 77;

  Rng eval_rng(88);
  std::vector<pcss::data::PointCloud> eval{gen.generate(eval_rng)};
  const double before = pcss::train::evaluate_accuracy(model, eval);
  const auto stats = pcss::train::train_model(
      model, [&gen](Rng& rng) { return gen.generate(rng); }, tc);
  const double after = pcss::train::evaluate_accuracy(model, eval);
  EXPECT_GT(after, before + 0.1) << "before=" << before << " after=" << after;
  EXPECT_GT(stats.final_train_accuracy, 0.4);
}

TEST(Checkpoint, MissingFileAndMismatchDetected) {
  EXPECT_FALSE(pcss::train::checkpoint_exists("/nonexistent/x.ckpt"));
  Rng init(7);
  ResGCNConfig small;
  small.num_classes = 13;
  small.channels = 8;
  small.blocks = 1;
  ResGCNSeg a(small, init);
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcss_ckpt_mismatch.bin").string();
  pcss::train::save_checkpoint(a, path);
  EXPECT_TRUE(pcss::train::checkpoint_exists(path));

  ResGCNConfig bigger = small;
  bigger.channels = 16;
  Rng init2(8);
  ResGCNSeg b(bigger, init2);
  EXPECT_THROW(pcss::train::load_checkpoint(b, path), std::runtime_error);
  std::filesystem::remove(path);
  EXPECT_THROW(pcss::train::load_checkpoint(a, path), std::runtime_error);
}

}  // namespace
