// Child daemon for the serve system tests. The gtest process runs
// attack threads, so serve_test.cpp fork+execve's this dedicated binary
// (the worker_fixture pattern) instead of forking itself. It is
// pcss_serve in miniature: the same Server core, but resolving the mini
// test specs against a TinyProvider so a full request round-trip takes
// seconds — and the cache keys match what an in-process run_spec over
// the same fixtures computes, which is what the byte-identity
// assertions compare against.
//
//   serve_fixture --socket PATH --store DIR [options]
//     --port N          also bind loopback TCP (0 = disabled, default)
//     --workers N       worker threads (default 2)
//     --queue-depth N   admission bound (default 16)
//     --max-inflight N  per-connection in-flight cap (default 4)
//     --max-line N      request line byte cap (default 65536)
//     --drain-grace MS  drain grace before checkpoint-cancel (default 0)
//     --job-delay-ms N  test hook: sleep N ms on the worker thread
//                       before each run_spec, holding jobs in flight so
//                       coalescing/drain windows are deterministic
//
// Exits 0 after a drain (SIGTERM/SIGINT or a shutdown request),
// printing "casualties=N" so the drain tests can assert how many
// requests were cut short.
#include <csignal>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "pcss/runner/executor.h"
#include "pcss/runner/result_store.h"
#include "pcss/serve/config.h"
#include "pcss/serve/server.h"
#include "tiny_provider.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

}  // namespace

int main(int argc, char** argv) {
  pcss::serve::ServeConfig config;
  config.socket_path.clear();
  std::string store_root;
  long long job_delay_ms = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "serve_fixture: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      config.socket_path = value();
    } else if (arg == "--port") {
      config.port = std::atoi(value().c_str());
    } else if (arg == "--store") {
      store_root = value();
    } else if (arg == "--workers") {
      config.workers = std::atoi(value().c_str());
    } else if (arg == "--queue-depth") {
      config.queue_depth = std::atoi(value().c_str());
    } else if (arg == "--max-inflight") {
      config.max_inflight_per_client = std::atoi(value().c_str());
    } else if (arg == "--max-line") {
      config.max_line_bytes = std::atoi(value().c_str());
    } else if (arg == "--drain-grace") {
      config.drain_grace_ms = std::atoll(value().c_str());
    } else if (arg == "--job-delay-ms") {
      job_delay_ms = std::atoll(value().c_str());
    } else {
      std::fprintf(stderr, "serve_fixture: bad argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  if (store_root.empty() || (config.socket_path.empty() && config.port == 0)) {
    std::fprintf(stderr,
                 "usage: serve_fixture --socket PATH --store DIR [--port N] "
                 "[--workers N] [--queue-depth N] [--max-inflight N] "
                 "[--max-line N] [--drain-grace MS] [--job-delay-ms N]\n");
    return 2;
  }

  struct sigaction sa {};
  sa.sa_handler = handle_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  using namespace pcss::runner;
  try {
    pcss_tests::TinyProvider provider;
    ResultStore store(store_root);

    // Static spec instances so the resolver can hand out stable
    // pointers for the daemon's whole lifetime.
    static const ExperimentSpec kMini = pcss_tests::mini_spec();
    static const ExperimentSpec kMiniShared = pcss_tests::mini_shared_spec();
    static const ExperimentSpec kMiniGrid = pcss_tests::mini_grid_spec();
    const auto resolver = [](const std::string& name) -> const ExperimentSpec* {
      if (name == "mini") return &kMini;
      if (name == "mini_shared") return &kMiniShared;
      if (name == "mini_grid") return &kMiniGrid;
      return nullptr;
    };

    pcss::serve::ServerHooks hooks;
    hooks.should_drain = [] { return g_signal != 0; };
    if (job_delay_ms > 0) {
      hooks.on_job_start = [job_delay_ms] {
        std::this_thread::sleep_for(std::chrono::milliseconds(job_delay_ms));
      };
    }

    pcss::serve::Server server(config, resolver, provider, store,
                               pcss_tests::tiny_options(), hooks);
    if (server.tcp_port() > 0) {
      std::fprintf(stderr, "serve_fixture: tcp port %d\n", server.tcp_port());
    }
    const int casualties = server.run();
    std::printf("casualties=%d\n", casualties);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_fixture: %s\n", e.what());
    return 1;
  }
}
