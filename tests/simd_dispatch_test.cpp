// SIMD dispatch contract tests: ISA resolution rules, and — the heart of
// the determinism story — byte-for-byte equality of every dispatched
// kernel between the scalar and AVX2 tables, across odd sizes covering
// every tail length 1..7 past the 8-lane width. The file ends with
// whole-model and whole-experiment checks: forward+backward and a full
// runner document must be bit-identical whichever table executed, and a
// result store warmed under one ISA must be a 100% cache hit under the
// other.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/result_store.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/pool.h"
#include "pcss/tensor/simd.h"
#include "pcss/tensor/tensor.h"

namespace {

namespace fs = std::filesystem;
namespace simd = pcss::tensor::simd;
namespace ops = pcss::tensor::ops;
using pcss::tensor::FloatBuffer;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;

/// Restores the dispatch table active at construction (tests that force
/// an ISA must not leak it into the rest of the suite).
struct IsaGuard {
  simd::Isa saved = simd::active_isa();
  ~IsaGuard() { simd::force(saved); }
};

/// Deterministic values with sign changes, exact zeros and a spread of
/// magnitudes (so relu masks, max lanes and accumulation chains all see
/// interesting inputs).
std::vector<float> test_values(size_t n, std::uint64_t seed) {
  std::vector<float> out(n);
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  for (size_t i = 0; i < n; ++i) {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const float u = static_cast<float>(s % 20011) / 20011.0f;  // [0, 1)
    float v = (u - 0.5f) * 4.0f;
    if (s % 11 == 0) v = 0.0f;                  // exact zeros
    if (s % 13 == 0) v *= 1e-4f;                // small magnitudes
    if (s % 17 == 0) v *= 64.0f;                // large magnitudes
    out[i] = v;
  }
  return out;
}

bool bytes_equal(const float* a, const float* b, size_t n) {
  return std::memcmp(a, b, n * sizeof(float)) == 0;
}

/// Sizes covering every 8-lane tail 1..7 plus multi-vector lengths.
const std::vector<std::int64_t>& tail_sizes() {
  static const std::vector<std::int64_t> sizes = {1,  2,  3,  4,  5,  6,   7,  8,
                                                  9,  11, 13, 15, 16, 17,  23, 31,
                                                  32, 33, 63, 64, 65, 100, 129};
  return sizes;
}

#define PCSS_REQUIRE_AVX2_TABLE()                                     \
  const simd::Kernels* avx2_ptr = simd::avx2_kernels();               \
  if (avx2_ptr == nullptr) GTEST_SKIP() << "AVX2 unavailable here";   \
  const simd::Kernels& A = *avx2_ptr;                                 \
  const simd::Kernels& S = simd::scalar_kernels()

// ---------------------------------------------------------------------------
// Resolution rules
// ---------------------------------------------------------------------------

TEST(SimdDispatch, ResolveIsaPicksBestWhenUnset) {
  EXPECT_EQ(simd::resolve_isa(nullptr, true), simd::Isa::kAvx2);
  EXPECT_EQ(simd::resolve_isa(nullptr, false), simd::Isa::kScalar);
  EXPECT_EQ(simd::resolve_isa("", true), simd::Isa::kAvx2);
}

TEST(SimdDispatch, ResolveIsaHonorsOverrides) {
  EXPECT_EQ(simd::resolve_isa("scalar", true), simd::Isa::kScalar);
  EXPECT_EQ(simd::resolve_isa("avx2", true), simd::Isa::kAvx2);
  // Requested-but-unsupported downgrades instead of failing, so one CI
  // matrix definition runs on mixed fleets.
  EXPECT_EQ(simd::resolve_isa("avx2", false), simd::Isa::kScalar);
}

TEST(SimdDispatch, ResolveIsaRejectsGarbage) {
  EXPECT_THROW(simd::resolve_isa("sse9", true), std::runtime_error);
  EXPECT_THROW(simd::resolve_isa("AVX2", true), std::runtime_error);
}

TEST(SimdDispatch, TablesReportTheirIsa) {
  EXPECT_STREQ(simd::scalar_kernels().name, "scalar");
  EXPECT_EQ(simd::scalar_kernels().isa, simd::Isa::kScalar);
  const simd::Kernels* avx2 = simd::avx2_kernels();
  if (!simd::cpu_supports_avx2()) {
    EXPECT_EQ(avx2, nullptr);
  } else if (avx2 != nullptr) {
    EXPECT_STREQ(avx2->name, "avx2");
    EXPECT_EQ(avx2->isa, simd::Isa::kAvx2);
  }
  EXPECT_NE(simd::active_name(), nullptr);
}

TEST(SimdDispatch, ForceSwitchesTheActiveTable) {
  IsaGuard guard;
  simd::force(simd::Isa::kScalar);
  EXPECT_STREQ(simd::active_name(), "scalar");
  if (simd::avx2_kernels() != nullptr) {
    simd::force(simd::Isa::kAvx2);
    EXPECT_STREQ(simd::active_name(), "avx2");
  } else {
    EXPECT_THROW(simd::force(simd::Isa::kAvx2), std::runtime_error);
  }
}

// ---------------------------------------------------------------------------
// Per-kernel bit-exactness, scalar vs AVX2
// ---------------------------------------------------------------------------

TEST(SimdBitExact, ElementwiseMaps) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t n64 : tail_sizes()) {
    const size_t n = static_cast<size_t>(n64);
    const auto a = test_values(n, 1), b = test_values(n, 2);
    std::vector<float> ys(n), ya(n);
    struct Unary {
      void (*s)(const float*, float*, size_t);
      void (*a)(const float*, float*, size_t);
      const char* name;
    };
    const Unary unary[] = {{S.ew_square, A.ew_square, "ew_square"},
                           {S.ew_relu, A.ew_relu, "ew_relu"}};
    for (const auto& k : unary) {
      k.s(a.data(), ys.data(), n);
      k.a(a.data(), ya.data(), n);
      EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << k.name << " n=" << n;
    }
    struct Binary {
      void (*s)(const float*, const float*, float*, size_t);
      void (*a)(const float*, const float*, float*, size_t);
      const char* name;
    };
    const Binary binary[] = {{S.ew_add, A.ew_add, "ew_add"},
                             {S.ew_sub, A.ew_sub, "ew_sub"},
                             {S.ew_mul, A.ew_mul, "ew_mul"}};
    for (const auto& k : binary) {
      k.s(a.data(), b.data(), ys.data(), n);
      k.a(a.data(), b.data(), ya.data(), n);
      EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << k.name << " n=" << n;
    }
    S.ew_scale(a.data(), 1.7f, ys.data(), n);
    A.ew_scale(a.data(), 1.7f, ya.data(), n);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << "ew_scale n=" << n;
    S.ew_add_scalar(a.data(), -0.3f, ys.data(), n);
    A.ew_add_scalar(a.data(), -0.3f, ya.data(), n);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << "ew_add_scalar n=" << n;
    S.ew_leaky_relu(a.data(), 0.2f, ys.data(), n);
    A.ew_leaky_relu(a.data(), 0.2f, ya.data(), n);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << "ew_leaky_relu n=" << n;
  }
}

TEST(SimdBitExact, ElementwiseAccumulators) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t n64 : tail_sizes()) {
    const size_t n = static_cast<size_t>(n64);
    const auto g = test_values(n, 3), x = test_values(n, 4), base = test_values(n, 5);
    auto run = [&](auto&& fs, auto&& fa, const char* name) {
      std::vector<float> ys(base), ya(base);
      fs(ys.data());
      fa(ya.data());
      EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), n)) << name << " n=" << n;
    };
    run([&](float* y) { S.acc_add(y, g.data(), n); },
        [&](float* y) { A.acc_add(y, g.data(), n); }, "acc_add");
    run([&](float* y) { S.acc_scalar(y, 0.77f, n); },
        [&](float* y) { A.acc_scalar(y, 0.77f, n); }, "acc_scalar");
    run([&](float* y) { S.acc_axpy(y, g.data(), -1.3f, n); },
        [&](float* y) { A.acc_axpy(y, g.data(), -1.3f, n); }, "acc_axpy");
    run([&](float* y) { S.acc_mul(y, g.data(), x.data(), n); },
        [&](float* y) { A.acc_mul(y, g.data(), x.data(), n); }, "acc_mul");
    run([&](float* y) { S.acc_relu_mask(y, g.data(), x.data(), n); },
        [&](float* y) { A.acc_relu_mask(y, g.data(), x.data(), n); }, "acc_relu_mask");
    run([&](float* y) { S.acc_leaky_mask(y, g.data(), x.data(), 0.1f, n); },
        [&](float* y) { A.acc_leaky_mask(y, g.data(), x.data(), 0.1f, n); },
        "acc_leaky_mask");
    run([&](float* y) { S.acc_square_bw(y, g.data(), x.data(), n); },
        [&](float* y) { A.acc_square_bw(y, g.data(), x.data(), n); }, "acc_square_bw");
    run([&](float* y) { S.acc_tanh_bw(y, g.data(), x.data(), n); },
        [&](float* y) { A.acc_tanh_bw(y, g.data(), x.data(), n); }, "acc_tanh_bw");
    run([&](float* y) { S.acc_sigmoid_bw(y, g.data(), x.data(), n); },
        [&](float* y) { A.acc_sigmoid_bw(y, g.data(), x.data(), n); }, "acc_sigmoid_bw");
  }
}

TEST(SimdBitExact, GemmNNAcrossOddShapes) {
  PCSS_REQUIRE_AVX2_TABLE();
  const std::int64_t ns[] = {1, 3, 4, 5, 9};
  const std::int64_t ks[] = {1, 2, 7, 16, 33};
  const std::int64_t ms[] = {1, 3, 7, 8, 13, 16, 24, 33};
  for (const auto n : ns) {
    for (const auto k : ks) {
      for (const auto m : ms) {
        const auto a = test_values(static_cast<size_t>(n * k), 6);
        const auto b = test_values(static_cast<size_t>(k * m), 7);
        const auto c0 = test_values(static_cast<size_t>(n * m), 8);
        std::vector<float> cs(c0), ca(c0);
        S.gemm_nn(a.data(), b.data(), cs.data(), n, k, m);
        A.gemm_nn(a.data(), b.data(), ca.data(), n, k, m);
        EXPECT_TRUE(bytes_equal(cs.data(), ca.data(), cs.size()))
            << "gemm_nn n=" << n << " k=" << k << " m=" << m;
        S.gemm_nn_init(a.data(), b.data(), cs.data(), n, k, m);
        A.gemm_nn_init(a.data(), b.data(), ca.data(), n, k, m);
        EXPECT_TRUE(bytes_equal(cs.data(), ca.data(), cs.size()))
            << "gemm_nn_init n=" << n << " k=" << k << " m=" << m;
        // A reinterpreted as [k, n] (same element count), C is [n, m].
        std::vector<float> ds(c0), da(c0);
        S.gemm_at_b(a.data(), b.data(), ds.data(), k, n, m);
        A.gemm_at_b(a.data(), b.data(), da.data(), k, n, m);
        EXPECT_TRUE(bytes_equal(ds.data(), da.data(), ds.size()))
            << "gemm_at_b k=" << k << " n=" << n << " m=" << m;
      }
    }
  }
}

TEST(SimdBitExact, RowStructuredKernels) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t c : tail_sizes()) {
    const std::int64_t n = 7;
    const auto x = test_values(static_cast<size_t>(n * c), 9);
    const auto v = test_values(static_cast<size_t>(c), 10);
    const auto col = test_values(static_cast<size_t>(n), 11);
    std::vector<float> ys(static_cast<size_t>(n * c)), ya(ys);
    S.add_rowvec(x.data(), v.data(), ys.data(), n, c);
    A.add_rowvec(x.data(), v.data(), ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size())) << "add_rowvec c=" << c;
    S.mul_rows(x.data(), col.data(), ys.data(), n, c);
    A.mul_rows(x.data(), col.data(), ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size())) << "mul_rows c=" << c;
    const auto acc0 = test_values(static_cast<size_t>(c), 12);
    std::vector<float> as(acc0), aa(acc0);
    S.acc_col_sum(as.data(), x.data(), n, c);
    A.acc_col_sum(aa.data(), x.data(), n, c);
    EXPECT_TRUE(bytes_equal(as.data(), aa.data(), as.size())) << "acc_col_sum c=" << c;
    as = acc0;
    aa = acc0;
    const auto g = test_values(static_cast<size_t>(n * c), 13);
    S.acc_col_sum_mul(as.data(), g.data(), x.data(), n, c);
    A.acc_col_sum_mul(aa.data(), g.data(), x.data(), n, c);
    EXPECT_TRUE(bytes_equal(as.data(), aa.data(), as.size()))
        << "acc_col_sum_mul c=" << c;
    std::vector<float> dxs(static_cast<size_t>(n * c), 0.25f), dxa(dxs);
    const auto s1 = test_values(static_cast<size_t>(c), 14);
    S.acc_scaled_rowvec(dxs.data(), g.data(), v.data(), s1.data(), n, c);
    A.acc_scaled_rowvec(dxa.data(), g.data(), v.data(), s1.data(), n, c);
    EXPECT_TRUE(bytes_equal(dxs.data(), dxa.data(), dxs.size()))
        << "acc_scaled_rowvec c=" << c;
  }
}

TEST(SimdBitExact, LaneReductions) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t n64 : tail_sizes()) {
    const size_t n = static_cast<size_t>(n64);
    const auto a = test_values(n, 15), b = test_values(n, 16);
    const double sum_s = S.reduce_sum_f64(a.data(), n);
    const double sum_a = A.reduce_sum_f64(a.data(), n);
    EXPECT_EQ(std::memcmp(&sum_s, &sum_a, sizeof(double)), 0) << "reduce_sum_f64 n=" << n;
    const float max_s = S.reduce_max(a.data(), n);
    const float max_a = A.reduce_max(a.data(), n);
    EXPECT_TRUE(bytes_equal(&max_s, &max_a, 1)) << "reduce_max n=" << n;
    const float dot_s = S.dot(a.data(), b.data(), n);
    const float dot_a = A.dot(a.data(), b.data(), n);
    EXPECT_TRUE(bytes_equal(&dot_s, &dot_a, 1)) << "dot n=" << n;
  }
  for (const std::int64_t c : tail_sizes()) {
    const std::int64_t n = 5;
    const auto x = test_values(static_cast<size_t>(n * c), 17);
    std::vector<float> ys(static_cast<size_t>(n)), ya(ys);
    S.row_sum(x.data(), ys.data(), n, c);
    A.row_sum(x.data(), ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size())) << "row_sum c=" << c;
  }
}

TEST(SimdBitExact, SoftmaxFamily) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t c : tail_sizes()) {
    const std::int64_t n = 6;
    const auto x = test_values(static_cast<size_t>(n * c), 18);
    const auto g = test_values(static_cast<size_t>(n * c), 19);
    std::vector<float> ys(static_cast<size_t>(n * c)), ya(ys);
    S.log_softmax_rows(x.data(), ys.data(), n, c);
    A.log_softmax_rows(x.data(), ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size()))
        << "log_softmax_rows c=" << c;
    std::vector<float> dxs(static_cast<size_t>(n * c), 0.5f), dxa(dxs);
    S.acc_log_softmax_bw(dxs.data(), g.data(), ys.data(), n, c);
    A.acc_log_softmax_bw(dxa.data(), g.data(), ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(dxs.data(), dxa.data(), dxs.size()))
        << "acc_log_softmax_bw c=" << c;
    // Segment softmax over 3 groups of 2 rows, c channels.
    const std::int64_t nseg = 3, k = 2;
    const auto sx = test_values(static_cast<size_t>(nseg * k * c), 20);
    const auto sg = test_values(static_cast<size_t>(nseg * k * c), 21);
    std::vector<float> sys(sx.size()), sya(sx.size());
    std::vector<float> scratch_s(static_cast<size_t>(2 * c)),
        scratch_a(static_cast<size_t>(2 * c));
    S.segment_softmax(sx.data(), sys.data(), scratch_s.data(), nseg, k, c);
    A.segment_softmax(sx.data(), sya.data(), scratch_a.data(), nseg, k, c);
    EXPECT_TRUE(bytes_equal(sys.data(), sya.data(), sys.size()))
        << "segment_softmax c=" << c;
    std::vector<float> sds(sx.size(), 0.1f), sda(sds);
    S.acc_segment_softmax_bw(sds.data(), sg.data(), sys.data(), scratch_s.data(),
                             nseg, k, c);
    A.acc_segment_softmax_bw(sda.data(), sg.data(), sya.data(), scratch_a.data(),
                             nseg, k, c);
    EXPECT_TRUE(bytes_equal(sds.data(), sda.data(), sds.size()))
        << "acc_segment_softmax_bw c=" << c;
  }
}

TEST(SimdBitExact, FusedModelBlocks) {
  PCSS_REQUIRE_AVX2_TABLE();
  for (const std::int64_t c : tail_sizes()) {
    const std::int64_t n = 6;
    const auto x = test_values(static_cast<size_t>(n * c), 22);
    const auto g = test_values(static_cast<size_t>(n * c), 23);
    auto gamma = test_values(static_cast<size_t>(c), 24);
    const auto beta = test_values(static_cast<size_t>(c), 25);
    const auto mean = test_values(static_cast<size_t>(c), 26);
    auto inv_std = test_values(static_cast<size_t>(c), 27);
    for (auto& v : inv_std) v = 0.5f + (v > 0 ? v : -v);  // positive scales
    std::vector<float> ys(static_cast<size_t>(n * c)), ya(ys);
    std::vector<float> hs(ys), ha(ys);
    S.bn_affine(x.data(), gamma.data(), beta.data(), mean.data(), inv_std.data(),
                ys.data(), hs.data(), n, c);
    A.bn_affine(x.data(), gamma.data(), beta.data(), mean.data(), inv_std.data(),
                ya.data(), ha.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size())) << "bn_affine y c=" << c;
    EXPECT_TRUE(bytes_equal(hs.data(), ha.data(), hs.size())) << "bn_affine xhat c=" << c;
    S.bn_relu_eval(x.data(), gamma.data(), beta.data(), mean.data(), inv_std.data(),
                   ys.data(), n, c);
    A.bn_relu_eval(x.data(), gamma.data(), beta.data(), mean.data(), inv_std.data(),
                   ya.data(), n, c);
    EXPECT_TRUE(bytes_equal(ys.data(), ya.data(), ys.size())) << "bn_relu_eval c=" << c;
    // Backward: all-grads and dx-only variants.
    std::vector<float> dxs(static_cast<size_t>(n * c), 0.1f), dxa(dxs);
    std::vector<float> dgs(static_cast<size_t>(c), 0.2f), dga(dgs);
    std::vector<float> dbs(static_cast<size_t>(c), 0.3f), dba(dbs);
    S.acc_bn_relu_eval_bw(dxs.data(), dgs.data(), dbs.data(), g.data(), ys.data(),
                          x.data(), gamma.data(), mean.data(), inv_std.data(), n, c);
    A.acc_bn_relu_eval_bw(dxa.data(), dga.data(), dba.data(), g.data(), ya.data(),
                          x.data(), gamma.data(), mean.data(), inv_std.data(), n, c);
    EXPECT_TRUE(bytes_equal(dxs.data(), dxa.data(), dxs.size())) << "bnre_bw dx c=" << c;
    EXPECT_TRUE(bytes_equal(dgs.data(), dga.data(), dgs.size())) << "bnre_bw dg c=" << c;
    EXPECT_TRUE(bytes_equal(dbs.data(), dba.data(), dbs.size())) << "bnre_bw db c=" << c;
    std::fill(dxs.begin(), dxs.end(), 0.1f);
    dxa = dxs;
    S.acc_bn_relu_eval_bw(dxs.data(), nullptr, nullptr, g.data(), ys.data(), x.data(),
                          gamma.data(), mean.data(), inv_std.data(), n, c);
    A.acc_bn_relu_eval_bw(dxa.data(), nullptr, nullptr, g.data(), ya.data(), x.data(),
                          gamma.data(), mean.data(), inv_std.data(), n, c);
    EXPECT_TRUE(bytes_equal(dxs.data(), dxa.data(), dxs.size()))
        << "bnre_bw dx-only c=" << c;
    // Edge features over every channel tail.
    const std::int64_t en = 5, ek = 3;
    const auto h = test_values(static_cast<size_t>(en * c), 28);
    const auto eg = test_values(static_cast<size_t>(en * ek * 2 * c), 29);
    std::vector<std::int64_t> idx(static_cast<size_t>(en * ek));
    for (size_t i = 0; i < idx.size(); ++i) idx[i] = static_cast<std::int64_t>((i * 2 + 1) % en);
    std::vector<float> es(static_cast<size_t>(en * ek * 2 * c)), ea(es);
    S.edge_features(h.data(), idx.data(), es.data(), en, ek, c);
    A.edge_features(h.data(), idx.data(), ea.data(), en, ek, c);
    EXPECT_TRUE(bytes_equal(es.data(), ea.data(), es.size())) << "edge_features c=" << c;
    std::vector<float> dhs(static_cast<size_t>(en * c), 0.4f), dha(dhs);
    S.acc_edge_features_bw(dhs.data(), eg.data(), idx.data(), en, ek, c);
    A.acc_edge_features_bw(dha.data(), eg.data(), idx.data(), en, ek, c);
    EXPECT_TRUE(bytes_equal(dhs.data(), dha.data(), dhs.size()))
        << "acc_edge_features_bw c=" << c;
  }
}

// ---------------------------------------------------------------------------
// Whole-model and whole-experiment determinism across the dispatch paths
// ---------------------------------------------------------------------------

TEST(SimdBitExact, MlpForwardBackwardAcrossIsas) {
  if (simd::avx2_kernels() == nullptr) GTEST_SKIP() << "AVX2 unavailable here";
  IsaGuard guard;
  auto run = [](simd::Isa isa) {
    simd::force(isa);
    Rng rng(97);
    pcss::tensor::nn::Mlp mlp({9, 33, 17, 13}, rng);
    Tensor x = Tensor::uniform({21, 9}, rng, -1.0f, 1.0f);
    x.set_requires_grad(true);
    Tensor logits = mlp.forward(x, /*training=*/false);
    Tensor probs = ops::log_softmax_rows(logits);
    Tensor loss = ops::mean(probs);
    loss.backward();
    std::vector<float> out(logits.data(), logits.data() + logits.numel());
    out.insert(out.end(), x.grad().begin(), x.grad().end());
    out.push_back(loss.item());
    return out;
  };
  const auto scalar_out = run(simd::Isa::kScalar);
  const auto avx2_out = run(simd::Isa::kAvx2);
  ASSERT_EQ(scalar_out.size(), avx2_out.size());
  EXPECT_TRUE(bytes_equal(scalar_out.data(), avx2_out.data(), scalar_out.size()))
      << "MLP forward+backward must be bit-identical across dispatch paths";
}

/// Tiny untrained model provider (mirrors the runner tests' fixture).
class TinyProvider : public pcss::runner::ModelProvider {
 public:
  TinyProvider() {
    pcss::models::ResGCNConfig config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.channels = 8;
    config.blocks = 1;
    Rng init(31);
    model_ = std::make_shared<pcss::models::ResGCNSeg>(config, init);
  }
  std::shared_ptr<pcss::runner::SegmentationModel> model(pcss::runner::ModelId) override {
    return model_;
  }
  std::string model_fingerprint(pcss::runner::ModelId) override {
    return "tiny-weights-v1";
  }
  std::vector<pcss::runner::PointCloud> scenes(pcss::runner::Dataset, int count,
                                               std::uint64_t seed) override {
    pcss::data::IndoorSceneGenerator gen({.num_points = 96});
    Rng rng(seed);
    std::vector<pcss::runner::PointCloud> out;
    for (int i = 0; i < count; ++i) out.push_back(gen.generate(rng));
    return out;
  }

 private:
  std::shared_ptr<pcss::runner::SegmentationModel> model_;
};

pcss::runner::ExperimentSpec tiny_spec() {
  pcss::runner::ExperimentSpec spec;
  spec.name = "simd-identity";
  spec.title = "dispatch-path identity fixture";
  spec.models = {pcss::runner::ModelId::kResGCNIndoor};
  spec.scene_seed = 777;
  pcss::runner::AttackVariant bounded;
  bounded.label = "bounded";
  bounded.config.norm = pcss::core::AttackNorm::kBounded;
  bounded.config.field = pcss::core::AttackField::kColor;
  spec.variants.push_back(bounded);
  return spec;
}

pcss::runner::RunOptions tiny_options() {
  pcss::runner::RunOptions options;
  options.scale.scenes = 2;
  options.scale.pgd_steps = 3;
  options.scale.cw_steps = 3;
  options.fast = true;
  options.num_threads = 1;
  options.shard_size = 2;
  return options;
}

TEST(SimdBitExact, RunnerDocumentBytesAndWarmCacheAcrossIsas) {
  if (simd::avx2_kernels() == nullptr) GTEST_SKIP() << "AVX2 unavailable here";
  IsaGuard guard;
  const std::string root =
      (fs::temp_directory_path() / "pcss_simd_doc_identity").string();
  fs::remove_all(root);

  TinyProvider provider;
  const auto spec = tiny_spec();
  const auto options = tiny_options();

  // Fresh stores: the document bytes must not depend on the dispatch path.
  simd::force(simd::Isa::kScalar);
  pcss::runner::ResultStore scalar_store(root + "/scalar");
  const auto scalar_run = pcss::runner::run_spec(spec, provider, scalar_store, options);
  simd::force(simd::Isa::kAvx2);
  pcss::runner::ResultStore avx2_store(root + "/avx2");
  const auto avx2_run = pcss::runner::run_spec(spec, provider, avx2_store, options);
  EXPECT_GT(scalar_run.attack_steps, 0);
  EXPECT_EQ(scalar_run.json, avx2_run.json)
      << "result documents must be byte-identical under scalar and avx2";

  // Warm store: a store written under scalar must be a 100% cache hit
  // when read back under avx2 (zero attack steps executed).
  const auto warm = pcss::runner::run_spec(spec, provider, scalar_store, options);
  EXPECT_EQ(warm.attack_steps, 0)
      << "avx2 rerun over a scalar-warmed store must be a pure cache hit";
  EXPECT_EQ(warm.json, scalar_run.json);

  fs::remove_all(root);
}

// ---------------------------------------------------------------------------
// Pool alignment contract
// ---------------------------------------------------------------------------

bool aligned32(const float* p) {
  return reinterpret_cast<std::uintptr_t>(p) % 32 == 0;
}

TEST(PoolAlignment, FreshAndRecycledBuffersAre32ByteAligned) {
  namespace pool = pcss::tensor::pool;
  for (size_t n : {1ul, 7ul, 63ul, 64ul, 65ul, 1000ul, 5000ul}) {
    FloatBuffer buf = pool::acquire(n);
    ASSERT_TRUE(aligned32(buf.data())) << "fresh buffer n=" << n;
    pool::release(std::move(buf));
    FloatBuffer recycled = pool::acquire(n);
    EXPECT_TRUE(aligned32(recycled.data())) << "recycled buffer n=" << n;
    pool::release(std::move(recycled));
  }
}

TEST(PoolAlignment, TensorStorageIs32ByteAligned) {
  Tensor z = Tensor::zeros({17, 3});
  EXPECT_TRUE(aligned32(z.data()));
  Tensor d = Tensor::from_data({5}, {1, 2, 3, 4, 5});
  EXPECT_TRUE(aligned32(d.data()));
  d.set_requires_grad(true);
  Tensor loss = ops::mean(ops::square(d));
  loss.backward();
  EXPECT_TRUE(aligned32(d.grad().data()));
}

}  // namespace
