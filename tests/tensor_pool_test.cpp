// Buffer-pool and autograd-lifetime contract tests: size-class reuse,
// zeroed grad buffers despite recycling, graph release inside backward(),
// steady-state (flat) pool counters across a long attack-style loop, and
// no cross-thread aliasing under concurrent graph construction.
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "pcss/tensor/ops.h"
#include "pcss/tensor/pool.h"
#include "pcss/tensor/tensor.h"

namespace ops = pcss::tensor::ops;
namespace pool = pcss::tensor::pool;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;
using pcss::tensor::TensorImpl;

namespace {

// The steady-state property is reached within a handful of steps; the
// long loop exists to catch slow drift. Under ThreadSanitizer (~20x
// slowdown; the tsan preset defines PCSS_TSAN) a shorter loop checks the
// same invariant without dominating the CI job's wall-clock.
#if defined(PCSS_TSAN) || defined(__SANITIZE_THREAD__)
constexpr int kSteadyStateSteps = 100;
#else
constexpr int kSteadyStateSteps = 1000;
#endif

TEST(BufferPool, SizeClassReuse) {
  pool::trim();
  pool::reset_stats();
  {
    pcss::tensor::FloatBuffer a = pool::acquire(100);
    EXPECT_EQ(a.size(), 100u);
    EXPECT_GE(a.capacity(), 128u) << "buffers are padded to their size class";
    pool::release(std::move(a));
  }
  EXPECT_EQ(pool::stats().releases, 1u);
  EXPECT_EQ(pool::stats().cached_buffers, 1u);
  // A different size in the same class (65..128 floats) reuses the buffer.
  pcss::tensor::FloatBuffer b = pool::acquire(80);
  EXPECT_EQ(b.size(), 80u);
  EXPECT_EQ(pool::stats().hits, 1u);
  EXPECT_EQ(pool::stats().cached_buffers, 0u);
  pool::release(std::move(b));
}

TEST(BufferPool, GradBuffersComeBackZeroed) {
  // Dirty the pool with nonzero grad buffers...
  {
    Tensor x = Tensor::full({64}, 2.0f);
    x.set_requires_grad(true);
    ops::sum(ops::mul(x, x)).backward();
    EXPECT_NE(x.grad()[0], 0.0f);
  }  // x dies; its (nonzero) grad buffer returns to the pool
  // ...then verify a recycled grad buffer reads zero before any backward.
  Tensor z = Tensor::full({64}, 1.0f);
  z.set_requires_grad(true);
  for (float g : z.grad_ref()) EXPECT_EQ(g, 0.0f);
}

TEST(BufferPool, BackwardReleasesGraphEarly) {
  Tensor x = Tensor::from_data({4}, {1, 2, 3, 4});
  x.set_requires_grad(true);
  Tensor y = ops::scale(x, 2.0f);
  Tensor loss = ops::sum(y);
  std::weak_ptr<TensorImpl> intermediate = y.impl();
  y = Tensor();  // only the graph keeps the scale node alive now
  EXPECT_FALSE(intermediate.expired());
  loss.backward();
  EXPECT_TRUE(intermediate.expired())
      << "backward() must drop graph edges so intermediates die immediately";
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  // Externally-held nodes keep their value but stop pinning the subgraph.
  Tensor held = ops::scale(x, 3.0f);
  Tensor root = ops::sum(held);
  root.backward();
  EXPECT_FLOAT_EQ(held.at(1), 6.0f);
  EXPECT_TRUE(held.impl()->parents.empty());
  EXPECT_EQ(held.impl()->backward_fn, nullptr);
}

/// One attack-style step: fresh delta leaf, forward-ish chain, scalar
/// loss, backward. Mirrors the allocation pattern of the engine loop.
void attack_like_step(const Tensor& weights) {
  Tensor delta = Tensor::zeros({96, 3});
  delta.set_requires_grad(true);
  Tensor h = ops::matmul(delta, weights);           // [96, 8]
  h = ops::relu(h);
  Tensor pooled = ops::segment_max(h, 4);           // [24, 8]
  Tensor loss = ops::sum(ops::square(pooled));
  loss.backward();
  ASSERT_FALSE(delta.grad().empty());
}

TEST(BufferPool, SteadyStateFlatAcrossStepLoop) {
  Rng rng(7);
  Tensor weights = Tensor::randn({3, 8}, rng);
  weights.set_requires_grad(true);
  for (int i = 0; i < 10; ++i) attack_like_step(weights);  // warm the pool
  weights.zero_grad();
  const pool::Stats warm = pool::stats();
  pool::reset_stats();
  for (int i = 0; i < kSteadyStateSteps; ++i) attack_like_step(weights);
  const pool::Stats after = pool::stats();
  EXPECT_EQ(after.cached_buffers, warm.cached_buffers)
      << "pool must not grow once the step loop reaches steady state";
  EXPECT_EQ(after.cached_floats, warm.cached_floats);
  EXPECT_EQ(after.hits, after.acquires)
      << "every steady-state acquisition must be served from the free lists";
  EXPECT_EQ(after.discards, 0u);
}

TEST(BufferPool, SlotStatsTrackPerThreadCountersMonotonically) {
  // This thread's slot is live and its monotonic counters advance by the
  // work done between two snapshots — the delta contract the executor's
  // .perf.json sidecar relies on.
  pool::release(pool::acquire(64));  // ensure this thread has a slot
  const std::vector<pool::SlotStats> before = pool::slot_stats();
  ASSERT_FALSE(before.empty());
  {
    pcss::tensor::FloatBuffer a = pool::acquire(64);
    pool::release(std::move(a));
    pcss::tensor::FloatBuffer b = pool::acquire(64);  // same class: a hit
    pool::release(std::move(b));
  }
  const std::vector<pool::SlotStats> after = pool::slot_stats();
  ASSERT_GE(after.size(), before.size()) << "slots never disappear, only go not-live";
  std::uint64_t d_acquires = 0, d_hits = 0, d_releases = 0;
  bool any_live = false;
  for (std::size_t i = 0; i < after.size(); ++i) {
    const pool::SlotStats base = i < before.size() ? before[i] : pool::SlotStats{};
    EXPECT_GE(after[i].acquires, base.acquires) << "slot counters are monotonic";
    EXPECT_GE(after[i].hits, base.hits);
    d_acquires += after[i].acquires - base.acquires;
    d_hits += after[i].hits - base.hits;
    d_releases += after[i].releases - base.releases;
    any_live = any_live || after[i].live;
  }
  EXPECT_TRUE(any_live) << "the calling thread's slot must be live";
  EXPECT_GE(d_acquires, 2u);
  EXPECT_GE(d_hits, 1u);
  EXPECT_GE(d_releases, 2u);
}

TEST(BufferPool, NoCrossThreadAliasing) {
  // Reference result computed single-threaded.
  auto chain = [](std::uint64_t seed) {
    Rng rng(seed);
    Tensor x = Tensor::uniform({32, 4}, rng, -1.0f, 1.0f);
    x.set_requires_grad(true);
    Tensor w = Tensor::uniform({4, 4}, rng, -1.0f, 1.0f);
    for (int i = 0; i < 50; ++i) {
      Tensor loss = ops::sum(ops::square(ops::relu(ops::matmul(x, w))));
      loss.backward();
    }
    return x.grad();
  };
  const pcss::tensor::FloatBuffer ref1 = chain(11);
  const pcss::tensor::FloatBuffer ref2 = chain(22);
  pcss::tensor::FloatBuffer got1, got2;
  // Each worker hammers its own thread-local pool; if buffers ever
  // aliased across threads the accumulated gradients would diverge.
  // Raw threads on purpose: the test needs bare OS threads, not the
  // WorkerPool whose pool-reuse behaviour is the thing under test.
  std::thread t1([&] { got1 = chain(11); });  // pcss-lint: allow(C001)
  std::thread t2([&] { got2 = chain(22); });  // pcss-lint: allow(C001)
  t1.join();
  t2.join();
  EXPECT_EQ(got1, ref1);
  EXPECT_EQ(got2, ref2);
}

}  // namespace
