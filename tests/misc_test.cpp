// Additional edge-case and contract tests across modules: optimizer
// parameter gradients, zoo cache-dir resolution, projection views,
// sampling boundaries, and experiment distance-metric switching.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "gradcheck.h"
#include "pcss/core/experiment.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"
#include "pcss/pointcloud/io.h"
#include "pcss/pointcloud/sampling.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/ops.h"
#include "pcss/train/model_zoo.h"
#include "pcss/viz/render.h"

namespace ops = pcss::tensor::ops;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;
using pcss::testing::expect_gradcheck;
using pcss::testing::random_values;

namespace {

// --- tensor extras -----------------------------------------------------------

TEST(TensorExtras, MatmulAssociativityNumeric) {
  Rng rng(1);
  Tensor a = Tensor::from_data({2, 3}, random_values(6, rng));
  Tensor b = Tensor::from_data({3, 4}, random_values(12, rng));
  Tensor c = Tensor::from_data({4, 2}, random_values(8, rng));
  Tensor left = ops::matmul(ops::matmul(a, b), c);
  Tensor right = ops::matmul(a, ops::matmul(b, c));
  for (std::int64_t i = 0; i < left.numel(); ++i) {
    EXPECT_NEAR(left.at(i), right.at(i), 1e-4f);
  }
}

TEST(TensorExtras, BatchNormAffineParamGradients) {
  Rng rng(2);
  Tensor x = Tensor::from_data({6, 3}, random_values(18, rng));
  Tensor beta = Tensor::from_data({3}, {0.1f, -0.2f, 0.3f});
  // Gradcheck w.r.t. gamma with x fixed.
  expect_gradcheck(
      [&](const Tensor& gamma) {
        std::vector<float> rm(3, 0.0f), rv(3, 1.0f);
        return ops::sum(ops::square(ops::batch_norm(x, gamma, beta, rm, rv, true)));
      },
      {3}, {1.1f, 0.9f, 1.3f}, 1e-3f, 5e-2f);
  Tensor gamma = Tensor::from_data({3}, {1.1f, 0.9f, 1.3f});
  expect_gradcheck(
      [&](const Tensor& b) {
        std::vector<float> rm(3, 0.0f), rv(3, 1.0f);
        return ops::sum(ops::square(ops::batch_norm(x, gamma, b, rm, rv, true)));
      },
      {3}, {0.1f, -0.2f, 0.3f});
}

TEST(TensorExtras, RunningStatsUpdatedOnlyInTraining) {
  Rng rng(3);
  Tensor gamma = Tensor::full({2}, 1.0f);
  Tensor beta = Tensor::zeros({2});
  std::vector<float> rm(2, 0.0f), rv(2, 1.0f);
  Tensor x = Tensor::from_data({4, 2}, random_values(8, rng, 2.0f, 3.0f));
  ops::batch_norm(x, gamma, beta, rm, rv, /*training=*/false);
  EXPECT_FLOAT_EQ(rm[0], 0.0f);
  ops::batch_norm(x, gamma, beta, rm, rv, /*training=*/true);
  EXPECT_GT(rm[0], 0.0f);
}

TEST(TensorExtras, HingeRejectsBadInputs) {
  Tensor logits = Tensor::zeros({2, 3});
  EXPECT_THROW(ops::hinge_margin_loss(logits, {0}, {}, false), std::runtime_error);
  EXPECT_THROW(ops::hinge_margin_loss(logits, {0, 9}, {}, false), std::runtime_error);
  Tensor one_class = Tensor::zeros({2, 1});
  EXPECT_THROW(ops::hinge_margin_loss(one_class, {0, 0}, {}, false), std::runtime_error);
}

TEST(TensorExtras, SegmentOpsRejectBadK) {
  Tensor x = Tensor::zeros({6, 2});
  EXPECT_THROW(ops::segment_max(x, 4), std::runtime_error);
  EXPECT_THROW(ops::segment_softmax(x, 0), std::runtime_error);
}

// --- model zoo ---------------------------------------------------------------

TEST(ModelZooTest, CacheDirEnvOverride) {
  ::setenv("PCSS_ARTIFACTS", "/tmp/pcss_zoo_test", 1);
  EXPECT_EQ(pcss::train::ModelZoo::default_cache_dir(), "/tmp/pcss_zoo_test");
  ::unsetenv("PCSS_ARTIFACTS");
  EXPECT_EQ(pcss::train::ModelZoo::default_cache_dir(), "artifacts");
}

TEST(ModelZooTest, EvalScenesDeterministicAndDistinct) {
  pcss::train::ModelZoo zoo("/tmp/pcss_zoo_test_cache");
  const auto a = zoo.indoor_eval_scenes(2, 31);
  const auto b = zoo.indoor_eval_scenes(2, 31);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].labels, b[0].labels);
  // Different scenes within one batch.
  EXPECT_NE(a[0].labels, a[1].labels);
  const auto c = zoo.indoor_eval_scenes(1, 32);
  EXPECT_NE(a[0].labels, c[0].labels);
}

TEST(ModelZooTest, ZooConfigsMatchDocumentedScales) {
  EXPECT_EQ(pcss::train::zoo_indoor_config().num_points, 512);
  EXPECT_EQ(pcss::train::zoo_outdoor_config().num_points, 1024);
}

// --- viz projections -----------------------------------------------------------

TEST(VizExtras, AllViewAxesRender) {
  pcss::data::IndoorSceneGenerator gen({.num_points = 128});
  Rng rng(4);
  const auto cloud = gen.generate(rng);
  for (auto view : {pcss::viz::ViewAxis::kTop, pcss::viz::ViewAxis::kFront,
                    pcss::viz::ViewAxis::kSide}) {
    const auto img = pcss::viz::render_cloud_colors(cloud, 32, 32, view);
    int lit = 0;
    for (int y = 0; y < 32; ++y) {
      for (int x = 0; x < 32; ++x) {
        if (img.pixel(x, y)[0] > 0.15f) ++lit;
      }
    }
    EXPECT_GT(lit, 10) << "view produced an empty image";
  }
}

TEST(VizExtras, HstackGapUsesSeparatorColor) {
  pcss::viz::Image a(3, 2, {1, 1, 1}), b(3, 2, {1, 1, 1});
  const auto s = pcss::viz::Image::hstack({a, b}, 2);
  // The gap column keeps the dark separator background.
  EXPECT_LT(s.pixel(3, 0)[0], 0.5f);
  EXPECT_FLOAT_EQ(s.pixel(0, 0)[0], 1.0f);
}

// --- sampling boundaries -------------------------------------------------------

TEST(SamplingExtras, RandomSampleBoundaries) {
  Rng rng(5);
  EXPECT_TRUE(pcss::pointcloud::random_sample(10, 0, rng).empty());
  const auto all = pcss::pointcloud::random_sample(10, 10, rng);
  std::set<std::int64_t> uniq(all.begin(), all.end());
  EXPECT_EQ(uniq.size(), 10u);
  EXPECT_THROW(pcss::pointcloud::random_sample(5, 6, rng), std::invalid_argument);
}

TEST(SamplingExtras, DuplicateOrSelectIdentitySize) {
  Rng rng(6);
  const auto idx = pcss::pointcloud::duplicate_or_select(8, 8, rng);
  std::set<std::int64_t> uniq(idx.begin(), idx.end());
  EXPECT_EQ(uniq.size(), 8u) << "n==m must be a permutation";
  EXPECT_THROW(pcss::pointcloud::duplicate_or_select(0, 5, rng), std::invalid_argument);
}

TEST(SamplingExtras, VoxelDownsampleRejectsBadVoxel) {
  std::vector<pcss::pointcloud::Vec3> pts{{0, 0, 0}};
  EXPECT_THROW(pcss::pointcloud::voxel_downsample(pts, 0.0f), std::invalid_argument);
  EXPECT_THROW(pcss::pointcloud::voxel_downsample(pts, -1.0f), std::invalid_argument);
}

// --- experiment distance switching ---------------------------------------------

TEST(ExperimentExtras, L0VersusL2DistanceSelection) {
  pcss::data::IndoorSceneGenerator gen({.num_points = 96});
  Rng init(7);
  pcss::models::ResGCNConfig mc;
  mc.num_classes = 13;
  mc.channels = 8;
  mc.blocks = 1;
  pcss::models::ResGCNSeg model(mc, init);
  Rng srng(8);
  const std::vector<pcss::core::PointCloud> clouds{gen.generate(srng)};

  pcss::core::AttackConfig config;
  config.steps = 2;
  const auto l2 = pcss::core::attack_cases(model, clouds, config, false);
  const auto l0 = pcss::core::attack_cases(model, clouds, config, true);
  ASSERT_EQ(l2.size(), 1u);
  ASSERT_EQ(l0.size(), 1u);
  // L0 counts points (integer-valued), L2 is a norm; with a random-init
  // bounded attack both are positive and differ.
  EXPECT_GT(l0[0].distance, 0.0);
  EXPECT_GT(l2[0].distance, 0.0);
  EXPECT_DOUBLE_EQ(l0[0].distance, std::floor(l0[0].distance));
}

// --- io color quantization -------------------------------------------------------

TEST(IoExtras, PlyQuantizesAndClampsColors) {
  pcss::core::PointCloud cloud;
  cloud.push_back({0, 0, 0}, {1.0f, 0.0f, 0.49803922f}, 0);  // 127/255
  const std::string path =
      (std::filesystem::temp_directory_path() / "pcss_ply_quant.ply").string();
  pcss::pointcloud::save_ply(cloud, path);
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line) && line != "end_header") {
  }
  std::getline(in, line);
  EXPECT_NE(line.find("255 0 127"), std::string::npos) << "got: " << line;
  std::filesystem::remove(path);
}

}  // namespace
