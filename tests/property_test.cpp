// Parameterized property tests: invariants that must hold across sweeps
// of shapes, seeds, ks, conventions, and all 8 attack configurations.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <set>
#include <tuple>

#include "gradcheck.h"
#include "pcss/core/attack.h"
#include "pcss/core/defense.h"
#include "pcss/core/metrics.h"
#include "pcss/data/indoor.h"
#include "pcss/data/outdoor.h"
#include "pcss/models/assembler.h"
#include "pcss/models/resgcn.h"
#include "pcss/pointcloud/io.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/sampling.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

namespace ops = pcss::tensor::ops;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;
using namespace pcss::pointcloud;

namespace {

// ---------------------------------------------------------------------------
// Tensor-op algebraic properties across shapes.
// ---------------------------------------------------------------------------

class OpShapes : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  Tensor random(std::uint64_t seed, float lo = -2.0f, float hi = 2.0f) const {
    const auto [n, c] = GetParam();
    Rng rng(seed);
    return Tensor::uniform({n, c}, rng, lo, hi);
  }
};

TEST_P(OpShapes, AddCommutes) {
  Tensor a = random(1), b = random(2);
  Tensor ab = ops::add(a, b), ba = ops::add(b, a);
  for (std::int64_t i = 0; i < ab.numel(); ++i) EXPECT_FLOAT_EQ(ab.at(i), ba.at(i));
}

TEST_P(OpShapes, SubIsAddNeg) {
  Tensor a = random(3), b = random(4);
  Tensor s = ops::sub(a, b), an = ops::add(a, ops::neg(b));
  for (std::int64_t i = 0; i < s.numel(); ++i) EXPECT_NEAR(s.at(i), an.at(i), 1e-6f);
}

TEST_P(OpShapes, ReluIdempotent) {
  Tensor a = random(5);
  Tensor r1 = ops::relu(a), r2 = ops::relu(r1);
  for (std::int64_t i = 0; i < r1.numel(); ++i) EXPECT_FLOAT_EQ(r1.at(i), r2.at(i));
}

TEST_P(OpShapes, SquareMatchesMulSelf) {
  Tensor a = random(6);
  Tensor s = ops::square(a), m = ops::mul(a, a);
  for (std::int64_t i = 0; i < s.numel(); ++i) EXPECT_FLOAT_EQ(s.at(i), m.at(i));
}

TEST_P(OpShapes, SliceOfConcatRecoversInputs) {
  Tensor a = random(7), b = random(8);
  const auto [n, c] = GetParam();
  Tensor cat = ops::concat_cols(a, b);
  Tensor sa = ops::slice_cols(cat, 0, c), sb = ops::slice_cols(cat, c, 2 * c);
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    EXPECT_FLOAT_EQ(sa.at(i), a.at(i));
    EXPECT_FLOAT_EQ(sb.at(i), b.at(i));
  }
}

TEST_P(OpShapes, RowSumMatchesMatmulOnes) {
  const auto [n, c] = GetParam();
  Tensor a = random(9);
  Tensor ones = Tensor::full({c, 1}, 1.0f);
  Tensor rs = ops::row_sum(a), mm = ops::matmul(a, ones);
  for (std::int64_t i = 0; i < n; ++i) EXPECT_NEAR(rs.at(i), mm.at(i), 1e-4f);
}

TEST_P(OpShapes, LogSoftmaxShiftInvariant) {
  Tensor a = random(10);
  Tensor shifted = ops::add_scalar(a, 7.5f);
  Tensor la = ops::log_softmax_rows(a), ls = ops::log_softmax_rows(shifted);
  for (std::int64_t i = 0; i < la.numel(); ++i) EXPECT_NEAR(la.at(i), ls.at(i), 1e-4f);
}

TEST_P(OpShapes, MeanIsSumOverN) {
  Tensor a = random(11);
  EXPECT_NEAR(ops::mean(a).item(), ops::sum(a).item() / static_cast<float>(a.numel()),
              1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpShapes,
                         ::testing::Values(std::pair{1, 2}, std::pair{3, 5},
                                           std::pair{16, 4}, std::pair{7, 13},
                                           std::pair{64, 3}));

// ---------------------------------------------------------------------------
// Segment-op properties across k.
// ---------------------------------------------------------------------------

class SegmentK : public ::testing::TestWithParam<int> {};

TEST_P(SegmentK, MaxDominatesMean) {
  const int k = GetParam();
  Rng rng(20 + static_cast<std::uint64_t>(k));
  Tensor x = Tensor::uniform({6 * k, 4}, rng, -3, 3);
  Tensor mx = ops::segment_max(x, k), mn = ops::segment_mean(x, k);
  for (std::int64_t i = 0; i < mx.numel(); ++i) EXPECT_GE(mx.at(i), mn.at(i) - 1e-5f);
}

TEST_P(SegmentK, SoftmaxWeightsSumToOne) {
  const int k = GetParam();
  Rng rng(40 + static_cast<std::uint64_t>(k));
  Tensor x = Tensor::uniform({4 * k, 3}, rng, -5, 5);
  Tensor y = ops::segment_softmax(x, k);
  for (int seg = 0; seg < 4; ++seg) {
    for (int ch = 0; ch < 3; ++ch) {
      float s = 0.0f;
      for (int r = 0; r < k; ++r) s += y.at((seg * k + r) * 3 + ch);
      EXPECT_NEAR(s, 1.0f, 1e-4f);
    }
  }
}

TEST_P(SegmentK, SumEqualsKTimesMean) {
  const int k = GetParam();
  Rng rng(60 + static_cast<std::uint64_t>(k));
  Tensor x = Tensor::uniform({3 * k, 2}, rng, -1, 1);
  Tensor sm = ops::segment_sum(x, k), mn = ops::segment_mean(x, k);
  for (std::int64_t i = 0; i < sm.numel(); ++i) {
    EXPECT_NEAR(sm.at(i), mn.at(i) * static_cast<float>(k), 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(Ks, SegmentK, ::testing::Values(1, 2, 5, 12));

// ---------------------------------------------------------------------------
// Hinge-loss semantics (the paper's Eq. 10/11) on random logits.
// ---------------------------------------------------------------------------

class HingeSeeds : public ::testing::TestWithParam<int> {};

TEST_P(HingeSeeds, UntargetedZeroIffAllMisclassified) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 12, c = 5;
  Tensor logits = Tensor::uniform({n, c}, rng, -1, 1);
  std::vector<int> labels(static_cast<size_t>(n));
  for (auto& l : labels) l = static_cast<int>(rng.randint(0, c - 1));
  const float loss = ops::hinge_margin_loss(logits, labels, {}, false).item();
  const auto pred = ops::argmax_rows(logits);
  bool any_correct = false;
  for (std::int64_t i = 0; i < n; ++i) any_correct |= pred[static_cast<size_t>(i)] == labels[static_cast<size_t>(i)];
  if (any_correct) {
    EXPECT_GT(loss, 0.0f);
  } else {
    EXPECT_FLOAT_EQ(loss, 0.0f);
  }
}

TEST_P(HingeSeeds, TargetedZeroIffAllHitTarget) {
  Rng rng(100 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 12, c = 5;
  Tensor logits = Tensor::uniform({n, c}, rng, -1, 1);
  std::vector<int> targets(static_cast<size_t>(n), 2);
  const float loss = ops::hinge_margin_loss(logits, targets, {}, true).item();
  const auto pred = ops::argmax_rows(logits);
  bool all_hit = true;
  for (int p : pred) all_hit &= p == 2;
  if (all_hit) {
    EXPECT_FLOAT_EQ(loss, 0.0f);
  } else {
    EXPECT_GT(loss, 0.0f);
  }
}

TEST_P(HingeSeeds, MaskedLossNeverExceedsUnmasked) {
  Rng rng(200 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t n = 10, c = 4;
  Tensor logits = Tensor::uniform({n, c}, rng, -1, 1);
  std::vector<int> labels(static_cast<size_t>(n));
  std::vector<std::uint8_t> mask(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    labels[static_cast<size_t>(i)] = static_cast<int>(rng.randint(0, c - 1));
    mask[static_cast<size_t>(i)] = rng.uniform() < 0.5f ? 1 : 0;
  }
  if (std::count(mask.begin(), mask.end(), std::uint8_t{1}) == 0) mask[0] = 1;
  const float full = ops::hinge_margin_loss(logits, labels, {}, false).item();
  const float masked = ops::hinge_margin_loss(logits, labels, mask, false).item();
  EXPECT_LE(masked, full + 1e-5f);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HingeSeeds, ::testing::Range(1, 6));

// ---------------------------------------------------------------------------
// Smoothness penalty properties.
// ---------------------------------------------------------------------------

TEST(SmoothnessProps, ZeroForCoincidentPoints) {
  Tensor x = Tensor::full({4, 3}, 0.7f);
  const std::vector<std::int64_t> nbr{1, 2, 3, 0, 0, 1, 2, 3};
  EXPECT_NEAR(ops::smoothness_penalty(x, nbr, 2).item(), 0.0f, 1e-4f);
}

TEST(SmoothnessProps, ScalesLinearlyWithUniformScale) {
  Rng rng(7);
  Tensor x = Tensor::uniform({6, 3}, rng, 0, 1);
  const auto pts = [&] {
    std::vector<Vec3> v(6);
    for (int i = 0; i < 6; ++i) v[static_cast<size_t>(i)] = {x.at(i * 3), x.at(i * 3 + 1), x.at(i * 3 + 2)};
    return v;
  }();
  const auto nbr = knn_self(pts, 2, false);
  const float s1 = ops::smoothness_penalty(x, nbr, 2).item();
  const float s3 = ops::smoothness_penalty(ops::scale(x, 3.0f), nbr, 2).item();
  EXPECT_NEAR(s3, 3.0f * s1, 1e-2f * s3);
}

// ---------------------------------------------------------------------------
// kNN / sampling sweeps.
// ---------------------------------------------------------------------------

class KnnSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(KnnSweep, GridAgreesWithBruteForce) {
  const auto [n, k] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 13 + k));
  std::vector<Vec3> pts(static_cast<size_t>(n));
  for (auto& p : pts) p = {rng.uniform(-4, 4), rng.uniform(-4, 4), rng.uniform(0, 3)};
  const auto brute = knn_self(pts, k, true);
  const auto grid = knn_self_grid(pts, k, true);
  EXPECT_DOUBLE_EQ(neighborhood_change_fraction(brute, grid, k), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, KnnSweep,
                         ::testing::Combine(::testing::Values(50, 200, 600),
                                            ::testing::Values(1, 4, 9)));

class FpsSweep : public ::testing::TestWithParam<int> {};

TEST_P(FpsSweep, FpsSpreadsBetterThanRandom) {
  // FPS maximizes the minimum pairwise distance; a random sample of the
  // same size should have min-distance no larger (with margin for luck).
  const int m = GetParam();
  Rng rng(static_cast<std::uint64_t>(m));
  std::vector<Vec3> pts(256);
  for (auto& p : pts) p = {rng.uniform(0, 1), rng.uniform(0, 1), rng.uniform(0, 1)};
  auto min_dist = [&](const std::vector<std::int64_t>& sel) {
    float best = 1e9f;
    for (size_t i = 0; i < sel.size(); ++i) {
      for (size_t j = i + 1; j < sel.size(); ++j) {
        best = std::min(best, squared_distance(pts[static_cast<size_t>(sel[i])],
                                               pts[static_cast<size_t>(sel[j])]));
      }
    }
    return best;
  };
  const float fps = min_dist(farthest_point_sample(pts, m));
  Rng rng2(99);
  const float rnd = min_dist(random_sample(256, m, rng2));
  EXPECT_GE(fps, rnd);
}

INSTANTIATE_TEST_SUITE_P(Ms, FpsSweep, ::testing::Values(4, 16, 64));

// ---------------------------------------------------------------------------
// Generator sweeps: invariants across sizes and seeds.
// ---------------------------------------------------------------------------

class GeneratorSweep : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GeneratorSweep, IndoorValidAtAllSizes) {
  const auto [points, seed] = GetParam();
  pcss::data::IndoorSceneGenerator gen({.num_points = points});
  Rng rng(static_cast<std::uint64_t>(seed));
  const auto cloud = gen.generate(rng);
  EXPECT_EQ(cloud.size(), points);
  EXPECT_NO_THROW(cloud.validate());
  for (int l : cloud.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, pcss::data::kIndoorNumClasses);
  }
}

TEST_P(GeneratorSweep, OutdoorValidAtAllSizes) {
  const auto [points, seed] = GetParam();
  pcss::data::OutdoorSceneGenerator gen({.num_points = points});
  Rng rng(static_cast<std::uint64_t>(seed) + 5000);
  const auto cloud = gen.generate(rng);
  EXPECT_EQ(cloud.size(), points);
  EXPECT_NO_THROW(cloud.validate());
  for (int l : cloud.labels) {
    EXPECT_GE(l, 0);
    EXPECT_LT(l, pcss::data::kOutdoorNumClasses);
  }
}

INSTANTIATE_TEST_SUITE_P(SizesSeeds, GeneratorSweep,
                         ::testing::Combine(::testing::Values(64, 256, 1024),
                                            ::testing::Values(1, 2, 3)));

// ---------------------------------------------------------------------------
// Assembler: zero delta == plain input, for every convention.
// ---------------------------------------------------------------------------

using pcss::models::AssembledInput;
using pcss::models::CoordConvention;
using pcss::models::ModelInput;

class ConventionSweep : public ::testing::TestWithParam<CoordConvention> {};

TEST_P(ConventionSweep, ZeroDeltaMatchesPlain) {
  pcss::data::IndoorSceneGenerator gen({.num_points = 64});
  Rng rng(3);
  const auto cloud = gen.generate(rng);
  const bool extra = GetParam() == CoordConvention::kZeroToThree;
  ModelInput plain = ModelInput::plain(cloud);
  const AssembledInput a = assemble_input(plain, GetParam(), extra);
  Tensor zc = Tensor::zeros({cloud.size(), 3});
  Tensor zp = Tensor::zeros({cloud.size(), 3});
  ModelInput with_deltas{&cloud, zc, zp};
  const AssembledInput b = assemble_input(with_deltas, GetParam(), extra);
  ASSERT_EQ(a.features.numel(), b.features.numel());
  for (std::int64_t i = 0; i < a.features.numel(); ++i) {
    EXPECT_NEAR(a.features.at(i), b.features.at(i), 1e-6f);
  }
}

INSTANTIATE_TEST_SUITE_P(Conventions, ConventionSweep,
                         ::testing::Values(CoordConvention::kZeroToThree,
                                           CoordConvention::kMinusOneToOne,
                                           CoordConvention::kCentered));

// ---------------------------------------------------------------------------
// All 8 paper attack configurations execute and respect field isolation.
// ---------------------------------------------------------------------------

using pcss::core::AttackConfig;
using pcss::core::AttackField;
using pcss::core::AttackNorm;
using pcss::core::AttackObjective;

class AttackMatrix
    : public ::testing::TestWithParam<std::tuple<AttackObjective, AttackNorm, AttackField>> {
 protected:
  static void SetUpTestSuite() {
    gen_ = new pcss::data::IndoorSceneGenerator({.num_points = 96});
    Rng init(5);
    pcss::models::ResGCNConfig config;
    config.num_classes = 13;
    config.channels = 8;
    config.blocks = 1;
    model_ = new pcss::models::ResGCNSeg(config, init);
    Rng rng(6);
    cloud_ = new pcss::data::PointCloud(
        gen_->generate_with_class(rng, static_cast<int>(pcss::data::IndoorClass::kWall), 10));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete model_;
    delete cloud_;
  }
  static pcss::data::IndoorSceneGenerator* gen_;
  static pcss::models::ResGCNSeg* model_;
  static pcss::data::PointCloud* cloud_;
};

pcss::data::IndoorSceneGenerator* AttackMatrix::gen_ = nullptr;
pcss::models::ResGCNSeg* AttackMatrix::model_ = nullptr;
pcss::data::PointCloud* AttackMatrix::cloud_ = nullptr;

TEST_P(AttackMatrix, RunsAndRespectsFieldIsolation) {
  const auto [objective, norm, field] = GetParam();
  AttackConfig config;
  config.objective = objective;
  config.norm = norm;
  config.field = field;
  config.steps = 3;
  config.cw_steps = 3;
  if (objective == AttackObjective::kObjectHiding) {
    config.target_class = static_cast<int>(pcss::data::IndoorClass::kCeiling);
    config.target_mask =
        pcss::core::mask_for_class(cloud_->labels, static_cast<int>(pcss::data::IndoorClass::kWall));
  }
  const auto result = pcss::core::run_attack(*model_, *cloud_, config);
  EXPECT_EQ(static_cast<std::int64_t>(result.predictions.size()), cloud_->size());
  EXPECT_NO_THROW(result.perturbed.validate());
  if (field == AttackField::kColor) {
    EXPECT_EQ(result.l0_coord, 0);
  }
  if (field == AttackField::kCoordinate) {
    EXPECT_EQ(result.l0_color, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, AttackMatrix,
    ::testing::Combine(::testing::Values(AttackObjective::kPerformanceDegradation,
                                         AttackObjective::kObjectHiding),
                       ::testing::Values(AttackNorm::kBounded, AttackNorm::kUnbounded),
                       ::testing::Values(AttackField::kColor, AttackField::kCoordinate,
                                         AttackField::kBoth)));

// ---------------------------------------------------------------------------
// Defense sweeps.
// ---------------------------------------------------------------------------

class SrsSweep : public ::testing::TestWithParam<int> {};

TEST_P(SrsSweep, RemovesRequestedFraction) {
  pcss::data::IndoorSceneGenerator gen({.num_points = 240});
  Rng rng(9);
  const auto cloud = gen.generate(rng);
  Rng def(10);
  const auto defended = pcss::core::srs_defense(cloud, GetParam(), def);
  EXPECT_EQ(defended.size(), cloud.size() - GetParam());
}

INSTANTIATE_TEST_SUITE_P(Counts, SrsSweep, ::testing::Values(1, 24, 120, 239));

// ---------------------------------------------------------------------------
// I/O round-trip over random clouds.
// ---------------------------------------------------------------------------

class IoSweep : public ::testing::TestWithParam<int> {};

TEST_P(IoSweep, RoundTripPreservesEverything) {
  pcss::data::OutdoorSceneGenerator gen({.num_points = 50});
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const auto cloud = gen.generate(rng);
  const std::string path = (std::filesystem::temp_directory_path() /
                            ("pcss_prop_io_" + std::to_string(GetParam()) + ".txt"))
                               .string();
  save_xyzrgbl(cloud, path);
  const auto loaded = load_xyzrgbl(path);
  ASSERT_EQ(loaded.size(), cloud.size());
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    EXPECT_EQ(loaded.labels[static_cast<size_t>(i)], cloud.labels[static_cast<size_t>(i)]);
    for (int a = 0; a < 3; ++a) {
      EXPECT_NEAR(loaded.positions[static_cast<size_t>(i)][a],
                  cloud.positions[static_cast<size_t>(i)][a], 1e-4f);
      EXPECT_NEAR(loaded.colors[static_cast<size_t>(i)][a],
                  cloud.colors[static_cast<size_t>(i)][a], 1e-5f);
    }
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoSweep, ::testing::Range(1, 4));

}  // namespace
