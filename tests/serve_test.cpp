// System tests for the pcss_serve daemon core: each test fork+execve's
// the serve_fixture child binary (the worker_fixture pattern — the
// gtest process runs attack threads and must never fork-and-continue)
// and speaks the line-delimited JSON protocol to it over a Unix socket.
//
// The assertions are the serving story itself: a served document is
// byte-identical to an in-process run_spec over the same fixtures,
// reruns are pure cache hits, concurrent identical requests coalesce
// into one computation, malformed input degrades per-request (never
// per-process), admission control rejects 429-style, and a SIGTERM
// drain exits 0 leaving a store the next daemon can serve from.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "pcss/runner/executor.h"
#include "pcss/runner/json.h"
#include "pcss/runner/result_store.h"
#include "pcss/serve/config.h"
#include "tiny_provider.h"

extern char** environ;

namespace {

namespace fs = std::filesystem;
using pcss::runner::Json;
using pcss_tests::TinyProvider;

void sleep_ms(long ms) {
  timespec ts{ms / 1000, (ms % 1000) * 1000000L};
  while (::nanosleep(&ts, &ts) == -1 && errno == EINTR) {
  }
}

/// fork+execve of the serve fixture daemon; argv/envp are fully built
/// before fork. The child's stdout is redirected to `stdout_path` (the
/// drain tests read "casualties=N" from it after waitpid).
pid_t spawn_daemon(const std::vector<std::string>& args, const std::string& stdout_path) {
  std::vector<std::string> full;
  full.push_back(PCSS_SERVE_FIXTURE_BIN);
  full.insert(full.end(), args.begin(), args.end());
  std::vector<char*> argv;
  argv.reserve(full.size() + 1);
  for (const std::string& a : full) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid == 0) {
    const int out = ::open(stdout_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (out >= 0) {
      ::dup2(out, STDOUT_FILENO);
      ::close(out);
    }
    ::execve(argv[0], argv.data(), environ);
    _exit(127);
  }
  return pid;
}

/// Raw waitpid status (use WIFEXITED/WIFSIGNALED on it); -1 on error.
int wait_status(pid_t pid) {
  int status = 0;
  while (::waitpid(pid, &status, 0) == -1) {
    if (errno != EINTR) return -1;
  }
  return status;
}

/// Blocking protocol client: connect-with-retry until the daemon's
/// hello (its readiness signal), then line + length-prefixed-payload
/// framing, mirroring pcss_client.
class Client {
 public:
  ~Client() { close(); }

  /// Retries until the daemon accepts and sends hello (~10 s cap).
  bool connect_unix(const std::string& path) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
      if (fd_ < 0) return false;
      sockaddr_un addr{};
      addr.sun_family = AF_UNIX;
      std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        std::string hello;
        if (read_line(hello) && hello.find("\"hello\"") != std::string::npos) return true;
      }
      close();
      sleep_ms(50);
    }
    return false;
  }

  bool send_raw(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t sent =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      if (sent <= 0) return false;
      off += static_cast<std::size_t>(sent);
    }
    return true;
  }

  bool send_line(const std::string& line) { return send_raw(line + "\n"); }

  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (!fill()) return false;
    }
  }

  bool read_exact(std::size_t n, std::string& out) {
    while (buffer_.size() < n) {
      if (!fill()) return false;
    }
    out = buffer_.substr(0, n);
    buffer_.erase(0, n);
    return true;
  }

  /// True when the server closed its side (clean EOF, no more bytes).
  bool at_eof() {
    if (!buffer_.empty()) return false;
    return !fill();
  }

  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
    buffer_.clear();
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(got));
    return true;
  }

  int fd_ = -1;
  std::string buffer_;
};

// -- event-line accessors (ADD_FAILURE on shape violations) -----------------

Json parse_event(const std::string& line) {
  try {
    return Json::parse(line);
  } catch (const std::exception& e) {
    ADD_FAILURE() << "unparseable event line: " << line << " (" << e.what() << ")";
    return Json::object();
  }
}

std::string event_kind(const Json& event) {
  const Json* kind = event.find("event");
  return kind != nullptr && kind->type() == Json::Type::kString ? kind->str() : "";
}

double num_field(const Json& event, const char* key) {
  const Json* value = event.find(key);
  if (value == nullptr || value->type() != Json::Type::kNumber) {
    ADD_FAILURE() << "missing numeric field '" << key << "'";
    return 0;
  }
  return value->number();
}

bool bool_field(const Json& event, const char* key) {
  const Json* value = event.find(key);
  if (value == nullptr || value->type() != Json::Type::kBool) {
    ADD_FAILURE() << "missing bool field '" << key << "'";
    return false;
  }
  return value->boolean();
}

/// Reads events until the run's terminal event (result or error).
/// Returns the header; fills `payload` with the result document when
/// the terminal event is a result.
Json read_to_terminal(Client& client, std::string& payload) {
  std::string line;
  while (client.read_line(line)) {
    Json event = parse_event(line);
    const std::string kind = event_kind(event);
    if (kind == "progress" || kind == "accepted") continue;
    if (kind == "result" || kind == "stats") {
      const auto bytes = static_cast<std::size_t>(num_field(event, "bytes"));
      if (!client.read_exact(bytes, payload)) {
        ADD_FAILURE() << "truncated payload after: " << line;
      }
      return event;
    }
    return event;  // error / status / shutdown
  }
  ADD_FAILURE() << "connection closed before a terminal event";
  return Json::object();
}

/// Counter value from a stats payload (0 when absent — absent counters
/// have simply never been incremented).
double counter_of(const std::string& stats_payload, const std::string& name) {
  const Json snapshot = parse_event(stats_payload);
  const Json* counters = snapshot.find("counters");
  if (counters == nullptr) return 0;
  const Json* value = counters->find(name);
  return value != nullptr && value->type() == Json::Type::kNumber ? value->number() : 0;
}

/// The reference document: an in-process run_spec over the same
/// fixtures the daemon serves (same TinyProvider fingerprint, same
/// tiny_options scale), into a private store. Identical cache keys,
/// identical bytes — that is the serving contract under test.
std::string reference_document(const std::string& store_root, const std::string& spec) {
  TinyProvider provider;
  pcss::runner::ResultStore store(store_root);
  pcss::runner::ExperimentSpec s;
  if (spec == "mini") {
    s = pcss_tests::mini_spec();
  } else if (spec == "mini_shared") {
    s = pcss_tests::mini_shared_spec();
  } else {
    s = pcss_tests::mini_grid_spec();
  }
  return run_spec(s, provider, store, pcss_tests::tiny_options()).json;
}

/// Fresh directory + daemon lifecycle per test. The daemon is started
/// lazily (tests pick their own flags) and force-killed on teardown if
/// a test failed before its orderly shutdown.
class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    root_ = (fs::temp_directory_path() /
             (std::string("pcss_serve_") + info->test_suite_name() + "_" + info->name()))
                .string();
    fs::remove_all(root_);
    fs::create_directories(root_);
  }

  void TearDown() override {
    if (daemon_ > 0) {
      ::kill(daemon_, SIGKILL);
      wait_status(daemon_);
      daemon_ = -1;
    }
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  std::string sock() const { return root_ + "/serve.sock"; }
  std::string store() const { return root_ + "/store"; }
  std::string daemon_out() const { return root_ + "/daemon.out"; }

  void start_daemon(std::vector<std::string> extra = {}) {
    std::vector<std::string> args = {"--socket", sock(), "--store", store()};
    args.insert(args.end(), extra.begin(), extra.end());
    daemon_ = spawn_daemon(args, daemon_out());
    ASSERT_GT(daemon_, 0);
  }

  /// Orderly end: SIGTERM, expect exit 0, forget the pid.
  void stop_daemon() {
    ASSERT_GT(daemon_, 0);
    ::kill(daemon_, SIGTERM);
    const int status = wait_status(daemon_);
    EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
        << "daemon did not drain cleanly (status " << status << ")";
    daemon_ = -1;
  }

  std::string root_;
  pid_t daemon_ = -1;
};

TEST_F(ServeTest, ConfigFileParsesOverridesAndRejectsJunk) {
  const std::string conf = root_ + "/serve.conf";
  {
    std::ofstream out(conf);
    out << "# serving smoke config\n"
        << "port = 0\n"
        << "socket = /tmp/pcss.sock\n"
        << "workers = 3\n"
        << "queue_depth = 8\n"
        << "max_inflight_per_client = 2\n"
        << "idle_timeout_ms = 5000\n"
        << "drain_grace_ms = 250\n"
        << "store = /tmp/pcss-store\n";
  }
  const pcss::serve::ServeConfig parsed = pcss::serve::parse_config_file(conf);
  EXPECT_EQ(parsed.socket_path, "/tmp/pcss.sock");
  EXPECT_EQ(parsed.workers, 3);
  EXPECT_EQ(parsed.queue_depth, 8);
  EXPECT_EQ(parsed.max_inflight_per_client, 2);
  EXPECT_EQ(parsed.idle_timeout_ms, 5000);
  EXPECT_EQ(parsed.drain_grace_ms, 250);
  EXPECT_EQ(parsed.store_root, "/tmp/pcss-store");
  EXPECT_NO_THROW(pcss::serve::validate(parsed));

  // Unknown keys and malformed numbers name "<path>:<line>".
  {
    std::ofstream out(conf);
    out << "socket = /tmp/pcss.sock\n"
        << "frobnicate = 1\n";
  }
  try {
    pcss::serve::parse_config_file(conf);
    FAIL() << "unknown key must throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2"), std::string::npos) << e.what();
  }
  {
    std::ofstream out(conf);
    out << "workers = many\n";
  }
  EXPECT_THROW(pcss::serve::parse_config_file(conf), std::runtime_error);

  // validate() rejects nonsense ranges.
  pcss::serve::ServeConfig bad;
  bad.socket_path = "/tmp/pcss.sock";
  bad.workers = 0;
  bad.queue_depth = -1;
  EXPECT_THROW(pcss::serve::validate(bad), std::runtime_error);
}

TEST_F(ServeTest, ServedBytesMatchInProcessRunAndRerunIsCacheHit) {
  start_daemon();
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini","id":"first"})"));
  std::string served;
  Json first = read_to_terminal(client, served);
  ASSERT_EQ(event_kind(first), "result");
  EXPECT_FALSE(bool_field(first, "cache_hit"));
  EXPECT_FALSE(bool_field(first, "coalesced"));
  EXPECT_GT(num_field(first, "shards_total"), 0);
  EXPECT_FALSE(served.empty());

  // Byte-identity: the served document IS the pcss_run document.
  EXPECT_EQ(served, reference_document(root_ + "/ref_store", "mini"));

  // Rerun on the same connection: a pure cache hit, same bytes.
  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini","id":"second"})"));
  std::string rerun;
  Json second = read_to_terminal(client, rerun);
  ASSERT_EQ(event_kind(second), "result");
  EXPECT_TRUE(bool_field(second, "cache_hit"));
  EXPECT_EQ(rerun, served);

  // The obs counters surface through the stats request.
  ASSERT_TRUE(client.send_line(R"({"kind":"stats"})"));
  std::string stats;
  ASSERT_EQ(event_kind(read_to_terminal(client, stats)), "stats");
  EXPECT_GE(counter_of(stats, "serve.requests.accepted"), 2);
  EXPECT_GE(counter_of(stats, "serve.cache.hits"), 1);
  EXPECT_GE(counter_of(stats, "serve.cache.misses"), 1);

  // Orderly shutdown through the protocol (not the signal path).
  ASSERT_TRUE(client.send_line(R"({"kind":"shutdown"})"));
  std::string unused;
  EXPECT_EQ(event_kind(read_to_terminal(client, unused)), "shutdown");
  client.close();
  const int status = wait_status(daemon_);
  daemon_ = -1;
  EXPECT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  std::ifstream out(daemon_out());
  std::string casualties((std::istreambuf_iterator<char>(out)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(casualties.find("casualties=0"), std::string::npos) << casualties;
}

TEST_F(ServeTest, ConcurrentIdenticalRequestsCoalesceIntoOneComputation) {
  // The job-start delay holds the first request in flight long enough
  // for the second to arrive deterministically.
  start_daemon({"--job-delay-ms", "400", "--workers", "2"});
  Client a;
  Client b;
  ASSERT_TRUE(a.connect_unix(sock()));
  ASSERT_TRUE(b.connect_unix(sock()));

  ASSERT_TRUE(a.send_line(R"({"kind":"run","spec":"mini","id":"a"})"));
  std::string line;
  ASSERT_TRUE(a.read_line(line));
  Json accepted_a = parse_event(line);
  ASSERT_EQ(event_kind(accepted_a), "accepted");
  EXPECT_FALSE(bool_field(accepted_a, "coalesced"));

  ASSERT_TRUE(b.send_line(R"({"kind":"run","spec":"mini","id":"b"})"));
  ASSERT_TRUE(b.read_line(line));
  Json accepted_b = parse_event(line);
  ASSERT_EQ(event_kind(accepted_b), "accepted");
  EXPECT_TRUE(bool_field(accepted_b, "coalesced"));

  std::string doc_a;
  std::string doc_b;
  Json result_a = read_to_terminal(a, doc_a);
  Json result_b = read_to_terminal(b, doc_b);
  ASSERT_EQ(event_kind(result_a), "result");
  ASSERT_EQ(event_kind(result_b), "result");
  EXPECT_TRUE(bool_field(result_b, "coalesced"));
  EXPECT_EQ(doc_a, doc_b);
  EXPECT_FALSE(doc_a.empty());

  // One computation total: one cache miss, zero hits, one coalesce.
  ASSERT_TRUE(a.send_line(R"({"kind":"stats"})"));
  std::string stats;
  ASSERT_EQ(event_kind(read_to_terminal(a, stats)), "stats");
  EXPECT_EQ(counter_of(stats, "serve.requests.coalesced"), 1);
  EXPECT_EQ(counter_of(stats, "serve.cache.misses"), 1);
  EXPECT_EQ(counter_of(stats, "serve.cache.hits"), 0);

  stop_daemon();
}

TEST_F(ServeTest, MalformedRequestsFailTheRequestNotTheConnection) {
  start_daemon();
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  const std::pair<const char*, int> bad[] = {
      {"this is not json", 400},
      {R"({"kind":"frobnicate"})", 400},
      {R"({"kind":"run"})", 400},            // run without a spec
      {R"({"kind":"run","spec":5})", 400},   // wrongly typed field
      {R"({"kind":"run","spec":"nope"})", 404},
  };
  std::string payload;
  for (const auto& [request, code] : bad) {
    ASSERT_TRUE(client.send_line(request));
    Json event = read_to_terminal(client, payload);
    ASSERT_EQ(event_kind(event), "error") << request;
    EXPECT_EQ(num_field(event, "code"), code) << request;
  }

  // The connection survived all of it.
  ASSERT_TRUE(client.send_line(R"({"kind":"status"})"));
  Json status = read_to_terminal(client, payload);
  ASSERT_EQ(event_kind(status), "status");
  EXPECT_EQ(num_field(status, "queued"), 0);

  stop_daemon();
}

TEST_F(ServeTest, OversizedLineGets413AndTheConnectionCloses) {
  start_daemon({"--max-line", "128"});
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  ASSERT_TRUE(client.send_line(std::string(1024, 'x')));
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  Json event = parse_event(line);
  ASSERT_EQ(event_kind(event), "error");
  EXPECT_EQ(num_field(event, "code"), 413);
  EXPECT_TRUE(client.at_eof());

  // Only that connection was condemned; a fresh one serves fine.
  Client fresh;
  ASSERT_TRUE(fresh.connect_unix(sock()));
  ASSERT_TRUE(fresh.send_line(R"({"kind":"status"})"));
  std::string payload;
  EXPECT_EQ(event_kind(read_to_terminal(fresh, payload)), "status");

  stop_daemon();
}

TEST_F(ServeTest, HalfClosedMidRequestGetsACleanError) {
  start_daemon();
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  ASSERT_TRUE(client.send_raw(R"({"kind":"status")"));  // no terminator
  client.shutdown_write();
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  Json event = parse_event(line);
  ASSERT_EQ(event_kind(event), "error");
  EXPECT_EQ(num_field(event, "code"), 400);
  EXPECT_TRUE(client.at_eof());

  stop_daemon();
}

TEST_F(ServeTest, SigtermDrainCancelsInFlightAndTheStoreStaysServable) {
  start_daemon({"--job-delay-ms", "600", "--drain-grace", "0"});
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini"})"));
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  ASSERT_EQ(event_kind(parse_event(line)), "accepted");

  // SIGTERM while the job is held in flight: the run is cancelled at a
  // shard boundary and the client is told 503, not hung up on.
  ::kill(daemon_, SIGTERM);
  std::string payload;
  Json terminal = read_to_terminal(client, payload);
  ASSERT_EQ(event_kind(terminal), "error");
  EXPECT_EQ(num_field(terminal, "code"), 503);
  client.close();

  const int status = wait_status(daemon_);
  daemon_ = -1;
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0)
      << "drain must exit 0 (status " << status << ")";
  std::ifstream out(daemon_out());
  std::string casualties((std::istreambuf_iterator<char>(out)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(casualties.find("casualties=1"), std::string::npos) << casualties;

  // The store a drain leaves behind is resumable: a fresh daemon over
  // the SAME store serves the spec to completion, byte-identical to
  // the in-process reference (cached shards, if any, are reused).
  start_daemon();
  Client again;
  ASSERT_TRUE(again.connect_unix(sock()));
  ASSERT_TRUE(again.send_line(R"({"kind":"run","spec":"mini"})"));
  std::string served;
  Json result = read_to_terminal(again, served);
  ASSERT_EQ(event_kind(result), "result");
  EXPECT_EQ(served, reference_document(root_ + "/ref_store", "mini"));

  stop_daemon();
}

TEST_F(ServeTest, PerClientInFlightLimitRejects429) {
  start_daemon({"--job-delay-ms", "400", "--max-inflight", "1"});
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  // Distinct specs so coalescing cannot mask the limit.
  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini"})"));
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  ASSERT_EQ(event_kind(parse_event(line)), "accepted");

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini_shared"})"));
  ASSERT_TRUE(client.read_line(line));
  Json rejected = parse_event(line);
  ASSERT_EQ(event_kind(rejected), "error");
  EXPECT_EQ(num_field(rejected, "code"), 429);

  // The slot frees once the first run completes.
  std::string payload;
  ASSERT_EQ(event_kind(read_to_terminal(client, payload)), "result");
  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini_shared"})"));
  ASSERT_EQ(event_kind(read_to_terminal(client, payload)), "result");

  stop_daemon();
}

TEST_F(ServeTest, FullQueueRejects429) {
  start_daemon({"--workers", "1", "--queue-depth", "1", "--job-delay-ms", "400"});
  Client client;
  ASSERT_TRUE(client.connect_unix(sock()));

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini"})"));
  std::string line;
  ASSERT_TRUE(client.read_line(line));
  ASSERT_EQ(event_kind(parse_event(line)), "accepted");
  sleep_ms(150);  // let the single worker dequeue it (it then holds)

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini_shared"})"));
  ASSERT_TRUE(client.read_line(line));
  ASSERT_EQ(event_kind(parse_event(line)), "accepted");  // fills the queue

  ASSERT_TRUE(client.send_line(R"({"kind":"run","spec":"mini_grid"})"));
  ASSERT_TRUE(client.read_line(line));
  Json rejected = parse_event(line);
  ASSERT_EQ(event_kind(rejected), "error");
  EXPECT_EQ(num_field(rejected, "code"), 429);

  // Both admitted runs still complete in order.
  std::string payload;
  ASSERT_EQ(event_kind(read_to_terminal(client, payload)), "result");
  ASSERT_EQ(event_kind(read_to_terminal(client, payload)), "result");

  stop_daemon();
}

}  // namespace
