#include <gtest/gtest.h>

#include "pcss/core/experiment.h"
#include "pcss/core/metrics.h"

using namespace pcss::core;

namespace {

TEST(Metrics, PerfectPrediction) {
  const std::vector<int> gt{0, 1, 2, 1, 0};
  const SegMetrics m = evaluate_segmentation(gt, gt, 3);
  EXPECT_DOUBLE_EQ(m.accuracy, 1.0);
  EXPECT_DOUBLE_EQ(m.aiou, 1.0);
  for (int c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m.per_class_iou[static_cast<size_t>(c)], 1.0);
}

TEST(Metrics, HandcraftedConfusion) {
  // gt:   0 0 1 1
  // pred: 0 1 1 0
  const std::vector<int> gt{0, 0, 1, 1};
  const std::vector<int> pred{0, 1, 1, 0};
  const SegMetrics m = evaluate_segmentation(pred, gt, 2);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
  // class 0: TP=1 FP=1 FN=1 -> IoU 1/3; class 1 symmetric.
  EXPECT_NEAR(m.aiou, 1.0 / 3.0, 1e-12);
}

TEST(Metrics, AbsentClassSkippedInAiou) {
  const std::vector<int> gt{0, 0, 1};
  const std::vector<int> pred{0, 0, 1};
  const SegMetrics m = evaluate_segmentation(pred, gt, 5);
  EXPECT_DOUBLE_EQ(m.aiou, 1.0);
  EXPECT_DOUBLE_EQ(m.per_class_iou[4], -1.0);
}

TEST(Metrics, FalsePositiveIntoAbsentClassCountsAgainstIt) {
  const std::vector<int> gt{0, 0, 0, 0};
  const std::vector<int> pred{0, 0, 0, 3};
  const SegMetrics m = evaluate_segmentation(pred, gt, 4);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.75);
  // class 0: 3/(3+0+1)=0.75; class 3: 0/(0+1+0)=0.
  EXPECT_NEAR(m.aiou, (0.75 + 0.0) / 2.0, 1e-12);
}

TEST(Metrics, SizeAndRangeValidation) {
  EXPECT_THROW(evaluate_segmentation({0}, {0, 1}, 2), std::invalid_argument);
  EXPECT_THROW(evaluate_segmentation({5}, {0}, 2), std::invalid_argument);
}

TEST(Metrics, MaskedEvaluation) {
  const std::vector<int> gt{0, 1, 0, 1};
  const std::vector<int> pred{0, 0, 0, 0};
  const std::vector<std::uint8_t> mask{1, 1, 0, 0};
  const SegMetrics m = evaluate_segmentation_masked(pred, gt, 2, mask);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);
}

TEST(Metrics, PointSuccessRate) {
  const std::vector<int> pred{2, 2, 0, 2};
  const std::vector<std::uint8_t> mask{1, 1, 1, 0};
  EXPECT_NEAR(point_success_rate(pred, mask, 2), 2.0 / 3.0, 1e-12);
  const std::vector<std::uint8_t> none(4, 0);
  EXPECT_DOUBLE_EQ(point_success_rate(pred, none, 2), 0.0);
}

TEST(Metrics, OutOfBandExcludesTargets) {
  const std::vector<int> gt{0, 0, 1, 1};
  const std::vector<int> pred{9 % 2, 1, 1, 1};  // pred = {1,1,1,1}
  const std::vector<std::uint8_t> mask{1, 1, 0, 0};
  const SegMetrics oob = evaluate_oob(pred, gt, 2, mask);
  EXPECT_DOUBLE_EQ(oob.accuracy, 1.0);  // unmasked points are the two 1s
}

TEST(Metrics, MaskForClass) {
  const std::vector<int> gt{3, 1, 3, 0};
  const auto mask = mask_for_class(gt, 3);
  EXPECT_EQ(mask, (std::vector<std::uint8_t>{1, 0, 1, 0}));
}

// --- experiment aggregation -------------------------------------------------

TEST(Experiment, AggregateBestAvgWorst) {
  std::vector<CaseRecord> records{
      {10.0, 0.50, 0.30}, {5.0, 0.10, 0.05}, {20.0, 0.90, 0.80}};
  const BestAvgWorst agg = aggregate_cases(records);
  EXPECT_DOUBLE_EQ(agg.best.accuracy, 0.10);  // most vulnerable cloud
  EXPECT_DOUBLE_EQ(agg.best.distance, 5.0);
  EXPECT_DOUBLE_EQ(agg.worst.accuracy, 0.90);
  EXPECT_NEAR(agg.avg.accuracy, 0.5, 1e-12);
  EXPECT_NEAR(agg.avg.distance, 35.0 / 3.0, 1e-12);
}

TEST(Experiment, AggregateRejectsEmpty) {
  EXPECT_THROW(aggregate_cases({}), std::invalid_argument);
}

TEST(Experiment, AggregateSingleRecord) {
  const BestAvgWorst agg = aggregate_cases({{1.0, 0.4, 0.2}});
  EXPECT_DOUBLE_EQ(agg.best.accuracy, agg.worst.accuracy);
  EXPECT_DOUBLE_EQ(agg.avg.aiou, 0.2);
}

}  // namespace
