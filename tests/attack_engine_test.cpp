// AttackEngine contract tests: strategy-composition equivalence with the
// legacy run_attack wrapper across all 8 paper configurations, batched
// determinism under different thread counts, config validation, the
// shared-delta mode, and observer/recipe pluggability.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>
#include <vector>

#include "pcss/core/attack_engine.h"
#include "pcss/core/metrics.h"
#include "pcss/core/universal.h"
#include "pcss/data/indoor.h"
#include "pcss/models/resgcn.h"

using namespace pcss::core;
using pcss::data::IndoorClass;
using pcss::data::IndoorSceneGenerator;
using pcss::tensor::Rng;

namespace {

/// Untrained tiny ResGCN: gradients flow regardless of training, which
/// is all the engine contract tests need; keeping it untrained makes the
/// whole file run in seconds.
class EngineFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    gen_ = new IndoorSceneGenerator({.num_points = 160});
    Rng init(31);
    pcss::models::ResGCNConfig config;
    config.num_classes = pcss::data::kIndoorNumClasses;
    config.channels = 8;
    config.blocks = 1;
    model_ = new pcss::models::ResGCNSeg(config, init);
    Rng scene_rng(77);
    cloud_ = new pcss::data::PointCloud(gen_->generate_with_class(
        scene_rng, static_cast<int>(IndoorClass::kWindow), 8));
    clouds_ = new std::vector<PointCloud>();
    Rng batch_rng(78);
    for (int i = 0; i < 3; ++i) clouds_->push_back(gen_->generate(batch_rng));
  }
  static void TearDownTestSuite() {
    delete gen_;
    delete model_;
    delete cloud_;
    delete clouds_;
    gen_ = nullptr;
    model_ = nullptr;
    cloud_ = nullptr;
    clouds_ = nullptr;
  }

  static IndoorSceneGenerator* gen_;
  static pcss::models::ResGCNSeg* model_;
  static pcss::data::PointCloud* cloud_;
  static std::vector<PointCloud>* clouds_;
};

IndoorSceneGenerator* EngineFixture::gen_ = nullptr;
pcss::models::ResGCNSeg* EngineFixture::model_ = nullptr;
pcss::data::PointCloud* EngineFixture::cloud_ = nullptr;
std::vector<PointCloud>* EngineFixture::clouds_ = nullptr;

void expect_bit_identical(const AttackResult& a, const AttackResult& b) {
  ASSERT_EQ(a.perturbed.size(), b.perturbed.size());
  EXPECT_EQ(a.steps_used, b.steps_used);
  for (std::int64_t i = 0; i < a.perturbed.size(); ++i) {
    for (int axis = 0; axis < 3; ++axis) {
      // Exact float equality: the engine and the wrapper must execute
      // the same arithmetic in the same order.
      EXPECT_EQ(a.perturbed.colors[static_cast<size_t>(i)][axis],
                b.perturbed.colors[static_cast<size_t>(i)][axis])
          << "color mismatch at point " << i;
      EXPECT_EQ(a.perturbed.positions[static_cast<size_t>(i)][axis],
                b.perturbed.positions[static_cast<size_t>(i)][axis])
          << "position mismatch at point " << i;
    }
  }
  EXPECT_EQ(a.predictions, b.predictions);
  EXPECT_EQ(a.l0_color, b.l0_color);
  EXPECT_EQ(a.l0_coord, b.l0_coord);
}

// ---------------------------------------------------------------------------
// Equivalence: all 8 objective x norm x field configurations.
// ---------------------------------------------------------------------------

class EngineEquivalence
    : public EngineFixture,
      public ::testing::WithParamInterface<
          std::tuple<AttackObjective, AttackNorm, AttackField>> {};

TEST_P(EngineEquivalence, EngineMatchesLegacyWrapperBitExactly) {
  const auto [objective, norm, field] = GetParam();
  AttackConfig config;
  config.objective = objective;
  config.norm = norm;
  config.field = field;
  config.steps = 4;
  config.cw_steps = 6;
  if (objective == AttackObjective::kObjectHiding) {
    config.target_class = static_cast<int>(IndoorClass::kWall);
    config.target_mask =
        mask_for_class(cloud_->labels, static_cast<int>(IndoorClass::kWindow));
  }

  // The legacy free function (now a compatibility wrapper)...
  const AttackResult legacy = run_attack(*model_, *cloud_, config);
  // ...versus an engine whose recipe is assembled strategy-by-strategy
  // from the public factories rather than derived from the config.
  AttackRecipe recipe;
  recipe.make_objective = [&config]() -> std::unique_ptr<Objective> {
    if (config.objective == AttackObjective::kObjectHiding) {
      return make_hiding_objective(config.target_class, config.success_psr);
    }
    return make_degradation_objective(config.success_accuracy);
  };
  recipe.make_projection = [&config]() -> std::unique_ptr<Projection> {
    return config.norm == AttackNorm::kBounded ? make_clip_projection(config)
                                               : make_tanh_projection(config);
  };
  recipe.make_step_rule = [&config]() -> std::unique_ptr<StepRule> {
    return config.norm == AttackNorm::kBounded ? make_sign_step(config.step_size)
                                               : make_adam_step(config.adam_lr);
  };
  recipe.make_stop = [&config]() -> std::unique_ptr<StopCriterion> {
    return config.norm == AttackNorm::kBounded
               ? make_standard_stop(config.steps, 0)
               : make_standard_stop(config.cw_steps, config.stall_patience);
  };
  const AttackEngine engine(*model_, config, std::move(recipe));
  const AttackResult composed = engine.run(*cloud_);

  expect_bit_identical(legacy, composed);
}

INSTANTIATE_TEST_SUITE_P(
    AllEight, EngineEquivalence,
    ::testing::Combine(::testing::Values(AttackObjective::kPerformanceDegradation,
                                         AttackObjective::kObjectHiding),
                       ::testing::Values(AttackNorm::kBounded, AttackNorm::kUnbounded),
                       ::testing::Values(AttackField::kColor, AttackField::kCoordinate)));

// ---------------------------------------------------------------------------
// Batched execution: determinism and seed derivation.
// ---------------------------------------------------------------------------

TEST_F(EngineFixture, RunBatchDeterministicAcrossThreadCounts) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 3;

  AttackEngine sequential(*model_, config);
  sequential.set_num_threads(1);
  const auto seq = sequential.run_batch(*clouds_);

  AttackEngine pooled(*model_, config);
  pooled.set_num_threads(2);
  const auto par = pooled.run_batch(*clouds_);

  ASSERT_EQ(seq.size(), clouds_->size());
  ASSERT_EQ(par.size(), clouds_->size());
  for (size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE("cloud " + std::to_string(i));
    expect_bit_identical(seq[i], par[i]);
  }
}

TEST_F(EngineFixture, RunBatchDerivesPerCloudSeeds) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 3;
  config.seed = 1234;
  const AttackEngine engine(*model_, config);
  const auto batch = engine.run_batch(*clouds_);
  for (size_t i = 0; i < clouds_->size(); ++i) {
    SCOPED_TRACE("cloud " + std::to_string(i));
    const AttackResult solo = engine.run((*clouds_)[i], config.seed + i);
    expect_bit_identical(batch[i], solo);
  }
}

TEST_F(EngineFixture, RunBatchUnboundedDeterministicAcrossThreadCounts) {
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = 4;

  AttackEngine sequential(*model_, config);
  sequential.set_num_threads(1);
  AttackEngine pooled(*model_, config);
  pooled.set_num_threads(2);
  const auto seq = sequential.run_batch(*clouds_);
  const auto par = pooled.run_batch(*clouds_);
  for (size_t i = 0; i < seq.size(); ++i) {
    SCOPED_TRACE("cloud " + std::to_string(i));
    expect_bit_identical(seq[i], par[i]);
  }
}

// ---------------------------------------------------------------------------
// Config validation.
// ---------------------------------------------------------------------------

TEST(AttackConfigValidate, CollectsEveryProblemAtOnce) {
  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.norm = AttackNorm::kBounded;
  config.steps = 0;
  config.epsilon = -0.1f;
  config.min_impact_fraction = -1.0f;
  config.target_class = 99;  // out of range for 13 classes
  // target_mask left empty: a fifth problem.
  const auto errors = config.validate(/*num_classes=*/13);
  EXPECT_EQ(errors.size(), 5u) << ::testing::PrintToString(errors);
}

TEST(AttackConfigValidate, AcceptsTheDefaults) {
  EXPECT_TRUE(AttackConfig{}.validate().empty());
  AttackConfig unbounded;
  unbounded.norm = AttackNorm::kUnbounded;
  EXPECT_TRUE(unbounded.validate(13).empty());
}

TEST(AttackConfigValidate, ChecksMaskSizeAgainstCloud) {
  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.target_class = 1;
  config.target_mask.assign(10, 1);
  EXPECT_TRUE(config.validate(13, 10).empty());
  EXPECT_EQ(config.validate(13, 11).size(), 1u);
}

TEST_F(EngineFixture, ConstructorThrowsListingAllErrors) {
  AttackConfig config;
  config.norm = AttackNorm::kUnbounded;
  config.cw_steps = -5;
  config.adam_lr = 0.0f;
  try {
    const AttackEngine engine(*model_, config);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("cw_steps"), std::string::npos) << message;
    EXPECT_NE(message.find("adam_lr"), std::string::npos) << message;
  }
}

TEST_F(EngineFixture, RunRejectsMismatchedMask) {
  AttackConfig config;
  config.objective = AttackObjective::kObjectHiding;
  config.target_class = 2;
  config.target_mask.assign(3, 1);  // wrong size for the fixture cloud
  const AttackEngine engine(*model_, config);
  EXPECT_THROW(engine.run(*cloud_), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Shared-delta ("universal") mode.
// ---------------------------------------------------------------------------

TEST_F(EngineFixture, RunSharedMatchesUniversalWrapper) {
  AttackConfig config;
  config.steps = 4;
  config.epsilon = 0.2f;
  const AttackEngine engine(*model_, config);
  const SharedDeltaResult shared = engine.run_shared(*clouds_);
  const UniversalAttackResult wrapped = universal_color_attack(*model_, *clouds_, config);
  EXPECT_EQ(shared.color_delta, wrapped.color_delta);
  EXPECT_EQ(shared.accuracy_before, wrapped.accuracy_before);
  EXPECT_EQ(shared.accuracy_after, wrapped.accuracy_after);
  EXPECT_EQ(shared.steps_used, wrapped.steps_used);
}

TEST_F(EngineFixture, RunSharedDeterministicAcrossThreadCounts) {
  AttackConfig config;
  config.steps = 4;
  AttackEngine sequential(*model_, config);
  sequential.set_num_threads(1);
  AttackEngine pooled(*model_, config);
  pooled.set_num_threads(2);
  const SharedDeltaResult seq = sequential.run_shared(*clouds_);
  const SharedDeltaResult par = pooled.run_shared(*clouds_);
  EXPECT_EQ(seq.color_delta, par.color_delta);
  EXPECT_EQ(seq.accuracy_after, par.accuracy_after);
  EXPECT_EQ(seq.steps_used, par.steps_used);
}

TEST_F(EngineFixture, RunSharedRejectsMisalignedClouds) {
  auto clouds = *clouds_;
  IndoorSceneGenerator small({.num_points = 16});
  Rng rng(5);
  clouds.push_back(small.generate(rng));
  const AttackEngine engine(*model_, AttackConfig{});
  EXPECT_THROW(engine.run_shared(clouds), std::invalid_argument);
  EXPECT_THROW(engine.run_shared({}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Observability and recipe pluggability.
// ---------------------------------------------------------------------------

TEST_F(EngineFixture, ObserverSeesEveryStep) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 5;
  AttackEngine engine(*model_, config);
  std::vector<int> steps_seen;
  engine.set_observer([&](const AttackProgress& p) {
    EXPECT_EQ(p.cloud_index, 0u);
    steps_seen.push_back(p.step);
  });
  const AttackResult result = engine.run(*cloud_);
  ASSERT_EQ(static_cast<int>(steps_seen.size()), result.steps_used);
  for (int s = 0; s < result.steps_used; ++s) EXPECT_EQ(steps_seen[static_cast<size_t>(s)], s);
}

TEST_F(EngineFixture, CustomStopCriterionOverridesBudget) {
  // A 2-step cap plugged in over a 50-step config: composability means
  // the engine honors the strategy, not the config field.
  class TwoSteps final : public StopCriterion {
   public:
    int max_steps() const override { return 2; }
    StepAction on_gain(int, double, bool) override { return StepAction::kContinue; }
  };
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 50;
  AttackRecipe recipe;
  recipe.make_stop = [] { return std::make_unique<TwoSteps>(); };
  const AttackEngine engine(*model_, config, std::move(recipe));
  EXPECT_EQ(engine.run(*cloud_).steps_used, 2);
}

TEST_F(EngineFixture, PartialRecipeFallsBackToConfigDefaults) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 3;
  // Only the stop criterion is overridden; objective/projection/step
  // rule come from the config-derived defaults.
  AttackRecipe recipe;
  recipe.make_stop = [&config] { return make_standard_stop(config.steps, 0); };
  const AttackEngine engine(*model_, config, std::move(recipe));
  const AttackResult via_recipe = engine.run(*cloud_);
  const AttackResult via_default = AttackEngine(*model_, config).run(*cloud_);
  expect_bit_identical(via_recipe, via_default);
}

TEST_F(EngineFixture, ModelParamGradsRestoredAfterRun) {
  AttackConfig config;
  config.norm = AttackNorm::kBounded;
  config.steps = 2;
  const AttackEngine engine(*model_, config);
  (void)engine.run(*cloud_);
  for (auto& p : model_->parameters()) {
    EXPECT_TRUE(p.requires_grad()) << "engine must restore parameter grad flags";
  }
}

}  // namespace
