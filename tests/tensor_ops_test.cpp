#include <gtest/gtest.h>

#include <cmath>

#include "gradcheck.h"
#include "pcss/tensor/ops.h"

namespace ops = pcss::tensor::ops;
using pcss::tensor::Rng;
using pcss::tensor::Shape;
using pcss::tensor::Tensor;
using pcss::testing::expect_gradcheck;
using pcss::testing::random_values;

namespace {

TEST(TensorBasics, FactoriesAndAccessors) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  EXPECT_EQ(z.dim(0), 2);
  EXPECT_EQ(z.dim(1), 3);
  EXPECT_EQ(z.rank(), 2);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(z.at(i), 0.0f);

  Tensor f = Tensor::full({4}, 2.5f);
  for (int i = 0; i < 4; ++i) EXPECT_FLOAT_EQ(f.at(i), 2.5f);

  Tensor d = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_FLOAT_EQ(d.at(3), 4.0f);
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::runtime_error);
}

TEST(TensorBasics, RandomFactoriesAreSeeded) {
  Rng a(7), b(7);
  Tensor ta = Tensor::randn({8}, a);
  Tensor tb = Tensor::randn({8}, b);
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(ta.at(i), tb.at(i));
  Rng c(9);
  Tensor u = Tensor::uniform({100}, c, 0.25f, 0.75f);
  for (int i = 0; i < 100; ++i) {
    EXPECT_GE(u.at(i), 0.25f);
    EXPECT_LT(u.at(i), 0.75f);
  }
}

TEST(TensorBasics, DetachBreaksGraphAndAliases) {
  Tensor x = Tensor::from_data({2}, {1, 2});
  x.set_requires_grad(true);
  Tensor y = ops::scale(x, 2.0f);
  Tensor d = y.detach();
  EXPECT_FALSE(d.requires_grad());
  d.data()[0] = 99.0f;
  EXPECT_FLOAT_EQ(y.at(0), 2.0f) << "detach must copy, not alias";
}

TEST(TensorBasics, BackwardRequiresScalar) {
  Tensor x = Tensor::from_data({2}, {1, 2});
  x.set_requires_grad(true);
  Tensor y = ops::scale(x, 2.0f);
  EXPECT_THROW(y.backward(), std::runtime_error);
}

TEST(TensorBasics, GradAccumulatesAcrossBackward) {
  Tensor x = Tensor::from_data({2}, {1, 2});
  x.set_requires_grad(true);
  ops::sum(x).backward();
  ops::sum(x).backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 2.0f);
  x.zero_grad();
  EXPECT_FLOAT_EQ(x.grad()[0], 0.0f);
}

TEST(TensorBasics, DiamondGraphGradient) {
  // y = sum(x * x + x): dy/dx = 2x + 1, with x reused by two branches.
  Tensor x = Tensor::from_data({3}, {1, 2, 3});
  x.set_requires_grad(true);
  Tensor y = ops::sum(ops::add(ops::mul(x, x), x));
  y.backward();
  EXPECT_FLOAT_EQ(x.grad()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad()[1], 5.0f);
  EXPECT_FLOAT_EQ(x.grad()[2], 7.0f);
}

// ---------------------------------------------------------------------------
// Forward-value checks
// ---------------------------------------------------------------------------

TEST(OpsForward, ElementwiseAndScalar) {
  Tensor a = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor b = Tensor::from_data({2, 2}, {10, 20, 30, 40});
  EXPECT_FLOAT_EQ(ops::add(a, b).at(2), 33.0f);
  EXPECT_FLOAT_EQ(ops::sub(b, a).at(3), 36.0f);
  EXPECT_FLOAT_EQ(ops::mul(a, b).at(1), 40.0f);
  EXPECT_FLOAT_EQ(ops::scale(a, -2.0f).at(0), -2.0f);
  EXPECT_FLOAT_EQ(ops::add_scalar(a, 0.5f).at(0), 1.5f);
  EXPECT_FLOAT_EQ(ops::neg(a).at(3), -4.0f);
  EXPECT_THROW(ops::add(a, Tensor::from_data({4}, {1, 2, 3, 4})), std::runtime_error);
}

TEST(OpsForward, MatmulValues) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_data({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = ops::matmul(a, b);
  EXPECT_EQ(c.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(c.at(0), 58.0f);
  EXPECT_FLOAT_EQ(c.at(1), 64.0f);
  EXPECT_FLOAT_EQ(c.at(2), 139.0f);
  EXPECT_FLOAT_EQ(c.at(3), 154.0f);
}

TEST(OpsForward, ReductionsAndRowSum) {
  Tensor a = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(ops::sum(a).item(), 21.0f);
  EXPECT_FLOAT_EQ(ops::mean(a).item(), 3.5f);
  Tensor rs = ops::row_sum(a);
  EXPECT_EQ(rs.shape(), (Shape{2, 1}));
  EXPECT_FLOAT_EQ(rs.at(0), 6.0f);
  EXPECT_FLOAT_EQ(rs.at(1), 15.0f);
}

TEST(OpsForward, GatherRepeatConcatSlice) {
  Tensor a = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor g = ops::gather_rows(a, {2, 0, 2});
  EXPECT_EQ(g.shape(), (Shape{3, 2}));
  EXPECT_FLOAT_EQ(g.at(0), 5.0f);
  EXPECT_FLOAT_EQ(g.at(2), 1.0f);

  Tensor r = ops::repeat_rows(a, 2);
  EXPECT_EQ(r.shape(), (Shape{6, 2}));
  EXPECT_FLOAT_EQ(r.at(2), 1.0f);  // row 0 repeated
  EXPECT_FLOAT_EQ(r.at(4), 3.0f);  // row 1 starts

  Tensor b = Tensor::from_data({3, 1}, {7, 8, 9});
  Tensor c = ops::concat_cols(a, b);
  EXPECT_EQ(c.shape(), (Shape{3, 3}));
  EXPECT_FLOAT_EQ(c.at(2), 7.0f);

  Tensor s = ops::slice_cols(c, 2, 3);
  EXPECT_EQ(s.shape(), (Shape{3, 1}));
  EXPECT_FLOAT_EQ(s.at(1), 8.0f);
}

TEST(OpsForward, WeightedGather) {
  Tensor a = Tensor::from_data({3, 2}, {1, 2, 3, 4, 5, 6});
  // Each output row mixes two source rows.
  Tensor y = ops::weighted_gather_rows(a, {0, 1, 1, 2}, {0.5f, 0.5f, 0.25f, 0.75f}, 2);
  EXPECT_EQ(y.shape(), (Shape{2, 2}));
  EXPECT_FLOAT_EQ(y.at(0), 2.0f);   // 0.5*1 + 0.5*3
  EXPECT_FLOAT_EQ(y.at(2), 4.5f);   // 0.25*3 + 0.75*5
}

TEST(OpsForward, SegmentReductions) {
  // 2 segments of k=2 rows, 2 channels.
  Tensor x = Tensor::from_data({4, 2}, {1, 8, 3, 2, -1, 0, 5, -4});
  Tensor mx = ops::segment_max(x, 2);
  EXPECT_FLOAT_EQ(mx.at(0), 3.0f);
  EXPECT_FLOAT_EQ(mx.at(1), 8.0f);
  EXPECT_FLOAT_EQ(mx.at(2), 5.0f);
  EXPECT_FLOAT_EQ(mx.at(3), 0.0f);
  Tensor sm = ops::segment_sum(x, 2);
  EXPECT_FLOAT_EQ(sm.at(0), 4.0f);
  EXPECT_FLOAT_EQ(sm.at(3), -4.0f);
  Tensor mn = ops::segment_mean(x, 2);
  EXPECT_FLOAT_EQ(mn.at(0), 2.0f);
}

TEST(OpsForward, SegmentSoftmaxNormalizes) {
  Rng rng(3);
  Tensor x = Tensor::from_data({6, 3}, random_values(18, rng, -2, 2));
  Tensor y = ops::segment_softmax(x, 3);
  // Each (segment, channel) column of 3 entries sums to 1.
  for (int seg = 0; seg < 2; ++seg) {
    for (int ch = 0; ch < 3; ++ch) {
      float s = 0.0f;
      for (int r = 0; r < 3; ++r) s += y.at((seg * 3 + r) * 3 + ch);
      EXPECT_NEAR(s, 1.0f, 1e-5f);
    }
  }
}

TEST(OpsForward, LogSoftmaxRowsAndArgmax) {
  Tensor x = Tensor::from_data({2, 3}, {1, 2, 3, 5, 1, 1});
  Tensor lp = ops::log_softmax_rows(x);
  for (int i = 0; i < 2; ++i) {
    float s = 0.0f;
    for (int j = 0; j < 3; ++j) s += std::exp(lp.at(i * 3 + j));
    EXPECT_NEAR(s, 1.0f, 1e-5f);
  }
  const auto am = ops::argmax_rows(x);
  EXPECT_EQ(am[0], 2);
  EXPECT_EQ(am[1], 0);
}

TEST(OpsForward, ScatterAddCols) {
  Tensor base = Tensor::zeros({2, 4});
  Tensor delta = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  Tensor y = ops::scatter_add_cols(base, delta, 1);
  EXPECT_FLOAT_EQ(y.at(0), 0.0f);
  EXPECT_FLOAT_EQ(y.at(1), 1.0f);
  EXPECT_FLOAT_EQ(y.at(2), 2.0f);
  EXPECT_FLOAT_EQ(y.at(3), 0.0f);
  EXPECT_FLOAT_EQ(y.at(5), 3.0f);
}

// ---------------------------------------------------------------------------
// Gradient checks (finite differences) for every differentiable op.
// ---------------------------------------------------------------------------

TEST(OpsGradcheck, Elementwise) {
  Rng rng(11);
  const Shape shape{3, 4};
  auto other = Tensor::from_data(shape, random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::add(x, other)); }, shape,
                   random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::sub(other, x)); }, shape,
                   random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::mul(x, other)); }, shape,
                   random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::mul(x, x)); }, shape,
                   random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::scale(x, -1.7f)); }, shape,
                   random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::square(x)); }, shape,
                   random_values(12, rng));
}

TEST(OpsGradcheck, Nonlinearities) {
  Rng rng(13);
  const Shape shape{2, 5};
  // Keep relu inputs away from the kink.
  std::vector<float> vals = random_values(10, rng, 0.2f, 1.0f);
  for (size_t i = 0; i < vals.size(); i += 2) vals[i] = -vals[i];
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::relu(x)); }, shape, vals);
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::leaky_relu(x, 0.2f)); },
                   shape, vals);
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::tanh_op(x)); }, shape,
                   random_values(10, rng));
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::sigmoid(x)); }, shape,
                   random_values(10, rng));
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::sqrt_op(x, 1e-6f)); }, shape,
                   random_values(10, rng, 0.5f, 2.0f));
}

TEST(OpsGradcheck, MatmulBothSides) {
  Rng rng(17);
  Tensor b = Tensor::from_data({4, 2}, random_values(8, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::matmul(x, b)); }, {3, 4},
                   random_values(12, rng));
  Tensor a = Tensor::from_data({3, 4}, random_values(12, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::matmul(a, x)); }, {4, 2},
                   random_values(8, rng));
}

TEST(OpsGradcheck, AddRowvecBothSides) {
  Rng rng(19);
  Tensor bias = Tensor::from_data({3}, random_values(3, rng));
  expect_gradcheck([&](const Tensor& x) { return ops::sum(ops::add_rowvec(x, bias)); },
                   {4, 3}, random_values(12, rng));
  Tensor x0 = Tensor::from_data({4, 3}, random_values(12, rng));
  expect_gradcheck(
      [&](const Tensor& b) { return ops::sum(ops::mul(ops::add_rowvec(x0, b),
                                                      ops::add_rowvec(x0, b))); },
      {3}, random_values(3, rng));
}

TEST(OpsGradcheck, StructureOps) {
  Rng rng(23);
  expect_gradcheck(
      [](const Tensor& x) { return ops::sum(ops::square(ops::gather_rows(x, {2, 0, 2, 1}))); },
      {3, 2}, random_values(6, rng));
  expect_gradcheck(
      [](const Tensor& x) { return ops::sum(ops::square(ops::repeat_rows(x, 3))); }, {2, 2},
      random_values(4, rng));
  Tensor other = Tensor::from_data({3, 2}, random_values(6, rng));
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::sum(ops::square(ops::concat_cols(x, other)));
      },
      {3, 2}, random_values(6, rng));
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::sum(ops::square(ops::concat_cols(other, x)));
      },
      {3, 2}, random_values(6, rng));
  expect_gradcheck(
      [](const Tensor& x) { return ops::sum(ops::square(ops::slice_cols(x, 1, 3))); },
      {3, 4}, random_values(12, rng));
  expect_gradcheck(
      [](const Tensor& x) {
        return ops::sum(ops::square(
            ops::weighted_gather_rows(x, {0, 1, 2, 1}, {0.3f, 0.7f, 0.6f, 0.4f}, 2)));
      },
      {3, 2}, random_values(6, rng));
  Tensor base = Tensor::from_data({3, 5}, random_values(15, rng));
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::sum(ops::square(ops::scatter_add_cols(base, x, 2)));
      },
      {3, 2}, random_values(6, rng));
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::square(ops::row_sum(x))); },
                   {4, 3}, random_values(12, rng));
}

TEST(OpsGradcheck, SegmentOps) {
  Rng rng(29);
  // Distinct values so segment_max argmaxes are stable under perturbation.
  std::vector<float> vals(12);
  for (size_t i = 0; i < vals.size(); ++i) {
    vals[i] = static_cast<float>(i % 2 ? 1 : -1) * (0.3f + 0.21f * static_cast<float>(i));
  }
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::square(ops::segment_max(x, 2))); },
                   {6, 2}, vals);
  expect_gradcheck([](const Tensor& x) { return ops::sum(ops::square(ops::segment_sum(x, 3))); },
                   {6, 2}, random_values(12, rng));
  expect_gradcheck(
      [](const Tensor& x) { return ops::sum(ops::square(ops::segment_mean(x, 3))); },
      {6, 2}, random_values(12, rng));
  expect_gradcheck(
      [](const Tensor& x) {
        Tensor w = ops::segment_softmax(x, 3);
        return ops::sum(ops::square(w));
      },
      {6, 2}, random_values(12, rng));
}

TEST(OpsGradcheck, LogSoftmaxAndNll) {
  Rng rng(31);
  expect_gradcheck(
      [](const Tensor& x) { return ops::sum(ops::square(ops::log_softmax_rows(x))); },
      {3, 4}, random_values(12, rng));
  const std::vector<int> labels{1, 3, 0};
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::nll_loss_masked(ops::log_softmax_rows(x), labels, {});
      },
      {3, 4}, random_values(12, rng));
  const std::vector<std::uint8_t> mask{1, 0, 1};
  expect_gradcheck(
      [&](const Tensor& x) {
        return ops::nll_loss_masked(ops::log_softmax_rows(x), labels, mask);
      },
      {3, 4}, random_values(12, rng));
}

TEST(OpsGradcheck, HingeMarginLoss) {
  Rng rng(37);
  const std::vector<int> labels{0, 2, 1, 2};
  // Well-separated logits keep the active set stable under perturbation.
  std::vector<float> vals{0.9f, 0.1f, -0.4f, 0.2f, 0.8f, -0.9f,
                          1.4f, 0.3f, -0.2f, -0.6f, 0.5f, 1.2f};
  expect_gradcheck(
      [&](const Tensor& x) { return ops::hinge_margin_loss(x, labels, {}, true); }, {4, 3},
      vals);
  expect_gradcheck(
      [&](const Tensor& x) { return ops::hinge_margin_loss(x, labels, {}, false); }, {4, 3},
      vals);
  const std::vector<std::uint8_t> mask{1, 1, 0, 1};
  expect_gradcheck(
      [&](const Tensor& x) { return ops::hinge_margin_loss(x, labels, mask, false); },
      {4, 3}, vals);
}

TEST(OpsGradcheck, SmoothnessPenalty) {
  // 4 points, alpha=2 neighbors, well separated to avoid the sqrt kink.
  const std::vector<std::int64_t> nbr{1, 2, 0, 3, 3, 0, 2, 1};
  std::vector<float> vals{0.0f, 0.0f, 1.0f, 0.2f, 0.1f, 1.3f, 1.2f, 1.1f};
  expect_gradcheck(
      [&](const Tensor& x) { return ops::smoothness_penalty(x, nbr, 2); }, {4, 2}, vals,
      1e-3f, 3e-2f);
}

TEST(OpsGradcheck, BatchNormTrainingAndEval) {
  Rng rng(41);
  Tensor gamma = Tensor::from_data({3}, {1.2f, 0.8f, 1.0f});
  Tensor beta = Tensor::from_data({3}, {0.1f, -0.2f, 0.0f});
  expect_gradcheck(
      [&](const Tensor& x) {
        std::vector<float> rm(3, 0.0f), rv(3, 1.0f);
        return ops::sum(
            ops::square(ops::batch_norm(x, gamma, beta, rm, rv, /*training=*/true)));
      },
      {5, 3}, random_values(15, rng), 1e-3f, 5e-2f);
  std::vector<float> rm{0.1f, -0.3f, 0.2f}, rv{1.5f, 0.7f, 1.1f};
  expect_gradcheck(
      [&](const Tensor& x) {
        std::vector<float> rm2 = rm, rv2 = rv;
        return ops::sum(
            ops::square(ops::batch_norm(x, gamma, beta, rm2, rv2, /*training=*/false)));
      },
      {5, 3}, random_values(15, rng));
}

TEST(OpsGradcheck, DropoutEvalIsIdentity) {
  Rng rng(43);
  Tensor x = Tensor::from_data({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor y = ops::dropout(x, 0.5f, rng, /*training=*/false);
  for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(y.at(i), x.at(i));
}

TEST(OpsGradcheck, DropoutTrainingMaskAndScale) {
  Rng rng(47);
  Tensor x = Tensor::full({1000}, 1.0f);
  x.set_requires_grad(true);
  Tensor y = ops::dropout(x, 0.25f, rng, /*training=*/true);
  int zeros = 0;
  for (int i = 0; i < 1000; ++i) {
    if (y.at(i) == 0.0f) {
      ++zeros;
    } else {
      EXPECT_NEAR(y.at(i), 1.0f / 0.75f, 1e-5f);
    }
  }
  EXPECT_NEAR(zeros, 250, 60);
  ops::sum(y).backward();
  // Gradient is the same mask/scale pattern.
  for (int i = 0; i < 1000; ++i) {
    if (y.at(i) == 0.0f) {
      EXPECT_FLOAT_EQ(x.grad()[static_cast<size_t>(i)], 0.0f);
    } else {
      EXPECT_NEAR(x.grad()[static_cast<size_t>(i)], 1.0f / 0.75f, 1e-5f);
    }
  }
}

// Property sweep: sum/mean/row_sum agree with hand computation across
// many shapes.
class ReductionShapes : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(ReductionShapes, SumMeanConsistent) {
  const auto [n, c] = GetParam();
  Rng rng(static_cast<std::uint64_t>(n * 100 + c));
  std::vector<float> vals = random_values(n * c, rng);
  Tensor x = Tensor::from_data({n, c}, vals);
  double expect = 0.0;
  for (float v : vals) expect += v;
  EXPECT_NEAR(ops::sum(x).item(), expect, 1e-3);
  EXPECT_NEAR(ops::mean(x).item(), expect / (n * c), 1e-4);
  Tensor rs = ops::row_sum(x);
  double row0 = 0.0;
  for (int j = 0; j < c; ++j) row0 += vals[static_cast<size_t>(j)];
  EXPECT_NEAR(rs.at(0), row0, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ReductionShapes,
                         ::testing::Values(std::pair{1, 1}, std::pair{1, 7},
                                           std::pair{5, 1}, std::pair{8, 16},
                                           std::pair{33, 3}));

}  // namespace
