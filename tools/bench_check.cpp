// bench_check — machine-checked perf-regression gate over the BENCH_*
// JSON trail that bench_attack_step_cost (and friends) emit.
//
//   bench_check <current.json> <baseline.json> [options]
//
//   --threshold F     fail when current ms_per_iteration exceeds the
//                     baseline's by more than F (fraction; default 0.10)
//   --min-speedup R   additionally require baseline_ms / current_ms >= R
//                     for every compared benchmark (default: off)
//   --filter SUBSTR   only compare benchmarks whose name contains SUBSTR
//                     (e.g. BM_AttackStep)
//
// Exit status: 0 when every compared benchmark passes, 1 on regression
// (or when the filter matches nothing — a silently-empty gate would
// "pass" forever). Both files use the BENCH_step_cost.json layout:
// {"results": [{"name": ..., "ms_per_iteration": ...}, ...]}.
//
// Two deployment modes, both used by CI:
//   - same-machine A/B: run the bench twice (PCSS_SIMD=scalar, =avx2)
//     and gate avx2 against scalar — hardware-independent, tight
//     threshold;
//   - trail gate: compare a fresh run against the committed baseline in
//     bench/baselines/. Absolute times move with the host, so CI uses a
//     generous threshold there and the tight default is for the dev box
//     that recorded the baseline.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pcss/runner/json.h"

namespace {

using pcss::runner::Json;

struct Entry {
  double ms = 0.0;
};

std::map<std::string, Entry> load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "bench_check: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Json doc = Json::parse(buffer.str());
  std::map<std::string, Entry> out;
  for (const Json& r : doc.at("results").items()) {
    out[r.at("name").str()] = {r.at("ms_per_iteration").number()};
  }
  return out;
}

void usage(std::FILE* to) {
  std::fprintf(to,
               "usage: bench_check <current.json> <baseline.json> "
               "[--threshold F] [--min-speedup R] [--filter SUBSTR]\n"
               "Compares ms_per_iteration between two BENCH_*.json files; "
               "exit 0 when every benchmark is within threshold, 1 on "
               "regression or an empty comparison, 2 on usage errors.\n");
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
  }
  if (argc < 3) {
    usage(stderr);
    return 2;
  }
  const std::string current_path = argv[1];
  const std::string baseline_path = argv[2];
  double threshold = 0.10;
  double min_speedup = 0.0;
  std::string filter;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--threshold") {
      threshold = std::atof(next());
    } else if (arg == "--min-speedup") {
      min_speedup = std::atof(next());
    } else if (arg == "--filter") {
      filter = next();
    } else {
      usage(stderr);
      return 2;
    }
  }

  const auto current = load(current_path);
  const auto baseline = load(baseline_path);

  int compared = 0;
  int failures = 0;
  std::printf("%-30s %12s %12s %9s  %s\n", "benchmark", "current ms", "baseline ms",
              "ratio", "verdict");
  for (const auto& [name, base] : baseline) {
    if (!filter.empty() && name.find(filter) == std::string::npos) continue;
    const auto it = current.find(name);
    if (it == current.end()) {
      std::printf("%-30s %12s %12.3f %9s  MISSING from current run\n", name.c_str(),
                  "-", base.ms, "-");
      ++failures;
      continue;
    }
    ++compared;
    const double ratio = base.ms > 0.0 ? base.ms / it->second.ms : 0.0;
    const bool regressed = it->second.ms > base.ms * (1.0 + threshold);
    const bool too_slow = min_speedup > 0.0 && ratio < min_speedup;
    const char* verdict = regressed  ? "REGRESSION"
                          : too_slow ? "BELOW MIN SPEEDUP"
                                     : "ok";
    if (regressed || too_slow) ++failures;
    std::printf("%-30s %12.3f %12.3f %8.2fx  %s\n", name.c_str(), it->second.ms,
                base.ms, ratio, verdict);
  }
  if (compared == 0) {
    std::fprintf(stderr, "bench_check: no benchmarks compared (filter \"%s\")\n",
                 filter.c_str());
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr,
                 "bench_check: %d failure(s) (threshold %.0f%%%s) — %s vs %s\n",
                 failures, threshold * 100.0,
                 min_speedup > 0.0
                     ? (" / min-speedup " + std::to_string(min_speedup)).c_str()
                     : "",
                 current_path.c_str(), baseline_path.c_str());
    return 1;
  }
  std::printf("bench_check: all %d benchmark(s) within threshold\n", compared);
  return 0;
}
