// pcss_trace — summarizes a Chrome trace-event JSON file produced by
// `pcss_run --trace out.json` (or any pcss::obs::trace drain):
//
//   pcss_trace <trace.json> [--top N]
//
// Reports, in order:
//   * top spans by total self-time (dur minus direct children), the
//     first place to look when a run is slower than expected;
//   * the per-shard timeline (runner.shard spans with their cache_hit
//     annotation), which shows resume points and cache behavior;
//   * a straggler report: live shards whose wall time exceeds
//     max(1.5 x median, mean + 2 sigma) of the live-shard distribution;
//   * per-thread utilization (busy fraction of the trace's wall span).
//
// Reads only the trace sidecar — result documents are never involved
// (telemetry stays strictly out of the document/cache path).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "pcss/runner/json.h"

namespace {

using pcss::runner::Json;

struct Span {
  std::string name;
  long long tid = 0;
  double ts = 0.0;   // microseconds from trace start
  double dur = 0.0;  // microseconds
  double self = 0.0;
  long long cache_hit = -1;  // -1 = no annotation
  long long step = -1;
};

std::vector<Span> load_spans(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  const Json doc = Json::parse(buf.str());
  const Json* events = doc.find("traceEvents");
  if (events == nullptr) throw std::runtime_error("not a Chrome trace: no traceEvents");
  std::vector<Span> spans;
  for (const Json& e : events->items()) {
    const Json* ph = e.find("ph");
    if (ph == nullptr || ph->str() != "X") continue;  // only complete events
    Span s;
    s.name = e.at("name").str();
    s.tid = static_cast<long long>(e.at("tid").number());
    s.ts = e.at("ts").number();
    s.dur = e.at("dur").number();
    if (const Json* args = e.find("args")) {
      if (const Json* hit = args->find("cache_hit")) {
        s.cache_hit = static_cast<long long>(hit->number());
      }
      if (const Json* step = args->find("step")) {
        s.step = static_cast<long long>(step->number());
      }
    }
    spans.push_back(std::move(s));
  }
  return spans;
}

/// Self-time: walk each thread's spans in start order with a stack of
/// open spans; a span's duration is charged to its innermost enclosing
/// span as child time. Complete events nest properly per thread (they
/// come from RAII scopes), so containment == parenthood.
void compute_self_times(std::vector<Span>& spans) {
  std::vector<std::size_t> order(spans.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (spans[a].tid != spans[b].tid) return spans[a].tid < spans[b].tid;
    if (spans[a].ts != spans[b].ts) return spans[a].ts < spans[b].ts;
    return spans[a].dur > spans[b].dur;  // parents before equal-start children
  });
  for (auto& s : spans) s.self = s.dur;
  std::vector<std::size_t> stack;
  long long current_tid = -1;
  for (std::size_t idx : order) {
    const Span& s = spans[idx];
    if (s.tid != current_tid) {
      stack.clear();
      current_tid = s.tid;
    }
    while (!stack.empty() &&
           spans[stack.back()].ts + spans[stack.back()].dur <= s.ts) {
      stack.pop_back();
    }
    if (!stack.empty()) spans[stack.back()].self -= s.dur;
    stack.push_back(idx);
  }
}

void print_top_self(const std::vector<Span>& spans, std::size_t top_n) {
  struct Agg {
    double self_us = 0.0;
    double total_us = 0.0;
    long long count = 0;
  };
  std::map<std::string, Agg> by_name;
  double grand_self = 0.0;
  for (const Span& s : spans) {
    Agg& a = by_name[s.name];
    a.self_us += s.self;
    a.total_us += s.dur;
    ++a.count;
    grand_self += s.self;
  }
  std::vector<std::pair<std::string, Agg>> rows(by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    if (a.second.self_us != b.second.self_us) return a.second.self_us > b.second.self_us;
    return a.first < b.first;
  });
  std::printf("top spans by self-time\n");
  std::printf("  %-24s %10s %8s %10s %9s\n", "span", "self(ms)", "share", "total(ms)",
              "count");
  for (std::size_t i = 0; i < rows.size() && i < top_n; ++i) {
    const auto& [name, agg] = rows[i];
    std::printf("  %-24s %10.2f %7.1f%% %10.2f %9lld\n", name.c_str(),
                agg.self_us / 1000.0,
                grand_self > 0.0 ? 100.0 * agg.self_us / grand_self : 0.0,
                agg.total_us / 1000.0, agg.count);
  }
}

void print_shard_timeline(const std::vector<Span>& spans) {
  std::vector<const Span*> shards;
  for (const Span& s : spans) {
    if (s.name == "runner.shard") shards.push_back(&s);
  }
  std::sort(shards.begin(), shards.end(),
            [](const Span* a, const Span* b) { return a->ts < b->ts; });
  if (shards.empty()) {
    std::printf("\nno runner.shard spans (trace predates the executor, or tracing was\n"
                "enabled mid-run)\n");
    return;
  }
  std::printf("\nshard timeline (%zu shards)\n", shards.size());
  std::printf("  %-6s %5s %12s %12s %s\n", "shard", "tid", "start(ms)", "wall(ms)",
              "source");
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Span& s = *shards[i];
    const char* source = s.cache_hit == 1   ? "cache"
                         : s.cache_hit == 0 ? "computed"
                                            : "?";
    std::printf("  %-6zu %5lld %12.2f %12.2f %s\n", i, s.tid, s.ts / 1000.0,
                s.dur / 1000.0, source);
  }

  // Straggler report over *live* shards only: cached replays are
  // microseconds and would drag the median to nothing.
  std::vector<double> live;
  for (const Span* s : shards) {
    if (s->cache_hit != 1) live.push_back(s->dur);
  }
  if (live.size() < 2) return;
  std::vector<double> sorted = live;
  std::sort(sorted.begin(), sorted.end());
  const double median = sorted[sorted.size() / 2];
  double mean = 0.0;
  for (double d : live) mean += d;
  mean /= static_cast<double>(live.size());
  double var = 0.0;
  for (double d : live) var += (d - mean) * (d - mean);
  var /= static_cast<double>(live.size());
  const double threshold = std::max(1.5 * median, mean + 2.0 * std::sqrt(var));
  std::printf("\nstraggler report (live shards; threshold %.2fms = "
              "max(1.5 x median %.2fms, mean %.2fms + 2 sigma))\n",
              threshold / 1000.0, median / 1000.0, mean / 1000.0);
  bool any = false;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    const Span& s = *shards[i];
    if (s.cache_hit == 1 || s.dur <= threshold) continue;
    std::printf("  shard %zu on tid %lld: %.2fms (%.1fx median)\n", i, s.tid,
                s.dur / 1000.0, median > 0.0 ? s.dur / median : 0.0);
    any = true;
  }
  if (!any) std::printf("  none\n");
}

void print_utilization(const std::vector<Span>& spans) {
  if (spans.empty()) return;
  double t0 = spans.front().ts, t1 = spans.front().ts + spans.front().dur;
  for (const Span& s : spans) {
    t0 = std::min(t0, s.ts);
    t1 = std::max(t1, s.ts + s.dur);
  }
  const double wall = t1 - t0;
  if (wall <= 0.0) return;
  // Busy time per thread = sum of self-times (self never double-counts
  // nested spans, so the fraction stays <= 1 without interval merging).
  std::map<long long, double> busy;
  for (const Span& s : spans) busy[s.tid] += s.self;
  std::printf("\nworker utilization (%.2fms traced wall)\n", wall / 1000.0);
  for (const auto& [tid, us] : busy) {
    std::printf("  tid %-4lld busy %10.2fms  (%5.1f%%)\n", tid, us / 1000.0,
                100.0 * us / wall);
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::size_t top_n = 10;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--top") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_trace: --top needs a value\n");
        return 2;
      }
      top_n = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: pcss_trace <trace.json> [--top N]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pcss_trace: unknown option '%s'\n", arg.c_str());
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "pcss_trace: one trace file at a time\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: pcss_trace <trace.json> [--top N]\n");
    return 2;
  }
  try {
    std::vector<Span> spans = load_spans(path);
    if (spans.empty()) {
      std::printf("empty trace (enable with --trace or PCSS_TRACE=1)\n");
      return 0;
    }
    compute_self_times(spans);
    print_top_self(spans, top_n);
    print_shard_timeline(spans);
    print_utilization(spans);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcss_trace: %s\n", e.what());
    return 1;
  }
  return 0;
}
