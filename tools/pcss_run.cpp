// pcss_run — the single entry point for regenerating paper numbers.
//
//   pcss_run list                     registered experiment specs
//   pcss_run run <spec...> [opts]     execute specs (cache-aware)
//   pcss_run show <spec...>           print stored result documents
//
// Results are content-addressed JSON documents under artifacts/results/
// (see DESIGN.md): rerunning an unchanged spec is a pure cache hit, and
// `--force` or any change to the spec, scale, or model weights
// recomputes under a new key.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/perf.h"
#include "pcss/runner/result_store.h"
#include "pcss/runner/scale.h"
#include "pcss/runner/zoo_provider.h"

namespace {

using namespace pcss::runner;

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: pcss_run <command> [arguments]\n"
               "\n"
               "commands:\n"
               "  list                      list the registered experiment specs\n"
               "  run <spec...> [options]   execute specs, reusing cached results\n"
               "  show <spec...>            print the stored result documents of specs\n"
               "\n"
               "run options:\n"
               "  --fast              CPU-smoke sizing (same as PCSS_FAST=1)\n"
               "  --force             recompute, ignoring document and shard caches\n"
               "  --threads N         AttackEngine worker threads (0 = hardware)\n"
               "  --shard-size N      clouds per cached shard (default 4)\n"
               "  --store DIR         result store root (default artifacts/results)\n"
               "  --trace FILE        record spans; write Chrome trace JSON to FILE\n"
               "                      (open in chrome://tracing or ui.perfetto.dev;\n"
               "                      same as PCSS_TRACE=1 plus a drain at exit)\n"
               "  --metrics           print the metrics-registry snapshot (JSON) after\n"
               "                      the runs\n"
               "  --metrics-out FILE  write that snapshot to FILE instead of stdout\n"
               "\n"
               "Telemetry never changes result documents or cache keys: --trace and\n"
               "--metrics observe a run whose stored bytes are identical either way.\n"
               "Progress heartbeats (one line per finished shard, with an ETA) go to\n"
               "stderr so stdout stays grep-stable for CI.\n");
  return code;
}

int unknown_spec(const std::string& name) {
  std::fprintf(stderr, "pcss_run: unknown spec '%s'; registered specs:\n", name.c_str());
  for (const ExperimentSpec& spec : spec_registry()) {
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  }
  return 2;
}

int cmd_list() {
  std::printf("%-14s %-8s %-7s %-9s  %s\n", "name", "dataset", "models", "variants", "title");
  for (const ExperimentSpec& spec : spec_registry()) {
    std::printf("%-14s %-8s %-7zu %-9zu  %s\n", spec.name.c_str(),
                to_string(spec.dataset), spec.models.size(), spec.variants.size(),
                spec.title.c_str());
  }
  return 0;
}

void print_record_row(const char* label, const pcss::core::CaseRecord& r,
                      const char* dist_name) {
  std::printf("    %-6s %s=%9.2f  Acc=%6.2f%%  aIoU=%6.2f%%\n", label, dist_name,
              r.distance, 100.0 * r.accuracy, 100.0 * r.aiou);
}

void print_document(const RunDocument& doc) {
  if (doc.kind == "defense_grid") {
    std::printf("  source %s, %d scenes, defenses seeded %llu\n", doc.source_model.c_str(),
                doc.scene_count, static_cast<unsigned long long>(doc.defense_seed));
    print_grid_matrix(doc);
    return;
  }
  const char* dist_name = doc.use_l0_distance ? "L0" : "L2";
  for (const ModelSection& section : doc.models) {
    std::printf("  %s (clean Acc=%.2f%%, aIoU=%.2f%%, %d scenes)\n", section.model.c_str(),
                100.0 * section.clean_accuracy, 100.0 * section.clean_aiou,
                doc.scene_count);
    for (const VariantResult& vr : section.variants) {
      if (vr.kind == VariantKind::kSharedDelta) {
        double before = 0.0, after = 0.0;
        for (double a : vr.accuracy_before) before += a;
        for (double a : vr.accuracy_after) after += a;
        const auto n = static_cast<double>(vr.accuracy_before.empty()
                                               ? 1
                                               : vr.accuracy_before.size());
        std::printf("   [%s]  mean Acc %.2f%% -> %.2f%%  (delta L2 %.2f, %d steps)\n",
                    vr.label.c_str(), 100.0 * before / n, 100.0 * after / n,
                    vr.shared_delta_l2, vr.shared_steps);
      } else {
        std::printf("   [%s]\n", vr.label.c_str());
        print_record_row("Best", vr.aggregate.best, dist_name);
        print_record_row("Avg", vr.aggregate.avg, dist_name);
        print_record_row("Worst", vr.aggregate.worst, dist_name);
      }
    }
  }
}

int cmd_run(const std::vector<std::string>& specs, const RunOptions& base_options,
            const std::string& store_root) {
  ZooModelProvider provider;
  ResultStore store(store_root);
  RunOptions options = base_options;
  // Heartbeat: one line per finished shard, to stderr — stdout carries
  // only the stable report + "[perf]" lines that CI greps. Pure
  // observation; the documents are byte-identical with or without it.
  options.on_progress = [](const ShardProgress& p) {
    if (p.eta_seconds > 0.0) {
      std::fprintf(stderr, "  [run] shard %d/%d done  (%d cached)  %.1fs elapsed  ETA %.1fs\n",
                   p.shards_done, p.shards_total, p.shards_from_cache, p.wall_seconds,
                   p.eta_seconds);
    } else {
      std::fprintf(stderr, "  [run] shard %d/%d done  (%d cached)  %.1fs elapsed\n",
                   p.shards_done, p.shards_total, p.shards_from_cache, p.wall_seconds);
    }
  };
  for (const std::string& name : specs) {
    const ExperimentSpec* spec = find_spec(name);
    if (spec == nullptr) return unknown_spec(name);
    std::printf("== %s — %s ==\n", spec->name.c_str(), spec->title.c_str());
    const RunOutcome out = run_spec(*spec, provider, store, options);
    print_document(out.document);
    if (out.cache_hit) {
      std::printf("  result: cache hit (0 attack steps executed)\n");
    } else {
      std::printf("  result: computed (%d/%d shards from cache)\n", out.shards_from_cache,
                  out.shards_total);
    }
    print_perf((spec->name + " run_spec").c_str(), out.wall_seconds, out.attack_steps);
    std::printf("  document: %s\n\n", out.path.c_str());
  }
  return 0;
}

int cmd_show(const std::vector<std::string>& specs, const std::string& store_root) {
  ResultStore store(store_root);
  int shown = 0;
  for (const std::string& name : specs) {
    if (find_spec(name) == nullptr) return unknown_spec(name);
    for (const std::string& key : store.list(name + "-")) {
      if (key.rfind("shards/", 0) == 0) continue;
      if (key.size() > 10 && key.compare(key.size() - 10, 10, ".perf.json") == 0) continue;
      const auto content = store.get(key);
      if (!content) continue;
      std::printf("-- %s --\n%s", store.path_for(key).c_str(), content->c_str());
      ++shown;
    }
  }
  if (shown == 0) {
    std::printf("no stored documents (run `pcss_run run <spec>` first; store: %s)\n",
                store.root().c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") return usage(0);
  if (command == "list") return cmd_list();

  std::vector<std::string> specs;
  RunOptions options;
  std::string store_root = ResultStore::default_root();
  std::string trace_path;
  std::string metrics_path;
  bool print_metrics = false;
  bool fast = fast_mode();
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--force") {
      options.force = true;
    } else if (arg == "--threads") {
      options.num_threads = int_value("--threads");
    } else if (arg == "--shard-size") {
      options.shard_size = int_value("--shard-size");
    } else if (arg == "--store") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: --store needs a value\n");
        return 2;
      }
      store_root = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: --trace needs an output file\n");
        return 2;
      }
      trace_path = argv[++i];
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--metrics-out") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: --metrics-out needs an output file\n");
        return 2;
      }
      metrics_path = argv[++i];
      print_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pcss_run: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else {
      specs.push_back(arg);
    }
  }
  options.fast = fast;
  options.scale = scale_for(fast);
  if (!trace_path.empty()) pcss::obs::trace::set_enabled(true);

  if (specs.empty()) {
    std::fprintf(stderr, "pcss_run: %s needs at least one spec name\n", command.c_str());
    return usage(2);
  }

  // Emits the telemetry artifacts after the runs (also on error paths:
  // a partial trace of a failed run is exactly when you want one).
  const auto emit_telemetry = [&] {
    if (!trace_path.empty()) {
      if (pcss::obs::trace::write_chrome_json(trace_path)) {
        const pcss::obs::trace::Stats stats = pcss::obs::trace::stats();
        std::fprintf(stderr, "  [obs] trace: %s (%llu events, %llu dropped, %zu threads)\n",
                     trace_path.c_str(),
                     static_cast<unsigned long long>(stats.buffered),
                     static_cast<unsigned long long>(stats.dropped), stats.threads);
      } else {
        std::fprintf(stderr, "pcss_run: cannot write trace file '%s'\n",
                     trace_path.c_str());
      }
    }
    if (print_metrics) {
      const std::string snapshot = pcss::obs::metrics::snapshot_json();
      if (metrics_path.empty()) {
        std::printf("%s\n", snapshot.c_str());
      } else {
        std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
        out << snapshot << "\n";
        if (out) {
          std::fprintf(stderr, "  [obs] metrics: %s\n", metrics_path.c_str());
        } else {
          std::fprintf(stderr, "pcss_run: cannot write metrics file '%s'\n",
                       metrics_path.c_str());
        }
      }
    }
  };

  try {
    if (command == "run") {
      const int code = cmd_run(specs, options, store_root);
      emit_telemetry();
      return code;
    }
    if (command == "show") return cmd_show(specs, store_root);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcss_run: %s\n", e.what());
    emit_telemetry();
    return 1;
  }
  std::fprintf(stderr, "pcss_run: unknown command '%s'\n", command.c_str());
  return usage(2);
}
