// pcss_run — the single entry point for regenerating paper numbers.
//
//   pcss_run list                     registered experiment specs
//   pcss_run run <spec...> [opts]     execute specs (cache-aware)
//   pcss_run show <spec...>           print stored result documents
//   pcss_run gc [opts]                sweep stale store temporaries/leases
//
// Results are content-addressed JSON documents under artifacts/results/
// (see DESIGN.md): rerunning an unchanged spec is a pure cache hit, and
// `--force` or any change to the spec, scale, or model weights
// recomputes under a new key.
//
// `run --workers N` re-execs this binary as N worker processes (hidden
// --worker-role flag) that claim shards coordinator-lessly through
// per-shard lease files in the store; the parent reaps them and then
// merges — an ordinary run over the warm shard cache. DESIGN.md §8 has
// the protocol and the byte-identity argument.
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/lease.h"
#include "pcss/runner/perf.h"
#include "pcss/runner/result_store.h"
#include "pcss/runner/scale.h"
#include "pcss/runner/zoo_provider.h"

namespace {

using namespace pcss::runner;

// Graceful cancel: handlers only set the flag; every loop that matters
// polls it at a shard (or wait) boundary, releases what it holds, and
// unwinds with the resumable message. No SA_RESTART, so blocking
// waitpid/nanosleep calls wake with EINTR and re-check the flag.
volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: pcss_run <command> [arguments]\n"
               "\n"
               "commands:\n"
               "  list                      list the registered experiment specs\n"
               "  run <spec...> [options]   execute specs, reusing cached results\n"
               "  show <spec...>            print the stored result documents of specs\n"
               "  gc [options]              remove stale .tmp files and dead leases\n"
               "\n"
               "run options:\n"
               "  --fast              CPU-smoke sizing (same as PCSS_FAST=1)\n"
               "  --force             recompute, ignoring document and shard caches\n"
               "  --threads N         AttackEngine worker threads (0 = hardware)\n"
               "  --shard-size N      clouds per cached shard (default 4)\n"
               "  --no-plan           disable compiled-plan replay in the attack loop\n"
               "                      (pure execution knob: bytes and cache keys are\n"
               "                      identical either way, only wall-clock changes)\n"
               "  --workers N         run N worker processes that claim shards via\n"
               "                      store leases, then merge; crash-safe and\n"
               "                      resumable, bytes identical to --workers 0\n"
               "  --lease-ttl SEC     shard-lease staleness deadline (default 300);\n"
               "                      a worker silent this long gets its shard stolen\n"
               "  --store DIR         result store root (default artifacts/results)\n"
               "  --trace FILE        record spans; write Chrome trace JSON to FILE\n"
               "                      (open in chrome://tracing or ui.perfetto.dev;\n"
               "                      same as PCSS_TRACE=1 plus a drain at exit)\n"
               "  --metrics           print the metrics-registry snapshot (JSON) after\n"
               "                      the runs\n"
               "  --metrics-out FILE  write that snapshot to FILE instead of stdout\n"
               "\n"
               "gc options:\n"
               "  --store DIR         result store root (default artifacts/results)\n"
               "  --tmp-age SEC       only remove .tmp files at least this old\n"
               "                      (default 3600; younger ones may be in-flight puts)\n"
               "\n"
               "Telemetry never changes result documents or cache keys: --trace and\n"
               "--metrics observe a run whose stored bytes are identical either way.\n"
               "Progress heartbeats (one line per finished shard, with an ETA) go to\n"
               "stderr so stdout stays grep-stable for CI.\n"
               "\n"
               "SIGINT/SIGTERM cancel gracefully at the next shard boundary: finished\n"
               "shards are cached, so rerunning the same command resumes the run.\n");
  return code;
}

int unknown_spec(const std::string& name) {
  std::fprintf(stderr, "pcss_run: unknown spec '%s'; registered specs:\n", name.c_str());
  for (const ExperimentSpec& spec : spec_registry()) {
    std::fprintf(stderr, "  %s\n", spec.name.c_str());
  }
  return 2;
}

int cmd_list() {
  std::printf("%-14s %-8s %-7s %-9s  %s\n", "name", "dataset", "models", "variants", "title");
  for (const ExperimentSpec& spec : spec_registry()) {
    std::printf("%-14s %-8s %-7zu %-9zu  %s\n", spec.name.c_str(),
                to_string(spec.dataset), spec.models.size(), spec.variants.size(),
                spec.title.c_str());
  }
  return 0;
}

void print_record_row(const char* label, const pcss::core::CaseRecord& r,
                      const char* dist_name) {
  std::printf("    %-6s %s=%9.2f  Acc=%6.2f%%  aIoU=%6.2f%%\n", label, dist_name,
              r.distance, 100.0 * r.accuracy, 100.0 * r.aiou);
}

void print_document(const RunDocument& doc) {
  if (doc.kind == "defense_grid") {
    std::printf("  source %s, %d scenes, defenses seeded %llu\n", doc.source_model.c_str(),
                doc.scene_count, static_cast<unsigned long long>(doc.defense_seed));
    print_grid_matrix(doc);
    return;
  }
  const char* dist_name = doc.use_l0_distance ? "L0" : "L2";
  for (const ModelSection& section : doc.models) {
    std::printf("  %s (clean Acc=%.2f%%, aIoU=%.2f%%, %d scenes)\n", section.model.c_str(),
                100.0 * section.clean_accuracy, 100.0 * section.clean_aiou,
                doc.scene_count);
    for (const VariantResult& vr : section.variants) {
      if (vr.kind == VariantKind::kSharedDelta) {
        double before = 0.0, after = 0.0;
        for (double a : vr.accuracy_before) before += a;
        for (double a : vr.accuracy_after) after += a;
        const auto n = static_cast<double>(vr.accuracy_before.empty()
                                               ? 1
                                               : vr.accuracy_before.size());
        std::printf("   [%s]  mean Acc %.2f%% -> %.2f%%  (delta L2 %.2f, %d steps)\n",
                    vr.label.c_str(), 100.0 * before / n, 100.0 * after / n,
                    vr.shared_delta_l2, vr.shared_steps);
      } else {
        std::printf("   [%s]\n", vr.label.c_str());
        print_record_row("Best", vr.aggregate.best, dist_name);
        print_record_row("Avg", vr.aggregate.avg, dist_name);
        print_record_row("Worst", vr.aggregate.worst, dist_name);
      }
    }
  }
}

int cmd_run(const std::vector<std::string>& specs, const RunOptions& base_options,
            const std::string& store_root) {
  ZooModelProvider provider;
  ResultStore store(store_root);
  RunOptions options = base_options;
  // Heartbeat: one line per finished shard, to stderr — stdout carries
  // only the stable report + "[perf]" lines that CI greps. Pure
  // observation; the documents are byte-identical with or without it.
  options.on_progress = [](const ShardProgress& p) {
    if (p.eta_seconds > 0.0) {
      std::fprintf(stderr, "  [run] shard %d/%d done  (%d cached)  %.1fs elapsed  ETA %.1fs\n",
                   p.shards_done, p.shards_total, p.shards_from_cache, p.wall_seconds,
                   p.eta_seconds);
    } else {
      std::fprintf(stderr, "  [run] shard %d/%d done  (%d cached)  %.1fs elapsed\n",
                   p.shards_done, p.shards_total, p.shards_from_cache, p.wall_seconds);
    }
  };
  options.cancel = [] { return g_signal != 0; };
  // Plan telemetry deltas per spec: the registry counters are
  // process-global, so the difference across one run_spec call is what
  // this spec's attack loops captured/replayed.
  pcss::obs::metrics::Counter& plan_captures = pcss::obs::metrics::counter("plan.captures");
  pcss::obs::metrics::Counter& plan_replays = pcss::obs::metrics::counter("plan.replays");
  pcss::obs::metrics::Counter& plan_fallbacks =
      pcss::obs::metrics::counter("plan.fallbacks");
  for (const std::string& name : specs) {
    const ExperimentSpec* spec = find_spec(name);
    if (spec == nullptr) return unknown_spec(name);
    std::printf("== %s — %s ==\n", spec->name.c_str(), spec->title.c_str());
    const std::uint64_t captures0 = plan_captures.value();
    const std::uint64_t replays0 = plan_replays.value();
    const std::uint64_t fallbacks0 = plan_fallbacks.value();
    const RunOutcome out = run_spec(*spec, provider, store, options);
    print_document(out.document);
    if (out.cache_hit) {
      std::printf("  result: cache hit (0 attack steps executed)\n");
    } else {
      std::printf("  result: computed (%d/%d shards from cache)\n", out.shards_from_cache,
                  out.shards_total);
    }
    print_perf((spec->name + " run_spec").c_str(), out.wall_seconds, out.attack_steps);
    std::printf("  [plan] captures=%llu replays=%llu fallbacks=%llu\n",
                static_cast<unsigned long long>(plan_captures.value() - captures0),
                static_cast<unsigned long long>(plan_replays.value() - replays0),
                static_cast<unsigned long long>(plan_fallbacks.value() - fallbacks0));
    std::printf("  document: %s\n\n", out.path.c_str());
  }
  return 0;
}

int cmd_show(const std::vector<std::string>& specs, const std::string& store_root) {
  ResultStore store(store_root);
  int shown = 0;
  for (const std::string& name : specs) {
    if (find_spec(name) == nullptr) return unknown_spec(name);
    for (const std::string& key : store.list(name + "-")) {
      if (key.rfind("shards/", 0) == 0) continue;
      if (key.size() > 10 && key.compare(key.size() - 10, 10, ".perf.json") == 0) continue;
      const auto content = store.get(key);
      if (!content) continue;
      std::printf("-- %s --\n%s", store.path_for(key).c_str(), content->c_str());
      ++shown;
    }
  }
  if (shown == 0) {
    std::printf("no stored documents (run `pcss_run run <spec>` first; store: %s)\n",
                store.root().c_str());
  }
  return 0;
}

int cmd_gc(const std::string& store_root, long long tmp_age_sec) {
  ResultStore store(store_root);
  const std::vector<std::string> removed = store.sweep_stale_tmps(tmp_age_sec);
  for (const std::string& name : removed) {
    std::printf("  removed tmp   %s\n", name.c_str());
  }
  // Lease staleness for gc reuses the tmp age gate: a lease is dead when
  // its holder's pid is gone, or its heartbeat is at least that old.
  LeaseManager leases(store_root + "/leases", "gc",
                      std::max(1LL, tmp_age_sec) * 1000000000LL);
  const int leases_removed = leases.sweep();
  std::printf("gc: removed %zu stale tmp file(s) and %d dead lease(s) (store: %s)\n",
              removed.size(), leases_removed, store.root().c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// Multi-process execution (run --workers N)
// ---------------------------------------------------------------------------

/// The worker role: claim and compute shards until every spec's plan is
/// complete, then exit. Never assembles documents — that is the
/// parent's merge pass.
int cmd_worker(const std::vector<std::string>& specs, const RunOptions& base_options,
               const std::string& store_root, const std::string& worker_id,
               long long lease_ttl_sec) {
  ZooModelProvider provider;
  ResultStore store(store_root);
  WorkerConfig config;
  config.run = base_options;
  config.run.cancel = [] { return g_signal != 0; };
  config.worker_id = worker_id;
  config.lease_ttl_ns = std::max(1LL, lease_ttl_sec) * 1000000000LL;
  bool cancelled = false;
  for (const std::string& name : specs) {
    const ExperimentSpec* spec = find_spec(name);
    if (spec == nullptr) return unknown_spec(name);
    const WorkerOutcome out = run_spec_worker(*spec, provider, store, config);
    std::fprintf(stderr,
                 "[worker %s] %s: %d shard(s) computed (%d stolen) in %d pass(es), "
                 "%lld steps%s%s\n",
                 worker_id.c_str(), name.c_str(), out.shards_computed, out.shards_stolen,
                 out.passes, out.attack_steps, out.doc_cached ? ", document cached" : "",
                 out.cancelled ? ", cancelled" : "");
    if (out.cancelled) {
      cancelled = true;
      break;
    }
  }
  // One metrics snapshot per worker life, next to its log — the parent
  // merge's sidecar cannot see child-process counters.
  std::error_code ec;
  std::filesystem::create_directories(store_root + "/logs", ec);
  std::ofstream snap(store_root + "/logs/" + worker_id + ".metrics.json",
                     std::ios::binary | std::ios::trunc);
  snap << pcss::obs::metrics::snapshot_json() << "\n";
  return cancelled ? 130 : 0;
}

struct WorkerProc {
  pid_t pid = -1;
  int index = 0;
  int restarts = 0;
  int status = 0;
  bool running = false;
};

/// fork + execv with stdout/stderr redirected to `log_path`. Everything
/// the child touches (argv, the log fd) is prepared before fork, so the
/// child runs only async-signal-safe calls — fork in a process that has
/// ever run worker-pool threads is otherwise a deadlock lottery.
pid_t spawn_worker(const std::string& exe, const std::vector<std::string>& args,
                   const std::string& log_path) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
  argv.push_back(nullptr);
  const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  const pid_t pid = ::fork();
  if (pid != 0) {
    if (log_fd >= 0) ::close(log_fd);
    return pid;
  }
  if (log_fd >= 0) {
    ::dup2(log_fd, 1);
    ::dup2(log_fd, 2);
    ::close(log_fd);
  }
  ::execv(exe.c_str(), argv.data());
  _exit(127);  // exec failed; the parent reports the status
}

std::string describe_status(int status) {
  if (WIFEXITED(status)) {
    return WEXITSTATUS(status) == 0 ? "exit 0"
                                    : "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    std::string text = "killed by signal " + std::to_string(WTERMSIG(status));
    if (WTERMSIG(status) == SIGKILL) text += " (SIGKILL)";
    return text;
  }
  return "unknown status";
}

/// The parent role: spawn N workers, reap them (respawning chaos-killed
/// ones within a budget), then merge. Worker death is degradation, not
/// failure — survivors steal the dead worker's leases, and the merge
/// pass computes anything nobody finished, so the run completes as long
/// as this process survives.
int cmd_run_workers(const std::vector<std::string>& specs, const RunOptions& base_options,
                    const std::string& store_root, int workers, long long lease_ttl_sec,
                    const std::string& exe) {
  for (const std::string& name : specs) {
    if (find_spec(name) == nullptr) return unknown_spec(name);
  }

  ResultStore store(store_root);
  {
    // Warm the model zoo before spawning: train-if-missing happens here
    // exactly once, so N workers never race to write one checkpoint.
    // Under --force, also clear the stored documents now — the workers
    // recompute every shard, and the merge below must reassemble from
    // those shards rather than replay a stale document.
    ZooModelProvider warm;
    for (const std::string& name : specs) {
      const ExperimentSpec* spec = find_spec(name);
      for (ModelId id : spec->models) warm.model_fingerprint(id);
      for (ModelId id : spec->victims) warm.model_fingerprint(id);
      if (base_options.force) {
        store.erase(run_key(*spec, base_options.scale, warm) + ".json");
      }
    }
  }

  std::error_code ec;
  std::filesystem::create_directories(store_root + "/logs", ec);

  // Split the machine across workers unless --threads was explicit.
  const auto hw = static_cast<int>(std::thread::hardware_concurrency());
  const int worker_threads =
      base_options.num_threads > 0
          ? base_options.num_threads
          : std::max(1, hw / std::max(1, workers));

  const auto args_for = [&](int index, int restart) {
    std::vector<std::string> args = {"pcss_run", "run"};
    for (const std::string& name : specs) args.push_back(name);
    std::string worker_id = "w";
    worker_id += std::to_string(index);
    worker_id += "-r";
    worker_id += std::to_string(restart);
    args.insert(args.end(), {"--worker-role", std::to_string(index),      //
                             "--worker-id", worker_id,                    //
                             "--store", store_root,                       //
                             "--shard-size", std::to_string(base_options.shard_size),
                             "--threads", std::to_string(worker_threads),
                             "--lease-ttl", std::to_string(lease_ttl_sec)});
    if (base_options.fast) args.push_back("--fast");
    if (base_options.force) args.push_back("--force");
    if (!base_options.plan) args.push_back("--no-plan");
    return args;
  };
  const auto log_for = [&](int index) {
    return store_root + "/logs/worker-" + std::to_string(index) + ".log";
  };

  std::vector<WorkerProc> procs(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    procs[i].index = i;
    procs[i].pid = spawn_worker(exe, args_for(i, 0), log_for(i));
    procs[i].running = procs[i].pid > 0;
    if (!procs[i].running) {
      std::fprintf(stderr, "pcss_run: fork failed for worker %d: %s\n", i,
                   std::strerror(errno));
    }
  }
  std::fprintf(stderr,
               "[workers] %d worker process(es), %d attack thread(s) each; logs under "
               "%s/logs/\n",
               workers, worker_threads, store_root.c_str());

  // Reap loop. A SIGKILLed worker is respawned only under PCSS_CHAOS —
  // that is the harness's own injection; outside chaos a kill (OOM, an
  // operator) degrades to the surviving workers plus the merge pass.
  const bool chaos = std::getenv("PCSS_CHAOS") != nullptr;
  const int max_restarts = 32;
  int restarts_total = 0;
  bool forwarded = false;
  const auto any_running = [&] {
    for (const WorkerProc& p : procs) {
      if (p.running) return true;
    }
    return false;
  };
  while (any_running()) {
    if (g_signal != 0 && !forwarded) {
      forwarded = true;
      std::fprintf(stderr, "[workers] signal %d: forwarding SIGTERM to workers\n",
                   static_cast<int>(g_signal));
      for (const WorkerProc& p : procs) {
        if (p.running) ::kill(p.pid, SIGTERM);
      }
    }
    int status = 0;
    const pid_t pid = ::waitpid(-1, &status, 0);
    if (pid < 0) {
      if (errno == EINTR) continue;  // re-check g_signal, keep reaping
      break;
    }
    for (WorkerProc& p : procs) {
      if (p.pid != pid) continue;
      p.running = false;
      p.status = status;
      const bool chaos_kill = WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL &&
                              chaos && g_signal == 0;
      if (chaos_kill && restarts_total < max_restarts) {
        ++restarts_total;
        ++p.restarts;
        pcss::obs::metrics::counter("runner.workers.restarts").add(1);
        p.pid = spawn_worker(exe, args_for(p.index, p.restarts), log_for(p.index));
        p.running = p.pid > 0;
        std::fprintf(stderr,
                     "[workers] worker %d chaos-killed; respawned as w%d-r%d (%d/%d "
                     "restarts used)\n",
                     p.index, p.index, p.restarts, restarts_total, max_restarts);
      }
      break;
    }
  }

  int failed = 0;
  for (const WorkerProc& p : procs) {
    std::string text = describe_status(p.status);
    if (p.restarts > 0) text += " after " + std::to_string(p.restarts) + " restart(s)";
    std::fprintf(stderr, "[workers] worker %d: %s\n", p.index, text.c_str());
    if (!(WIFEXITED(p.status) && WEXITSTATUS(p.status) == 0)) ++failed;
  }

  if (g_signal != 0) {
    std::fprintf(stderr,
                 "pcss_run: interrupted (signal %d); finished shards are cached — "
                 "resumable: rerun to continue\n",
                 static_cast<int>(g_signal));
    return 130;
  }
  if (failed > 0) {
    std::fprintf(stderr,
                 "[workers] %d worker(s) did not exit cleanly; the merge pass computes "
                 "whatever they left missing\n",
                 failed);
  }

  // Merge: an ordinary single-process run over the now-warm store. Any
  // shard the workers left behind (crashes beyond the restart budget)
  // is computed here, so the run completes whenever this process
  // survives — and the bytes equal a 1-process run's by the executor's
  // partitioning invariant, not by trusting the workers.
  RunOptions merge = base_options;
  merge.force = false;  // under --force the workers already recomputed the shards
  return cmd_run(specs, merge, store_root);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(2);
  const std::string command = argv[1];
  if (command == "help" || command == "--help" || command == "-h") return usage(0);
  if (command == "list") return cmd_list();
  install_signal_handlers();

  std::vector<std::string> specs;
  RunOptionsBuilder builder;
  std::string store_root = ResultStore::default_root();
  std::string trace_path;
  std::string metrics_path;
  bool print_metrics = false;
  bool fast = fast_mode();
  int workers = 0;
  long long lease_ttl_sec = 300;
  long long tmp_age_sec = 3600;
  int worker_role = -1;
  std::string worker_id;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto int_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::atoi(argv[++i]);
    };
    const auto str_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_run: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--fast") {
      fast = true;
    } else if (arg == "--force") {
      builder.force();
    } else if (arg == "--threads") {
      builder.threads(int_value("--threads"));
    } else if (arg == "--shard-size") {
      builder.shard_size(int_value("--shard-size"));
    } else if (arg == "--no-plan") {
      builder.plan(false);
    } else if (arg == "--workers") {
      workers = int_value("--workers");
    } else if (arg == "--lease-ttl") {
      lease_ttl_sec = int_value("--lease-ttl");
    } else if (arg == "--tmp-age") {
      tmp_age_sec = int_value("--tmp-age");
    } else if (arg == "--worker-role") {  // hidden: parent-spawned workers only
      worker_role = int_value("--worker-role");
    } else if (arg == "--worker-id") {  // hidden: parent-spawned workers only
      worker_id = str_value("--worker-id");
    } else if (arg == "--store") {
      store_root = str_value("--store");
    } else if (arg == "--trace") {
      trace_path = str_value("--trace");
    } else if (arg == "--metrics") {
      print_metrics = true;
    } else if (arg == "--metrics-out") {
      metrics_path = str_value("--metrics-out");
      print_metrics = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pcss_run: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else {
      specs.push_back(arg);
    }
  }
  const RunOptions options = builder.fast(fast).build();
  if (!trace_path.empty()) pcss::obs::trace::set_enabled(true);

  if (command == "gc") return cmd_gc(store_root, tmp_age_sec);

  if (specs.empty()) {
    std::fprintf(stderr, "pcss_run: %s needs at least one spec name\n", command.c_str());
    return usage(2);
  }

  // Emits the telemetry artifacts after the runs (also on error and
  // cancel paths: a partial trace of a failed run is exactly when you
  // want one).
  const auto emit_telemetry = [&] {
    if (!trace_path.empty()) {
      if (pcss::obs::trace::write_chrome_json(trace_path)) {
        const pcss::obs::trace::Stats stats = pcss::obs::trace::stats();
        std::fprintf(stderr, "  [obs] trace: %s (%llu events, %llu dropped, %zu threads)\n",
                     trace_path.c_str(),
                     static_cast<unsigned long long>(stats.buffered),
                     static_cast<unsigned long long>(stats.dropped), stats.threads);
      } else {
        std::fprintf(stderr, "pcss_run: cannot write trace file '%s'\n",
                     trace_path.c_str());
      }
    }
    if (print_metrics) {
      const std::string snapshot = pcss::obs::metrics::snapshot_json();
      if (metrics_path.empty()) {
        std::printf("%s\n", snapshot.c_str());
      } else {
        std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
        out << snapshot << "\n";
        if (out) {
          std::fprintf(stderr, "  [obs] metrics: %s\n", metrics_path.c_str());
        } else {
          std::fprintf(stderr, "pcss_run: cannot write metrics file '%s'\n",
                       metrics_path.c_str());
        }
      }
    }
  };

  try {
    if (command == "run") {
      int code = 0;
      if (worker_role >= 0) {
        if (worker_id.empty()) worker_id = "w" + std::to_string(worker_role);
        code = cmd_worker(specs, options, store_root, worker_id, lease_ttl_sec);
      } else if (workers > 0) {
        std::string exe = "/proc/self/exe";  // re-exec this exact binary
        if (::access(exe.c_str(), X_OK) != 0) exe = argv[0];
        code = cmd_run_workers(specs, options, store_root, workers, lease_ttl_sec, exe);
      } else {
        code = cmd_run(specs, options, store_root);
      }
      emit_telemetry();
      return code;
    }
    if (command == "show") return cmd_show(specs, store_root);
  } catch (const RunCancelled& e) {
    std::fprintf(stderr, "pcss_run: %s\n", e.what());
    emit_telemetry();
    return 130;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcss_run: %s\n", e.what());
    emit_telemetry();
    return 1;
  }
  std::fprintf(stderr, "pcss_run: unknown command '%s'\n", command.c_str());
  return usage(2);
}
