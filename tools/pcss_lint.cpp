// pcss_lint — repo-specific determinism & concurrency checker.
//
// Everything this system promises (warm content-addressed cache hits
// across thread counts, shard sizes, resume points and ISAs) rests on
// invariants no general-purpose tool knows about: fixed-order
// reductions, no FMA, pooled tensor storage, per-cloud RNG streams,
// insertion-ordered JSON. This tool machine-checks the source-level
// side of those rules so a single stray unordered_map iteration or
// rand() call cannot silently corrupt the result cache.
//
//   pcss_lint [options] <file-or-directory>...
//
//   --list-rules    print the rule table (ID, scope, rationale) and exit
//   --errors-only   print only error lines (no notes about suppressed
//                   diagnostics, no summary)
//   --help, -h      print usage and exit 0
//
// Directories are walked recursively for .h/.hpp/.cpp/.cc/.inc files;
// paths containing "lint_corpus" are skipped during recursion (the
// checked-in violation corpus must not fail CI) but are linted when
// named explicitly, which is how tests/lint_test.cpp drives them.
//
// A diagnostic is suppressed by `// pcss-lint: allow(RULE)` (multiple
// IDs comma-separated) on the offending line or the line directly
// above it. Suppressions are deliberate escape hatches and stay
// visible: suppressed findings are printed as notes unless
// --errors-only is given.
//
// Exit status: 0 clean, 1 at least one unsuppressed diagnostic,
// 2 usage or I/O error.
//
// Matching runs on comment- and string-stripped source, so prose like
// "rebuilt from malloc" or a pattern string in this very file cannot
// trigger a rule; suppression comments and GUARDS annotations are read
// from the raw line. The checks are line-based heuristics, not a
// parser — they are tuned to this repo's idiom, and the corpus under
// tests/lint_corpus/ pins their exact behaviour per rule.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Rule {
  const char* id;
  const char* scope;
  const char* summary;
};

// The rule table, in report order. Scopes are path substrings relative
// to the repo root (the corpus mirrors them under tests/lint_corpus/).
const Rule kRules[] = {
    {"D001", "everywhere",
     "no iteration over std::unordered_map/unordered_set: iteration order is "
     "implementation-defined and would leak into result documents"},
    {"D002", "src/core src/tensor src/runner",
     "no rand()/srand()/std::random_device/std::chrono-derived values on "
     "document paths: all randomness flows from seeded per-cloud Rng streams"},
    {"D003", "everywhere except src/tensor/pool.{h,cpp}",
     "no raw new[]/malloc of float/double buffers: tensor storage must come "
     "from the pool (alignment + steady-state reuse contract)"},
    {"D004", "src/tensor",
     "no std::fma/FP_CONTRACT pragmas in kernel sources: contraction breaks "
     "scalar==AVX2 and fused==unfused bit-identity (-ffp-contract=off is "
     "asserted by CMake on every tensor TU)"},
    {"D005", "everywhere except src/tensor/simd_kernels.inc",
     "no std::reduce / std::accumulate over floats: float reductions must use "
     "the fixed 8-lane kernels so summation order is pinned"},
    {"D006", "src/runner/{json,hash,result_store}.{h,cpp}",
     "no pcss::obs symbols in document-serialization or cache-key TUs: "
     "telemetry must never reach stored bytes or cache keys"},
    {"D007", "src/core src/tensor src/runner",
     "no pcss::serve symbols or includes in engine layers: the server is a "
     "transport over the runner and the dependency arrow is one-way"},
    {"D008", "src/tensor/plan.{h,cpp}",
     "no pool::acquire/acquire_zeroed in compiled-plan TUs: capture pins every "
     "buffer up front, so replay must be allocation-free by construction"},
    {"C001", "everywhere",
     "no direct std::thread construction outside the WorkerPool: ad-hoc "
     "threads bypass pool reuse, error propagation and shutdown"},
    {"C002", "everywhere",
     "mutex members must carry a // GUARDS: comment (same or previous line) "
     "naming the state they protect"},
};

struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
  bool suppressed = false;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when `token` occurs in `s` with non-identifier characters (or
/// the string boundary) on both sides. A token may itself contain "::".
bool has_token(const std::string& s, const std::string& token) {
  for (std::size_t pos = s.find(token); pos != std::string::npos;
       pos = s.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || (!ident_char(s[end]) && s[end] != ':');
    if (left_ok && right_ok) return true;
  }
  return false;
}

std::size_t find_token(const std::string& s, const std::string& token,
                       std::size_t from = 0) {
  for (std::size_t pos = s.find(token, from); pos != std::string::npos;
       pos = s.find(token, pos + 1)) {
    const bool left_ok = pos == 0 || !ident_char(s[pos - 1]);
    const std::size_t end = pos + token.size();
    const bool right_ok = end >= s.size() || !ident_char(s[end]);
    if (left_ok && right_ok) return pos;
  }
  return std::string::npos;
}

/// Strips comments and the *contents* of string/char literals while
/// preserving line structure, so rule patterns never match prose or
/// literals. Raw strings (R"delim(...)delim") are handled; the comment
/// text itself is only consulted via the raw lines (suppressions and
/// GUARDS annotations).
std::vector<std::string> scrub(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  enum class State { kCode, kBlockComment, kString, kChar, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for kRawString: ")delim" terminator
  for (const std::string& line : raw) {
    std::string code;
    code.reserve(line.size());
    for (std::size_t i = 0; i < line.size(); ++i) {
      const char c = line[i];
      const char next = i + 1 < line.size() ? line[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            i = line.size();  // rest of line is comment
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            ++i;
          } else if (c == 'R' && next == '"' &&
                     (i == 0 || !ident_char(line[i - 1]))) {
            const std::size_t open = line.find('(', i + 2);
            if (open != std::string::npos) {
              // Built char-wise into a fresh string: concatenation forms
              // trip gcc-12's -Wrestrict false positive under -Werror.
              std::string delim;
              delim.reserve(open - i);
              delim.push_back(')');
              for (std::size_t d = i + 2; d < open; ++d) delim.push_back(line[d]);
              delim.push_back('"');
              raw_delim = std::move(delim);
              state = State::kRawString;
              code += "\"\"";
              i = open;
            } else {
              code += c;  // malformed raw string; treat as code
            }
          } else if (c == '"') {
            state = State::kString;
            code += '"';
          } else if (c == '\'') {
            state = State::kChar;
            code += '\'';
          } else {
            code += c;
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            state = State::kCode;
            ++i;
          }
          break;
        case State::kString:
          if (c == '\\') {
            ++i;
          } else if (c == '"') {
            state = State::kCode;
            code += '"';
          }
          break;
        case State::kChar:
          if (c == '\\') {
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
            code += '\'';
          }
          break;
        case State::kRawString: {
          const std::size_t close = line.find(raw_delim, i);
          if (close != std::string::npos) {
            state = State::kCode;
            i = close + raw_delim.size() - 1;
          } else {
            i = line.size();
          }
          break;
        }
      }
    }
    // Strings/chars do not span lines (except raw strings, handled above).
    if (state == State::kString || state == State::kChar) state = State::kCode;
    out.push_back(std::move(code));
  }
  return out;
}

/// True when `line` (raw) carries a suppression for `rule`:
/// `// pcss-lint: allow(D001)` or `allow(D001, C001)`.
bool allows(const std::string& line, const std::string& rule) {
  const std::size_t marker = line.find("pcss-lint:");
  if (marker == std::string::npos) return false;
  const std::size_t open = line.find("allow(", marker);
  if (open == std::string::npos) return false;
  const std::size_t close = line.find(')', open);
  if (close == std::string::npos) return false;
  std::string list = line.substr(open + 6, close - open - 6);
  std::string item;
  std::istringstream is(list);
  while (std::getline(is, item, ',')) {
    item.erase(std::remove_if(item.begin(), item.end(),
                              [](unsigned char c) { return std::isspace(c); }),
               item.end());
    if (item == rule) return true;
  }
  return false;
}

/// Names of variables declared in this file as std::unordered_map or
/// std::unordered_set, found by skipping the balanced template argument
/// list after the container name.
std::vector<std::string> unordered_names(const std::vector<std::string>& code) {
  std::vector<std::string> names;
  for (const std::string& line : code) {
    for (const char* container : {"unordered_map", "unordered_set"}) {
      for (std::size_t pos = find_token(line, container); pos != std::string::npos;
           pos = find_token(line, container, pos + 1)) {
        std::size_t i = pos + std::string(container).size();
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        if (i >= line.size() || line[i] != '<') continue;
        int depth = 0;
        for (; i < line.size(); ++i) {
          if (line[i] == '<') ++depth;
          if (line[i] == '>' && --depth == 0) {
            ++i;
            break;
          }
        }
        if (depth != 0) continue;  // template args span lines: give up here
        while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
        std::size_t start = i;
        while (i < line.size() && ident_char(line[i])) ++i;
        if (i > start) names.push_back(line.substr(start, i - start));
      }
    }
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

/// D001: range-for over an unordered container, or explicit .begin()/
/// .cbegin() on one. find()/count()/operator[] stay legal (lookups do
/// not observe iteration order), and so does comparing an iterator to
/// .end() — iteration always needs a begin, so begin is what we flag.
void check_d001(const std::string& code, const std::vector<std::string>& names,
                std::vector<std::string>& hits) {
  for (const std::string& name : names) {
    for (std::size_t pos = find_token(code, name); pos != std::string::npos;
         pos = find_token(code, name, pos + 1)) {
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(code[before - 1]))) {
        --before;
      }
      const bool range_for = before > 0 && code[before - 1] == ':' &&
                             (before < 2 || code[before - 2] != ':') &&
                             find_token(code, "for") != std::string::npos;
      const std::string after = code.substr(pos + name.size());
      const bool begin_call =
          after.rfind(".begin(", 0) == 0 || after.rfind(".cbegin(", 0) == 0;
      if (range_for || begin_call) {
        hits.push_back("iteration over unordered container '" + name +
                       "' (order is implementation-defined)");
        break;
      }
    }
  }
}

struct FileReport {
  std::vector<Diagnostic> diags;
  bool io_error = false;
};

std::string normalized(const fs::path& p) {
  std::string s = p.generic_string();
  return s;
}

bool in_scope_d002(const std::string& path) {
  return path.find("src/core/") != std::string::npos ||
         path.find("src/tensor/") != std::string::npos ||
         path.find("src/runner/") != std::string::npos;
}

/// D006 covers the TUs whose bytes define documents and cache keys:
/// src/runner/{json,hash,result_store}.cpp plus their headers under
/// include/pcss/runner/. Matching on "runner/<name>." catches both.
bool in_scope_d006(const std::string& path) {
  return path.find("runner/json.") != std::string::npos ||
         path.find("runner/hash.") != std::string::npos ||
         path.find("runner/result_store.") != std::string::npos;
}

FileReport lint_file(const fs::path& filepath) {
  FileReport report;
  const std::string path = normalized(filepath);
  std::ifstream in(filepath);
  if (!in) {
    report.io_error = true;
    return report;
  }
  std::vector<std::string> raw;
  for (std::string line; std::getline(in, line);) raw.push_back(std::move(line));
  const std::vector<std::string> code = scrub(raw);
  const std::vector<std::string> names = unordered_names(code);

  const std::string base = filepath.filename().generic_string();
  const bool pool_file = path.find("src/tensor/pool.") != std::string::npos ||
                         base == "pool.cpp" || base == "pool.h";
  const bool kernel_inc = base == "simd_kernels.inc";
  const bool d002_scope = in_scope_d002(path);
  const bool d004_scope = path.find("src/tensor/") != std::string::npos;
  const bool d006_scope = in_scope_d006(path);
  // D008 covers the compiled-plan TUs: src/tensor/plan.cpp and its header
  // under include/pcss/tensor/. Matching on "tensor/plan." catches both.
  const bool d008_scope = path.find("tensor/plan.") != std::string::npos;

  auto emit = [&](int line_no, const char* rule, std::string message) {
    Diagnostic d;
    d.file = path;
    d.line = line_no + 1;
    d.rule = rule;
    d.message = std::move(message);
    d.suppressed = allows(raw[static_cast<std::size_t>(line_no)], rule) ||
                   (line_no > 0 && allows(raw[static_cast<std::size_t>(line_no) - 1], rule));
    report.diags.push_back(std::move(d));
  };

  for (std::size_t n = 0; n < code.size(); ++n) {
    const std::string& line = code[n];
    const int ln = static_cast<int>(n);

    // D001 — nondeterministic iteration order.
    std::vector<std::string> d001_hits;
    check_d001(line, names, d001_hits);
    for (std::string& msg : d001_hits) emit(ln, "D001", std::move(msg));

    // D002 — nondeterministic value sources on document paths.
    if (d002_scope) {
      for (const char* tok : {"rand", "srand", "random_device", "rand_r"}) {
        if (has_token(line, tok)) {
          emit(ln, "D002", std::string("'") + tok +
                               "' on a document path (use the seeded per-cloud "
                               "Rng streams)");
          break;
        }
      }
      if (line.find("std::chrono") != std::string::npos) {
        emit(ln, "D002",
             "std::chrono on a document path (wall-clock belongs in the "
             ".perf.json sidecar, never in cached documents)");
      }
    }

    // D003 — raw float storage outside the pool.
    if (!pool_file) {
      std::string collapsed;
      collapsed.reserve(line.size());
      for (char c : line) {
        if (!std::isspace(static_cast<unsigned char>(c))) collapsed += c;
      }
      if (collapsed.find("newfloat[") != std::string::npos ||
          collapsed.find("newdouble[") != std::string::npos) {
        emit(ln, "D003",
             "raw new[] of a float buffer (acquire it from pcss::tensor::pool "
             "so alignment and reuse contracts hold)");
      }
      for (const char* tok : {"malloc", "calloc", "realloc"}) {
        if (has_token(line, tok)) {
          emit(ln, "D003", std::string("'") + tok +
                               "' (tensor storage must come from "
                               "pcss::tensor::pool)");
          break;
        }
      }
    }

    // D004 — FP contraction in kernel sources.
    if (d004_scope) {
      if (has_token(line, "std::fma") || has_token(line, "fma") ||
          has_token(line, "fmaf")) {
        emit(ln, "D004",
             "explicit fma in a kernel source (breaks scalar==AVX2 and "
             "fused==unfused bit-identity)");
      }
      if (line.find("FP_CONTRACT") != std::string::npos ||
          line.find("fp_contract") != std::string::npos) {
        emit(ln, "D004",
             "FP_CONTRACT pragma in a kernel source (-ffp-contract=off is the "
             "build-wide contract)");
      }
    }

    // D005 — unordered float reductions outside the fixed-lane kernels.
    if (!kernel_inc) {
      if (has_token(line, "std::reduce")) {
        emit(ln, "D005",
             "std::reduce (unspecified operand order; use the fixed 8-lane "
             "reduction kernels)");
      }
      if (has_token(line, "std::accumulate") &&
          (line.find("float") != std::string::npos ||
           line.find("double") != std::string::npos ||
           line.find(".0f") != std::string::npos ||
           line.find("0.f") != std::string::npos ||
           line.find("0.0") != std::string::npos)) {
        emit(ln, "D005",
             "std::accumulate over floats (summation must go through the "
             "fixed 8-lane reduction kernels)");
      }
    }

    // D006 — telemetry in document-serialization / cache-key TUs. Any
    // obs:: symbol use counts (qualified pcss::obs:: included: the ':'
    // before "obs" is a non-identifier char, so it still matches); the
    // include check runs on the raw line because scrub() empties quoted
    // include paths.
    if (d006_scope) {
      bool obs_use = false;
      for (std::size_t pos = line.find("obs::"); pos != std::string::npos;
           pos = line.find("obs::", pos + 1)) {
        if (pos == 0 || !ident_char(line[pos - 1])) {
          obs_use = true;
          break;
        }
      }
      std::string lead = raw[n];
      lead.erase(0, lead.find_first_not_of(" \t"));
      const bool obs_include =
          lead.rfind("#include", 0) == 0 && lead.find("pcss/obs/") != std::string::npos;
      if (obs_use || obs_include) {
        emit(ln, "D006",
             "pcss::obs in a document-serialization/cache-key TU (telemetry "
             "must never reach stored bytes or cache keys)");
      }
    }

    // D007 — serving symbols in engine layers. The module order in
    // src/CMakeLists.txt makes serve the top layer over the runner; any
    // serve:: use (qualified pcss::serve:: included — the ':' before
    // "serve" is a non-identifier char, so it still matches) or
    // pcss/serve/ include inside src/{core,tensor,runner} would reverse
    // the arrow. Include check on the raw line: scrub() empties quoted
    // include paths. Shares the D002 scope — both fence the engine.
    if (d002_scope) {
      bool serve_use = false;
      for (std::size_t pos = line.find("serve::"); pos != std::string::npos;
           pos = line.find("serve::", pos + 1)) {
        if (pos == 0 || !ident_char(line[pos - 1])) {
          serve_use = true;
          break;
        }
      }
      std::string lead = raw[n];
      lead.erase(0, lead.find_first_not_of(" \t"));
      const bool serve_include =
          lead.rfind("#include", 0) == 0 && lead.find("pcss/serve/") != std::string::npos;
      if (serve_use || serve_include) {
        emit(ln, "D007",
             "pcss::serve in an engine layer (the server is a transport over "
             "the runner; the engine must never depend back on it)");
      }
    }

    // D008 — pool traffic in compiled-plan TUs. The plan layer's whole
    // contract is that capture pins every buffer and replay reuses them;
    // any acquire here would mean replays allocate. has_token's right
    // boundary rejects '_', so both spellings are checked explicitly.
    if (d008_scope) {
      for (const char* tok : {"acquire", "acquire_zeroed"}) {
        if (has_token(line, tok)) {
          emit(ln, "D008",
               std::string("'") + tok +
                   "' in a compiled-plan TU (capture pins every buffer; "
                   "replay must stay allocation-free)");
          break;
        }
      }
    }

    // C001 — ad-hoc threads.
    for (const char* tok : {"std::thread", "std::jthread"}) {
      std::size_t pos = line.find(tok);
      while (pos != std::string::npos) {
        const std::size_t end = pos + std::string(tok).size();
        const bool static_member =
            line.compare(end, 2, "::") == 0;  // std::thread::hardware_concurrency
        if (!static_member && (end >= line.size() || !ident_char(line[end]))) {
          emit(static_cast<int>(n), "C001",
               std::string(tok) +
                   " outside the WorkerPool (route parallel work through "
                   "parallel_for/WorkerPool)");
          break;
        }
        pos = line.find(tok, pos + 1);
      }
    }

    // C002 — unannotated mutex members.
    for (const char* mtype :
         {"std::mutex", "std::shared_mutex", "std::recursive_mutex",
          "std::timed_mutex", "std::shared_timed_mutex"}) {
      const std::size_t pos = line.find(mtype);
      if (pos == std::string::npos) continue;
      // Template argument (lock_guard<std::mutex>) or reference/pointer
      // parameter — not a declaration of lockable state.
      std::size_t before = pos;
      while (before > 0 && std::isspace(static_cast<unsigned char>(line[before - 1]))) {
        --before;
      }
      if (before > 0 && (line[before - 1] == '<' || line[before - 1] == ',')) continue;
      std::size_t i = pos + std::string(mtype).size();
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      if (i >= line.size() || !ident_char(line[i])) continue;  // &, *, >, (
      while (i < line.size() && ident_char(line[i])) ++i;
      while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
      if (i < line.size() && (line[i] == ';' || line[i] == '{' || line[i] == '=')) {
        // The annotation may sit on the declaration line or anywhere in
        // the contiguous comment block directly above it.
        bool annotated = raw[n].find("GUARDS:") != std::string::npos;
        for (std::size_t k = n; !annotated && k > 0; --k) {
          std::string trimmed = raw[k - 1];
          trimmed.erase(0, trimmed.find_first_not_of(" \t"));
          if (trimmed.rfind("//", 0) != 0) break;
          annotated = trimmed.find("GUARDS:") != std::string::npos;
        }
        if (!annotated) {
          emit(static_cast<int>(n), "C002",
               std::string("mutex declared without a // GUARDS: annotation "
                           "naming the state it protects"));
        }
      }
      break;
    }
  }
  return report;
}

bool lintable(const fs::path& p) {
  const std::string ext = p.extension().generic_string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".inc";
}

/// Expands arguments into a deterministic (sorted, deduplicated) file
/// list. Recursion skips the violation corpus; explicit paths never do.
std::vector<fs::path> collect(const std::vector<std::string>& args, bool& io_error) {
  std::vector<fs::path> files;
  for (const std::string& arg : args) {
    fs::path p(arg);
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (fs::recursive_directory_iterator it(p, ec), end; it != end; ++it) {
        if (normalized(it->path()).find("lint_corpus") != std::string::npos) continue;
        if (it->is_regular_file(ec) && lintable(it->path())) files.push_back(it->path());
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      std::fprintf(stderr, "pcss_lint: no such file or directory: %s\n", arg.c_str());
      io_error = true;
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: pcss_lint [--list-rules] [--errors-only] [--help] "
               "<file-or-directory>...\n"
               "Determinism & concurrency checks for the pcss tree; see "
               "DESIGN.md \"Determinism invariants & enforcement\".\n");
}

void print_rules() {
  std::printf("%-6s %-42s %s\n", "rule", "scope", "summary");
  for (const Rule& r : kRules) {
    std::printf("%-6s %-42s %s\n", r.id, r.scope, r.summary);
  }
  std::printf(
      "\nSuppress a finding with `// pcss-lint: allow(RULE)` on the "
      "offending line or the line above it.\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  bool errors_only = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage(stdout);
      return 0;
    } else if (arg == "--list-rules") {
      print_rules();
      return 0;
    } else if (arg == "--errors-only") {
      errors_only = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pcss_lint: unknown option %s\n", arg.c_str());
      print_usage(stderr);
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) {
    print_usage(stderr);
    return 2;
  }

  bool io_error = false;
  const std::vector<fs::path> files = collect(paths, io_error);
  int errors = 0;
  int suppressed = 0;
  for (const fs::path& f : files) {
    const FileReport report = lint_file(f);
    if (report.io_error) {
      std::fprintf(stderr, "pcss_lint: cannot read %s\n", normalized(f).c_str());
      io_error = true;
      continue;
    }
    for (const Diagnostic& d : report.diags) {
      if (d.suppressed) {
        ++suppressed;
        if (!errors_only) {
          std::printf("%s:%d: note: suppressed %s: %s\n", d.file.c_str(), d.line,
                      d.rule.c_str(), d.message.c_str());
        }
      } else {
        ++errors;
        std::printf("%s:%d: error: %s: %s\n", d.file.c_str(), d.line, d.rule.c_str(),
                    d.message.c_str());
      }
    }
  }
  if (!errors_only) {
    std::printf("pcss_lint: %d error(s), %d suppressed, %zu file(s)\n", errors,
                suppressed, files.size());
  }
  if (io_error) return 2;
  return errors > 0 ? 1 : 0;
}
