// pcss_client — submit one request to a running pcss_serve daemon.
//
//   pcss_client --socket PATH run <spec> [--fast] [--force] ...
//   pcss_client --host H --port N status | stats | shutdown
//
// Streams progress events to stderr and writes the result document's
// exact bytes to stdout, so shell pipelines can `cmp` a served document
// against a pcss_run-produced store file — the byte-identity check the
// tests and the CI serve job are built on.
#include <netdb.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "pcss/runner/json.h"
#include "pcss/serve/protocol.h"

namespace {

using pcss::runner::Json;

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: pcss_client (--socket PATH | --host HOST --port N) <command>\n"
               "\n"
               "commands:\n"
               "  run <spec> [--fast] [--force] [--threads N] [--shard-size N]\n"
               "      submit a run; progress goes to stderr, the result document's\n"
               "      exact bytes go to stdout\n"
               "  status     one-line server state\n"
               "  stats      metrics-registry snapshot (JSON, to stdout)\n"
               "  shutdown   ask the daemon to drain and exit\n"
               "\n"
               "exit status: 0 success; 1 connection/protocol failure; 4 + the\n"
               "server's error class (4xx -> 8, 5xx -> 9) on a server error event\n");
  return code;
}

int connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    ::close(fd);
    errno = ENAMETOOLONG;
    return -1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

int connect_tcp(const std::string& host, const std::string& port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* result = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &result) != 0) return -1;
  int fd = -1;
  for (addrinfo* ai = result; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(result);
  return fd;
}

/// Blocking buffered reader for the line + length-prefixed-payload
/// framing of the serve protocol.
class Reader {
 public:
  explicit Reader(int fd) : fd_(fd) {}

  /// One '\n'-terminated line (terminator stripped); false on EOF/error.
  bool read_line(std::string& line) {
    for (;;) {
      const std::size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        line = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        return true;
      }
      if (!fill()) return false;
    }
  }

  /// Exactly `n` raw bytes; false on premature EOF.
  bool read_exact(std::size_t n, std::string& out) {
    while (buffer_.size() < n) {
      if (!fill()) return false;
    }
    out = buffer_.substr(0, n);
    buffer_.erase(0, n);
    return true;
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t got = ::read(fd_, chunk, sizeof(chunk));
    if (got <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(got));
    return true;
  }

  int fd_;
  std::string buffer_;
};

bool send_all(int fd, const std::string& bytes) {
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t sent = ::send(fd, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (sent <= 0) return false;
    off += static_cast<std::size_t>(sent);
  }
  return true;
}

int server_error_exit(double code) {
  return code >= 500 ? 9 : 8;
}

const Json* member(const Json& line, const char* key) {
  return line.type() == Json::Type::kObject ? line.find(key) : nullptr;
}

std::string str_or(const Json& line, const char* key, const std::string& fallback) {
  const Json* value = member(line, key);
  return value != nullptr && value->type() == Json::Type::kString ? value->str()
                                                                  : fallback;
}

double num_or(const Json& line, const char* key, double fallback) {
  const Json* value = member(line, key);
  return value != nullptr && value->type() == Json::Type::kNumber ? value->number()
                                                                  : fallback;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string host;
  std::string port;
  std::string command;
  std::string spec;
  bool fast = false;
  bool force = false;
  int threads = -1;
  int shard_size = -1;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_client: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--socket") {
      socket_path = value("--socket");
    } else if (arg == "--host") {
      host = value("--host");
    } else if (arg == "--port") {
      port = value("--port");
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--force") {
      force = true;
    } else if (arg == "--threads") {
      threads = std::atoi(value("--threads").c_str());
    } else if (arg == "--shard-size") {
      shard_size = std::atoi(value("--shard-size").c_str());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "pcss_client: unknown option '%s'\n", arg.c_str());
      return usage(2);
    } else if (command.empty()) {
      command = arg;
    } else if (command == "run" && spec.empty()) {
      spec = arg;
    } else {
      std::fprintf(stderr, "pcss_client: unexpected argument '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  if (command.empty()) return usage(2);
  if (command == "run" && spec.empty()) {
    std::fprintf(stderr, "pcss_client: run needs a spec name\n");
    return usage(2);
  }
  if (socket_path.empty() && (host.empty() || port.empty())) {
    std::fprintf(stderr, "pcss_client: need --socket PATH or --host HOST --port N\n");
    return usage(2);
  }

  const int fd = socket_path.empty() ? connect_tcp(host, port) : connect_unix(socket_path);
  if (fd < 0) {
    std::fprintf(stderr, "pcss_client: cannot connect: %s\n", std::strerror(errno));
    return 1;
  }

  Json request = Json::object();
  if (command == "run") {
    request.set("kind", "run");
    request.set("spec", spec);
    if (force) request.set("force", true);
    if (fast) request.set("fast", true);
    if (threads >= 0) request.set("threads", threads);
    if (shard_size >= 1) request.set("shard_size", shard_size);
  } else if (command == "status" || command == "stats" || command == "shutdown") {
    request.set("kind", command);
  } else {
    std::fprintf(stderr, "pcss_client: unknown command '%s'\n", command.c_str());
    ::close(fd);
    return usage(2);
  }

  Reader reader(fd);
  std::string line;
  // The hello line is the readiness signal; a daemon that closes before
  // sending it was not actually serving.
  if (!reader.read_line(line)) {
    std::fprintf(stderr, "pcss_client: connection closed before hello\n");
    ::close(fd);
    return 1;
  }
  if (!send_all(fd, request.dump_compact() + "\n")) {
    std::fprintf(stderr, "pcss_client: send failed: %s\n", std::strerror(errno));
    ::close(fd);
    return 1;
  }

  int exit_code = 1;  // overwritten by a terminal event
  while (reader.read_line(line)) {
    Json event;
    try {
      event = Json::parse(line);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "pcss_client: bad response line: %s\n", e.what());
      exit_code = 1;
      break;
    }
    const std::string kind = str_or(event, "event", "");
    if (kind == "progress") {
      std::fprintf(stderr,
                   "  [serve] %s: shard %d/%d done (%d cached)  ETA %.1fs\n",
                   str_or(event, "spec", "?").c_str(),
                   static_cast<int>(num_or(event, "shards_done", 0)),
                   static_cast<int>(num_or(event, "shards_total", 0)),
                   static_cast<int>(num_or(event, "shards_from_cache", 0)),
                   num_or(event, "eta_seconds", 0.0));
      continue;
    }
    if (kind == "accepted") {
      std::fprintf(stderr, "  [serve] accepted %s (key %s%s)\n",
                   str_or(event, "spec", "?").c_str(), str_or(event, "key", "?").c_str(),
                   num_or(event, "coalesced", 0) != 0.0 ||
                           (member(event, "coalesced") != nullptr &&
                            member(event, "coalesced")->type() == Json::Type::kBool &&
                            member(event, "coalesced")->boolean())
                       ? ", coalesced"
                       : "");
      continue;
    }
    if (kind == "result" || kind == "stats") {
      const auto bytes = static_cast<std::size_t>(num_or(event, "bytes", 0));
      std::string payload;
      if (!reader.read_exact(bytes, payload)) {
        std::fprintf(stderr, "pcss_client: truncated payload\n");
        exit_code = 1;
        break;
      }
      if (kind == "result") {
        const Json* hit = member(event, "cache_hit");
        const Json* coalesced = member(event, "coalesced");
        std::fprintf(stderr, "  [serve] result: %s%s, %s attack steps\n",
                     hit != nullptr && hit->type() == Json::Type::kBool && hit->boolean()
                         ? "cache hit"
                         : "computed",
                     coalesced != nullptr && coalesced->type() == Json::Type::kBool &&
                             coalesced->boolean()
                         ? " (coalesced)"
                         : "",
                     Json(num_or(event, "attack_steps", 0)).dump_compact().c_str());
      }
      std::fwrite(payload.data(), 1, payload.size(), stdout);
      exit_code = 0;
      break;
    }
    if (kind == "status" || kind == "shutdown") {
      std::printf("%s\n", line.c_str());
      exit_code = 0;
      break;
    }
    if (kind == "error") {
      std::fprintf(stderr, "pcss_client: server error %d: %s\n",
                   static_cast<int>(num_or(event, "code", 0)),
                   str_or(event, "message", "?").c_str());
      exit_code = server_error_exit(num_or(event, "code", 0));
      break;
    }
    std::fprintf(stderr, "pcss_client: unexpected event '%s'\n", kind.c_str());
  }
  ::close(fd);
  return exit_code;
}
