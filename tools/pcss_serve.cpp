// pcss_serve — the long-running attack/eval daemon over the
// content-addressed result store.
//
//   pcss_serve [--config serve.conf] [overrides]
//
// Speaks the line-delimited JSON protocol of pcss/serve/protocol.h over
// a Unix-domain socket and/or loopback TCP. Requests resolve through
// the ordinary spec registry and execute via run_spec against the
// shared ResultStore, so identical in-flight requests coalesce into one
// computation, repeat requests are byte-level cache hits, and served
// documents are byte-identical to what `pcss_run` writes (DESIGN.md §9
// has the protocol grammar and the drain semantics).
//
// SIGTERM/SIGINT drain gracefully: stop accepting, give in-flight runs
// --drain-grace to finish, checkpoint-cancel the rest at a shard
// boundary (the store stays resumable), flush telemetry, exit 0.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/executor.h"
#include "pcss/runner/result_store.h"
#include "pcss/runner/scale.h"
#include "pcss/runner/zoo_provider.h"
#include "pcss/serve/config.h"
#include "pcss/serve/server.h"

namespace {

using namespace pcss::runner;
using namespace pcss::serve;

volatile std::sig_atomic_t g_signal = 0;

void handle_signal(int sig) { g_signal = sig; }

void install_signal_handlers() {
  struct sigaction sa {};
  sa.sa_handler = handle_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

int usage(int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: pcss_serve [options]\n"
               "\n"
               "options:\n"
               "  --config FILE       read a serve.conf (key = value per line; keys:\n"
               "                      port, socket, workers, queue_depth,\n"
               "                      max_inflight_per_client, idle_timeout_ms,\n"
               "                      read_timeout_ms, write_timeout_ms,\n"
               "                      max_line_bytes, drain_grace_ms, store)\n"
               "  --port N            loopback TCP listener (0 = disabled)\n"
               "  --socket PATH       Unix-domain listener path\n"
               "  --store DIR         result store root (default artifacts/results)\n"
               "  --workers N         concurrent run-request executors (default 2)\n"
               "  --queue-depth N     queued-request bound; beyond it requests are\n"
               "                      rejected 429-style (default 16)\n"
               "  --max-inflight N    per-connection in-flight request cap (default 4)\n"
               "  --drain-grace MS    SIGTERM: let in-flight runs finish this long\n"
               "                      before checkpoint-cancelling at a shard\n"
               "                      boundary (default 0 = cancel immediately)\n"
               "  --threads N         attack threads per request (0 = hardware)\n"
               "  --shard-size N      clouds per cached shard (default 4)\n"
               "  --no-plan           disable compiled-plan replay in the attack loop\n"
               "  --fast              serve CPU-smoke sizing (same as PCSS_FAST=1)\n"
               "  --no-warm           skip warming model fingerprints at startup\n"
               "  --trace FILE        record spans; write Chrome trace JSON on exit\n"
               "  --metrics-out FILE  write the metrics snapshot on exit\n"
               "\n"
               "The server is a transport, not a numerics path: a served document is\n"
               "byte-identical to the same spec run via pcss_run, and rerequesting it\n"
               "is a pure cache hit.\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  ServeConfig config;
  config.socket_path = "";  // require an explicit listener below
  std::string store_root = ResultStore::default_root();
  bool store_overridden = false;
  std::string trace_path;
  std::string metrics_path;
  bool fast = fast_mode();
  bool warm = true;
  RunOptionsBuilder builder;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "pcss_serve: %s needs a value\n", flag);
        std::exit(2);
      }
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") return usage(0);
    if (arg == "--config") {
      try {
        config = parse_config_file(value("--config"));
      } catch (const std::exception& e) {
        std::fprintf(stderr, "pcss_serve: %s\n", e.what());
        return 2;
      }
      if (!config.store_root.empty()) {
        store_root = config.store_root;
        store_overridden = true;
      }
    } else if (arg == "--port") {
      config.port = std::atoi(value("--port").c_str());
    } else if (arg == "--socket") {
      config.socket_path = value("--socket");
    } else if (arg == "--store") {
      store_root = value("--store");
      store_overridden = true;
    } else if (arg == "--workers") {
      config.workers = std::atoi(value("--workers").c_str());
    } else if (arg == "--queue-depth") {
      config.queue_depth = std::atoi(value("--queue-depth").c_str());
    } else if (arg == "--max-inflight") {
      config.max_inflight_per_client = std::atoi(value("--max-inflight").c_str());
    } else if (arg == "--drain-grace") {
      config.drain_grace_ms = std::atoll(value("--drain-grace").c_str());
    } else if (arg == "--threads") {
      builder.threads(std::atoi(value("--threads").c_str()));
    } else if (arg == "--shard-size") {
      builder.shard_size(std::atoi(value("--shard-size").c_str()));
    } else if (arg == "--no-plan") {
      builder.plan(false);
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--no-warm") {
      warm = false;
    } else if (arg == "--trace") {
      trace_path = value("--trace");
    } else if (arg == "--metrics-out") {
      metrics_path = value("--metrics-out");
    } else {
      std::fprintf(stderr, "pcss_serve: unknown option '%s'\n", arg.c_str());
      return usage(2);
    }
  }
  (void)store_overridden;
  const RunOptions base = builder.fast(fast).build();
  if (!trace_path.empty()) pcss::obs::trace::set_enabled(true);
  install_signal_handlers();

  try {
    validate(config);
    ZooModelProvider provider;
    ResultStore store(store_root);

    if (warm) {
      // Materialize every registry model's fingerprint now: the first
      // use may train-and-save a checkpoint, which must happen before
      // concurrent requests can race to do it (same reason pcss_run
      // --workers warms the zoo before forking).
      for (const ExperimentSpec& spec : spec_registry()) {
        for (ModelId id : spec.models) provider.model_fingerprint(id);
        for (ModelId id : spec.victims) provider.model_fingerprint(id);
      }
      std::fprintf(stderr, "[serve] model zoo warm\n");
    }

    ServerHooks hooks;
    hooks.should_drain = [] { return g_signal != 0; };
    Server server(config, [](const std::string& name) { return find_spec(name); },
                  provider, store, base, hooks);
    if (!config.socket_path.empty()) {
      std::fprintf(stderr, "[serve] listening on unix:%s\n", config.socket_path.c_str());
    }
    if (server.tcp_port() > 0) {
      std::fprintf(stderr, "[serve] listening on tcp:127.0.0.1:%d\n", server.tcp_port());
    }
    std::fprintf(stderr,
                 "[serve] %d worker(s), queue depth %d, max %d in-flight/client, "
                 "store %s\n",
                 config.workers, config.queue_depth, config.max_inflight_per_client,
                 store.root().c_str());

    const int casualties = server.run();
    if (g_signal != 0) {
      std::fprintf(stderr,
                   "[serve] signal %d: drained (%d request(s) cancelled; finished "
                   "shards are cached — the store is resumable)\n",
                   static_cast<int>(g_signal), casualties);
    }

    if (!trace_path.empty()) {
      if (pcss::obs::trace::write_chrome_json(trace_path)) {
        std::fprintf(stderr, "  [obs] trace: %s\n", trace_path.c_str());
      } else {
        std::fprintf(stderr, "pcss_serve: cannot write trace file '%s'\n",
                     trace_path.c_str());
      }
    }
    if (!metrics_path.empty()) {
      std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
      out << pcss::obs::metrics::snapshot_json() << "\n";
      if (out) {
        std::fprintf(stderr, "  [obs] metrics: %s\n", metrics_path.c_str());
      } else {
        std::fprintf(stderr, "pcss_serve: cannot write metrics file '%s'\n",
                     metrics_path.c_str());
      }
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcss_serve: %s\n", e.what());
    return 1;
  }
}
