#pragma once

#include <array>
#include <string>
#include <vector>

#include "pcss/pointcloud/point_cloud.h"

namespace pcss::viz {

using pcss::pointcloud::PointCloud;
using pcss::pointcloud::Vec3;

/// A simple RGB raster image with PPM output.
class Image {
 public:
  Image(int width, int height, Vec3 background = {1, 1, 1});

  int width() const { return width_; }
  int height() const { return height_; }
  void set_pixel(int x, int y, const Vec3& rgb);
  Vec3 pixel(int x, int y) const;

  /// Binary PPM (P6) — viewable everywhere, zero dependencies.
  void save_ppm(const std::string& path) const;

  /// Horizontal concatenation (for the paper's before/after figures).
  static Image hstack(const std::vector<Image>& images, int gap = 4);

 private:
  int width_, height_;
  std::vector<Vec3> pixels_;
};

/// Orthographic projection axis for rendering.
enum class ViewAxis { kTop, kFront, kSide };

/// Renders the cloud's RGB colors (the "scene" panels of Figs. 1/3/4/5).
Image render_cloud_colors(const PointCloud& cloud, int width, int height,
                          ViewAxis view = ViewAxis::kTop, int point_radius = 1);

/// Renders per-point labels with a categorical palette (the
/// "segmentation result" panels). Pass model predictions or ground truth.
Image render_cloud_labels(const PointCloud& cloud, const std::vector<int>& labels,
                          int width, int height, ViewAxis view = ViewAxis::kTop,
                          int point_radius = 1);

/// Categorical palette color for a label (13 distinct hues, cycling).
Vec3 label_color(int label);

}  // namespace pcss::viz
