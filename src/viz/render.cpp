#include "pcss/viz/render.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace pcss::viz {

Image::Image(int width, int height, Vec3 background)
    : width_(width), height_(height),
      pixels_(static_cast<size_t>(width) * static_cast<size_t>(height), background) {
  if (width <= 0 || height <= 0) throw std::invalid_argument("Image: bad dimensions");
}

void Image::set_pixel(int x, int y, const Vec3& rgb) {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return;
  pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) + static_cast<size_t>(x)] = rgb;
}

Vec3 Image::pixel(int x, int y) const {
  return pixels_[static_cast<size_t>(y) * static_cast<size_t>(width_) +
                 static_cast<size_t>(x)];
}

void Image::save_ppm(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_ppm: cannot open " + path);
  out << "P6\n" << width_ << ' ' << height_ << "\n255\n";
  for (const Vec3& p : pixels_) {
    for (int a = 0; a < 3; ++a) {
      out.put(static_cast<char>(
          std::lround(std::clamp(p[static_cast<size_t>(a)], 0.0f, 1.0f) * 255.0f)));
    }
  }
  if (!out) throw std::runtime_error("save_ppm: write failure for " + path);
}

Image Image::hstack(const std::vector<Image>& images, int gap) {
  if (images.empty()) throw std::invalid_argument("hstack: no images");
  int total_w = gap * (static_cast<int>(images.size()) - 1);
  int max_h = 0;
  for (const Image& im : images) {
    total_w += im.width();
    max_h = std::max(max_h, im.height());
  }
  Image out(total_w, max_h, {0.2f, 0.2f, 0.2f});
  int x0 = 0;
  for (const Image& im : images) {
    for (int y = 0; y < im.height(); ++y) {
      for (int x = 0; x < im.width(); ++x) out.set_pixel(x0 + x, y, im.pixel(x, y));
    }
    x0 += im.width() + gap;
  }
  return out;
}

namespace {

struct Projector {
  ViewAxis view;
  Vec3 min, max;

  std::array<float, 3> project(const Vec3& p) const {
    // Returns (u, v, depth) with u/v in [0,1].
    auto norm = [&](float v, int axis) {
      const float lo = min[static_cast<size_t>(axis)];
      const float hi = max[static_cast<size_t>(axis)];
      return hi - lo > 1e-6f ? (v - lo) / (hi - lo) : 0.5f;
    };
    switch (view) {
      case ViewAxis::kTop:
        return {norm(p[0], 0), norm(p[1], 1), norm(p[2], 2)};
      case ViewAxis::kFront:
        return {norm(p[0], 0), 1.0f - norm(p[2], 2), norm(p[1], 1)};
      case ViewAxis::kSide:
        return {norm(p[1], 1), 1.0f - norm(p[2], 2), norm(p[0], 0)};
    }
    return {0.5f, 0.5f, 0.5f};
  }
};

Image render_points(const PointCloud& cloud, const std::vector<Vec3>& colors, int width,
                    int height, ViewAxis view, int point_radius) {
  const auto box = pcss::pointcloud::compute_bbox(cloud.positions);
  Projector proj{view, box.min, box.max};
  Image img(width, height, {0.08f, 0.08f, 0.10f});
  // Painter's order by depth so nearer points overwrite farther ones.
  std::vector<std::int64_t> order(static_cast<size_t>(cloud.size()));
  std::vector<float> depth(static_cast<size_t>(cloud.size()));
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    order[static_cast<size_t>(i)] = i;
    depth[static_cast<size_t>(i)] = proj.project(cloud.positions[static_cast<size_t>(i)])[2];
  }
  std::sort(order.begin(), order.end(), [&](std::int64_t a, std::int64_t b) {
    return depth[static_cast<size_t>(a)] < depth[static_cast<size_t>(b)];
  });
  for (std::int64_t i : order) {
    const auto uvd = proj.project(cloud.positions[static_cast<size_t>(i)]);
    const int cx = static_cast<int>(uvd[0] * static_cast<float>(width - 1));
    const int cy = static_cast<int>(uvd[1] * static_cast<float>(height - 1));
    for (int dy = -point_radius; dy <= point_radius; ++dy) {
      for (int dx = -point_radius; dx <= point_radius; ++dx) {
        img.set_pixel(cx + dx, cy + dy, colors[static_cast<size_t>(i)]);
      }
    }
  }
  return img;
}

}  // namespace

Image render_cloud_colors(const PointCloud& cloud, int width, int height, ViewAxis view,
                          int point_radius) {
  return render_points(cloud, cloud.colors, width, height, view, point_radius);
}

Image render_cloud_labels(const PointCloud& cloud, const std::vector<int>& labels,
                          int width, int height, ViewAxis view, int point_radius) {
  if (labels.size() != static_cast<size_t>(cloud.size())) {
    throw std::invalid_argument("render_cloud_labels: labels size mismatch");
  }
  std::vector<Vec3> colors(labels.size());
  for (size_t i = 0; i < labels.size(); ++i) colors[i] = label_color(labels[i]);
  return render_points(cloud, colors, width, height, view, point_radius);
}

Vec3 label_color(int label) {
  static const Vec3 palette[] = {
      {0.90f, 0.10f, 0.10f}, {0.10f, 0.60f, 0.95f}, {0.95f, 0.75f, 0.10f},
      {0.15f, 0.75f, 0.30f}, {0.60f, 0.25f, 0.80f}, {0.95f, 0.45f, 0.10f},
      {0.10f, 0.85f, 0.80f}, {0.85f, 0.30f, 0.60f}, {0.55f, 0.55f, 0.10f},
      {0.35f, 0.35f, 0.95f}, {0.60f, 0.40f, 0.20f}, {0.20f, 0.45f, 0.45f},
      {0.75f, 0.75f, 0.75f}};
  constexpr int kCount = static_cast<int>(sizeof(palette) / sizeof(palette[0]));
  const int idx = ((label % kCount) + kCount) % kCount;
  return palette[idx];
}

}  // namespace pcss::viz
