#include "pcss/obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <unordered_map>

namespace pcss::obs::metrics {

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::logic_error("obs::metrics::Histogram bounds must be ascending");
  }
}

void Histogram::observe(double value) noexcept {
  // Buckets are few (~12 for latency) and bounds are hot in cache; a
  // linear scan beats binary search at this size and stays branch-simple.
  std::size_t bucket = bounds_.size();
  for (std::size_t i = 0; i < bounds_.size(); ++i) {
    if (value <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.bounds = bounds_;
  s.counts.reserve(counts_.size());
  for (const auto& c : counts_) {
    s.counts.push_back(c.load(std::memory_order_relaxed));
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() noexcept {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& latency_buckets_ms() {
  static const std::vector<double> buckets{
      0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0};
  return buckets;
}

namespace {

enum class Kind { kCounter, kGauge, kHistogram };

struct Entry {
  std::string name;
  Kind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

// GUARDS: g_entries / g_index (registration and snapshot; the metric
// objects themselves are lock-free once handed out)
std::mutex g_registry_mutex;
std::vector<std::unique_ptr<Entry>>& entries() {
  static std::vector<std::unique_ptr<Entry>> list;
  return list;
}
// Lookup index only — every iteration below walks the `entries()` vector
// in registration order, never this map.
std::unordered_map<std::string, std::size_t>& index() {
  static std::unordered_map<std::string, std::size_t> map;
  return map;
}

const char* kind_name(Kind kind) {
  switch (kind) {
    case Kind::kCounter: return "counter";
    case Kind::kGauge: return "gauge";
    case Kind::kHistogram: return "histogram";
  }
  return "?";
}

Entry& find_or_create(std::string_view name, Kind kind,
                      const std::vector<double>* bounds) {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  std::string key(name);
  auto it = index().find(key);
  if (it != index().end()) {
    Entry& entry = *entries()[it->second];
    if (entry.kind != kind) {
      throw std::logic_error("obs::metrics: '" + key + "' is a " +
                             kind_name(entry.kind) + ", requested as " +
                             kind_name(kind));
    }
    return entry;
  }
  auto entry = std::make_unique<Entry>();
  entry->name = key;
  entry->kind = kind;
  switch (kind) {
    case Kind::kCounter: entry->counter = std::make_unique<Counter>(); break;
    case Kind::kGauge: entry->gauge = std::make_unique<Gauge>(); break;
    case Kind::kHistogram:
      entry->histogram = std::make_unique<Histogram>(
          bounds != nullptr ? *bounds : latency_buckets_ms());
      break;
  }
  entries().push_back(std::move(entry));
  index().emplace(std::move(key), entries().size() - 1);
  return *entries().back();
}

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  // "inf"/"nan" are not JSON tokens — clamp defensively.
  if (!(v == v) || v > 1e308 || v < -1e308) v = 0.0;
  char num[64];
  // Prefer the short %g form when it round-trips; fall back to the
  // full-precision form so the value survives parse/dump cycles.
  std::snprintf(num, sizeof(num), "%g", v);
  double reparsed = 0.0;
  std::sscanf(num, "%lf", &reparsed);
  if (reparsed != v) std::snprintf(num, sizeof(num), "%.17g", v);
  out += num;
}

}  // namespace

Counter& counter(std::string_view name) {
  return *find_or_create(name, Kind::kCounter, nullptr).counter;
}

Gauge& gauge(std::string_view name) {
  return *find_or_create(name, Kind::kGauge, nullptr).gauge;
}

Histogram& histogram(std::string_view name) {
  return *find_or_create(name, Kind::kHistogram, nullptr).histogram;
}

Histogram& histogram(std::string_view name, const std::vector<double>& bounds) {
  return *find_or_create(name, Kind::kHistogram, &bounds).histogram;
}

RegistrySnapshot snapshot() {
  RegistrySnapshot snap;
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto& entry : entries()) {
    switch (entry->kind) {
      case Kind::kCounter:
        snap.counters.emplace_back(entry->name, entry->counter->value());
        break;
      case Kind::kGauge:
        snap.gauges.emplace_back(entry->name, entry->gauge->value());
        break;
      case Kind::kHistogram:
        snap.histograms.emplace_back(entry->name, entry->histogram->snapshot());
        break;
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.first < b.first; };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::string snapshot_json() {
  const RegistrySnapshot snap = snapshot();
  std::string out = "{\"counters\": {";
  char num[64];
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    out += i == 0 ? "\"" : ", \"";
    append_escaped(out, snap.counters[i].first);
    out += "\": ";
    std::snprintf(num, sizeof(num), "%llu",
                  static_cast<unsigned long long>(snap.counters[i].second));
    out += num;
  }
  out += "}, \"gauges\": {";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    out += i == 0 ? "\"" : ", \"";
    append_escaped(out, snap.gauges[i].first);
    out += "\": ";
    append_double(out, snap.gauges[i].second);
  }
  out += "}, \"histograms\": {";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& [name, hist] = snap.histograms[i];
    out += i == 0 ? "\"" : ", \"";
    append_escaped(out, name);
    out += "\": {\"count\": ";
    std::snprintf(num, sizeof(num), "%llu",
                  static_cast<unsigned long long>(hist.count));
    out += num;
    out += ", \"sum\": ";
    append_double(out, hist.sum);
    out += ", \"bounds\": [";
    for (std::size_t k = 0; k < hist.bounds.size(); ++k) {
      if (k != 0) out += ", ";
      append_double(out, hist.bounds[k]);
    }
    out += "], \"counts\": [";
    for (std::size_t k = 0; k < hist.counts.size(); ++k) {
      if (k != 0) out += ", ";
      std::snprintf(num, sizeof(num), "%llu",
                    static_cast<unsigned long long>(hist.counts[k]));
      out += num;
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void reset() {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto& entry : entries()) {
    switch (entry->kind) {
      case Kind::kCounter: entry->counter->reset(); break;
      case Kind::kGauge: entry->gauge->set(0.0); break;
      case Kind::kHistogram: entry->histogram->reset(); break;
    }
  }
}

}  // namespace pcss::obs::metrics
