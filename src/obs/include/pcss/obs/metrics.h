#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "pcss/obs/trace.h"

/// Named counters / gauges / fixed-bucket histograms (the queryable half
/// of `pcss::obs`; the span tracer is the streaming half).
///
/// The registry is process-global and append-only: counter()/gauge()/
/// histogram() return references that stay valid for the process
/// lifetime, so hot paths look a metric up once (per run, or in a
/// function-local static) and then touch only relaxed atomics. Metrics
/// are always on — unlike spans there is no enable flag, because an
/// increment is cheaper than the branch would be worth — and, like every
/// obs sink, they are telemetry only: snapshots feed the `.perf.json`
/// sidecar and `pcss_run --metrics`, never a result document or cache
/// key (lint rule D006).
namespace pcss::obs::metrics {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram: `bounds` are ascending inclusive upper edges;
/// one implicit overflow bucket catches everything above the last edge.
/// Buckets are fixed at construction so concurrent observers never
/// allocate or rebalance.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double value) noexcept;

  struct Snapshot {
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (last = overflow)
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  Snapshot snapshot() const;
  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default edges for millisecond latency histograms.
const std::vector<double>& latency_buckets_ms();

/// Registry lookups: find-or-create by name; a name is permanently bound
/// to its first kind (a kind mismatch throws std::logic_error naming the
/// metric). References remain valid forever.
Counter& counter(std::string_view name);
Gauge& gauge(std::string_view name);
Histogram& histogram(std::string_view name);  ///< latency_buckets_ms() edges
Histogram& histogram(std::string_view name, const std::vector<double>& bounds);

/// Point-in-time copy of every registered metric, sorted by name (so a
/// serialized snapshot has a deterministic layout regardless of the
/// thread interleaving that registered the metrics).
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, Histogram::Snapshot>> histograms;
};
RegistrySnapshot snapshot();

/// snapshot() as a self-contained JSON document (counters / gauges /
/// histograms objects, name-sorted keys). Parses under
/// pcss::runner::Json; the executor embeds it in the .perf.json sidecar.
std::string snapshot_json();

/// Zeroes every registered value (entries and references survive).
/// Test and per-process-run isolation; never called on hot paths.
void reset();

/// RAII histogram timer: observes elapsed milliseconds on destruction.
/// The clock lives in obs (trace::now_ns), keeping D002-scoped layers
/// chrono-free.
class ScopedTimerMs {
 public:
  explicit ScopedTimerMs(Histogram& hist) noexcept
      : hist_(hist), start_(trace::now_ns()) {}
  ~ScopedTimerMs() {
    hist_.observe(static_cast<double>(trace::now_ns() - start_) / 1e6);
  }
  ScopedTimerMs(const ScopedTimerMs&) = delete;
  ScopedTimerMs& operator=(const ScopedTimerMs&) = delete;

 private:
  Histogram& hist_;
  std::int64_t start_;
};

}  // namespace pcss::obs::metrics
