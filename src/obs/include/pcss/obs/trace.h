#pragma once

#include <cstdint>
#include <string>

/// Low-overhead span tracer (the `pcss::obs` observability substrate).
///
/// Design rules, in priority order:
///
///   1. *Telemetry never touches result documents or cache keys.* Nothing
///      in this namespace feeds a `RunDocument`, a shard payload, or a
///      `run_key` input; lint rule D006 machine-checks that the store's
///      serialization and hashing TUs never even name `pcss::obs`.
///   2. *Near-zero cost when disabled.* `ScopedSpan` on the disabled path
///      is one relaxed atomic load and a branch — no clock read, no
///      allocation, no buffer registration. The runtime flag starts from
///      the `PCSS_TRACE` environment variable and can be flipped with
///      set_enabled() (the `pcss_run --trace out.json` path).
///   3. *obs owns all clocks.* src/core, src/tensor and src/runner stay
///      inside the D002 chrono ban: they call ScopedSpan /
///      metrics::ScopedTimerMs and the timestamps are taken here, in a
///      TU where wall-clock is legal because it can only ever reach
///      telemetry sinks.
///
/// Recording model: each thread owns a fixed-capacity ring of *complete*
/// span events ([ts, ts+dur], Chrome "ph":"X"), claimed from a global
/// slot registry on first use and recycled by slot when the thread
/// exits (a successor thread appends after the dead thread's events, so
/// slot count is bounded by peak concurrency, not thread churn). Writes
/// are single-producer per ring and publish with a release store;
/// drain_chrome_json() is meant to run at quiescence (after worker
/// pools joined) and snapshots every slot.
namespace pcss::obs::trace {

/// Interned label id. 0 is reserved for "none"; real labels start at 1.
using Label = std::uint32_t;

/// Whether spans are being recorded. Initialized on first query from
/// `PCSS_TRACE` (set and not "0" => enabled).
bool enabled() noexcept;
void set_enabled(bool on) noexcept;

/// Interns `name`, returning a stable id for the process lifetime.
/// Intended for one-time initialization (`static const Label k = ...`);
/// interning an already-known name returns the existing id.
Label intern(const std::string& name);
/// Name of an interned label ("" for 0 or out-of-range ids).
const std::string& label_name(Label label);

/// Monotonic nanoseconds (steady clock). The only clock the traced
/// layers ever see — and only as opaque pre-taken timestamps.
std::int64_t now_ns() noexcept;

/// Records one complete span on the calling thread's ring. `arg_key`
/// 0 means "no annotation"; otherwise the pair lands in the Chrome
/// event's "args" object (e.g. cache_hit=1 on runner.shard spans).
void record_complete(Label label, std::int64_t ts_ns, std::int64_t dur_ns,
                     Label arg_key = 0, std::int64_t arg_value = 0) noexcept;

struct Stats {
  std::uint64_t recorded = 0;  ///< events recorded since the last clear()
  std::uint64_t buffered = 0;  ///< events currently held in rings
  std::uint64_t dropped = 0;   ///< events overwritten by ring wrap
  std::size_t threads = 0;     ///< ring slots ever allocated (0 until the
                               ///< first *enabled* record — the disabled
                               ///< path allocates nothing)
};
Stats stats();

/// Forgets all recorded events (ring storage is kept for reuse).
void clear();

/// Serializes every buffered event as Chrome trace-event JSON
/// (chrome://tracing and Perfetto both load it): one "X" event per
/// span, tid = ring slot, timestamps normalized to the earliest event
/// and expressed in microseconds. Call at quiescence.
std::string drain_chrome_json();
/// drain_chrome_json() to a file; false (with intact buffers) on I/O error.
bool write_chrome_json(const std::string& path);

/// RAII span. Construction on the disabled path costs one relaxed load;
/// no state is touched until destruction finds the span active.
class ScopedSpan {
 public:
  explicit ScopedSpan(Label label) noexcept
      : label_(enabled() ? label : 0), start_(label_ != 0 ? now_ns() : 0) {}
  ~ScopedSpan() {
    if (label_ != 0) {
      record_complete(label_, start_, now_ns() - start_, arg_key_, arg_value_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Attaches one key=value annotation to the span's end event.
  void arg(Label key, std::int64_t value) noexcept {
    if (label_ != 0) {
      arg_key_ = key;
      arg_value_ = value;
    }
  }

 private:
  Label label_;
  std::int64_t start_;
  Label arg_key_ = 0;
  std::int64_t arg_value_ = 0;
};

}  // namespace pcss::obs::trace
