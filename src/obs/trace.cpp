#include "pcss/obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <vector>

namespace pcss::obs::trace {

namespace {

/// Per-slot ring capacity. 16384 events x 40 bytes = 640 KiB per slot;
/// slots are bounded by peak thread concurrency (exited threads' slots
/// are recycled), so a traced 8-worker run tops out around 5 MiB.
constexpr std::uint64_t kRingCapacity = 16384;

struct Event {
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;
  std::int64_t arg_value = 0;
  Label label = 0;
  Label arg_key = 0;
};

struct ThreadBuffer {
  std::vector<Event> ring;  ///< fixed kRingCapacity once allocated
  /// Total events ever written to this slot; slot index = head % capacity.
  /// Written with release by the owning thread, read with acquire by
  /// stats()/drain (which are documented quiescent-read operations).
  std::atomic<std::uint64_t> head{0};
  std::atomic<bool> in_use{true};

  ThreadBuffer() { ring.resize(kRingCapacity); }
};

// GUARDS: g_buffers (slot claim on first record, slot enumeration in
// stats/clear/drain; ring writes themselves are single-producer and
// lock-free)
std::mutex g_registry_mutex;
std::vector<std::unique_ptr<ThreadBuffer>>& buffers() {
  static std::vector<std::unique_ptr<ThreadBuffer>> bufs;
  return bufs;
}

// GUARDS: g_labels (interning; label_name reads under the same lock)
std::mutex g_labels_mutex;
std::vector<std::string>& labels() {
  static std::vector<std::string> names{std::string()};  // [0] = "none"
  return names;
}

bool env_default_enabled() {
  const char* env = std::getenv("PCSS_TRACE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

std::atomic<bool>& enabled_flag() {
  static std::atomic<bool> flag{env_default_enabled()};
  return flag;
}

/// Releases this thread's slot at thread exit so a successor thread can
/// append to the same ring (events are kept — the trace survives worker
/// churn and tid = slot stays bounded by peak concurrency).
struct TlsSlot {
  ThreadBuffer* buffer = nullptr;
  ~TlsSlot() {
    if (buffer != nullptr) buffer->in_use.store(false, std::memory_order_release);
  }
};

ThreadBuffer* claim_slot() {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  auto& bufs = buffers();
  for (auto& buf : bufs) {
    bool expected = false;
    if (buf->in_use.compare_exchange_strong(expected, true,
                                            std::memory_order_acq_rel)) {
      return buf.get();
    }
  }
  bufs.push_back(std::make_unique<ThreadBuffer>());
  return bufs.back().get();
}

ThreadBuffer* thread_buffer() {
  thread_local TlsSlot slot;
  if (slot.buffer == nullptr) slot.buffer = claim_slot();
  return slot.buffer;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char hex[8];
          std::snprintf(hex, sizeof(hex), "\\u%04x", c);
          out += hex;
        } else {
          out += c;
        }
    }
  }
}

struct DrainedEvent {
  Event event;
  std::size_t tid = 0;
};

/// Snapshots every slot's buffered events. Quiescent-read contract: a
/// producer racing this sees its newest events missed, never torn ones
/// (events are published before the head's release store).
std::vector<DrainedEvent> collect() {
  std::vector<DrainedEvent> out;
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  const auto& bufs = buffers();
  for (std::size_t tid = 0; tid < bufs.size(); ++tid) {
    const ThreadBuffer& buf = *bufs[tid];
    const std::uint64_t head = buf.head.load(std::memory_order_acquire);
    const std::uint64_t n = std::min(head, kRingCapacity);
    for (std::uint64_t k = head - n; k < head; ++k) {
      out.push_back({buf.ring[static_cast<std::size_t>(k % kRingCapacity)], tid});
    }
  }
  return out;
}

}  // namespace

bool enabled() noexcept { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Label intern(const std::string& name) {
  const std::lock_guard<std::mutex> lock(g_labels_mutex);
  auto& names = labels();
  for (std::size_t i = 1; i < names.size(); ++i) {
    if (names[i] == name) return static_cast<Label>(i);
  }
  names.push_back(name);
  return static_cast<Label>(names.size() - 1);
}

const std::string& label_name(Label label) {
  const std::lock_guard<std::mutex> lock(g_labels_mutex);
  const auto& names = labels();
  return label < names.size() ? names[label] : names[0];
}

std::int64_t now_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void record_complete(Label label, std::int64_t ts_ns, std::int64_t dur_ns,
                     Label arg_key, std::int64_t arg_value) noexcept {
  if (!enabled() || label == 0) return;
  ThreadBuffer* buf = thread_buffer();
  const std::uint64_t head = buf->head.load(std::memory_order_relaxed);
  Event& slot = buf->ring[static_cast<std::size_t>(head % kRingCapacity)];
  slot.ts_ns = ts_ns;
  slot.dur_ns = dur_ns;
  slot.arg_value = arg_value;
  slot.label = label;
  slot.arg_key = arg_key;
  buf->head.store(head + 1, std::memory_order_release);
}

Stats stats() {
  Stats s;
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (const auto& buf : buffers()) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    s.recorded += head;
    s.buffered += std::min(head, kRingCapacity);
    s.dropped += head > kRingCapacity ? head - kRingCapacity : 0;
    ++s.threads;
  }
  return s;
}

void clear() {
  const std::lock_guard<std::mutex> lock(g_registry_mutex);
  for (auto& buf : buffers()) buf->head.store(0, std::memory_order_release);
}

std::string drain_chrome_json() {
  std::vector<DrainedEvent> events = collect();
  std::sort(events.begin(), events.end(), [](const DrainedEvent& a, const DrainedEvent& b) {
    if (a.event.ts_ns != b.event.ts_ns) return a.event.ts_ns < b.event.ts_ns;
    return a.tid < b.tid;
  });
  std::int64_t base_ns = 0;
  if (!events.empty()) base_ns = events.front().event.ts_ns;

  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  char num[64];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i].event;
    out += i == 0 ? "\n" : ",\n";
    out += "{\"name\": \"";
    append_json_escaped(out, label_name(e.label));
    out += "\", \"cat\": \"pcss\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    std::snprintf(num, sizeof(num), "%zu", events[i].tid);
    out += num;
    out += ", \"ts\": ";
    std::snprintf(num, sizeof(num), "%.3f",
                  static_cast<double>(e.ts_ns - base_ns) / 1000.0);
    out += num;
    out += ", \"dur\": ";
    std::snprintf(num, sizeof(num), "%.3f", static_cast<double>(e.dur_ns) / 1000.0);
    out += num;
    if (e.arg_key != 0) {
      out += ", \"args\": {\"";
      append_json_escaped(out, label_name(e.arg_key));
      out += "\": ";
      std::snprintf(num, sizeof(num), "%lld", static_cast<long long>(e.arg_value));
      out += num;
      out += "}";
    }
    out += "}";
  }
  out += "\n]}\n";
  return out;
}

bool write_chrome_json(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string json = drain_chrome_json();
  out.write(json.data(), static_cast<std::streamsize>(json.size()));
  return static_cast<bool>(out);
}

}  // namespace pcss::obs::trace
