#include "pcss/core/adv_train.h"

#include <vector>

#include "pcss/core/attack_engine.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

namespace pcss::core {

namespace ops = pcss::tensor::ops;
using pcss::tensor::Tensor;

AdvTrainStats adversarial_train(SegmentationModel& model,
                                const std::function<PointCloud(Rng&)>& make_scene,
                                const AdvTrainConfig& config) {
  Rng rng(config.seed);
  std::vector<PointCloud> pool;
  pool.reserve(static_cast<size_t>(config.scene_pool));
  for (int i = 0; i < config.scene_pool; ++i) pool.push_back(make_scene(rng));

  AttackConfig attack;
  attack.norm = AttackNorm::kBounded;
  attack.field = AttackField::kColor;
  attack.steps = config.attack_steps;
  attack.epsilon = config.epsilon;
  // One engine for the whole loop; the engine freezes parameter-gradient
  // accumulation during each inner attack and restores it for the outer
  // training step below.
  const AttackEngine engine(model, attack);

  pcss::tensor::optim::Adam opt(model.parameters(), config.lr);
  AdvTrainStats stats;
  for (int it = 0; it < config.iterations; ++it) {
    const PointCloud& clean = pool[static_cast<size_t>(it) % pool.size()];
    const bool adversarial_step = rng.uniform() < config.adv_fraction;
    PointCloud scene = clean;
    if (adversarial_step) {
      scene = engine.run(clean, config.seed + static_cast<std::uint64_t>(it)).perturbed;
      ++stats.adversarial_steps;
    }
    pcss::models::ModelInput input = pcss::models::ModelInput::plain(scene);
    Tensor logits = model.forward(input, /*training=*/true);
    Tensor loss = ops::nll_loss_masked(ops::log_softmax_rows(logits), scene.labels, {});
    opt.zero_grad();
    loss.backward();
    opt.step();
    stats.final_loss = loss.item();
  }
  return stats;
}

}  // namespace pcss::core
