#include "pcss/core/transfer.h"

#include <stdexcept>

#include "pcss/core/defense_stage.h"

namespace pcss::core {

SegMetrics evaluate_transfer(SegmentationModel& victim, const PointCloud& adversarial,
                             int num_classes) {
  // Transfer is the defense grid's undefended cell: predict through the
  // identity pipeline and score against the cloud's own ground truth.
  Rng unused(0);
  return run_defended(victim, DefensePipeline{}, adversarial, num_classes, unused).metrics;
}

float remap_range(float value, float src_lo, float src_hi, float dst_lo, float dst_hi) {
  if (src_hi <= src_lo) throw std::invalid_argument("remap_range: empty source range");
  const float t = (value - src_lo) / (src_hi - src_lo);
  return dst_lo + t * (dst_hi - dst_lo);
}

PointCloud remap_cloud_coordinates(const PointCloud& cloud, float src_lo, float src_hi,
                                   float dst_lo, float dst_hi) {
  PointCloud out = cloud;
  for (auto& p : out.positions) {
    for (int a = 0; a < 3; ++a) p[a] = remap_range(p[a], src_lo, src_hi, dst_lo, dst_hi);
  }
  return out;
}

}  // namespace pcss::core
