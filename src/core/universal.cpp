#include "pcss/core/universal.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pcss/tensor/ops.h"

namespace pcss::core {

namespace ops = pcss::tensor::ops;

PointCloud apply_universal_delta(const PointCloud& cloud,
                                 const std::vector<float>& color_delta) {
  if (color_delta.size() != static_cast<size_t>(cloud.size() * 3)) {
    throw std::invalid_argument("apply_universal_delta: delta size mismatch");
  }
  PointCloud out = cloud;
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    for (int a = 0; a < 3; ++a) {
      out.colors[static_cast<size_t>(i)][a] =
          std::clamp(cloud.colors[static_cast<size_t>(i)][a] +
                         color_delta[static_cast<size_t>(i * 3 + a)],
                     0.0f, 1.0f);
    }
  }
  return out;
}

UniversalAttackResult universal_color_attack(SegmentationModel& model,
                                             const std::vector<PointCloud>& clouds,
                                             const AttackConfig& config) {
  if (clouds.empty()) throw std::invalid_argument("universal_color_attack: no clouds");
  const std::int64_t n = clouds.front().size();
  for (const auto& c : clouds) {
    if (c.size() != n) {
      throw std::invalid_argument("universal_color_attack: clouds must be index-aligned");
    }
  }
  Rng rng(config.seed);
  UniversalAttackResult result;
  result.color_delta.assign(static_cast<size_t>(n * 3), 0.0f);
  for (auto& v : result.color_delta) v = rng.uniform(-config.epsilon, config.epsilon);

  for (const auto& cloud : clouds) {
    const auto pred = model.predict(cloud);
    result.accuracy_before.push_back(
        evaluate_segmentation(pred, cloud.labels, model.num_classes()).accuracy);
  }

  // Min-max style weights: clouds whose hinge loss is still high (attack
  // not yet succeeding) receive more of the shared update budget.
  std::vector<double> weights(clouds.size(), 1.0);
  int step = 0;
  for (; step < config.steps; ++step) {
    std::vector<double> grad_sum(static_cast<size_t>(n * 3), 0.0);
    double weight_total = 0.0;
    for (size_t ci = 0; ci < clouds.size(); ++ci) {
      Tensor delta = Tensor::from_data({n, 3}, result.color_delta);
      delta.set_requires_grad(true);
      ModelInput input{&clouds[ci], delta, {}};
      Tensor logits = model.forward(input, /*training=*/false);
      Tensor loss = ops::hinge_margin_loss(logits, clouds[ci].labels, {},
                                           /*targeted=*/false);
      loss.backward();
      weights[ci] = 0.5 + static_cast<double>(loss.item()) /
                              (1.0 + static_cast<double>(loss.item()));
      weight_total += weights[ci];
      const auto& g = delta.grad();
      if (!g.empty()) {
        for (size_t i = 0; i < grad_sum.size(); ++i) {
          grad_sum[i] += weights[ci] * static_cast<double>(g[i]);
        }
      }
    }
    if (weight_total <= 0.0) break;
    for (size_t i = 0; i < grad_sum.size(); ++i) {
      const double g = grad_sum[i];
      if (g == 0.0) continue;
      float& d = result.color_delta[i];
      // Descend the summed hinge (all clouds' margins shrink together).
      d -= config.step_size * (g > 0.0 ? 1.0f : -1.0f);
      d = std::clamp(d, -config.epsilon, config.epsilon);
    }
  }
  result.steps_used = step;

  for (const auto& cloud : clouds) {
    const PointCloud adv = apply_universal_delta(cloud, result.color_delta);
    const auto pred = model.predict(adv);
    result.accuracy_after.push_back(
        evaluate_segmentation(pred, cloud.labels, model.num_classes()).accuracy);
  }
  return result;
}

}  // namespace pcss::core
