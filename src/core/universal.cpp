#include "pcss/core/universal.h"

#include <algorithm>
#include <stdexcept>

#include "pcss/core/attack_engine.h"

namespace pcss::core {

PointCloud apply_universal_delta(const PointCloud& cloud,
                                 const std::vector<float>& color_delta) {
  if (color_delta.size() != static_cast<size_t>(cloud.size() * 3)) {
    throw std::invalid_argument("apply_universal_delta: delta size mismatch");
  }
  return apply_field_deltas(cloud, &color_delta, nullptr);
}

UniversalAttackResult universal_color_attack(SegmentationModel& model,
                                             const std::vector<PointCloud>& clouds,
                                             const AttackConfig& config) {
  if (clouds.empty()) throw std::invalid_argument("universal_color_attack: no clouds");
  const std::int64_t n = clouds.front().size();
  for (const auto& c : clouds) {
    if (c.size() != n) {
      throw std::invalid_argument("universal_color_attack: clouds must be index-aligned");
    }
  }
  const SharedDeltaResult shared = AttackEngine(model, config).run_shared(clouds);
  UniversalAttackResult result;
  result.color_delta = shared.color_delta;
  result.accuracy_before = shared.accuracy_before;
  result.accuracy_after = shared.accuracy_after;
  result.steps_used = shared.steps_used;
  return result;
}

}  // namespace pcss::core
