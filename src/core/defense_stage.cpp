#include "pcss/core/defense_stage.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <numeric>
#include <stdexcept>

#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/sampling.h"

namespace pcss::core {

namespace {

std::string num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

std::vector<std::int64_t> identity_map(std::int64_t n) {
  std::vector<std::int64_t> kept(static_cast<size_t>(n));
  std::iota(kept.begin(), kept.end(), std::int64_t{0});
  return kept;
}

// ---------------------------------------------------------------------------
// SRS
// ---------------------------------------------------------------------------

class SrsStage final : public DefenseStage {
 public:
  SrsStage(std::int64_t remove_count, float remove_fraction)
      : remove_count_(remove_count), remove_fraction_(remove_fraction) {}

  const char* name() const override { return "srs"; }

  std::string describe() const override {
    if (remove_fraction_ >= 0.0f) return "srs(fraction=" + num(remove_fraction_) + ")";
    return "srs(remove=" + std::to_string(remove_count_) + ")";
  }

  bool stochastic() const override { return true; }

  DefenseOutcome apply(const PointCloud& cloud, Rng& rng) const override {
    const std::int64_t n = cloud.size();
    const std::int64_t remove =
        remove_fraction_ >= 0.0f
            ? static_cast<std::int64_t>(static_cast<double>(n) * remove_fraction_)
            : remove_count_;
    if (remove < 0 || remove >= n) {
      throw std::invalid_argument("srs_defense: remove_count out of range");
    }
    if (remove == 0) return {cloud, identity_map(n)};
    auto keep = pcss::pointcloud::random_sample(n, n - remove, rng);
    std::sort(keep.begin(), keep.end());  // preserve original point order
    return {cloud.subset(keep), std::move(keep)};
  }

 private:
  std::int64_t remove_count_;
  float remove_fraction_;  ///< < 0 means "use the absolute count"
};

// ---------------------------------------------------------------------------
// Revised SOR (combined position+color metric)
// ---------------------------------------------------------------------------

class SorStage final : public DefenseStage {
 public:
  SorStage(int k, float stddev_mult, float color_weight, KnnBackend backend)
      : k_(k), stddev_mult_(stddev_mult), color_weight_(color_weight), backend_(backend) {
    if (k <= 0) throw std::invalid_argument("sor stage: k must be positive");
    if (color_weight < 0.0f) {
      throw std::invalid_argument("sor stage: color_weight must be >= 0");
    }
  }

  const char* name() const override { return "sor"; }

  std::string describe() const override {
    // The backend never changes the defended output (grid == brute up to
    // distance ties), so it stays out of the cache-key string.
    return "sor(k=" + std::to_string(k_) + ",mult=" + num(stddev_mult_) +
           ",cw=" + num(color_weight_) + ")";
  }

  DefenseOutcome apply(const PointCloud& cloud, Rng& /*rng*/) const override {
    const std::int64_t n = cloud.size();
    if (n <= k_) return {cloud, identity_map(n)};

    const std::vector<std::int64_t> idx = neighbors(cloud);
    std::vector<float> mean_d(static_cast<size_t>(n), 0.0f);
    for (std::int64_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (int j = 0; j < k_; ++j) {
        const auto nb = static_cast<size_t>(idx[i * k_ + j]);
        const float d2 = pcss::pointcloud::squared_distance(
                             cloud.positions[static_cast<size_t>(i)], cloud.positions[nb]) +
                         color_weight_ *
                             pcss::pointcloud::squared_distance(
                                 cloud.colors[static_cast<size_t>(i)], cloud.colors[nb]);
        acc += std::sqrt(d2);
      }
      mean_d[static_cast<size_t>(i)] = acc / static_cast<float>(k_);
    }

    double mean = 0.0;
    for (float d : mean_d) mean += d;
    mean /= static_cast<double>(n);
    double var = 0.0;
    for (float d : mean_d) var += (d - mean) * (d - mean);
    var /= static_cast<double>(n);
    const double threshold = mean + static_cast<double>(stddev_mult_) * std::sqrt(var);

    std::vector<std::int64_t> keep;
    for (std::int64_t i = 0; i < n; ++i) {
      if (mean_d[static_cast<size_t>(i)] <= threshold) keep.push_back(i);
    }
    if (keep.empty()) return {cloud, identity_map(n)};  // refuse to drop everything
    return {cloud.subset(keep), std::move(keep)};
  }

 private:
  std::vector<std::int64_t> neighbors(const PointCloud& cloud) const {
    switch (backend_) {
      case KnnBackend::kBrute:
        return pcss::pointcloud::knn_self_combined_brute(cloud.positions, cloud.colors,
                                                         color_weight_, k_);
      case KnnBackend::kGrid:
        return pcss::pointcloud::knn_self_combined_grid(cloud.positions, cloud.colors,
                                                        color_weight_, k_);
      case KnnBackend::kAuto:
        break;
    }
    return pcss::pointcloud::knn_self_combined(cloud.positions, cloud.colors, color_weight_,
                                               k_);
  }

  int k_;
  float stddev_mult_;
  float color_weight_;
  KnnBackend backend_;
};

// ---------------------------------------------------------------------------
// Voxel thinning
// ---------------------------------------------------------------------------

class VoxelStage final : public DefenseStage {
 public:
  explicit VoxelStage(float voxel) : voxel_(voxel) {
    if (voxel <= 0.0f) throw std::invalid_argument("voxel stage: edge must be positive");
  }

  const char* name() const override { return "voxel"; }
  std::string describe() const override { return "voxel(edge=" + num(voxel_) + ")"; }

  DefenseOutcome apply(const PointCloud& cloud, Rng& /*rng*/) const override {
    if (cloud.empty()) return {cloud, {}};
    auto keep = pcss::pointcloud::voxel_downsample(cloud.positions, voxel_);
    return {cloud.subset(keep), std::move(keep)};
  }

 private:
  float voxel_;
};

// ---------------------------------------------------------------------------
// Color quantization (feature squeezing)
// ---------------------------------------------------------------------------

class ColorQuantizeStage final : public DefenseStage {
 public:
  explicit ColorQuantizeStage(int levels) : levels_(levels) {
    if (levels < 2) throw std::invalid_argument("quantize stage: needs >= 2 levels");
  }

  const char* name() const override { return "quantize"; }
  std::string describe() const override {
    return "quantize(levels=" + std::to_string(levels_) + ")";
  }

  DefenseOutcome apply(const PointCloud& cloud, Rng& /*rng*/) const override {
    DefenseOutcome out{cloud, identity_map(cloud.size())};
    const float steps = static_cast<float>(levels_ - 1);
    for (auto& c : out.cloud.colors) {
      for (int a = 0; a < 3; ++a) c[a] = std::round(c[a] * steps) / steps;
    }
    return out;
  }

 private:
  int levels_;
};

// ---------------------------------------------------------------------------
// kNN label voting (prediction smoothing)
// ---------------------------------------------------------------------------

class KnnLabelVoteStage final : public DefenseStage {
 public:
  explicit KnnLabelVoteStage(int k) : k_(k) {
    if (k <= 0) throw std::invalid_argument("knn_vote stage: k must be positive");
  }

  const char* name() const override { return "knn_vote"; }
  std::string describe() const override { return "knn_vote(k=" + std::to_string(k_) + ")"; }

  DefenseOutcome apply(const PointCloud& cloud, Rng& /*rng*/) const override {
    return {cloud, identity_map(cloud.size())};
  }

  void smooth_predictions(const PointCloud& defended,
                          std::vector<int>& predictions) const override {
    const std::int64_t n = defended.size();
    if (n <= 1 || static_cast<std::int64_t>(predictions.size()) != n) return;
    const int k = static_cast<int>(std::min<std::int64_t>(k_, n - 1));
    const auto idx =
        pcss::pointcloud::knn_self(defended.positions, k, /*include_self=*/false);
    // Votes read the unsmoothed snapshot so the result does not depend
    // on point order.
    const std::vector<int> before = predictions;
    std::map<int, int> votes;
    for (std::int64_t i = 0; i < n; ++i) {
      votes.clear();
      ++votes[before[static_cast<size_t>(i)]];
      for (int j = 0; j < k; ++j) {
        ++votes[before[static_cast<size_t>(idx[i * k + j])]];
      }
      int winner = before[static_cast<size_t>(i)];
      int best = -1;
      for (const auto& [label, count] : votes) {  // ascending label: ties -> smallest
        if (count > best) {
          best = count;
          winner = label;
        }
      }
      predictions[static_cast<size_t>(i)] = winner;
    }
  }

 private:
  int k_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Factories
// ---------------------------------------------------------------------------

std::shared_ptr<const DefenseStage> make_srs_stage(std::int64_t remove_count) {
  return std::make_shared<SrsStage>(remove_count, -1.0f);
}

std::shared_ptr<const DefenseStage> make_srs_fraction_stage(float remove_fraction) {
  if (remove_fraction < 0.0f || remove_fraction >= 1.0f) {
    throw std::invalid_argument("srs stage: remove_fraction must be in [0, 1)");
  }
  return std::make_shared<SrsStage>(0, remove_fraction);
}

std::shared_ptr<const DefenseStage> make_sor_stage(int k, float stddev_mult,
                                                   float color_weight, KnnBackend backend) {
  return std::make_shared<SorStage>(k, stddev_mult, color_weight, backend);
}

std::shared_ptr<const DefenseStage> make_voxel_stage(float voxel) {
  return std::make_shared<VoxelStage>(voxel);
}

std::shared_ptr<const DefenseStage> make_color_quantize_stage(int levels) {
  return std::make_shared<ColorQuantizeStage>(levels);
}

std::shared_ptr<const DefenseStage> make_knn_label_vote_stage(int k) {
  return std::make_shared<KnnLabelVoteStage>(k);
}

// ---------------------------------------------------------------------------
// DefensePipeline
// ---------------------------------------------------------------------------

DefensePipeline& DefensePipeline::add(std::shared_ptr<const DefenseStage> stage) {
  if (!stage) throw std::invalid_argument("DefensePipeline: null stage");
  stages_.push_back(std::move(stage));
  return *this;
}

bool DefensePipeline::stochastic() const {
  for (const auto& stage : stages_) {
    if (stage->stochastic()) return true;
  }
  return false;
}

std::string DefensePipeline::describe() const {
  if (stages_.empty()) return "none";
  std::string out;
  for (const auto& stage : stages_) {
    if (!out.empty()) out += '|';
    out += stage->describe();
  }
  return out;
}

DefenseOutcome DefensePipeline::apply(const PointCloud& cloud, Rng& rng) const {
  DefenseOutcome out{cloud, identity_map(cloud.size())};
  for (const auto& stage : stages_) {
    const std::int64_t n = out.cloud.size();
    DefenseOutcome next = stage->apply(out.cloud, rng);
    if (next.kept.size() != static_cast<size_t>(next.cloud.size())) {
      throw std::runtime_error("DefensePipeline: stage '" + std::string(stage->name()) +
                               "' returned a kept map of the wrong size");
    }
    // Compose the surviving-index maps: `next.kept` indexes the previous
    // stage's output, so route it through the accumulated map to keep
    // `out.kept` anchored at the original input cloud.
    std::vector<std::int64_t> composed(next.kept.size());
    std::vector<std::uint8_t> seen(static_cast<size_t>(n), 0);
    for (size_t i = 0; i < next.kept.size(); ++i) {
      const std::int64_t j = next.kept[i];
      if (j < 0 || j >= n) {
        throw std::runtime_error("DefensePipeline: stage '" + std::string(stage->name()) +
                                 "' returned an out-of-range kept index");
      }
      // Duplicates would double-count ground truth rows and break the
      // scatter_rows distinct-index contract in DefendedModel.
      if (seen[static_cast<size_t>(j)]) {
        throw std::runtime_error("DefensePipeline: stage '" + std::string(stage->name()) +
                                 "' returned a duplicate kept index");
      }
      seen[static_cast<size_t>(j)] = 1;
      composed[i] = out.kept[static_cast<size_t>(j)];
    }
    out.cloud = std::move(next.cloud);
    out.kept = std::move(composed);
  }
  return out;
}

void DefensePipeline::smooth_predictions(const PointCloud& defended,
                                         std::vector<int>& predictions) const {
  for (const auto& stage : stages_) stage->smooth_predictions(defended, predictions);
}

// ---------------------------------------------------------------------------
// Evaluation
// ---------------------------------------------------------------------------

DefenseReport run_defended(SegmentationModel& model, const DefensePipeline& pipeline,
                           const PointCloud& cloud, int num_classes, Rng& rng) {
  DefenseReport report;
  report.outcome = pipeline.apply(cloud, rng);
  report.predictions = model.predict(report.outcome.cloud);
  pipeline.smooth_predictions(report.outcome.cloud, report.predictions);
  // Ground truth comes from the *original* cloud through the surviving
  // index map — a stage may drop, reorder, or even rewrite the labels it
  // carries without corrupting the score.
  std::vector<int> truth(report.outcome.kept.size());
  for (size_t i = 0; i < truth.size(); ++i) {
    truth[i] = cloud.labels[static_cast<size_t>(report.outcome.kept[i])];
  }
  report.metrics = evaluate_segmentation(report.predictions, truth, num_classes);
  return report;
}

// ---------------------------------------------------------------------------
// Stream derivation
// ---------------------------------------------------------------------------

std::uint64_t fnv64_bytes(const void* data, std::size_t size, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t hash = seed;
  for (std::size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::uint64_t defense_cell_seed(std::uint64_t defense_seed, const std::string& attack_label,
                                const std::string& defense_describe,
                                std::uint64_t cloud_index) {
  std::uint64_t hash = fnv64_bytes(attack_label.data(), attack_label.size());
  hash = fnv64_bytes("|", 1, hash);
  hash = fnv64_bytes(defense_describe.data(), defense_describe.size(), hash);
  const std::uint64_t base = defense_seed + cloud_index;
  hash = fnv64_bytes(&base, sizeof(base), hash);
  return hash;
}

}  // namespace pcss::core
