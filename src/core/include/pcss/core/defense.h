#pragma once

#include <cstdint>
#include <vector>

#include "pcss/core/defense_stage.h"
#include "pcss/models/model.h"
#include "pcss/tensor/rng.h"

namespace pcss::core {

using pcss::models::PointCloud;
using pcss::models::SegmentationModel;
using pcss::tensor::Rng;

// The composable defense API lives in defense_stage.h (DefenseStage /
// DefensePipeline / run_defended) and defended_model.h (attacks through
// a defense). The functions below are the original free-function
// surface, kept as thin wrappers over single-stage pipelines — bit-exact
// equivalence with the stages is enforced by
// tests/defense_pipeline_test.cpp.

/// Simple Random Sampling defense (paper §V-F, from Yang et al.): removes
/// `remove_count` uniformly chosen points before segmentation.
/// Wrapper over make_srs_stage(remove_count).
PointCloud srs_defense(const PointCloud& cloud, std::int64_t remove_count, Rng& rng);

/// Statistical Outlier Removal defense (paper §V-F, from DUP-Net),
/// revised as in the paper to use both color and coordinates in the kNN
/// distance: d = sqrt(d_pos^2 + color_weight * d_color^2). Points whose
/// mean-kNN distance exceeds mean + stddev_mult * sigma are removed.
/// Wrapper over make_sor_stage(k, stddev_mult, color_weight).
PointCloud sor_defense(const PointCloud& cloud, int k, float stddev_mult = 1.0f,
                       float color_weight = 1.0f);

/// Result of running a model on a defended (point-dropping) input.
struct DefendedEval {
  double accuracy = 0.0;
  double aiou = 0.0;
  std::int64_t points_kept = 0;
};

/// Predicts on the defended cloud and scores against its ground truth.
/// Wrapper over run_defended with the empty (identity) pipeline.
DefendedEval evaluate_defended(SegmentationModel& model, const PointCloud& defended,
                               int num_classes);

}  // namespace pcss::core
