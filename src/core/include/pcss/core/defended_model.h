#pragma once

#include <cstdint>
#include <string>

#include "pcss/core/defense_stage.h"
#include "pcss/models/model.h"

namespace pcss::core {

using pcss::models::ModelInput;
using pcss::tensor::Tensor;

/// Knobs for the defended forward pass.
struct DefendedModelOptions {
  /// Base seed of the defense draws. The stream for one forward pass is
  /// a pure function of (seed, perturbed input bytes, EOT sample index),
  /// so batched attacks reproduce bit-identically for any worker count,
  /// shard partitioning, or resume point — the defended analogue of the
  /// engine's `config.seed + cloud index` convention.
  std::uint64_t seed = 0x5eedULL;
  /// Resampling-EOT draws averaged per forward pass. Only meaningful for
  /// stochastic pipelines (SRS): >1 makes the adaptive attacker optimize
  /// the expected logits over defense resamples instead of one draw.
  int eot_samples = 1;
};

/// Wraps any SegmentationModel so that attacks, `attack_cases`,
/// `evaluate_transfer`, and `AttackEngine::run_batch` run unchanged
/// *through* a defense pipeline — the adaptive-adversary setting where
/// the attacker knows and differentiates the defense.
///
/// forward() implements attack-through-defense semantics:
///   1. the incoming deltas are applied numerically and the pipeline
///      transforms the perturbed cloud (selection runs on what the
///      defender would actually see);
///   2. the inner model runs on the surviving points, with the delta
///      rows gathered differentiably so gradients flow back to the
///      attacked full-cloud perturbation (dropped points get zero
///      gradient — the BPDA treatment of the non-differentiable
///      selection), and any value change the defense made (color
///      quantization) entering as a constant residual — the
///      straight-through estimate;
///   3. the surviving logits scatter back to full-cloud rows; a dropped
///      point's row becomes a one-hot of its ground-truth label, i.e. a
///      point the defense removed counts as *not* successfully attacked
///      (conservative for the attacker, constant for the gradient).
///
/// Post-prediction smoothing stages (kNN label voting) are not part of
/// forward() — they rewrite discrete labels, so they apply at evaluation
/// time (run_defended / the defense grid), not inside the attacked
/// differentiable path.
///
/// Thread safety: forward() is stateless (streams derive from input
/// bytes), so the engine's concurrent batched attacks work exactly as
/// they do on an undefended model. named_params()/named_buffers()
/// forward to the inner model, which keeps the engine's parameter-grad
/// freeze effective through the wrapper.
class DefendedModel final : public SegmentationModel {
 public:
  DefendedModel(SegmentationModel& inner, DefensePipeline pipeline,
                DefendedModelOptions options = {});

  std::string name() const override;
  int num_classes() const override { return inner_.num_classes(); }

  Tensor forward(const ModelInput& input, bool training) override;

  /// Defense streams are a function of the *perturbed input bytes*, so the
  /// survivor set — and with it the graph shape — changes step to step:
  /// never capture a plan through a defense pipeline.
  bool plan_safe_forward() const override { return false; }

  std::vector<pcss::tensor::nn::NamedParam> named_params() override {
    return inner_.named_params();
  }
  std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() override {
    return inner_.named_buffers();
  }

  SegmentationModel& inner() const { return inner_; }
  const DefensePipeline& pipeline() const { return pipeline_; }
  const DefendedModelOptions& options() const { return options_; }

  /// The deterministic defense stream used for `sample` of a forward
  /// pass over `perturbed`. Exposed so evaluations can reproduce the
  /// exact draw a defended attack saw.
  Rng stream(const PointCloud& perturbed, int sample) const;

 private:
  SegmentationModel& inner_;
  DefensePipeline pipeline_;
  DefendedModelOptions options_;
};

}  // namespace pcss::core
