#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pcss/core/metrics.h"
#include "pcss/models/model.h"
#include "pcss/tensor/rng.h"

namespace pcss::core {

using pcss::models::PointCloud;
using pcss::models::SegmentationModel;
using pcss::tensor::Rng;

// ---------------------------------------------------------------------------
// Defense pipeline (paper §V-F, symmetric to the AttackEngine strategies)
//
// A defense is a chain of DefenseStage transforms applied to the input
// cloud before segmentation, plus optional post-prediction smoothing.
// Stages carry an explicit surviving-index map so chained point-dropping
// defenses never lose the defended-point <-> ground-truth alignment, and
// a stable describe() string so pipelines hash into the runner's
// content-addressed result keys. The legacy free functions in defense.h
// and transfer.h are thin wrappers over this API (bit-exact; enforced by
// tests/defense_pipeline_test.cpp).
// ---------------------------------------------------------------------------

/// Which kNN implementation a neighbor-based stage uses. kAuto follows
/// the knn_self dispatch (grid at >= 1024 points); the explicit backends
/// exist for the brute-vs-grid equivalence tests and tie-sensitive
/// callers.
enum class KnnBackend { kAuto, kBrute, kGrid };

/// Result of one stage (or a whole pipeline): the defended cloud plus
/// the surviving-index map. kept[i] names the index *in the input cloud*
/// of defended point i, so metrics can always be scored against the
/// correctly permuted original ground truth, no matter how many stages
/// dropped or reordered points in between.
struct DefenseOutcome {
  PointCloud cloud;
  std::vector<std::int64_t> kept;
};

/// One composable defense transform: cloud -> cloud with an index map.
///
/// Contract: apply() returns kept.size() == cloud.size() with every
/// index in [0, input.size()) and no duplicates (DefensePipeline
/// validates sizes/ranges). Stages that never drop points return the
/// identity map. Stages must be deterministic functions of (input, rng
/// draws): all randomness flows through the explicit Rng so batched and
/// sharded evaluations can reproduce any draw from a seed.
class DefenseStage {
 public:
  virtual ~DefenseStage() = default;

  virtual const char* name() const = 0;

  /// Stable "name(param=value,...)" string. Hashed into ResultStore keys
  /// (any param change must change it) and shown in reports.
  virtual std::string describe() const = 0;

  /// Whether apply() consumes RNG draws (SRS). Deterministic stages must
  /// not touch the Rng.
  virtual bool stochastic() const { return false; }

  virtual DefenseOutcome apply(const PointCloud& cloud, Rng& rng) const = 0;

  /// Post-prediction hook (kNN label voting): rewrites `predictions`
  /// for the defended cloud in place. Input-transform stages keep the
  /// identity. Not differentiable — DefendedModel's adaptive forward
  /// sees only the input transform; smoothing applies at eval time.
  virtual void smooth_predictions(const PointCloud& defended,
                                  std::vector<int>& predictions) const {
    (void)defended;
    (void)predictions;
  }
};

/// Ordered chain of stages sharing one RNG stream. Copyable (stages are
/// shared immutable objects); an empty pipeline is the identity defense.
class DefensePipeline {
 public:
  DefensePipeline() = default;
  explicit DefensePipeline(std::vector<std::shared_ptr<const DefenseStage>> stages)
      : stages_(std::move(stages)) {}

  /// Appends a stage; returns *this for chaining.
  DefensePipeline& add(std::shared_ptr<const DefenseStage> stage);

  bool empty() const { return stages_.empty(); }
  std::size_t size() const { return stages_.size(); }
  const std::vector<std::shared_ptr<const DefenseStage>>& stages() const { return stages_; }
  bool stochastic() const;

  /// "none" for the empty pipeline, else stage describes joined by '|'.
  std::string describe() const;

  /// Applies the stages in order, composing the surviving-index maps so
  /// the final `kept` refers to the *original* input cloud. Throws
  /// std::runtime_error naming the stage on a malformed outcome (size
  /// mismatch or out-of-range index).
  DefenseOutcome apply(const PointCloud& cloud, Rng& rng) const;

  /// Runs every stage's post-prediction smoothing, in stage order.
  void smooth_predictions(const PointCloud& defended, std::vector<int>& predictions) const;

 private:
  std::vector<std::shared_ptr<const DefenseStage>> stages_;
};

// -- Built-in stages ---------------------------------------------------------

/// Simple Random Sampling (paper §V-F): drops `remove_count` uniformly
/// chosen points. Throws on apply when remove_count is negative or >=
/// the cloud size (matching srs_defense).
std::shared_ptr<const DefenseStage> make_srs_stage(std::int64_t remove_count);

/// SRS sized relative to the cloud: drops floor(n * remove_fraction)
/// points (the paper's "~1%" setting). remove_fraction in [0, 1).
std::shared_ptr<const DefenseStage> make_srs_fraction_stage(float remove_fraction);

/// Revised Statistical Outlier Removal (paper §V-F): neighbors are the
/// true k-nearest under d^2 = d_pos^2 + color_weight * d_color^2
/// (knn_self_combined, grid-accelerated at >= 1024 points); points whose
/// mean neighbor distance exceeds mean + stddev_mult * sigma are dropped.
std::shared_ptr<const DefenseStage> make_sor_stage(int k, float stddev_mult = 1.0f,
                                                   float color_weight = 1.0f,
                                                   KnnBackend backend = KnnBackend::kAuto);

/// Voxel-grid thinning: keeps one point per occupied voxel of the given
/// edge length (a geometric smoothing defense for outdoor-scale clouds).
std::shared_ptr<const DefenseStage> make_voxel_stage(float voxel);

/// Color quantization (feature squeezing): rounds every channel to one
/// of `levels` uniform levels in [0, 1]. Drops no points; adaptive
/// attacks differentiate through it with a straight-through estimate
/// (the quantization residual enters DefendedModel as a constant).
std::shared_ptr<const DefenseStage> make_color_quantize_stage(int levels);

/// kNN label voting: replaces each defended point's *prediction* by the
/// majority vote among itself and its k nearest neighbors (positional
/// kNN; ties resolve to the smallest label). Identity on the cloud.
std::shared_ptr<const DefenseStage> make_knn_label_vote_stage(int k);

// -- Evaluation --------------------------------------------------------------

/// Everything one defended prediction produces: the defended cloud with
/// its surviving-index map, the (smoothed) predictions, and metrics
/// scored against the ORIGINAL ground truth permuted through the map —
/// never against labels a stage may have carried or clobbered.
struct DefenseReport {
  DefenseOutcome outcome;
  std::vector<int> predictions;
  SegMetrics metrics;
};

/// Applies `pipeline` to `cloud`, predicts with `model`, smooths, and
/// scores. The building block under evaluate_defended, evaluate_transfer
/// and the defense grid.
DefenseReport run_defended(SegmentationModel& model, const DefensePipeline& pipeline,
                           const PointCloud& cloud, int num_classes, Rng& rng);

// -- Deterministic stream derivation -----------------------------------------

/// FNV-1a 64-bit over raw bytes (seeded variant for chaining). Exposed
/// because defense RNG streams are derived from content hashes: the
/// draw for a given (seed, input) pair is a pure function, so any
/// thread count, shard partitioning, or resume point reproduces it.
std::uint64_t fnv64_bytes(const void* data, std::size_t size,
                          std::uint64_t seed = 0xcbf29ce484222325ULL);

/// Stream seed for one grid cell: mixes the experiment's defense seed,
/// the attack and defense labels, and the global cloud index, so every
/// (attack x defense x cloud) cell draws an independent deterministic
/// stream that does not depend on sharding, threading, or the victim.
std::uint64_t defense_cell_seed(std::uint64_t defense_seed, const std::string& attack_label,
                                const std::string& defense_describe,
                                std::uint64_t cloud_index);

}  // namespace pcss::core
