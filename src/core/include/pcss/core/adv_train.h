#pragma once

#include <functional>

#include "pcss/core/attack.h"

namespace pcss::core {

/// Adversarial training — the defense the paper lists in §V-F but does
/// not evaluate ("adversarial training is heavyweight because it incurs
/// high training overhead"). This implements the standard PGD-adversarial
/// training loop so the repo can quantify both the overhead and the
/// robustness gain (bench_ext_adversarial_training).
struct AdvTrainConfig {
  int iterations = 200;       ///< optimizer steps
  int scene_pool = 12;        ///< distinct scenes cycled during training
  float lr = 0.01f;           ///< Adam learning rate
  float adv_fraction = 0.5f;  ///< fraction of steps trained on adversarial inputs
  int attack_steps = 5;       ///< inner PGD budget (small, as is standard)
  float epsilon = 0.15f;      ///< inner PGD color clip
  std::uint64_t seed = 4242;
};

struct AdvTrainStats {
  float final_loss = 0.0f;
  int adversarial_steps = 0;  ///< how many steps used adversarial inputs
};

/// Trains `model` with a mix of clean and PGD-perturbed (color field)
/// scenes drawn from `make_scene`.
AdvTrainStats adversarial_train(SegmentationModel& model,
                                const std::function<PointCloud(Rng&)>& make_scene,
                                const AdvTrainConfig& config);

}  // namespace pcss::core
