#pragma once

#include <vector>

#include "pcss/core/attack.h"

namespace pcss::core {

/// Multi-cloud ("universal") color perturbation — the paper's §VI
/// limitation (4): a real attacker must fool a *sequence* of point
/// clouds, which prior 2D work handles by optimizing one perturbation
/// across many inputs with per-input weights (the min-max formulation
/// the paper cites). This implements that extension for index-aligned
/// clouds of equal size: a single [N,3] color delta optimized against
/// all clouds jointly, re-weighting toward the currently most robust
/// cloud each step.
struct UniversalAttackResult {
  std::vector<float> color_delta;        ///< shared [N*3] perturbation
  std::vector<double> accuracy_before;   ///< per cloud
  std::vector<double> accuracy_after;    ///< per cloud, delta applied
  int steps_used = 0;
};

/// Runs a sign-PGD loop on the shared delta. Uses config.steps,
/// config.epsilon, config.step_size and config.seed; the objective is
/// performance degradation (Eq. 11) summed over clouds with min-max
/// weights. All clouds must have the same point count.
///
/// Compatibility wrapper over AttackEngine::run_shared (attack_engine.h),
/// which batches the per-cloud gradient passes across a worker pool.
UniversalAttackResult universal_color_attack(SegmentationModel& model,
                                             const std::vector<PointCloud>& clouds,
                                             const AttackConfig& config);

/// Applies a shared color delta to one cloud (clamping to valid colors).
PointCloud apply_universal_delta(const PointCloud& cloud,
                                 const std::vector<float>& color_delta);

}  // namespace pcss::core
