#pragma once

#include <cstdint>
#include <vector>

namespace pcss::core {

/// Segmentation quality numbers used throughout the paper's tables.
struct SegMetrics {
  double accuracy = 0.0;               ///< TP / N (paper §V-A)
  double aiou = 0.0;                   ///< mean IoU over classes present
  std::vector<double> per_class_iou;   ///< IoU_i = TP_i/(TP_i+FP_i+FN_i); -1 if absent
};

/// Computes accuracy and aIoU of predictions against ground truth.
/// Classes with an empty union (never predicted nor present) are skipped
/// by the aIoU average, matching the per-cloud evaluation of the paper.
SegMetrics evaluate_segmentation(const std::vector<int>& predictions,
                                 const std::vector<int>& ground_truth, int num_classes);

/// Same, restricted to points where mask[i] != 0.
SegMetrics evaluate_segmentation_masked(const std::vector<int>& predictions,
                                        const std::vector<int>& ground_truth,
                                        int num_classes,
                                        const std::vector<std::uint8_t>& mask);

/// Point success rate (paper §V-A): fraction of attacked points (mask
/// != 0) whose prediction equals the attacker's target class.
double point_success_rate(const std::vector<int>& predictions,
                          const std::vector<std::uint8_t>& target_mask, int target_class);

/// Out-of-band metrics: segmentation quality on the points *outside* the
/// attacked set, quantifying attack collateral damage.
SegMetrics evaluate_oob(const std::vector<int>& predictions,
                        const std::vector<int>& ground_truth, int num_classes,
                        const std::vector<std::uint8_t>& target_mask);

/// Builds the X_T membership mask for an object-hiding attack: points
/// whose ground-truth label equals `source_class`.
std::vector<std::uint8_t> mask_for_class(const std::vector<int>& ground_truth,
                                         int source_class);

}  // namespace pcss::core
