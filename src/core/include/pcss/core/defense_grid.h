#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pcss/core/attack.h"
#include "pcss/core/defense_stage.h"

namespace pcss::core {

// ---------------------------------------------------------------------------
// Attack x defense x victim evaluation grid (paper §V-F + §V-G).
//
// One driver subsumes the defended evaluation (Table VIII: defense on,
// victim == source) and the transferability evaluation (Table IX:
// defense "none", victim != source): each attack column runs once on the
// source model, and every (defense, victim) pair then scores the same
// adversarial clouds — victims are compared on identical defended input.
// ---------------------------------------------------------------------------

/// One attack column. A `clean` column skips the engine and evaluates
/// the unperturbed clouds (the grid's baseline row).
struct GridAttack {
  std::string label;
  bool clean = false;
  AttackConfig config{};
};

struct GridDefense {
  std::string label;
  DefensePipeline pipeline;  ///< empty = "none"
};

struct GridVictim {
  std::string label;
  SegmentationModel* model = nullptr;
};

/// One cloud in one (attack x defense x victim) cell. Metrics are scored
/// on the surviving points against the original ground truth permuted
/// through the pipeline's index map.
struct GridCase {
  double accuracy = 0.0;
  double aiou = 0.0;
  std::int64_t points_kept = 0;
};

struct GridCell {
  std::string attack;
  std::string defense;
  std::string victim;
  std::vector<GridCase> cases;  ///< cloud order
};

/// Attack-side bookkeeping, one per attack column (zeros for clean).
struct GridAttackTrace {
  std::string label;
  std::vector<double> l2_color;   ///< per cloud
  std::vector<long long> steps;   ///< per cloud
};

struct DefenseGridResult {
  std::vector<GridCell> cells;  ///< attack-major, then defense, then victim
  std::vector<GridAttackTrace> attacks;
};

struct DefenseGridOptions {
  /// Base seed of the defense draws; cell (attack, defense, cloud g)
  /// uses defense_cell_seed(defense_seed, labels, g).
  std::uint64_t defense_seed = 11000;
  /// Global index of clouds[0]. Shard executors pass their offset so
  /// attack RNG (config.seed + global index) and defense streams are
  /// invariant under any partitioning of the cloud list.
  std::size_t cloud_index_base = 0;
  /// AttackEngine workers for the attack columns. 0 = hardware.
  int num_threads = 0;
};

/// Runs every non-clean attack column once on `source` (batched, RNG
/// stream seed + global cloud index), applies every defense once per
/// (attack, cloud), and scores every victim on the shared defended
/// clouds. Deterministic: the result is a pure function of the inputs,
/// seeds, and cloud_index_base for any thread count.
DefenseGridResult evaluate_defense_grid(SegmentationModel& source,
                                        std::span<const GridVictim> victims,
                                        std::span<const PointCloud> clouds,
                                        std::span<const GridAttack> attacks,
                                        std::span<const GridDefense> defenses,
                                        const DefenseGridOptions& options = {});

}  // namespace pcss::core
