#pragma once

#include <vector>

#include "pcss/core/metrics.h"
#include "pcss/models/model.h"

namespace pcss::core {

using pcss::models::PointCloud;
using pcss::models::SegmentationModel;

/// Transferability evaluation (paper §V-G): feed an adversarial cloud
/// generated against one model into another and score it.
///
/// Wrapper over run_defended (defense_stage.h) with the identity
/// pipeline — the defense grid's "no defense" cell generalizes this to
/// any victim x defense combination (see core/defense_grid.h).
SegMetrics evaluate_transfer(SegmentationModel& victim, const PointCloud& adversarial,
                             int num_classes);

/// Linear remapping of a value between two normalized ranges — the
/// paper's "extra step to map the attacked fields to the same range" when
/// transferring between models with different normalization conventions
/// (e.g. ResGCN's [-1,1] coordinates to PointNet++'s [0,3]).
///
/// In this library attacks output raw-unit perturbations, so cross-model
/// transfer needs no remap; the utility exists to reproduce and test the
/// paper's described step for pipelines that store normalized inputs.
float remap_range(float value, float src_lo, float src_hi, float dst_lo, float dst_hi);

/// Applies remap_range to every coordinate of a cloud.
PointCloud remap_cloud_coordinates(const PointCloud& cloud, float src_lo, float src_hi,
                                   float dst_lo, float dst_hi);

}  // namespace pcss::core
