#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "pcss/core/attack.h"

namespace pcss::core {

// ---------------------------------------------------------------------------
// Strategy interfaces
//
// The paper's eight attack configurations (objective x norm x field) are
// compositions of four orthogonal pieces:
//
//   Objective     - what the attacker optimizes: the degradation hinge
//                   (Eq. 4/5, Eq. 11) or the hiding hinge (Eq. 1/3, Eq. 10).
//   Projection    - how the perturbation is parameterized and kept
//                   feasible: the bounded epsilon-clip of Algorithm 1, or
//                   the CW tanh reparameterization of Eq. 7 with its
//                   distance + smoothness penalties (Eq. 3/5, Eq. 9) and
//                   the Eq. 12 L0 restoration schedule.
//   StepRule      - how gradients become updates: sign-PGD or Adam.
//   StopCriterion - when to stop or restart: step budget, the paper's
//                   success_accuracy / PSR convergence thresholds, and the
//                   stall-triggered random restart of §IV-B.
//
// AttackEngine::recipe() assembles the paper's default composition from an
// AttackConfig; every factory can be swapped to build new attack variants
// without touching the engine loop.
// ---------------------------------------------------------------------------

/// Differentiable raw-unit perturbations for one optimization step.
/// Undefined tensors mean "this field is not attacked".
struct FieldDeltas {
  Tensor color;  ///< [N,3] additive RGB delta, raw [0,1] units
  Tensor coord;  ///< [N,3] additive position delta, meters
};

/// Attacker objective: the adversarial loss and its progress measure.
class Objective {
 public:
  virtual ~Objective() = default;
  virtual const char* name() const = 0;

  /// Adversarial loss term over the targeted points (Eq. 10 / Eq. 11).
  virtual Tensor loss(const Tensor& logits, const PointCloud& cloud,
                      const std::vector<std::uint8_t>& mask) const = 0;

  /// Scalar attack progress; larger is always better for the attacker
  /// (1 - accuracy for degradation, PSR for hiding).
  virtual double gain(const std::vector<int>& predictions, const PointCloud& cloud,
                      const std::vector<std::uint8_t>& mask, int num_classes) const = 0;

  /// Whether `gain` meets the configured success threshold.
  virtual bool converged(double gain) const = 0;
};

/// How a Projection interacts with compiled step plans (plan.h).
enum class PlanCompat {
  /// Never replay through this projection (safe default for custom
  /// projections the engine knows nothing about).
  kIncompatible,
  /// The step graph hangs off persistent leaf tensors whose *values* the
  /// step rule mutates out-of-graph; the engine calls make_deltas() before
  /// every replay so the projection can refresh the leaves in place
  /// (bounded clip).
  kRefreshLeaves,
  /// The whole delta-mapping graph was captured; make_deltas/total_loss
  /// are skipped during replay and the optimization variables are updated
  /// in place by the step rule (CW tanh).
  kCapturedGraph,
};

/// Perturbation parameterization. Stateful per run: init() is called once
/// per cloud, then the engine alternates make_deltas / updates / post_step.
class Projection {
 public:
  /// Elementwise view of one optimization variable for in-place step
  /// rules (sign-PGD). `grad` is null until backward has produced one.
  struct VarView {
    float* value = nullptr;                            ///< [points*3] storage
    const float* grad = nullptr;                       ///< [points*3] or null
    const std::vector<std::uint8_t>* active = nullptr; ///< per-point update mask
    std::int64_t points = 0;
  };

  virtual ~Projection() = default;

  virtual void init(const PointCloud& cloud, const std::vector<std::uint8_t>& mask,
                    Rng& rng) = 0;

  /// Builds this step's differentiable deltas (kept internally so that
  /// total_loss / post_step / snapshots can reference them).
  virtual FieldDeltas make_deltas() = 0;

  /// Persistent optimization variables, for tensor-based step rules
  /// (Adam). Empty when variables live in raw storage (bounded clip).
  virtual std::vector<Tensor> variables() = 0;

  /// Views over the variables for elementwise step rules.
  virtual std::vector<VarView> views() = 0;

  /// Composes the full step loss from the adversarial term. The bounded
  /// regime optimizes the hinge alone (constraints live in project());
  /// the unbounded regime adds the Eq. 3/5 distance and Eq. 9 smoothness.
  virtual Tensor total_loss(const Tensor& adversarial) { return adversarial; }

  /// Re-projects variables into the feasible set after an update
  /// (epsilon-ball and valid color box). No-op for tanh.
  virtual void project() {}

  /// Called with each step's measured gain before the stop decision;
  /// the CW projection snapshots its best-so-far deltas here.
  virtual void observe_gain(double gain) { (void)gain; }

  /// Stall-triggered random restart (§IV-B): re-noise the variables.
  virtual void random_restart(Rng& rng) { (void)rng; }

  /// Eq. 12 L0 restoration using this step's gradients.
  virtual void post_step() {}

  /// Whether — and how — the engine may replay this projection's step
  /// through a compiled plan. See PlanCompat.
  virtual PlanCompat plan_compat() const { return PlanCompat::kIncompatible; }

  /// Explicit capture-invalidation epoch: bumped whenever the step graph's
  /// *shape* changed (an L0 restoration shrank a mask that is baked into
  /// the graph, for example). The engine drops its plan and re-captures
  /// when the epoch moves.
  virtual std::uint64_t plan_epoch() const { return 0; }

  /// Final raw-unit deltas to apply to the cloud; null = field untouched.
  /// Called once after the loop ends; may materialize internal state.
  virtual const std::vector<float>* final_color_delta() = 0;
  virtual const std::vector<float>* final_coord_delta() = 0;
};

/// Gradient-to-update rule over a Projection's variables.
class StepRule {
 public:
  virtual ~StepRule() = default;
  /// Clears persistent-variable gradients before backward (no-op for
  /// rules whose variables are rebuilt every step).
  virtual void zero_grad(Projection& projection) { (void)projection; }
  /// Applies one update from the gradients produced by backward().
  virtual void apply(Projection& projection) = 0;
};

/// Verdict of StopCriterion::on_gain for one step.
enum class StepAction {
  kContinue,  ///< keep optimizing
  kStop,      ///< end the run; steps_used = current step
  kRestart,   ///< keep optimizing but random-restart the variables
};

/// Stop/restart policy, consulted once per step after the forward pass.
class StopCriterion {
 public:
  virtual ~StopCriterion() = default;
  /// Hard step budget (the engine's loop bound).
  virtual int max_steps() const = 0;
  /// `converged` is the Objective's verdict on this step's gain.
  virtual StepAction on_gain(int step, double gain, bool converged) = 0;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

/// Factories producing fresh per-run strategy instances (strategies are
/// stateful, so concurrent clouds in run_batch each get their own set).
struct AttackRecipe {
  std::function<std::unique_ptr<Objective>()> make_objective;
  std::function<std::unique_ptr<Projection>()> make_projection;
  std::function<std::unique_ptr<StepRule>()> make_step_rule;
  std::function<std::unique_ptr<StopCriterion>()> make_stop;

  /// The paper's default composition for `config`:
  /// bounded   -> ClipProjection + SignStep + budget/convergence stop
  /// unbounded -> TanhProjection + AdamStep + stall-restart stop
  static AttackRecipe from_config(const AttackConfig& config);
};

/// Per-step progress event delivered to the engine observer. For batched
/// runs the callback may fire from worker threads (delivery is serialized
/// by the engine, but ordering across clouds is scheduling-dependent).
struct AttackProgress {
  std::size_t cloud_index = 0;  ///< position within run_batch (0 for run)
  int step = 0;
  double gain = 0.0;  ///< Objective::gain of this step's forward pass
};
using ProgressObserver = std::function<void(const AttackProgress&)>;

/// Execution policy shared by every engine entry point (run / run_batch /
/// run_shared): how to run, never *what* to compute. Any policy produces
/// byte-identical results — threads only schedule independent work, plans
/// replay bit-identically, and observers are pure taps — so ExecPolicy
/// values must never enter cache keys or documents.
struct ExecPolicy {
  int threads = 0;    ///< worker threads for batched modes (0 = hardware)
  bool plan = true;   ///< allow compiled-plan capture/replay (plan.h)
  ProgressObserver observer;  ///< per-step progress tap (may be empty)
};

/// Result of the shared-delta ("universal") mode: one color perturbation
/// optimized jointly against every cloud in the batch.
struct SharedDeltaResult {
  std::vector<float> color_delta;       ///< shared [N*3] perturbation
  std::vector<double> accuracy_before;  ///< per cloud
  std::vector<double> accuracy_after;   ///< per cloud, delta applied
  int steps_used = 0;
};

/// Composable attack driver. Owns a reference to the model for its
/// lifetime and a validated AttackConfig; assembles per-run strategies
/// from an AttackRecipe.
///
/// Batched execution: run_batch schedules clouds across a worker pool.
/// Each cloud gets an independent RNG stream seeded `config.seed + index`,
/// so results are bit-identical regardless of thread count or scheduling
/// (run_batch(clouds)[i] == run(clouds[i], config.seed + i)).
///
/// Thread safety: during batched runs the engine freezes model-parameter
/// gradient accumulation (attacks only need input gradients), which makes
/// concurrent forward/backward passes over the shared model safe. The
/// model must not be trained or mutated elsewhere while a batch runs.
class AttackEngine {
 public:
  /// Validates `config` against the model (throws std::invalid_argument
  /// listing every problem) and builds the default recipe.
  AttackEngine(SegmentationModel& model, AttackConfig config);
  /// Same, with a custom strategy composition.
  AttackEngine(SegmentationModel& model, AttackConfig config, AttackRecipe recipe);

  const AttackConfig& config() const { return config_; }
  SegmentationModel& model() const { return model_; }

  /// Worker threads for run_batch / run_shared. 0 = hardware concurrency.
  /// Legacy setter: equivalent to passing ExecPolicy{num_threads, ...}.
  void set_num_threads(int num_threads) { num_threads_ = num_threads; }
  void set_observer(ProgressObserver observer) { observer_ = std::move(observer); }

  /// Attacks one cloud with the configured seed.
  AttackResult run(const PointCloud& cloud) const;
  /// Attacks one cloud with an explicit RNG seed (overrides config.seed).
  AttackResult run(const PointCloud& cloud, std::uint64_t seed) const;
  /// Policy-carrying variants. The setter-based signatures above are thin
  /// bit-exact wrappers over these (policy built from the setters).
  AttackResult run(const PointCloud& cloud, const ExecPolicy& policy) const;
  AttackResult run(const PointCloud& cloud, std::uint64_t seed,
                   const ExecPolicy& policy) const;

  /// Attacks every cloud independently across the worker pool.
  ///
  /// The config's target_mask (when set) is applied to EVERY cloud — it
  /// is only valid for index-aligned batches where point i means the
  /// same thing in each cloud. For per-cloud masks (e.g. object hiding
  /// on unrelated scenes), build one engine per mask as bench_hiding.h
  /// does; a cloud whose size does not match the mask throws.
  std::vector<AttackResult> run_batch(std::span<const PointCloud> clouds) const;
  std::vector<AttackResult> run_batch(std::span<const PointCloud> clouds,
                                      const ExecPolicy& policy) const;

  /// Optimizes one shared color delta against all clouds jointly (the
  /// min-max "universal" formulation, §VI limitation 4). Clouds must be
  /// index-aligned and equal-sized. Per-cloud gradient passes run on the
  /// worker pool; accumulation order is fixed, so results match the
  /// sequential implementation exactly. Uses the bounded-attack fields
  /// (steps, epsilon, step_size) regardless of config.norm and throws if
  /// they are not positive. Progress observers are not invoked (the
  /// shared loop has no per-cloud Objective::gain to report).
  SharedDeltaResult run_shared(std::span<const PointCloud> clouds) const;
  SharedDeltaResult run_shared(std::span<const PointCloud> clouds,
                               const ExecPolicy& policy) const;

 private:
  /// The policy the legacy setter-based entry points are equivalent to.
  ExecPolicy setter_policy() const { return {num_threads_, true, observer_}; }

  AttackResult attack_cloud(const PointCloud& cloud, std::uint64_t seed,
                            std::size_t cloud_index, const ExecPolicy& policy) const;
  void emit(const ExecPolicy& policy, const AttackProgress& event) const;
  int worker_count(std::size_t jobs, int threads) const;

  SegmentationModel& model_;
  AttackConfig config_;
  AttackRecipe recipe_;
  ProgressObserver observer_;
  // GUARDS: observer_ invocations (serializes per-cloud progress callbacks
  // fired from concurrent worker threads during run_batch/run_shared)
  mutable std::mutex observer_mutex_;
  int num_threads_ = 0;
};

// ---------------------------------------------------------------------------
// Built-in strategies (the paper's pieces, exposed for custom recipes)
// ---------------------------------------------------------------------------

/// Untargeted performance degradation: maximize 1 - accuracy (Eq. 4/5).
std::unique_ptr<Objective> make_degradation_objective(float success_accuracy);
/// Targeted object hiding: maximize PSR toward `target_class` (Eq. 1/3).
std::unique_ptr<Objective> make_hiding_objective(int target_class, float success_psr);

/// Bounded epsilon-clip parameterization (Algorithm 1).
std::unique_ptr<Projection> make_clip_projection(const AttackConfig& config);
/// CW tanh reparameterization with distance + smoothness penalties.
std::unique_ptr<Projection> make_tanh_projection(const AttackConfig& config);

/// Sign-of-gradient descent with fixed step size.
std::unique_ptr<StepRule> make_sign_step(float step_size);
/// Adam over the projection's persistent variables.
std::unique_ptr<StepRule> make_adam_step(float lr);

/// Budget + convergence stop; `stall_patience > 0` additionally requests
/// a random restart whenever the gain fails to improve for that many
/// consecutive steps.
std::unique_ptr<StopCriterion> make_standard_stop(int max_steps, int stall_patience);

}  // namespace pcss::core
