#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pcss/core/metrics.h"
#include "pcss/models/model.h"
#include "pcss/tensor/rng.h"
#include "pcss/tensor/tensor.h"

namespace pcss::core {

using pcss::models::ModelInput;
using pcss::models::PointCloud;
using pcss::models::SegmentationModel;
using pcss::tensor::Rng;
using pcss::tensor::Tensor;

/// The paper's two attacker objectives (§III).
enum class AttackObjective {
  kPerformanceDegradation,  ///< untargeted: maximize misclassification (Eq. 4/5)
  kObjectHiding,            ///< targeted: relabel X_T as the target class (Eq. 1/3)
};

/// Norm regime (§IV-B): bounded follows Algorithm 1 (PGD-style),
/// unbounded follows the CW-style optimization of Eq. 3/5.
enum class AttackNorm { kBounded, kUnbounded };

/// Which input field is perturbed (§IV, Finding 1).
enum class AttackField { kColor, kCoordinate, kBoth };

const char* to_string(AttackObjective o);
const char* to_string(AttackNorm n);
const char* to_string(AttackField f);

/// Full attack configuration — the paper's 8 configurations are the cross
/// product of objective x norm x field. Defaults follow §V-A (scaled for
/// CPU where noted).
struct AttackConfig {
  AttackObjective objective = AttackObjective::kPerformanceDegradation;
  AttackNorm norm = AttackNorm::kBounded;
  AttackField field = AttackField::kColor;

  int steps = 50;          ///< bounded budget (paper: 50); unbounded uses cw_steps
  int cw_steps = 200;      ///< unbounded budget (paper: 1000; CPU-scaled)
  float epsilon = 0.08f;   ///< bounded clip for color channels
  float coord_epsilon = 0.05f;  ///< bounded clip for raw coordinates (meters)
  float step_size = 0.01f;      ///< gamma (paper: 0.01)
  float lambda1 = 1.0f;         ///< adversarial-loss weight (paper: 1)
  float lambda2 = 0.1f;         ///< smoothness weight (paper: 0.1)
  float adam_lr = 0.01f;        ///< unbounded optimizer lr (paper: 0.01)
  int smooth_alpha = 10;        ///< Eq. 9 neighbor count (paper: 10)

  int target_class = -1;                  ///< object hiding target label
  std::vector<std::uint8_t> target_mask;  ///< X_T membership; empty = all points

  /// Converge() thresholds: degradation stops once accuracy drops below
  /// `success_accuracy` (paper: 1/13 indoor, 1/8 outdoor); hiding stops
  /// once PSR exceeds `success_psr`. Negative disables early exit.
  float success_accuracy = -1.0f;
  float success_psr = -1.0f;

  /// Eq. 12 L0 schedule for coordinate attacks: per iteration the
  /// `min_impact_fraction` least impactful points are restored, until
  /// fewer than 10% of X_T remain perturbable.
  float min_impact_fraction = 0.025f;

  /// Applies the Eq. 12 restoration schedule to the color field too.
  /// Used by the Table II field comparison, which measures both fields
  /// under the L0 distance (Eq. 8) — the paper's color L0 (~27% of the
  /// cloud) implies the same sparsification ran on color there.
  bool l0_on_color = false;

  int stall_patience = 10;  ///< CW random-restart trigger (paper §IV-B)
  std::uint64_t seed = 99;  ///< random init / restart noise

  /// Capture the first eager step into a compiled plan and replay it on
  /// subsequent steps (pcss/tensor/plan.h). Replays are byte-identical to
  /// eager execution, so this is a pure execution knob: it MUST NOT enter
  /// cache keys or any serialized document (it is deliberately absent from
  /// canonical_description). The engine additionally requires a
  /// plan-compatible model/projection/field and silently stays eager
  /// otherwise.
  bool use_plan = true;

  /// Checks every config-level invariant and returns a human-readable
  /// description of each violation (empty = valid). `num_classes`, when
  /// >= 0, additionally bounds target_class for object hiding;
  /// `num_points`, when >= 0, checks the target_mask size against a
  /// specific cloud. AttackEngine calls this at construction and throws
  /// std::invalid_argument listing every problem at once.
  std::vector<std::string> validate(int num_classes = -1,
                                    std::int64_t num_points = -1) const;
};

/// Outcome of one attack run on one cloud.
struct AttackResult {
  PointCloud perturbed;          ///< cloud with the final perturbation applied
  std::vector<int> predictions;  ///< model predictions on `perturbed`
  int steps_used = 0;

  double l2_color = 0.0;   ///< sqrt(Eq. 6) over attacked color channels
  double l2_coord = 0.0;
  std::int64_t l0_color = 0;  ///< Eq. 8: number of points with changed color
  std::int64_t l0_coord = 0;
};

/// Runs the configured attack against `model` on `cloud`.
/// White-box: gradients are taken through the model's own input
/// normalization (Eq. 7 handled per field inside).
///
/// Compatibility wrapper over pcss::core::AttackEngine (attack_engine.h):
/// equivalent to `AttackEngine(model, config).run(cloud)`. Prefer the
/// engine for batched, multi-cloud, or custom-strategy attacks.
AttackResult run_attack(SegmentationModel& model, const PointCloud& cloud,
                        const AttackConfig& config);

/// Random-noise baseline (§V-C): Gaussian color noise scaled to a target
/// L2 magnitude, projected into valid color range.
AttackResult random_noise_baseline(SegmentationModel& model, const PointCloud& cloud,
                                   double l2_target, std::uint64_t seed);

/// The perturbation norms of a perturbed cloud relative to the original.
void measure_perturbation(const PointCloud& original, const PointCloud& perturbed,
                          AttackResult& out);

/// Applies raw-unit deltas (each [N*3] or null for "untouched") to a
/// cloud; colors are clamped to [0,1] since invalid adversarial colors
/// cannot exist physically.
PointCloud apply_field_deltas(const PointCloud& cloud, const std::vector<float>* color_delta,
                              const std::vector<float>* coord_delta);

}  // namespace pcss::core
