#pragma once

#include <string>
#include <vector>

#include "pcss/core/attack.h"
#include "pcss/core/metrics.h"

namespace pcss::core {

/// One attacked cloud's headline numbers (a row source for the paper's
/// best/average/worst tables).
struct CaseRecord {
  double distance = 0.0;  ///< L2 or L0, per the experiment's metric
  double accuracy = 0.0;
  double aiou = 0.0;
};

/// Best / average / worst aggregation exactly as the paper's Tables II,
/// III and VI use it: "best" is the most vulnerable cloud (lowest
/// post-attack accuracy), "worst" the most robust one; the average is
/// element-wise over all records.
struct BestAvgWorst {
  CaseRecord best;
  CaseRecord avg;
  CaseRecord worst;
};

BestAvgWorst aggregate_cases(const std::vector<CaseRecord>& records);

/// The reported distance for one attacked cloud: Eq. 8 L0 or Eq. 6 L2
/// over the attacked field(s) of `config`. Shared by attack_cases and
/// the runner's result documents so the selection policy cannot drift.
double case_distance(const AttackConfig& config, bool use_l0_distance,
                     const AttackResult& result);

/// Runs `config` on every cloud and collects per-cloud records.
/// `use_l0_distance` selects Eq. 8 (count of changed points) instead of
/// Eq. 6 (L2) as the reported distance, as Table II does.
std::vector<CaseRecord> attack_cases(SegmentationModel& model,
                                     const std::vector<PointCloud>& clouds,
                                     const AttackConfig& config, bool use_l0_distance);

/// Mean clean (pre-attack) metrics over the clouds.
SegMetrics clean_metrics(SegmentationModel& model, const std::vector<PointCloud>& clouds);

}  // namespace pcss::core
