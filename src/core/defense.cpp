#include "pcss/core/defense.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "pcss/core/metrics.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/sampling.h"

namespace pcss::core {

PointCloud srs_defense(const PointCloud& cloud, std::int64_t remove_count, Rng& rng) {
  if (remove_count < 0 || remove_count >= cloud.size()) {
    throw std::invalid_argument("srs_defense: remove_count out of range");
  }
  const auto keep =
      pcss::pointcloud::random_sample(cloud.size(), cloud.size() - remove_count, rng);
  auto sorted = keep;
  std::sort(sorted.begin(), sorted.end());  // preserve original point order
  return cloud.subset(sorted);
}

PointCloud sor_defense(const PointCloud& cloud, int k, float stddev_mult,
                       float color_weight) {
  const std::int64_t n = cloud.size();
  if (n <= k) return cloud;
  // Joint color+coordinate kNN distance, as the paper revises SOR for
  // semantic segmentation.
  const float cw = std::sqrt(color_weight);
  std::vector<float> mean_d(static_cast<size_t>(n), 0.0f);
  {
    // Distances in 6-D (pos, scaled color); computed brute force through
    // the combined metric.
    const auto idx = pcss::pointcloud::knn_self(cloud.positions, k, /*include_self=*/false);
    for (std::int64_t i = 0; i < n; ++i) {
      float acc = 0.0f;
      for (int j = 0; j < k; ++j) {
        const auto nb = static_cast<size_t>(idx[i * k + j]);
        const float dp2 = pcss::pointcloud::squared_distance(
            cloud.positions[static_cast<size_t>(i)], cloud.positions[nb]);
        float dc2 = 0.0f;
        for (int a = 0; a < 3; ++a) {
          const float d = (cloud.colors[static_cast<size_t>(i)][a] - cloud.colors[nb][a]) * cw;
          dc2 += d * d;
        }
        acc += std::sqrt(dp2 + dc2);
      }
      mean_d[static_cast<size_t>(i)] = acc / static_cast<float>(k);
    }
  }
  double mean = 0.0;
  for (float d : mean_d) mean += d;
  mean /= static_cast<double>(n);
  double var = 0.0;
  for (float d : mean_d) var += (d - mean) * (d - mean);
  var /= static_cast<double>(n);
  const double threshold = mean + static_cast<double>(stddev_mult) * std::sqrt(var);

  std::vector<std::int64_t> keep;
  for (std::int64_t i = 0; i < n; ++i) {
    if (mean_d[static_cast<size_t>(i)] <= threshold) keep.push_back(i);
  }
  if (keep.empty()) return cloud;  // degenerate: refuse to drop everything
  return cloud.subset(keep);
}

DefendedEval evaluate_defended(SegmentationModel& model, const PointCloud& defended,
                               int num_classes) {
  DefendedEval out;
  out.points_kept = defended.size();
  const std::vector<int> pred = model.predict(defended);
  const SegMetrics m = evaluate_segmentation(pred, defended.labels, num_classes);
  out.accuracy = m.accuracy;
  out.aiou = m.aiou;
  return out;
}

}  // namespace pcss::core
