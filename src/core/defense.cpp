#include "pcss/core/defense.h"

namespace pcss::core {

PointCloud srs_defense(const PointCloud& cloud, std::int64_t remove_count, Rng& rng) {
  return make_srs_stage(remove_count)->apply(cloud, rng).cloud;
}

PointCloud sor_defense(const PointCloud& cloud, int k, float stddev_mult,
                       float color_weight) {
  Rng unused(0);  // SOR is deterministic; the stage never draws
  return make_sor_stage(k, stddev_mult, color_weight)->apply(cloud, unused).cloud;
}

DefendedEval evaluate_defended(SegmentationModel& model, const PointCloud& defended,
                               int num_classes) {
  Rng unused(0);
  const DefenseReport report =
      run_defended(model, DefensePipeline{}, defended, num_classes, unused);
  return {report.metrics.accuracy, report.metrics.aiou, defended.size()};
}

}  // namespace pcss::core
