#include "pcss/core/attack_engine.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"
#include "pcss/tensor/plan.h"
#include "pcss/tensor/simd.h"

namespace pcss::core {

namespace ops = pcss::tensor::ops;
namespace obs = pcss::obs;
namespace tplan = pcss::tensor::plan;
using pcss::pointcloud::Vec3;

namespace {

float atanh_clamped(float x) {
  const float c = std::clamp(x, -1.0f + 1e-6f, 1.0f - 1e-6f);
  return 0.5f * std::log((1.0f + c) / (1.0f - c));
}

/// Initialization variant: saturated channels (exactly 0 or 1) would map
/// to |w| ~ 7 where tanh' ~ 1e-6 and Adam cannot move them. Pulling the
/// start point into tanh's live region costs at most ~2% initial color
/// shift and keeps every channel attackable.
float atanh_init(float x) { return atanh_clamped(std::clamp(x, -0.96f, 0.96f)); }

std::vector<std::uint8_t> full_mask_if_empty(const std::vector<std::uint8_t>& mask,
                                             std::int64_t n) {
  if (!mask.empty()) return mask;
  return std::vector<std::uint8_t>(static_cast<size_t>(n), 1);
}

/// Eq. 12 L0 schedule: per iteration the least impactful points are
/// removed from the perturbable set until fewer than 10% of X_T remain.
struct MinImpactSchedule {
  std::vector<std::uint8_t> allowed;
  std::int64_t initial_count = 0;
  std::int64_t current_count = 0;
  std::int64_t n_per_iter = 0;
  bool restoring = true;

  void init(const std::vector<std::uint8_t>& mask, float fraction) {
    allowed = mask;
    initial_count = std::count(mask.begin(), mask.end(), std::uint8_t{1});
    current_count = initial_count;
    n_per_iter = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<float>(initial_count) * fraction));
  }

  /// Removes the n least impactful (|g . r| smallest) allowed points;
  /// returns their indices so the caller can restore their perturbation.
  std::vector<std::int64_t> restore_step(const pcss::tensor::FloatBuffer& grad,
                                         const std::vector<float>& delta) {
    if (!restoring) return {};
    std::vector<std::pair<float, std::int64_t>> impact;
    for (size_t i = 0; i < allowed.size(); ++i) {
      if (!allowed[i]) continue;
      float dot = 0.0f;
      for (int a = 0; a < 3; ++a) dot += grad[i * 3 + a] * delta[i * 3 + a];
      impact.emplace_back(std::abs(dot), static_cast<std::int64_t>(i));
    }
    const auto n = static_cast<size_t>(std::min<std::int64_t>(
        n_per_iter, static_cast<std::int64_t>(impact.size())));
    std::partial_sort(impact.begin(), impact.begin() + static_cast<std::ptrdiff_t>(n),
                      impact.end());
    std::vector<std::int64_t> removed;
    for (size_t i = 0; i < n; ++i) {
      allowed[static_cast<size_t>(impact[i].second)] = 0;
      removed.push_back(impact[i].second);
    }
    current_count -= static_cast<std::int64_t>(n);
    // Once fewer than 10% of X_T remain, perturb without restoration.
    if (current_count < initial_count / 10 + 1) restoring = false;
    return removed;
  }
};

// ---------------------------------------------------------------------------
// Objectives (Eq. 10 / Eq. 11)
// ---------------------------------------------------------------------------

class DegradationObjective final : public Objective {
 public:
  explicit DegradationObjective(float success_accuracy)
      : success_accuracy_(success_accuracy) {}

  const char* name() const override { return "performance-degradation"; }

  Tensor loss(const Tensor& logits, const PointCloud& cloud,
              const std::vector<std::uint8_t>& mask) const override {
    return ops::hinge_margin_loss(logits, cloud.labels, mask, /*targeted=*/false);
  }

  double gain(const std::vector<int>& predictions, const PointCloud& cloud,
              const std::vector<std::uint8_t>& mask, int num_classes) const override {
    const SegMetrics m =
        evaluate_segmentation_masked(predictions, cloud.labels, num_classes, mask);
    return 1.0 - m.accuracy;
  }

  bool converged(double gain) const override {
    return success_accuracy_ >= 0.0f && (1.0 - gain) <= success_accuracy_;
  }

 private:
  float success_accuracy_;
};

class HidingObjective final : public Objective {
 public:
  HidingObjective(int target_class, float success_psr)
      : target_class_(target_class), success_psr_(success_psr) {}

  const char* name() const override { return "object-hiding"; }

  Tensor loss(const Tensor& logits, const PointCloud& cloud,
              const std::vector<std::uint8_t>& mask) const override {
    std::vector<int> targets(static_cast<size_t>(cloud.size()), target_class_);
    return ops::hinge_margin_loss(logits, targets, mask, /*targeted=*/true);
  }

  double gain(const std::vector<int>& predictions, const PointCloud& /*cloud*/,
              const std::vector<std::uint8_t>& mask, int /*num_classes*/) const override {
    return point_success_rate(predictions, mask, target_class_);
  }

  bool converged(double gain) const override {
    return success_psr_ >= 0.0f && gain >= success_psr_;
  }

 private:
  int target_class_;
  float success_psr_;
};

// ---------------------------------------------------------------------------
// Bounded epsilon-clip parameterization (Algorithm 1)
// ---------------------------------------------------------------------------

class ClipProjection final : public Projection {
 public:
  explicit ClipProjection(const AttackConfig& config) : config_(config) {}

  void init(const PointCloud& cloud, const std::vector<std::uint8_t>& mask,
            Rng& rng) override {
    cloud_ = &cloud;
    mask_ = mask;
    n_ = cloud.size();
    use_color_ = config_.field != AttackField::kCoordinate;
    use_coord_ = config_.field != AttackField::kColor;
    cdelta_.assign(static_cast<size_t>(n_ * 3), 0.0f);
    pdelta_.assign(static_cast<size_t>(n_ * 3), 0.0f);

    // Random initialization (Algorithm 1); color and coordinate draws are
    // interleaved per point to keep the RNG stream stable across fields.
    for (std::int64_t i = 0; i < n_; ++i) {
      if (!mask_[static_cast<size_t>(i)]) continue;
      for (int a = 0; a < 3; ++a) {
        if (use_color_) {
          cdelta_[static_cast<size_t>(i * 3 + a)] =
              rng.uniform(-config_.epsilon, config_.epsilon);
        }
        if (use_coord_) {
          pdelta_[static_cast<size_t>(i * 3 + a)] =
              rng.uniform(-config_.coord_epsilon, config_.coord_epsilon);
        }
      }
    }
    if (use_color_) project_color();

    if (use_coord_) coord_schedule_.init(mask_, config_.min_impact_fraction);
    sparsify_color_ = use_color_ && config_.l0_on_color;
    if (sparsify_color_) color_schedule_.init(mask_, config_.min_impact_fraction);
  }

  FieldDeltas make_deltas() override {
    // The leaf tensors persist across steps: values are refreshed from
    // the raw delta storage and gradients zeroed in place, so the inner
    // loop re-tensorizes without allocating (backward() released last
    // step's graph, leaving these leaves untouched).
    FieldDeltas deltas;
    if (use_color_) {
      refresh_leaf(cd_, cdelta_);
      deltas.color = cd_;
    }
    if (use_coord_) {
      refresh_leaf(pd_, pdelta_);
      deltas.coord = pd_;
    }
    return deltas;
  }

  std::vector<Tensor> variables() override {
    // Variables live in raw storage and are re-tensorized every step;
    // tensor-based step rules (Adam) cannot bind to them.
    return {};
  }

  std::vector<VarView> views() override {
    std::vector<VarView> out;
    if (use_color_) {
      const auto& g = cd_.grad();
      out.push_back({cdelta_.data(), g.empty() ? nullptr : g.data(),
                     sparsify_color_ ? &color_schedule_.allowed : &mask_, n_});
    }
    if (use_coord_) {
      const auto& g = pd_.grad();
      out.push_back({pdelta_.data(), g.empty() ? nullptr : g.data(),
                     &coord_schedule_.allowed, n_});
    }
    return out;
  }

  void project() override {
    if (use_color_) project_color();
    if (use_coord_) {
      for (auto& d : pdelta_) d = std::clamp(d, -config_.coord_epsilon,
                                             config_.coord_epsilon);
    }
  }

  void post_step() override {
    if (use_color_ && sparsify_color_ && !cd_.grad().empty()) {
      const auto removed_pts = color_schedule_.restore_step(cd_.grad(), cdelta_);
      if (!removed_pts.empty()) ++epoch_;  // explicit capture invalidation
      for (std::int64_t removed : removed_pts) {
        for (int a = 0; a < 3; ++a) cdelta_[static_cast<size_t>(removed * 3 + a)] = 0.0f;
      }
    }
    if (use_coord_ && !pd_.grad().empty()) {
      const auto removed_pts = coord_schedule_.restore_step(pd_.grad(), pdelta_);
      if (!removed_pts.empty()) ++epoch_;
      for (std::int64_t removed : removed_pts) {
        for (int a = 0; a < 3; ++a) pdelta_[static_cast<size_t>(removed * 3 + a)] = 0.0f;
      }
    }
  }

  /// The step graph hangs off the persistent cd_/pd_ leaves whose values
  /// SignStep mutates in *raw* storage — a replay must re-run make_deltas
  /// so refresh_leaf copies the raw deltas back into the leaf tensors.
  PlanCompat plan_compat() const override { return PlanCompat::kRefreshLeaves; }

  /// Bumped on every Eq. 12 restoration. The refresh_leaf path used to
  /// silently re-zero gradients on such steps as if nothing changed; the
  /// explicit epoch makes the invalidation observable so the engine's plan
  /// fallback can key off it instead of replaying through a stale
  /// perturbable set.
  std::uint64_t plan_epoch() const override { return epoch_; }

  const std::vector<float>* final_color_delta() override {
    return use_color_ ? &cdelta_ : nullptr;
  }
  const std::vector<float>* final_coord_delta() override {
    return use_coord_ ? &pdelta_ : nullptr;
  }

 private:
  void refresh_leaf(Tensor& leaf, const std::vector<float>& values) const {
    if (!leaf.defined()) {
      leaf = Tensor::from_data({n_, 3}, values);
      leaf.set_requires_grad(true);
      return;
    }
    std::copy(values.begin(), values.end(), leaf.data());
    leaf.zero_grad();
  }

  void project_color() {
    for (std::int64_t i = 0; i < n_; ++i) {
      for (int a = 0; a < 3; ++a) {
        float& d = cdelta_[static_cast<size_t>(i * 3 + a)];
        d = std::clamp(d, -config_.epsilon, config_.epsilon);
        const float c = cloud_->colors[static_cast<size_t>(i)][a];
        d = std::clamp(c + d, 0.0f, 1.0f) - c;  // keep color physically valid
      }
    }
  }

  AttackConfig config_;
  const PointCloud* cloud_ = nullptr;
  std::vector<std::uint8_t> mask_;
  std::int64_t n_ = 0;
  bool use_color_ = false, use_coord_ = false, sparsify_color_ = false;
  std::vector<float> cdelta_, pdelta_;
  Tensor cd_, pd_;  ///< this step's leaf tensors (gradients land here)
  MinImpactSchedule coord_schedule_, color_schedule_;
  std::uint64_t epoch_ = 0;  ///< capture-invalidation counter (restorations)
};

// ---------------------------------------------------------------------------
// CW tanh reparameterization (Eq. 7) with Eq. 3/5 penalties
// ---------------------------------------------------------------------------

class TanhProjection final : public Projection {
 public:
  explicit TanhProjection(const AttackConfig& config) : config_(config) {}

  void init(const PointCloud& cloud, const std::vector<std::uint8_t>& mask,
            Rng& rng) override {
    cloud_ = &cloud;
    mask_ = mask;
    n_ = cloud.size();
    use_color_ = config_.field != AttackField::kCoordinate;
    use_coord_ = config_.field != AttackField::kColor;

    // Color maps to [0,1]; coordinates map into the cloud's bounding box.
    const auto box = pcss::pointcloud::compute_bbox(cloud.positions);
    Vec3 lo = box.min, hi = box.max;
    for (int a = 0; a < 3; ++a) {
      if (hi[a] - lo[a] < 1e-4f) hi[a] = lo[a] + 1e-4f;
    }

    w_color0_.assign(static_cast<size_t>(n_ * 3), 0.0f);
    w_coord0_.assign(static_cast<size_t>(n_ * 3), 0.0f);
    for (std::int64_t i = 0; i < n_; ++i) {
      for (int a = 0; a < 3; ++a) {
        const float c = cloud.colors[static_cast<size_t>(i)][a];
        w_color0_[static_cast<size_t>(i * 3 + a)] = atanh_init(2.0f * c - 1.0f);
        const float p = cloud.positions[static_cast<size_t>(i)][a];
        w_coord0_[static_cast<size_t>(i * 3 + a)] =
            atanh_init(2.0f * (p - lo[a]) / (hi[a] - lo[a]) - 1.0f);
      }
    }
    w_color_ = Tensor::from_data({n_, 3}, w_color0_);
    w_coord_ = Tensor::from_data({n_, 3}, w_coord0_);
    // Small random start so the optimizer does not begin exactly at zero
    // perturbation (mirrors the bounded attack's random init).
    for (std::int64_t i = 0; i < n_ * 3; ++i) {
      if (!mask_[static_cast<size_t>(i / 3)]) continue;
      if (use_color_) w_color_.data()[i] += rng.normal(0.05f);
      if (use_coord_) w_coord_.data()[i] += rng.normal(0.05f);
    }
    w_color_.set_requires_grad(use_color_);
    w_coord_.set_requires_grad(use_coord_);

    // Constant tensors reused every step.
    std::vector<float> color0(static_cast<size_t>(n_ * 3)),
        coord0(static_cast<size_t>(n_ * 3));
    for (std::int64_t i = 0; i < n_; ++i) {
      for (int a = 0; a < 3; ++a) {
        color0[static_cast<size_t>(i * 3 + a)] = cloud.colors[static_cast<size_t>(i)][a];
        coord0[static_cast<size_t>(i * 3 + a)] = cloud.positions[static_cast<size_t>(i)][a];
      }
    }
    color0_t_ = Tensor::from_data({n_, 3}, color0);
    coord0_t_ = Tensor::from_data({n_, 3}, coord0);
    std::vector<float> coord_scale(static_cast<size_t>(n_ * 3)),
        coord_offset(static_cast<size_t>(n_ * 3));
    for (std::int64_t i = 0; i < n_; ++i) {
      for (int a = 0; a < 3; ++a) {
        coord_scale[static_cast<size_t>(i * 3 + a)] = (hi[a] - lo[a]) * 0.5f;
        coord_offset[static_cast<size_t>(i * 3 + a)] = lo[a] + (hi[a] - lo[a]) * 0.5f;
      }
    }
    coord_scale_t_ = Tensor::from_data({n_, 3}, coord_scale);
    coord_offset_t_ = Tensor::from_data({n_, 3}, coord_offset);

    // Smoothness (Eq. 9) neighborhoods from the unperturbed geometry.
    alpha_ = static_cast<int>(std::min<std::int64_t>(config_.smooth_alpha, n_ - 1));
    if (alpha_ > 0) {
      smooth_idx_ = pcss::pointcloud::knn_self(cloud.positions, alpha_,
                                               /*include_self=*/false);
    }

    if (use_coord_) coord_schedule_.init(mask_, config_.min_impact_fraction);
    sparsify_color_ = use_color_ && config_.l0_on_color;
    if (sparsify_color_) color_schedule_.init(mask_, config_.min_impact_fraction);
  }

  FieldDeltas make_deltas() override {
    FieldDeltas deltas;
    if (use_color_) {
      if (!color_mask_t_.defined()) {
        color_mask_t_ =
            mask_tensor(sparsify_color_ ? color_schedule_.allowed : mask_);
      }
      Tensor mapped = ops::scale(ops::add_scalar(ops::tanh_op(w_color_), 1.0f), 0.5f);
      cdelta_t_ = ops::mul(ops::sub(mapped, color0_t_), color_mask_t_);
      deltas.color = cdelta_t_;
    }
    if (use_coord_) {
      if (!coord_mask_t_.defined()) coord_mask_t_ = mask_tensor(coord_schedule_.allowed);
      Tensor mapped =
          ops::add(ops::mul(ops::tanh_op(w_coord_), coord_scale_t_), coord_offset_t_);
      pdelta_t_ = ops::mul(ops::sub(mapped, coord0_t_), coord_mask_t_);
      deltas.coord = pdelta_t_;
    }
    return deltas;
  }

  std::vector<Tensor> variables() override {
    std::vector<Tensor> vars;
    if (use_color_) vars.push_back(w_color_);
    if (use_coord_) vars.push_back(w_coord_);
    return vars;
  }

  std::vector<VarView> views() override {
    std::vector<VarView> out;
    if (use_color_) {
      const auto& g = w_color_.grad();
      out.push_back({w_color_.data(), g.empty() ? nullptr : g.data(), &mask_, n_});
    }
    if (use_coord_) {
      const auto& g = w_coord_.grad();
      out.push_back({w_coord_.data(), g.empty() ? nullptr : g.data(), &mask_, n_});
    }
    return out;
  }

  /// Loss of Eq. 3 (hiding) / Eq. 5 (degradation):
  ///   D(R) + lambda1 * L + lambda2 * S(X').
  /// Both hinge losses are minimized: Eq. 4 writes "arg max L_NT", but
  /// maximizing the Eq. 11 hinge would *increase* the correct-class
  /// margin; the working update is descent once the loss signs are
  /// reconciled.
  Tensor total_loss(const Tensor& adversarial) override {
    Tensor distance = Tensor::from_data({1}, {0.0f});
    if (use_color_) distance = ops::add(distance, ops::sum(ops::square(cdelta_t_)));
    if (use_coord_) distance = ops::add(distance, ops::sum(ops::square(pdelta_t_)));
    Tensor loss = ops::add(distance, ops::scale(adversarial, config_.lambda1));
    if (alpha_ > 0) {
      if (use_color_) {
        Tensor smooth =
            ops::smoothness_penalty(ops::add(color0_t_, cdelta_t_), smooth_idx_, alpha_);
        loss = ops::add(loss, ops::scale(smooth, config_.lambda2));
      }
      if (use_coord_) {
        Tensor smooth =
            ops::smoothness_penalty(ops::add(coord0_t_, pdelta_t_), smooth_idx_, alpha_);
        loss = ops::add(loss, ops::scale(smooth, config_.lambda2));
      }
    }
    return loss;
  }

  void observe_gain(double gain) override {
    if (gain > best_gain_ + 1e-9) {
      best_gain_ = gain;
      if (use_color_) {
        best_cdelta_.assign(cdelta_t_.data(), cdelta_t_.data() + n_ * 3);
      }
      if (use_coord_) {
        best_pdelta_.assign(pdelta_t_.data(), pdelta_t_.data() + n_ * 3);
      }
    }
  }

  /// Random restart when the gain stalls (paper §IV-B): add uniform
  /// noise to the optimization variable on the attacked points.
  void random_restart(Rng& rng) override {
    for (std::int64_t i = 0; i < n_; ++i) {
      if (!mask_[static_cast<size_t>(i)]) continue;
      for (int a = 0; a < 3; ++a) {
        if (use_color_) w_color_.data()[i * 3 + a] += rng.uniform(0.0f, 1.0f) - 0.5f;
        if (use_coord_) w_coord_.data()[i * 3 + a] += rng.uniform(0.0f, 1.0f) - 0.5f;
      }
    }
  }

  /// Eq. 12 restoration: reset the restored points' variables to their
  /// zero-perturbation value.
  void post_step() override {
    if (use_coord_ && !w_coord_.grad().empty()) {
      std::vector<float> pdata(pdelta_t_.data(), pdelta_t_.data() + n_ * 3);
      const auto removed_pts = coord_schedule_.restore_step(w_coord_.grad(), pdata);
      if (!removed_pts.empty()) {
        // Schedule shrank: the next make_deltas builds a fresh mask node,
        // so any captured graph (which multiplies by the *old* node) is
        // structurally stale — bump the epoch to force re-capture.
        coord_mask_t_ = Tensor();
        ++epoch_;
      }
      for (std::int64_t removed : removed_pts) {
        for (int a = 0; a < 3; ++a) {
          w_coord_.data()[removed * 3 + a] = w_coord0_[static_cast<size_t>(removed * 3 + a)];
        }
      }
    }
    if (sparsify_color_ && !w_color_.grad().empty()) {
      std::vector<float> cdata(cdelta_t_.data(), cdelta_t_.data() + n_ * 3);
      const auto removed_pts = color_schedule_.restore_step(w_color_.grad(), cdata);
      if (!removed_pts.empty()) {
        color_mask_t_ = Tensor();
        ++epoch_;
      }
      for (std::int64_t removed : removed_pts) {
        for (int a = 0; a < 3; ++a) {
          w_color_.data()[removed * 3 + a] = w_color0_[static_cast<size_t>(removed * 3 + a)];
        }
      }
    }
  }

  /// The whole tanh mapping + penalty graph replays: the optimization
  /// variables (w_color_/w_coord_) are persistent leaves Adam updates in
  /// place, and cdelta_t_/pdelta_t_ keep pointing at the captured mapped
  /// nodes so observe_gain reads replay-fresh values.
  PlanCompat plan_compat() const override { return PlanCompat::kCapturedGraph; }
  std::uint64_t plan_epoch() const override { return epoch_; }

  const std::vector<float>* final_color_delta() override {
    materialize();
    return use_color_ ? &best_cdelta_ : nullptr;
  }
  const std::vector<float>* final_coord_delta() override {
    materialize();
    return use_coord_ ? &best_pdelta_ : nullptr;
  }

 private:
  void materialize() {
    if (best_gain_ < 0.0) {  // no step ran; fall back to zero perturbation
      best_cdelta_.assign(static_cast<size_t>(n_ * 3), 0.0f);
      best_pdelta_.assign(static_cast<size_t>(n_ * 3), 0.0f);
      best_gain_ = 0.0;
    }
  }

  Tensor mask_tensor(const std::vector<std::uint8_t>& m) const {
    std::vector<float> md(static_cast<size_t>(n_ * 3), 0.0f);
    for (std::int64_t i = 0; i < n_; ++i) {
      if (m[static_cast<size_t>(i)]) {
        for (int a = 0; a < 3; ++a) md[static_cast<size_t>(i * 3 + a)] = 1.0f;
      }
    }
    return Tensor::from_data({n_, 3}, std::move(md));
  }

  AttackConfig config_;
  const PointCloud* cloud_ = nullptr;
  std::vector<std::uint8_t> mask_;
  std::int64_t n_ = 0;
  bool use_color_ = false, use_coord_ = false, sparsify_color_ = false;
  int alpha_ = 0;
  std::vector<float> w_color0_, w_coord0_;
  Tensor w_color_, w_coord_;
  Tensor color0_t_, coord0_t_, coord_scale_t_, coord_offset_t_;
  std::vector<std::int64_t> smooth_idx_;
  Tensor cdelta_t_, pdelta_t_;  ///< this step's mapped deltas
  /// Cached constant mask tensors; invalidated when a restoration step
  /// shrinks the corresponding schedule.
  Tensor color_mask_t_, coord_mask_t_;
  MinImpactSchedule coord_schedule_, color_schedule_;
  std::uint64_t epoch_ = 0;  ///< capture-invalidation counter (mask resets)
  double best_gain_ = -1.0;
  std::vector<float> best_cdelta_, best_pdelta_;
};

// ---------------------------------------------------------------------------
// Step rules
// ---------------------------------------------------------------------------

class SignStep final : public StepRule {
 public:
  explicit SignStep(float step_size) : step_size_(step_size) {}

  void apply(Projection& projection) override {
    // Sign-of-gradient descent; both hinges (Eq. 10 and Eq. 11) are
    // positive while the attack has not yet succeeded on a point, so
    // descent is the working direction for both objectives.
    for (const auto& view : projection.views()) {
      if (view.grad == nullptr) continue;
      for (std::int64_t i = 0; i < view.points; ++i) {
        if (!(*view.active)[static_cast<size_t>(i)]) continue;
        for (int a = 0; a < 3; ++a) {
          const float gv = view.grad[i * 3 + a];
          if (gv != 0.0f) {
            view.value[i * 3 + a] -= step_size_ * (gv > 0.0f ? 1.0f : -1.0f);
          }
        }
      }
    }
  }

 private:
  float step_size_;
};

class AdamStep final : public StepRule {
 public:
  explicit AdamStep(float lr) : lr_(lr) {}

  void zero_grad(Projection& projection) override {
    ensure(projection);
    opt_->zero_grad();
  }

  void apply(Projection& projection) override {
    ensure(projection);
    opt_->step();
  }

 private:
  void ensure(Projection& projection) {
    if (!opt_) {
      auto vars = projection.variables();
      if (vars.empty()) {
        throw std::logic_error(
            "AdamStep: projection exposes no persistent variables; "
            "use a sign step or a tanh-style projection");
      }
      opt_ = std::make_unique<pcss::tensor::optim::Adam>(std::move(vars), lr_);
    }
  }

  float lr_;
  std::unique_ptr<pcss::tensor::optim::Adam> opt_;
};

// ---------------------------------------------------------------------------
// Stop criterion
// ---------------------------------------------------------------------------

class StandardStop final : public StopCriterion {
 public:
  StandardStop(int max_steps, int stall_patience)
      : max_steps_(max_steps), stall_patience_(stall_patience) {}

  int max_steps() const override { return max_steps_; }

  StepAction on_gain(int /*step*/, double gain, bool converged) override {
    if (stall_patience_ > 0) {
      if (gain > best_gain_ + 1e-9) {
        best_gain_ = gain;
        stall_ = 0;
      } else {
        ++stall_;
      }
    }
    if (converged) return StepAction::kStop;
    if (stall_patience_ > 0 && stall_ >= stall_patience_) {
      stall_ = 0;
      return StepAction::kRestart;
    }
    return StepAction::kContinue;
  }

 private:
  int max_steps_;
  int stall_patience_;
  double best_gain_ = -1.0;
  int stall_ = 0;
};

// ---------------------------------------------------------------------------
// Shared helpers
// ---------------------------------------------------------------------------

/// Temporarily disables gradient accumulation into the model's
/// parameters. Attacks only need input gradients; skipping parameter
/// accumulation makes concurrent backward passes over one shared model
/// race-free (and saves work).
class ScopedParamFreeze {
 public:
  explicit ScopedParamFreeze(SegmentationModel& model) : params_(model.parameters()) {
    saved_.reserve(params_.size());
    for (auto& p : params_) {
      saved_.push_back(p.requires_grad());
      p.set_requires_grad(false);
    }
  }
  ~ScopedParamFreeze() {
    for (size_t i = 0; i < params_.size(); ++i) params_[i].set_requires_grad(saved_[i]);
  }
  ScopedParamFreeze(const ScopedParamFreeze&) = delete;
  ScopedParamFreeze& operator=(const ScopedParamFreeze&) = delete;

 private:
  std::vector<Tensor> params_;
  std::vector<bool> saved_;
};

/// Long-lived worker pool for loops that dispatch many small parallel
/// rounds (run_shared runs one round per optimization step). Unlike
/// parallel_for, the threads persist across rounds, so each worker's
/// thread-local tensor buffer pool stays warm instead of being rebuilt
/// from malloc and torn down every step. Job results are independent;
/// scheduling affects only timing, never values.
class WorkerPool {
 public:
  explicit WorkerPool(int workers) {
    for (int t = 0; t < workers - 1; ++t) {
      threads_.emplace_back([this] { worker_loop(); });
    }
  }

  ~WorkerPool() {
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    cv_.notify_all();
    for (auto& thread : threads_) thread.join();
  }

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  void run(std::size_t jobs, const std::function<void(std::size_t)>& fn) {
    if (threads_.empty() || jobs <= 1) {
      for (std::size_t i = 0; i < jobs; ++i) fn(i);
      return;
    }
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      fn_ = &fn;
      jobs_ = jobs;
      next_.store(0);
      failed_.store(false);
      error_ = nullptr;
      active_ = static_cast<int>(threads_.size());
      ++generation_;
    }
    cv_.notify_all();
    drain();  // the calling thread participates
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [this] { return active_ == 0; });
    fn_ = nullptr;
    if (error_) std::rethrow_exception(error_);
  }

 private:
  void worker_loop() {
    std::uint64_t seen_generation = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
      cv_.wait(lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      lock.unlock();
      drain();
      lock.lock();
      if (--active_ == 0) cv_done_.notify_all();
    }
  }

  /// Claims indices until the round is exhausted. On an exception the
  /// first error is kept and remaining indices drain without executing.
  void drain() {
    for (;;) {
      const std::size_t i = next_.fetch_add(1);
      if (i >= jobs_) return;
      if (failed_.load(std::memory_order_relaxed)) continue;
      try {
        (*fn_)(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
        failed_.store(true, std::memory_order_relaxed);
      }
    }
  }

  std::vector<std::thread> threads_;  // pcss-lint: allow(C001) — this IS the WorkerPool
  // GUARDS: fn_, jobs_, error_, active_, generation_, stop_ (round
  // hand-off state; next_/failed_ are atomics claimed lock-free in drain)
  std::mutex mutex_;
  std::condition_variable cv_, cv_done_;
  const std::function<void(std::size_t)>* fn_ = nullptr;
  std::size_t jobs_ = 0;
  std::atomic<std::size_t> next_{0};
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  int active_ = 0;
  std::uint64_t generation_ = 0;
  bool stop_ = false;
};

/// Runs fn(0..jobs-1) across `workers` threads (inline when <= 1) via a
/// one-shot WorkerPool, so there is a single work-distribution and
/// error-propagation implementation. Deterministic for independent jobs:
/// scheduling affects only timing.
void parallel_for(std::size_t jobs, int workers,
                  const std::function<void(std::size_t)>& fn) {
  WorkerPool pool(workers);
  pool.run(jobs, fn);
}

std::string join_errors(const std::vector<std::string>& errors) {
  std::ostringstream os;
  os << "invalid AttackConfig:";
  for (const auto& e : errors) os << "\n  - " << e;
  return os.str();
}

}  // namespace

// ---------------------------------------------------------------------------
// Built-in strategy factories
// ---------------------------------------------------------------------------

std::unique_ptr<Objective> make_degradation_objective(float success_accuracy) {
  return std::make_unique<DegradationObjective>(success_accuracy);
}
std::unique_ptr<Objective> make_hiding_objective(int target_class, float success_psr) {
  return std::make_unique<HidingObjective>(target_class, success_psr);
}
std::unique_ptr<Projection> make_clip_projection(const AttackConfig& config) {
  return std::make_unique<ClipProjection>(config);
}
std::unique_ptr<Projection> make_tanh_projection(const AttackConfig& config) {
  return std::make_unique<TanhProjection>(config);
}
std::unique_ptr<StepRule> make_sign_step(float step_size) {
  return std::make_unique<SignStep>(step_size);
}
std::unique_ptr<StepRule> make_adam_step(float lr) {
  return std::make_unique<AdamStep>(lr);
}
std::unique_ptr<StopCriterion> make_standard_stop(int max_steps, int stall_patience) {
  return std::make_unique<StandardStop>(max_steps, stall_patience);
}

AttackRecipe AttackRecipe::from_config(const AttackConfig& config) {
  AttackRecipe recipe;
  recipe.make_objective = [config]() -> std::unique_ptr<Objective> {
    if (config.objective == AttackObjective::kObjectHiding) {
      return make_hiding_objective(config.target_class, config.success_psr);
    }
    return make_degradation_objective(config.success_accuracy);
  };
  recipe.make_projection = [config]() -> std::unique_ptr<Projection> {
    return config.norm == AttackNorm::kBounded ? make_clip_projection(config)
                                               : make_tanh_projection(config);
  };
  recipe.make_step_rule = [config]() -> std::unique_ptr<StepRule> {
    return config.norm == AttackNorm::kBounded ? make_sign_step(config.step_size)
                                               : make_adam_step(config.adam_lr);
  };
  recipe.make_stop = [config]() -> std::unique_ptr<StopCriterion> {
    // The bounded attack never restarts (Algorithm 1); the unbounded
    // CW loop uses the paper's stall-triggered restart.
    return config.norm == AttackNorm::kBounded
               ? make_standard_stop(config.steps, /*stall_patience=*/0)
               : make_standard_stop(config.cw_steps, config.stall_patience);
  };
  return recipe;
}

// ---------------------------------------------------------------------------
// AttackEngine
// ---------------------------------------------------------------------------

AttackEngine::AttackEngine(SegmentationModel& model, AttackConfig config)
    : AttackEngine(model, std::move(config), AttackRecipe{}) {}

AttackEngine::AttackEngine(SegmentationModel& model, AttackConfig config,
                           AttackRecipe recipe)
    : model_(model), config_(std::move(config)), recipe_(std::move(recipe)) {
  const auto errors = config_.validate(model_.num_classes());
  if (!errors.empty()) throw std::invalid_argument(join_errors(errors));
  // Fill unset slots with the paper's default composition, so callers can
  // override a single strategy without restating the rest.
  AttackRecipe defaults = AttackRecipe::from_config(config_);
  if (!recipe_.make_objective) recipe_.make_objective = std::move(defaults.make_objective);
  if (!recipe_.make_projection) {
    recipe_.make_projection = std::move(defaults.make_projection);
  }
  if (!recipe_.make_step_rule) recipe_.make_step_rule = std::move(defaults.make_step_rule);
  if (!recipe_.make_stop) recipe_.make_stop = std::move(defaults.make_stop);
}

int AttackEngine::worker_count(std::size_t jobs, int threads) const {
  int workers = threads;
  if (workers <= 0) {
    workers = static_cast<int>(std::thread::hardware_concurrency());
    if (workers <= 0) workers = 1;
  }
  return static_cast<int>(
      std::min<std::size_t>(static_cast<std::size_t>(workers), std::max<std::size_t>(jobs, 1)));
}

void AttackEngine::emit(const ExecPolicy& policy, const AttackProgress& event) const {
  if (!policy.observer) return;
  const std::lock_guard<std::mutex> lock(observer_mutex_);
  policy.observer(event);
}

AttackResult AttackEngine::run(const PointCloud& cloud) const {
  return run(cloud, config_.seed, setter_policy());
}

AttackResult AttackEngine::run(const PointCloud& cloud, std::uint64_t seed) const {
  return run(cloud, seed, setter_policy());
}

AttackResult AttackEngine::run(const PointCloud& cloud, const ExecPolicy& policy) const {
  return run(cloud, config_.seed, policy);
}

AttackResult AttackEngine::run(const PointCloud& cloud, std::uint64_t seed,
                               const ExecPolicy& policy) const {
  ScopedParamFreeze freeze(model_);
  return attack_cloud(cloud, seed, 0, policy);
}

std::vector<AttackResult> AttackEngine::run_batch(
    std::span<const PointCloud> clouds) const {
  return run_batch(clouds, setter_policy());
}

std::vector<AttackResult> AttackEngine::run_batch(std::span<const PointCloud> clouds,
                                                  const ExecPolicy& policy) const {
  ScopedParamFreeze freeze(model_);
  std::vector<AttackResult> results(clouds.size());
  parallel_for(clouds.size(), worker_count(clouds.size(), policy.threads),
               [&](std::size_t i) {
                 results[i] = attack_cloud(clouds[i], config_.seed + i, i, policy);
               });
  return results;
}

AttackResult AttackEngine::attack_cloud(const PointCloud& cloud, std::uint64_t seed,
                                        std::size_t cloud_index,
                                        const ExecPolicy& policy) const {
  if (cloud.empty()) throw std::invalid_argument("AttackEngine: empty cloud");
  if (!config_.target_mask.empty() &&
      config_.target_mask.size() != static_cast<size_t>(cloud.size())) {
    throw std::invalid_argument("AttackEngine: target_mask size mismatch");
  }
  const auto mask = full_mask_if_empty(config_.target_mask, cloud.size());

  // Telemetry only (never reaches AttackResult or any cached document):
  // spans for the trace timeline, a per-model x ISA step-latency
  // histogram, and a global step counter. Labels are interned once per
  // process; the histogram lookup happens once per cloud.
  static const obs::trace::Label kCloudSpan = obs::trace::intern("attack.cloud");
  static const obs::trace::Label kStepSpan = obs::trace::intern("attack.step");
  static const obs::trace::Label kForwardSpan = obs::trace::intern("attack.forward");
  static const obs::trace::Label kObjectiveSpan = obs::trace::intern("attack.objective");
  static const obs::trace::Label kBackwardSpan = obs::trace::intern("attack.backward");
  static const obs::trace::Label kProjectionSpan = obs::trace::intern("attack.projection");
  static const obs::trace::Label kStepArg = obs::trace::intern("step");
  obs::metrics::Histogram& step_ms = obs::metrics::histogram(
      std::string("attack.step_ms.") + model_.name() + "." +
      tensor::simd::active_name());
  obs::metrics::Counter& steps_total = obs::metrics::counter("attack.steps");
  obs::metrics::Counter& plan_captures = obs::metrics::counter("plan.captures");
  obs::metrics::Counter& plan_replays = obs::metrics::counter("plan.replays");
  obs::metrics::Counter& plan_fallbacks = obs::metrics::counter("plan.fallbacks");
  obs::trace::ScopedSpan cloud_span(kCloudSpan);

  Rng rng(seed);
  auto objective = recipe_.make_objective();
  auto projection = recipe_.make_projection();
  auto step_rule = recipe_.make_step_rule();
  auto stop = recipe_.make_stop();
  projection->init(cloud, mask, rng);

  // Capture-once / replay-many: the first eager step is recorded into a
  // compiled plan and subsequent steps replay its flat op schedule
  // (byte-identical by construction — same kernels, same buffers, same
  // order). Restricted to color-field attacks: coordinate deltas change
  // the host-side neighbor graphs every step, so there is no fixed graph
  // to capture, and skipping that rebuild is exactly what replay buys.
  const PlanCompat plan_compat = projection->plan_compat();
  bool plan_enabled = policy.plan && config_.use_plan &&
                      config_.field == AttackField::kColor &&
                      model_.plan_safe_forward() &&
                      plan_compat != PlanCompat::kIncompatible;
  tplan::CompiledPlan plan;
  Tensor plan_logits;  // keeps the captured graph's output node alive
  std::uint64_t plan_epoch = 0;

  int step = 0;
  const int budget = stop->max_steps();
  for (; step < budget; ++step) {
    obs::trace::ScopedSpan step_span(kStepSpan);
    step_span.arg(kStepArg, step);
    obs::metrics::ScopedTimerMs step_timer(step_ms);
    steps_total.add(1);

    if (plan.valid() && projection->plan_epoch() != plan_epoch) {
      // The projection invalidated the captured graph (an L0 restoration
      // changed its shape): drop the plan and fall back to an eager step,
      // which re-captures below.
      plan.reset();
      plan_logits = Tensor();
      plan_fallbacks.add(1);
    }

    if (plan.valid()) {
      plan_replays.add(1);
      if (plan_compat == PlanCompat::kRefreshLeaves) {
        // Values live in raw projection storage; copy them back into the
        // captured leaf tensors (and zero their grads) before replaying.
        (void)projection->make_deltas();
      }
      {
        obs::trace::ScopedSpan span(kForwardSpan);
        plan.replay_forward();
      }
      const std::vector<int> pred = ops::argmax_rows(plan_logits);
      const double gain = objective->gain(pred, cloud, mask, model_.num_classes());
      projection->observe_gain(gain);
      emit(policy, {cloud_index, step, gain});

      const StepAction action = stop->on_gain(step, gain, objective->converged(gain));
      if (action == StepAction::kStop) break;

      step_rule->zero_grad(*projection);
      {
        obs::trace::ScopedSpan span(kBackwardSpan);
        plan.replay_backward();
      }
      {
        obs::trace::ScopedSpan span(kProjectionSpan);
        step_rule->apply(*projection);
        projection->project();
        if (action == StepAction::kRestart) projection->random_restart(rng);
        projection->post_step();
      }
      continue;
    }

    std::optional<tplan::PlanBuilder> builder;
    if (plan_enabled) builder.emplace();
    FieldDeltas deltas = projection->make_deltas();
    ModelInput input{&cloud, deltas.color, deltas.coord};
    Tensor logits = [&] {
      obs::trace::ScopedSpan span(kForwardSpan);
      return model_.forward(input, /*training=*/false);
    }();
    const std::vector<int> pred = ops::argmax_rows(logits);
    const double gain = objective->gain(pred, cloud, mask, model_.num_classes());
    projection->observe_gain(gain);
    emit(policy, {cloud_index, step, gain});

    const StepAction action = stop->on_gain(step, gain, objective->converged(gain));
    if (action == StepAction::kStop) break;  // builder dtor aborts the capture

    Tensor loss = [&] {
      obs::trace::ScopedSpan span(kObjectiveSpan);
      return projection->total_loss(objective->loss(logits, cloud, mask));
    }();
    step_rule->zero_grad(*projection);
    {
      obs::trace::ScopedSpan span(kBackwardSpan);
      loss.backward();
    }
    if (builder) {
      if (builder->finish(plan)) {
        plan_logits = logits;
        plan_epoch = projection->plan_epoch();
        plan_captures.add(1);
      } else {
        // Uncapturable op in the graph (training-mode statistics, fresh
        // RNG state): stay eager for the rest of this run.
        plan_enabled = false;
        plan_fallbacks.add(1);
      }
    }
    {
      obs::trace::ScopedSpan span(kProjectionSpan);
      step_rule->apply(*projection);
      projection->project();
      if (action == StepAction::kRestart) projection->random_restart(rng);
      projection->post_step();
    }
  }

  AttackResult result;
  result.steps_used = step;
  result.perturbed = apply_field_deltas(cloud, projection->final_color_delta(),
                                        projection->final_coord_delta());
  result.predictions = model_.predict(result.perturbed);
  measure_perturbation(cloud, result.perturbed, result);
  return result;
}

SharedDeltaResult AttackEngine::run_shared(std::span<const PointCloud> clouds) const {
  return run_shared(clouds, setter_policy());
}

SharedDeltaResult AttackEngine::run_shared(std::span<const PointCloud> clouds,
                                           const ExecPolicy& policy) const {
  if (clouds.empty()) throw std::invalid_argument("run_shared: no clouds");
  // The shared-delta loop always runs sign-PGD on the color field, so it
  // needs the bounded-attack fields even when config.norm is kUnbounded
  // (where validate() does not require them).
  if (config_.steps <= 0 || config_.epsilon <= 0.0f || config_.step_size <= 0.0f) {
    throw std::invalid_argument(
        "run_shared: needs positive steps, epsilon and step_size "
        "(the shared delta is optimized with bounded sign-PGD)");
  }
  const std::int64_t n = clouds.front().size();
  for (const auto& c : clouds) {
    if (c.size() != n) {
      throw std::invalid_argument("run_shared: clouds must be index-aligned");
    }
  }
  ScopedParamFreeze freeze(model_);
  // One persistent pool for every per-step round: worker threads (and
  // their thread-local tensor buffer pools) live for the whole run
  // instead of being respawned each optimization step.
  WorkerPool pool(worker_count(clouds.size(), policy.threads));

  Rng rng(config_.seed);
  SharedDeltaResult result;
  result.color_delta.assign(static_cast<size_t>(n * 3), 0.0f);
  for (auto& v : result.color_delta) v = rng.uniform(-config_.epsilon, config_.epsilon);

  result.accuracy_before.resize(clouds.size());
  pool.run(clouds.size(), [&](std::size_t ci) {
    const auto pred = model_.predict(clouds[ci]);
    result.accuracy_before[ci] =
        evaluate_segmentation(pred, clouds[ci].labels, model_.num_classes()).accuracy;
  });

  // Min-max style weights: clouds whose hinge loss is still high (attack
  // not yet succeeding) receive more of the shared update budget. The
  // per-cloud gradient passes are independent and run on the pool; the
  // weighted accumulation below walks clouds in index order, so the
  // result is identical to sequential execution.
  std::vector<double> weights(clouds.size(), 1.0);
  // Per-cloud leaf tensors persist across steps: each step refreshes the
  // values from the shared delta and zeroes the gradient in place instead
  // of re-tensorizing (backward() released the previous step's graph).
  std::vector<Tensor> deltas(clouds.size());
  std::vector<float> losses(clouds.size(), 0.0f);
  // Per-cloud compiled plans: round 0 captures each cloud's gradient pass,
  // later rounds refresh the leaf values and replay the flat schedule.
  // A plan may replay on a different worker thread than the one that
  // captured it — safe, because replay touches only the pinned buffers and
  // pool.run barriers order the rounds. plan_dead marks clouds whose
  // capture failed (they stay eager for the whole run).
  const bool plans_enabled =
      policy.plan && config_.use_plan && model_.plan_safe_forward();
  std::vector<tplan::CompiledPlan> plans(clouds.size());
  std::vector<Tensor> plan_losses(clouds.size());
  std::vector<std::uint8_t> plan_dead(clouds.size(), 0);
  // Telemetry only: one span per shared-PGD round plus a per-cloud
  // gradient-pass span emitted from the worker threads.
  static const obs::trace::Label kRoundSpan = obs::trace::intern("attack.shared.step");
  static const obs::trace::Label kGradSpan = obs::trace::intern("attack.shared.grad");
  static const obs::trace::Label kStepArg = obs::trace::intern("step");
  obs::metrics::Counter& shared_steps = obs::metrics::counter("attack.shared.steps");
  obs::metrics::Counter& plan_captures = obs::metrics::counter("plan.captures");
  obs::metrics::Counter& plan_replays = obs::metrics::counter("plan.replays");
  obs::metrics::Counter& plan_fallbacks = obs::metrics::counter("plan.fallbacks");
  int step = 0;
  for (; step < config_.steps; ++step) {
    obs::trace::ScopedSpan round_span(kRoundSpan);
    round_span.arg(kStepArg, step);
    shared_steps.add(1);
    pool.run(clouds.size(), [&](std::size_t ci) {
      obs::trace::ScopedSpan grad_span(kGradSpan);
      Tensor& delta = deltas[ci];
      if (plans[ci].valid()) {
        plan_replays.add(1);
        std::copy(result.color_delta.begin(), result.color_delta.end(), delta.data());
        plans[ci].replay_forward();
        plans[ci].replay_backward();
        losses[ci] = plan_losses[ci].item();
        return;
      }
      std::optional<tplan::PlanBuilder> builder;
      if (plans_enabled && !plan_dead[ci]) builder.emplace();
      if (!delta.defined()) {
        delta = Tensor::from_data({n, 3}, result.color_delta);
        delta.set_requires_grad(true);
      } else {
        std::copy(result.color_delta.begin(), result.color_delta.end(), delta.data());
        delta.zero_grad();
      }
      ModelInput input{&clouds[ci], delta, {}};
      Tensor logits = model_.forward(input, /*training=*/false);
      Tensor loss = ops::hinge_margin_loss(logits, clouds[ci].labels, {},
                                           /*targeted=*/false);
      loss.backward();
      losses[ci] = loss.item();
      if (builder) {
        if (builder->finish(plans[ci])) {
          plan_losses[ci] = loss;
          plan_captures.add(1);
        } else {
          plan_dead[ci] = 1;
          plan_fallbacks.add(1);
        }
      }
    });

    std::vector<double> grad_sum(static_cast<size_t>(n * 3), 0.0);
    double weight_total = 0.0;
    for (std::size_t ci = 0; ci < clouds.size(); ++ci) {
      weights[ci] = 0.5 + static_cast<double>(losses[ci]) /
                              (1.0 + static_cast<double>(losses[ci]));
      weight_total += weights[ci];
      const auto& g = deltas[ci].grad();
      if (!g.empty()) {
        for (size_t i = 0; i < grad_sum.size(); ++i) {
          grad_sum[i] += weights[ci] * static_cast<double>(g[i]);
        }
      }
    }
    if (weight_total <= 0.0) break;
    for (size_t i = 0; i < grad_sum.size(); ++i) {
      const double g = grad_sum[i];
      if (g == 0.0) continue;
      float& d = result.color_delta[i];
      // Descend the summed hinge (all clouds' margins shrink together).
      d -= config_.step_size * (g > 0.0 ? 1.0f : -1.0f);
      d = std::clamp(d, -config_.epsilon, config_.epsilon);
    }
  }
  result.steps_used = step;

  result.accuracy_after.resize(clouds.size());
  pool.run(clouds.size(), [&](std::size_t ci) {
    const PointCloud adv = apply_field_deltas(clouds[ci], &result.color_delta, nullptr);
    const auto pred = model_.predict(adv);
    result.accuracy_after[ci] =
        evaluate_segmentation(pred, clouds[ci].labels, model_.num_classes()).accuracy;
  });
  return result;
}

}  // namespace pcss::core
