#include "pcss/core/defended_model.h"

#include <algorithm>
#include <stdexcept>

#include "pcss/core/attack.h"
#include "pcss/obs/trace.h"
#include "pcss/tensor/ops.h"

namespace pcss::core {

namespace ops = pcss::tensor::ops;
using pcss::models::Vec3;

DefendedModel::DefendedModel(SegmentationModel& inner, DefensePipeline pipeline,
                             DefendedModelOptions options)
    : inner_(inner), pipeline_(std::move(pipeline)), options_(options) {
  if (options_.eot_samples < 1) {
    throw std::invalid_argument("DefendedModel: eot_samples must be >= 1");
  }
  if (options_.eot_samples > 1 && !pipeline_.stochastic()) {
    throw std::invalid_argument(
        "DefendedModel: eot_samples > 1 needs a stochastic pipeline "
        "(every sample of a deterministic defense is identical)");
  }
}

std::string DefendedModel::name() const {
  return inner_.name() + "+defended[" + pipeline_.describe() + "]";
}

Rng DefendedModel::stream(const PointCloud& perturbed, int sample) const {
  // Pure function of (seed, input bytes, sample): no per-instance state,
  // so concurrent engine workers and any shard partitioning see the
  // same draws for the same perturbed cloud.
  std::uint64_t hash = fnv64_bytes(perturbed.positions.data(),
                                   perturbed.positions.size() * sizeof(Vec3));
  hash = fnv64_bytes(perturbed.colors.data(), perturbed.colors.size() * sizeof(Vec3), hash);
  hash = fnv64_bytes(&options_.seed, sizeof(options_.seed), hash);
  const std::uint64_t s = static_cast<std::uint64_t>(sample);
  hash = fnv64_bytes(&s, sizeof(s), hash);
  return Rng(hash);
}

namespace {

/// Differentiable delta rows for the surviving points of one field.
///
/// The inner model must see exactly the defended values, while gradient
/// flows to the attacker's full-cloud delta through a row gather: the
/// returned tensor is gather(full_delta, kept) plus a constant residual
/// that accounts for anything the numeric path changed (color clamping,
/// quantization) — the straight-through estimate. Undefined when the
/// field is untouched (no incoming delta and no defense-made change).
Tensor defended_field_delta(const Tensor& full_delta, const float* full_numeric,
                            const std::vector<Vec3>& defended_values,
                            const std::vector<Vec3>& base_values,
                            const std::vector<std::int64_t>& kept) {
  const std::int64_t m = static_cast<std::int64_t>(kept.size());
  std::vector<float> residual(static_cast<size_t>(m * 3), 0.0f);
  bool any = false;
  for (std::int64_t i = 0; i < m; ++i) {
    for (int a = 0; a < 3; ++a) {
      const float applied =
          full_numeric != nullptr ? full_numeric[kept[static_cast<size_t>(i)] * 3 + a] : 0.0f;
      const float r = defended_values[static_cast<size_t>(i)][a] -
                      base_values[static_cast<size_t>(i)][a] - applied;
      residual[static_cast<size_t>(i * 3 + a)] = r;
      if (r != 0.0f) any = true;
    }
  }
  if (full_delta.defined()) {
    Tensor gathered = ops::gather_rows(full_delta, kept);
    if (!any) return gathered;
    return ops::add(gathered, Tensor::from_data({m, 3}, std::move(residual)));
  }
  if (!any) return {};
  return Tensor::from_data({m, 3}, std::move(residual));
}

}  // namespace

Tensor DefendedModel::forward(const ModelInput& input, bool training) {
  if (pipeline_.empty()) return inner_.forward(input, training);
  if (input.cloud == nullptr) throw std::invalid_argument("DefendedModel: null cloud");
  // Telemetry only: a span around the defended forward (pipeline apply +
  // EOT samples + inner forwards). eot_samples rides along as the arg.
  static const obs::trace::Label kSpan = obs::trace::intern("defense.forward");
  static const obs::trace::Label kEotArg = obs::trace::intern("eot_samples");
  obs::trace::ScopedSpan span(kSpan);
  span.arg(kEotArg, options_.eot_samples);
  const PointCloud& cloud = *input.cloud;
  const std::int64_t n = cloud.size();
  const int classes = inner_.num_classes();

  // Materialize the numeric perturbation the defender would actually
  // see; stage selection (SOR statistics, voxel occupancy, SRS draws)
  // runs on it.
  std::vector<float> color_numeric, coord_numeric;
  if (input.color_delta.defined()) {
    color_numeric.assign(input.color_delta.data(), input.color_delta.data() + n * 3);
  }
  if (input.coord_delta.defined()) {
    coord_numeric.assign(input.coord_delta.data(), input.coord_delta.data() + n * 3);
  }
  const PointCloud perturbed =
      apply_field_deltas(cloud, color_numeric.empty() ? nullptr : &color_numeric,
                         coord_numeric.empty() ? nullptr : &coord_numeric);

  // One-hot ground-truth fill for dropped rows: a point the defense
  // removed cannot be flipped by the attacker, so its row scores as
  // still-correct and contributes no gradient.
  std::vector<float> fill(static_cast<size_t>(n * classes), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    const int label = cloud.labels[static_cast<size_t>(i)];
    if (label >= 0 && label < classes) fill[static_cast<size_t>(i * classes + label)] = 1.0f;
  }

  Tensor total;
  for (int s = 0; s < options_.eot_samples; ++s) {
    Rng rng = stream(perturbed, s);
    const DefenseOutcome outcome = pipeline_.apply(perturbed, rng);
    const PointCloud base = cloud.subset(outcome.kept);

    ModelInput sub;
    sub.cloud = &base;
    sub.color_delta = defended_field_delta(
        input.color_delta, color_numeric.empty() ? nullptr : color_numeric.data(),
        outcome.cloud.colors, base.colors, outcome.kept);
    sub.coord_delta = defended_field_delta(
        input.coord_delta, coord_numeric.empty() ? nullptr : coord_numeric.data(),
        outcome.cloud.positions, base.positions, outcome.kept);

    Tensor logits = inner_.forward(sub, training);
    Tensor full = ops::scatter_rows(logits, outcome.kept, n, fill);
    total = total.defined() ? ops::add(total, full) : full;
  }
  if (options_.eot_samples > 1) {
    total = ops::scale(total, 1.0f / static_cast<float>(options_.eot_samples));
  }
  return total;
}

}  // namespace pcss::core
