#include "pcss/core/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "pcss/core/attack_engine.h"

namespace pcss::core {

BestAvgWorst aggregate_cases(const std::vector<CaseRecord>& records) {
  if (records.empty()) throw std::invalid_argument("aggregate_cases: no records");
  BestAvgWorst out;
  out.best = records.front();
  out.worst = records.front();
  CaseRecord sum{};
  for (const CaseRecord& r : records) {
    if (r.accuracy < out.best.accuracy) out.best = r;
    if (r.accuracy > out.worst.accuracy) out.worst = r;
    sum.distance += r.distance;
    sum.accuracy += r.accuracy;
    sum.aiou += r.aiou;
  }
  const auto n = static_cast<double>(records.size());
  out.avg = {sum.distance / n, sum.accuracy / n, sum.aiou / n};
  return out;
}

double case_distance(const AttackConfig& config, bool use_l0_distance,
                     const AttackResult& result) {
  if (use_l0_distance) {
    return static_cast<double>(config.field == AttackField::kColor ? result.l0_color
                               : config.field == AttackField::kCoordinate
                                   ? result.l0_coord
                                   : std::max(result.l0_color, result.l0_coord));
  }
  return config.field == AttackField::kCoordinate ? result.l2_coord : result.l2_color;
}

std::vector<CaseRecord> attack_cases(SegmentationModel& model,
                                     const std::vector<PointCloud>& clouds,
                                     const AttackConfig& config, bool use_l0_distance) {
  // Batched across the engine's worker pool; each cloud runs on its own
  // RNG stream (config.seed + index), so records are deterministic
  // regardless of thread count.
  const AttackEngine engine(model, config);
  const std::vector<AttackResult> results = engine.run_batch(clouds);
  std::vector<CaseRecord> records;
  records.reserve(clouds.size());
  for (size_t i = 0; i < clouds.size(); ++i) {
    const AttackResult& result = results[i];
    const SegMetrics m =
        evaluate_segmentation(result.predictions, clouds[i].labels, model.num_classes());
    CaseRecord rec;
    rec.distance = case_distance(config, use_l0_distance, result);
    rec.accuracy = m.accuracy;
    rec.aiou = m.aiou;
    records.push_back(rec);
  }
  return records;
}

SegMetrics clean_metrics(SegmentationModel& model, const std::vector<PointCloud>& clouds) {
  if (clouds.empty()) throw std::invalid_argument("clean_metrics: no clouds");
  SegMetrics acc;
  for (const PointCloud& cloud : clouds) {
    const std::vector<int> pred = model.predict(cloud);
    const SegMetrics m = evaluate_segmentation(pred, cloud.labels, model.num_classes());
    acc.accuracy += m.accuracy;
    acc.aiou += m.aiou;
  }
  acc.accuracy /= static_cast<double>(clouds.size());
  acc.aiou /= static_cast<double>(clouds.size());
  return acc;
}

}  // namespace pcss::core
