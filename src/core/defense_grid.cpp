#include "pcss/core/defense_grid.h"

#include <stdexcept>

#include "pcss/core/attack_engine.h"
#include "pcss/core/metrics.h"
#include "pcss/obs/trace.h"

namespace pcss::core {

DefenseGridResult evaluate_defense_grid(SegmentationModel& source,
                                        std::span<const GridVictim> victims,
                                        std::span<const PointCloud> clouds,
                                        std::span<const GridAttack> attacks,
                                        std::span<const GridDefense> defenses,
                                        const DefenseGridOptions& options) {
  if (victims.empty()) throw std::invalid_argument("evaluate_defense_grid: no victims");
  if (clouds.empty()) throw std::invalid_argument("evaluate_defense_grid: no clouds");
  if (attacks.empty()) throw std::invalid_argument("evaluate_defense_grid: no attacks");
  if (defenses.empty()) throw std::invalid_argument("evaluate_defense_grid: no defenses");
  for (const GridVictim& victim : victims) {
    if (victim.model == nullptr) {
      throw std::invalid_argument("evaluate_defense_grid: null victim model '" +
                                  victim.label + "'");
    }
  }

  DefenseGridResult result;

  // Attack columns run once each; every (defense, victim) pair below
  // scores the same adversarial clouds.
  std::vector<std::vector<PointCloud>> adversarial(attacks.size());
  for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
    const GridAttack& attack = attacks[ai];
    GridAttackTrace trace;
    trace.label = attack.label;
    if (attack.clean) {
      adversarial[ai].assign(clouds.begin(), clouds.end());
      trace.l2_color.assign(clouds.size(), 0.0);
      trace.steps.assign(clouds.size(), 0);
    } else {
      AttackConfig config = attack.config;
      // Same convention as the runner's shards: cloud g always runs on
      // RNG stream config.seed + g, for any cloud_index_base split.
      config.seed += options.cloud_index_base;
      AttackEngine engine(source, config);
      engine.set_num_threads(options.num_threads);
      std::vector<AttackResult> attacked = engine.run_batch(clouds);
      adversarial[ai].reserve(attacked.size());
      for (AttackResult& r : attacked) {
        trace.l2_color.push_back(r.l2_color);
        trace.steps.push_back(r.steps_used);
        adversarial[ai].push_back(std::move(r.perturbed));
      }
    }
    result.attacks.push_back(std::move(trace));
  }

  // Telemetry only: one span per (attack, defense) grid cell so a trace
  // shows which cells dominate grid wall-time. The arg records how many
  // clouds the cell scored.
  static const obs::trace::Label kCellSpan = obs::trace::intern("grid.cell");
  static const obs::trace::Label kCloudsArg = obs::trace::intern("clouds");
  for (std::size_t ai = 0; ai < attacks.size(); ++ai) {
    for (std::size_t di = 0; di < defenses.size(); ++di) {
      obs::trace::ScopedSpan cell_span(kCellSpan);
      cell_span.arg(kCloudsArg, static_cast<std::int64_t>(clouds.size()));
      const GridDefense& defense = defenses[di];
      const std::string defense_describe = defense.pipeline.describe();
      std::vector<GridCell> cells(victims.size());
      for (std::size_t vi = 0; vi < victims.size(); ++vi) {
        cells[vi].attack = attacks[ai].label;
        cells[vi].defense = defense.label;
        cells[vi].victim = victims[vi].label;
        cells[vi].cases.reserve(clouds.size());
      }
      for (std::size_t g = 0; g < clouds.size(); ++g) {
        // One defense draw per (attack, defense, cloud): every victim
        // predicts the identical defended cloud, so victim columns are
        // directly comparable. The stream depends only on the labels,
        // the defense seed, and the *global* cloud index.
        Rng rng(defense_cell_seed(options.defense_seed, attacks[ai].label,
                                  defense_describe,
                                  options.cloud_index_base + g));
        const PointCloud& adv = adversarial[ai][g];
        const DefenseOutcome outcome = defense.pipeline.apply(adv, rng);
        for (std::size_t vi = 0; vi < victims.size(); ++vi) {
          SegmentationModel& model = *victims[vi].model;
          std::vector<int> pred = model.predict(outcome.cloud);
          defense.pipeline.smooth_predictions(outcome.cloud, pred);
          std::vector<int> truth(outcome.kept.size());
          for (size_t i = 0; i < truth.size(); ++i) {
            truth[i] = adv.labels[static_cast<size_t>(outcome.kept[i])];
          }
          const SegMetrics m = evaluate_segmentation(pred, truth, model.num_classes());
          cells[vi].cases.push_back({m.accuracy, m.aiou, outcome.cloud.size()});
        }
      }
      for (GridCell& cell : cells) result.cells.push_back(std::move(cell));
    }
  }
  return result;
}

}  // namespace pcss::core
