#include "pcss/core/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pcss/pointcloud/knn.h"
#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

namespace pcss::core {

namespace ops = pcss::tensor::ops;
using pcss::pointcloud::Vec3;

const char* to_string(AttackObjective o) {
  return o == AttackObjective::kPerformanceDegradation ? "performance-degradation"
                                                       : "object-hiding";
}
const char* to_string(AttackNorm n) {
  return n == AttackNorm::kBounded ? "norm-bounded" : "norm-unbounded";
}
const char* to_string(AttackField f) {
  switch (f) {
    case AttackField::kColor: return "color";
    case AttackField::kCoordinate: return "coordinate";
    case AttackField::kBoth: return "both";
  }
  return "?";
}

namespace {

float atanh_clamped(float x) {
  const float c = std::clamp(x, -1.0f + 1e-6f, 1.0f - 1e-6f);
  return 0.5f * std::log((1.0f + c) / (1.0f - c));
}

/// Initialization variant: saturated channels (exactly 0 or 1) would map
/// to |w| ~ 7 where tanh' ~ 1e-6 and Adam cannot move them. Pulling the
/// start point into tanh's live region costs at most ~2% initial color
/// shift and keeps every channel attackable.
float atanh_init(float x) { return atanh_clamped(std::clamp(x, -0.96f, 0.96f)); }

std::vector<std::uint8_t> full_mask_if_empty(const std::vector<std::uint8_t>& mask,
                                             std::int64_t n) {
  if (!mask.empty()) return mask;
  return std::vector<std::uint8_t>(static_cast<size_t>(n), 1);
}

/// Applies raw-unit deltas to a cloud; colors are clamped to [0,1]
/// (invalid adversarial colors cannot exist physically).
PointCloud apply_deltas(const PointCloud& cloud, const std::vector<float>* color_delta,
                        const std::vector<float>* coord_delta) {
  PointCloud out = cloud;
  const std::int64_t n = cloud.size();
  for (std::int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < 3; ++a) {
      if (color_delta) {
        out.colors[static_cast<size_t>(i)][a] = std::clamp(
            cloud.colors[static_cast<size_t>(i)][a] + (*color_delta)[i * 3 + a], 0.0f, 1.0f);
      }
      if (coord_delta) {
        out.positions[static_cast<size_t>(i)][a] += (*coord_delta)[i * 3 + a];
      }
    }
  }
  return out;
}

/// Attack progress measure: lower accuracy is better for degradation,
/// higher PSR is better for hiding. Returned so that "improved" always
/// means "value increased".
double attack_gain(const std::vector<int>& pred, const PointCloud& cloud,
                   const AttackConfig& config, const std::vector<std::uint8_t>& mask,
                   int num_classes) {
  if (config.objective == AttackObjective::kObjectHiding) {
    return point_success_rate(pred, mask, config.target_class);
  }
  const SegMetrics m = evaluate_segmentation_masked(pred, cloud.labels, num_classes, mask);
  return 1.0 - m.accuracy;
}

bool converged(double gain, const AttackConfig& config) {
  if (config.objective == AttackObjective::kObjectHiding) {
    return config.success_psr >= 0.0f && gain >= config.success_psr;
  }
  return config.success_accuracy >= 0.0f && (1.0 - gain) <= config.success_accuracy;
}

/// The adversarial loss of §IV-A: Eq. 10 for hiding, Eq. 11 for
/// degradation, over the targeted points.
Tensor adversarial_loss(const Tensor& logits, const PointCloud& cloud,
                        const AttackConfig& config, const std::vector<std::uint8_t>& mask) {
  if (config.objective == AttackObjective::kObjectHiding) {
    std::vector<int> targets(static_cast<size_t>(cloud.size()), config.target_class);
    return ops::hinge_margin_loss(logits, targets, mask, /*targeted=*/true);
  }
  return ops::hinge_margin_loss(logits, cloud.labels, mask, /*targeted=*/false);
}

/// Eq. 12 L0 schedule state for coordinate attacks.
struct MinImpactSchedule {
  std::vector<std::uint8_t> allowed;
  std::int64_t initial_count = 0;
  std::int64_t current_count = 0;
  std::int64_t n_per_iter = 0;
  bool restoring = true;

  void init(const std::vector<std::uint8_t>& mask, float fraction) {
    allowed = mask;
    initial_count = std::count(mask.begin(), mask.end(), std::uint8_t{1});
    current_count = initial_count;
    n_per_iter = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(static_cast<float>(initial_count) * fraction));
  }

  /// Removes the n least impactful (|g . r| smallest) allowed points;
  /// returns their indices so the caller can restore their perturbation.
  std::vector<std::int64_t> restore_step(const std::vector<float>& grad,
                                         const std::vector<float>& delta) {
    if (!restoring) return {};
    std::vector<std::pair<float, std::int64_t>> impact;
    for (size_t i = 0; i < allowed.size(); ++i) {
      if (!allowed[i]) continue;
      float dot = 0.0f;
      for (int a = 0; a < 3; ++a) dot += grad[i * 3 + a] * delta[i * 3 + a];
      impact.emplace_back(std::abs(dot), static_cast<std::int64_t>(i));
    }
    const auto n = static_cast<size_t>(std::min<std::int64_t>(
        n_per_iter, static_cast<std::int64_t>(impact.size())));
    std::partial_sort(impact.begin(), impact.begin() + static_cast<std::ptrdiff_t>(n),
                      impact.end());
    std::vector<std::int64_t> removed;
    for (size_t i = 0; i < n; ++i) {
      allowed[static_cast<size_t>(impact[i].second)] = 0;
      removed.push_back(impact[i].second);
    }
    current_count -= static_cast<std::int64_t>(n);
    // Once fewer than 10% of X_T remain, perturb without restoration.
    if (current_count < initial_count / 10 + 1) restoring = false;
    return removed;
  }
};

// ---------------------------------------------------------------------------
// Norm-bounded attack (Algorithm 1, PGD-adjusted).
// ---------------------------------------------------------------------------

AttackResult norm_bounded_attack(SegmentationModel& model, const PointCloud& cloud,
                                 const AttackConfig& config) {
  const std::int64_t n = cloud.size();
  const auto mask = full_mask_if_empty(config.target_mask, n);
  const bool use_color = config.field != AttackField::kCoordinate;
  const bool use_coord = config.field != AttackField::kColor;
  Rng rng(config.seed);

  std::vector<float> cdelta(static_cast<size_t>(n * 3), 0.0f);
  std::vector<float> pdelta(static_cast<size_t>(n * 3), 0.0f);
  auto project_color = [&] {
    for (std::int64_t i = 0; i < n; ++i) {
      for (int a = 0; a < 3; ++a) {
        float& d = cdelta[static_cast<size_t>(i * 3 + a)];
        d = std::clamp(d, -config.epsilon, config.epsilon);
        const float c = cloud.colors[static_cast<size_t>(i)][a];
        d = std::clamp(c + d, 0.0f, 1.0f) - c;  // keep color physically valid
      }
    }
  };
  // Random initialization (Algorithm 1).
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask[static_cast<size_t>(i)]) continue;
    for (int a = 0; a < 3; ++a) {
      if (use_color) {
        cdelta[static_cast<size_t>(i * 3 + a)] =
            rng.uniform(-config.epsilon, config.epsilon);
      }
      if (use_coord) {
        pdelta[static_cast<size_t>(i * 3 + a)] =
            rng.uniform(-config.coord_epsilon, config.coord_epsilon);
      }
    }
  }
  if (use_color) project_color();

  MinImpactSchedule schedule;
  if (use_coord) schedule.init(mask, config.min_impact_fraction);
  MinImpactSchedule color_schedule;
  const bool sparsify_color = use_color && config.l0_on_color;
  if (sparsify_color) color_schedule.init(mask, config.min_impact_fraction);

  AttackResult result;
  int step = 0;
  for (; step < config.steps; ++step) {
    Tensor cd, pd;
    if (use_color) {
      cd = Tensor::from_data({n, 3}, cdelta);
      cd.set_requires_grad(true);
    }
    if (use_coord) {
      pd = Tensor::from_data({n, 3}, pdelta);
      pd.set_requires_grad(true);
    }
    ModelInput input{&cloud, cd, pd};
    Tensor logits = model.forward(input, /*training=*/false);
    const std::vector<int> pred = ops::argmax_rows(logits);
    const double gain = attack_gain(pred, cloud, config, mask, model.num_classes());
    if (converged(gain, config)) break;

    Tensor loss = adversarial_loss(logits, cloud, config, mask);
    loss.backward();

    // Sign-of-gradient step. Both hinges (Eq. 10 and Eq. 11) are positive
    // while the attack has not yet succeeded on a point, so the working
    // update direction is descent for both objectives. (Eq. 4 writes
    // "arg max L_NT", but maximizing the Eq. 11 hinge would *increase* the
    // correct-class margin; Algorithm 1's two clip branches reduce to this
    // descent once the loss signs are reconciled.)
    const float dir = -1.0f;
    if (use_color) {
      const auto& g = cd.grad();
      const auto& active = sparsify_color ? color_schedule.allowed : mask;
      for (std::int64_t i = 0; i < n; ++i) {
        if (!active[static_cast<size_t>(i)]) continue;
        for (int a = 0; a < 3; ++a) {
          const float gv = g.empty() ? 0.0f : g[static_cast<size_t>(i * 3 + a)];
          if (gv != 0.0f) {
            cdelta[static_cast<size_t>(i * 3 + a)] +=
                dir * config.step_size * (gv > 0.0f ? 1.0f : -1.0f);
          }
        }
      }
      project_color();
      if (sparsify_color && !g.empty()) {
        for (std::int64_t removed : color_schedule.restore_step(g, cdelta)) {
          for (int a = 0; a < 3; ++a) cdelta[static_cast<size_t>(removed * 3 + a)] = 0.0f;
        }
      }
    }
    if (use_coord) {
      const auto& g = pd.grad();
      for (std::int64_t i = 0; i < n; ++i) {
        if (!schedule.allowed[static_cast<size_t>(i)]) continue;
        for (int a = 0; a < 3; ++a) {
          const float gv = g.empty() ? 0.0f : g[static_cast<size_t>(i * 3 + a)];
          if (gv != 0.0f) {
            float& d = pdelta[static_cast<size_t>(i * 3 + a)];
            d += dir * config.step_size * (gv > 0.0f ? 1.0f : -1.0f);
            d = std::clamp(d, -config.coord_epsilon, config.coord_epsilon);
          }
        }
      }
      if (!g.empty()) {
        for (std::int64_t removed : schedule.restore_step(g, pdelta)) {
          for (int a = 0; a < 3; ++a) pdelta[static_cast<size_t>(removed * 3 + a)] = 0.0f;
        }
      }
    }
  }
  result.steps_used = step;

  result.perturbed =
      apply_deltas(cloud, use_color ? &cdelta : nullptr, use_coord ? &pdelta : nullptr);
  result.predictions = model.predict(result.perturbed);
  measure_perturbation(cloud, result.perturbed, result);
  return result;
}

// ---------------------------------------------------------------------------
// Norm-unbounded attack (CW-adjusted, Eq. 3 / Eq. 5 with Adam).
// ---------------------------------------------------------------------------

AttackResult norm_unbounded_attack(SegmentationModel& model, const PointCloud& cloud,
                                   const AttackConfig& config) {
  const std::int64_t n = cloud.size();
  const auto mask = full_mask_if_empty(config.target_mask, n);
  const bool use_color = config.field != AttackField::kCoordinate;
  const bool use_coord = config.field != AttackField::kColor;
  Rng rng(config.seed);

  // tanh reparameterization (Eq. 7): color maps to [0,1]; coordinates map
  // into the cloud's bounding box per axis.
  const auto box = pcss::pointcloud::compute_bbox(cloud.positions);
  Vec3 lo = box.min, hi = box.max;
  for (int a = 0; a < 3; ++a) {
    if (hi[a] - lo[a] < 1e-4f) hi[a] = lo[a] + 1e-4f;
  }

  std::vector<float> w_color0(static_cast<size_t>(n * 3), 0.0f);
  std::vector<float> w_coord0(static_cast<size_t>(n * 3), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < 3; ++a) {
      const float c = cloud.colors[static_cast<size_t>(i)][a];
      w_color0[static_cast<size_t>(i * 3 + a)] = atanh_init(2.0f * c - 1.0f);
      const float p = cloud.positions[static_cast<size_t>(i)][a];
      w_coord0[static_cast<size_t>(i * 3 + a)] =
          atanh_init(2.0f * (p - lo[a]) / (hi[a] - lo[a]) - 1.0f);
    }
  }
  Tensor w_color = Tensor::from_data({n, 3}, w_color0);
  Tensor w_coord = Tensor::from_data({n, 3}, w_coord0);
  // Small random start so the optimizer does not begin exactly at zero
  // perturbation (mirrors the bounded attack's random init).
  for (std::int64_t i = 0; i < n * 3; ++i) {
    if (!mask[static_cast<size_t>(i / 3)]) continue;
    if (use_color) w_color.data()[i] += rng.normal(0.05f);
    if (use_coord) w_coord.data()[i] += rng.normal(0.05f);
  }
  w_color.set_requires_grad(use_color);
  w_coord.set_requires_grad(use_coord);

  std::vector<Tensor> vars;
  if (use_color) vars.push_back(w_color);
  if (use_coord) vars.push_back(w_coord);
  pcss::tensor::optim::Adam opt(vars, config.adam_lr);

  // Constant tensors reused every step.
  std::vector<float> color0(static_cast<size_t>(n * 3)), coord0(static_cast<size_t>(n * 3));
  for (std::int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < 3; ++a) {
      color0[static_cast<size_t>(i * 3 + a)] = cloud.colors[static_cast<size_t>(i)][a];
      coord0[static_cast<size_t>(i * 3 + a)] = cloud.positions[static_cast<size_t>(i)][a];
    }
  }
  const Tensor color0_t = Tensor::from_data({n, 3}, color0);
  const Tensor coord0_t = Tensor::from_data({n, 3}, coord0);
  std::vector<float> coord_scale(static_cast<size_t>(n * 3)),
      coord_offset(static_cast<size_t>(n * 3));
  for (std::int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < 3; ++a) {
      coord_scale[static_cast<size_t>(i * 3 + a)] = (hi[a] - lo[a]) * 0.5f;
      coord_offset[static_cast<size_t>(i * 3 + a)] = lo[a] + (hi[a] - lo[a]) * 0.5f;
    }
  }
  const Tensor coord_scale_t = Tensor::from_data({n, 3}, coord_scale);
  const Tensor coord_offset_t = Tensor::from_data({n, 3}, coord_offset);

  // Smoothness (Eq. 9) neighborhoods from the unperturbed geometry.
  const int alpha = static_cast<int>(std::min<std::int64_t>(config.smooth_alpha, n - 1));
  const auto smooth_idx =
      alpha > 0 ? pcss::pointcloud::knn_self(cloud.positions, alpha, /*include_self=*/false)
                : std::vector<std::int64_t>{};

  MinImpactSchedule schedule;
  if (use_coord) schedule.init(mask, config.min_impact_fraction);
  MinImpactSchedule color_schedule;
  const bool sparsify_color = use_color && config.l0_on_color;
  if (sparsify_color) color_schedule.init(mask, config.min_impact_fraction);

  auto mask_tensor = [&](const std::vector<std::uint8_t>& m) {
    std::vector<float> md(static_cast<size_t>(n * 3), 0.0f);
    for (std::int64_t i = 0; i < n; ++i) {
      if (m[static_cast<size_t>(i)]) {
        for (int a = 0; a < 3; ++a) md[static_cast<size_t>(i * 3 + a)] = 1.0f;
      }
    }
    return Tensor::from_data({n, 3}, std::move(md));
  };

  double best_gain = -1.0;
  std::vector<float> best_cdelta, best_pdelta;
  int stall = 0;
  int step = 0;
  for (; step < config.cw_steps; ++step) {
    // Perturbed fields via the tanh box map.
    Tensor cdelta_t, pdelta_t;
    if (use_color) {
      Tensor mapped = ops::scale(ops::add_scalar(ops::tanh_op(w_color), 1.0f), 0.5f);
      cdelta_t = ops::mul(ops::sub(mapped, color0_t),
                          mask_tensor(sparsify_color ? color_schedule.allowed : mask));
    }
    if (use_coord) {
      Tensor mapped = ops::add(
          ops::mul(ops::tanh_op(w_coord), coord_scale_t), coord_offset_t);
      pdelta_t = ops::mul(ops::sub(mapped, coord0_t), mask_tensor(schedule.allowed));
    }

    ModelInput input{&cloud, cdelta_t, pdelta_t};
    Tensor logits = model.forward(input, /*training=*/false);
    const std::vector<int> pred = ops::argmax_rows(logits);
    const double gain = attack_gain(pred, cloud, config, mask, model.num_classes());
    if (gain > best_gain + 1e-9) {
      best_gain = gain;
      stall = 0;
      if (use_color) {
        best_cdelta.assign(cdelta_t.data(), cdelta_t.data() + n * 3);
      }
      if (use_coord) {
        best_pdelta.assign(pdelta_t.data(), pdelta_t.data() + n * 3);
      }
    } else {
      ++stall;
    }
    if (converged(gain, config)) break;

    // Loss of Eq. 3 (hiding) / Eq. 5 (degradation):
    //   D(R) + lambda1 * L + lambda2 * S(X').
    // Both hinge losses are minimized (see the sign note in the bounded
    // attack); Eq. 5's "- lambda1 * L_NT" reads as descent on the hinge
    // once Eq. 11's orientation is taken into account.
    Tensor distance = Tensor::from_data({1}, {0.0f});
    if (use_color) distance = ops::add(distance, ops::sum(ops::square(cdelta_t)));
    if (use_coord) distance = ops::add(distance, ops::sum(ops::square(pdelta_t)));
    Tensor adv = adversarial_loss(logits, cloud, config, mask);
    Tensor loss = ops::add(distance, ops::scale(adv, config.lambda1));
    if (alpha > 0) {
      if (use_color) {
        Tensor smooth = ops::smoothness_penalty(ops::add(color0_t, cdelta_t), smooth_idx,
                                                alpha);
        loss = ops::add(loss, ops::scale(smooth, config.lambda2));
      }
      if (use_coord) {
        Tensor smooth = ops::smoothness_penalty(ops::add(coord0_t, pdelta_t), smooth_idx,
                                                alpha);
        loss = ops::add(loss, ops::scale(smooth, config.lambda2));
      }
    }

    opt.zero_grad();
    loss.backward();
    opt.step();

    // Random restart when the gain stalls (paper §IV-B): add uniform
    // noise to the optimization variable on the attacked points.
    if (stall >= config.stall_patience) {
      stall = 0;
      for (std::int64_t i = 0; i < n; ++i) {
        if (!mask[static_cast<size_t>(i)]) continue;
        for (int a = 0; a < 3; ++a) {
          if (use_color) w_color.data()[i * 3 + a] += rng.uniform(0.0f, 1.0f) - 0.5f;
          if (use_coord) w_coord.data()[i * 3 + a] += rng.uniform(0.0f, 1.0f) - 0.5f;
        }
      }
    }

    // Eq. 12 restoration for coordinate (and optionally color) attacks.
    if (use_coord && !w_coord.grad().empty()) {
      std::vector<float> pdata(pdelta_t.data(), pdelta_t.data() + n * 3);
      for (std::int64_t removed : schedule.restore_step(w_coord.grad(), pdata)) {
        for (int a = 0; a < 3; ++a) {
          w_coord.data()[removed * 3 + a] = w_coord0[static_cast<size_t>(removed * 3 + a)];
        }
      }
    }
    if (sparsify_color && !w_color.grad().empty()) {
      std::vector<float> cdata(cdelta_t.data(), cdelta_t.data() + n * 3);
      for (std::int64_t removed : color_schedule.restore_step(w_color.grad(), cdata)) {
        for (int a = 0; a < 3; ++a) {
          w_color.data()[removed * 3 + a] = w_color0[static_cast<size_t>(removed * 3 + a)];
        }
      }
    }
  }

  AttackResult result;
  result.steps_used = step;
  if (best_gain < 0.0) {  // no step ran; fall back to zero perturbation
    best_cdelta.assign(static_cast<size_t>(n * 3), 0.0f);
    best_pdelta.assign(static_cast<size_t>(n * 3), 0.0f);
  }
  result.perturbed = apply_deltas(cloud, use_color ? &best_cdelta : nullptr,
                                  use_coord ? &best_pdelta : nullptr);
  result.predictions = model.predict(result.perturbed);
  measure_perturbation(cloud, result.perturbed, result);
  return result;
}

}  // namespace

AttackResult run_attack(SegmentationModel& model, const PointCloud& cloud,
                        const AttackConfig& config) {
  if (cloud.empty()) throw std::invalid_argument("run_attack: empty cloud");
  if (config.objective == AttackObjective::kObjectHiding) {
    if (config.target_class < 0 || config.target_class >= model.num_classes()) {
      throw std::invalid_argument("run_attack: object hiding needs a valid target_class");
    }
    if (config.target_mask.empty()) {
      throw std::invalid_argument("run_attack: object hiding needs a target_mask (X_T)");
    }
  }
  if (!config.target_mask.empty() &&
      config.target_mask.size() != static_cast<size_t>(cloud.size())) {
    throw std::invalid_argument("run_attack: target_mask size mismatch");
  }
  return config.norm == AttackNorm::kBounded ? norm_bounded_attack(model, cloud, config)
                                             : norm_unbounded_attack(model, cloud, config);
}

AttackResult random_noise_baseline(SegmentationModel& model, const PointCloud& cloud,
                                   double l2_target, std::uint64_t seed) {
  const std::int64_t n = cloud.size();
  Rng rng(seed);
  std::vector<float> noise(static_cast<size_t>(n * 3));
  double norm2 = 0.0;
  for (auto& v : noise) {
    v = rng.normal();
    norm2 += static_cast<double>(v) * v;
  }
  const float scale =
      norm2 > 0.0 ? static_cast<float>(l2_target / std::sqrt(norm2)) : 0.0f;
  for (auto& v : noise) v *= scale;

  AttackResult result;
  result.perturbed = apply_deltas(cloud, &noise, nullptr);
  result.predictions = model.predict(result.perturbed);
  result.steps_used = 0;
  measure_perturbation(cloud, result.perturbed, result);
  return result;
}

void measure_perturbation(const PointCloud& original, const PointCloud& perturbed,
                          AttackResult& out) {
  if (original.size() != perturbed.size()) {
    throw std::invalid_argument("measure_perturbation: cloud size mismatch");
  }
  // Physical perceptibility thresholds for the L0 count (Eq. 8): one
  // 8-bit color quantization step, and one millimeter of geometry.
  constexpr float kColorTiny = 1.0f / 255.0f;
  constexpr float kCoordTiny = 1e-3f;
  double c2 = 0.0, p2 = 0.0;
  std::int64_t c0 = 0, p0 = 0;
  for (std::int64_t i = 0; i < original.size(); ++i) {
    float cmag = 0.0f, pmag = 0.0f;
    for (int a = 0; a < 3; ++a) {
      const float dc = perturbed.colors[static_cast<size_t>(i)][a] -
                       original.colors[static_cast<size_t>(i)][a];
      const float dp = perturbed.positions[static_cast<size_t>(i)][a] -
                       original.positions[static_cast<size_t>(i)][a];
      c2 += static_cast<double>(dc) * dc;
      p2 += static_cast<double>(dp) * dp;
      cmag = std::max(cmag, std::abs(dc));
      pmag = std::max(pmag, std::abs(dp));
    }
    if (cmag > kColorTiny) ++c0;
    if (pmag > kCoordTiny) ++p0;
  }
  out.l2_color = std::sqrt(c2);
  out.l2_coord = std::sqrt(p2);
  out.l0_color = c0;
  out.l0_coord = p0;
}

}  // namespace pcss::core
