#include "pcss/core/attack.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "pcss/core/attack_engine.h"

namespace pcss::core {

const char* to_string(AttackObjective o) {
  return o == AttackObjective::kPerformanceDegradation ? "performance-degradation"
                                                       : "object-hiding";
}
const char* to_string(AttackNorm n) {
  return n == AttackNorm::kBounded ? "norm-bounded" : "norm-unbounded";
}
const char* to_string(AttackField f) {
  switch (f) {
    case AttackField::kColor: return "color";
    case AttackField::kCoordinate: return "coordinate";
    case AttackField::kBoth: return "both";
  }
  return "?";
}

std::vector<std::string> AttackConfig::validate(int num_classes,
                                               std::int64_t num_points) const {
  std::vector<std::string> errors;
  const bool use_color = field != AttackField::kCoordinate;
  const bool use_coord = field != AttackField::kColor;

  if (norm == AttackNorm::kBounded) {
    if (steps <= 0) errors.push_back("steps must be positive for the bounded attack");
    if (step_size <= 0.0f) errors.push_back("step_size must be positive");
    if (use_color && epsilon <= 0.0f) {
      errors.push_back("epsilon must be positive for a bounded color attack");
    }
    if (use_coord && coord_epsilon <= 0.0f) {
      errors.push_back("coord_epsilon must be positive for a bounded coordinate attack");
    }
  } else {
    if (cw_steps <= 0) errors.push_back("cw_steps must be positive for the unbounded attack");
    if (adam_lr <= 0.0f) errors.push_back("adam_lr must be positive");
    if (stall_patience <= 0) errors.push_back("stall_patience must be positive");
    if (smooth_alpha < 0) errors.push_back("smooth_alpha must be non-negative");
  }

  if (min_impact_fraction < 0.0f) {
    errors.push_back("min_impact_fraction must be non-negative");
  }
  if (success_accuracy > 1.0f) {
    errors.push_back("success_accuracy is a fraction; values above 1 never trigger");
  }
  if (success_psr > 1.0f) {
    errors.push_back("success_psr is a fraction; values above 1 never trigger");
  }

  if (objective == AttackObjective::kObjectHiding) {
    if (target_class < 0) {
      errors.push_back("object hiding needs target_class set (it is " +
                       std::to_string(target_class) + ")");
    } else if (num_classes >= 0 && target_class >= num_classes) {
      errors.push_back("target_class " + std::to_string(target_class) +
                       " out of range [0, " + std::to_string(num_classes) + ")");
    }
    if (target_mask.empty()) {
      errors.push_back("object hiding needs a target_mask (X_T membership)");
    }
  }
  if (num_points >= 0 && !target_mask.empty() &&
      target_mask.size() != static_cast<size_t>(num_points)) {
    errors.push_back("target_mask has " + std::to_string(target_mask.size()) +
                     " entries but the cloud has " + std::to_string(num_points) +
                     " points");
  }
  return errors;
}

PointCloud apply_field_deltas(const PointCloud& cloud, const std::vector<float>* color_delta,
                              const std::vector<float>* coord_delta) {
  PointCloud out = cloud;
  const std::int64_t n = cloud.size();
  for (std::int64_t i = 0; i < n; ++i) {
    for (int a = 0; a < 3; ++a) {
      if (color_delta) {
        out.colors[static_cast<size_t>(i)][a] = std::clamp(
            cloud.colors[static_cast<size_t>(i)][a] + (*color_delta)[i * 3 + a], 0.0f, 1.0f);
      }
      if (coord_delta) {
        out.positions[static_cast<size_t>(i)][a] += (*coord_delta)[i * 3 + a];
      }
    }
  }
  return out;
}

AttackResult run_attack(SegmentationModel& model, const PointCloud& cloud,
                        const AttackConfig& config) {
  return AttackEngine(model, config).run(cloud);
}

AttackResult random_noise_baseline(SegmentationModel& model, const PointCloud& cloud,
                                   double l2_target, std::uint64_t seed) {
  const std::int64_t n = cloud.size();
  Rng rng(seed);
  std::vector<float> noise(static_cast<size_t>(n * 3));
  double norm2 = 0.0;
  for (auto& v : noise) {
    v = rng.normal();
    norm2 += static_cast<double>(v) * v;
  }
  const float scale =
      norm2 > 0.0 ? static_cast<float>(l2_target / std::sqrt(norm2)) : 0.0f;
  for (auto& v : noise) v *= scale;

  AttackResult result;
  result.perturbed = apply_field_deltas(cloud, &noise, nullptr);
  result.predictions = model.predict(result.perturbed);
  result.steps_used = 0;
  measure_perturbation(cloud, result.perturbed, result);
  return result;
}

void measure_perturbation(const PointCloud& original, const PointCloud& perturbed,
                          AttackResult& out) {
  if (original.size() != perturbed.size()) {
    throw std::invalid_argument("measure_perturbation: cloud size mismatch");
  }
  // Physical perceptibility thresholds for the L0 count (Eq. 8): one
  // 8-bit color quantization step, and one millimeter of geometry.
  constexpr float kColorTiny = 1.0f / 255.0f;
  constexpr float kCoordTiny = 1e-3f;
  double c2 = 0.0, p2 = 0.0;
  std::int64_t c0 = 0, p0 = 0;
  for (std::int64_t i = 0; i < original.size(); ++i) {
    float cmag = 0.0f, pmag = 0.0f;
    for (int a = 0; a < 3; ++a) {
      const float dc = perturbed.colors[static_cast<size_t>(i)][a] -
                       original.colors[static_cast<size_t>(i)][a];
      const float dp = perturbed.positions[static_cast<size_t>(i)][a] -
                       original.positions[static_cast<size_t>(i)][a];
      c2 += static_cast<double>(dc) * dc;
      p2 += static_cast<double>(dp) * dp;
      cmag = std::max(cmag, std::abs(dc));
      pmag = std::max(pmag, std::abs(dp));
    }
    if (cmag > kColorTiny) ++c0;
    if (pmag > kCoordTiny) ++p0;
  }
  out.l2_color = std::sqrt(c2);
  out.l2_coord = std::sqrt(p2);
  out.l0_color = c0;
  out.l0_coord = p0;
}

}  // namespace pcss::core
