#include "pcss/core/metrics.h"

#include <stdexcept>

namespace pcss::core {

namespace {

SegMetrics evaluate_impl(const std::vector<int>& pred, const std::vector<int>& gt,
                         int num_classes, const std::vector<std::uint8_t>* mask,
                         bool invert_mask) {
  if (pred.size() != gt.size()) {
    throw std::invalid_argument("evaluate_segmentation: size mismatch");
  }
  std::vector<std::int64_t> tp(static_cast<size_t>(num_classes), 0);
  std::vector<std::int64_t> fp(static_cast<size_t>(num_classes), 0);
  std::vector<std::int64_t> fn(static_cast<size_t>(num_classes), 0);
  std::int64_t correct = 0, total = 0;
  for (size_t i = 0; i < pred.size(); ++i) {
    if (mask) {
      const bool in = (*mask)[i] != 0;
      if (in == invert_mask) continue;
    }
    const int p = pred[i], g = gt[i];
    if (p < 0 || p >= num_classes || g < 0 || g >= num_classes) {
      throw std::invalid_argument("evaluate_segmentation: label out of range");
    }
    ++total;
    if (p == g) {
      ++correct;
      ++tp[static_cast<size_t>(p)];
    } else {
      ++fp[static_cast<size_t>(p)];
      ++fn[static_cast<size_t>(g)];
    }
  }
  SegMetrics m;
  m.per_class_iou.assign(static_cast<size_t>(num_classes), -1.0);
  double iou_sum = 0.0;
  int iou_count = 0;
  for (int c = 0; c < num_classes; ++c) {
    const std::int64_t uni = tp[static_cast<size_t>(c)] + fp[static_cast<size_t>(c)] +
                             fn[static_cast<size_t>(c)];
    if (uni == 0) continue;
    const double iou = static_cast<double>(tp[static_cast<size_t>(c)]) /
                       static_cast<double>(uni);
    m.per_class_iou[static_cast<size_t>(c)] = iou;
    iou_sum += iou;
    ++iou_count;
  }
  m.accuracy = total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
  m.aiou = iou_count ? iou_sum / iou_count : 0.0;
  return m;
}

}  // namespace

SegMetrics evaluate_segmentation(const std::vector<int>& predictions,
                                 const std::vector<int>& ground_truth, int num_classes) {
  return evaluate_impl(predictions, ground_truth, num_classes, nullptr, false);
}

SegMetrics evaluate_segmentation_masked(const std::vector<int>& predictions,
                                        const std::vector<int>& ground_truth,
                                        int num_classes,
                                        const std::vector<std::uint8_t>& mask) {
  if (mask.size() != predictions.size()) {
    throw std::invalid_argument("evaluate_segmentation_masked: mask size mismatch");
  }
  return evaluate_impl(predictions, ground_truth, num_classes, &mask, false);
}

double point_success_rate(const std::vector<int>& predictions,
                          const std::vector<std::uint8_t>& target_mask, int target_class) {
  if (target_mask.size() != predictions.size()) {
    throw std::invalid_argument("point_success_rate: mask size mismatch");
  }
  std::int64_t hit = 0, total = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (!target_mask[i]) continue;
    ++total;
    if (predictions[i] == target_class) ++hit;
  }
  return total ? static_cast<double>(hit) / static_cast<double>(total) : 0.0;
}

SegMetrics evaluate_oob(const std::vector<int>& predictions,
                        const std::vector<int>& ground_truth, int num_classes,
                        const std::vector<std::uint8_t>& target_mask) {
  if (target_mask.size() != predictions.size()) {
    throw std::invalid_argument("evaluate_oob: mask size mismatch");
  }
  return evaluate_impl(predictions, ground_truth, num_classes, &target_mask, true);
}

std::vector<std::uint8_t> mask_for_class(const std::vector<int>& ground_truth,
                                         int source_class) {
  std::vector<std::uint8_t> mask(ground_truth.size(), 0);
  for (size_t i = 0; i < ground_truth.size(); ++i) {
    mask[i] = ground_truth[i] == source_class ? 1 : 0;
  }
  return mask;
}

}  // namespace pcss::core
