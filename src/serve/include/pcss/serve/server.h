#pragma once

#include <functional>
#include <memory>
#include <string>

#include "pcss/runner/executor.h"
#include "pcss/runner/experiment_spec.h"
#include "pcss/runner/result_store.h"
#include "pcss/serve/config.h"

namespace pcss::serve {

/// Maps a request's spec name to a registered ExperimentSpec (null =
/// unknown). pcss_serve wires pcss::runner::find_spec; the test fixture
/// wires the mini specs, so the daemon is system-testable in seconds.
using SpecResolver =
    std::function<const pcss::runner::ExperimentSpec*(const std::string&)>;

/// Host hooks into the event loop. All observation/control only — like
/// RunOptions::on_progress, nothing reachable from here can perturb
/// result bytes.
struct ServerHooks {
  /// Polled once per loop iteration; first true begins a graceful
  /// drain (the SIGTERM flag of the embedding binary).
  std::function<bool()> should_drain;
  /// Test-only: runs on the worker thread after a job is dequeued and
  /// before run_spec. The system tests use a short sleep here to hold
  /// jobs in flight, making coalescing/drain windows deterministic.
  std::function<void()> on_job_start;
};

/// The pcss_serve daemon core: a poll-based event loop (single accept +
/// I/O thread) over a TCP and/or Unix-domain listener, with a worker
/// pool executing `run` requests through the ordinary runner path
/// (run_spec over the shared ResultStore).
///
/// The serving story in one sentence: a request resolves to the same
/// canonical cache key the CLI computes, so identical in-flight
/// requests coalesce into ONE computation, repeat requests are pure
/// byte-level cache hits, and every document sent over the wire is
/// byte-identical to what `pcss_run` writes — the server is a new
/// transport, never a new numerics path.
///
/// Production hardening lives here, not in callers: bounded admission
/// (queue_depth, 429-style rejection), per-client fairness (round-robin
/// dispatch across connections + max_inflight_per_client), idle/read/
/// write timeouts, oversized-line rejection, and graceful drain (stop
/// accepting, finish or checkpoint-cancel in-flight runs at a shard
/// boundary — the store stays resumable by construction).
class Server {
 public:
  /// `provider` is serialized internally (ZooModelProvider is not
  /// thread-safe); model *execution* is shared-read like run_batch's
  /// worker threads, which the engine already guarantees safe.
  /// `base_options` seeds every request's RunOptions; requests may
  /// override force/fast/threads/shard_size only — never scale fields
  /// individually, so a request cannot mint documents the CLI could
  /// not. Throws std::runtime_error when listeners cannot bind.
  Server(ServeConfig config, SpecResolver resolver,
         pcss::runner::ModelProvider& provider, pcss::runner::ResultStore& store,
         pcss::runner::RunOptions base_options, ServerHooks hooks = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Runs the event loop until a drain completes (hooks.should_drain or
  /// a shutdown request). Returns the number of requests that were
  /// cancelled or refused by the drain (0 = fully clean exit).
  int run();

  /// The TCP port actually bound (resolves port 0 after bind); -1 when
  /// TCP is disabled.
  int tcp_port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace pcss::serve
