#pragma once

#include <string>

namespace pcss::serve {

/// Everything that shapes the daemon's transport behaviour, none of
/// which may shape result bytes: the server is a new way to *reach* the
/// runner, so every knob here is about sockets, queues and deadlines.
/// Fields map 1:1 onto `key = value` lines of a serve.conf file (see
/// parse_config_file) and onto pcss_serve's command-line overrides.
struct ServeConfig {
  /// TCP listener on 127.0.0.1; 0 disables TCP (Unix socket only).
  int port = 0;
  /// Unix-domain listener path; empty disables it. Tests and the CI
  /// smoke run over this (no port allocation races).
  std::string socket_path;

  /// Worker threads executing run requests. Each worker runs one
  /// run_spec at a time; attack-level parallelism inside a request is
  /// RunOptions::num_threads, not this.
  int workers = 2;
  /// Admission control: queued-but-not-started run requests past this
  /// bound are rejected with a 429-style error rather than buffered
  /// without limit.
  int queue_depth = 16;
  /// Per-client fairness: one connection may have at most this many
  /// requests queued or executing (coalesced subscriptions count too).
  int max_inflight_per_client = 4;

  /// Close a connection with no traffic and no in-flight work.
  long long idle_timeout_ms = 60000;
  /// A started-but-unterminated request line older than this is an
  /// error (client died mid-send or is trickling bytes).
  long long read_timeout_ms = 10000;
  /// Buffered response bytes the peer has not drained for this long
  /// kill the connection (a stalled reader must not pin memory).
  long long write_timeout_ms = 30000;
  /// Oversized-request guard: a request line may not exceed this many
  /// bytes (rejected with a 413-style error, connection closed).
  long long max_line_bytes = 1 << 16;

  /// Graceful drain: in-flight requests get this long to finish after
  /// SIGTERM/shutdown before being cancelled at the next shard boundary
  /// (0 = checkpoint-cancel immediately; either way the store stays
  /// resumable because finished shards are already cached).
  long long drain_grace_ms = 0;

  /// Result store root; empty = ResultStore::default_root().
  std::string store_root;
};

/// Parses a serve.conf: `key = value` per line, '#' comments, blank
/// lines ignored. Unknown keys, unparsable numbers and out-of-range
/// values throw std::runtime_error naming "<path>:<line>". Keys are the
/// field names above (port, socket, workers, queue_depth,
/// max_inflight_per_client, idle_timeout_ms, read_timeout_ms,
/// write_timeout_ms, max_line_bytes, drain_grace_ms, store).
ServeConfig parse_config_file(const std::string& path);

/// Range/consistency check shared by the file parser and CLI override
/// paths; throws std::runtime_error listing every problem.
void validate(const ServeConfig& config);

}  // namespace pcss::serve
