#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>

#include "pcss/runner/executor.h"

namespace pcss::serve {

/// Wire protocol of pcss_serve (version 1), shared by the server, the
/// pcss_client CLI and the tests so framing cannot drift.
///
/// Requests: one JSON object per line ('\n'-terminated), fields:
///   kind       "run" | "status" | "stats" | "shutdown"   (required)
///   id         string echoed back in every event for this request
///              (optional; the server assigns "r<N>" when absent)
///   spec       experiment spec name                      (run only)
///   force      bool, recompute ignoring caches           (run only)
///   fast       bool, CPU-smoke sizing                    (run only)
///   threads    int, attack threads inside the request    (run only)
///   shard_size int, clouds per cached shard              (run only)
///
/// Responses: one JSON object per line, discriminated by "event":
///   hello     sent once on connect (readiness signal)
///   accepted  run admitted; carries the canonical cache key and
///             whether it coalesced onto an in-flight computation
///   progress  streamed per finished shard of a live run
///   result    terminal event of a run; "bytes": N is followed by
///             exactly N raw bytes of the result document (the same
///             bytes pcss_run stores — byte-identity is the contract)
///   stats     "bytes": N followed by N raw bytes of the metrics
///             snapshot JSON
///   status    one-line server state (no payload)
///   shutdown  drain acknowledged
///   error     "code" uses HTTP-flavoured numbers (below)
///
/// Every line is a complete JSON value; the only non-line bytes on the
/// wire are the length-prefixed payloads announced by "bytes".
inline constexpr int kProtocolVersion = 1;

/// HTTP-flavoured error codes ("429-style rejection" — the issue's
/// admission-control language maps straight onto these).
inline constexpr int kErrBadRequest = 400;   ///< malformed JSON / unknown kind / bad field
inline constexpr int kErrUnknownSpec = 404;  ///< run names an unregistered spec
inline constexpr int kErrOversized = 413;    ///< request line exceeds max_line_bytes
inline constexpr int kErrOverloaded = 429;   ///< queue full or per-client limit hit
inline constexpr int kErrInternal = 500;     ///< run_spec threw (bug or I/O failure)
inline constexpr int kErrDraining = 503;     ///< server is draining; request cancelled/refused

enum class RequestKind { kRun, kStatus, kStats, kShutdown };

/// One parsed request line. Unset run overrides inherit the server's
/// base RunOptions (so a daemon started with --fast serves fast-scaled
/// documents unless a request says otherwise).
struct Request {
  RequestKind kind = RequestKind::kStatus;
  std::string id;  ///< empty until the server assigns one
  std::string spec;
  bool force = false;
  bool has_fast = false;
  bool fast = false;
  int threads = -1;     ///< <0 = inherit
  int shard_size = -1;  ///< <0 = inherit
};

/// Parse failure with the wire error code the server should answer
/// with; the message is safe to echo to the client.
class ProtocolError : public std::runtime_error {
 public:
  ProtocolError(int code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  int code() const { return code_; }

 private:
  int code_;
};

/// Parses one request line; throws ProtocolError (kErrBadRequest) on
/// malformed JSON, an unknown kind, or wrongly typed fields.
Request parse_request(const std::string& line);

// -- response builders (each returns one '\n'-terminated line) --------------

std::string hello_line();
std::string error_line(const std::string& id, int code, const std::string& message);
std::string accepted_line(const std::string& id, const std::string& spec,
                          const std::string& key, bool coalesced);
std::string progress_line(const std::string& id, const std::string& spec,
                          const pcss::runner::ShardProgress& progress);
/// The terminal event of a run; exactly `bytes` raw document bytes
/// follow this line on the wire.
std::string result_header_line(const std::string& id, const std::string& spec,
                               const std::string& key, bool cache_hit, bool coalesced,
                               int shards_total, int shards_from_cache,
                               long long attack_steps, std::size_t bytes);
std::string stats_header_line(const std::string& id, std::size_t bytes);
std::string shutdown_line(const std::string& id);

}  // namespace pcss::serve
