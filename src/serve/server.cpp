// The pcss_serve daemon core. One event-loop thread owns every socket
// (poll(): listeners + connections + a self-pipe); a small worker pool
// executes `run` requests through the ordinary runner path. The two
// halves meet only under one mutex: workers never touch a socket, the
// loop never computes — workers enqueue framed bytes into an outbox and
// wake the loop through the pipe.
//
// Serving invariant (DESIGN.md §9): a request's RunOptions come from
// the daemon's base options plus a closed set of overrides, its cache
// key is the same run_key the CLI computes, and its payload is
// RunOutcome::json — the exact stored bytes. So served bytes == CLI
// bytes by construction, identical in-flight requests coalesce on the
// key, and repeat requests are byte-level cache hits.
#include "pcss/serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>  // pcss-lint: allow(C001)
#include <utility>
#include <vector>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/serve/protocol.h"

namespace pcss::serve {

namespace {

using pcss::runner::ExperimentSpec;
using pcss::runner::ModelProvider;
using pcss::runner::ResultStore;
using pcss::runner::RunCancelled;
using pcss::runner::RunOptions;
using pcss::runner::RunOutcome;
using pcss::runner::ShardProgress;

/// ZooModelProvider memoizes through plain maps, so concurrent jobs
/// must not call it concurrently. This wrapper serializes the provider
/// *calls*; the returned models are shared read-only across jobs, the
/// same sharing contract AttackEngine::run_batch's worker threads
/// already rely on (params are grad-frozen during attacks).
class SerializedProvider : public ModelProvider {
 public:
  explicit SerializedProvider(ModelProvider& inner) : inner_(inner) {}

  std::shared_ptr<pcss::runner::SegmentationModel> model(
      pcss::runner::ModelId id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_.model(id);
  }
  std::string model_fingerprint(pcss::runner::ModelId id) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_.model_fingerprint(id);
  }
  std::vector<pcss::runner::PointCloud> scenes(pcss::runner::Dataset dataset, int count,
                                               std::uint64_t seed) override {
    std::lock_guard<std::mutex> lock(mutex_);
    return inner_.scenes(dataset, count, seed);
  }

 private:
  // GUARDS: inner_ (the wrapped provider's lazy model/fingerprint maps)
  std::mutex mutex_;
  ModelProvider& inner_;
};

int make_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return -1;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error("pcss_serve: " + what + ": " + std::strerror(errno));
}

/// One request waiting on a job's outcome. A job has one subscription
/// per admitted request: the one that created it plus every request
/// that coalesced onto it while it was in flight.
struct Subscription {
  std::uint64_t conn_id = 0;
  std::string request_id;
  bool coalesced = false;
};

/// One admitted run request (or several, coalesced). Fields other than
/// the immutable ones are guarded by Impl::mutex_.
struct Job {
  std::string key;
  std::string spec_name;
  const ExperimentSpec* spec = nullptr;
  RunOptions options;
  std::vector<Subscription> subs;
  std::uint64_t owner_conn = 0;  ///< whose pending queue currently holds it
  bool started = false;
  bool cancel = false;  ///< checked by RunOptions::cancel at shard boundaries
};

}  // namespace

struct Server::Impl {
  ServeConfig config;
  SpecResolver resolver;
  SerializedProvider provider;
  ResultStore& store;
  RunOptions base_options;
  ServerHooks hooks;

  int tcp_fd = -1;
  int unix_fd = -1;
  int bound_tcp_port = -1;
  int wake_read_fd = -1;
  int wake_write_fd = -1;
  std::int64_t start_ns = 0;

  // -- event-loop-thread-only state (never touched by workers) --------------
  struct Conn {
    std::uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    std::int64_t last_read_ns = 0;
    std::int64_t last_out_progress_ns = 0;
    std::int64_t last_activity_ns = 0;
    bool read_closed = false;       ///< peer EOF seen; stop polling for input
    bool close_after_flush = false; ///< close once outbuf drains
    int next_request = 1;           ///< server-assigned ids r1, r2, ...
  };
  std::map<int, Conn> conns;                  ///< by fd
  std::map<std::uint64_t, int> fd_of_conn;    ///< conn id -> fd
  std::uint64_t next_conn_id = 1;

  // -- scheduler state shared with workers -----------------------------------
  // GUARDS: jobs_by_key, pending, rr_cursor, queued_jobs, running_jobs,
  // inflight_by_conn, outbox, draining, stopping, drain_begin_ns,
  // drain_casualties, requests_completed (everything below this mutex)
  std::mutex mutex_;
  std::condition_variable cv;
  std::map<std::string, std::shared_ptr<Job>> jobs_by_key;  ///< queued or running
  std::map<std::uint64_t, std::deque<std::shared_ptr<Job>>> pending;  ///< per conn
  std::uint64_t rr_cursor = 0;  ///< round-robin: last conn id served
  int queued_jobs = 0;
  int running_jobs = 0;
  std::map<std::uint64_t, int> inflight_by_conn;
  std::deque<std::pair<std::uint64_t, std::string>> outbox;  ///< conn id, framed bytes
  bool draining = false;
  bool stopping = false;
  std::int64_t drain_begin_ns = 0;
  int drain_casualties = 0;
  int requests_completed = 0;

  // Long-lived dispatch threads, joined by run() after the drain; the
  // WorkerPool is a fork-join construct and cannot host a blocking
  // request loop, hence the sanctioned C001 suppressions.
  std::vector<std::thread> workers;  // pcss-lint: allow(C001)

  Impl(ServeConfig cfg, SpecResolver res, ModelProvider& prov, ResultStore& st,
       RunOptions base, ServerHooks hk)
      : config(std::move(cfg)),
        resolver(std::move(res)),
        provider(prov),
        store(st),
        base_options(std::move(base)),
        hooks(std::move(hk)) {
    validate(config);
    if (!resolver) throw std::runtime_error("pcss_serve: a SpecResolver is required");
    start_ns = obs::trace::now_ns();
    open_wake_pipe();
    if (config.port > 0) bind_tcp();
    if (!config.socket_path.empty()) bind_unix();
  }

  ~Impl() {
    for (int fd : {tcp_fd, unix_fd, wake_read_fd, wake_write_fd}) {
      if (fd >= 0) ::close(fd);
    }
    for (auto& [fd, conn] : conns) {
      (void)conn;
      ::close(fd);
    }
    if (!config.socket_path.empty()) ::unlink(config.socket_path.c_str());
  }

  // -- setup -----------------------------------------------------------------

  void open_wake_pipe() {
    int fds[2];
    if (::pipe(fds) != 0) throw_errno("pipe");
    wake_read_fd = fds[0];
    wake_write_fd = fds[1];
    make_nonblocking(wake_read_fd);
    make_nonblocking(wake_write_fd);
  }

  void bind_tcp() {
    tcp_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcp_fd < 0) throw_errno("socket(AF_INET)");
    const int one = 1;
    ::setsockopt(tcp_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(config.port));
    if (::bind(tcp_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind 127.0.0.1:" + std::to_string(config.port));
    }
    if (::listen(tcp_fd, 64) != 0) throw_errno("listen (tcp)");
    socklen_t len = sizeof(addr);
    if (::getsockname(tcp_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      bound_tcp_port = static_cast<int>(ntohs(addr.sin_port));
    }
    make_nonblocking(tcp_fd);
  }

  void bind_unix() {
    unix_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (unix_fd < 0) throw_errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.socket_path.size() >= sizeof(addr.sun_path)) {
      throw std::runtime_error("pcss_serve: socket path too long: " + config.socket_path);
    }
    std::strncpy(addr.sun_path, config.socket_path.c_str(), sizeof(addr.sun_path) - 1);
    ::unlink(config.socket_path.c_str());  // stale socket from a previous daemon
    if (::bind(unix_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      throw_errno("bind " + config.socket_path);
    }
    if (::listen(unix_fd, 64) != 0) throw_errno("listen (unix)");
    make_nonblocking(unix_fd);
  }

  // -- worker side -----------------------------------------------------------

  void wake() {
    const char byte = 1;
    // Best-effort: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] const ssize_t n = ::write(wake_write_fd, &byte, 1);
  }

  void post(std::unique_lock<std::mutex>& lock, std::uint64_t conn_id,
            std::string bytes) {
    (void)lock;  // caller must hold mutex_
    outbox.emplace_back(conn_id, std::move(bytes));
  }

  /// Round-robin across connections: the next job comes from the first
  /// pending queue whose conn id follows the last-served one (wrapping),
  /// so one chatty client cannot starve the others.
  std::shared_ptr<Job> take_next_job() {
    if (queued_jobs == 0) return nullptr;
    auto it = pending.upper_bound(rr_cursor);
    for (std::size_t scanned = 0; scanned <= pending.size(); ++scanned) {
      if (it == pending.end()) it = pending.begin();
      if (it == pending.end()) return nullptr;
      if (!it->second.empty()) {
        std::shared_ptr<Job> job = it->second.front();
        it->second.pop_front();
        rr_cursor = it->first;
        if (it->second.empty()) pending.erase(it);
        --queued_jobs;
        ++running_jobs;
        job->started = true;
        return job;
      }
      ++it;
    }
    return nullptr;
  }

  void worker_main() {
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv.wait(lock, [&] { return stopping || queued_jobs > 0; });
        if (stopping && queued_jobs == 0) return;
        job = take_next_job();
        if (!job) continue;
      }
      execute(*job);
    }
  }

  void execute(Job& job) {
    static const obs::trace::Label kRequestSpan = obs::trace::intern("serve.request");
    static const obs::trace::Label kCacheArg = obs::trace::intern("cache_hit");
    if (hooks.on_job_start) hooks.on_job_start();

    RunOptions options = job.options;
    options.on_progress = [this, &job](const ShardProgress& progress) {
      std::unique_lock<std::mutex> lock(mutex_);
      for (const Subscription& sub : job.subs) {
        post(lock, sub.conn_id, progress_line(sub.request_id, job.spec_name, progress));
      }
      lock.unlock();
      wake();
    };
    options.cancel = [this, &job] {
      std::lock_guard<std::mutex> lock(mutex_);
      return job.cancel;
    };

    std::string failure;
    int failure_code = kErrInternal;
    RunOutcome outcome;
    bool ok = false;
    {
      obs::trace::ScopedSpan span(kRequestSpan);
      obs::metrics::ScopedTimerMs timer(obs::metrics::histogram("serve.request_ms"));
      try {
        outcome = pcss::runner::run_spec(*job.spec, provider, store, options);
        ok = true;
        span.arg(kCacheArg, outcome.cache_hit ? 1 : 0);
      } catch (const RunCancelled&) {
        failure = "cancelled at a shard boundary; finished shards are cached — "
                  "resumable: rerun the request to continue";
        failure_code = kErrDraining;
      } catch (const std::exception& e) {
        failure = e.what();
        failure_code = kErrInternal;
      }
    }
    if (ok) {
      obs::metrics::counter(outcome.cache_hit ? "serve.cache.hits" : "serve.cache.misses")
          .add(1);
    }

    std::unique_lock<std::mutex> lock(mutex_);
    const std::vector<Subscription> subs = job.subs;
    jobs_by_key.erase(job.key);
    --running_jobs;
    for (const Subscription& sub : subs) {
      auto inflight = inflight_by_conn.find(sub.conn_id);
      if (inflight != inflight_by_conn.end() && inflight->second > 0) --inflight->second;
      if (ok) {
        ++requests_completed;
        post(lock, sub.conn_id,
             result_header_line(sub.request_id, job.spec_name, job.key,
                                outcome.cache_hit, sub.coalesced, outcome.shards_total,
                                outcome.shards_from_cache, outcome.attack_steps,
                                outcome.json.size()) +
                 outcome.json);
      } else {
        if (failure_code == kErrDraining) ++drain_casualties;
        post(lock, sub.conn_id, error_line(sub.request_id, failure_code, failure));
      }
    }
    lock.unlock();
    cv.notify_all();
    wake();
  }

  // -- event-loop side -------------------------------------------------------

  void send_now(Conn& conn, const std::string& bytes) {
    const bool was_empty = conn.outbuf.empty();
    conn.outbuf += bytes;
    if (was_empty) conn.last_out_progress_ns = obs::trace::now_ns();
    flush(conn);
  }

  void flush(Conn& conn) {
    while (!conn.outbuf.empty()) {
      const ssize_t sent =
          ::send(conn.fd, conn.outbuf.data(), conn.outbuf.size(), MSG_NOSIGNAL);
      if (sent > 0) {
        conn.outbuf.erase(0, static_cast<std::size_t>(sent));
        conn.last_out_progress_ns = obs::trace::now_ns();
        conn.last_activity_ns = conn.last_out_progress_ns;
        continue;
      }
      if (sent < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      conn.close_after_flush = true;  // EPIPE/ECONNRESET: sweep will close
      conn.outbuf.clear();
      return;
    }
  }

  /// Detaches a connection from every job it subscribed to. Queued jobs
  /// left with no subscribers are dropped (admission capacity back);
  /// queued jobs owned by the dead connection but still wanted by a
  /// coalesced peer migrate to that peer's pending queue. Running jobs
  /// always finish — the computation warms the store either way.
  void detach_conn_jobs(std::uint64_t conn_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    inflight_by_conn.erase(conn_id);
    for (auto& [key, job] : jobs_by_key) {
      (void)key;
      auto& subs = job->subs;
      for (std::size_t i = subs.size(); i-- > 0;) {
        if (subs[i].conn_id == conn_id) subs.erase(subs.begin() + static_cast<long>(i));
      }
    }
    // Rehome or drop the jobs queued on this connection. A started job
    // is not in any pending queue and always finishes — even with no
    // subscribers left, the computation warms the shared store.
    auto queue = pending.find(conn_id);
    if (queue == pending.end()) return;
    std::deque<std::shared_ptr<Job>> orphans = std::move(queue->second);
    pending.erase(queue);
    for (const std::shared_ptr<Job>& job : orphans) {
      if (job->subs.empty()) {
        jobs_by_key.erase(job->key);
        --queued_jobs;
      } else {
        job->owner_conn = job->subs.front().conn_id;
        pending[job->owner_conn].push_back(job);
      }
    }
  }

  void close_conn(int fd) {
    auto it = conns.find(fd);
    if (it == conns.end()) return;
    const std::uint64_t conn_id = it->second.id;
    detach_conn_jobs(conn_id);
    fd_of_conn.erase(conn_id);
    conns.erase(it);
    ::close(fd);
  }

  void accept_ready(int listen_fd) {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) return;  // EAGAIN or transient error: poll again
      make_nonblocking(fd);
      Conn conn;
      conn.id = next_conn_id++;
      conn.fd = fd;
      const std::int64_t now = obs::trace::now_ns();
      conn.last_read_ns = conn.last_out_progress_ns = conn.last_activity_ns = now;
      auto [it, inserted] = conns.emplace(fd, std::move(conn));
      (void)inserted;
      fd_of_conn[it->second.id] = fd;
      send_now(it->second, hello_line());
    }
  }

  int conn_inflight(std::uint64_t conn_id) {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = inflight_by_conn.find(conn_id);
    return it == inflight_by_conn.end() ? 0 : it->second;
  }

  void handle_run(Conn& conn, const Request& request) {
    const ExperimentSpec* spec = resolver(request.spec);
    if (spec == nullptr) {
      send_now(conn, error_line(request.id, kErrUnknownSpec,
                                "unknown spec '" + request.spec + "'"));
      return;
    }
    RunOptions options = base_options;
    options.on_progress = nullptr;
    options.cancel = nullptr;
    options.force = request.force;
    if (request.has_fast) {
      options.fast = request.fast;
      options.scale = pcss::runner::scale_for(request.fast);
    }
    if (request.threads >= 0) options.num_threads = request.threads;
    if (request.shard_size >= 1) options.shard_size = request.shard_size;

    std::string key;
    try {
      key = pcss::runner::run_key(*spec, options.scale, provider);
    } catch (const std::exception& e) {
      send_now(conn, error_line(request.id, kErrInternal,
                                std::string("cannot key request: ") + e.what()));
      return;
    }

    std::unique_lock<std::mutex> lock(mutex_);
    if (draining) {
      ++drain_casualties;
      obs::metrics::counter("serve.requests.rejected").add(1);
      lock.unlock();
      send_now(conn, error_line(request.id, kErrDraining,
                                "server is draining; rerun against a fresh daemon"));
      return;
    }
    auto& inflight = inflight_by_conn[conn.id];
    if (inflight >= config.max_inflight_per_client) {
      obs::metrics::counter("serve.requests.rejected").add(1);
      lock.unlock();
      send_now(conn, error_line(request.id, kErrOverloaded,
                                "client in-flight limit reached (" +
                                    std::to_string(config.max_inflight_per_client) +
                                    "); wait for a result before submitting more"));
      return;
    }
    auto existing = jobs_by_key.find(key);
    if (existing != jobs_by_key.end()) {
      existing->second->subs.push_back({conn.id, request.id, true});
      ++inflight;
      obs::metrics::counter("serve.requests.accepted").add(1);
      obs::metrics::counter("serve.requests.coalesced").add(1);
      lock.unlock();
      send_now(conn, accepted_line(request.id, request.spec, key, true));
      return;
    }
    if (queued_jobs >= config.queue_depth) {
      obs::metrics::counter("serve.requests.rejected").add(1);
      lock.unlock();
      send_now(conn, error_line(request.id, kErrOverloaded,
                                "server queue is full (" +
                                    std::to_string(config.queue_depth) +
                                    " queued requests); retry later"));
      return;
    }
    auto job = std::make_shared<Job>();
    job->key = key;
    job->spec_name = request.spec;
    job->spec = spec;
    job->options = options;
    job->subs.push_back({conn.id, request.id, false});
    job->owner_conn = conn.id;
    jobs_by_key.emplace(key, job);
    pending[conn.id].push_back(job);
    ++queued_jobs;
    ++inflight;
    obs::metrics::counter("serve.requests.accepted").add(1);
    lock.unlock();
    cv.notify_one();
    send_now(conn, accepted_line(request.id, request.spec, key, false));
  }

  void handle_status(Conn& conn, const Request& request) {
    pcss::runner::Json line = pcss::runner::Json::object();
    line.set("event", "status");
    line.set("id", request.id);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      line.set("draining", draining);
      line.set("connections", static_cast<long long>(conns.size()));
      line.set("queued", queued_jobs);
      line.set("running", running_jobs);
      line.set("completed", requests_completed);
    }
    line.set("uptime_ms", (obs::trace::now_ns() - start_ns) / 1000000LL);
    send_now(conn, line.dump_compact() + "\n");
  }

  void handle_line(Conn& conn, const std::string& line) {
    Request request;
    try {
      request = parse_request(line);
    } catch (const ProtocolError& e) {
      send_now(conn, error_line("", e.code(), e.what()));
      return;
    }
    if (request.id.empty()) {
      request.id = "r" + std::to_string(conn.next_request++);
    }
    switch (request.kind) {
      case RequestKind::kRun:
        handle_run(conn, request);
        break;
      case RequestKind::kStatus:
        handle_status(conn, request);
        break;
      case RequestKind::kStats: {
        const std::string snapshot = obs::metrics::snapshot_json() + "\n";
        send_now(conn, stats_header_line(request.id, snapshot.size()) + snapshot);
        break;
      }
      case RequestKind::kShutdown:
        send_now(conn, shutdown_line(request.id));
        begin_drain();
        break;
    }
  }

  void read_ready(Conn& conn) {
    char chunk[4096];
    for (;;) {
      const ssize_t got = ::recv(conn.fd, chunk, sizeof(chunk), 0);
      if (got > 0) {
        conn.inbuf.append(chunk, static_cast<std::size_t>(got));
        conn.last_read_ns = conn.last_activity_ns = obs::trace::now_ns();
        continue;
      }
      if (got < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      // EOF or hard error. A half-closed peer that left a partial line
      // behind gets a clean diagnosis (its read side may still be open).
      conn.read_closed = true;
      if (!conn.inbuf.empty()) {
        conn.inbuf.clear();
        send_now(conn, error_line("", kErrBadRequest,
                                  "connection half-closed mid-request "
                                  "(unterminated request line)"));
        conn.close_after_flush = true;
      }
      break;
    }

    // The oversized guard runs before parsing so a huge line is
    // rejected whether or not its terminator has arrived yet.
    const std::size_t first_nl = conn.inbuf.find('\n');
    const std::size_t line_bytes =
        first_nl == std::string::npos ? conn.inbuf.size() : first_nl;
    if (!conn.close_after_flush &&
        static_cast<long long>(line_bytes) > config.max_line_bytes) {
      conn.inbuf.clear();
      obs::metrics::counter("serve.requests.rejected").add(1);
      send_now(conn, error_line("", kErrOversized,
                                "request line exceeds " +
                                    std::to_string(config.max_line_bytes) + " bytes"));
      conn.close_after_flush = true;
      return;
    }
    for (std::size_t nl = conn.inbuf.find('\n'); nl != std::string::npos;
         nl = conn.inbuf.find('\n')) {
      std::string line = conn.inbuf.substr(0, nl);
      conn.inbuf.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      handle_line(conn, line);
      if (conn.close_after_flush) break;  // e.g. shutdown mid-pipeline
    }
  }

  void begin_drain() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (draining) return;
    draining = true;
    drain_begin_ns = obs::trace::now_ns();
    // Stop accepting: the listeners leave the poll set for good.
    if (tcp_fd >= 0) {
      ::close(tcp_fd);
      tcp_fd = -1;
    }
    if (unix_fd >= 0) {
      ::close(unix_fd);
      unix_fd = -1;
      ::unlink(config.socket_path.c_str());
    }
    // Queued-but-unstarted requests are refused now (their subscribers
    // learn immediately); running requests get drain_grace_ms to finish
    // before the checkpoint-cancel below.
    for (auto& [conn_id, queue] : pending) {
      (void)conn_id;
      for (const std::shared_ptr<Job>& job : queue) {
        for (const Subscription& sub : job->subs) {
          ++drain_casualties;
          auto inflight = inflight_by_conn.find(sub.conn_id);
          if (inflight != inflight_by_conn.end() && inflight->second > 0) {
            --inflight->second;
          }
          post(lock, sub.conn_id,
               error_line(sub.request_id, kErrDraining,
                          "server draining; request cancelled before it started — "
                          "rerun against the store to resume"));
        }
        jobs_by_key.erase(job->key);
        --queued_jobs;
      }
    }
    pending.clear();
    if (config.drain_grace_ms == 0) {
      for (auto& [key, job] : jobs_by_key) {
        (void)key;
        job->cancel = true;
      }
    }
    lock.unlock();
    cv.notify_all();
    wake();
  }

  /// Drain bookkeeping each loop tick: enforce the grace deadline, and
  /// report whether everything is finished and flushed.
  bool drain_complete() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (!draining) return false;
    if (config.drain_grace_ms > 0 &&
        obs::trace::now_ns() - drain_begin_ns > config.drain_grace_ms * 1000000LL) {
      for (auto& [key, job] : jobs_by_key) {
        (void)key;
        job->cancel = true;
      }
    }
    if (!jobs_by_key.empty() || running_jobs > 0 || !outbox.empty()) return false;
    lock.unlock();
    for (const auto& [fd, conn] : conns) {
      (void)fd;
      if (!conn.outbuf.empty()) return false;
    }
    return true;
  }

  void flush_outbox() {
    std::deque<std::pair<std::uint64_t, std::string>> batch;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      batch.swap(outbox);
    }
    for (auto& [conn_id, bytes] : batch) {
      auto fd_it = fd_of_conn.find(conn_id);
      if (fd_it == fd_of_conn.end()) continue;  // connection died; drop
      auto conn_it = conns.find(fd_it->second);
      if (conn_it == conns.end()) continue;
      send_now(conn_it->second, bytes);
    }
  }

  void sweep_timeouts() {
    const std::int64_t now = obs::trace::now_ns();
    std::vector<int> to_close;
    for (auto& [fd, conn] : conns) {
      if (conn.close_after_flush && conn.outbuf.empty()) {
        to_close.push_back(fd);
        continue;
      }
      if (!conn.outbuf.empty() &&
          now - conn.last_out_progress_ns > config.write_timeout_ms * 1000000LL) {
        to_close.push_back(fd);  // stalled reader
        continue;
      }
      if (!conn.inbuf.empty() &&
          now - conn.last_read_ns > config.read_timeout_ms * 1000000LL) {
        conn.inbuf.clear();
        send_now(conn, error_line("", kErrBadRequest,
                                  "read timeout waiting for the rest of a request line"));
        conn.close_after_flush = true;
        continue;
      }
      if (conn.inbuf.empty() && conn.outbuf.empty() && conn_inflight(conn.id) == 0 &&
          (conn.read_closed ||
           now - conn.last_activity_ns > config.idle_timeout_ms * 1000000LL)) {
        to_close.push_back(fd);  // idle, or half-closed with nothing left to say
      }
    }
    for (int fd : to_close) close_conn(fd);
  }

  int run() {
    for (int i = 0; i < config.workers; ++i) {
      workers.emplace_back([this] { worker_main(); });  // pcss-lint: allow(C001)
    }

    std::vector<pollfd> fds;
    for (;;) {
      if (hooks.should_drain && hooks.should_drain()) begin_drain();
      if (drain_complete()) break;

      fds.clear();
      if (tcp_fd >= 0) fds.push_back({tcp_fd, POLLIN, 0});
      if (unix_fd >= 0) fds.push_back({unix_fd, POLLIN, 0});
      fds.push_back({wake_read_fd, POLLIN, 0});
      for (auto& [fd, conn] : conns) {
        short events = 0;
        if (!conn.read_closed && !conn.close_after_flush) events |= POLLIN;
        if (!conn.outbuf.empty()) events |= POLLOUT;
        if (events != 0) fds.push_back({fd, events, 0});
      }
      const int ready = ::poll(fds.data(), fds.size(), 50);
      if (ready < 0 && errno != EINTR) break;

      // Drain the wake pipe, then ship worker output to the sockets.
      for (const pollfd& p : fds) {
        if (p.fd == wake_read_fd && (p.revents & POLLIN) != 0) {
          char sink[256];
          while (::read(wake_read_fd, sink, sizeof(sink)) > 0) {
          }
        }
      }
      flush_outbox();

      for (const pollfd& p : fds) {
        if (p.revents == 0) continue;
        if (p.fd == tcp_fd || p.fd == unix_fd) {
          accept_ready(p.fd);
          continue;
        }
        if (p.fd == wake_read_fd) continue;
        auto it = conns.find(p.fd);
        if (it == conns.end()) continue;
        if ((p.revents & (POLLERR | POLLNVAL)) != 0) {
          close_conn(p.fd);
          continue;
        }
        if ((p.revents & POLLOUT) != 0) flush(it->second);
        if ((p.revents & (POLLIN | POLLHUP)) != 0 && conns.count(p.fd) != 0) {
          read_ready(it->second);
        }
      }

      sweep_timeouts();
    }

    {
      std::lock_guard<std::mutex> lock(mutex_);
      stopping = true;
    }
    cv.notify_all();
    for (std::thread& worker : workers) worker.join();  // pcss-lint: allow(C001)
    workers.clear();

    std::vector<int> open_fds;
    open_fds.reserve(conns.size());
    for (const auto& [fd, conn] : conns) {
      (void)conn;
      open_fds.push_back(fd);
    }
    for (int fd : open_fds) close_conn(fd);

    std::lock_guard<std::mutex> lock(mutex_);
    return drain_casualties;
  }
};

Server::Server(ServeConfig config, SpecResolver resolver, ModelProvider& provider,
               ResultStore& store, RunOptions base_options, ServerHooks hooks)
    : impl_(std::make_unique<Impl>(std::move(config), std::move(resolver), provider,
                                   store, std::move(base_options), std::move(hooks))) {}

Server::~Server() = default;

int Server::run() { return impl_->run(); }

int Server::tcp_port() const { return impl_->bound_tcp_port; }

}  // namespace pcss::serve
