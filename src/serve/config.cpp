#include "pcss/serve/config.h"

#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace pcss::serve {

namespace {

std::string trim(const std::string& s) {
  const std::size_t first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const std::size_t last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

long long parse_int(const std::string& where, const std::string& value) {
  char* end = nullptr;
  const long long parsed = std::strtoll(value.c_str(), &end, 10);
  if (end == value.c_str() || *end != '\0') {
    throw std::runtime_error(where + ": expected an integer, got '" + value + "'");
  }
  return parsed;
}

}  // namespace

ServeConfig parse_config_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("serve config: cannot open '" + path + "'");
  ServeConfig config;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    line = trim(line);
    if (line.empty()) continue;
    const std::string where = path + ":" + std::to_string(line_no);
    const std::size_t eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error(where + ": expected 'key = value', got '" + line + "'");
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key == "port") {
      config.port = static_cast<int>(parse_int(where, value));
    } else if (key == "socket") {
      config.socket_path = value;
    } else if (key == "workers") {
      config.workers = static_cast<int>(parse_int(where, value));
    } else if (key == "queue_depth") {
      config.queue_depth = static_cast<int>(parse_int(where, value));
    } else if (key == "max_inflight_per_client") {
      config.max_inflight_per_client = static_cast<int>(parse_int(where, value));
    } else if (key == "idle_timeout_ms") {
      config.idle_timeout_ms = parse_int(where, value);
    } else if (key == "read_timeout_ms") {
      config.read_timeout_ms = parse_int(where, value);
    } else if (key == "write_timeout_ms") {
      config.write_timeout_ms = parse_int(where, value);
    } else if (key == "max_line_bytes") {
      config.max_line_bytes = parse_int(where, value);
    } else if (key == "drain_grace_ms") {
      config.drain_grace_ms = parse_int(where, value);
    } else if (key == "store") {
      config.store_root = value;
    } else {
      throw std::runtime_error(where + ": unknown key '" + key + "'");
    }
  }
  validate(config);
  return config;
}

void validate(const ServeConfig& config) {
  std::vector<std::string> problems;
  if (config.port < 0 || config.port > 65535) {
    problems.push_back("port must be in [0, 65535]");
  }
  if (config.port == 0 && config.socket_path.empty()) {
    problems.push_back("at least one listener is required (port or socket)");
  }
  if (config.workers < 1) problems.push_back("workers must be >= 1");
  if (config.queue_depth < 1) problems.push_back("queue_depth must be >= 1");
  if (config.max_inflight_per_client < 1) {
    problems.push_back("max_inflight_per_client must be >= 1");
  }
  if (config.idle_timeout_ms < 1) problems.push_back("idle_timeout_ms must be >= 1");
  if (config.read_timeout_ms < 1) problems.push_back("read_timeout_ms must be >= 1");
  if (config.write_timeout_ms < 1) problems.push_back("write_timeout_ms must be >= 1");
  if (config.max_line_bytes < 2) problems.push_back("max_line_bytes must be >= 2");
  if (config.drain_grace_ms < 0) problems.push_back("drain_grace_ms must be >= 0");
  if (!problems.empty()) {
    std::string message = "serve config invalid:";
    for (const std::string& p : problems) message += "\n  - " + p;
    throw std::runtime_error(message);
  }
}

}  // namespace pcss::serve
