#include "pcss/serve/protocol.h"

#include <cmath>

#include "pcss/runner/json.h"

namespace pcss::serve {

using pcss::runner::Json;

namespace {

/// Requests are hostile input: anything Json::parse rejects, or any
/// field of the wrong type, becomes a 400 the connection survives.
const Json* find_member(const Json& object, const char* key) {
  return object.type() == Json::Type::kObject ? object.find(key) : nullptr;
}

bool read_bool(const Json& object, const char* key, bool fallback) {
  const Json* value = find_member(object, key);
  if (value == nullptr) return fallback;
  if (value->type() != Json::Type::kBool) {
    throw ProtocolError(kErrBadRequest,
                        std::string("field '") + key + "' must be a boolean");
  }
  return value->boolean();
}

int read_int(const Json& object, const char* key, int fallback) {
  const Json* value = find_member(object, key);
  if (value == nullptr) return fallback;
  if (value->type() != Json::Type::kNumber ||
      value->number() != std::floor(value->number())) {
    throw ProtocolError(kErrBadRequest,
                        std::string("field '") + key + "' must be an integer");
  }
  return static_cast<int>(value->number());
}

}  // namespace

Request parse_request(const std::string& line) {
  Json parsed;
  try {
    parsed = Json::parse(line);
  } catch (const std::exception& e) {
    throw ProtocolError(kErrBadRequest, std::string("malformed request: ") + e.what());
  }
  if (parsed.type() != Json::Type::kObject) {
    throw ProtocolError(kErrBadRequest, "request must be a JSON object");
  }
  const Json* kind = parsed.find("kind");
  if (kind == nullptr || kind->type() != Json::Type::kString) {
    throw ProtocolError(kErrBadRequest, "request needs a string 'kind'");
  }

  Request request;
  if (const Json* id = parsed.find("id"); id != nullptr) {
    if (id->type() == Json::Type::kString) {
      request.id = id->str();
    } else if (id->type() == Json::Type::kNumber) {
      request.id = Json(id->number()).dump_compact();
    } else {
      throw ProtocolError(kErrBadRequest, "field 'id' must be a string or number");
    }
  }

  const std::string& kind_name = kind->str();
  if (kind_name == "run") {
    request.kind = RequestKind::kRun;
    const Json* spec = parsed.find("spec");
    if (spec == nullptr || spec->type() != Json::Type::kString || spec->str().empty()) {
      throw ProtocolError(kErrBadRequest, "run needs a non-empty string 'spec'");
    }
    request.spec = spec->str();
    request.force = read_bool(parsed, "force", false);
    if (parsed.find("fast") != nullptr) {
      request.has_fast = true;
      request.fast = read_bool(parsed, "fast", false);
    }
    request.threads = read_int(parsed, "threads", -1);
    request.shard_size = read_int(parsed, "shard_size", -1);
    if (parsed.find("threads") != nullptr && request.threads < 0) {
      throw ProtocolError(kErrBadRequest, "field 'threads' must be >= 0");
    }
    if (parsed.find("shard_size") != nullptr && request.shard_size < 1) {
      throw ProtocolError(kErrBadRequest, "field 'shard_size' must be >= 1");
    }
  } else if (kind_name == "status") {
    request.kind = RequestKind::kStatus;
  } else if (kind_name == "stats") {
    request.kind = RequestKind::kStats;
  } else if (kind_name == "shutdown") {
    request.kind = RequestKind::kShutdown;
  } else {
    throw ProtocolError(kErrBadRequest, "unknown kind '" + kind_name + "'");
  }
  return request;
}

std::string hello_line() {
  Json line = Json::object();
  line.set("event", "hello");
  line.set("server", "pcss_serve");
  line.set("protocol", kProtocolVersion);
  return line.dump_compact() + "\n";
}

std::string error_line(const std::string& id, int code, const std::string& message) {
  Json line = Json::object();
  line.set("event", "error");
  if (!id.empty()) line.set("id", id);
  line.set("code", code);
  line.set("message", message);
  return line.dump_compact() + "\n";
}

std::string accepted_line(const std::string& id, const std::string& spec,
                          const std::string& key, bool coalesced) {
  Json line = Json::object();
  line.set("event", "accepted");
  line.set("id", id);
  line.set("spec", spec);
  line.set("key", key);
  line.set("coalesced", coalesced);
  return line.dump_compact() + "\n";
}

std::string progress_line(const std::string& id, const std::string& spec,
                          const pcss::runner::ShardProgress& progress) {
  Json line = Json::object();
  line.set("event", "progress");
  line.set("id", id);
  line.set("spec", spec);
  line.set("shards_done", progress.shards_done);
  line.set("shards_total", progress.shards_total);
  line.set("shards_from_cache", progress.shards_from_cache);
  line.set("attack_steps", progress.attack_steps);
  line.set("eta_seconds", progress.eta_seconds);
  return line.dump_compact() + "\n";
}

std::string result_header_line(const std::string& id, const std::string& spec,
                               const std::string& key, bool cache_hit, bool coalesced,
                               int shards_total, int shards_from_cache,
                               long long attack_steps, std::size_t bytes) {
  Json line = Json::object();
  line.set("event", "result");
  line.set("id", id);
  line.set("spec", spec);
  line.set("key", key);
  line.set("cache_hit", cache_hit);
  line.set("coalesced", coalesced);
  line.set("shards_total", shards_total);
  line.set("shards_from_cache", shards_from_cache);
  line.set("attack_steps", attack_steps);
  line.set("bytes", static_cast<long long>(bytes));
  return line.dump_compact() + "\n";
}

std::string stats_header_line(const std::string& id, std::size_t bytes) {
  Json line = Json::object();
  line.set("event", "stats");
  line.set("id", id);
  line.set("bytes", static_cast<long long>(bytes));
  return line.dump_compact() + "\n";
}

std::string shutdown_line(const std::string& id) {
  Json line = Json::object();
  line.set("event", "shutdown");
  line.set("id", id);
  line.set("draining", true);
  return line.dump_compact() + "\n";
}

}  // namespace pcss::serve
