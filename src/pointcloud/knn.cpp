#include "pcss/pointcloud/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>

namespace pcss::pointcloud {

namespace {

/// Bounded max-heap of (distance, index) keeping the k smallest entries.
class TopK {
 public:
  explicit TopK(int k) : k_(k) { heap_.reserve(static_cast<size_t>(k)); }

  void offer(float dist, std::int64_t idx) {
    if (static_cast<int>(heap_.size()) < k_) {
      heap_.emplace_back(dist, idx);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (dist < heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = {dist, idx};
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

  float worst() const {
    return heap_.size() < static_cast<size_t>(k_) ? std::numeric_limits<float>::infinity()
                                                  : heap_.front().first;
  }

  /// Indices sorted by ascending distance; pads by repeating the last
  /// entry when fewer than k candidates were offered.
  void fill_sorted(std::int64_t* out) {
    std::sort(heap_.begin(), heap_.end());
    for (int j = 0; j < k_; ++j) {
      if (heap_.empty()) {
        out[j] = 0;
      } else {
        out[j] = heap_[std::min<size_t>(static_cast<size_t>(j), heap_.size() - 1)].second;
      }
    }
  }

 private:
  int k_;
  std::vector<std::pair<float, std::int64_t>> heap_;
};

}  // namespace

std::vector<std::int64_t> knn_self(const std::vector<Vec3>& points, int k,
                                   bool include_self) {
  // Large-N callers (outdoor scenes, model graph builds, the SOR defense
  // statistic) all route through the grid above the cutover; brute force
  // is O(N^2) and only wins on small clouds.
  if (static_cast<std::int64_t>(points.size()) >= kKnnGridCutover) {
    return knn_self_grid(points, k, include_self);
  }
  return knn_self_brute(points, k, include_self);
}

std::vector<std::int64_t> knn_self_brute(const std::vector<Vec3>& points, int k,
                                         bool include_self) {
  if (k <= 0) throw std::invalid_argument("knn_self: k must be positive");
  const std::int64_t n = static_cast<std::int64_t>(points.size());
  std::vector<std::int64_t> out(static_cast<size_t>(n) * static_cast<size_t>(k));
  for (std::int64_t i = 0; i < n; ++i) {
    TopK top(k);
    for (std::int64_t j = 0; j < n; ++j) {
      if (!include_self && j == i) continue;
      top.offer(squared_distance(points[static_cast<size_t>(i)],
                                 points[static_cast<size_t>(j)]),
                j);
    }
    top.fill_sorted(out.data() + i * k);
  }
  return out;
}

std::vector<std::int64_t> knn_query(const std::vector<Vec3>& reference,
                                    const std::vector<Vec3>& queries, int k) {
  if (k <= 0) throw std::invalid_argument("knn_query: k must be positive");
  if (reference.empty()) throw std::invalid_argument("knn_query: empty reference");
  const std::int64_t nq = static_cast<std::int64_t>(queries.size());
  std::vector<std::int64_t> out(static_cast<size_t>(nq) * static_cast<size_t>(k));
  for (std::int64_t i = 0; i < nq; ++i) {
    TopK top(k);
    for (std::int64_t j = 0; j < static_cast<std::int64_t>(reference.size()); ++j) {
      top.offer(squared_distance(queries[static_cast<size_t>(i)],
                                 reference[static_cast<size_t>(j)]),
                j);
    }
    top.fill_sorted(out.data() + i * k);
  }
  return out;
}

namespace {

struct CellKey {
  int x, y, z;
  bool operator==(const CellKey&) const = default;
};

struct CellHash {
  size_t operator()(const CellKey& c) const {
    // Three large primes mixed; collisions are harmless (bucket scan).
    return static_cast<size_t>(c.x) * 73856093u ^ static_cast<size_t>(c.y) * 19349663u ^
           static_cast<size_t>(c.z) * 83492791u;
  }
};

}  // namespace

/// Shared exact grid search parameterized over the pairwise squared
/// distance. Correctness requirement on `dist_sq`: it must be bounded
/// below by the positional squared distance, because the shell
/// termination bound is positional (true for the plain metric, where
/// they are equal, and for the combined position+color metric, which
/// only adds a non-negative term).
template <typename DistSqFn>
std::vector<std::int64_t> grid_search(const std::vector<Vec3>& points, int k,
                                      bool include_self, DistSqFn dist_sq) {
  const std::int64_t n = static_cast<std::int64_t>(points.size());
  if (n == 0) return {};
  const BBox box = compute_bbox(points);
  // Aim for ~2 points per cell so a shell radius of 1-2 usually suffices.
  const float volume = std::max(box.extent()[0], 1e-6f) * std::max(box.extent()[1], 1e-6f) *
                       std::max(box.extent()[2], 1e-6f);
  const float cell = std::max(std::cbrt(volume * 2.0f / static_cast<float>(n)), 1e-6f);
  std::unordered_map<CellKey, std::vector<std::int64_t>, CellHash> grid;
  auto key_of = [&](const Vec3& p) {
    return CellKey{static_cast<int>(std::floor((p[0] - box.min[0]) / cell)),
                   static_cast<int>(std::floor((p[1] - box.min[1]) / cell)),
                   static_cast<int>(std::floor((p[2] - box.min[2]) / cell))};
  };
  for (std::int64_t i = 0; i < n; ++i) grid[key_of(points[static_cast<size_t>(i)])].push_back(i);

  std::vector<std::int64_t> out(static_cast<size_t>(n) * static_cast<size_t>(k));
  for (std::int64_t i = 0; i < n; ++i) {
    const Vec3& p = points[static_cast<size_t>(i)];
    const CellKey center = key_of(p);
    TopK top(k);
    for (int radius = 0;; ++radius) {
      // Scan the shell of cells at Chebyshev distance `radius`.
      for (int dx = -radius; dx <= radius; ++dx) {
        for (int dy = -radius; dy <= radius; ++dy) {
          for (int dz = -radius; dz <= radius; ++dz) {
            if (std::max({std::abs(dx), std::abs(dy), std::abs(dz)}) != radius) continue;
            auto it = grid.find({center.x + dx, center.y + dy, center.z + dz});
            if (it == grid.end()) continue;
            for (std::int64_t j : it->second) {
              if (!include_self && j == i) continue;
              top.offer(dist_sq(i, j), j);
            }
          }
        }
      }
      // All unscanned cells are at least `radius * cell` away from p;
      // stop when the current k-th distance cannot be improved.
      const float safe = static_cast<float>(radius) * cell;
      if (top.worst() <= safe * safe) break;
      if (radius > 0 && safe * safe > squared_distance(box.min, box.max)) break;
    }
    top.fill_sorted(out.data() + i * k);
  }
  return out;
}

std::vector<std::int64_t> knn_self_grid(const std::vector<Vec3>& points, int k,
                                        bool include_self) {
  if (k <= 0) throw std::invalid_argument("knn_self_grid: k must be positive");
  return grid_search(points, k, include_self, [&](std::int64_t i, std::int64_t j) {
    return squared_distance(points[static_cast<size_t>(i)], points[static_cast<size_t>(j)]);
  });
}

namespace {

void check_combined_args(const std::vector<Vec3>& positions, const std::vector<Vec3>& colors,
                         float color_weight, int k, const char* who) {
  if (k <= 0) throw std::invalid_argument(std::string(who) + ": k must be positive");
  if (positions.size() != colors.size()) {
    throw std::invalid_argument(std::string(who) + ": positions/colors size mismatch");
  }
  if (color_weight < 0.0f) {
    throw std::invalid_argument(std::string(who) + ": color_weight must be >= 0");
  }
}

/// d^2 = d_pos^2 + color_weight * d_color^2 (the revised-SOR metric).
struct CombinedDistSq {
  const std::vector<Vec3>& positions;
  const std::vector<Vec3>& colors;
  float color_weight;

  float operator()(std::int64_t i, std::int64_t j) const {
    const auto a = static_cast<size_t>(i), b = static_cast<size_t>(j);
    return squared_distance(positions[a], positions[b]) +
           color_weight * squared_distance(colors[a], colors[b]);
  }
};

}  // namespace

std::vector<std::int64_t> knn_self_combined(const std::vector<Vec3>& positions,
                                            const std::vector<Vec3>& colors,
                                            float color_weight, int k) {
  check_combined_args(positions, colors, color_weight, k, "knn_self_combined");
  if (static_cast<std::int64_t>(positions.size()) >= kKnnGridCutover) {
    return knn_self_combined_grid(positions, colors, color_weight, k);
  }
  return knn_self_combined_brute(positions, colors, color_weight, k);
}

std::vector<std::int64_t> knn_self_combined_brute(const std::vector<Vec3>& positions,
                                                  const std::vector<Vec3>& colors,
                                                  float color_weight, int k) {
  check_combined_args(positions, colors, color_weight, k, "knn_self_combined_brute");
  const CombinedDistSq dist{positions, colors, color_weight};
  const std::int64_t n = static_cast<std::int64_t>(positions.size());
  std::vector<std::int64_t> out(static_cast<size_t>(n) * static_cast<size_t>(k));
  for (std::int64_t i = 0; i < n; ++i) {
    TopK top(k);
    for (std::int64_t j = 0; j < n; ++j) {
      if (j == i) continue;
      top.offer(dist(i, j), j);
    }
    top.fill_sorted(out.data() + i * k);
  }
  return out;
}

std::vector<std::int64_t> knn_self_combined_grid(const std::vector<Vec3>& positions,
                                                 const std::vector<Vec3>& colors,
                                                 float color_weight, int k) {
  check_combined_args(positions, colors, color_weight, k, "knn_self_combined_grid");
  // The grid cells span positions only; the combined distance can only
  // exceed the positional one, so the positional shell bound stays a
  // valid termination proof (shells just expand a little further when
  // color dominates the metric).
  return grid_search(positions, k, /*include_self=*/false,
                     CombinedDistSq{positions, colors, color_weight});
}

double neighborhood_change_fraction(const std::vector<std::int64_t>& before,
                                    const std::vector<std::int64_t>& after, int k) {
  if (before.size() != after.size() || k <= 0 || before.size() % static_cast<size_t>(k) != 0) {
    throw std::invalid_argument("neighborhood_change_fraction: inconsistent inputs");
  }
  const size_t n = before.size() / static_cast<size_t>(k);
  if (n == 0) return 0.0;
  size_t changed = 0;
  for (size_t i = 0; i < n; ++i) {
    std::unordered_set<std::int64_t> a(before.begin() + static_cast<std::ptrdiff_t>(i * k),
                                       before.begin() + static_cast<std::ptrdiff_t>((i + 1) * k));
    bool same = true;
    for (int j = 0; j < k; ++j) {
      if (!a.count(after[i * static_cast<size_t>(k) + static_cast<size_t>(j)])) {
        same = false;
        break;
      }
    }
    if (!same) ++changed;
  }
  return static_cast<double>(changed) / static_cast<double>(n);
}

std::vector<float> mean_knn_distance(const std::vector<Vec3>& points, int k) {
  const std::int64_t n = static_cast<std::int64_t>(points.size());
  std::vector<float> out(static_cast<size_t>(n), 0.0f);
  if (n <= 1) return out;
  const int kk = static_cast<int>(std::min<std::int64_t>(k, n - 1));
  const auto idx = knn_self(points, kk, /*include_self=*/false);
  for (std::int64_t i = 0; i < n; ++i) {
    float acc = 0.0f;
    for (int j = 0; j < kk; ++j) {
      acc += std::sqrt(squared_distance(points[static_cast<size_t>(i)],
                                        points[static_cast<size_t>(idx[i * kk + j])]));
    }
    out[static_cast<size_t>(i)] = acc / static_cast<float>(kk);
  }
  return out;
}

}  // namespace pcss::pointcloud
