#pragma once

#include <string>

#include "pcss/pointcloud/point_cloud.h"

namespace pcss::pointcloud {

/// Writes "x y z r g b label" per line (colors in [0,1]).
void save_xyzrgbl(const PointCloud& cloud, const std::string& path);

/// Reads the format written by save_xyzrgbl. Throws on parse errors.
PointCloud load_xyzrgbl(const std::string& path);

/// ASCII PLY export with uchar colors, viewable in MeshLab/CloudCompare.
void save_ply(const PointCloud& cloud, const std::string& path);

}  // namespace pcss::pointcloud
