#pragma once

#include <cstdint>
#include <vector>

#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/rng.h"

namespace pcss::pointcloud {

using pcss::tensor::Rng;

/// Farthest point sampling: greedily selects m points maximizing the
/// minimum pairwise distance, starting from `start`. This is the
/// PointNet++ set-abstraction sampler.
std::vector<std::int64_t> farthest_point_sample(const std::vector<Vec3>& points,
                                                std::int64_t m, std::int64_t start = 0);

/// m indices drawn uniformly without replacement (RandLA-Net sampler and
/// the SRS defense).
std::vector<std::int64_t> random_sample(std::int64_t n, std::int64_t m, Rng& rng);

/// RandLA-Net input regeneration: produces exactly m indices by random
/// selection when n >= m and by random duplication when n < m.
std::vector<std::int64_t> duplicate_or_select(std::int64_t n, std::int64_t m, Rng& rng);

/// Voxel-grid downsample: keeps one (arbitrary) point per occupied voxel
/// of the given edge length. Used to thin huge outdoor clouds before the
/// model-specific samplers run.
std::vector<std::int64_t> voxel_downsample(const std::vector<Vec3>& points, float voxel);

}  // namespace pcss::pointcloud
