#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace pcss::pointcloud {

using Vec3 = std::array<float, 3>;

inline Vec3 operator+(const Vec3& a, const Vec3& b) {
  return {a[0] + b[0], a[1] + b[1], a[2] + b[2]};
}
inline Vec3 operator-(const Vec3& a, const Vec3& b) {
  return {a[0] - b[0], a[1] - b[1], a[2] - b[2]};
}
inline Vec3 operator*(const Vec3& a, float s) { return {a[0] * s, a[1] * s, a[2] * s}; }

float dot(const Vec3& a, const Vec3& b);
float norm(const Vec3& a);
float squared_distance(const Vec3& a, const Vec3& b);

/// Axis-aligned bounding box of a point set.
struct BBox {
  Vec3 min{0, 0, 0};
  Vec3 max{0, 0, 0};

  Vec3 extent() const { return max - min; }
  Vec3 center() const { return (min + max) * 0.5f; }
  /// Longest axis length (used for isotropic normalization).
  float max_extent() const;
};

BBox compute_bbox(const std::vector<Vec3>& positions);

/// A labeled, colored point cloud — the unit every model, attack, and
/// metric in this library operates on. Colors live in [0, 1]^3 (the paper
/// perturbs this field); labels are dataset class indices.
struct PointCloud {
  std::vector<Vec3> positions;
  std::vector<Vec3> colors;
  std::vector<int> labels;

  std::int64_t size() const { return static_cast<std::int64_t>(positions.size()); }
  bool empty() const { return positions.empty(); }

  void reserve(std::int64_t n);
  void push_back(const Vec3& pos, const Vec3& color, int label);
  /// Cloud restricted to the given point indices (order preserved).
  PointCloud subset(const std::vector<std::int64_t>& indices) const;
  /// Throws if the three arrays disagree in length or colors leave [0,1].
  void validate() const;
  /// Clamps all color channels into [0, 1].
  void clamp_colors();
};

}  // namespace pcss::pointcloud
