#pragma once

#include <cstdint>
#include <vector>

#include "pcss/pointcloud/point_cloud.h"

namespace pcss::pointcloud {

/// Cloud size at and above which knn_self dispatches to the grid
/// implementation (the O(N^2) brute force loses past ~1k points on this
/// substrate; at the cutover the two are within noise of each other).
inline constexpr std::int64_t kKnnGridCutover = 1024;

/// k nearest neighbors of each point within the same set. Returns a flat
/// [n*k] row-major index array. When include_self is false the point
/// itself is excluded from its own neighbor list. If fewer than k
/// candidates exist, the last found index is repeated to keep the layout
/// rectangular.
///
/// Dispatches to the exact grid search for clouds of kKnnGridCutover or
/// more points; both paths produce identical results up to ties at the
/// k-th distance (measure zero for real scene data).
std::vector<std::int64_t> knn_self(const std::vector<Vec3>& points, int k,
                                   bool include_self = true);

/// Brute-force O(N^2) variant, kept callable for the grid-equivalence
/// tests and for tie-sensitive callers that need the historical order.
std::vector<std::int64_t> knn_self_brute(const std::vector<Vec3>& points, int k,
                                         bool include_self = true);

/// k nearest neighbors of each query point among `reference` points.
/// Returns a flat [queries.size()*k] index array into `reference`.
std::vector<std::int64_t> knn_query(const std::vector<Vec3>& reference,
                                    const std::vector<Vec3>& queries, int k);

/// Grid-accelerated variant of knn_self for large clouds (outdoor scenes).
/// Exact: expands cell shells until the k-th distance is provably final.
std::vector<std::int64_t> knn_self_grid(const std::vector<Vec3>& points, int k,
                                        bool include_self = true);

/// k nearest neighbors within one set under the combined position+color
/// metric of the revised SOR defense:
///   d^2(i, j) = ||p_i - p_j||^2 + color_weight * ||c_i - c_j||^2.
/// Returns a flat [n*k] row-major index array (ascending distance). The
/// point itself is always excluded from its own list. `positions` and
/// `colors` must be the same length; color_weight must be >= 0 (0 reduces
/// the metric to plain positional kNN).
///
/// Dispatches to the grid search at kKnnGridCutover points. The grid is
/// exact for the combined metric too: the combined distance is bounded
/// below by the positional distance, so the positional shell bound of
/// knn_self_grid still proves the k-th neighbor final. Both paths agree
/// up to ties at the k-th combined distance.
std::vector<std::int64_t> knn_self_combined(const std::vector<Vec3>& positions,
                                            const std::vector<Vec3>& colors,
                                            float color_weight, int k);

/// Brute-force O(N^2) variant, kept callable for the grid-equivalence
/// tests (mirrors knn_self_brute).
std::vector<std::int64_t> knn_self_combined_brute(const std::vector<Vec3>& positions,
                                                  const std::vector<Vec3>& colors,
                                                  float color_weight, int k);

/// Grid-accelerated variant for large clouds.
std::vector<std::int64_t> knn_self_combined_grid(const std::vector<Vec3>& positions,
                                                 const std::vector<Vec3>& colors,
                                                 float color_weight, int k);

/// Fraction of points whose neighbor *set* changed between two [n*k] kNN
/// index arrays. Used for the paper's §V-B evidence that coordinate
/// perturbation disturbs >88% of neighborhoods.
double neighborhood_change_fraction(const std::vector<std::int64_t>& before,
                                    const std::vector<std::int64_t>& after, int k);

/// Mean distance from each point to its k nearest neighbors (excluding
/// self) — the statistic used by the SOR defense.
std::vector<float> mean_knn_distance(const std::vector<Vec3>& points, int k);

}  // namespace pcss::pointcloud
