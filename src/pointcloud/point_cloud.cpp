#include "pcss/pointcloud/point_cloud.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pcss::pointcloud {

float dot(const Vec3& a, const Vec3& b) { return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]; }

float norm(const Vec3& a) { return std::sqrt(dot(a, a)); }

float squared_distance(const Vec3& a, const Vec3& b) {
  const Vec3 d = a - b;
  return dot(d, d);
}

float BBox::max_extent() const {
  const Vec3 e = extent();
  return std::max({e[0], e[1], e[2]});
}

BBox compute_bbox(const std::vector<Vec3>& positions) {
  if (positions.empty()) return {};
  BBox box{positions[0], positions[0]};
  for (const Vec3& p : positions) {
    for (int a = 0; a < 3; ++a) {
      box.min[a] = std::min(box.min[a], p[a]);
      box.max[a] = std::max(box.max[a], p[a]);
    }
  }
  return box;
}

void PointCloud::reserve(std::int64_t n) {
  positions.reserve(static_cast<size_t>(n));
  colors.reserve(static_cast<size_t>(n));
  labels.reserve(static_cast<size_t>(n));
}

void PointCloud::push_back(const Vec3& pos, const Vec3& color, int label) {
  positions.push_back(pos);
  colors.push_back(color);
  labels.push_back(label);
}

PointCloud PointCloud::subset(const std::vector<std::int64_t>& indices) const {
  PointCloud out;
  out.reserve(static_cast<std::int64_t>(indices.size()));
  for (std::int64_t i : indices) {
    if (i < 0 || i >= size()) throw std::out_of_range("PointCloud::subset: bad index");
    out.push_back(positions[static_cast<size_t>(i)], colors[static_cast<size_t>(i)],
                  labels[static_cast<size_t>(i)]);
  }
  return out;
}

void PointCloud::validate() const {
  if (positions.size() != colors.size() || positions.size() != labels.size()) {
    throw std::runtime_error("PointCloud: arrays have inconsistent lengths");
  }
  for (const Vec3& c : colors) {
    for (int a = 0; a < 3; ++a) {
      if (!(c[a] >= 0.0f && c[a] <= 1.0f)) {
        throw std::runtime_error("PointCloud: color channel outside [0,1]");
      }
    }
  }
}

void PointCloud::clamp_colors() {
  for (Vec3& c : colors) {
    for (int a = 0; a < 3; ++a) c[a] = std::clamp(c[a], 0.0f, 1.0f);
  }
}

}  // namespace pcss::pointcloud
