#include "pcss/pointcloud/io.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <stdexcept>

namespace pcss::pointcloud {

void save_xyzrgbl(const PointCloud& cloud, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_xyzrgbl: cannot open " + path);
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    const auto& p = cloud.positions[static_cast<size_t>(i)];
    const auto& c = cloud.colors[static_cast<size_t>(i)];
    out << p[0] << ' ' << p[1] << ' ' << p[2] << ' ' << c[0] << ' ' << c[1] << ' ' << c[2]
        << ' ' << cloud.labels[static_cast<size_t>(i)] << '\n';
  }
  if (!out) throw std::runtime_error("save_xyzrgbl: write failure for " + path);
}

PointCloud load_xyzrgbl(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_xyzrgbl: cannot open " + path);
  PointCloud cloud;
  Vec3 p, c;
  int label = 0;
  while (in >> p[0] >> p[1] >> p[2] >> c[0] >> c[1] >> c[2] >> label) {
    cloud.push_back(p, c, label);
  }
  if (!in.eof() && in.fail()) throw std::runtime_error("load_xyzrgbl: parse error in " + path);
  return cloud;
}

void save_ply(const PointCloud& cloud, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("save_ply: cannot open " + path);
  out << "ply\nformat ascii 1.0\nelement vertex " << cloud.size()
      << "\nproperty float x\nproperty float y\nproperty float z\n"
         "property uchar red\nproperty uchar green\nproperty uchar blue\nend_header\n";
  for (std::int64_t i = 0; i < cloud.size(); ++i) {
    const auto& p = cloud.positions[static_cast<size_t>(i)];
    const auto& c = cloud.colors[static_cast<size_t>(i)];
    auto to_byte = [](float v) {
      return static_cast<int>(std::lround(std::clamp(v, 0.0f, 1.0f) * 255.0f));
    };
    out << p[0] << ' ' << p[1] << ' ' << p[2] << ' ' << to_byte(c[0]) << ' ' << to_byte(c[1])
        << ' ' << to_byte(c[2]) << '\n';
  }
  if (!out) throw std::runtime_error("save_ply: write failure for " + path);
}

}  // namespace pcss::pointcloud
