#include "pcss/pointcloud/sampling.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

namespace pcss::pointcloud {

std::vector<std::int64_t> farthest_point_sample(const std::vector<Vec3>& points,
                                                std::int64_t m, std::int64_t start) {
  const std::int64_t n = static_cast<std::int64_t>(points.size());
  if (m <= 0 || m > n) throw std::invalid_argument("farthest_point_sample: bad m");
  if (start < 0 || start >= n) throw std::invalid_argument("farthest_point_sample: bad start");
  std::vector<std::int64_t> selected;
  selected.reserve(static_cast<size_t>(m));
  std::vector<float> min_d2(static_cast<size_t>(n), std::numeric_limits<float>::infinity());
  std::int64_t current = start;
  for (std::int64_t s = 0; s < m; ++s) {
    selected.push_back(current);
    const Vec3& c = points[static_cast<size_t>(current)];
    std::int64_t next = -1;
    float best = -1.0f;
    for (std::int64_t i = 0; i < n; ++i) {
      const float d2 = squared_distance(points[static_cast<size_t>(i)], c);
      if (d2 < min_d2[static_cast<size_t>(i)]) min_d2[static_cast<size_t>(i)] = d2;
      if (min_d2[static_cast<size_t>(i)] > best) {
        best = min_d2[static_cast<size_t>(i)];
        next = i;
      }
    }
    current = next;
  }
  return selected;
}

std::vector<std::int64_t> random_sample(std::int64_t n, std::int64_t m, Rng& rng) {
  if (m < 0 || m > n) throw std::invalid_argument("random_sample: bad m");
  // Partial Fisher-Yates over an index array.
  std::vector<std::int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int64_t j = rng.randint(i, n - 1);
    std::swap(idx[static_cast<size_t>(i)], idx[static_cast<size_t>(j)]);
  }
  idx.resize(static_cast<size_t>(m));
  return idx;
}

std::vector<std::int64_t> duplicate_or_select(std::int64_t n, std::int64_t m, Rng& rng) {
  if (n <= 0 || m <= 0) throw std::invalid_argument("duplicate_or_select: bad sizes");
  if (n >= m) return random_sample(n, m, rng);
  // Every original point appears at least once; the remainder is drawn
  // with replacement, mirroring RandLA-Net's regeneration step.
  std::vector<std::int64_t> idx(static_cast<size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  idx.reserve(static_cast<size_t>(m));
  for (std::int64_t i = n; i < m; ++i) idx.push_back(rng.randint(0, n - 1));
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  return idx;
}

std::vector<std::int64_t> voxel_downsample(const std::vector<Vec3>& points, float voxel) {
  if (voxel <= 0.0f) throw std::invalid_argument("voxel_downsample: voxel must be positive");
  const BBox box = compute_bbox(points);
  std::unordered_set<std::int64_t> seen;
  std::vector<std::int64_t> keep;
  for (std::int64_t i = 0; i < static_cast<std::int64_t>(points.size()); ++i) {
    const Vec3& p = points[static_cast<size_t>(i)];
    const std::int64_t cx = static_cast<std::int64_t>((p[0] - box.min[0]) / voxel);
    const std::int64_t cy = static_cast<std::int64_t>((p[1] - box.min[1]) / voxel);
    const std::int64_t cz = static_cast<std::int64_t>((p[2] - box.min[2]) / voxel);
    const std::int64_t key = (cx * 73856093) ^ (cy * 19349663) ^ (cz * 83492791);
    if (seen.insert(key).second) keep.push_back(i);
  }
  return keep;
}

}  // namespace pcss::pointcloud
