#pragma once

#include <memory>
#include <string>
#include <vector>

#include "pcss/data/indoor.h"
#include "pcss/data/outdoor.h"
#include "pcss/models/pointnet2.h"
#include "pcss/models/randlanet.h"
#include "pcss/models/resgcn.h"
#include "pcss/train/trainer.h"

namespace pcss::train {

/// Scene configurations shared by training, tests, and benchmarks so the
/// cached "pre-trained" models match the evaluation distribution.
/// Point budgets are CPU-scaled versions of the paper's 4096 (S3DIS) and
/// 40960 (RandLA regeneration) — see DESIGN.md.
pcss::data::IndoorSceneConfig zoo_indoor_config();
pcss::data::OutdoorSceneConfig zoo_outdoor_config();

/// Trains each paper model once and caches the checkpoint on disk, so
/// every bench/example reuses the same "pre-trained" weights. The cache
/// directory defaults to $PCSS_ARTIFACTS or <repo>/artifacts.
class ModelZoo {
 public:
  explicit ModelZoo(std::string cache_dir = default_cache_dir());

  static std::string default_cache_dir();

  /// PointNet++ on indoor scenes. `seed` selects independently trained
  /// instances ("pre-trained" = 1, "self-trained" = 2 in Table IX).
  std::shared_ptr<pcss::models::PointNet2Seg> pointnet2_indoor(int seed = 1);
  std::shared_ptr<pcss::models::ResGCNSeg> resgcn_indoor(int seed = 1);
  std::shared_ptr<pcss::models::RandLANetSeg> randla_indoor(int seed = 1);
  std::shared_ptr<pcss::models::RandLANetSeg> randla_outdoor(int seed = 1);

  /// Freshly generated held-out evaluation scenes ("Area 5").
  std::vector<pcss::data::PointCloud> indoor_eval_scenes(int count,
                                                         std::uint64_t seed = 5000) const;
  std::vector<pcss::data::PointCloud> outdoor_eval_scenes(int count,
                                                          std::uint64_t seed = 6000) const;

  const std::string& cache_dir() const { return cache_dir_; }

  /// Where the checkpoint for (`key`, `seed`) lives, whether or not it
  /// has been trained yet. `key` is the model-family string used by the
  /// accessors above ("pointnet2_indoor", "resgcn_indoor",
  /// "randla_indoor", "randla_outdoor"). The runner hashes these bytes
  /// to content-address experiment results by model weights.
  std::string checkpoint_path(const std::string& key, int seed = 1) const;

 private:
  template <typename ModelT, typename ConfigT, typename GenT>
  std::shared_ptr<ModelT> get_or_train(const std::string& key, const ConfigT& model_config,
                                       const GenT& generator, int seed,
                                       const TrainConfig& train_config);

  std::string cache_dir_;
};

}  // namespace pcss::train
