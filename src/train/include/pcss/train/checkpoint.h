#pragma once

#include <string>

#include "pcss/models/model.h"

namespace pcss::train {

/// Binary checkpoint of a model's named parameters and buffers.
/// Load verifies that every name and element count matches the target
/// model, so architecture drift is caught loudly.
void save_checkpoint(pcss::models::SegmentationModel& model, const std::string& path);
void load_checkpoint(pcss::models::SegmentationModel& model, const std::string& path);

bool checkpoint_exists(const std::string& path);

}  // namespace pcss::train
