#pragma once

#include <string>

#include "pcss/models/model.h"

namespace pcss::train {

/// Binary checkpoint of a model's named parameters and buffers.
/// Load verifies that every name and element count matches the target
/// model, so architecture drift is caught loudly. A truncated or corrupt
/// file throws std::runtime_error naming the path and the first
/// malformed element, and the model is only mutated after the entire
/// file has validated — a failed load never leaves a partial state.
void save_checkpoint(pcss::models::SegmentationModel& model, const std::string& path);
void load_checkpoint(pcss::models::SegmentationModel& model, const std::string& path);

bool checkpoint_exists(const std::string& path);

}  // namespace pcss::train
