#pragma once

#include <functional>
#include <vector>

#include "pcss/models/model.h"
#include "pcss/tensor/rng.h"

namespace pcss::train {

using pcss::models::PointCloud;
using pcss::models::SegmentationModel;
using pcss::tensor::Rng;

/// A function producing one training scene per call.
using SceneSource = std::function<PointCloud(Rng&)>;

struct TrainConfig {
  int iterations = 300;      ///< optimizer steps (one scene per step)
  int scene_pool = 24;       ///< distinct scenes cycled during training
  float lr = 0.01f;          ///< Adam learning rate
  std::uint64_t seed = 1234; ///< scene-generation seed
  bool verbose = false;
};

struct TrainStats {
  float final_loss = 0.0f;
  double final_train_accuracy = 0.0;
};

/// Trains `model` with per-point cross-entropy over procedurally
/// generated scenes. This is how the repo produces its "pre-trained"
/// models (see DESIGN.md substitutions).
TrainStats train_model(SegmentationModel& model, const SceneSource& source,
                       const TrainConfig& config);

/// Mean per-point accuracy over the given clouds (eval mode).
double evaluate_accuracy(SegmentationModel& model, const std::vector<PointCloud>& clouds);

}  // namespace pcss::train
