#include "pcss/train/checkpoint.h"

#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <vector>

namespace pcss::train {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'S', 'S', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
// Far above any real parameter name; a longer length means the length
// field itself is garbage (truncated or corrupt file).
constexpr std::uint32_t kMaxNameLength = 4096;

void write_blob(std::ofstream& out, const std::string& name, const float* data,
                std::uint64_t count) {
  const auto name_len = static_cast<std::uint32_t>(name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(float)));
}

/// Bounds-checked cursor over the checkpoint bytes. Every read names
/// what it was reading when the file ran out, so a truncated or corrupt
/// checkpoint fails with a diagnosable message instead of feeding
/// garbage lengths into further reads.
class Reader {
 public:
  Reader(const std::string& bytes, const std::string& path) : bytes_(bytes), path_(path) {}

  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("load_checkpoint: " + path_ + ": " + what);
  }

  const char* take(std::size_t size, const char* what) {
    if (offset_ + size > bytes_.size()) {
      fail("truncated: unexpected end of file while reading " + std::string(what) +
           " (need " + std::to_string(size) + " bytes at offset " +
           std::to_string(offset_) + ", file has " + std::to_string(bytes_.size()) + ")");
    }
    const char* p = bytes_.data() + offset_;
    offset_ += size;
    return p;
  }

  std::uint32_t u32(const char* what) {
    std::uint32_t value;
    std::memcpy(&value, take(sizeof(value), what), sizeof(value));
    return value;
  }

  std::uint64_t u64(const char* what) {
    std::uint64_t value;
    std::memcpy(&value, take(sizeof(value), what), sizeof(value));
    return value;
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  const std::string& bytes_;
  const std::string& path_;
  std::size_t offset_ = 0;
};

/// Reads and validates one named tensor into `staged`, which is only
/// committed to the model after the whole file has checked out.
void read_blob(Reader& reader, const std::string& expected_name,
               std::uint64_t expected_count, std::vector<float>& staged) {
  const std::uint32_t name_len = reader.u32("a tensor-name length");
  if (name_len > kMaxNameLength) {
    reader.fail("corrupt: implausible tensor-name length " + std::to_string(name_len) +
                " before tensor '" + expected_name + "'");
  }
  const std::string name(reader.take(name_len, "a tensor name"), name_len);
  const std::uint64_t count = reader.u64("a tensor element count");
  if (name != expected_name || count != expected_count) {
    reader.fail("tensor mismatch: expected '" + expected_name + "' (" +
                std::to_string(expected_count) + " elements), found '" + name + "' (" +
                std::to_string(count) + ")");
  }
  staged.resize(static_cast<std::size_t>(count));
  std::memcpy(staged.data(), reader.take(static_cast<std::size_t>(count) * sizeof(float),
                                         ("tensor '" + name + "'").c_str()),
              static_cast<std::size_t>(count) * sizeof(float));
}

}  // namespace

void save_checkpoint(pcss::models::SegmentationModel& model, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  // Write-then-rename: readers (and the run_key weight fingerprint) see
  // either no checkpoint or a complete one — a crash mid-save leaves a
  // .tmp.<pid> sibling, never a torn file that loads as garbage.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("save_checkpoint: cannot open " + tmp);
    out.write(kMagic, sizeof(kMagic));
    out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));

    auto params = model.named_params();
    auto buffers = model.named_buffers();
    const auto np = static_cast<std::uint64_t>(params.size());
    const auto nb = static_cast<std::uint64_t>(buffers.size());
    out.write(reinterpret_cast<const char*>(&np), sizeof(np));
    for (auto& p : params) {
      write_blob(out, p.name, p.tensor.data(), static_cast<std::uint64_t>(p.tensor.numel()));
    }
    out.write(reinterpret_cast<const char*>(&nb), sizeof(nb));
    for (auto& b : buffers) {
      write_blob(out, b.name, b.values->data(), static_cast<std::uint64_t>(b.values->size()));
    }
    out.flush();
    if (!out) {
      std::error_code ec;
      std::filesystem::remove(tmp, ec);
      throw std::runtime_error("save_checkpoint: write failure for " + tmp);
    }
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::error_code remove_ec;
    std::filesystem::remove(tmp, remove_ec);
    throw std::runtime_error("save_checkpoint: cannot rename " + tmp + " to " + path +
                             ": " + ec.message());
  }
}

void load_checkpoint(pcss::models::SegmentationModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  std::string bytes{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (in.bad()) throw std::runtime_error("load_checkpoint: read error on " + path);

  Reader reader(bytes, path);
  if (std::memcmp(reader.take(sizeof(kMagic), "the file magic"), kMagic, sizeof(kMagic)) !=
      0) {
    reader.fail("not a PCSS checkpoint (bad magic)");
  }
  const std::uint32_t version = reader.u32("the format version");
  if (version != kVersion) {
    reader.fail("unsupported checkpoint version " + std::to_string(version) +
                " (this build reads version " + std::to_string(kVersion) + ")");
  }

  auto params = model.named_params();
  auto buffers = model.named_buffers();

  // Stage everything first: the model is mutated only after the entire
  // file has been read and validated, so a truncated or corrupt
  // checkpoint can never leave a partially loaded model behind.
  const std::uint64_t np = reader.u64("the parameter count");
  if (np != params.size()) {
    reader.fail("parameter count mismatch: checkpoint has " + std::to_string(np) +
                ", model expects " + std::to_string(params.size()));
  }
  std::vector<std::vector<float>> staged_params(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    read_blob(reader, params[i].name, static_cast<std::uint64_t>(params[i].tensor.numel()),
              staged_params[i]);
  }
  const std::uint64_t nb = reader.u64("the buffer count");
  if (nb != buffers.size()) {
    reader.fail("buffer count mismatch: checkpoint has " + std::to_string(nb) +
                ", model expects " + std::to_string(buffers.size()));
  }
  std::vector<std::vector<float>> staged_buffers(buffers.size());
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    read_blob(reader, buffers[i].name, static_cast<std::uint64_t>(buffers[i].values->size()),
              staged_buffers[i]);
  }
  if (reader.remaining() != 0) {
    reader.fail("corrupt: " + std::to_string(reader.remaining()) +
                " trailing bytes after the last tensor");
  }

  for (std::size_t i = 0; i < params.size(); ++i) {
    std::memcpy(params[i].tensor.data(), staged_params[i].data(),
                staged_params[i].size() * sizeof(float));
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    std::memcpy(buffers[i].values->data(), staged_buffers[i].data(),
                staged_buffers[i].size() * sizeof(float));
  }
}

bool checkpoint_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace pcss::train
