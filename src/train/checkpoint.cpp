#include "pcss/train/checkpoint.h"

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace pcss::train {

namespace {

constexpr char kMagic[8] = {'P', 'C', 'S', 'S', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

void write_blob(std::ofstream& out, const std::string& name, const float* data,
                std::uint64_t count) {
  const auto name_len = static_cast<std::uint32_t>(name.size());
  out.write(reinterpret_cast<const char*>(&name_len), sizeof(name_len));
  out.write(name.data(), static_cast<std::streamsize>(name.size()));
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(data),
            static_cast<std::streamsize>(count * sizeof(float)));
}

void read_blob(std::ifstream& in, const std::string& expected_name, float* data,
               std::uint64_t expected_count, const std::string& path) {
  std::uint32_t name_len = 0;
  in.read(reinterpret_cast<char*>(&name_len), sizeof(name_len));
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in || name != expected_name || count != expected_count) {
    throw std::runtime_error("checkpoint mismatch in " + path + ": expected '" +
                             expected_name + "' (" + std::to_string(expected_count) +
                             "), found '" + name + "' (" + std::to_string(count) + ")");
  }
  in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(count * sizeof(float)));
  if (!in) throw std::runtime_error("checkpoint truncated: " + path);
}

}  // namespace

void save_checkpoint(pcss::models::SegmentationModel& model, const std::string& path) {
  std::filesystem::create_directories(std::filesystem::path(path).parent_path());
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, sizeof(kMagic));
  out.write(reinterpret_cast<const char*>(&kVersion), sizeof(kVersion));

  auto params = model.named_params();
  auto buffers = model.named_buffers();
  const auto np = static_cast<std::uint64_t>(params.size());
  const auto nb = static_cast<std::uint64_t>(buffers.size());
  out.write(reinterpret_cast<const char*>(&np), sizeof(np));
  for (auto& p : params) {
    write_blob(out, p.name, p.tensor.data(), static_cast<std::uint64_t>(p.tensor.numel()));
  }
  out.write(reinterpret_cast<const char*>(&nb), sizeof(nb));
  for (auto& b : buffers) {
    write_blob(out, b.name, b.values->data(), static_cast<std::uint64_t>(b.values->size()));
  }
  if (!out) throw std::runtime_error("save_checkpoint: write failure for " + path);
}

void load_checkpoint(pcss::models::SegmentationModel& model, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[8];
  std::uint32_t version = 0;
  in.read(magic, sizeof(magic));
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0 || version != kVersion) {
    throw std::runtime_error("load_checkpoint: bad header in " + path);
  }

  auto params = model.named_params();
  auto buffers = model.named_buffers();
  std::uint64_t np = 0, nb = 0;
  in.read(reinterpret_cast<char*>(&np), sizeof(np));
  if (np != params.size()) {
    throw std::runtime_error("load_checkpoint: parameter count mismatch in " + path);
  }
  for (auto& p : params) {
    read_blob(in, p.name, p.tensor.data(), static_cast<std::uint64_t>(p.tensor.numel()), path);
  }
  in.read(reinterpret_cast<char*>(&nb), sizeof(nb));
  if (nb != buffers.size()) {
    throw std::runtime_error("load_checkpoint: buffer count mismatch in " + path);
  }
  for (auto& b : buffers) {
    read_blob(in, b.name, b.values->data(), static_cast<std::uint64_t>(b.values->size()), path);
  }
}

bool checkpoint_exists(const std::string& path) {
  return std::filesystem::exists(path);
}

}  // namespace pcss::train
