#include "pcss/train/trainer.h"

#include <cstdio>

#include "pcss/tensor/ops.h"
#include "pcss/tensor/optim.h"

namespace pcss::train {

namespace ops = pcss::tensor::ops;
using pcss::models::ModelInput;
using pcss::tensor::Tensor;

TrainStats train_model(SegmentationModel& model, const SceneSource& source,
                       const TrainConfig& config) {
  Rng rng(config.seed);
  std::vector<PointCloud> pool;
  pool.reserve(static_cast<size_t>(config.scene_pool));
  for (int i = 0; i < config.scene_pool; ++i) pool.push_back(source(rng));

  pcss::tensor::optim::Adam opt(model.parameters(), config.lr);
  TrainStats stats;
  for (int it = 0; it < config.iterations; ++it) {
    const PointCloud& cloud = pool[static_cast<size_t>(it) % pool.size()];
    ModelInput input = ModelInput::plain(cloud);
    Tensor logits = model.forward(input, /*training=*/true);
    Tensor loss = ops::nll_loss_masked(ops::log_softmax_rows(logits), cloud.labels, {});
    opt.zero_grad();
    loss.backward();
    opt.step();
    stats.final_loss = loss.item();
    if (config.verbose && (it % 25 == 0 || it + 1 == config.iterations)) {
      std::printf("  [train %s] iter %4d  loss %.4f\n", model.name().c_str(), it,
                  stats.final_loss);
    }
  }
  stats.final_train_accuracy = evaluate_accuracy(model, pool);
  return stats;
}

double evaluate_accuracy(SegmentationModel& model, const std::vector<PointCloud>& clouds) {
  std::int64_t correct = 0, total = 0;
  for (const PointCloud& cloud : clouds) {
    const std::vector<int> pred = model.predict(cloud);
    for (size_t i = 0; i < pred.size(); ++i) {
      correct += pred[i] == cloud.labels[i] ? 1 : 0;
    }
    total += cloud.size();
  }
  return total ? static_cast<double>(correct) / static_cast<double>(total) : 0.0;
}

}  // namespace pcss::train
