#include "pcss/train/model_zoo.h"

#include <cstdio>
#include <cstdlib>

#include "pcss/train/checkpoint.h"

namespace pcss::train {

using pcss::data::IndoorSceneConfig;
using pcss::data::IndoorSceneGenerator;
using pcss::data::OutdoorSceneConfig;
using pcss::data::OutdoorSceneGenerator;
using pcss::data::PointCloud;
using pcss::tensor::Rng;

pcss::data::IndoorSceneConfig zoo_indoor_config() {
  IndoorSceneConfig config;
  config.num_points = 512;
  return config;
}

pcss::data::OutdoorSceneConfig zoo_outdoor_config() {
  OutdoorSceneConfig config;
  config.num_points = 1024;  // 2x the indoor budget; CPU-scaled from 1e8
  return config;
}

std::string ModelZoo::default_cache_dir() {
  if (const char* env = std::getenv("PCSS_ARTIFACTS")) return env;
  return "artifacts";
}

ModelZoo::ModelZoo(std::string cache_dir) : cache_dir_(std::move(cache_dir)) {}

std::string ModelZoo::checkpoint_path(const std::string& key, int seed) const {
  return cache_dir_ + "/" + key + "_seed" + std::to_string(seed) + ".ckpt";
}

template <typename ModelT, typename ConfigT, typename GenT>
std::shared_ptr<ModelT> ModelZoo::get_or_train(const std::string& key,
                                               const ConfigT& model_config,
                                               const GenT& generator, int seed,
                                               const TrainConfig& train_config) {
  Rng init_rng(0x1000u + static_cast<std::uint64_t>(seed) * 7919u);
  auto model = std::make_shared<ModelT>(model_config, init_rng);
  const std::string path = checkpoint_path(key, seed);
  if (checkpoint_exists(path)) {
    load_checkpoint(*model, path);
    return model;
  }
  std::printf("[model_zoo] training %s (no cached checkpoint at %s)...\n", key.c_str(),
              path.c_str());
  TrainConfig tc = train_config;
  tc.seed = 1000 + static_cast<std::uint64_t>(seed) * 131;
  const TrainStats stats =
      train_model(*model, [&generator](Rng& rng) { return generator.generate(rng); }, tc);
  std::printf("[model_zoo] %s trained: loss %.4f, train accuracy %.2f%%\n", key.c_str(),
              stats.final_loss, 100.0 * stats.final_train_accuracy);
  save_checkpoint(*model, path);
  return model;
}

std::shared_ptr<pcss::models::PointNet2Seg> ModelZoo::pointnet2_indoor(int seed) {
  pcss::models::PointNet2Config config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  IndoorSceneGenerator gen(zoo_indoor_config());
  TrainConfig tc;
  tc.iterations = 400;
  return get_or_train<pcss::models::PointNet2Seg>("pointnet2_indoor", config, gen, seed, tc);
}

std::shared_ptr<pcss::models::ResGCNSeg> ModelZoo::resgcn_indoor(int seed) {
  pcss::models::ResGCNConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  IndoorSceneGenerator gen(zoo_indoor_config());
  TrainConfig tc;
  tc.iterations = 350;
  return get_or_train<pcss::models::ResGCNSeg>("resgcn_indoor", config, gen, seed, tc);
}

std::shared_ptr<pcss::models::RandLANetSeg> ModelZoo::randla_indoor(int seed) {
  pcss::models::RandLANetConfig config;
  config.num_classes = pcss::data::kIndoorNumClasses;
  IndoorSceneGenerator gen(zoo_indoor_config());
  TrainConfig tc;
  tc.iterations = 350;
  return get_or_train<pcss::models::RandLANetSeg>("randla_indoor", config, gen, seed, tc);
}

std::shared_ptr<pcss::models::RandLANetSeg> ModelZoo::randla_outdoor(int seed) {
  pcss::models::RandLANetConfig config;
  config.num_classes = pcss::data::kOutdoorNumClasses;
  OutdoorSceneGenerator gen(zoo_outdoor_config());
  TrainConfig tc;
  tc.iterations = 250;
  tc.scene_pool = 16;
  return get_or_train<pcss::models::RandLANetSeg>("randla_outdoor", config, gen, seed, tc);
}

std::vector<PointCloud> ModelZoo::indoor_eval_scenes(int count, std::uint64_t seed) const {
  IndoorSceneGenerator gen(zoo_indoor_config());
  Rng rng(seed);
  std::vector<PointCloud> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(gen.generate(rng));
  return out;
}

std::vector<PointCloud> ModelZoo::outdoor_eval_scenes(int count, std::uint64_t seed) const {
  OutdoorSceneGenerator gen(zoo_outdoor_config());
  Rng rng(seed);
  std::vector<PointCloud> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(gen.generate(rng));
  return out;
}

}  // namespace pcss::train
