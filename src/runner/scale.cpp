#include "pcss/runner/scale.h"

#include <cstdlib>

namespace pcss::runner {

bool fast_mode() {
  const char* env = std::getenv("PCSS_FAST");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

Scale scale_for(bool fast) {
  Scale s;
  if (fast) {
    s.scenes = 2;
    s.hiding_scenes = 1;
    s.pgd_steps = 10;
    s.cw_steps = 25;
  }
  return s;
}

Scale active_scale() { return scale_for(fast_mode()); }

}  // namespace pcss::runner
