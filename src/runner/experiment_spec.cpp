#include "pcss/runner/experiment_spec.h"

#include <cstdio>
#include <stdexcept>

#include "pcss/runner/hash.h"

namespace pcss::runner {

using pcss::core::AttackField;
using pcss::core::AttackNorm;
using pcss::core::AttackObjective;

const char* to_string(ModelId id) {
  switch (id) {
    case ModelId::kPointNet2Indoor: return "pointnet2_indoor";
    case ModelId::kResGCNIndoor: return "resgcn_indoor";
    case ModelId::kRandLAIndoor: return "randla_indoor";
    case ModelId::kRandLAOutdoor: return "randla_outdoor";
  }
  return "?";
}

const char* to_string(Dataset dataset) {
  return dataset == Dataset::kIndoor ? "indoor" : "outdoor";
}

const char* to_string(VariantKind kind) {
  switch (kind) {
    case VariantKind::kPerCloud: return "per_cloud";
    case VariantKind::kNoiseBaseline: return "noise_baseline";
    case VariantKind::kSharedDelta: return "shared_delta";
  }
  return "?";
}

const char* to_string(DefenseStageKind kind) {
  switch (kind) {
    case DefenseStageKind::kSrs: return "srs";
    case DefenseStageKind::kSor: return "sor";
    case DefenseStageKind::kVoxel: return "voxel";
    case DefenseStageKind::kQuantize: return "quantize";
    case DefenseStageKind::kKnnVote: return "knn_vote";
  }
  return "?";
}

const char* to_string(SpecKind kind) {
  switch (kind) {
    case SpecKind::kAttackTable: return "attack_table";
    case SpecKind::kDefenseGrid: return "defense_grid";
  }
  return "?";
}

std::shared_ptr<const pcss::core::DefenseStage> build_stage(const DefenseStageSpec& spec) {
  switch (spec.kind) {
    case DefenseStageKind::kSrs:
      return spec.srs_fraction >= 0.0f ? pcss::core::make_srs_fraction_stage(spec.srs_fraction)
                                       : pcss::core::make_srs_stage(spec.srs_remove);
    case DefenseStageKind::kSor:
      return pcss::core::make_sor_stage(spec.k, spec.stddev_mult, spec.color_weight);
    case DefenseStageKind::kVoxel:
      return pcss::core::make_voxel_stage(spec.voxel);
    case DefenseStageKind::kQuantize:
      return pcss::core::make_color_quantize_stage(spec.quantize_levels);
    case DefenseStageKind::kKnnVote:
      return pcss::core::make_knn_label_vote_stage(spec.k);
  }
  throw std::invalid_argument("build_stage: unknown defense stage kind");
}

pcss::core::DefensePipeline build_pipeline(const DefensePipelineSpec& spec) {
  pcss::core::DefensePipeline pipeline;
  for (const DefenseStageSpec& stage : spec.stages) pipeline.add(build_stage(stage));
  return pipeline;
}

AttackConfig scaled_config(const AttackVariant& variant, const Scale& scale) {
  AttackConfig config = variant.config;
  if (variant.apply_scale) {
    config.steps = scale.pgd_steps;
    config.cw_steps = scale.cw_steps;
    config.epsilon = scale.eps_color;
    config.coord_epsilon = scale.eps_coord;
  }
  return config;
}

namespace {

void append_kv(std::string& out, const char* key, const std::string& value) {
  out += key;
  out += '=';
  out += value;
  out += ';';
}

std::string num(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

void append_config(std::string& out, const AttackConfig& c) {
  append_kv(out, "objective", to_string(c.objective));
  append_kv(out, "norm", to_string(c.norm));
  append_kv(out, "field", to_string(c.field));
  append_kv(out, "steps", std::to_string(c.steps));
  append_kv(out, "cw_steps", std::to_string(c.cw_steps));
  append_kv(out, "epsilon", num(c.epsilon));
  append_kv(out, "coord_epsilon", num(c.coord_epsilon));
  append_kv(out, "step_size", num(c.step_size));
  append_kv(out, "lambda1", num(c.lambda1));
  append_kv(out, "lambda2", num(c.lambda2));
  append_kv(out, "adam_lr", num(c.adam_lr));
  append_kv(out, "smooth_alpha", std::to_string(c.smooth_alpha));
  append_kv(out, "target_class", std::to_string(c.target_class));
  append_kv(out, "mask_points", std::to_string(c.target_mask.size()));
  append_kv(out, "success_accuracy", num(c.success_accuracy));
  append_kv(out, "success_psr", num(c.success_psr));
  append_kv(out, "min_impact_fraction", num(c.min_impact_fraction));
  append_kv(out, "l0_on_color", c.l0_on_color ? "1" : "0");
  append_kv(out, "stall_patience", std::to_string(c.stall_patience));
  append_kv(out, "seed", std::to_string(c.seed));
}

/// The degradation specs share one shape: a clean baseline plus labelled
/// attack columns at the paper's success threshold.
AttackVariant degradation_variant(std::string label, AttackNorm norm, AttackField field,
                                  float success_accuracy) {
  AttackVariant v;
  v.label = std::move(label);
  v.config.norm = norm;
  v.config.field = field;
  v.config.success_accuracy = success_accuracy;
  return v;
}

AttackVariant noise_variant(std::string calibrate_from, std::uint64_t seed_base) {
  AttackVariant v;
  v.label = "random-noise";
  v.kind = VariantKind::kNoiseBaseline;
  v.calibrate_from = std::move(calibrate_from);
  v.noise_seed_base = seed_base;
  return v;
}

std::vector<ExperimentSpec> build_registry() {
  std::vector<ExperimentSpec> specs;
  const float indoor_floor = 1.0f / 13.0f;   // random-guess accuracy, S3DIS classes
  const float outdoor_floor = 1.0f / 8.0f;   // 8 outdoor classes

  {
    ExperimentSpec s;
    s.name = "table2";
    s.title = "Table II — attacked fields (color vs coordinate vs both), ResGCN, L0";
    s.models = {ModelId::kResGCNIndoor};
    s.use_l0_distance = true;
    const AttackField fields[] = {AttackField::kColor, AttackField::kCoordinate,
                                  AttackField::kBoth};
    const AttackNorm norms[] = {AttackNorm::kUnbounded, AttackNorm::kBounded};
    for (AttackField field : fields) {
      for (AttackNorm norm : norms) {
        s.variants.push_back(degradation_variant(
            std::string(pcss::core::to_string(field)) + " / " + pcss::core::to_string(norm),
            norm, field, indoor_floor));
      }
    }
    specs.push_back(std::move(s));
  }
  {
    ExperimentSpec s;
    s.name = "table3";
    s.title = "Table III — color degradation on PointNet++/ResGCN/RandLA-Net, L2";
    s.models = {ModelId::kPointNet2Indoor, ModelId::kResGCNIndoor, ModelId::kRandLAIndoor};
    // Computation order: the unbounded attack first, because the noise
    // baseline is calibrated to its per-cloud L2 (the paper compares
    // baseline and attack at matched distance).
    s.variants.push_back(degradation_variant("norm-unbounded", AttackNorm::kUnbounded,
                                             AttackField::kColor, indoor_floor));
    s.variants.push_back(noise_variant("norm-unbounded", 7000));
    s.variants.push_back(degradation_variant("norm-bounded", AttackNorm::kBounded,
                                             AttackField::kColor, indoor_floor));
    specs.push_back(std::move(s));
  }
  {
    ExperimentSpec s;
    s.name = "table6";
    s.title = "Table VI — outdoor color degradation, RandLA-Net, L2";
    s.dataset = Dataset::kOutdoor;
    s.models = {ModelId::kRandLAOutdoor};
    s.scene_seed = 6000;
    s.variants.push_back(degradation_variant("norm-unbounded", AttackNorm::kUnbounded,
                                             AttackField::kColor, outdoor_floor));
    s.variants.push_back(noise_variant("norm-unbounded", 8000));
    specs.push_back(std::move(s));
  }
  {
    ExperimentSpec s;
    s.name = "ext_universal";
    s.title = "Extension (§VI-L4) — universal multi-cloud color perturbation, ResGCN";
    s.models = {ModelId::kResGCNIndoor};
    s.scene_seed = 9700;
    AttackVariant universal;
    universal.label = "universal";
    universal.kind = VariantKind::kSharedDelta;
    universal.config.norm = AttackNorm::kBounded;
    universal.config.field = AttackField::kColor;
    s.variants.push_back(std::move(universal));
    AttackVariant per_scene;
    per_scene.label = "per-scene";
    per_scene.config.norm = AttackNorm::kBounded;
    per_scene.config.field = AttackField::kColor;
    s.variants.push_back(std::move(per_scene));
    specs.push_back(std::move(s));
  }
  {
    // Table VIII as a defense grid: both attack regimes on ResGCN, the
    // paper's SRS (~1% removed) and revised SOR (k=2, color-aware)
    // defenses, victim == source.
    ExperimentSpec s;
    s.name = "table8";
    s.title = "Table VIII — SRS / SOR defenses vs both attacks, ResGCN";
    s.kind = SpecKind::kDefenseGrid;
    s.models = {ModelId::kResGCNIndoor};
    s.victims = {ModelId::kResGCNIndoor};
    s.variants.push_back(degradation_variant("norm-bounded", AttackNorm::kBounded,
                                             AttackField::kColor, indoor_floor));
    s.variants.push_back(degradation_variant("norm-unbounded", AttackNorm::kUnbounded,
                                             AttackField::kColor, indoor_floor));
    s.defenses.push_back({"none", {}});
    s.defenses.push_back({"srs", {{.kind = DefenseStageKind::kSrs, .srs_fraction = 0.01f}}});
    s.defenses.push_back(
        {"sor", {{.kind = DefenseStageKind::kSor, .k = 2, .stddev_mult = 1.0f,
                  .color_weight = 1.0f}}});
    specs.push_back(std::move(s));
  }
  {
    // The full robustness matrix: attacks through chained and smoothing
    // defenses, scored on the source model and on a cross-family
    // transfer victim (subsumes the Table IX transfer block: the "none"
    // defense column on the pointnet2 victim).
    ExperimentSpec s;
    s.name = "defense_grid";
    s.title = "Defense grid — attack x defense x victim robustness matrix, ResGCN source";
    s.kind = SpecKind::kDefenseGrid;
    s.models = {ModelId::kResGCNIndoor};
    s.victims = {ModelId::kResGCNIndoor, ModelId::kPointNet2Indoor};
    s.scene_seed = 5100;
    s.variants.push_back(degradation_variant("norm-bounded", AttackNorm::kBounded,
                                             AttackField::kColor, indoor_floor));
    s.variants.push_back(degradation_variant("norm-unbounded", AttackNorm::kUnbounded,
                                             AttackField::kColor, indoor_floor));
    s.defenses.push_back({"none", {}});
    s.defenses.push_back({"srs", {{.kind = DefenseStageKind::kSrs, .srs_fraction = 0.01f}}});
    s.defenses.push_back(
        {"sor", {{.kind = DefenseStageKind::kSor, .k = 2, .stddev_mult = 1.0f,
                  .color_weight = 1.0f}}});
    s.defenses.push_back({"srs+sor",
                          {{.kind = DefenseStageKind::kSrs, .srs_fraction = 0.01f},
                           {.kind = DefenseStageKind::kSor, .k = 2, .stddev_mult = 1.0f,
                            .color_weight = 1.0f}}});
    s.defenses.push_back(
        {"quantize8+vote",
         {{.kind = DefenseStageKind::kQuantize, .quantize_levels = 8},
          {.kind = DefenseStageKind::kKnnVote, .k = 5}}});
    specs.push_back(std::move(s));
  }
  return specs;
}

}  // namespace

const std::vector<ExperimentSpec>& spec_registry() {
  static const std::vector<ExperimentSpec> registry = build_registry();
  return registry;
}

const ExperimentSpec* find_spec(const std::string& name) {
  for (const ExperimentSpec& spec : spec_registry()) {
    if (spec.name == name) return &spec;
  }
  return nullptr;
}

std::string canonical_description(const ExperimentSpec& spec, const Scale& scale,
                                  ModelProvider& provider) {
  std::string out;
  append_kv(out, "spec", spec.name);
  // Numerics revision. "lane8" marks the fixed 8-lane reduction order
  // introduced with the SIMD dispatch layer: sums, row sums and softmax
  // denominators reassociated, so documents produced before it are no
  // longer byte-reproducible and their cache entries must miss. Bump
  // this tag whenever kernel accumulation order changes again. (The
  // dispatch path itself — scalar vs avx2 — is deliberately NOT part of
  // the key: both paths produce identical bytes, so a store warmed under
  // one ISA stays a 100% hit under the other.)
  append_kv(out, "numerics", "lane8");
  // The kind tag is appended only for non-default kinds so that every
  // attack-table key (and its warm shard cache) from before the grid
  // kind existed stays valid byte-for-byte.
  if (spec.kind != SpecKind::kAttackTable) append_kv(out, "kind", to_string(spec.kind));
  append_kv(out, "dataset", to_string(spec.dataset));
  append_kv(out, "scene_seed", std::to_string(spec.scene_seed));
  append_kv(out, "scenes", std::to_string(scale.scenes));
  append_kv(out, "pgd_steps", std::to_string(scale.pgd_steps));
  append_kv(out, "cw_steps", std::to_string(scale.cw_steps));
  append_kv(out, "eps_color", num(scale.eps_color));
  append_kv(out, "eps_coord", num(scale.eps_coord));
  append_kv(out, "l0_distance", spec.use_l0_distance ? "1" : "0");
  for (ModelId id : spec.models) {
    out += "model{";
    append_kv(out, "id", to_string(id));
    append_kv(out, "weights", provider.model_fingerprint(id));
    out += "}";
  }
  for (const AttackVariant& variant : spec.variants) {
    out += "variant{";
    append_kv(out, "label", variant.label);
    append_kv(out, "kind", to_string(variant.kind));
    if (variant.kind == VariantKind::kNoiseBaseline) {
      append_kv(out, "calibrate_from", variant.calibrate_from);
      append_kv(out, "noise_seed_base", std::to_string(variant.noise_seed_base));
    }
    // Every kind hashes its scaled config: even the noise baseline
    // consults it (distance selection branches on config.field), so it
    // must be part of the key for cached rows to stay valid.
    append_config(out, scaled_config(variant, scale));
    out += "}";
  }
  if (spec.kind == SpecKind::kDefenseGrid) {
    append_kv(out, "defense_seed", std::to_string(spec.defense_seed));
    append_kv(out, "include_clean", spec.grid_include_clean ? "1" : "0");
    for (const DefensePipelineSpec& defense : spec.defenses) {
      out += "defense{";
      append_kv(out, "label", defense.label);
      // The built pipeline's describe() string is the one hashed into
      // defense RNG streams, so hashing it here keeps the cache key and
      // the draws in lockstep with every stage parameter.
      append_kv(out, "stages", build_pipeline(defense).describe());
      out += "}";
    }
    for (ModelId id : spec.victims) {
      out += "victim{";
      append_kv(out, "id", to_string(id));
      append_kv(out, "weights", provider.model_fingerprint(id));
      out += "}";
    }
  }
  return out;
}

std::string run_key(const ExperimentSpec& spec, const Scale& scale,
                    ModelProvider& provider) {
  Fnv64 hash;
  hash.update(canonical_description(spec, scale, provider));
  return spec.name + "-" + hash.hex();
}

}  // namespace pcss::runner
