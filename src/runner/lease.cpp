#include "pcss/runner/lease.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <utility>

#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/hash.h"
#include "pcss/runner/json.h"

namespace pcss::runner {

namespace fs = std::filesystem;
namespace obs = pcss::obs;

namespace {

/// Transient errors worth a bounded retry; everything else is reported
/// to the caller as "busy" (leases are advisory, so giving up on one is
/// always safe — the shard just gets computed by someone else or by the
/// final merge pass).
bool transient_errno(int e) { return e == EINTR || e == EAGAIN; }
constexpr int kIoAttempts = 5;

std::string serialize(const LeaseInfo& info) {
  Json j = Json::object();
  j.set("owner", info.owner);
  j.set("pid", static_cast<double>(info.pid));
  // As a string: monotonic ns can exceed a JSON double's 2^53 mantissa
  // on long-lived hosts, and a truncated heartbeat would corrupt
  // staleness math.
  j.set("heartbeat_ns", std::to_string(info.heartbeat_ns));
  j.set("generation", static_cast<double>(info.generation));
  return j.dump() + "\n";
}

std::optional<LeaseInfo> parse_lease(const std::string& text) {
  try {
    const Json j = Json::parse(text);
    LeaseInfo info;
    info.owner = j.at("owner").str();
    info.pid = static_cast<long long>(j.at("pid").number());
    info.heartbeat_ns = std::stoll(j.at("heartbeat_ns").str());
    info.generation = static_cast<std::int64_t>(j.at("generation").number());
    return info;
  } catch (const std::exception&) {
    return std::nullopt;  // torn or foreign bytes: the caller treats it as stale
  }
}

/// Whole-file read via POSIX so EINTR is retried explicitly; nullopt on
/// any persistent failure (absent, unreadable).
std::optional<std::string> read_file(const std::string& path) {
  int fd = -1;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0 || !transient_errno(errno)) break;
  }
  if (fd < 0) return std::nullopt;
  std::string content;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      content.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (transient_errno(errno)) continue;
    ::close(fd);
    return std::nullopt;
  }
  ::close(fd);
  return content;
}

/// Writes `content` to `path` via an owner-suffixed temporary plus
/// rename (atomic within the directory). Returns false on persistent
/// failure; never throws — lease writes are advisory.
bool write_file_atomic(const std::string& path, const std::string& owner,
                       const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          Fnv64().update(owner).hex();
  int fd = -1;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0 || !transient_errno(errno)) break;
  }
  if (fd < 0) return false;
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n >= 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (transient_errno(errno)) continue;
    ::close(fd);
    ::unlink(tmp.c_str());
    return false;
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return false;
  }
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    if (::rename(tmp.c_str(), path.c_str()) == 0) return true;
    if (!transient_errno(errno)) break;
  }
  ::unlink(tmp.c_str());
  return false;
}

/// Same-host liveness probe: true only when the pid conclusively does
/// not exist. EPERM (someone else's live process) and pid reuse both
/// read as "alive", which merely defers the steal to the TTL backstop.
bool pid_is_gone(long long pid) {
  if (pid <= 0) return false;
  return ::kill(static_cast<pid_t>(pid), 0) == -1 && errno == ESRCH;
}

}  // namespace

LeaseManager::LeaseManager(std::string dir, std::string owner, std::int64_t ttl_ns)
    : dir_(std::move(dir)), owner_(std::move(owner)), ttl_ns_(ttl_ns) {
  if (ttl_ns_ <= 0) throw std::invalid_argument("LeaseManager: ttl must be positive");
}

bool LeaseManager::stale(const LeaseInfo& info) const {
  const std::int64_t age = obs::trace::now_ns() - info.heartbeat_ns;
  obs::metrics::gauge("runner.lease.heartbeat_age_ms")
      .set(static_cast<double>(age > 0 ? age : 0) / 1e6);
  if (pid_is_gone(info.pid)) return true;
  return age > ttl_ns_;
}

bool LeaseManager::write_lease(const std::string& name, std::int64_t generation) {
  LeaseInfo info;
  info.owner = owner_;
  info.pid = static_cast<long long>(::getpid());
  info.heartbeat_ns = obs::trace::now_ns();
  info.generation = generation;
  return write_file_atomic(dir_ + "/" + name, owner_, serialize(info));
}

LeaseManager::Acquire LeaseManager::try_acquire(const std::string& name) {
  const std::string path = dir_ + "/" + name;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
    if (fd >= 0) {
      // Won the O_EXCL race: the file exists and is ours. The record is
      // written through the fd directly (not tmp+rename, which would
      // surrender the exclusivity we just won); a reader that sees the
      // partial write treats it as torn = stale, which is correct — a
      // claimant that dies right here *is* stale.
      const LeaseInfo info{owner_, static_cast<long long>(::getpid()),
                           obs::trace::now_ns(), 1};
      const std::string record = serialize(info);
      std::size_t written = 0;
      while (written < record.size()) {
        const ssize_t n = ::write(fd, record.data() + written, record.size() - written);
        if (n >= 0) {
          written += static_cast<std::size_t>(n);
          continue;
        }
        if (!transient_errno(errno)) break;
      }
      ::close(fd);
      obs::metrics::counter("runner.leases.acquired").add(1);
      return Acquire::kAcquired;
    }
    if (errno == EEXIST) break;
    if (errno == ENOENT) {
      std::error_code ec;
      fs::create_directories(dir_, ec);
      continue;
    }
    if (!transient_errno(errno)) return Acquire::kBusy;
  }

  const std::optional<LeaseInfo> holder = peek(name);
  if (holder && !stale(*holder)) return Acquire::kBusy;
  // Stale (or unreadable = torn claim): take over, then read back to
  // learn who actually won a concurrent steal. Both losers and winners
  // renamed complete records into place, so the read-back is decisive.
  const std::int64_t generation = holder ? holder->generation + 1 : 1;
  if (!write_lease(name, generation)) return Acquire::kBusy;
  const std::optional<LeaseInfo> now_holds = peek(name);
  if (!now_holds || now_holds->owner != owner_) return Acquire::kBusy;
  obs::metrics::counter("runner.leases.reclaimed").add(1);
  return Acquire::kStolen;
}

bool LeaseManager::renew(const std::string& name) {
  const std::optional<LeaseInfo> holder = peek(name);
  if (!holder || holder->owner != owner_) return false;
  if (!write_lease(name, holder->generation + 1)) return false;
  const std::optional<LeaseInfo> now_holds = peek(name);
  return now_holds && now_holds->owner == owner_;
}

bool LeaseManager::release(const std::string& name) {
  const std::optional<LeaseInfo> holder = peek(name);
  if (!holder || holder->owner != owner_) return false;
  // A steal landing between the peek and the unlink would remove the
  // thief's lease instead of ours — the window is microseconds and the
  // cost is one duplicated (byte-identical) shard, so no lock is worth
  // closing it.
  const std::string path = dir_ + "/" + name;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    if (::unlink(path.c_str()) == 0) return true;
    if (!transient_errno(errno)) return false;
  }
  return false;
}

std::optional<LeaseInfo> LeaseManager::peek(const std::string& name) const {
  const std::optional<std::string> content = read_file(dir_ + "/" + name);
  if (!content) return std::nullopt;
  return parse_lease(*content);
}

int LeaseManager::sweep() {
  int removed = 0;
  std::error_code ec;
  fs::directory_iterator it(dir_, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string path = it->path().string();
    const std::optional<std::string> content = read_file(path);
    if (content) {
      const std::optional<LeaseInfo> info = parse_lease(*content);
      if (info && !stale(*info)) continue;  // live holder: keep
    }
    if (::unlink(path.c_str()) == 0) ++removed;
  }
  return removed;
}

ChaosMonkey::ChaosMonkey(double kill_prob, std::uint64_t seed, const std::string& salt)
    : kill_prob_(kill_prob), state_(seed ^ Fnv64().update(salt).value()) {}

ChaosMonkey ChaosMonkey::from_env(const std::string& salt) {
  const char* env = std::getenv("PCSS_CHAOS");
  if (env == nullptr || *env == '\0') return ChaosMonkey();
  const std::string value(env);
  const std::size_t colon = value.find(':');
  char* prob_end = nullptr;
  const double prob = std::strtod(value.c_str(), &prob_end);
  char* seed_end = nullptr;
  const unsigned long long seed =
      colon == std::string::npos
          ? 0
          : std::strtoull(value.c_str() + colon + 1, &seed_end, 10);
  const bool well_formed = colon != std::string::npos &&
                           prob_end == value.c_str() + colon && seed_end != nullptr &&
                           seed_end != value.c_str() + colon + 1 &&  // "0.5:" has no seed
                           *seed_end == '\0' && prob >= 0.0 && prob <= 1.0;
  if (!well_formed) {
    std::fprintf(stderr,
                 "pcss: ignoring malformed PCSS_CHAOS='%s' (want kill_prob:seed, e.g. "
                 "0.2:1234)\n",
                 env);
    return ChaosMonkey();
  }
  return ChaosMonkey(prob, static_cast<std::uint64_t>(seed), salt);
}

bool ChaosMonkey::would_kill() {
  if (kill_prob_ <= 0.0) return false;
  // splitmix64: tiny, seedable, and good enough for a coin flip. Not
  // tensor::Rng because the decision stream must never share state with
  // anything that touches result bytes.
  state_ += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return static_cast<double>(z >> 11) * 0x1.0p-53 < kill_prob_;
}

void ChaosMonkey::maybe_kill() {
  if (!would_kill()) return;
  std::fprintf(stderr, "[chaos] injected SIGKILL (pid %lld)\n",
               static_cast<long long>(::getpid()));
  std::fflush(stderr);
  ::raise(SIGKILL);
}

}  // namespace pcss::runner
