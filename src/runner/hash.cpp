#include "pcss/runner/hash.h"

#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "pcss/core/defense_stage.h"

namespace pcss::runner {

Fnv64& Fnv64::update(const void* data, std::size_t size) {
  // One FNV-1a implementation for the whole stack: defense RNG streams
  // (core::fnv64_bytes) and result-store keys must hash identically, so
  // the incremental form chains through the same function.
  hash_ = pcss::core::fnv64_bytes(data, size, hash_);
  return *this;
}

std::string Fnv64::hex() const {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(hash_));
  return buf;
}

std::string hash_file_hex(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("hash_file_hex: cannot open " + path);
  Fnv64 hash;
  char buf[1 << 16];
  while (in) {
    in.read(buf, sizeof(buf));
    hash.update(buf, static_cast<std::size_t>(in.gcount()));
  }
  if (in.bad()) throw std::runtime_error("hash_file_hex: read error on " + path);
  return hash.hex();
}

}  // namespace pcss::runner
