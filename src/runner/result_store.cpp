#include "pcss/runner/result_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <stdexcept>

namespace pcss::runner {

namespace fs = std::filesystem;

namespace {

/// Transient failures worth a bounded retry (signal-interrupted or
/// momentarily unavailable); anything else is reported immediately with
/// the path and errno so a failing store names its disease instead of
/// throwing an opaque filesystem_error.
bool transient_errno(int e) { return e == EINTR || e == EAGAIN; }
constexpr int kIoAttempts = 5;

void backoff_sleep(int attempt) {
  // 1, 2, 4, 8 ms: long enough for a signal storm or a racing rename to
  // pass, short enough to be invisible next to a shard's compute time.
  timespec ts{0, (1L << attempt) * 1000000L};
  while (::nanosleep(&ts, &ts) == -1 && errno == EINTR) {
  }
}

std::string errno_text(int e) {
  return std::string(std::strerror(e)) + " (errno " + std::to_string(e) + ")";
}

[[noreturn]] void fail(const std::string& op, const std::string& path, int e) {
  throw std::runtime_error("ResultStore::" + op + ": " + path + ": " + errno_text(e));
}

}  // namespace

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {}

std::string ResultStore::default_root() {
  if (const char* env = std::getenv("PCSS_ARTIFACTS")) {
    return std::string(env) + "/results";
  }
  return "artifacts/results";
}

std::string ResultStore::path_for(const std::string& key) const {
  return root_ + "/" + key;
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  const std::string path = path_for(key);
  int fd = -1;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd >= 0 || !transient_errno(errno)) break;
    backoff_sleep(attempt);
  }
  if (fd < 0) {
    // Including persistent errors: an unreadable key is a miss (the
    // caller recomputes under the same key), never a crash.
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string content;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n > 0) {
      content.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) break;
    if (transient_errno(errno)) continue;
    ::close(fd);
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  ::close(fd);
  hits_.fetch_add(1, std::memory_order_relaxed);
  return content;
}

void ResultStore::put(const std::string& key, const std::string& content) {
  const fs::path path = path_for(key);
  if (path.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(path.parent_path(), ec);
    if (ec) {
      throw std::runtime_error("ResultStore::put: cannot create " +
                               path.parent_path().string() + ": " + ec.message());
    }
  }
  // Write-then-rename: rename(2) within one directory is atomic, so a
  // crash mid-put leaves at worst a stale .tmp sibling (collected by
  // sweep_stale_tmps), never a torn key.
  const std::string tmp = path.string() + ".tmp." + std::to_string(::getpid());
  int fd = -1;
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd >= 0 || !transient_errno(errno)) break;
    backoff_sleep(attempt);
  }
  if (fd < 0) fail("put", tmp, errno);
  std::size_t written = 0;
  while (written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written, content.size() - written);
    if (n >= 0) {
      written += static_cast<std::size_t>(n);
      continue;
    }
    if (transient_errno(errno)) continue;
    const int e = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    fail("put", tmp, e);
  }
  if (::close(fd) != 0) {
    const int e = errno;
    ::unlink(tmp.c_str());
    fail("put", tmp, e);
  }
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    if (::rename(tmp.c_str(), path.c_str()) == 0) return;
    if (errno == EXDEV) {
      // Cross-device rename: cannot happen for siblings in one
      // directory, but some overlay/network filesystems report it anyway.
      // Fall back to a copy — non-atomic, so only on this exotic path.
      std::error_code ec;
      fs::copy_file(tmp, path, fs::copy_options::overwrite_existing, ec);
      ::unlink(tmp.c_str());
      if (ec) {
        throw std::runtime_error("ResultStore::put: EXDEV copy fallback for " +
                                 path.string() + ": " + ec.message());
      }
      return;
    }
    if (!transient_errno(errno)) break;
    backoff_sleep(attempt);
  }
  const int e = errno;
  ::unlink(tmp.c_str());
  fail("put", path.string() + " (renaming " + tmp + ")", e);
}

bool ResultStore::erase(const std::string& key) {
  std::error_code ec;
  return fs::remove(path_for(key), ec);
}

bool ResultStore::contains(const std::string& key) const {
  struct ::stat st {};
  return ::stat(path_for(key).c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

std::vector<std::string> ResultStore::list(const std::string& prefix) const {
  std::vector<std::string> keys;
  const fs::path root(root_);
  // A concurrent rename can surface a transient error mid-scan (the
  // entry vanished between readdir and stat); rescan a few times before
  // settling for what we saw.
  for (int attempt = 0; attempt < kIoAttempts; ++attempt) {
    keys.clear();
    std::error_code ec;
    fs::recursive_directory_iterator it(root, ec), end;
    if (ec) break;  // no store directory yet: an empty listing, not an error
    for (; !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file()) continue;
      const std::string name = it->path().filename().string();
      if (name.compare(0, prefix.size(), prefix) != 0) continue;
      // A .tmp.<pid> sibling is an interrupted put(), not a stored result.
      if (name.find(".tmp.") != std::string::npos) continue;
      keys.push_back(fs::relative(it->path(), root).generic_string());
    }
    if (!ec) break;
    backoff_sleep(attempt);
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<std::string> ResultStore::sweep_stale_tmps(long long min_age_seconds) {
  std::vector<std::string> removed;
  const fs::path root(root_);
  std::error_code ec;
  fs::recursive_directory_iterator it(root, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.find(".tmp.") == std::string::npos) continue;
    struct ::stat st {};
    if (::stat(it->path().c_str(), &st) != 0) continue;  // already gone
    // time()/st_mtime only gate deletion of garbage — wall-clock can
    // never reach result bytes, so the D002 determinism budget is safe.
    const long long age = static_cast<long long>(::time(nullptr)) -
                          static_cast<long long>(st.st_mtime);
    if (age < min_age_seconds) continue;  // possibly an in-flight put
    std::error_code remove_ec;
    if (fs::remove(it->path(), remove_ec)) {
      removed.push_back(fs::relative(it->path(), root).generic_string());
    }
  }
  std::sort(removed.begin(), removed.end());
  return removed;
}

}  // namespace pcss::runner
