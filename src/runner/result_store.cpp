#include "pcss/runner/result_store.h"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace pcss::runner {

namespace fs = std::filesystem;

ResultStore::ResultStore(std::string root) : root_(std::move(root)) {}

std::string ResultStore::default_root() {
  if (const char* env = std::getenv("PCSS_ARTIFACTS")) {
    return std::string(env) + "/results";
  }
  return "artifacts/results";
}

std::string ResultStore::path_for(const std::string& key) const {
  return root_ + "/" + key;
}

std::optional<std::string> ResultStore::get(const std::string& key) {
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  std::string content{std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  if (in.bad()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return std::nullopt;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  return content;
}

void ResultStore::put(const std::string& key, const std::string& content) {
  const fs::path path = path_for(key);
  if (path.has_parent_path()) fs::create_directories(path.parent_path());
  // Write-then-rename: rename(2) within one directory is atomic, so a
  // crash mid-put leaves at worst a stale .tmp sibling, never a torn key.
  const fs::path tmp = path.string() + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("ResultStore::put: cannot open " + tmp.string());
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out) throw std::runtime_error("ResultStore::put: write failure for " + tmp.string());
  }
  fs::rename(tmp, path);
}

bool ResultStore::erase(const std::string& key) {
  std::error_code ec;
  return fs::remove(path_for(key), ec);
}

std::vector<std::string> ResultStore::list(const std::string& prefix) const {
  std::vector<std::string> keys;
  std::error_code ec;
  const fs::path root(root_);
  fs::recursive_directory_iterator it(root, ec), end;
  for (; !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file()) continue;
    const std::string name = it->path().filename().string();
    if (name.compare(0, prefix.size(), prefix) != 0) continue;
    // A .tmp.<pid> sibling is an interrupted put(), not a stored result.
    if (name.find(".tmp.") != std::string::npos) continue;
    keys.push_back(fs::relative(it->path(), root).generic_string());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace pcss::runner
