#include "pcss/runner/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace pcss::runner {

namespace {

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw std::runtime_error(std::string("Json: expected ") + want + ", have type #" +
                           std::to_string(static_cast<int>(got)));
}

/// Shortest decimal string that parses back to exactly `value`. This is
/// what makes dump() deterministic *and* lossless: "0.1" instead of
/// "0.10000000000000001", but 17 digits whenever they are needed.
std::string format_number(double value) {
  if (!std::isfinite(value)) {
    throw std::runtime_error("Json: non-finite numbers are not representable");
  }
  char buf[32];
  if (std::fabs(value) < 1e15 &&
      value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    return buf;
  }
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

void escape_string(const std::string& s, std::string& out) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("Json::parse: " + what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const char* literal) {
    std::size_t n = 0;
    while (literal[n] != '\0') ++n;
    if (text_.compare(pos_, n, literal) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    if (peek() == '}') { ++pos_; return obj; }
    while (true) {
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      expect(':');
      if (obj.find(key) != nullptr) fail("duplicate object key '" + key + "'");
      obj.set(key, parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return obj;
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    if (peek() == ']') { ++pos_; return arr; }
    while (true) {
      arr.push(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return arr;
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') { out.push_back(c); continue; }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
            else fail("invalid \\u escape");
          }
          if (code > 0x7f) fail("non-ASCII \\u escape not supported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default: fail("invalid escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' ||
          c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("invalid number '" + token + "'");
    return Json(value);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::boolean() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return number_;
}

const std::string& Json::str() const {
  if (type_ != Type::kString) type_error("string", type_);
  return string_;
}

Json& Json::push(Json value) {
  if (type_ != Type::kArray) type_error("array", type_);
  array_.push_back(std::move(value));
  return array_.back();
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return array_.size();
  if (type_ == Type::kObject) return object_.size();
  type_error("array or object", type_);
}

const Json& Json::operator[](std::size_t index) const {
  if (type_ != Type::kArray) type_error("array", type_);
  if (index >= array_.size()) throw std::runtime_error("Json: array index out of range");
  return array_[index];
}

const std::vector<Json>& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return array_;
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (auto& [k, v] : object_) {
    if (k == key) {
      v = std::move(value);
      return v;
    }
  }
  object_.emplace_back(key, std::move(value));
  return object_.back().second;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* found = find(key);
  if (found == nullptr) throw std::runtime_error("Json: missing key '" + key + "'");
  return *found;
}

const std::vector<std::pair<std::string, Json>>& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return object_;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return number_ == other.number_;
    case Type::kString: return string_ == other.string_;
    case Type::kArray: return array_ == other.array_;
    case Type::kObject: return object_ == other.object_;
  }
  return false;
}

void Json::dump_to(std::string& out, int depth) const {
  const auto indent = [&out](int levels) { out.append(static_cast<std::size_t>(levels) * 2, ' '); };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString: escape_string(string_, out); break;
    case Type::kArray: {
      if (array_.empty()) { out += "[]"; break; }
      out += "[\n";
      for (std::size_t i = 0; i < array_.size(); ++i) {
        indent(depth + 1);
        array_[i].dump_to(out, depth + 1);
        if (i + 1 < array_.size()) out += ",";
        out += "\n";
      }
      indent(depth);
      out += "]";
      break;
    }
    case Type::kObject: {
      if (object_.empty()) { out += "{}"; break; }
      out += "{\n";
      for (std::size_t i = 0; i < object_.size(); ++i) {
        indent(depth + 1);
        escape_string(object_[i].first, out);
        out += ": ";
        object_[i].second.dump_to(out, depth + 1);
        if (i + 1 < object_.size()) out += ",";
        out += "\n";
      }
      indent(depth);
      out += "}";
      break;
    }
  }
}

std::string Json::dump() const {
  std::string out;
  dump_to(out, 0);
  return out;
}

void Json::dump_compact_to(std::string& out) const {
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: out += format_number(number_); break;
    case Type::kString: escape_string(string_, out); break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) out.push_back(',');
        array_[i].dump_compact_to(out);
      }
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < object_.size(); ++i) {
        if (i > 0) out.push_back(',');
        escape_string(object_[i].first, out);
        out.push_back(':');
        object_[i].second.dump_compact_to(out);
      }
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump_compact() const {
  std::string out;
  dump_compact_to(out);
  return out;
}

Json Json::parse(const std::string& text) { return Parser(text).parse_document(); }

}  // namespace pcss::runner
