#pragma once

#include <chrono>
#include <cstdio>

namespace pcss::runner {

/// Wall-clock feeds the .perf.json sidecar and "[perf]" log lines only —
/// never a cached result document — so the D002 clock ban does not apply.
struct WallTimer {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();  // pcss-lint: allow(D002)
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // pcss-lint: allow(D002)
  }
};

/// The one "[perf]" line format. CI greps these lines across PRs to
/// track attack throughput, so benches and the pcss_run CLI must emit
/// the exact same shape — hence one definition.
inline void print_perf(const char* label, double wall_seconds, long long attack_steps) {
  std::printf("  [perf] %-32s %8.2fs wall  %7lld steps  %8.1f steps/s\n", label,
              wall_seconds, attack_steps,
              wall_seconds > 0.0 ? static_cast<double>(attack_steps) / wall_seconds : 0.0);
}

}  // namespace pcss::runner
