#pragma once

#include <chrono>
#include <cstdio>
#include <string>

namespace pcss::runner {

/// Wall-clock feeds the .perf.json sidecar and "[perf]" log lines only —
/// never a cached result document — so the D002 clock ban does not apply.
struct WallTimer {
  std::chrono::steady_clock::time_point start = std::chrono::steady_clock::now();  // pcss-lint: allow(D002)
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();  // pcss-lint: allow(D002)
  }
};

/// The one "[perf]" line format, as a string. CI greps these lines
/// across PRs to track attack throughput, so benches and the pcss_run
/// CLI must emit the exact same shape — hence one definition. Labels
/// longer than the 32-char column are truncated to 29 chars + "..." so
/// the columns to the right never shift (defended-model labels like
/// "resgcn+defended[sor(k=8)|srs(p=0.9)]" used to push them around).
inline std::string perf_line(const char* label, double wall_seconds,
                             long long attack_steps) {
  std::string shown(label);
  if (shown.size() > 32) shown = shown.substr(0, 29) + "...";
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "  [perf] %-32s %8.2fs wall  %7lld steps  %8.1f steps/s\n",
                shown.c_str(), wall_seconds, attack_steps,
                wall_seconds > 0.0 ? static_cast<double>(attack_steps) / wall_seconds
                                   : 0.0);
  return std::string(buf);
}

inline void print_perf(const char* label, double wall_seconds, long long attack_steps) {
  std::fputs(perf_line(label, wall_seconds, attack_steps).c_str(), stdout);
}

}  // namespace pcss::runner
