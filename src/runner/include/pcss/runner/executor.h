#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "pcss/core/experiment.h"
#include "pcss/runner/experiment_spec.h"
#include "pcss/runner/json.h"
#include "pcss/runner/result_store.h"
#include "pcss/runner/scale.h"

namespace pcss::runner {

/// Progress of one run_spec invocation, reported after every finished
/// shard. Pure telemetry: the callback sees wall-clock numbers but can
/// never influence the result document (RunOptions documents why).
struct ShardProgress {
  int shards_done = 0;
  int shards_total = 0;        ///< planned shards for the whole run
  int shards_from_cache = 0;   ///< of shards_done, how many replayed
  long long attack_steps = 0;  ///< optimization steps executed live so far
  double wall_seconds = 0.0;   ///< elapsed since run_spec started
  double eta_seconds = 0.0;    ///< remaining x mean live-shard wall; 0 until
                               ///< the first live shard finishes
};

/// Knobs for one run_spec invocation. None of them may change the
/// numbers: `scale` is part of the cache key, and thread count / shard
/// size only repartition work whose per-cloud RNG stream stays
/// `config.seed + global cloud index` (so any partitioning reproduces
/// bit-identical documents — tested in tests/runner_test.cpp).
/// `on_progress` is observation only — it runs on the executor thread
/// between shards and receives copies of telemetry counters, so no
/// callback can perturb document bytes (tested: tracing/progress on vs.
/// off yields byte-identical documents).
struct RunOptions {
  Scale scale = active_scale();
  bool fast = fast_mode();  ///< informational; recorded in the .perf.json sidecar
  bool force = false;       ///< recompute, ignoring document and shard caches
  int num_threads = 0;      ///< AttackEngine workers per shard; 0 = hardware
  int shard_size = 4;       ///< clouds per cached shard (min 1)

  /// Compiled-plan capture/replay inside the attack loop (plan.h).
  /// Replays are byte-identical to eager steps, so this is pure execution
  /// policy like num_threads: it never enters cache keys and toggling it
  /// yields the same document bytes (tested in tests/plan_test.cpp).
  bool plan = true;

  std::function<void(const ShardProgress&)> on_progress;  ///< may be empty

  /// Graceful-cancel poll, checked at shard boundaries only (mid-shard
  /// state never hits the store, so cancelling between shards is always
  /// resumable). When it returns true, run_spec throws RunCancelled and
  /// run_spec_worker stops claiming and returns with `cancelled` set.
  /// Like on_progress, it can observe but never perturb document bytes.
  std::function<bool()> cancel;  ///< may be empty (= never cancel)
};

/// Fluent one-stop construction of RunOptions, shared by every entry
/// point (pcss_run, pcss_serve, the worker fixture, tests) so the
/// fast-flag/scale pairing cannot drift between them: fast(bool) sets
/// BOTH the informational flag and the matching Scale in one call, which
/// is the invariant the hand-rolled call sites kept re-implementing.
class RunOptionsBuilder {
 public:
  /// fast(f) in one call: the flag and its scale_for(f) sizing.
  RunOptionsBuilder& fast(bool f) {
    options_.fast = f;
    options_.scale = scale_for(f);
    return *this;
  }
  /// Explicit sizing override (tiny test scales); keeps `fast` as-is.
  RunOptionsBuilder& scale(const Scale& s) {
    options_.scale = s;
    return *this;
  }
  RunOptionsBuilder& force(bool f = true) {
    options_.force = f;
    return *this;
  }
  RunOptionsBuilder& threads(int n) {
    options_.num_threads = n;
    return *this;
  }
  RunOptionsBuilder& shard_size(int n) {
    options_.shard_size = n;
    return *this;
  }
  RunOptionsBuilder& plan(bool enabled) {
    options_.plan = enabled;
    return *this;
  }
  RunOptionsBuilder& on_progress(std::function<void(const ShardProgress&)> fn) {
    options_.on_progress = std::move(fn);
    return *this;
  }
  RunOptionsBuilder& cancel(std::function<bool()> fn) {
    options_.cancel = std::move(fn);
    return *this;
  }

  RunOptions build() const { return options_; }

 private:
  RunOptions options_;
};

/// Thrown by run_spec when RunOptions::cancel fires: every finished
/// shard is already cached, so rerunning the same command resumes where
/// the cancelled run stopped.
class RunCancelled : public std::runtime_error {
 public:
  explicit RunCancelled(const std::string& spec)
      : std::runtime_error("run of spec '" + spec +
                           "' cancelled at a shard boundary; finished shards are "
                           "cached — resumable: rerun to continue") {}
};

/// One cloud's numbers inside a variant.
struct CaseRow {
  pcss::core::CaseRecord record;  ///< distance (per spec metric), accuracy, aIoU
  double l2_color = 0.0;          ///< always kept: calibrates noise baselines
  long long steps = 0;
};

struct VariantResult {
  std::string label;
  VariantKind kind = VariantKind::kPerCloud;

  // kPerCloud / kNoiseBaseline:
  std::vector<CaseRow> cases;  ///< cloud order; empty for kSharedDelta
  pcss::core::BestAvgWorst aggregate{};
  long long total_steps = 0;

  // kSharedDelta:
  std::vector<double> accuracy_before;
  std::vector<double> accuracy_after;
  double shared_delta_l2 = 0.0;
  int shared_steps = 0;
};

struct ModelSection {
  std::string model;
  double clean_accuracy = 0.0;
  double clean_aiou = 0.0;
  std::vector<VariantResult> variants;
};

/// One cloud of one defense-grid cell (kDefenseGrid documents).
struct GridCaseRow {
  double accuracy = 0.0;
  double aiou = 0.0;
  long long points_kept = 0;
};

/// One (attack x defense x victim) cell with its per-cloud rows and the
/// mean column the report prints.
struct GridCellResult {
  std::string attack;
  std::string defense;
  std::string victim;
  std::vector<GridCaseRow> cases;  ///< cloud order
  double mean_accuracy = 0.0;
  double mean_aiou = 0.0;
  double mean_points_kept = 0.0;
};

/// Attack-side bookkeeping of one grid attack column.
struct GridAttackResult {
  std::string label;
  std::vector<double> l2_color;   ///< per cloud
  std::vector<long long> steps;   ///< per cloud
  double mean_l2_color = 0.0;
  long long total_steps = 0;
};

/// The content of one stored result document. Everything in here is a
/// pure function of the cache key's inputs (spec, scale, seeds,
/// weights): wall-clock lives in the .perf.json sidecar and the
/// fast/full *flag* is not recorded (the Scale fields capture the
/// sizing), so one key always names byte-identical document bytes.
struct RunDocument {
  std::string spec;
  std::string key;
  std::string kind = "attack_table";  ///< to_string(SpecKind)
  Scale scale;
  std::string dataset;
  std::uint64_t scene_seed = 0;
  int scene_count = 0;
  bool use_l0_distance = false;
  std::vector<ModelSection> models;  ///< kAttackTable documents

  // kDefenseGrid documents:
  std::string source_model;
  std::uint64_t defense_seed = 0;
  std::vector<GridAttackResult> grid_attacks;  ///< attack-column order
  std::vector<GridCellResult> grid;  ///< attack-major, then defense, then victim
};

struct RunOutcome {
  RunDocument document;
  std::string json;        ///< exact stored document bytes
  std::string path;        ///< absolute-ish store path of the document
  bool cache_hit = false;  ///< full-document hit: nothing was executed
  int shards_total = 0;
  int shards_from_cache = 0;
  long long attack_steps = 0;  ///< optimization steps executed live this call
  double wall_seconds = 0.0;
};

Json document_to_json(const RunDocument& doc);
RunDocument document_from_json(const Json& json);

/// Label lookup for report formatting; throws std::out_of_range naming
/// the label so a reordered or renamed spec fails loudly, never by
/// printing the wrong column.
const VariantResult& find_variant(const ModelSection& section, const std::string& label);

/// Same contract for defense-grid documents: cell lookup by the three
/// labels, throwing std::out_of_range with all of them on a miss.
const GridCellResult& find_cell(const RunDocument& doc, const std::string& attack,
                                const std::string& defense, const std::string& victim);

/// Prints a grid document's matrix to stdout, one block per attack
/// column. Shared by the pcss_run CLI and bench_defense_grid so the
/// report format cannot drift between entry points.
void print_grid_matrix(const RunDocument& doc);

/// Runs (or replays) one spec:
///
///   1. key = hash(spec, scaled configs, scale, scene seed, weights);
///   2. document cache hit and !force -> parse and return, zero work;
///   3. otherwise execute per (model, variant) in shards of
///      `shard_size` clouds over AttackEngine::run_batch, consulting the
///      shard cache before each shard (an interrupted run resumes where
///      it stopped) and persisting each freshly computed shard;
///   4. assemble, aggregate, and atomically store "<key>.json" plus a
///      "<key>.perf.json" sidecar (wall-clock, steps/s, shard counts).
///
/// Determinism: shard `[o, o+n)` runs with config.seed offset by `o`, so
/// cloud `g`'s RNG stream is `seed + g` under every partitioning, and
/// run_batch is bit-identical for any worker count — hence the stored
/// document is byte-identical for any (shard_size, num_threads, resume
/// point) combination.
RunOutcome run_spec(const ExperimentSpec& spec, ModelProvider& provider,
                    ResultStore& store, const RunOptions& options = {});

/// One worker process's view of a multi-process run (pcss_run
/// --workers). Every worker of a run shares the store; worker_id must
/// be unique among them (it names the lease owner and salts the chaos
/// stream).
struct WorkerConfig {
  RunOptions run;
  std::string worker_id = "worker";
  /// Staleness deadline for lease stealing; must comfortably exceed one
  /// shard's compute time, since workers heartbeat between shards, not
  /// during them.
  std::int64_t lease_ttl_ns = 300LL * 1000 * 1000 * 1000;
};

struct WorkerOutcome {
  int shards_computed = 0;
  int shards_stolen = 0;  ///< of shards_computed, claimed via a stale lease
  int passes = 0;         ///< plan scans (>= 2 when any shard was missing)
  long long attack_steps = 0;
  bool cancelled = false;
  bool doc_cached = false;  ///< the assembled document already existed
};

/// The claim/compute half of a multi-process run. Scans the spec's
/// shard plan (same enumeration as run_spec), and for every shard still
/// missing from the store: claims its lease, computes it from the
/// global-index seeds, puts it, releases the lease. kBusy leases are
/// skipped — another worker owns that shard — and stale leases (dead or
/// straggling owner) are stolen. The loop re-scans until every shard
/// exists, waiting briefly when all missing shards are busy elsewhere,
/// so a worker returns only when the plan is complete (or cancelled).
///
/// Correctness never depends on the leases: a stolen or duplicated
/// shard recomputes the same bytes (the seed-offset invariant run_spec
/// documents), so the subsequent merge — run_spec over the now-warm
/// store — is byte-identical to a single-process run by construction.
WorkerOutcome run_spec_worker(const ExperimentSpec& spec, ModelProvider& provider,
                              ResultStore& store, const WorkerConfig& config);

}  // namespace pcss::runner
