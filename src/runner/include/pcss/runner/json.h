#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace pcss::runner {

/// Minimal dependency-free JSON value for the result store's documents.
///
/// Two properties matter more than generality here:
///   - dump() is *deterministic*: object keys keep insertion order and
///     numbers use the shortest representation that round-trips through
///     a double, so re-serializing identical results yields identical
///     bytes (the store's byte-identity guarantee rests on this);
///   - parse(dump(v)) == v for every value the runner produces.
///
/// Not supported (not needed by the store): non-finite numbers, \uXXXX
/// escapes beyond ASCII control characters, duplicate object keys.
class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  ///< null
  Json(bool value) : type_(Type::kBool), bool_(value) {}
  Json(double value) : type_(Type::kNumber), number_(value) {}
  Json(int value) : Json(static_cast<double>(value)) {}
  Json(long long value) : Json(static_cast<double>(value)) {}
  Json(std::string value) : type_(Type::kString), string_(std::move(value)) {}
  Json(const char* value) : Json(std::string(value)) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }

  /// Scalar accessors; throw std::runtime_error on type mismatch.
  bool boolean() const;
  double number() const;
  const std::string& str() const;

  // -- array ----------------------------------------------------------------
  Json& push(Json value);  ///< returns the stored element
  std::size_t size() const;
  const Json& operator[](std::size_t index) const;
  const std::vector<Json>& items() const;

  // -- object (insertion-ordered) -------------------------------------------
  Json& set(const std::string& key, Json value);  ///< returns the stored value
  const Json* find(const std::string& key) const; ///< null when absent
  const Json& at(const std::string& key) const;   ///< throws when absent
  const std::vector<std::pair<std::string, Json>>& members() const;

  bool operator==(const Json& other) const;

  /// Serializes with 2-space indentation and a deterministic layout.
  std::string dump() const;

  /// Serializes without any whitespace or newlines (still deterministic
  /// and round-trippable). The pcss_serve line-delimited protocol needs
  /// one-value-per-line framing, which the pretty dump() cannot give.
  std::string dump_compact() const;

  /// Parses a complete JSON document; throws std::runtime_error with the
  /// byte offset on malformed input or trailing garbage.
  static Json parse(const std::string& text);

 private:
  void dump_to(std::string& out, int depth) const;
  void dump_compact_to(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> array_;
  std::vector<std::pair<std::string, Json>> object_;
};

}  // namespace pcss::runner
