#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace pcss::runner {

/// Incremental FNV-1a 64-bit hash. Used for the result store's content
/// addressing: stable across platforms and runs (no pointer or seed
/// dependence), cheap to stream checkpoint files through, and collision
/// risk is irrelevant at the store's scale (dozens of keys).
class Fnv64 {
 public:
  Fnv64& update(const void* data, std::size_t size);
  Fnv64& update(std::string_view text) { return update(text.data(), text.size()); }

  std::uint64_t value() const { return hash_; }
  /// 16 lowercase hex characters.
  std::string hex() const;

 private:
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

/// FNV-1a over a file's bytes; throws std::runtime_error naming the path
/// when the file cannot be read.
std::string hash_file_hex(const std::string& path);

}  // namespace pcss::runner
