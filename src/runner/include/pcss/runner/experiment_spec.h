#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "pcss/core/attack.h"
#include "pcss/core/defense_stage.h"
#include "pcss/runner/scale.h"

namespace pcss::runner {

using pcss::core::AttackConfig;
using pcss::models::PointCloud;
using pcss::models::SegmentationModel;

/// The zoo-backed model instances the paper evaluates.
enum class ModelId { kPointNet2Indoor, kResGCNIndoor, kRandLAIndoor, kRandLAOutdoor };
enum class Dataset { kIndoor, kOutdoor };

const char* to_string(ModelId id);
const char* to_string(Dataset dataset);

/// How one labelled column of a spec is computed.
enum class VariantKind {
  kPerCloud,       ///< AttackEngine::run_batch, one result per cloud
  kNoiseBaseline,  ///< random_noise_baseline at another variant's per-cloud L2
  kSharedDelta,    ///< AttackEngine::run_shared, one delta for all clouds
};

const char* to_string(VariantKind kind);

/// One attack column of a paper table. `config` carries the semantic
/// fields (objective, norm, field, thresholds); the executor overwrites
/// the sizing fields (steps, cw_steps, epsilon, coord_epsilon) from the
/// active Scale unless `apply_scale` is cleared.
struct AttackVariant {
  std::string label;
  VariantKind kind = VariantKind::kPerCloud;
  AttackConfig config;
  bool apply_scale = true;

  /// kNoiseBaseline only: label of an *earlier* variant whose per-cloud
  /// L2 the noise is calibrated to, and the per-cloud seed base
  /// (cloud i draws noise with seed noise_seed_base + i).
  std::string calibrate_from;
  std::uint64_t noise_seed_base = 7000;
};

/// Declarative defense stage: a kind tag plus plain numeric parameters
/// (no callables), so grid specs canonicalize to stable strings just
/// like attack configs do. build_stage() materializes the pcss::core
/// stage; unrelated fields are ignored per kind.
enum class DefenseStageKind { kSrs, kSor, kVoxel, kQuantize, kKnnVote };

const char* to_string(DefenseStageKind kind);

struct DefenseStageSpec {
  DefenseStageKind kind = DefenseStageKind::kSrs;
  // kSrs: drops floor(n * fraction) points when fraction >= 0, else the
  // absolute count.
  float srs_fraction = -1.0f;
  std::int64_t srs_remove = 0;
  // kSor / kKnnVote:
  int k = 2;
  // kSor:
  float stddev_mult = 1.0f;
  float color_weight = 1.0f;
  // kVoxel:
  float voxel = 0.25f;
  // kQuantize:
  int quantize_levels = 8;
};

/// One labelled defense column of a grid spec; empty stages = "none".
struct DefensePipelineSpec {
  std::string label;
  std::vector<DefenseStageSpec> stages;
};

std::shared_ptr<const pcss::core::DefenseStage> build_stage(const DefenseStageSpec& spec);
pcss::core::DefensePipeline build_pipeline(const DefensePipelineSpec& spec);

/// What shape of experiment a spec describes (selects the executor path
/// and the result-document schema).
enum class SpecKind {
  kAttackTable,   ///< models x attack variants (Tables II/III/VI, ext_universal)
  kDefenseGrid,   ///< attack x defense x victim matrix (Tables VIII/IX)
};

const char* to_string(SpecKind kind);

/// Declarative description of one paper table/figure: everything the
/// executor needs to regenerate the numbers, and everything the result
/// store needs to content-address them. No callables — a spec plus a
/// Scale plus the model fingerprints canonicalizes to a stable string
/// (canonical_description) whose hash keys the cache.
///
/// kDefenseGrid specs reuse `variants` as the labelled attack columns
/// (kPerCloud only); `models` holds exactly one entry, the source model
/// the attacks are generated on.
struct ExperimentSpec {
  std::string name;   ///< registry key, e.g. "table3"
  std::string title;  ///< human title, e.g. "Table III — ..."
  SpecKind kind = SpecKind::kAttackTable;
  Dataset dataset = Dataset::kIndoor;
  std::vector<ModelId> models;      ///< evaluated in order (grid: the source)
  std::vector<AttackVariant> variants;  ///< computed in order (calibration!)
  std::uint64_t scene_seed = 5000;  ///< eval-scene generator seed
  bool use_l0_distance = false;     ///< report Eq. 8 L0 instead of Eq. 6 L2

  // kDefenseGrid only:
  std::vector<DefensePipelineSpec> defenses;  ///< defense columns, in order
  std::vector<ModelId> victims;               ///< prediction models, in order
  std::uint64_t defense_seed = 11000;         ///< base of the defense draws
  bool grid_include_clean = true;  ///< prepend a no-attack baseline column
};

/// Supplies models, their weight fingerprints, and evaluation scenes to
/// the executor. The production implementation (ZooModelProvider) wraps
/// the checkpoint-cached ModelZoo; tests substitute tiny untrained
/// models so executor behaviour is testable in seconds.
class ModelProvider {
 public:
  virtual ~ModelProvider() = default;

  virtual std::shared_ptr<SegmentationModel> model(ModelId id) = 0;

  /// Stable content fingerprint of the model's weights (for the zoo:
  /// a hash of the checkpoint file bytes). Two providers returning the
  /// same fingerprint must produce bit-identical models.
  virtual std::string model_fingerprint(ModelId id) = 0;

  virtual std::vector<PointCloud> scenes(Dataset dataset, int count,
                                         std::uint64_t seed) = 0;
};

/// All registered paper reproductions, in presentation order. Currently
/// table2, table3, table6 and ext_universal — the degradation-style
/// tables the generic executor covers; the hiding tables need per-cloud
/// masks and stay on their dedicated benches (see DESIGN.md).
const std::vector<ExperimentSpec>& spec_registry();

/// Registry lookup by name; null when unknown.
const ExperimentSpec* find_spec(const std::string& name);

/// `variant.config` with the sizing fields taken from `scale`.
AttackConfig scaled_config(const AttackVariant& variant, const Scale& scale);

/// Deterministic textual dump of everything that affects a run's
/// numbers: spec structure, scaled configs, scale, scene seed, and each
/// model's weight fingerprint. Hashing this yields the cache key.
std::string canonical_description(const ExperimentSpec& spec, const Scale& scale,
                                  ModelProvider& provider);

/// "<spec-name>-<16 hex chars>": the content-addressed run key.
std::string run_key(const ExperimentSpec& spec, const Scale& scale,
                    ModelProvider& provider);

}  // namespace pcss::runner
