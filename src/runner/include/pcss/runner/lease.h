#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace pcss::runner {

/// What a lease file records about its holder. Heartbeats use the obs
/// monotonic clock (CLOCK_MONOTONIC), which is comparable across the
/// processes of one boot — exactly the population that can share a
/// lease directory.
struct LeaseInfo {
  std::string owner;             ///< opaque holder id, e.g. "w0-r0"
  long long pid = 0;             ///< holder's pid (advisory liveness probe)
  std::int64_t heartbeat_ns = 0; ///< monotonic ns of the last renew
  std::int64_t generation = 0;   ///< bumped on every steal/renew (forensics)
};

/// Coordinator-less advisory locks over a shared directory, one file per
/// lease. Workers use them to self-assign disjoint shards:
///
///   - A fresh claim is `open(O_CREAT|O_EXCL)` — atomic on every POSIX
///     filesystem, so exactly one claimant wins an absent lease.
///   - An existing lease is *stale* when its holder's pid is gone
///     (fast path, same-host only) or its heartbeat is older than the
///     TTL (backstop; covers stragglers and foreign hosts). Stale
///     leases are stolen by tmp+rename plus a read-back: whoever's
///     bytes survive the rename race owns the lease.
///
/// Leases are an optimization, never a correctness mechanism: the
/// executor's shards are pure functions of global-index seeds, so two
/// workers computing the same shard (a lost steal race, an unlinked
/// lease) produce byte-identical payloads and the store's atomic puts
/// make the duplicate harmless. That is why advisory locking with
/// benign races is enough — DESIGN.md §8 spells out the argument.
class LeaseManager {
 public:
  enum class Acquire {
    kAcquired,  ///< fresh claim (the lease file did not exist)
    kStolen,    ///< replaced a stale holder's lease
    kBusy,      ///< a live holder has it (or we lost the steal race)
  };

  /// `dir` is created on first use. `ttl_ns` is the staleness deadline:
  /// a holder that neither renews nor finishes within it is presumed
  /// dead or stuck, and its lease becomes stealable.
  LeaseManager(std::string dir, std::string owner, std::int64_t ttl_ns);

  Acquire try_acquire(const std::string& name);

  /// Refreshes the heartbeat of a lease we hold. Returns false when the
  /// lease is no longer ours (stolen or removed) — the caller should
  /// treat its work as possibly duplicated and carry on (benign).
  bool renew(const std::string& name);

  /// Unlinks the lease if we still hold it; returns whether a file was
  /// removed.
  bool release(const std::string& name);

  /// Reads a lease without touching it; nullopt when absent or torn.
  std::optional<LeaseInfo> peek(const std::string& name) const;

  /// Removes every stale or unreadable lease file in the directory
  /// (crashed runs leave them behind); returns how many were removed.
  /// Fresh leases with live holders are kept.
  int sweep();

  const std::string& dir() const { return dir_; }
  const std::string& owner() const { return owner_; }
  std::int64_t ttl_ns() const { return ttl_ns_; }

 private:
  bool stale(const LeaseInfo& info) const;
  bool write_lease(const std::string& name, std::int64_t generation);

  std::string dir_;
  std::string owner_;
  std::int64_t ttl_ns_;
};

/// Deterministic fault injection for the worker role, configured by
/// `PCSS_CHAOS=<kill_prob>:<seed>` (e.g. "0.2:1234"). Each call site
/// draws from a splitmix64 stream seeded by (seed, salt), so a given
/// worker id replays the same kill/survive decisions every run — chaos
/// tests are reproducible, not flaky.
class ChaosMonkey {
 public:
  ChaosMonkey() = default;  ///< disabled: would_kill() is always false
  ChaosMonkey(double kill_prob, std::uint64_t seed, const std::string& salt);

  /// Parses PCSS_CHAOS; disabled (and a stderr warning) on a malformed
  /// value, disabled silently when the variable is unset.
  static ChaosMonkey from_env(const std::string& salt);

  bool enabled() const { return kill_prob_ > 0.0; }

  /// Advances the stream and returns this boundary's decision. Split
  /// from maybe_kill() so tests can assert the decision sequence.
  bool would_kill();

  /// would_kill(), then raise(SIGKILL) — no cleanup, no atexit: the
  /// point is to die the way a crashed worker dies. Never returns when
  /// the draw fires.
  void maybe_kill();

 private:
  double kill_prob_ = 0.0;
  std::uint64_t state_ = 0;
};

}  // namespace pcss::runner
