#pragma once

#include <atomic>
#include <optional>
#include <string>
#include <vector>

namespace pcss::runner {

/// Content-addressed result cache under `<artifacts>/results/`.
///
/// Keys are store-relative file names (subdirectories allowed, e.g.
/// "shards/table3-<hash>-m0-v1-o0-n4.json"); the executor derives them
/// from a stable hash of (spec, checkpoint bytes, scale, seed), so a key
/// either misses or names bytes that are valid for reuse — there is no
/// invalidation protocol.
///
/// put() writes to a temporary sibling and atomically renames it into
/// place, so an interrupted run can never leave a torn document behind:
/// readers see either nothing or the complete content.
///
/// get() outcomes are counted (hits()/misses()) so callers and tests can
/// assert cache behaviour ("second run executed zero attack steps").
class ResultStore {
 public:
  explicit ResultStore(std::string root = default_root());

  /// `$PCSS_ARTIFACTS`/results when the variable is set, artifacts/results
  /// otherwise — matching the ModelZoo checkpoint cache next door.
  static std::string default_root();

  const std::string& root() const { return root_; }
  std::string path_for(const std::string& key) const;

  std::optional<std::string> get(const std::string& key);
  void put(const std::string& key, const std::string& content);
  bool erase(const std::string& key);

  /// Existence probe without reading bytes or touching the hit/miss
  /// counters — the multi-process worker loop scans the whole shard
  /// plan every pass, and those scans are not cache events.
  bool contains(const std::string& key) const;

  /// Garbage-collects `.tmp.<pid>` siblings left behind by interrupted
  /// puts: removes those whose mtime is at least `min_age_seconds` old
  /// (age-gated so a concurrent in-flight put's temporary survives) and
  /// returns their store-relative names, sorted. Stored results are
  /// never candidates.
  std::vector<std::string> sweep_stale_tmps(long long min_age_seconds);

  /// Store-relative keys whose file name starts with `prefix`
  /// (subdirectories are searched too), sorted lexicographically.
  std::vector<std::string> list(const std::string& prefix) const;

  int hits() const { return hits_.load(std::memory_order_relaxed); }
  int misses() const { return misses_.load(std::memory_order_relaxed); }
  void reset_counters() {
    hits_.store(0, std::memory_order_relaxed);
    misses_.store(0, std::memory_order_relaxed);
  }

 private:
  std::string root_;
  // Telemetry only, so relaxed ordering suffices; atomic because one store
  // is shared by concurrent shard workers (and, next, pcss_serve request
  // threads) — file-level consistency comes from tmp+rename, not these.
  std::atomic<int> hits_{0};
  std::atomic<int> misses_{0};
};

}  // namespace pcss::runner
