#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "pcss/runner/experiment_spec.h"
#include "pcss/train/model_zoo.h"

namespace pcss::runner {

/// Production ModelProvider: models come from the checkpoint-cached
/// ModelZoo (training on first use), fingerprints are content hashes of
/// the checkpoint files, scenes are the zoo's held-out eval generators.
/// Models and fingerprints are memoized, so a multi-variant spec pays
/// for each model once.
class ZooModelProvider : public ModelProvider {
 public:
  explicit ZooModelProvider(pcss::train::ModelZoo zoo = pcss::train::ModelZoo{});

  std::shared_ptr<SegmentationModel> model(ModelId id) override;
  std::string model_fingerprint(ModelId id) override;
  std::vector<PointCloud> scenes(Dataset dataset, int count, std::uint64_t seed) override;

  pcss::train::ModelZoo& zoo() { return zoo_; }

 private:
  pcss::train::ModelZoo zoo_;
  std::map<ModelId, std::shared_ptr<SegmentationModel>> models_;
  std::map<ModelId, std::string> fingerprints_;
};

}  // namespace pcss::runner
