#pragma once

namespace pcss::runner {

/// CPU-scaled experiment sizing shared by the benches, the registered
/// experiment specs, and the `pcss_run` CLI (see DESIGN.md for how the
/// defaults relate to the paper's settings). The fast variant shrinks
/// scene counts and step budgets for smoke runs.
struct Scale {
  int scenes = 3;          ///< clouds per configuration
  int hiding_scenes = 2;   ///< clouds per (model, source-class) pair
  int pgd_steps = 50;      ///< paper: 50
  int cw_steps = 150;      ///< paper: 1000 (CPU-scaled)
  float eps_color = 0.15f; ///< bounded color clip
  float eps_coord = 0.30f; ///< bounded coordinate clip (meters; about half
                           ///< the mean point spacing of the 512-pt rooms)
};

/// The one place that interprets the PCSS_FAST environment variable
/// (set and non-"0" = fast). bench_common.h and `pcss_run --fast` both
/// defer here so scale policy cannot drift between entry points.
bool fast_mode();

/// The sizing for an explicit fast/full choice (CLI `--fast`).
Scale scale_for(bool fast);

/// scale_for(fast_mode()): the environment-selected sizing.
Scale active_scale();

}  // namespace pcss::runner
