#include "pcss/runner/executor.h"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <map>
#include <span>
#include <stdexcept>

#include "pcss/core/attack_engine.h"
#include "pcss/core/defense_grid.h"
#include "pcss/obs/metrics.h"
#include "pcss/obs/trace.h"
#include "pcss/runner/hash.h"
#include "pcss/runner/lease.h"
#include "pcss/runner/perf.h"
#include "pcss/tensor/pool.h"
#include "pcss/tensor/simd.h"

namespace pcss::runner {

using pcss::core::AttackConfig;
using pcss::core::AttackEngine;
using pcss::core::AttackResult;
using pcss::core::BestAvgWorst;
using pcss::core::CaseRecord;
using pcss::core::ExecPolicy;
using pcss::core::SegMetrics;
using pcss::core::SharedDeltaResult;

namespace obs = pcss::obs;

namespace {

/// Upper edges (ms) for the shard wall-time histogram: a shard runs a
/// whole attack batch, so the buckets stretch well past the sub-second
/// latency defaults.
const std::vector<double>& shard_ms_buckets() {
  static const std::vector<double> buckets{1.0,    5.0,     10.0,    25.0,   50.0,
                                           100.0,  250.0,   500.0,   1000.0, 2500.0,
                                           5000.0, 10000.0, 30000.0, 60000.0};
  return buckets;
}

/// Telemetry plumbing for the shard loops: registry metrics plus the
/// RunOptions::on_progress callback. Observation only — it reads loop
/// state and copies of counters; nothing here can reach document bytes.
class ShardTelemetry {
 public:
  ShardTelemetry(const RunOptions& options, const WallTimer& timer, int planned_total)
      : options_(options), timer_(timer), planned_total_(planned_total) {}

  /// Call after every shard (cached or computed) with the shard's wall
  /// time and the running outcome counters.
  void finish_shard(bool from_cache, double shard_seconds, const RunOutcome& out) {
    if (from_cache) {
      cached_.add(1);
    } else {
      computed_.add(1);
      shard_ms_.observe(shard_seconds * 1000.0);
      live_seconds_ += shard_seconds;
      ++live_count_;
    }
    ++done_;
    if (!options_.on_progress) return;
    ShardProgress progress;
    progress.shards_done = done_;
    progress.shards_total = planned_total_;
    progress.shards_from_cache = out.shards_from_cache;
    progress.attack_steps = out.attack_steps;
    progress.wall_seconds = timer_.seconds();
    const int remaining = planned_total_ > done_ ? planned_total_ - done_ : 0;
    if (live_count_ > 0 && remaining > 0) {
      // Optimistic when the remaining shards replay from cache; exact
      // when they all run live. Good enough for a heartbeat line.
      progress.eta_seconds =
          static_cast<double>(remaining) * (live_seconds_ / live_count_);
    }
    options_.on_progress(progress);
  }

 private:
  const RunOptions& options_;
  const WallTimer& timer_;
  int planned_total_;
  int done_ = 0;
  double live_seconds_ = 0.0;
  int live_count_ = 0;
  obs::metrics::Counter& computed_ = obs::metrics::counter("runner.shards.computed");
  obs::metrics::Counter& cached_ = obs::metrics::counter("runner.shards.cached");
  obs::metrics::Histogram& shard_ms_ =
      obs::metrics::histogram("runner.shard_ms", shard_ms_buckets());
};

VariantKind variant_kind_from_string(const std::string& kind) {
  if (kind == "per_cloud") return VariantKind::kPerCloud;
  if (kind == "noise_baseline") return VariantKind::kNoiseBaseline;
  if (kind == "shared_delta") return VariantKind::kSharedDelta;
  throw std::runtime_error("RunDocument: unknown variant kind '" + kind + "'");
}

Json record_to_json(const CaseRecord& record) {
  Json j = Json::object();
  j.set("distance", record.distance);
  j.set("accuracy", record.accuracy);
  j.set("aiou", record.aiou);
  return j;
}

CaseRecord record_from_json(const Json& j) {
  return {j.at("distance").number(), j.at("accuracy").number(), j.at("aiou").number()};
}

Json row_to_json(const CaseRow& row) {
  Json j = record_to_json(row.record);
  j.set("l2_color", row.l2_color);
  j.set("steps", row.steps);
  return j;
}

CaseRow row_from_json(const Json& j) {
  CaseRow row;
  row.record = record_from_json(j);
  row.l2_color = j.at("l2_color").number();
  row.steps = static_cast<long long>(j.at("steps").number());
  return row;
}

Json doubles_to_json(const std::vector<double>& values) {
  Json arr = Json::array();
  for (double v : values) arr.push(v);
  return arr;
}

std::vector<double> doubles_from_json(const Json& arr) {
  std::vector<double> out;
  out.reserve(arr.size());
  for (const Json& v : arr.items()) out.push_back(v.number());
  return out;
}

/// Everything one shard computes, in storable form. Per-cloud kinds fill
/// `rows`; the shared-delta kind fills the remaining fields.
struct ShardData {
  std::vector<CaseRow> rows;
  std::vector<double> accuracy_before, accuracy_after;
  double delta_l2 = 0.0;
  int steps_used = 0;
};

Json shard_to_json(const ShardData& shard, VariantKind kind) {
  Json j = Json::object();
  if (kind == VariantKind::kSharedDelta) {
    j.set("accuracy_before", doubles_to_json(shard.accuracy_before));
    j.set("accuracy_after", doubles_to_json(shard.accuracy_after));
    j.set("delta_l2", shard.delta_l2);
    j.set("steps_used", shard.steps_used);
  } else {
    Json cases = Json::array();
    for (const CaseRow& row : shard.rows) cases.push(row_to_json(row));
    j.set("cases", std::move(cases));
  }
  return j;
}

ShardData shard_from_json(const Json& j, VariantKind kind) {
  ShardData shard;
  if (kind == VariantKind::kSharedDelta) {
    shard.accuracy_before = doubles_from_json(j.at("accuracy_before"));
    shard.accuracy_after = doubles_from_json(j.at("accuracy_after"));
    shard.delta_l2 = j.at("delta_l2").number();
    shard.steps_used = static_cast<int>(j.at("steps_used").number());
  } else {
    for (const Json& row : j.at("cases").items()) shard.rows.push_back(row_from_json(row));
  }
  return shard;
}

/// Store keys of the two shard families. One definition each, shared by
/// the single-process executor and the worker loop: the multi-process
/// contract is "same key = same bytes", so key construction must not be
/// able to drift between the two paths.
std::string table_shard_key(const std::string& key, std::size_t mi, std::size_t vi,
                            std::size_t offset, std::size_t count) {
  return "shards/" + key + "-m" + std::to_string(mi) + "-v" + std::to_string(vi) + "-o" +
         std::to_string(offset) + "-n" + std::to_string(count) + ".json";
}

std::string grid_shard_key(const std::string& key, std::size_t offset, std::size_t count) {
  return "shards/" + key + "-grid-o" + std::to_string(offset) + "-n" +
         std::to_string(count) + ".json";
}

/// Executes (or replays from the shard cache) the clouds [offset,
/// offset+count) of one per-cloud variant.
/// The per-shard engine execution policy a RunOptions selects. Pure
/// execution knobs only (threads, plans, no observer) — nothing here can
/// change document bytes.
ExecPolicy shard_policy(const RunOptions& options) {
  return {options.num_threads, options.plan, {}};
}

ShardData compute_attack_shard(SegmentationModel& model, const AttackConfig& config,
                               std::span<const PointCloud> clouds, std::size_t offset,
                               std::size_t count, bool use_l0, const ExecPolicy& policy) {
  AttackConfig shard_config = config;
  // Seed offset keeps cloud g on RNG stream seed+g under any sharding:
  // run_batch seeds cloud i of the shard with shard_config.seed + i.
  shard_config.seed += offset;
  AttackEngine engine(model, shard_config);
  const std::vector<AttackResult> results =
      engine.run_batch(clouds.subspan(offset, count), policy);
  ShardData shard;
  shard.rows.reserve(count);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const PointCloud& cloud = clouds[offset + i];
    const SegMetrics m = pcss::core::evaluate_segmentation(results[i].predictions,
                                                           cloud.labels, model.num_classes());
    CaseRow row;
    row.record = {pcss::core::case_distance(config, use_l0, results[i]), m.accuracy,
                  m.aiou};
    row.l2_color = results[i].l2_color;
    row.steps = results[i].steps_used;
    shard.rows.push_back(row);
  }
  return shard;
}

ShardData compute_noise_shard(SegmentationModel& model, const AttackVariant& variant,
                              const AttackConfig& config, std::span<const PointCloud> clouds,
                              std::size_t offset, std::size_t count, bool use_l0,
                              const std::vector<double>& calibration_l2) {
  ShardData shard;
  shard.rows.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t g = offset + i;
    const AttackResult noise = pcss::core::random_noise_baseline(
        model, clouds[g], calibration_l2[g], variant.noise_seed_base + g);
    const SegMetrics m = pcss::core::evaluate_segmentation(noise.predictions,
                                                           clouds[g].labels,
                                                           model.num_classes());
    CaseRow row;
    // Same distance selection as the attack rows (the noise perturbs
    // the color field), so an L0 spec never mixes metrics in a column.
    row.record = {pcss::core::case_distance(config, use_l0, noise), m.accuracy, m.aiou};
    row.l2_color = noise.l2_color;
    row.steps = 0;
    shard.rows.push_back(row);
  }
  return shard;
}

// ---------------------------------------------------------------------------
// Defense-grid shards
// ---------------------------------------------------------------------------

/// Everything one defense-grid shard computes: per-attack traces and
/// per-cell case rows for the shard's clouds, in the spec's enumeration
/// order (which the cache key pins, so order is identity).
struct GridShardData {
  std::vector<pcss::core::GridAttackTrace> attacks;
  std::vector<std::vector<GridCaseRow>> cells;
};

Json grid_shard_to_json(const GridShardData& shard) {
  Json j = Json::object();
  Json attacks = Json::array();
  for (const auto& trace : shard.attacks) {
    Json a = Json::object();
    a.set("l2_color", doubles_to_json(trace.l2_color));
    Json steps = Json::array();
    for (long long s : trace.steps) steps.push(s);
    a.set("steps", std::move(steps));
    attacks.push(std::move(a));
  }
  j.set("attacks", std::move(attacks));
  Json cells = Json::array();
  for (const auto& cell : shard.cells) {
    Json cases = Json::array();
    for (const GridCaseRow& row : cell) {
      Json c = Json::object();
      c.set("accuracy", row.accuracy);
      c.set("aiou", row.aiou);
      c.set("points_kept", row.points_kept);
      cases.push(std::move(c));
    }
    cells.push(std::move(cases));
  }
  j.set("cells", std::move(cells));
  return j;
}

GridShardData grid_shard_from_json(const Json& j, std::size_t attack_count,
                                   std::size_t cell_count) {
  GridShardData shard;
  const Json& attacks = j.at("attacks");
  const Json& cells = j.at("cells");
  // A shard written for a different spec shape is unusable; failing here
  // sends the caller down the recompute path.
  if (attacks.size() != attack_count || cells.size() != cell_count) {
    throw std::runtime_error("grid shard: column count mismatch");
  }
  for (const Json& a : attacks.items()) {
    pcss::core::GridAttackTrace trace;
    trace.l2_color = doubles_from_json(a.at("l2_color"));
    for (const Json& s : a.at("steps").items()) {
      trace.steps.push_back(static_cast<long long>(s.number()));
    }
    shard.attacks.push_back(std::move(trace));
  }
  for (const Json& cell : cells.items()) {
    std::vector<GridCaseRow> rows;
    for (const Json& c : cell.items()) {
      rows.push_back({c.at("accuracy").number(), c.at("aiou").number(),
                      static_cast<long long>(c.at("points_kept").number())});
    }
    shard.cells.push_back(std::move(rows));
  }
  return shard;
}

ShardData compute_shared_shard(SegmentationModel& model, const AttackConfig& config,
                               std::span<const PointCloud> clouds,
                               const ExecPolicy& policy) {
  AttackEngine engine(model, config);
  const SharedDeltaResult result = engine.run_shared(clouds, policy);
  ShardData shard;
  shard.accuracy_before = result.accuracy_before;
  shard.accuracy_after = result.accuracy_after;
  shard.steps_used = result.steps_used;
  double sum_sq = 0.0;
  for (float d : result.color_delta) sum_sq += static_cast<double>(d) * d;
  shard.delta_l2 = std::sqrt(sum_sq);
  return shard;
}

/// Everything a defense-grid shard computation needs beyond the clouds:
/// materialized models and the attack/defense/victim enumerations, in
/// the spec's order (which the cache key pins, so order is identity).
struct GridSetup {
  std::shared_ptr<SegmentationModel> source;
  std::vector<std::shared_ptr<SegmentationModel>> victim_models;  ///< keeps victims alive
  std::vector<pcss::core::GridVictim> victims;
  std::vector<pcss::core::GridAttack> attacks;
  std::vector<pcss::core::GridDefense> defenses;

  std::size_t cell_count() const {
    return attacks.size() * defenses.size() * victims.size();
  }
};

/// Validates a kDefenseGrid spec and materializes its grid. Shared by
/// run_spec and run_spec_worker so both reject malformed specs with the
/// same message and enumerate identical grids.
GridSetup make_grid_setup(const ExperimentSpec& spec, ModelProvider& provider,
                          const RunOptions& options) {
  if (spec.models.size() != 1) {
    throw std::invalid_argument("run_spec: defense-grid spec '" + spec.name +
                                "' needs exactly one source model");
  }
  if (spec.victims.empty() || spec.defenses.empty()) {
    throw std::invalid_argument("run_spec: defense-grid spec '" + spec.name +
                                "' needs victims and defenses");
  }
  for (const AttackVariant& variant : spec.variants) {
    if (variant.kind != VariantKind::kPerCloud) {
      throw std::invalid_argument("run_spec: defense-grid spec '" + spec.name +
                                  "' supports per_cloud attack variants only");
    }
  }
  GridSetup setup;
  setup.source = provider.model(spec.models[0]);
  for (ModelId id : spec.victims) {
    setup.victim_models.push_back(provider.model(id));
    setup.victims.push_back({to_string(id), setup.victim_models.back().get()});
  }
  if (spec.grid_include_clean) setup.attacks.push_back({"clean", true, {}});
  for (const AttackVariant& variant : spec.variants) {
    setup.attacks.push_back({variant.label, false, scaled_config(variant, options.scale)});
  }
  for (const DefensePipelineSpec& defense : spec.defenses) {
    setup.defenses.push_back({defense.label, build_pipeline(defense)});
  }
  return setup;
}

/// Computes the grid shard covering clouds [offset, offset+count): the
/// shard's global offset keys both the attack RNG (seed + g) and the
/// defense streams (defense_cell_seed at global g), so the result is
/// invariant under any partitioning.
GridShardData compute_grid_shard(const GridSetup& setup, const ExperimentSpec& spec,
                                 const RunOptions& options,
                                 std::span<const PointCloud> clouds, std::size_t offset,
                                 std::size_t count) {
  pcss::core::DefenseGridOptions grid_options;
  grid_options.defense_seed = spec.defense_seed;
  grid_options.cloud_index_base = offset;
  grid_options.num_threads = options.num_threads;
  const pcss::core::DefenseGridResult result = pcss::core::evaluate_defense_grid(
      *setup.source, setup.victims, clouds.subspan(offset, count), setup.attacks,
      setup.defenses, grid_options);
  GridShardData shard;
  shard.attacks = result.attacks;
  shard.cells.reserve(result.cells.size());
  for (const pcss::core::GridCell& cell : result.cells) {
    std::vector<GridCaseRow> rows;
    rows.reserve(cell.cases.size());
    for (const pcss::core::GridCase& c : cell.cases) {
      rows.push_back({c.accuracy, c.aiou, static_cast<long long>(c.points_kept)});
    }
    shard.cells.push_back(std::move(rows));
  }
  return shard;
}

/// Planned shard count for the whole run, computed up front so progress
/// lines can show "done/total" and an ETA before the loops start.
int planned_shard_count(const ExperimentSpec& spec, std::size_t cloud_count,
                        int shard_size) {
  const int per_variant = static_cast<int>(
      (cloud_count + static_cast<std::size_t>(shard_size) - 1) /
      static_cast<std::size_t>(shard_size));
  if (spec.kind == SpecKind::kDefenseGrid) return per_variant;
  int per_model = 0;
  for (const AttackVariant& variant : spec.variants) {
    per_model += variant.kind == VariantKind::kSharedDelta ? 1 : per_variant;
  }
  return per_model * static_cast<int>(spec.models.size());
}

/// Executes (or replays) a kDefenseGrid spec into `doc`/`out`: shards of
/// clouds, each computed by core::evaluate_defense_grid with the shard's
/// global offset, so attack RNG (seed + g) and defense streams
/// (defense_cell_seed at global g) are invariant under any partitioning.
void execute_defense_grid(const ExperimentSpec& spec, ModelProvider& provider,
                          ResultStore& store, const RunOptions& options,
                          const std::string& key, std::span<const PointCloud> clouds,
                          int shard_size, RunDocument& doc, RunOutcome& out,
                          ShardTelemetry& telemetry) {
  const GridSetup setup = make_grid_setup(spec, provider, options);
  doc.source_model = to_string(spec.models[0]);
  doc.defense_seed = spec.defense_seed;

  for (const pcss::core::GridAttack& attack : setup.attacks) {
    GridAttackResult trace;
    trace.label = attack.label;
    doc.grid_attacks.push_back(std::move(trace));
  }
  for (const pcss::core::GridAttack& attack : setup.attacks) {
    for (const pcss::core::GridDefense& defense : setup.defenses) {
      for (const pcss::core::GridVictim& victim : setup.victims) {
        GridCellResult cell;
        cell.attack = attack.label;
        cell.defense = defense.label;
        cell.victim = victim.label;
        doc.grid.push_back(std::move(cell));
      }
    }
  }

  // Telemetry only: one span per shard, with a cache_hit annotation so a
  // trace distinguishes replayed shards from executed ones at a glance.
  static const obs::trace::Label kShardSpan = obs::trace::intern("runner.shard");
  static const obs::trace::Label kCacheArg = obs::trace::intern("cache_hit");
  for (std::size_t offset = 0; offset < clouds.size();
       offset += static_cast<std::size_t>(shard_size)) {
    if (options.cancel && options.cancel()) throw RunCancelled(spec.name);
    const std::size_t count =
        std::min(static_cast<std::size_t>(shard_size), clouds.size() - offset);
    const std::string shard_key = grid_shard_key(key, offset, count);
    ++out.shards_total;
    GridShardData shard;
    bool from_cache = false;
    const std::int64_t shard_start = obs::trace::now_ns();
    {
      obs::trace::ScopedSpan shard_span(kShardSpan);
      if (!options.force) {
        if (auto cached = store.get(shard_key)) {
          try {
            shard = grid_shard_from_json(Json::parse(*cached), setup.attacks.size(),
                                         doc.grid.size());
            from_cache = true;
            ++out.shards_from_cache;
          } catch (const std::exception&) {
            shard = GridShardData{};  // unreadable shard: recompute it
          }
        }
      }
      if (!from_cache) {
        shard = compute_grid_shard(setup, spec, options, clouds, offset, count);
        store.put(shard_key, grid_shard_to_json(shard).dump() + "\n");
        for (const auto& trace : shard.attacks) {
          for (long long s : trace.steps) out.attack_steps += s;
        }
      }
      shard_span.arg(kCacheArg, from_cache ? 1 : 0);
    }
    telemetry.finish_shard(
        from_cache, static_cast<double>(obs::trace::now_ns() - shard_start) / 1e9, out);
    for (std::size_t ai = 0; ai < shard.attacks.size(); ++ai) {
      doc.grid_attacks[ai].l2_color.insert(doc.grid_attacks[ai].l2_color.end(),
                                           shard.attacks[ai].l2_color.begin(),
                                           shard.attacks[ai].l2_color.end());
      doc.grid_attacks[ai].steps.insert(doc.grid_attacks[ai].steps.end(),
                                        shard.attacks[ai].steps.begin(),
                                        shard.attacks[ai].steps.end());
    }
    for (std::size_t ci = 0; ci < shard.cells.size(); ++ci) {
      doc.grid[ci].cases.insert(doc.grid[ci].cases.end(), shard.cells[ci].begin(),
                                shard.cells[ci].end());
    }
  }

  for (GridAttackResult& trace : doc.grid_attacks) {
    for (double l2 : trace.l2_color) trace.mean_l2_color += l2;
    if (!trace.l2_color.empty()) {
      trace.mean_l2_color /= static_cast<double>(trace.l2_color.size());
    }
    for (long long s : trace.steps) trace.total_steps += s;
  }
  for (GridCellResult& cell : doc.grid) {
    for (const GridCaseRow& row : cell.cases) {
      cell.mean_accuracy += row.accuracy;
      cell.mean_aiou += row.aiou;
      cell.mean_points_kept += static_cast<double>(row.points_kept);
    }
    if (!cell.cases.empty()) {
      const auto n = static_cast<double>(cell.cases.size());
      cell.mean_accuracy /= n;
      cell.mean_aiou /= n;
      cell.mean_points_kept /= n;
    }
  }
}

}  // namespace

Json document_to_json(const RunDocument& doc) {
  Json j = Json::object();
  j.set("spec", doc.spec);
  j.set("key", doc.key);
  // Attack-table documents keep their pre-grid byte layout (and their
  // unchanged cache keys keep naming byte-identical documents): the
  // kind tag is only written for non-default kinds, and parsing treats
  // its absence as attack_table.
  if (doc.kind != "attack_table") j.set("kind", doc.kind);
  Json scale = Json::object();
  scale.set("scenes", doc.scale.scenes);
  scale.set("hiding_scenes", doc.scale.hiding_scenes);
  scale.set("pgd_steps", doc.scale.pgd_steps);
  scale.set("cw_steps", doc.scale.cw_steps);
  scale.set("eps_color", static_cast<double>(doc.scale.eps_color));
  scale.set("eps_coord", static_cast<double>(doc.scale.eps_coord));
  j.set("scale", std::move(scale));
  j.set("dataset", doc.dataset);
  // As a string: a 64-bit seed does not survive a round-trip through a
  // JSON double (2^53 mantissa), and the document must record the seed
  // the run actually used.
  j.set("scene_seed", std::to_string(doc.scene_seed));
  j.set("scene_count", doc.scene_count);
  j.set("l0_distance", doc.use_l0_distance);
  Json models = Json::array();
  for (const ModelSection& section : doc.models) {
    Json m = Json::object();
    m.set("model", section.model);
    m.set("clean_accuracy", section.clean_accuracy);
    m.set("clean_aiou", section.clean_aiou);
    Json variants = Json::array();
    for (const VariantResult& vr : section.variants) {
      Json v = Json::object();
      v.set("label", vr.label);
      v.set("kind", to_string(vr.kind));
      if (vr.kind == VariantKind::kSharedDelta) {
        v.set("accuracy_before", doubles_to_json(vr.accuracy_before));
        v.set("accuracy_after", doubles_to_json(vr.accuracy_after));
        v.set("delta_l2", vr.shared_delta_l2);
        v.set("steps_used", vr.shared_steps);
      } else {
        Json cases = Json::array();
        for (const CaseRow& row : vr.cases) cases.push(row_to_json(row));
        v.set("cases", std::move(cases));
        Json agg = Json::object();
        agg.set("best", record_to_json(vr.aggregate.best));
        agg.set("avg", record_to_json(vr.aggregate.avg));
        agg.set("worst", record_to_json(vr.aggregate.worst));
        v.set("aggregate", std::move(agg));
        v.set("total_steps", vr.total_steps);
      }
      variants.push(std::move(v));
    }
    m.set("variants", std::move(variants));
    models.push(std::move(m));
  }
  j.set("models", std::move(models));
  if (doc.kind == "defense_grid") {
    j.set("source_model", doc.source_model);
    j.set("defense_seed", std::to_string(doc.defense_seed));  // 64-bit: see scene_seed
    Json attacks = Json::array();
    for (const GridAttackResult& trace : doc.grid_attacks) {
      Json a = Json::object();
      a.set("label", trace.label);
      a.set("l2_color", doubles_to_json(trace.l2_color));
      Json steps = Json::array();
      for (long long s : trace.steps) steps.push(s);
      a.set("steps", std::move(steps));
      a.set("mean_l2_color", trace.mean_l2_color);
      a.set("total_steps", trace.total_steps);
      attacks.push(std::move(a));
    }
    j.set("grid_attacks", std::move(attacks));
    Json grid = Json::array();
    for (const GridCellResult& cell : doc.grid) {
      Json c = Json::object();
      c.set("attack", cell.attack);
      c.set("defense", cell.defense);
      c.set("victim", cell.victim);
      Json cases = Json::array();
      for (const GridCaseRow& row : cell.cases) {
        Json r = Json::object();
        r.set("accuracy", row.accuracy);
        r.set("aiou", row.aiou);
        r.set("points_kept", row.points_kept);
        cases.push(std::move(r));
      }
      c.set("cases", std::move(cases));
      c.set("mean_accuracy", cell.mean_accuracy);
      c.set("mean_aiou", cell.mean_aiou);
      c.set("mean_points_kept", cell.mean_points_kept);
      grid.push(std::move(c));
    }
    j.set("grid", std::move(grid));
  }
  return j;
}

RunDocument document_from_json(const Json& j) {
  RunDocument doc;
  doc.spec = j.at("spec").str();
  doc.key = j.at("key").str();
  // Documents written before the grid kind existed carry no "kind";
  // they are all attack tables.
  if (const Json* kind = j.find("kind")) doc.kind = kind->str();
  const Json& scale = j.at("scale");
  doc.scale.scenes = static_cast<int>(scale.at("scenes").number());
  doc.scale.hiding_scenes = static_cast<int>(scale.at("hiding_scenes").number());
  doc.scale.pgd_steps = static_cast<int>(scale.at("pgd_steps").number());
  doc.scale.cw_steps = static_cast<int>(scale.at("cw_steps").number());
  doc.scale.eps_color = static_cast<float>(scale.at("eps_color").number());
  doc.scale.eps_coord = static_cast<float>(scale.at("eps_coord").number());
  doc.dataset = j.at("dataset").str();
  doc.scene_seed = std::stoull(j.at("scene_seed").str());
  doc.scene_count = static_cast<int>(j.at("scene_count").number());
  doc.use_l0_distance = j.at("l0_distance").boolean();
  for (const Json& m : j.at("models").items()) {
    ModelSection section;
    section.model = m.at("model").str();
    section.clean_accuracy = m.at("clean_accuracy").number();
    section.clean_aiou = m.at("clean_aiou").number();
    for (const Json& v : m.at("variants").items()) {
      VariantResult vr;
      vr.label = v.at("label").str();
      vr.kind = variant_kind_from_string(v.at("kind").str());
      if (vr.kind == VariantKind::kSharedDelta) {
        vr.accuracy_before = doubles_from_json(v.at("accuracy_before"));
        vr.accuracy_after = doubles_from_json(v.at("accuracy_after"));
        vr.shared_delta_l2 = v.at("delta_l2").number();
        vr.shared_steps = static_cast<int>(v.at("steps_used").number());
      } else {
        for (const Json& row : v.at("cases").items()) vr.cases.push_back(row_from_json(row));
        const Json& agg = v.at("aggregate");
        vr.aggregate.best = record_from_json(agg.at("best"));
        vr.aggregate.avg = record_from_json(agg.at("avg"));
        vr.aggregate.worst = record_from_json(agg.at("worst"));
        vr.total_steps = static_cast<long long>(v.at("total_steps").number());
      }
      section.variants.push_back(std::move(vr));
    }
    doc.models.push_back(std::move(section));
  }
  if (doc.kind == "defense_grid") {
    doc.source_model = j.at("source_model").str();
    doc.defense_seed = std::stoull(j.at("defense_seed").str());
    for (const Json& a : j.at("grid_attacks").items()) {
      GridAttackResult trace;
      trace.label = a.at("label").str();
      trace.l2_color = doubles_from_json(a.at("l2_color"));
      for (const Json& s : a.at("steps").items()) {
        trace.steps.push_back(static_cast<long long>(s.number()));
      }
      trace.mean_l2_color = a.at("mean_l2_color").number();
      trace.total_steps = static_cast<long long>(a.at("total_steps").number());
      doc.grid_attacks.push_back(std::move(trace));
    }
    for (const Json& c : j.at("grid").items()) {
      GridCellResult cell;
      cell.attack = c.at("attack").str();
      cell.defense = c.at("defense").str();
      cell.victim = c.at("victim").str();
      for (const Json& r : c.at("cases").items()) {
        cell.cases.push_back({r.at("accuracy").number(), r.at("aiou").number(),
                              static_cast<long long>(r.at("points_kept").number())});
      }
      cell.mean_accuracy = c.at("mean_accuracy").number();
      cell.mean_aiou = c.at("mean_aiou").number();
      cell.mean_points_kept = c.at("mean_points_kept").number();
      doc.grid.push_back(std::move(cell));
    }
  }
  return doc;
}

RunOutcome run_spec(const ExperimentSpec& spec, ModelProvider& provider,
                    ResultStore& store, const RunOptions& options) {
  WallTimer timer;
  // Telemetry only: the root span plus a per-slot pool baseline so the
  // sidecar can report per-run pool deltas across every worker thread.
  static const obs::trace::Label kRunSpan = obs::trace::intern("runner.run_spec");
  obs::trace::ScopedSpan run_span(kRunSpan);
  const std::vector<pcss::tensor::pool::SlotStats> slots_before =
      pcss::tensor::pool::slot_stats();
  const std::string key = run_key(spec, options.scale, provider);
  const std::string doc_key = key + ".json";

  RunOutcome out;
  out.path = store.path_for(doc_key);

  if (!options.force) {
    if (auto cached = store.get(doc_key)) {
      // A document that no longer parses (hand-edited, or written by a
      // different format revision) is a miss, not a fatal error: fall
      // through and recompute under the same key.
      try {
        out.document = document_from_json(Json::parse(*cached));
        out.json = std::move(*cached);
        out.cache_hit = true;
        out.wall_seconds = timer.seconds();
        return out;
      } catch (const std::exception&) {  // parse or field errors (incl. stoull)
        out.document = RunDocument{};
        out.json.clear();
      }
    }
  }

  const int shard_size = std::max(1, options.shard_size);
  const std::vector<PointCloud> clouds =
      provider.scenes(spec.dataset, options.scale.scenes, spec.scene_seed);
  const std::span<const PointCloud> cloud_span(clouds);

  RunDocument doc;
  doc.spec = spec.name;
  doc.key = key;
  doc.kind = to_string(spec.kind);
  doc.scale = options.scale;
  doc.dataset = to_string(spec.dataset);
  doc.scene_seed = spec.scene_seed;
  doc.scene_count = static_cast<int>(clouds.size());
  doc.use_l0_distance = spec.use_l0_distance;

  ShardTelemetry telemetry(options, timer,
                           planned_shard_count(spec, clouds.size(), shard_size));

  if (spec.kind == SpecKind::kDefenseGrid) {
    execute_defense_grid(spec, provider, store, options, key, cloud_span, shard_size, doc,
                         out, telemetry);
  }

  const std::size_t attack_table_models =
      spec.kind == SpecKind::kAttackTable ? spec.models.size() : 0;
  for (std::size_t mi = 0; mi < attack_table_models; ++mi) {
    const auto model = provider.model(spec.models[mi]);
    ModelSection section;
    section.model = to_string(spec.models[mi]);
    const SegMetrics clean = pcss::core::clean_metrics(*model, clouds);
    section.clean_accuracy = clean.accuracy;
    section.clean_aiou = clean.aiou;

    // Per-cloud L2 of each finished variant, for noise calibration.
    std::map<std::string, std::vector<double>> l2_by_label;

    for (std::size_t vi = 0; vi < spec.variants.size(); ++vi) {
      const AttackVariant& variant = spec.variants[vi];
      const AttackConfig config = scaled_config(variant, options.scale);
      VariantResult vr;
      vr.label = variant.label;
      vr.kind = variant.kind;

      const std::vector<double>* calibration = nullptr;
      if (variant.kind == VariantKind::kNoiseBaseline) {
        auto it = l2_by_label.find(variant.calibrate_from);
        if (it == l2_by_label.end()) {
          throw std::invalid_argument("run_spec: variant '" + variant.label +
                                      "' calibrates from '" + variant.calibrate_from +
                                      "', which is not an earlier variant of spec '" +
                                      spec.name + "'");
        }
        calibration = &it->second;
      }

      // The shared-delta mode optimizes jointly over all clouds: one
      // indivisible unit of work, cached as a single shard.
      const std::size_t stride =
          variant.kind == VariantKind::kSharedDelta ? clouds.size()
                                                    : static_cast<std::size_t>(shard_size);
      // Telemetry only: per-shard span with a cache_hit annotation (same
      // labels as the grid path, so traces aggregate across spec kinds).
      static const obs::trace::Label kShardSpan = obs::trace::intern("runner.shard");
      static const obs::trace::Label kCacheArg = obs::trace::intern("cache_hit");
      for (std::size_t offset = 0; offset < clouds.size(); offset += stride) {
        if (options.cancel && options.cancel()) throw RunCancelled(spec.name);
        const std::size_t count = std::min(stride, clouds.size() - offset);
        const std::string shard_key = table_shard_key(key, mi, vi, offset, count);
        ++out.shards_total;
        ShardData shard;
        bool from_cache = false;
        const std::int64_t shard_start = obs::trace::now_ns();
        {
          obs::trace::ScopedSpan shard_span(kShardSpan);
          if (!options.force) {
            if (auto cached = store.get(shard_key)) {
              try {
                shard = shard_from_json(Json::parse(*cached), variant.kind);
                from_cache = true;
                ++out.shards_from_cache;
              } catch (const std::exception&) {
                shard = ShardData{};  // unreadable shard: recompute it
              }
            }
          }
          if (!from_cache) {
            switch (variant.kind) {
              case VariantKind::kPerCloud:
                shard = compute_attack_shard(*model, config, cloud_span, offset, count,
                                             spec.use_l0_distance, shard_policy(options));
                break;
              case VariantKind::kNoiseBaseline:
                shard = compute_noise_shard(*model, variant, config, cloud_span, offset,
                                            count, spec.use_l0_distance, *calibration);
                break;
              case VariantKind::kSharedDelta:
                shard =
                    compute_shared_shard(*model, config, cloud_span, shard_policy(options));
                break;
            }
            store.put(shard_key, shard_to_json(shard, variant.kind).dump() + "\n");
            if (variant.kind == VariantKind::kSharedDelta) {
              out.attack_steps += static_cast<long long>(shard.steps_used) *
                                  static_cast<long long>(count);
            } else {
              for (const CaseRow& row : shard.rows) out.attack_steps += row.steps;
            }
          }
          shard_span.arg(kCacheArg, from_cache ? 1 : 0);
        }
        telemetry.finish_shard(
            from_cache, static_cast<double>(obs::trace::now_ns() - shard_start) / 1e9,
            out);
        if (variant.kind == VariantKind::kSharedDelta) {
          vr.accuracy_before = std::move(shard.accuracy_before);
          vr.accuracy_after = std::move(shard.accuracy_after);
          vr.shared_delta_l2 = shard.delta_l2;
          vr.shared_steps = shard.steps_used;
        } else {
          vr.cases.insert(vr.cases.end(), shard.rows.begin(), shard.rows.end());
        }
      }

      if (variant.kind != VariantKind::kSharedDelta) {
        std::vector<CaseRecord> records;
        std::vector<double> l2s;
        records.reserve(vr.cases.size());
        l2s.reserve(vr.cases.size());
        for (const CaseRow& row : vr.cases) {
          records.push_back(row.record);
          l2s.push_back(row.l2_color);
          vr.total_steps += row.steps;
        }
        vr.aggregate = pcss::core::aggregate_cases(records);
        l2_by_label.emplace(vr.label, std::move(l2s));
      }
      section.variants.push_back(std::move(vr));
    }
    doc.models.push_back(std::move(section));
  }

  out.document = std::move(doc);
  out.json = document_to_json(out.document).dump() + "\n";
  store.put(doc_key, out.json);
  out.wall_seconds = timer.seconds();

  Json perf = Json::object();
  // Which kernel table executed. The document bytes are ISA-independent
  // (see the simd.h determinism contract); the sidecar records the path
  // for perf-trail forensics only.
  perf.set("simd_isa", std::string(pcss::tensor::simd::active_name()));
  perf.set("wall_seconds", out.wall_seconds);
  perf.set("attack_steps", out.attack_steps);
  perf.set("steps_per_second",
           out.wall_seconds > 0.0 ? static_cast<double>(out.attack_steps) / out.wall_seconds
                                  : 0.0);
  perf.set("shards_total", out.shards_total);
  perf.set("shards_from_cache", out.shards_from_cache);
  perf.set("num_threads", options.num_threads);
  perf.set("shard_size", shard_size);
  perf.set("fast", options.fast);
  perf.set("plan", options.plan);
  // Tensor buffer-pool telemetry, aggregated over every pool slot (one
  // per thread that ever touched the pool; exited workers' slots persist
  // with monotonic counters, so per-run numbers are before/after deltas
  // per slot). Unlike the pre-obs sidecar, the block is always present —
  // multi-threaded runs report the sum of acquires and the min/mean of
  // the per-thread hit rates instead of omitting the section.
  const std::vector<pcss::tensor::pool::SlotStats> slots_after =
      pcss::tensor::pool::slot_stats();
  std::uint64_t pool_acquires = 0, pool_hits = 0, pool_cached_floats = 0;
  double rate_min = 0.0, rate_sum = 0.0;
  int active_slots = 0;
  for (std::size_t i = 0; i < slots_after.size(); ++i) {
    const std::uint64_t acquires_0 = i < slots_before.size() ? slots_before[i].acquires : 0;
    const std::uint64_t hits_0 = i < slots_before.size() ? slots_before[i].hits : 0;
    const std::uint64_t d_acquires = slots_after[i].acquires - acquires_0;
    const std::uint64_t d_hits = slots_after[i].hits - hits_0;
    pool_cached_floats += slots_after[i].cached_floats;
    if (d_acquires == 0) continue;
    const double rate = static_cast<double>(d_hits) / static_cast<double>(d_acquires);
    rate_min = active_slots == 0 ? rate : std::min(rate_min, rate);
    rate_sum += rate;
    ++active_slots;
    pool_acquires += d_acquires;
    pool_hits += d_hits;
  }
  Json pool = Json::object();
  pool.set("acquires", static_cast<double>(pool_acquires));
  pool.set("hit_rate", pool_acquires > 0
                           ? static_cast<double>(pool_hits) /
                                 static_cast<double>(pool_acquires)
                           : 0.0);
  pool.set("hit_rate_min", active_slots > 0 ? rate_min : 0.0);
  pool.set("hit_rate_mean",
           active_slots > 0 ? rate_sum / static_cast<double>(active_slots) : 0.0);
  pool.set("threads", active_slots);
  pool.set("cached_mb", static_cast<double>(pool_cached_floats) * 4.0 / 1048576.0);
  perf.set("tensor_pool", std::move(pool));
  // Queryable metrics, folded in wholesale: the registry serializes
  // itself (deterministic name-sorted layout) and the runner re-parses
  // it, so sidecar readers see one consistent JSON document.
  obs::metrics::gauge("store.hits").set(static_cast<double>(store.hits()));
  obs::metrics::gauge("store.misses").set(static_cast<double>(store.misses()));
  perf.set("metrics", Json::parse(obs::metrics::snapshot_json()));
  store.put(key + ".perf.json", perf.dump() + "\n");
  return out;
}

namespace {

/// One claimable unit of a multi-process run: enough indices to
/// recompute the shard from global seeds, plus its store key.
struct WorkerShard {
  bool grid = false;
  std::size_t mi = 0, vi = 0;       ///< attack-table coordinates
  std::size_t offset = 0, count = 0;
  std::string key;                  ///< "shards/....json"
};

std::string lease_name_for(const WorkerShard& shard) {
  const std::size_t slash = shard.key.find_last_of('/');
  return (slash == std::string::npos ? shard.key : shard.key.substr(slash + 1)) +
         ".lease";
}

/// The worker loop's compute context: enumerates the spec's shard plan
/// (same enumeration as run_spec — the shared key helpers make drift a
/// compile-time impossibility) and computes any shard's payload bytes
/// on demand. Models and the grid setup materialize lazily, so a worker
/// whose every shard is already stored never builds a model.
class WorkerPlanner {
 public:
  WorkerPlanner(const ExperimentSpec& spec, ModelProvider& provider,
                const RunOptions& options, std::string key,
                std::span<const PointCloud> clouds)
      : spec_(spec),
        provider_(provider),
        options_(options),
        key_(std::move(key)),
        clouds_(clouds) {}

  std::vector<WorkerShard> plan() const {
    std::vector<WorkerShard> shards;
    const auto shard_size = static_cast<std::size_t>(std::max(1, options_.shard_size));
    if (spec_.kind == SpecKind::kDefenseGrid) {
      for (std::size_t offset = 0; offset < clouds_.size(); offset += shard_size) {
        const std::size_t count = std::min(shard_size, clouds_.size() - offset);
        WorkerShard shard;
        shard.grid = true;
        shard.offset = offset;
        shard.count = count;
        shard.key = grid_shard_key(key_, offset, count);
        shards.push_back(std::move(shard));
      }
      return shards;
    }
    for (std::size_t mi = 0; mi < spec_.models.size(); ++mi) {
      for (std::size_t vi = 0; vi < spec_.variants.size(); ++vi) {
        const std::size_t stride = spec_.variants[vi].kind == VariantKind::kSharedDelta
                                       ? clouds_.size()
                                       : shard_size;
        for (std::size_t offset = 0; offset < clouds_.size(); offset += stride) {
          const std::size_t count = std::min(stride, clouds_.size() - offset);
          WorkerShard shard;
          shard.mi = mi;
          shard.vi = vi;
          shard.offset = offset;
          shard.count = count;
          shard.key = table_shard_key(key_, mi, vi, offset, count);
          shards.push_back(std::move(shard));
        }
      }
    }
    return shards;
  }

  /// The exact bytes run_spec would have stored under shard.key, with
  /// live optimization steps counted into `steps`.
  std::string compute_payload(const WorkerShard& shard, ResultStore& store,
                              long long& steps) {
    if (shard.grid) {
      const GridShardData data =
          compute_grid_shard(grid(), spec_, options_, clouds_, shard.offset, shard.count);
      for (const auto& trace : data.attacks) {
        for (long long s : trace.steps) steps += s;
      }
      return grid_shard_to_json(data).dump() + "\n";
    }
    const ShardData data = compute_table_shard(shard, store, steps);
    return shard_to_json(data, spec_.variants[shard.vi].kind).dump() + "\n";
  }

 private:
  ShardData compute_table_shard(const WorkerShard& shard, ResultStore& store,
                                long long& steps) {
    const AttackVariant& variant = spec_.variants[shard.vi];
    const AttackConfig config = scaled_config(variant, options_.scale);
    SegmentationModel& model = *this->model(shard.mi);
    switch (variant.kind) {
      case VariantKind::kPerCloud: {
        const ShardData data =
            compute_attack_shard(model, config, clouds_, shard.offset, shard.count,
                                 spec_.use_l0_distance, shard_policy(options_));
        for (const CaseRow& row : data.rows) steps += row.steps;
        return data;
      }
      case VariantKind::kSharedDelta: {
        const ShardData data =
            compute_shared_shard(model, config, clouds_, shard_policy(options_));
        steps += static_cast<long long>(data.steps_used) *
                 static_cast<long long>(shard.count);
        return data;
      }
      case VariantKind::kNoiseBaseline:
        break;  // below: needs the calibration source shard first
    }
    // The noise baseline calibrates to the calibrate_from variant's
    // per-cloud L2 at the same global offsets, and the partition is
    // identical across variants — so the source lives in exactly one
    // shard: the same (offset, count) window one variant column over.
    // It is an ordinary store entry: fetched when present, computed and
    // stored when not (a worker that claims a noise shard before anyone
    // computed its source simply does both — byte-identical either way).
    WorkerShard source = shard;
    source.vi = calibrate_index(shard.vi);
    source.key = table_shard_key(key_, source.mi, source.vi, source.offset, source.count);
    const VariantKind source_kind = spec_.variants[source.vi].kind;
    ShardData source_data;
    bool have_source = false;
    if (auto cached = store.get(source.key)) {
      try {
        source_data = shard_from_json(Json::parse(*cached), source_kind);
        have_source = true;
      } catch (const std::exception&) {
        // torn or foreign bytes: recompute below
      }
    }
    if (!have_source) {
      source_data = compute_table_shard(source, store, steps);
      store.put(source.key, shard_to_json(source_data, source_kind).dump() + "\n");
    }
    std::vector<double> calibration(clouds_.size(), 0.0);
    for (std::size_t i = 0; i < source_data.rows.size(); ++i) {
      calibration[shard.offset + i] = source_data.rows[i].l2_color;
    }
    return compute_noise_shard(model, variant, config, clouds_, shard.offset, shard.count,
                               spec_.use_l0_distance, calibration);
  }

  std::size_t calibrate_index(std::size_t vi) const {
    const AttackVariant& variant = spec_.variants[vi];
    for (std::size_t i = 0; i < vi; ++i) {
      if (spec_.variants[i].label == variant.calibrate_from) return i;
    }
    throw std::invalid_argument("run_spec: variant '" + variant.label +
                                "' calibrates from '" + variant.calibrate_from +
                                "', which is not an earlier variant of spec '" +
                                spec_.name + "'");
  }

  std::shared_ptr<SegmentationModel> model(std::size_t mi) {
    auto it = models_.find(mi);
    if (it != models_.end()) return it->second;
    auto built = provider_.model(spec_.models[mi]);
    models_.emplace(mi, built);
    return built;
  }

  const GridSetup& grid() {
    if (!grid_built_) {
      grid_ = make_grid_setup(spec_, provider_, options_);
      grid_built_ = true;
    }
    return grid_;
  }

  const ExperimentSpec& spec_;
  ModelProvider& provider_;
  const RunOptions& options_;
  std::string key_;
  std::span<const PointCloud> clouds_;
  std::map<std::size_t, std::shared_ptr<SegmentationModel>> models_;
  GridSetup grid_;
  bool grid_built_ = false;
};

}  // namespace

WorkerOutcome run_spec_worker(const ExperimentSpec& spec, ModelProvider& provider,
                              ResultStore& store, const WorkerConfig& config) {
  WorkerOutcome out;
  const auto cancelled = [&] { return config.run.cancel && config.run.cancel(); };
  const std::string key = run_key(spec, config.run.scale, provider);
  if (!config.run.force && store.contains(key + ".json")) {
    out.doc_cached = true;  // assembled document exists: nothing to claim
    return out;
  }
  const std::vector<PointCloud> clouds =
      provider.scenes(spec.dataset, config.run.scale.scenes, spec.scene_seed);
  WorkerPlanner planner(spec, provider, config.run, key,
                        std::span<const PointCloud>(clouds));
  const std::vector<WorkerShard> plan = planner.plan();
  LeaseManager leases(store.root() + "/leases", config.worker_id, config.lease_ttl_ns);
  // Chaos salt = (worker, spec): each worker replays its own decision
  // stream, and a two-spec run does not reuse the first spec's stream.
  ChaosMonkey chaos = ChaosMonkey::from_env(config.worker_id + "|" + spec.name);
  obs::metrics::Counter& computed_counter = obs::metrics::counter("runner.shards.computed");
  obs::metrics::Counter& stolen_counter = obs::metrics::counter("runner.shards.stolen");
  // Worker-specific scan origin: all workers sweep the same plan, so a
  // per-worker rotation spreads first claims across the plan instead of
  // stacking every worker onto shard 0's lease.
  const std::size_t origin =
      plan.empty() ? 0 : Fnv64().update(config.worker_id).value() % plan.size();
  bool force_pass = config.run.force;
  std::int64_t last_progress_ns = obs::trace::now_ns();
  for (;;) {
    ++out.passes;
    int missing = 0;
    int computed = 0;
    for (std::size_t i = 0; i < plan.size(); ++i) {
      const WorkerShard& shard = plan[(origin + i) % plan.size()];
      if (cancelled()) {
        out.cancelled = true;  // no lease is held between shards
        return out;
      }
      if (!force_pass && store.contains(shard.key)) continue;
      ++missing;
      const std::string lease = lease_name_for(shard);
      const LeaseManager::Acquire acquired = leases.try_acquire(lease);
      if (acquired == LeaseManager::Acquire::kBusy) continue;
      // Chaos crash point A: die holding the lease with the shard
      // missing — the worst crash a steal must recover from.
      chaos.maybe_kill();
      long long steps = 0;
      const std::string payload = planner.compute_payload(shard, store, steps);
      store.put(shard.key, payload);
      leases.release(lease);
      ++computed;
      ++out.shards_computed;
      out.attack_steps += steps;
      computed_counter.add(1);
      if (acquired == LeaseManager::Acquire::kStolen) {
        ++out.shards_stolen;
        stolen_counter.add(1);
      }
      // Chaos crash point B: die at the completed-shard boundary — the
      // shard landed atomically, so a restarted run resumes past it.
      chaos.maybe_kill();
    }
    force_pass = false;
    if (cancelled()) {
      out.cancelled = true;
      return out;
    }
    if (missing == 0) break;  // full scan saw every shard in the store
    if (computed > 0) {
      last_progress_ns = obs::trace::now_ns();
      continue;  // rescan immediately; more may have freed up meanwhile
    }
    // Every missing shard is busy-leased elsewhere: wait for the
    // holders' puts to surface, or for their leases to go stale (the
    // next scan steals those). No lease is held while waiting, so
    // nobody ever waits on a waiter.
    if (obs::trace::now_ns() - last_progress_ns >
        config.lease_ttl_ns + 5LL * 1000 * 1000 * 1000) {
      // A full TTL plus margin with zero progress: stale leases should
      // have been stolen long ago, so leasing itself is broken (e.g.
      // unwritable lease directory). Correctness never depended on the
      // leases — compute the stragglers directly, at worst duplicating
      // byte-identical work.
      for (std::size_t i = 0; i < plan.size(); ++i) {
        const WorkerShard& shard = plan[(origin + i) % plan.size()];
        if (cancelled()) {
          out.cancelled = true;
          return out;
        }
        if (store.contains(shard.key)) continue;
        long long steps = 0;
        const std::string payload = planner.compute_payload(shard, store, steps);
        store.put(shard.key, payload);
        ++out.shards_computed;
        out.attack_steps += steps;
        computed_counter.add(1);
      }
      continue;  // the next scan finds nothing missing and exits
    }
    timespec ts{0, 100L * 1000 * 1000};  // 100 ms between scans
    while (::nanosleep(&ts, &ts) == -1 && errno == EINTR) {
      if (cancelled()) {
        out.cancelled = true;
        return out;
      }
    }
  }
  return out;
}

const VariantResult& find_variant(const ModelSection& section, const std::string& label) {
  for (const VariantResult& vr : section.variants) {
    if (vr.label == label) return vr;
  }
  throw std::out_of_range("find_variant: no variant labelled '" + label + "' in model '" +
                          section.model + "'");
}

void print_grid_matrix(const RunDocument& doc) {
  for (const GridAttackResult& trace : doc.grid_attacks) {
    std::printf("  [%s]  mean L2=%.2f  %lld attack steps\n", trace.label.c_str(),
                trace.mean_l2_color, trace.total_steps);
    for (const GridCellResult& cell : doc.grid) {
      if (cell.attack != trace.label) continue;
      std::printf("    %-16s x %-18s Acc=%6.2f%%  aIoU=%6.2f%%  kept=%7.1f\n",
                  cell.defense.c_str(), cell.victim.c_str(), 100.0 * cell.mean_accuracy,
                  100.0 * cell.mean_aiou, cell.mean_points_kept);
    }
  }
}

const GridCellResult& find_cell(const RunDocument& doc, const std::string& attack,
                                const std::string& defense, const std::string& victim) {
  for (const GridCellResult& cell : doc.grid) {
    if (cell.attack == attack && cell.defense == defense && cell.victim == victim) {
      return cell;
    }
  }
  throw std::out_of_range("find_cell: no cell (" + attack + ", " + defense + ", " + victim +
                          ") in document '" + doc.spec + "'");
}

}  // namespace pcss::runner
