#include "pcss/runner/zoo_provider.h"

#include <stdexcept>
#include <utility>

#include "pcss/runner/hash.h"
#include "pcss/train/checkpoint.h"

namespace pcss::runner {

ZooModelProvider::ZooModelProvider(pcss::train::ModelZoo zoo) : zoo_(std::move(zoo)) {}

std::shared_ptr<SegmentationModel> ZooModelProvider::model(ModelId id) {
  auto it = models_.find(id);
  if (it != models_.end()) return it->second;
  std::shared_ptr<SegmentationModel> model;
  switch (id) {
    case ModelId::kPointNet2Indoor: model = zoo_.pointnet2_indoor(); break;
    case ModelId::kResGCNIndoor: model = zoo_.resgcn_indoor(); break;
    case ModelId::kRandLAIndoor: model = zoo_.randla_indoor(); break;
    case ModelId::kRandLAOutdoor: model = zoo_.randla_outdoor(); break;
  }
  if (!model) throw std::runtime_error("ZooModelProvider: unknown ModelId");
  models_.emplace(id, model);
  return model;
}

std::string ZooModelProvider::model_fingerprint(ModelId id) {
  auto it = fingerprints_.find(id);
  if (it != fingerprints_.end()) return it->second;
  // The fingerprint is the checkpoint's bytes. Only materialize the
  // model when the checkpoint is missing (first ever use trains and
  // saves it); on a warm cache a document hit never builds a model.
  const std::string path = zoo_.checkpoint_path(to_string(id));
  if (!pcss::train::checkpoint_exists(path)) model(id);
  const std::string fp = hash_file_hex(path);
  fingerprints_.emplace(id, fp);
  return fp;
}

std::vector<PointCloud> ZooModelProvider::scenes(Dataset dataset, int count,
                                                 std::uint64_t seed) {
  return dataset == Dataset::kIndoor ? zoo_.indoor_eval_scenes(count, seed)
                                     : zoo_.outdoor_eval_scenes(count, seed);
}

}  // namespace pcss::runner
