#include "pcss/models/model.h"

#include "pcss/tensor/ops.h"

namespace pcss::models {

std::vector<int> SegmentationModel::predict(const PointCloud& cloud) {
  ModelInput input = ModelInput::plain(cloud);
  Tensor logits = forward(input, /*training=*/false);
  return pcss::tensor::ops::argmax_rows(logits);
}

}  // namespace pcss::models
