#include "pcss/models/pct.h"

#include <algorithm>
#include <cmath>

#include "pcss/models/assembler.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

namespace ops = pcss::tensor::ops;
using pcss::tensor::Tensor;

PctSeg::PctSeg(PctConfig config, Rng& rng)
    : config_(config),
      stem_({6, config.dim}, rng),
      head_({config.dim, config.dim, config.num_classes}, rng, /*final_activation=*/false),
      dropout_rng_(config.dropout_seed) {
  for (int b = 0; b < config_.layers; ++b) {
    Block block;
    block.q = std::make_unique<pcss::tensor::nn::Linear>(config_.dim, config_.dim, rng,
                                                         /*bias=*/false);
    block.k = std::make_unique<pcss::tensor::nn::Linear>(config_.dim, config_.dim, rng,
                                                         /*bias=*/false);
    block.v = std::make_unique<pcss::tensor::nn::Linear>(config_.dim, config_.dim, rng,
                                                         /*bias=*/false);
    block.pos = std::make_unique<pcss::tensor::nn::Mlp>(
        std::vector<std::int64_t>{3, config_.dim}, rng);
    block.out = std::make_unique<pcss::tensor::nn::Mlp>(
        std::vector<std::int64_t>{config_.dim, config_.dim}, rng);
    blocks_.push_back(std::move(block));
  }
}

Tensor PctSeg::forward(const ModelInput& input, bool training) {
  AssembledInput a = assemble_input(input, CoordConvention::kMinusOneToOne,
                                    /*with_normalized_extra=*/false);
  const std::int64_t n = static_cast<std::int64_t>(a.graph_positions.size());
  const int k = static_cast<int>(std::min<std::int64_t>(config_.k, n));
  const auto idx = pcss::pointcloud::knn_self(a.graph_positions, k, /*include_self=*/true);
  const float inv_sqrt_dim = 1.0f / std::sqrt(static_cast<float>(config_.dim));

  Tensor h = stem_.forward(a.features, training);
  for (auto& block : blocks_) {
    Tensor q = block.q->forward(h);
    Tensor key = block.k->forward(h);
    Tensor val = block.v->forward(h);
    Tensor k_j = ops::gather_rows(key, idx);
    Tensor v_j = ops::gather_rows(val, idx);
    // Learned relative-position encoding added to keys and values
    // (the PCT positional term; keeps coordinate gradients alive).
    Tensor rel =
        ops::sub(ops::gather_rows(a.positions, idx), ops::repeat_rows(a.positions, k));
    Tensor pe = block.pos->forward(rel, training);
    k_j = ops::add(k_j, pe);
    v_j = ops::add(v_j, pe);

    Tensor q_i = ops::repeat_rows(q, k);
    Tensor scores = ops::scale(ops::row_sum(ops::mul(q_i, k_j)), inv_sqrt_dim);
    Tensor att = ops::segment_softmax(scores, k);  // [N*k, 1]
    // Fused row broadcast: weights each value row by its attention score
    // without materializing the [N*k, dim] broadcast matrix.
    Tensor pooled = ops::segment_sum(ops::mul_rows(v_j, att), k);  // [N, dim]
    // Residual. Not add_inplace: the block output ends in bn_relu_eval,
    // whose backward reads its own output, so the buffer is not stealable.
    h = ops::add(h, block.out->forward(pooled, training));
  }
  Tensor d = ops::dropout(h, config_.dropout, dropout_rng_, training);
  return head_.forward(d, training);
}

std::vector<pcss::tensor::nn::NamedParam> PctSeg::named_params() {
  std::vector<pcss::tensor::nn::NamedParam> out;
  stem_.collect_params("stem.", out);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const std::string p = "block" + std::to_string(b) + ".";
    blocks_[b].q->collect_params(p + "q.", out);
    blocks_[b].k->collect_params(p + "k.", out);
    blocks_[b].v->collect_params(p + "v.", out);
    blocks_[b].pos->collect_params(p + "pos.", out);
    blocks_[b].out->collect_params(p + "out.", out);
  }
  head_.collect_params("head.", out);
  return out;
}

std::vector<pcss::tensor::nn::NamedBuffer> PctSeg::named_buffers() {
  std::vector<pcss::tensor::nn::NamedBuffer> out;
  stem_.collect_buffers("stem.", out);
  for (size_t b = 0; b < blocks_.size(); ++b) {
    const std::string p = "block" + std::to_string(b) + ".";
    blocks_[b].pos->collect_buffers(p + "pos.", out);
    blocks_[b].out->collect_buffers(p + "out.", out);
  }
  head_.collect_buffers("head.", out);
  return out;
}

}  // namespace pcss::models
