#pragma once

#include <memory>
#include <vector>

#include "pcss/models/model.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/rng.h"

namespace pcss::models {

using pcss::tensor::Rng;

/// CPU-scaled ResGCN / DeepGCN segmentation (paper target #2).
///
/// Residual EdgeConv blocks over a dilated kNN graph that is rebuilt from
/// the (possibly perturbed) coordinates on every forward pass — the
/// dynamic-graph property behind the paper's Finding 1 (coordinate
/// perturbation changes >88% of neighborhoods). The reference ResGCN-28
/// uses k=16 and 28 blocks; this port defaults to k=12 and 5 blocks with
/// the same block structure. Coordinates are normalized to [-1,1] and
/// color to [0,1] (paper §V-A).
struct ResGCNConfig {
  int num_classes = 13;
  int k = 12;
  int blocks = 5;
  int max_dilation = 2;  ///< block b uses dilation 1 + (b % max_dilation)
  std::int64_t channels = 32;
  float dropout = 0.3f;
  std::uint64_t dropout_seed = 11;
};

class ResGCNSeg : public SegmentationModel {
 public:
  ResGCNSeg(ResGCNConfig config, Rng& rng);

  std::string name() const override { return "ResGCN"; }
  int num_classes() const override { return config_.num_classes; }
  Tensor forward(const ModelInput& input, bool training) override;
  std::vector<pcss::tensor::nn::NamedParam> named_params() override;
  std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() override;

  const ResGCNConfig& config() const { return config_; }

 private:
  ResGCNConfig config_;
  pcss::tensor::nn::Mlp stem_;
  std::vector<std::unique_ptr<pcss::tensor::nn::Mlp>> block_mlps_;
  pcss::tensor::nn::Mlp head_;
  Rng dropout_rng_;
};

}  // namespace pcss::models
