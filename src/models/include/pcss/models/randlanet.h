#pragma once

#include <memory>
#include <vector>

#include "pcss/models/model.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/rng.h"

namespace pcss::models {

using pcss::tensor::Rng;

/// CPU-scaled RandLA-Net segmentation (paper target #3).
///
/// Random-sampling encoder ladder with Local Spatial Encoding (LocSE:
/// [p_i | p_j | p_i - p_j | dist]) and attentive pooling, nearest-neighbor
/// decoder with skip connections. Input coordinates are recentered and
/// color kept in [0,1]; the input cloud is regenerated through a random
/// permutation, mirroring RandLA-Net's duplicate/select step (at fixed
/// size the step reduces to a shuffle — see DESIGN.md substitutions).
/// Sampling uses a fixed seed per forward so predictions are
/// deterministic; the paper's coordinate attack is not supported for this
/// model (its own limitation (2)).
struct RandLANetConfig {
  int num_classes = 8;
  int k = 12;
  int down1 = 4;  ///< N -> N/down1
  int down2 = 4;  ///< N/down1 -> /down2
  std::int64_t c1 = 16;
  std::int64_t c2 = 32;
  std::int64_t c3 = 64;
  std::uint64_t sample_seed = 42;
};

class RandLANetSeg : public SegmentationModel {
 public:
  RandLANetSeg(RandLANetConfig config, Rng& rng);

  std::string name() const override { return "RandLA-Net"; }
  int num_classes() const override { return config_.num_classes; }
  Tensor forward(const ModelInput& input, bool training) override;
  std::vector<pcss::tensor::nn::NamedParam> named_params() override;
  std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() override;

  const RandLANetConfig& config() const { return config_; }

 private:
  /// LocSE + attentive pooling block parameters.
  struct Lfa {
    std::unique_ptr<pcss::tensor::nn::Mlp> pos_mlp;     // 10 -> cmid
    std::unique_ptr<pcss::tensor::nn::Mlp> shared_mlp;  // cmid+cin -> cout
    std::unique_ptr<pcss::tensor::nn::Linear> score;    // cout -> cout
  };

  Tensor apply_lfa(const Lfa& lfa, const Tensor& feats, const Tensor& pos_tensor,
                   const std::vector<Vec3>& graph_pos, bool training);

  RandLANetConfig config_;
  pcss::tensor::nn::Mlp stem_;
  Lfa lfa1_, lfa2_, lfa3_;
  pcss::tensor::nn::Mlp dec2_;
  pcss::tensor::nn::Mlp dec1_;
  pcss::tensor::nn::Mlp head_;
};

}  // namespace pcss::models
