#pragma once

#include <vector>

#include "pcss/models/model.h"
#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

/// The normalization convention a model applies to raw cloud fields
/// (paper §V-A: PointNet++ maps coordinates to [0,3] and color to [0,1];
/// ResGCN-28 maps coordinates to [-1,1]; RandLA-Net recenters them).
enum class CoordConvention {
  kZeroToThree,   ///< (p - min) / max_extent * 3        (PointNet++)
  kMinusOneToOne, ///< (p - center) / (max_extent / 2)   (ResGCN-28)
  kCentered,      ///< p - bbox center, unscaled         (RandLA-Net)
};

/// Differentiable raw-input -> feature-matrix pipeline.
///
/// The result exposes:
///  * `features`   — [N, F] autograd tensor with deltas spliced in,
///  * `positions`  — [N, 3] autograd view of the normalized coordinates
///                   (column slice of `features`), used for relative-
///                   position encodings so coordinate gradients flow,
///  * `graph_positions` — plain values of the normalized, perturbed
///                   coordinates, used to (re)build kNN/FPS structures.
///
/// Normalization constants (bbox) are always computed from the *raw*
/// cloud so the pipeline stays affine in the deltas.
struct AssembledInput {
  Tensor features;
  Tensor positions;
  std::vector<Vec3> graph_positions;
  int feature_count = 0;
};

/// Assembles the input for a model with layout
///   [coords(3) | color(3) | extra-normalized coords(3)?]
/// where the trailing block is the S3DIS 9-feature convention
/// (per-axis position in [0,1]); pass with_normalized_extra=false for
/// the 6-feature models.
AssembledInput assemble_input(const ModelInput& input, CoordConvention convention,
                              bool with_normalized_extra);

}  // namespace pcss::models
