#pragma once

#include <memory>

#include "pcss/models/model.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/rng.h"

namespace pcss::models {

using pcss::tensor::Rng;

/// CPU-scaled PointNet++ semantic segmentation (paper target #1).
///
/// Encoder: two set-abstraction levels (farthest-point sampling + kNN
/// grouping + shared MLP + max pool). Decoder: two feature-propagation
/// levels (3-NN inverse-distance interpolation + skip concat + MLP).
/// Input follows the S3DIS 9-feature convention with coordinates
/// normalized to [0,3] and color to [0,1] (paper §V-A).
struct PointNet2Config {
  int num_classes = 13;
  int k = 16;           ///< grouping neighborhood
  int sa1_ratio = 4;    ///< N -> N/sa1_ratio centroids
  int sa2_ratio = 4;    ///< N/sa1_ratio -> /sa2_ratio
  std::int64_t c1 = 32;
  std::int64_t c2 = 64;
  std::int64_t head = 64;
  float dropout = 0.5f;
  std::uint64_t dropout_seed = 7;
};

class PointNet2Seg : public SegmentationModel {
 public:
  PointNet2Seg(PointNet2Config config, Rng& rng);

  std::string name() const override { return "PointNet++"; }
  int num_classes() const override { return config_.num_classes; }
  Tensor forward(const ModelInput& input, bool training) override;
  std::vector<pcss::tensor::nn::NamedParam> named_params() override;
  std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() override;

  const PointNet2Config& config() const { return config_; }

 private:
  PointNet2Config config_;
  pcss::tensor::nn::Mlp sa1_mlp_;
  pcss::tensor::nn::Mlp sa2_mlp_;
  pcss::tensor::nn::Mlp fp1_mlp_;
  pcss::tensor::nn::Mlp fp2_mlp_;
  pcss::tensor::nn::Mlp head_mlp_;
  Rng dropout_rng_;
};

}  // namespace pcss::models
