#pragma once

#include <cstdint>
#include <vector>

#include "pcss/pointcloud/point_cloud.h"

namespace pcss::models {

using pcss::pointcloud::Vec3;

/// Inverse-distance interpolation weights: for each query point, its k
/// nearest reference points and normalized 1/d^2 weights (PointNet++
/// feature-propagation upsampling; k=1 degenerates to nearest-neighbor).
void interpolation_weights(const std::vector<Vec3>& reference,
                           const std::vector<Vec3>& queries, int k,
                           std::vector<std::int64_t>& idx_out,
                           std::vector<float>& weights_out);

/// For dilated kNN: from a [n * (k*dilation)] neighbor table keep every
/// `dilation`-th column, yielding [n * k].
std::vector<std::int64_t> dilate_neighbors(const std::vector<std::int64_t>& idx,
                                           std::int64_t n, int k, int dilation);

}  // namespace pcss::models
