#pragma once

#include <string>
#include <vector>

#include "pcss/pointcloud/point_cloud.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/tensor.h"

namespace pcss::models {

using pcss::pointcloud::PointCloud;
using pcss::pointcloud::Vec3;
using pcss::tensor::Tensor;

/// Input to a segmentation model: a raw cloud plus optional perturbation
/// tensors. Deltas are in *raw* units — color in [0,1] RGB space,
/// coordinates in meters — and are normalized by the model's own input
/// convention inside forward(), so the attacker's gradient reflects the
/// model's normalization exactly (the paper's Eq. 7 pre-processing hook).
struct ModelInput {
  const PointCloud* cloud = nullptr;
  Tensor color_delta;  ///< optional [N,3], added to colors
  Tensor coord_delta;  ///< optional [N,3], added to positions

  static ModelInput plain(const PointCloud& cloud) { return {&cloud, {}, {}}; }
};

/// Common interface of the three PCSS families evaluated in the paper.
///
/// forward() is define-by-run: neighbor graphs are rebuilt from the
/// (possibly perturbed) positions every call, which is what makes the
/// coordinate-based attack outcome unstable under point sampling
/// (paper §V-B, Finding 1).
class SegmentationModel {
 public:
  virtual ~SegmentationModel() = default;

  virtual std::string name() const = 0;
  virtual int num_classes() const = 0;

  /// Per-point logits [N, num_classes].
  virtual Tensor forward(const ModelInput& input, bool training) = 0;

  /// True when an eval-mode forward over a *fixed* cloud builds the same
  /// graph shape every call (sampling from a per-call fixed seed, neighbor
  /// graphs a pure function of positions), making the step replayable by a
  /// compiled plan (pcss/tensor/plan.h). Wrappers that inject step-varying
  /// structure (stochastic defenses) must override this to false.
  virtual bool plan_safe_forward() const { return true; }

  /// All trainable parameters with hierarchical names (for checkpoints).
  virtual std::vector<pcss::tensor::nn::NamedParam> named_params() = 0;
  /// Non-trainable state (batch-norm running statistics).
  virtual std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() = 0;

  std::vector<Tensor> parameters() {
    std::vector<Tensor> out;
    for (auto& p : named_params()) out.push_back(p.tensor);
    return out;
  }

  /// Predicted label per point (eval mode, no perturbation).
  std::vector<int> predict(const PointCloud& cloud);
};

/// Positions after applying an optional coordinate delta.
std::vector<Vec3> effective_positions(const ModelInput& input);

}  // namespace pcss::models
