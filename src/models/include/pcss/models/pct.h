#pragma once

#include <memory>
#include <vector>

#include "pcss/models/model.h"
#include "pcss/tensor/nn.h"
#include "pcss/tensor/rng.h"

namespace pcss::models {

using pcss::tensor::Rng;

/// CPU-scaled Point Cloud Transformer segmentation (the paper's §VI
/// "Other models" extension: "We expect our attacks to be applicable to
/// the models which generate gradients. One example is Point Cloud
/// Transformer (PCT)"). Local self-attention over kNN neighborhoods with
/// learned relative-position encodings and residual blocks — gradients
/// flow to both color and coordinates exactly as for the other families,
/// so the full attack framework applies unchanged.
struct PctConfig {
  int num_classes = 13;
  int k = 12;       ///< attention neighborhood
  int layers = 2;   ///< residual attention blocks
  std::int64_t dim = 32;
  std::uint64_t dropout_seed = 13;
  float dropout = 0.3f;
};

class PctSeg : public SegmentationModel {
 public:
  PctSeg(PctConfig config, Rng& rng);

  std::string name() const override { return "PCT"; }
  int num_classes() const override { return config_.num_classes; }
  Tensor forward(const ModelInput& input, bool training) override;
  std::vector<pcss::tensor::nn::NamedParam> named_params() override;
  std::vector<pcss::tensor::nn::NamedBuffer> named_buffers() override;

  const PctConfig& config() const { return config_; }

 private:
  /// One local self-attention block's parameters.
  struct Block {
    std::unique_ptr<pcss::tensor::nn::Linear> q, k, v;
    std::unique_ptr<pcss::tensor::nn::Mlp> pos;  ///< rel-pos encoding 3 -> dim
    std::unique_ptr<pcss::tensor::nn::Mlp> out;  ///< post-attention LBR
  };

  PctConfig config_;
  pcss::tensor::nn::Mlp stem_;
  std::vector<Block> blocks_;
  pcss::tensor::nn::Mlp head_;
  Rng dropout_rng_;
};

}  // namespace pcss::models
