#include "pcss/models/resgcn.h"

#include <algorithm>

#include "pcss/models/assembler.h"
#include "pcss/models/common.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

namespace ops = pcss::tensor::ops;
using pcss::tensor::Tensor;

ResGCNSeg::ResGCNSeg(ResGCNConfig config, Rng& rng)
    : config_(config),
      stem_({6, config.channels}, rng),
      head_({config.channels, config.channels, config.num_classes}, rng,
            /*final_activation=*/false),
      dropout_rng_(config.dropout_seed) {
  for (int b = 0; b < config_.blocks; ++b) {
    block_mlps_.push_back(std::make_unique<pcss::tensor::nn::Mlp>(
        std::vector<std::int64_t>{2 * config_.channels, config_.channels}, rng));
  }
}

Tensor ResGCNSeg::forward(const ModelInput& input, bool training) {
  AssembledInput a = assemble_input(input, CoordConvention::kMinusOneToOne,
                                    /*with_normalized_extra=*/false);
  const std::int64_t n = static_cast<std::int64_t>(a.graph_positions.size());
  const int k = static_cast<int>(std::min<std::int64_t>(config_.k, n));
  const int wide_k =
      static_cast<int>(std::min<std::int64_t>(static_cast<std::int64_t>(k) *
                                                  config_.max_dilation,
                                              n));
  // One wide kNN table per forward; blocks take dilated strides of it.
  const auto wide_idx = pcss::pointcloud::knn_self(a.graph_positions, wide_k,
                                                   /*include_self=*/true);

  Tensor h = stem_.forward(a.features, training);
  for (int b = 0; b < config_.blocks; ++b) {
    const int dilation =
        std::min(1 + (b % config_.max_dilation), std::max(wide_k / k, 1));
    const auto idx = dilate_neighbors(wide_idx, n, k, dilation);
    // Fused [x_i | x_j - x_i] edge assembly: one node instead of the
    // gather/repeat/sub/concat chain and its three [N*k, *] temporaries.
    Tensor edge = ops::edge_features(h, idx, k);
    Tensor msg = block_mlps_[static_cast<size_t>(b)]->forward(edge, training);
    // Residual connection; the pooled message uniquely owns its buffer,
    // so the add runs in place.
    h = ops::add_inplace(ops::segment_max(msg, k), h);
  }
  Tensor d = ops::dropout(h, config_.dropout, dropout_rng_, training);
  return head_.forward(d, training);
}

std::vector<pcss::tensor::nn::NamedParam> ResGCNSeg::named_params() {
  std::vector<pcss::tensor::nn::NamedParam> out;
  stem_.collect_params("stem.", out);
  for (size_t b = 0; b < block_mlps_.size(); ++b) {
    block_mlps_[b]->collect_params("block" + std::to_string(b) + ".", out);
  }
  head_.collect_params("head.", out);
  return out;
}

std::vector<pcss::tensor::nn::NamedBuffer> ResGCNSeg::named_buffers() {
  std::vector<pcss::tensor::nn::NamedBuffer> out;
  stem_.collect_buffers("stem.", out);
  for (size_t b = 0; b < block_mlps_.size(); ++b) {
    block_mlps_[b]->collect_buffers("block" + std::to_string(b) + ".", out);
  }
  head_.collect_buffers("head.", out);
  return out;
}

}  // namespace pcss::models
