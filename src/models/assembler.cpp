#include "pcss/models/assembler.h"

#include <algorithm>
#include <cmath>

#include "pcss/tensor/pool.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

namespace ops = pcss::tensor::ops;
using pcss::pointcloud::BBox;
using pcss::pointcloud::compute_bbox;

std::vector<Vec3> effective_positions(const ModelInput& input) {
  const PointCloud& cloud = *input.cloud;
  std::vector<Vec3> out = cloud.positions;
  if (input.coord_delta.defined()) {
    const float* d = input.coord_delta.data();
    for (size_t i = 0; i < out.size(); ++i) {
      for (int a = 0; a < 3; ++a) out[i][a] += d[i * 3 + static_cast<size_t>(a)];
    }
  }
  return out;
}

AssembledInput assemble_input(const ModelInput& input, CoordConvention convention,
                              bool with_normalized_extra) {
  const PointCloud& cloud = *input.cloud;
  const std::int64_t n = cloud.size();
  const int f = with_normalized_extra ? 9 : 6;
  const BBox box = compute_bbox(cloud.positions);
  const float max_ext = std::max(box.max_extent(), 1e-6f);
  const Vec3 ext = box.extent();

  // Per-axis affine maps for the leading coordinate block.
  Vec3 coord_scale{0, 0, 0}, coord_offset{0, 0, 0};
  switch (convention) {
    case CoordConvention::kZeroToThree:
      for (int a = 0; a < 3; ++a) {
        coord_scale[a] = 3.0f / max_ext;
        coord_offset[a] = -box.min[a] * coord_scale[a];
      }
      break;
    case CoordConvention::kMinusOneToOne:
      for (int a = 0; a < 3; ++a) {
        coord_scale[a] = 2.0f / max_ext;
        coord_offset[a] = -box.center()[a] * coord_scale[a];
      }
      break;
    case CoordConvention::kCentered:
      for (int a = 0; a < 3; ++a) {
        coord_scale[a] = 1.0f;
        coord_offset[a] = -box.center()[a];
      }
      break;
  }

  // Base feature matrix from the raw (unperturbed) cloud, assembled
  // directly in a pooled (32-byte aligned) buffer so from_buffer can
  // adopt it without a copy — this runs on every model forward.
  pcss::tensor::FloatBuffer base =
      pcss::tensor::pool::acquire(static_cast<size_t>(n * f));
  for (std::int64_t i = 0; i < n; ++i) {
    const Vec3& p = cloud.positions[static_cast<size_t>(i)];
    const Vec3& c = cloud.colors[static_cast<size_t>(i)];
    float* row = base.data() + i * f;
    for (int a = 0; a < 3; ++a) row[a] = p[a] * coord_scale[a] + coord_offset[a];
    for (int a = 0; a < 3; ++a) row[3 + a] = c[a];
    if (with_normalized_extra) {
      for (int a = 0; a < 3; ++a) {
        row[6 + a] = (p[a] - box.min[a]) / std::max(ext[a], 1e-6f);
      }
    }
  }
  Tensor features = Tensor::from_buffer({n, f}, std::move(base));

  // Splice the perturbations in. Color is 1:1; coordinates are scaled by
  // the same affine map as the base block (constants, so gradients are
  // exact).
  if (input.color_delta.defined()) {
    features = ops::scatter_add_cols(features, input.color_delta, 3);
  }
  if (input.coord_delta.defined()) {
    pcss::tensor::FloatBuffer scale_main =
        pcss::tensor::pool::acquire(static_cast<size_t>(n * 3));
    for (std::int64_t i = 0; i < n; ++i) {
      for (int a = 0; a < 3; ++a) scale_main[i * 3 + a] = coord_scale[a];
    }
    Tensor scaled =
        ops::mul(input.coord_delta, Tensor::from_buffer({n, 3}, std::move(scale_main)));
    features = ops::scatter_add_cols(features, scaled, 0);
    if (with_normalized_extra) {
      pcss::tensor::FloatBuffer scale_extra =
          pcss::tensor::pool::acquire(static_cast<size_t>(n * 3));
      for (std::int64_t i = 0; i < n; ++i) {
        for (int a = 0; a < 3; ++a) scale_extra[i * 3 + a] = 1.0f / std::max(ext[a], 1e-6f);
      }
      Tensor scaled_extra =
          ops::mul(input.coord_delta, Tensor::from_buffer({n, 3}, std::move(scale_extra)));
      features = ops::scatter_add_cols(features, scaled_extra, 6);
    }
  }

  AssembledInput out;
  out.features = features;
  out.positions = ops::slice_cols(features, 0, 3);
  out.feature_count = f;
  out.graph_positions.resize(static_cast<size_t>(n));
  const float* pd = out.positions.data();
  for (std::int64_t i = 0; i < n; ++i) {
    out.graph_positions[static_cast<size_t>(i)] = {pd[i * 3], pd[i * 3 + 1], pd[i * 3 + 2]};
  }
  return out;
}

}  // namespace pcss::models
