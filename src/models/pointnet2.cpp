#include "pcss/models/pointnet2.h"

#include <algorithm>

#include "pcss/models/assembler.h"
#include "pcss/models/common.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/sampling.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

namespace ops = pcss::tensor::ops;
using pcss::pointcloud::farthest_point_sample;
using pcss::pointcloud::knn_query;
using pcss::tensor::Tensor;

PointNet2Seg::PointNet2Seg(PointNet2Config config, Rng& rng)
    : config_(config),
      sa1_mlp_({3 + 9, config.c1, config.c1}, rng),
      sa2_mlp_({3 + config.c1, config.c2, config.c2}, rng),
      fp1_mlp_({config.c2 + config.c1, config.c2}, rng),
      fp2_mlp_({config.c2 + 9, config.head}, rng),
      head_mlp_({config.head, config.head, config.num_classes}, rng,
                /*final_activation=*/false),
      dropout_rng_(config.dropout_seed) {}

namespace {

/// One set-abstraction level: FPS centroids, kNN grouping, shared MLP on
/// [relative position | neighbor features], max pool per group.
struct SaResult {
  Tensor features;                 // [M, C_out]
  Tensor positions;                // [M, 3] autograd
  std::vector<Vec3> graph_positions;  // plain values for the next level
};

SaResult set_abstraction(const Tensor& feats, const Tensor& pos_tensor,
                         const std::vector<Vec3>& graph_pos, int ratio, int k,
                         pcss::tensor::nn::Mlp& mlp, bool training) {
  const std::int64_t n = static_cast<std::int64_t>(graph_pos.size());
  const std::int64_t m = std::max<std::int64_t>(n / ratio, 1);
  const auto centroid_idx = farthest_point_sample(graph_pos, m);
  std::vector<Vec3> centroid_pos(static_cast<size_t>(m));
  for (std::int64_t i = 0; i < m; ++i) {
    centroid_pos[static_cast<size_t>(i)] = graph_pos[static_cast<size_t>(centroid_idx[i])];
  }
  const int kk = static_cast<int>(std::min<std::int64_t>(k, n));
  const auto nbr_idx = knn_query(graph_pos, centroid_pos, kk);

  Tensor cent_pos = ops::gather_rows(pos_tensor, centroid_idx);
  // Fused grouping: neighbor-minus-centroid rows in one node instead of
  // the gather/repeat/sub chain.
  Tensor rel = ops::gather_sub_rows(pos_tensor, nbr_idx, centroid_idx, kk);
  Tensor grouped = ops::concat_cols(rel, ops::gather_rows(feats, nbr_idx));
  Tensor h = mlp.forward(grouped, training);
  SaResult out;
  out.features = ops::segment_max(h, kk);
  out.positions = cent_pos;
  out.graph_positions = std::move(centroid_pos);
  return out;
}

/// Feature propagation: 3-NN inverse-distance upsample + skip concat + MLP.
Tensor feature_propagation(const Tensor& coarse_feats,
                           const std::vector<Vec3>& coarse_pos,
                           const Tensor& skip_feats, const std::vector<Vec3>& fine_pos,
                           pcss::tensor::nn::Mlp& mlp, bool training) {
  std::vector<std::int64_t> idx;
  std::vector<float> w;
  interpolation_weights(coarse_pos, fine_pos, 3, idx, w);
  const std::int64_t kk = static_cast<std::int64_t>(idx.size()) /
                          static_cast<std::int64_t>(fine_pos.size());
  Tensor up = ops::weighted_gather_rows(coarse_feats, idx, w, kk);
  return mlp.forward(ops::concat_cols(up, skip_feats), training);
}

}  // namespace

Tensor PointNet2Seg::forward(const ModelInput& input, bool training) {
  AssembledInput a = assemble_input(input, CoordConvention::kZeroToThree,
                                    /*with_normalized_extra=*/true);

  SaResult sa1 = set_abstraction(a.features, a.positions, a.graph_positions,
                                 config_.sa1_ratio, config_.k, sa1_mlp_, training);
  SaResult sa2 = set_abstraction(sa1.features, sa1.positions, sa1.graph_positions,
                                 config_.sa2_ratio, config_.k, sa2_mlp_, training);

  Tensor fp1 = feature_propagation(sa2.features, sa2.graph_positions, sa1.features,
                                   sa1.graph_positions, fp1_mlp_, training);
  Tensor fp2 = feature_propagation(fp1, sa1.graph_positions, a.features,
                                   a.graph_positions, fp2_mlp_, training);

  Tensor h = ops::dropout(fp2, config_.dropout, dropout_rng_, training);
  return head_mlp_.forward(h, training);
}

std::vector<pcss::tensor::nn::NamedParam> PointNet2Seg::named_params() {
  std::vector<pcss::tensor::nn::NamedParam> out;
  sa1_mlp_.collect_params("sa1.", out);
  sa2_mlp_.collect_params("sa2.", out);
  fp1_mlp_.collect_params("fp1.", out);
  fp2_mlp_.collect_params("fp2.", out);
  head_mlp_.collect_params("head.", out);
  return out;
}

std::vector<pcss::tensor::nn::NamedBuffer> PointNet2Seg::named_buffers() {
  std::vector<pcss::tensor::nn::NamedBuffer> out;
  sa1_mlp_.collect_buffers("sa1.", out);
  sa2_mlp_.collect_buffers("sa2.", out);
  fp1_mlp_.collect_buffers("fp1.", out);
  fp2_mlp_.collect_buffers("fp2.", out);
  head_mlp_.collect_buffers("head.", out);
  return out;
}

}  // namespace pcss::models
