#include "pcss/models/randlanet.h"

#include <algorithm>
#include <numeric>

#include "pcss/models/assembler.h"
#include "pcss/models/common.h"
#include "pcss/pointcloud/knn.h"
#include "pcss/pointcloud/sampling.h"
#include "pcss/tensor/ops.h"

namespace pcss::models {

namespace ops = pcss::tensor::ops;
using pcss::pointcloud::duplicate_or_select;
using pcss::pointcloud::knn_self;
using pcss::pointcloud::random_sample;
using pcss::tensor::Tensor;

namespace {

std::unique_ptr<pcss::tensor::nn::Mlp> make_mlp(std::vector<std::int64_t> widths, Rng& rng) {
  return std::make_unique<pcss::tensor::nn::Mlp>(std::move(widths), rng);
}

}  // namespace

RandLANetSeg::RandLANetSeg(RandLANetConfig config, Rng& rng)
    : config_(config),
      stem_({6, config.c1}, rng),
      dec2_({config.c3 + config.c3, config.c2}, rng),
      dec1_({config.c2 + config.c2, config.c2}, rng),
      head_({config.c2, config.c2, config.num_classes}, rng, /*final_activation=*/false) {
  const std::int64_t cmid = config_.c1;
  lfa1_ = {make_mlp({10, cmid}, rng), make_mlp({cmid + config_.c1, config_.c2}, rng),
           std::make_unique<pcss::tensor::nn::Linear>(config_.c2, config_.c2, rng)};
  lfa2_ = {make_mlp({10, cmid}, rng), make_mlp({cmid + config_.c2, config_.c3}, rng),
           std::make_unique<pcss::tensor::nn::Linear>(config_.c3, config_.c3, rng)};
  lfa3_ = {make_mlp({10, cmid}, rng), make_mlp({cmid + config_.c3, config_.c3}, rng),
           std::make_unique<pcss::tensor::nn::Linear>(config_.c3, config_.c3, rng)};
}

Tensor RandLANetSeg::apply_lfa(const Lfa& lfa, const Tensor& feats, const Tensor& pos_tensor,
                               const std::vector<Vec3>& graph_pos, bool training) {
  const std::int64_t n = static_cast<std::int64_t>(graph_pos.size());
  const int k = static_cast<int>(std::min<std::int64_t>(config_.k, n));
  const auto idx = knn_self(graph_pos, k, /*include_self=*/true);

  Tensor p_j = ops::gather_rows(pos_tensor, idx);
  Tensor p_i = ops::repeat_rows(pos_tensor, k);
  Tensor diff = ops::sub(p_j, p_i);
  Tensor dist = ops::sqrt_op(ops::row_sum(ops::square(diff)));
  // LocSE: [p_i | p_j | p_i - p_j | dist] -> positional encoding, built
  // with the fused 4-way concat (one pass, no intermediate pairs).
  Tensor locse = ops::concat_cols4(p_i, p_j, diff, dist);
  Tensor pe = lfa.pos_mlp->forward(locse, training);

  Tensor f_j = ops::gather_rows(feats, idx);
  Tensor g = lfa.shared_mlp->forward(ops::concat_cols(pe, f_j), training);
  // Attentive pooling: per-channel softmax over the k neighbors.
  Tensor att = ops::segment_softmax(lfa.score->forward(g), k);
  return ops::segment_sum(ops::mul(g, att), k);
}

Tensor RandLANetSeg::forward(const ModelInput& input, bool training) {
  AssembledInput a = assemble_input(input, CoordConvention::kCentered,
                                    /*with_normalized_extra=*/false);
  const std::int64_t n = static_cast<std::int64_t>(a.graph_positions.size());
  Rng sample_rng(config_.sample_seed);

  // Input regeneration (duplicate/select; a shuffle at fixed size).
  const auto perm = duplicate_or_select(n, n, sample_rng);
  std::vector<std::int64_t> inverse(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) inverse[static_cast<size_t>(perm[i])] = i;

  Tensor feat0 = ops::gather_rows(a.features, perm);
  Tensor pos0_t = ops::gather_rows(a.positions, perm);
  std::vector<Vec3> pos0(static_cast<size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    pos0[static_cast<size_t>(i)] = a.graph_positions[static_cast<size_t>(perm[i])];
  }

  // Encoder.
  Tensor enc0 = stem_.forward(feat0, training);
  Tensor enc1 = apply_lfa(lfa1_, enc0, pos0_t, pos0, training);  // [N, c2]

  const std::int64_t n1 = std::max<std::int64_t>(n / config_.down1, 1);
  const auto sub1 = random_sample(n, n1, sample_rng);
  Tensor f1 = ops::gather_rows(enc1, sub1);
  Tensor pos1_t = ops::gather_rows(pos0_t, sub1);
  std::vector<Vec3> pos1(static_cast<size_t>(n1));
  for (std::int64_t i = 0; i < n1; ++i) {
    pos1[static_cast<size_t>(i)] = pos0[static_cast<size_t>(sub1[i])];
  }
  Tensor encA = apply_lfa(lfa2_, f1, pos1_t, pos1, training);  // [N/4, c3]

  const std::int64_t n2 = std::max<std::int64_t>(n1 / config_.down2, 1);
  const auto sub2 = random_sample(n1, n2, sample_rng);
  Tensor f2 = ops::gather_rows(encA, sub2);
  Tensor pos2_t = ops::gather_rows(pos1_t, sub2);
  std::vector<Vec3> pos2(static_cast<size_t>(n2));
  for (std::int64_t i = 0; i < n2; ++i) {
    pos2[static_cast<size_t>(i)] = pos1[static_cast<size_t>(sub2[i])];
  }
  Tensor encB = apply_lfa(lfa3_, f2, pos2_t, pos2, training);  // [N/16, c3]

  // Decoder: nearest-neighbor upsampling with skip concatenation.
  std::vector<std::int64_t> up_idx;
  std::vector<float> up_w;
  interpolation_weights(pos2, pos1, 1, up_idx, up_w);
  Tensor upA = ops::weighted_gather_rows(encB, up_idx, up_w, 1);
  Tensor decA = dec2_.forward(ops::concat_cols(upA, encA), training);  // [N/4, c2]

  interpolation_weights(pos1, pos0, 1, up_idx, up_w);
  Tensor up0 = ops::weighted_gather_rows(decA, up_idx, up_w, 1);
  Tensor dec0 = dec1_.forward(ops::concat_cols(up0, enc1), training);  // [N, c2]

  Tensor logits = head_.forward(dec0, training);
  // Undo the regeneration permutation so row i matches input point i.
  return ops::gather_rows(logits, inverse);
}

std::vector<pcss::tensor::nn::NamedParam> RandLANetSeg::named_params() {
  std::vector<pcss::tensor::nn::NamedParam> out;
  stem_.collect_params("stem.", out);
  auto add_lfa = [&out](Lfa& lfa, const std::string& prefix) {
    lfa.pos_mlp->collect_params(prefix + "pos.", out);
    lfa.shared_mlp->collect_params(prefix + "shared.", out);
    lfa.score->collect_params(prefix + "score.", out);
  };
  add_lfa(lfa1_, "lfa1.");
  add_lfa(lfa2_, "lfa2.");
  add_lfa(lfa3_, "lfa3.");
  dec2_.collect_params("dec2.", out);
  dec1_.collect_params("dec1.", out);
  head_.collect_params("head.", out);
  return out;
}

std::vector<pcss::tensor::nn::NamedBuffer> RandLANetSeg::named_buffers() {
  std::vector<pcss::tensor::nn::NamedBuffer> out;
  stem_.collect_buffers("stem.", out);
  auto add_lfa = [&out](Lfa& lfa, const std::string& prefix) {
    lfa.pos_mlp->collect_buffers(prefix + "pos.", out);
    lfa.shared_mlp->collect_buffers(prefix + "shared.", out);
  };
  add_lfa(lfa1_, "lfa1.");
  add_lfa(lfa2_, "lfa2.");
  add_lfa(lfa3_, "lfa3.");
  dec2_.collect_buffers("dec2.", out);
  dec1_.collect_buffers("dec1.", out);
  head_.collect_buffers("head.", out);
  return out;
}

}  // namespace pcss::models
