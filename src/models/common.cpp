#include "pcss/models/common.h"

#include <cmath>
#include <stdexcept>

#include "pcss/pointcloud/knn.h"

namespace pcss::models {

void interpolation_weights(const std::vector<Vec3>& reference,
                           const std::vector<Vec3>& queries, int k,
                           std::vector<std::int64_t>& idx_out,
                           std::vector<float>& weights_out) {
  if (k <= 0) throw std::invalid_argument("interpolation_weights: k must be positive");
  const int kk = static_cast<int>(
      std::min<std::int64_t>(k, static_cast<std::int64_t>(reference.size())));
  idx_out = pcss::pointcloud::knn_query(reference, queries, kk);
  weights_out.assign(idx_out.size(), 0.0f);
  constexpr float kEps = 1e-8f;
  for (size_t q = 0; q < queries.size(); ++q) {
    float total = 0.0f;
    for (int j = 0; j < kk; ++j) {
      const auto r = static_cast<size_t>(idx_out[q * static_cast<size_t>(kk) + j]);
      const float d2 = pcss::pointcloud::squared_distance(queries[q], reference[r]);
      const float w = 1.0f / (d2 + kEps);
      weights_out[q * static_cast<size_t>(kk) + j] = w;
      total += w;
    }
    for (int j = 0; j < kk; ++j) weights_out[q * static_cast<size_t>(kk) + j] /= total;
  }
  // Callers use kk (possibly < requested k); they can infer it from sizes.
}

std::vector<std::int64_t> dilate_neighbors(const std::vector<std::int64_t>& idx,
                                           std::int64_t n, int k, int dilation) {
  if (dilation < 1) throw std::invalid_argument("dilate_neighbors: dilation must be >= 1");
  const std::int64_t wide = static_cast<std::int64_t>(idx.size()) / n;
  if (wide < static_cast<std::int64_t>(k) * dilation) {
    throw std::invalid_argument("dilate_neighbors: table too narrow for k*dilation");
  }
  std::vector<std::int64_t> out(static_cast<size_t>(n) * static_cast<size_t>(k));
  for (std::int64_t i = 0; i < n; ++i) {
    for (int j = 0; j < k; ++j) {
      out[static_cast<size_t>(i * k + j)] =
          idx[static_cast<size_t>(i * wide + static_cast<std::int64_t>(j) * dilation)];
    }
  }
  return out;
}

}  // namespace pcss::models
