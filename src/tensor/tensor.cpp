#include "pcss/tensor/tensor.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "pcss/tensor/plan.h"
#include "pcss/tensor/pool.h"

namespace pcss::tensor {

std::int64_t shape_numel(const Shape& shape) {
  std::int64_t n = 1;
  for (auto d : shape) n *= d;
  return n;
}

std::string shape_str(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ", ";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

[[noreturn]] void tensor_fail(const std::string& message) {
  throw std::runtime_error("pcss::tensor: " + message);
}

namespace detail {
void check(bool condition, const std::string& message) {
  if (!condition) tensor_fail(message);
}
}  // namespace detail

BackwardCtx::~BackwardCtx() { pool::release(std::move(fbuf)); }

TensorImpl::~TensorImpl() {
  pool::release(std::move(data));
  pool::release(std::move(grad));
}

void TensorImpl::ensure_grad() {
  // Sized from the shape, not data.size(): in-place ops may have moved
  // this node's value buffer into their result node.
  const size_t n = static_cast<size_t>(shape_numel(shape));
  if (grad.size() != n) {
    pool::release(std::move(grad));
    grad = pool::acquire_zeroed(n);
  }
}

void TensorImpl::release_graph() {
  // Pure leaves must take a read-only path: frozen model parameters are
  // shared by every concurrently-built per-cloud graph, so backward() on
  // one thread must not write (even idempotently) to a node another
  // thread's backward() is reading. A leaf has no graph state to drop.
  if (parents.empty() && backward_fn == nullptr && ctx == nullptr) return;
  if (backward_fn != nullptr) graph_released = true;
  parents.clear();
  backward_fn = nullptr;
  ctx.reset();
}

Tensor Tensor::zeros(Shape shape) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = pool::acquire_zeroed(static_cast<size_t>(shape_numel(impl->shape)));
  return Tensor(std::move(impl));
}

Tensor Tensor::full(Shape shape, float value) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = pool::acquire(static_cast<size_t>(shape_numel(impl->shape)));
  std::fill(impl->data.begin(), impl->data.end(), value);
  return Tensor(std::move(impl));
}

Tensor Tensor::from_data(Shape shape, std::vector<float> data) {
  detail::check(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
                "from_data: shape " + shape_str(shape) + " does not match data size " +
                    std::to_string(data.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  // Copy into a pooled buffer so the storage meets the pool's 32-byte
  // alignment contract (a plain std::vector only guarantees 16 on glibc).
  impl->data = pool::acquire(data.size());
  std::copy(data.begin(), data.end(), impl->data.begin());
  return Tensor(std::move(impl));
}

Tensor Tensor::from_buffer(Shape shape, FloatBuffer data) {
  detail::check(shape_numel(shape) == static_cast<std::int64_t>(data.size()),
                "from_buffer: shape " + shape_str(shape) + " does not match data size " +
                    std::to_string(data.size()));
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  return Tensor(std::move(impl));
}

Tensor Tensor::randn(Shape shape, Rng& rng, float stddev) {
  Tensor t = Tensor::full(std::move(shape), 0.0f);
  for (auto& v : t.impl()->data) v = rng.normal(stddev);
  return t;
}

Tensor Tensor::uniform(Shape shape, Rng& rng, float lo, float hi) {
  Tensor t = Tensor::full(std::move(shape), 0.0f);
  for (auto& v : t.impl()->data) v = rng.uniform(lo, hi);
  return t;
}

const Shape& Tensor::shape() const {
  detail::check(defined(), "shape() on undefined tensor");
  return impl_->shape;
}

std::int64_t Tensor::dim(int i) const {
  const Shape& s = shape();
  if (i < 0) i += static_cast<int>(s.size());
  detail::check(i >= 0 && i < static_cast<int>(s.size()), "dim index out of range");
  return s[static_cast<size_t>(i)];
}

int Tensor::rank() const { return static_cast<int>(shape().size()); }

std::int64_t Tensor::numel() const {
  detail::check(defined(), "numel() on undefined tensor");
  return impl_->numel();
}

bool Tensor::requires_grad() const { return defined() && impl_->requires_grad; }

Tensor& Tensor::set_requires_grad(bool value) {
  detail::check(defined(), "set_requires_grad on undefined tensor");
  impl_->requires_grad = value;
  return *this;
}

float* Tensor::data() {
  detail::check(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

const float* Tensor::data() const {
  detail::check(defined(), "data() on undefined tensor");
  return impl_->data.data();
}

float Tensor::item() const {
  detail::check(defined() && numel() == 1, "item() requires a 1-element tensor");
  return impl_->data[0];
}

float Tensor::at(std::int64_t i) const {
  detail::check(defined() && i >= 0 && i < numel(), "at(): index out of range");
  return impl_->data[static_cast<size_t>(i)];
}

const FloatBuffer& Tensor::grad() const {
  detail::check(defined(), "grad() on undefined tensor");
  return impl_->grad;
}

FloatBuffer& Tensor::grad_ref() {
  detail::check(defined(), "grad_ref() on undefined tensor");
  impl_->ensure_grad();
  return impl_->grad;
}

void Tensor::zero_grad() {
  detail::check(defined(), "zero_grad() on undefined tensor");
  std::fill(impl_->grad.begin(), impl_->grad.end(), 0.0f);
}

namespace {

// Iterative post-order topological sort over the autograd DAG.
void topo_sort(const TensorImplPtr& root, std::vector<TensorImplPtr>& order) {
  std::unordered_set<TensorImpl*> visited;
  // Stack frames: (node, next parent index to visit).
  std::vector<std::pair<TensorImplPtr, size_t>> stack;
  if (visited.insert(root.get()).second) stack.emplace_back(root, 0);
  while (!stack.empty()) {
    auto& [node, idx] = stack.back();
    if (idx < node->parents.size()) {
      TensorImplPtr parent = node->parents[idx++];
      if (parent && visited.insert(parent.get()).second) {
        stack.emplace_back(std::move(parent), 0);
      }
    } else {
      order.push_back(node);
      stack.pop_back();
    }
  }
}

}  // namespace

void Tensor::backward() {
  detail::check(defined(), "backward() on undefined tensor");
  detail::check(numel() == 1, "backward() requires a scalar root, got shape " +
                                  shape_str(shape()));
  std::vector<TensorImplPtr> order;
  topo_sort(impl_, order);
  for (const auto& node : order) {
    detail::check(!node->graph_released,
                  "backward(): a reachable node was already released by an earlier "
                  "backward(); rebuild the graph (define-by-run) instead of "
                  "backpropagating through it twice");
  }
  impl_->ensure_grad();
  impl_->grad[0] = 1.0f;
  // Post-order puts the root last; walk in reverse so every node's grad is
  // complete before it propagates to its parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl& node = **it;
    if (node.backward_fn && !node.grad.empty()) node.backward_fn(node);
  }
  // A compiled-plan capture pins the finished graph instead of releasing
  // it: the reverse schedule just executed is exactly what the plan will
  // replay (see plan.h).
  if (plan::detail::capture_backward(impl_, order)) return;
  // Release the graph: parent edges and backward state are dropped for
  // every visited node. Nodes kept alive only by the graph die when
  // `order` unwinds, returning their buffers to the pool; externally-held
  // nodes keep data and grad but no longer pin their subgraph.
  for (auto& node : order) node->release_graph();
}

Tensor Tensor::detach() const {
  detail::check(defined(), "detach() on undefined tensor");
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = impl_->shape;
  impl->data = pool::acquire(impl_->data.size());
  std::copy(impl_->data.begin(), impl_->data.end(), impl->data.begin());
  return Tensor(std::move(impl));
}

}  // namespace pcss::tensor
