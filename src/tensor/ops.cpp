#include "pcss/tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

namespace pcss::tensor::ops {

namespace {

using detail::check;

/// Builds the result node, wiring parents and the backward closure only when
/// some input participates in autograd.
Tensor make_node(Shape shape, std::vector<float> data, std::vector<TensorImplPtr> parents,
                 std::function<void(TensorImpl&)> backward_fn) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = std::move(shape);
  impl->data = std::move(data);
  bool rg = false;
  for (const auto& p : parents) {
    if (p && p->requires_grad) rg = true;
  }
  if (rg) {
    impl->requires_grad = true;
    impl->parents = std::move(parents);
    impl->backward_fn = std::move(backward_fn);
  }
  return Tensor(std::move(impl));
}

/// Naive cache-friendly GEMM: C[n,m] += A[n,k] * B[k,m].
void gemm_acc(const float* a, const float* b, float* c, std::int64_t n, std::int64_t k,
              std::int64_t m) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * k;
    float* crow = c + i * m;
    for (std::int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * m;
      for (std::int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[n,m] += A^T where A is [k,n]: C += A(T) * B with A stored [k,n].
void gemm_at_b(const float* a, const float* b, float* c, std::int64_t k, std::int64_t n,
               std::int64_t m) {
  // C[n,m] += sum_p A[p,n] * B[p,m]
  for (std::int64_t p = 0; p < k; ++p) {
    const float* arow = a + p * n;
    const float* brow = b + p * m;
    for (std::int64_t i = 0; i < n; ++i) {
      const float av = arow[i];
      if (av == 0.0f) continue;
      float* crow = c + i * m;
      for (std::int64_t j = 0; j < m; ++j) crow[j] += av * brow[j];
    }
  }
}

/// C[n,k] += A[n,m] * B^T where B is [k,m].
void gemm_a_bt(const float* a, const float* b, float* c, std::int64_t n, std::int64_t m,
               std::int64_t k) {
  for (std::int64_t i = 0; i < n; ++i) {
    const float* arow = a + i * m;
    float* crow = c + i * k;
    for (std::int64_t j = 0; j < k; ++j) {
      const float* brow = b + j * m;
      float acc = 0.0f;
      for (std::int64_t p = 0; p < m; ++p) acc += arow[p] * brow[p];
      crow[j] += acc;
    }
  }
}

Tensor binary_same_shape(const Tensor& a, const Tensor& b, const char* name,
                         float (*fwd)(float, float),
                         std::pair<float, float> (*partials)(float, float)) {
  check(a.defined() && b.defined(), std::string(name) + ": undefined input");
  check(a.shape() == b.shape(), std::string(name) + ": shape mismatch " +
                                    shape_str(a.shape()) + " vs " + shape_str(b.shape()));
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(pa[i], pb[i]);
  auto ia = a.impl();
  auto ib = b.impl();
  return make_node(a.shape(), std::move(out), {ia, ib},
                   [ia, ib, partials](TensorImpl& node) {
                     const size_t n = node.grad.size();
                     if (ia->requires_grad) ia->ensure_grad();
                     if (ib->requires_grad) ib->ensure_grad();
                     for (size_t i = 0; i < n; ++i) {
                       auto [da, db] = partials(ia->data[i], ib->data[i]);
                       if (ia->requires_grad) ia->grad[i] += node.grad[i] * da;
                       if (ib->requires_grad) ib->grad[i] += node.grad[i] * db;
                     }
                   });
}

Tensor unary(const Tensor& a, const char* name, float (*fwd)(float),
             float (*dfdx)(float)) {
  check(a.defined(), std::string(name) + ": undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = fwd(pa[i]);
  auto ia = a.impl();
  return make_node(a.shape(), std::move(out), {ia}, [ia, dfdx](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      ia->grad[i] += node.grad[i] * dfdx(ia->data[i]);
    }
  });
}

void check_matrix(const Tensor& t, const char* name) {
  check(t.defined() && t.rank() == 2, std::string(name) + ": expected rank-2 tensor");
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  return binary_same_shape(
      a, b, "add", [](float x, float y) { return x + y; },
      [](float, float) { return std::pair<float, float>{1.0f, 1.0f}; });
}

Tensor sub(const Tensor& a, const Tensor& b) {
  return binary_same_shape(
      a, b, "sub", [](float x, float y) { return x - y; },
      [](float, float) { return std::pair<float, float>{1.0f, -1.0f}; });
}

Tensor mul(const Tensor& a, const Tensor& b) {
  return binary_same_shape(
      a, b, "mul", [](float x, float y) { return x * y; },
      [](float x, float y) { return std::pair<float, float>{y, x}; });
}

Tensor scale(const Tensor& a, float s) {
  check(a.defined(), "scale: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = pa[i] * s;
  auto ia = a.impl();
  return make_node(a.shape(), std::move(out), {ia}, [ia, s](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) ia->grad[i] += node.grad[i] * s;
  });
}

Tensor add_scalar(const Tensor& a, float s) {
  check(a.defined(), "add_scalar: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = pa[i] + s;
  auto ia = a.impl();
  return make_node(a.shape(), std::move(out), {ia}, [ia](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) ia->grad[i] += node.grad[i];
  });
}

Tensor neg(const Tensor& a) { return scale(a, -1.0f); }

Tensor add_rowvec(const Tensor& x, const Tensor& bias) {
  check_matrix(x, "add_rowvec");
  check(bias.defined() && bias.numel() == x.dim(1),
        "add_rowvec: bias size must equal column count");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(n * c));
  const float* px = x.data();
  const float* pb = bias.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out[i * c + j] = px[i * c + j] + pb[j];
  }
  auto ix = x.impl();
  auto ib = bias.impl();
  return make_node(x.shape(), std::move(out), {ix, ib}, [ix, ib, n, c](TensorImpl& node) {
    if (ix->requires_grad) {
      ix->ensure_grad();
      for (size_t i = 0; i < node.grad.size(); ++i) ix->grad[i] += node.grad[i];
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      for (std::int64_t i = 0; i < n; ++i) {
        for (std::int64_t j = 0; j < c; ++j) ib->grad[j] += node.grad[i * c + j];
      }
    }
  });
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  check_matrix(a, "matmul");
  check_matrix(b, "matmul");
  check(a.dim(1) == b.dim(0), "matmul: inner dimensions differ: " + shape_str(a.shape()) +
                                  " x " + shape_str(b.shape()));
  const std::int64_t n = a.dim(0), k = a.dim(1), m = b.dim(1);
  std::vector<float> out(static_cast<size_t>(n * m), 0.0f);
  gemm_acc(a.data(), b.data(), out.data(), n, k, m);
  auto ia = a.impl();
  auto ib = b.impl();
  return make_node({n, m}, std::move(out), {ia, ib}, [ia, ib, n, k, m](TensorImpl& node) {
    if (ia->requires_grad) {
      ia->ensure_grad();
      // dA = dY * B^T
      gemm_a_bt(node.grad.data(), ib->data.data(), ia->grad.data(), n, m, k);
    }
    if (ib->requires_grad) {
      ib->ensure_grad();
      // dB = A^T * dY
      gemm_at_b(ia->data.data(), node.grad.data(), ib->grad.data(), n, k, m);
    }
  });
}

Tensor relu(const Tensor& a) {
  return unary(
      a, "relu", [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor leaky_relu(const Tensor& a, float negative_slope) {
  check(a.defined(), "leaky_relu: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = pa[i] > 0.0f ? pa[i] : pa[i] * negative_slope;
  }
  auto ia = a.impl();
  return make_node(a.shape(), std::move(out), {ia}, [ia, negative_slope](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      ia->grad[i] += node.grad[i] * (ia->data[i] > 0.0f ? 1.0f : negative_slope);
    }
  });
}

Tensor tanh_op(const Tensor& a) {
  check(a.defined(), "tanh: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::tanh(pa[i]);
  auto ia = a.impl();
  auto impl_out = std::make_shared<std::vector<float>>(out);
  return make_node(a.shape(), std::move(out), {ia}, [ia, impl_out](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float t = (*impl_out)[i];
      ia->grad[i] += node.grad[i] * (1.0f - t * t);
    }
  });
}

Tensor sigmoid(const Tensor& a) {
  check(a.defined(), "sigmoid: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = 1.0f / (1.0f + std::exp(-pa[i]));
  auto ia = a.impl();
  auto saved = std::make_shared<std::vector<float>>(out);
  return make_node(a.shape(), std::move(out), {ia}, [ia, saved](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float s = (*saved)[i];
      ia->grad[i] += node.grad[i] * s * (1.0f - s);
    }
  });
}

Tensor square(const Tensor& a) {
  return unary(
      a, "square", [](float x) { return x * x; }, [](float x) { return 2.0f * x; });
}

Tensor sum(const Tensor& a) {
  check(a.defined(), "sum: undefined input");
  double acc = 0.0;
  const float* pa = a.data();
  for (std::int64_t i = 0; i < a.numel(); ++i) acc += pa[i];
  auto ia = a.impl();
  return make_node({1}, {static_cast<float>(acc)}, {ia}, [ia](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    const float g = node.grad[0];
    for (auto& v : ia->grad) v += g;
  });
}

Tensor mean(const Tensor& a) {
  check(a.defined() && a.numel() > 0, "mean: undefined or empty input");
  return scale(sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor row_sum(const Tensor& a) {
  check_matrix(a, "row_sum");
  const std::int64_t n = a.dim(0), c = a.dim(1);
  std::vector<float> out(static_cast<size_t>(n), 0.0f);
  const float* pa = a.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) out[i] += pa[i * c + j];
  }
  auto ia = a.impl();
  return make_node({n, 1}, std::move(out), {ia}, [ia, n, c](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      const float g = node.grad[i];
      for (std::int64_t j = 0; j < c; ++j) ia->grad[i * c + j] += g;
    }
  });
}

Tensor sqrt_op(const Tensor& a, float eps) {
  check(a.defined(), "sqrt_op: undefined input");
  std::vector<float> out(static_cast<size_t>(a.numel()));
  const float* pa = a.data();
  for (size_t i = 0; i < out.size(); ++i) out[i] = std::sqrt(std::max(pa[i] + eps, 0.0f));
  auto saved = std::make_shared<std::vector<float>>(out);
  auto ia = a.impl();
  return make_node(a.shape(), std::move(out), {ia}, [ia, saved](TensorImpl& node) {
    if (!ia->requires_grad) return;
    ia->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      const float y = std::max((*saved)[i], 1e-8f);
      ia->grad[i] += node.grad[i] * 0.5f / y;
    }
  });
}

Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx) {
  check_matrix(x, "gather_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t m = static_cast<std::int64_t>(idx.size());
  std::vector<float> out(static_cast<size_t>(m * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < m; ++i) {
    check(idx[i] >= 0 && idx[i] < n, "gather_rows: index out of range");
    std::copy_n(px + idx[i] * c, c, out.data() + i * c);
  }
  auto ix = x.impl();
  auto saved_idx = std::make_shared<std::vector<std::int64_t>>(idx);
  return make_node({m, c}, std::move(out), {ix}, [ix, saved_idx, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    const auto& id = *saved_idx;
    for (size_t i = 0; i < id.size(); ++i) {
      float* dst = ix->grad.data() + id[i] * c;
      const float* src = node.grad.data() + static_cast<std::int64_t>(i) * c;
      for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
    }
  });
}

Tensor weighted_gather_rows(const Tensor& x, const std::vector<std::int64_t>& idx,
                            const std::vector<float>& weights, std::int64_t k_per_row) {
  check_matrix(x, "weighted_gather_rows");
  check(idx.size() == weights.size(), "weighted_gather_rows: idx/weights size mismatch");
  check(k_per_row > 0 && idx.size() % static_cast<size_t>(k_per_row) == 0,
        "weighted_gather_rows: idx size must be a multiple of k_per_row");
  const std::int64_t nsrc = x.dim(0), c = x.dim(1);
  const std::int64_t nout = static_cast<std::int64_t>(idx.size()) / k_per_row;
  std::vector<float> out(static_cast<size_t>(nout * c), 0.0f);
  const float* px = x.data();
  for (std::int64_t i = 0; i < nout; ++i) {
    float* dst = out.data() + i * c;
    for (std::int64_t k = 0; k < k_per_row; ++k) {
      const std::int64_t src_row = idx[i * k_per_row + k];
      check(src_row >= 0 && src_row < nsrc, "weighted_gather_rows: index out of range");
      const float w = weights[i * k_per_row + k];
      const float* src = px + src_row * c;
      for (std::int64_t j = 0; j < c; ++j) dst[j] += w * src[j];
    }
  }
  auto ix = x.impl();
  auto saved_idx = std::make_shared<std::vector<std::int64_t>>(idx);
  auto saved_w = std::make_shared<std::vector<float>>(weights);
  return make_node({nout, c}, std::move(out), {ix},
                   [ix, saved_idx, saved_w, k_per_row, c](TensorImpl& node) {
                     if (!ix->requires_grad) return;
                     ix->ensure_grad();
                     const auto& id = *saved_idx;
                     const auto& w = *saved_w;
                     const std::int64_t nout =
                         static_cast<std::int64_t>(id.size()) / k_per_row;
                     for (std::int64_t i = 0; i < nout; ++i) {
                       const float* src = node.grad.data() + i * c;
                       for (std::int64_t k = 0; k < k_per_row; ++k) {
                         float* dst = ix->grad.data() + id[i * k_per_row + k] * c;
                         const float wk = w[i * k_per_row + k];
                         for (std::int64_t j = 0; j < c; ++j) dst[j] += wk * src[j];
                       }
                     }
                   });
}

Tensor repeat_rows(const Tensor& x, std::int64_t k) {
  check_matrix(x, "repeat_rows");
  check(k > 0, "repeat_rows: k must be positive");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(n * k * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      std::copy_n(px + i * c, c, out.data() + (i * k + r) * c);
    }
  }
  auto ix = x.impl();
  return make_node({n * k, c}, std::move(out), {ix}, [ix, n, k, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      float* dst = ix->grad.data() + i * c;
      for (std::int64_t r = 0; r < k; ++r) {
        const float* src = node.grad.data() + (i * k + r) * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
      }
    }
  });
}

Tensor concat_cols(const Tensor& a, const Tensor& b) {
  check_matrix(a, "concat_cols");
  check_matrix(b, "concat_cols");
  check(a.dim(0) == b.dim(0), "concat_cols: row counts differ");
  const std::int64_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  std::vector<float> out(static_cast<size_t>(n * (ca + cb)));
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(pa + i * ca, ca, out.data() + i * (ca + cb));
    std::copy_n(pb + i * cb, cb, out.data() + i * (ca + cb) + ca);
  }
  auto ia = a.impl();
  auto ib = b.impl();
  return make_node({n, ca + cb}, std::move(out), {ia, ib},
                   [ia, ib, n, ca, cb](TensorImpl& node) {
                     if (ia->requires_grad) {
                       ia->ensure_grad();
                       for (std::int64_t i = 0; i < n; ++i) {
                         const float* src = node.grad.data() + i * (ca + cb);
                         float* dst = ia->grad.data() + i * ca;
                         for (std::int64_t j = 0; j < ca; ++j) dst[j] += src[j];
                       }
                     }
                     if (ib->requires_grad) {
                       ib->ensure_grad();
                       for (std::int64_t i = 0; i < n; ++i) {
                         const float* src = node.grad.data() + i * (ca + cb) + ca;
                         float* dst = ib->grad.data() + i * cb;
                         for (std::int64_t j = 0; j < cb; ++j) dst[j] += src[j];
                       }
                     }
                   });
}

Tensor slice_cols(const Tensor& x, std::int64_t c0, std::int64_t c1) {
  check_matrix(x, "slice_cols");
  check(0 <= c0 && c0 < c1 && c1 <= x.dim(1), "slice_cols: bad column range");
  const std::int64_t n = x.dim(0), c = x.dim(1), w = c1 - c0;
  std::vector<float> out(static_cast<size_t>(n * w));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) std::copy_n(px + i * c + c0, w, out.data() + i * w);
  auto ix = x.impl();
  return make_node({n, w}, std::move(out), {ix}, [ix, n, c, c0, w](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = node.grad.data() + i * w;
      float* dst = ix->grad.data() + i * c + c0;
      for (std::int64_t j = 0; j < w; ++j) dst[j] += src[j];
    }
  });
}

Tensor scatter_add_cols(const Tensor& base, const Tensor& delta, std::int64_t col0) {
  check_matrix(base, "scatter_add_cols");
  check_matrix(delta, "scatter_add_cols");
  check(base.dim(0) == delta.dim(0), "scatter_add_cols: row counts differ");
  check(col0 >= 0 && col0 + delta.dim(1) <= base.dim(1),
        "scatter_add_cols: delta columns exceed base");
  const std::int64_t n = base.dim(0), c = base.dim(1), d = delta.dim(1);
  std::vector<float> out(base.data(), base.data() + n * c);
  const float* pd = delta.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) out[i * c + col0 + j] += pd[i * d + j];
  }
  auto ibase = base.impl();
  auto idelta = delta.impl();
  return make_node(base.shape(), std::move(out), {ibase, idelta},
                   [ibase, idelta, n, c, d, col0](TensorImpl& node) {
                     if (ibase->requires_grad) {
                       ibase->ensure_grad();
                       for (size_t i = 0; i < node.grad.size(); ++i) {
                         ibase->grad[i] += node.grad[i];
                       }
                     }
                     if (idelta->requires_grad) {
                       idelta->ensure_grad();
                       for (std::int64_t i = 0; i < n; ++i) {
                         for (std::int64_t j = 0; j < d; ++j) {
                           idelta->grad[i * d + j] += node.grad[i * c + col0 + j];
                         }
                       }
                     }
                   });
}

namespace {

void check_segments(const Tensor& x, std::int64_t k, const char* name) {
  check_matrix(x, name);
  check(k > 0 && x.dim(0) % k == 0,
        std::string(name) + ": row count must be a multiple of k");
}

}  // namespace

Tensor segment_max(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_max");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(n * c));
  auto arg = std::make_shared<std::vector<std::int64_t>>(static_cast<size_t>(n * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      float best = px[(i * k) * c + j];
      std::int64_t best_r = 0;
      for (std::int64_t r = 1; r < k; ++r) {
        const float v = px[(i * k + r) * c + j];
        if (v > best) {
          best = v;
          best_r = r;
        }
      }
      out[i * c + j] = best;
      (*arg)[i * c + j] = best_r;
    }
  }
  auto ix = x.impl();
  return make_node({n, c}, std::move(out), {ix}, [ix, arg, n, k, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < c; ++j) {
        const std::int64_t r = (*arg)[i * c + j];
        ix->grad[(i * k + r) * c + j] += node.grad[i * c + j];
      }
    }
  });
}

Tensor segment_sum(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_sum");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(n * c), 0.0f);
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t r = 0; r < k; ++r) {
      const float* src = px + (i * k + r) * c;
      float* dst = out.data() + i * c;
      for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
    }
  }
  auto ix = x.impl();
  return make_node({n, c}, std::move(out), {ix}, [ix, n, k, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (std::int64_t i = 0; i < n; ++i) {
      const float* src = node.grad.data() + i * c;
      for (std::int64_t r = 0; r < k; ++r) {
        float* dst = ix->grad.data() + (i * k + r) * c;
        for (std::int64_t j = 0; j < c; ++j) dst[j] += src[j];
      }
    }
  });
}

Tensor segment_mean(const Tensor& x, std::int64_t k) {
  return scale(segment_sum(x, k), 1.0f / static_cast<float>(k));
}

Tensor segment_softmax(const Tensor& x, std::int64_t k) {
  check_segments(x, k, "segment_softmax");
  const std::int64_t n = x.dim(0) / k, c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(x.numel()));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      float mx = px[(i * k) * c + j];
      for (std::int64_t r = 1; r < k; ++r) mx = std::max(mx, px[(i * k + r) * c + j]);
      float denom = 0.0f;
      for (std::int64_t r = 0; r < k; ++r) {
        const float e = std::exp(px[(i * k + r) * c + j] - mx);
        out[(i * k + r) * c + j] = e;
        denom += e;
      }
      for (std::int64_t r = 0; r < k; ++r) out[(i * k + r) * c + j] /= denom;
    }
  }
  auto saved = std::make_shared<std::vector<float>>(out);
  auto ix = x.impl();
  return make_node(x.shape(), std::move(out), {ix}, [ix, saved, n, k, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    const auto& y = *saved;
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < c; ++j) {
        float dot = 0.0f;
        for (std::int64_t r = 0; r < k; ++r) {
          const std::int64_t off = (i * k + r) * c + j;
          dot += node.grad[off] * y[off];
        }
        for (std::int64_t r = 0; r < k; ++r) {
          const std::int64_t off = (i * k + r) * c + j;
          ix->grad[off] += y[off] * (node.grad[off] - dot);
        }
      }
    }
  });
}

Tensor log_softmax_rows(const Tensor& x) {
  check_matrix(x, "log_softmax_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<float> out(static_cast<size_t>(n * c));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    float mx = px[i * c];
    for (std::int64_t j = 1; j < c; ++j) mx = std::max(mx, px[i * c + j]);
    float denom = 0.0f;
    for (std::int64_t j = 0; j < c; ++j) denom += std::exp(px[i * c + j] - mx);
    const float log_denom = std::log(denom) + mx;
    for (std::int64_t j = 0; j < c; ++j) out[i * c + j] = px[i * c + j] - log_denom;
  }
  auto saved = std::make_shared<std::vector<float>>(out);
  auto ix = x.impl();
  return make_node(x.shape(), std::move(out), {ix}, [ix, saved, n, c](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    const auto& logp = *saved;
    for (std::int64_t i = 0; i < n; ++i) {
      float gsum = 0.0f;
      for (std::int64_t j = 0; j < c; ++j) gsum += node.grad[i * c + j];
      for (std::int64_t j = 0; j < c; ++j) {
        ix->grad[i * c + j] += node.grad[i * c + j] - std::exp(logp[i * c + j]) * gsum;
      }
    }
  });
}

Tensor nll_loss_masked(const Tensor& log_probs, const std::vector<int>& labels,
                       const std::vector<std::uint8_t>& mask) {
  check_matrix(log_probs, "nll_loss_masked");
  const std::int64_t n = log_probs.dim(0), c = log_probs.dim(1);
  check(static_cast<std::int64_t>(labels.size()) == n, "nll_loss_masked: labels size");
  check(mask.empty() || static_cast<std::int64_t>(mask.size()) == n,
        "nll_loss_masked: mask size");
  double acc = 0.0;
  std::int64_t count = 0;
  const float* p = log_probs.data();
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    check(labels[i] >= 0 && labels[i] < c, "nll_loss_masked: label out of range");
    acc -= p[i * c + labels[i]];
    ++count;
  }
  check(count > 0, "nll_loss_masked: empty selection");
  auto ix = log_probs.impl();
  auto saved_labels = std::make_shared<std::vector<int>>(labels);
  auto saved_mask = std::make_shared<std::vector<std::uint8_t>>(mask);
  const float inv = 1.0f / static_cast<float>(count);
  return make_node({1}, {static_cast<float>(acc * inv)}, {ix},
                   [ix, saved_labels, saved_mask, n, c, inv](TensorImpl& node) {
                     if (!ix->requires_grad) return;
                     ix->ensure_grad();
                     const float g = node.grad[0] * inv;
                     for (std::int64_t i = 0; i < n; ++i) {
                       if (!saved_mask->empty() && !(*saved_mask)[i]) continue;
                       ix->grad[i * c + (*saved_labels)[i]] -= g;
                     }
                   });
}

Tensor hinge_margin_loss(const Tensor& logits, const std::vector<int>& labels,
                         const std::vector<std::uint8_t>& mask, bool targeted) {
  check_matrix(logits, "hinge_margin_loss");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  check(static_cast<std::int64_t>(labels.size()) == n, "hinge_margin_loss: labels size");
  check(mask.empty() || static_cast<std::int64_t>(mask.size()) == n,
        "hinge_margin_loss: mask size");
  check(c >= 2, "hinge_margin_loss: needs at least 2 classes");
  const float* z = logits.data();
  double total = 0.0;
  // For each active row, remember the competing argmax (j != y) and whether
  // the hinge is active, for the backward pass.
  auto best_j = std::make_shared<std::vector<std::int64_t>>(static_cast<size_t>(n), -1);
  for (std::int64_t i = 0; i < n; ++i) {
    if (!mask.empty() && !mask[i]) continue;
    const int y = labels[i];
    check(y >= 0 && y < c, "hinge_margin_loss: label out of range");
    float best = -std::numeric_limits<float>::infinity();
    std::int64_t bj = -1;
    for (std::int64_t j = 0; j < c; ++j) {
      if (j == y) continue;
      if (z[i * c + j] > best) {
        best = z[i * c + j];
        bj = j;
      }
    }
    const float margin = targeted ? best - z[i * c + y] : z[i * c + y] - best;
    if (margin > 0.0f) {
      total += margin;
      (*best_j)[i] = bj;
    }
  }
  auto ix = logits.impl();
  auto saved_labels = std::make_shared<std::vector<int>>(labels);
  return make_node({1}, {static_cast<float>(total)}, {ix},
                   [ix, saved_labels, best_j, n, c, targeted](TensorImpl& node) {
                     if (!ix->requires_grad) return;
                     ix->ensure_grad();
                     const float g = node.grad[0];
                     const float sy = targeted ? -1.0f : 1.0f;
                     for (std::int64_t i = 0; i < n; ++i) {
                       const std::int64_t bj = (*best_j)[i];
                       if (bj < 0) continue;  // hinge inactive or masked out
                       ix->grad[i * c + (*saved_labels)[i]] += g * sy;
                       ix->grad[i * c + bj] -= g * sy;
                     }
                   });
}

Tensor smoothness_penalty(const Tensor& x, const std::vector<std::int64_t>& neighbor_idx,
                          std::int64_t alpha) {
  check_matrix(x, "smoothness_penalty");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(alpha > 0 && static_cast<std::int64_t>(neighbor_idx.size()) == n * alpha,
        "smoothness_penalty: neighbor_idx must have N*alpha entries");
  constexpr float kEps = 1e-8f;
  const float* px = x.data();
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t k = 0; k < alpha; ++k) {
      const std::int64_t j = neighbor_idx[i * alpha + k];
      check(j >= 0 && j < n, "smoothness_penalty: neighbor index out of range");
      double d2 = 0.0;
      for (std::int64_t t = 0; t < c; ++t) {
        const double d = px[i * c + t] - px[j * c + t];
        d2 += d * d;
      }
      total += std::sqrt(d2);
    }
  }
  auto ix = x.impl();
  auto saved_idx = std::make_shared<std::vector<std::int64_t>>(neighbor_idx);
  return make_node({1}, {static_cast<float>(total)}, {ix},
                   [ix, saved_idx, n, c, alpha](TensorImpl& node) {
                     if (!ix->requires_grad) return;
                     ix->ensure_grad();
                     const float g = node.grad[0];
                     const float* px = ix->data.data();
                     for (std::int64_t i = 0; i < n; ++i) {
                       for (std::int64_t k = 0; k < alpha; ++k) {
                         const std::int64_t j = (*saved_idx)[i * alpha + k];
                         float d2 = 0.0f;
                         for (std::int64_t t = 0; t < c; ++t) {
                           const float d = px[i * c + t] - px[j * c + t];
                           d2 += d * d;
                         }
                         const float dist = std::sqrt(std::max(d2, kEps * kEps));
                         for (std::int64_t t = 0; t < c; ++t) {
                           const float u = (px[i * c + t] - px[j * c + t]) / dist;
                           ix->grad[i * c + t] += g * u;
                           ix->grad[j * c + t] -= g * u;
                         }
                       }
                     }
                   });
}

Tensor batch_norm(const Tensor& x, const Tensor& gamma, const Tensor& beta,
                  std::vector<float>& running_mean, std::vector<float>& running_var,
                  bool training, float momentum, float eps) {
  check_matrix(x, "batch_norm");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  check(gamma.numel() == c && beta.numel() == c, "batch_norm: affine parameter size");
  check(static_cast<std::int64_t>(running_mean.size()) == c &&
            static_cast<std::int64_t>(running_var.size()) == c,
        "batch_norm: running stats size");
  const float* px = x.data();
  std::vector<float> mean_v(static_cast<size_t>(c)), inv_std(static_cast<size_t>(c));
  if (training) {
    for (std::int64_t j = 0; j < c; ++j) {
      double m = 0.0;
      for (std::int64_t i = 0; i < n; ++i) m += px[i * c + j];
      m /= static_cast<double>(n);
      double var = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const double d = px[i * c + j] - m;
        var += d * d;
      }
      var /= static_cast<double>(n);
      mean_v[j] = static_cast<float>(m);
      inv_std[j] = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      running_mean[j] = (1.0f - momentum) * running_mean[j] + momentum * static_cast<float>(m);
      running_var[j] = (1.0f - momentum) * running_var[j] + momentum * static_cast<float>(var);
    }
  } else {
    for (std::int64_t j = 0; j < c; ++j) {
      mean_v[j] = running_mean[j];
      inv_std[j] = 1.0f / std::sqrt(running_var[j] + eps);
    }
  }
  std::vector<float> out(static_cast<size_t>(n * c));
  auto xhat = std::make_shared<std::vector<float>>(static_cast<size_t>(n * c));
  const float* pg = gamma.data();
  const float* pb = beta.data();
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < c; ++j) {
      const float h = (px[i * c + j] - mean_v[j]) * inv_std[j];
      (*xhat)[i * c + j] = h;
      out[i * c + j] = pg[j] * h + pb[j];
    }
  }
  auto ix = x.impl();
  auto ig = gamma.impl();
  auto ib = beta.impl();
  auto saved_inv_std = std::make_shared<std::vector<float>>(inv_std);
  return make_node(
      x.shape(), std::move(out), {ix, ig, ib},
      [ix, ig, ib, xhat, saved_inv_std, n, c, training](TensorImpl& node) {
        const float* pg = ig->data.data();
        if (ig->requires_grad) {
          ig->ensure_grad();
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < c; ++j) {
              ig->grad[j] += node.grad[i * c + j] * (*xhat)[i * c + j];
            }
          }
        }
        if (ib->requires_grad) {
          ib->ensure_grad();
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < c; ++j) ib->grad[j] += node.grad[i * c + j];
          }
        }
        if (!ix->requires_grad) return;
        ix->ensure_grad();
        if (!training) {
          for (std::int64_t i = 0; i < n; ++i) {
            for (std::int64_t j = 0; j < c; ++j) {
              ix->grad[i * c + j] +=
                  node.grad[i * c + j] * pg[j] * (*saved_inv_std)[j];
            }
          }
          return;
        }
        // Training mode: gradient through the batch statistics.
        const float invn = 1.0f / static_cast<float>(n);
        for (std::int64_t j = 0; j < c; ++j) {
          float sum_dy = 0.0f, sum_dy_xhat = 0.0f;
          for (std::int64_t i = 0; i < n; ++i) {
            const float dyg = node.grad[i * c + j] * pg[j];
            sum_dy += dyg;
            sum_dy_xhat += dyg * (*xhat)[i * c + j];
          }
          for (std::int64_t i = 0; i < n; ++i) {
            const float dyg = node.grad[i * c + j] * pg[j];
            ix->grad[i * c + j] +=
                (*saved_inv_std)[j] *
                (dyg - invn * sum_dy - (*xhat)[i * c + j] * invn * sum_dy_xhat);
          }
        }
      });
}

Tensor dropout(const Tensor& x, float p, Rng& rng, bool training) {
  check(x.defined(), "dropout: undefined input");
  check(p >= 0.0f && p < 1.0f, "dropout: p must be in [0, 1)");
  if (!training || p == 0.0f) {
    // Identity that still participates in the graph.
    return scale(x, 1.0f);
  }
  const float keep = 1.0f - p;
  auto mask = std::make_shared<std::vector<float>>(static_cast<size_t>(x.numel()));
  std::vector<float> out(static_cast<size_t>(x.numel()));
  const float* px = x.data();
  for (size_t i = 0; i < out.size(); ++i) {
    const float m = rng.uniform() < p ? 0.0f : 1.0f / keep;
    (*mask)[i] = m;
    out[i] = px[i] * m;
  }
  auto ix = x.impl();
  return make_node(x.shape(), std::move(out), {ix}, [ix, mask](TensorImpl& node) {
    if (!ix->requires_grad) return;
    ix->ensure_grad();
    for (size_t i = 0; i < node.grad.size(); ++i) {
      ix->grad[i] += node.grad[i] * (*mask)[i];
    }
  });
}

std::vector<int> argmax_rows(const Tensor& x) {
  check_matrix(x, "argmax_rows");
  const std::int64_t n = x.dim(0), c = x.dim(1);
  std::vector<int> out(static_cast<size_t>(n));
  const float* px = x.data();
  for (std::int64_t i = 0; i < n; ++i) {
    std::int64_t best = 0;
    for (std::int64_t j = 1; j < c; ++j) {
      if (px[i * c + j] > px[i * c + best]) best = j;
    }
    out[i] = static_cast<int>(best);
  }
  return out;
}

}  // namespace pcss::tensor::ops
